// quickstart — elect a leader on an anonymous network in ~30 lines.
//
//   $ ./quickstart [n] [seed]
//
// Builds a random 4-regular network of n anonymous nodes (no IDs, only
// local port numbers), measures the topology parameters the protocol
// needs (mixing time, conductance), runs the paper's Irrevocable Leader
// Election (Kowalski & Mosteiro, ICDCS 2021), and prints the outcome and
// the exact CONGEST cost.
#include <cstdio>
#include <cstdlib>

#include "core/irrevocable.h"
#include "graph/generators.h"
#include "graph/spectral.h"

int main(int argc, char** argv) {
    const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 256;
    const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;

    // 1. A topology: any connected graph works; nodes are anonymous.
    const anole::graph g = anole::make_random_regular(n, 4, seed);

    // 2. The protocol needs (upper bounds on) the mixing time and the
    //    conductance; profile() estimates both.
    const anole::graph_profile prof = anole::profile(g, seed);

    // 3. Configure and run Irrevocable Leader Election.
    anole::irrevocable_params params;
    params.n = g.num_nodes();
    params.tmix = prof.mixing_time;
    params.phi = prof.conductance;
    const anole::irrevocable_result r = anole::run_irrevocable(g, params, seed);

    std::printf("network: %s | tmix=%llu phi=%.4f diameter=%u\n",
                g.name().c_str(),
                static_cast<unsigned long long>(prof.mixing_time),
                prof.conductance, prof.diameter);
    std::printf("candidates: %zu, leaders elected: %zu%s\n", r.num_candidates,
                r.num_leaders,
                r.success ? (r.max_candidate_won ? "  (max-ID candidate won)" : "")
                          : "  (ELECTION FAILED — rerun with another seed)");
    std::printf("cost: %llu rounds, %llu messages, %llu bits"
                " (%.1f bits/message — CONGEST-sized)\n",
                static_cast<unsigned long long>(r.rounds),
                static_cast<unsigned long long>(r.totals.messages),
                static_cast<unsigned long long>(r.totals.bits),
                static_cast<double>(r.totals.bits) /
                    static_cast<double>(r.totals.messages));
    return r.success ? 0 : 1;
}
