// quickstart — elect a leader on an anonymous network in ~30 lines.
//
//   $ ./quickstart [n] [seed]
//
// Builds a random 4-regular network of n anonymous nodes (no IDs, only
// local port numbers), measures the topology parameters the protocol
// needs (mixing time, conductance), runs the paper's Irrevocable Leader
// Election (Kowalski & Mosteiro, ICDCS 2021), and prints the outcome and
// the exact CONGEST cost.
#include <cstdio>
#include <cstdlib>

#include "graph/generators.h"
#include "sim/runner.h"

int main(int argc, char** argv) {
    const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 256;
    const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;

    // 1. A topology: any connected graph works; nodes are anonymous.
    const anole::graph g = anole::make_random_regular(n, 4, seed);

    // 2. Describe the experiment. The runner profiles the topology and
    //    fills in the model inputs (n, tmix, Φ) the protocol needs.
    anole::scenario s;
    s.topology = &g;
    s.algo = anole::irrevocable_cfg{};
    s.seed = seed;

    // 3. Run it.
    anole::scenario_runner runner;
    const anole::scenario_result res = runner.run(s);
    const anole::graph_profile& prof = res.profile;
    if (!res.runs[0].ok) {
        std::printf("run failed: %s\n", res.runs[0].error.c_str());
        return 1;
    }
    const auto& r = std::get<anole::irrevocable_result>(res.runs[0].detail);

    std::printf("network: %s | tmix=%llu phi=%.4f diameter=%u\n",
                g.name().c_str(),
                static_cast<unsigned long long>(prof.mixing_time),
                prof.conductance, prof.diameter);
    std::printf("candidates: %zu, leaders elected: %zu%s\n", r.num_candidates,
                r.num_leaders,
                r.success ? (r.max_candidate_won ? "  (max-ID candidate won)" : "")
                          : "  (ELECTION FAILED — rerun with another seed)");
    std::printf("cost: %llu rounds, %llu messages, %llu bits"
                " (%.1f bits/message — CONGEST-sized)\n",
                static_cast<unsigned long long>(r.rounds),
                static_cast<unsigned long long>(r.totals.messages),
                static_cast<unsigned long long>(r.totals.bits),
                static_cast<double>(r.totals.bits) /
                    static_cast<double>(r.totals.messages));
    return r.success ? 0 : 1;
}
