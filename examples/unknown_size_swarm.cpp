// unknown_size_swarm — Revocable Leader Election when nobody knows how
// many robots are in the swarm.
//
//   $ ./unknown_size_swarm [n] [seed]
//
// The deployment scenario from the paper's §5: a swarm whose size is
// unknown (nodes cannot even draw safe unique IDs). Irrevocable election
// is *impossible* here (Theorem 2 — see the bench_impossibility demo), so
// the swarm runs Blind Leader Election with Certificates via Diffusion
// with Thresholds: leadership may be revoked while the size estimate k
// grows, and stabilizes once the estimate certifies against the real n.
// The example narrates the estimate ladder and the revocation history.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "graph/generators.h"
#include "sim/runner.h"
#include "util/table.h"

int main(int argc, char** argv) {
    const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 24;
    const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 3;

    // A sparse ad-hoc mesh; nobody is told n.
    const anole::graph mesh = anole::make_erdos_renyi(
        n, 4.0 * std::log(static_cast<double>(n)) / static_cast<double>(n), seed);
    std::printf("swarm: %zu robots (size UNKNOWN to them), %zu radio links\n",
                mesh.num_nodes(), mesh.num_edges());

    // Scaled parameter policy (the faithful Theorem 3 lengths are
    // poly(n^8) rounds — see DESIGN.md); same control flow and functional
    // forms, shorter phases.
    anole::revocable_cfg cfg;
    cfg.params = anole::revocable_params::scaled(std::nullopt, 0.02, 0.12);
    cfg.max_rounds = 120'000'000;

    anole::scenario_runner runner;
    const auto res =
        runner.run(anole::scenario{"swarm", &mesh, cfg, seed, 1});
    if (!res.runs[0].ok) {
        std::printf("run failed: %s\n", res.runs[0].error.c_str());
        return 1;
    }
    const auto& r = std::get<anole::revocable_result>(res.runs[0].detail);

    anole::text_table t({"estimate k", "certification iters", "no-white iters",
                         "probing iters", "IDs minted here"});
    for (const auto& [k, tr] : r.traces) {
        t.add_row({std::to_string(k),
                   std::to_string(tr.iterations),
                   std::to_string(tr.empty_iterations),
                   std::to_string(tr.probing_iterations),
                   tr.chose_here ? "yes" : "no"});
    }
    std::printf("\nestimate ladder (k doubles until certificates hold):\n");
    t.print(std::cout);

    std::printf("\noutcome: %s\n", r.success ? "unique stable leader" : "FAILED");
    std::printf("  leader ID %llu certified at estimate k=%llu (true n = %zu)\n",
                static_cast<unsigned long long>(r.leader_id),
                static_cast<unsigned long long>(r.leader_certificate), n);
    std::printf("  %zu/%zu robots minted IDs; %llu leadership revocations"
                " before quiescence\n",
                r.nodes_chose, mesh.num_nodes(),
                static_cast<unsigned long long>(r.total_revocations));
    std::printf("  views stable from round %llu of %llu"
                " (%llu CONGEST-charged rounds, %llu messages)\n",
                static_cast<unsigned long long>(r.stable_round),
                static_cast<unsigned long long>(r.rounds),
                static_cast<unsigned long long>(r.congest_rounds),
                static_cast<unsigned long long>(r.totals.messages));
    std::printf("\nWhy revocable? No algorithm can elect-and-stop without"
                " knowing n (Theorem 2): run ./impossibility_walkthrough to"
                " watch a stopping algorithm elect two leaders.\n");
    return r.success ? 0 : 1;
}
