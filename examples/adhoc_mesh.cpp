// adhoc_mesh — protocol shoot-out on one deployment.
//
//   $ ./adhoc_mesh [n] [seed]
//
// An operations question: you must pick a leader-election protocol for a
// given mesh. This example profiles the topology, runs all three
// known-n protocols (flooding-max, the Gilbert-et-al-style walks, and the
// paper's cautious-broadcast algorithm) plus the unknown-n revocable
// protocol, and prints a decision table: success, rounds, messages, bits.
// It is Table 1 of the paper turned into a deployment aid.
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "baseline/flood_max.h"
#include "baseline/gilbert_le.h"
#include "core/irrevocable.h"
#include "core/revocable.h"
#include "graph/generators.h"
#include "graph/spectral.h"
#include "util/table.h"

int main(int argc, char** argv) {
    // Default n = 64: the revocable row's cost explodes with n (that is
    // Corollary 1's content), and at 64 nodes the whole table still runs
    // in seconds.
    const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 64;
    const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 5;

    const anole::graph mesh = anole::make_random_regular(n, 4, seed);
    const auto prof = anole::profile(mesh, seed);
    std::printf("mesh: %s | m=%zu diameter=%u tmix=%llu phi=%.4f\n",
                mesh.name().c_str(), mesh.num_edges(), prof.diameter,
                static_cast<unsigned long long>(prof.mixing_time),
                prof.conductance);

    anole::text_table t({"protocol", "knowledge", "success", "rounds",
                         "messages", "bits"});
    auto add = [&](const char* name, const char* knows, bool ok,
                   std::uint64_t rounds, const anole::phase_counters& c) {
        t.add_row({name, knows, ok ? "yes" : "NO", anole::fmt_count(rounds),
                   anole::fmt_count(c.messages), anole::fmt_count(c.bits)});
    };

    {
        const auto r = anole::run_flood_max(mesh, prof.diameter, seed);
        add("flood-max", "n, D", r.success, r.rounds, r.totals);
    }
    {
        anole::gilbert_params p;
        p.n = mesh.num_nodes();
        p.tmix = prof.mixing_time;
        const auto r = anole::run_gilbert(mesh, p, seed);
        add("gilbert-style walks", "n, tmix", r.success, r.rounds, r.totals);
    }
    {
        anole::irrevocable_params p;
        p.n = mesh.num_nodes();
        p.tmix = prof.mixing_time;
        p.phi = prof.conductance;
        const auto r = anole::run_irrevocable(mesh, p, seed);
        add("cautious broadcast (this paper)", "n, tmix, phi", r.success, r.rounds,
            r.totals);
    }
    {
        auto p = anole::revocable_params::scaled(prof.isoperimetric, 0.02, 0.12);
        p.k_cap = 32;  // report failure rather than climb the ladder forever
        const auto r = anole::run_revocable(mesh, p, seed, 30'000'000);
        add("revocable diffusion (this paper)", "i(G) (scaled)", r.success,
            r.rounds, r.totals);
    }

    std::printf("\n");
    t.print(std::cout);
    std::printf("\nHow to read it: flooding is optimal when m is small;"
                "\ncautious broadcast wins messages on well-connected meshes"
                "\n(Theorem 1); the revocable protocol is the only option if"
                "\nn is unknown — and it cannot ever stop (Theorem 2).\n");
    return 0;
}
