// adhoc_mesh — protocol shoot-out on one deployment.
//
//   $ ./adhoc_mesh [n] [seed]
//
// An operations question: you must pick a leader-election protocol for a
// given mesh. This example profiles the topology, runs all three
// known-n protocols (flooding-max, the Gilbert-et-al-style walks, and the
// paper's cautious-broadcast algorithm) plus the unknown-n revocable
// protocol, and prints a decision table: success, rounds, messages, bits.
// It is Table 1 of the paper turned into a deployment aid — and, being
// one ScenarioRunner batch, the four protocols run concurrently.
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "graph/generators.h"
#include "sim/runner.h"
#include "util/table.h"

int main(int argc, char** argv) {
    // Default n = 64: the revocable row's cost explodes with n (that is
    // Corollary 1's content), and at 64 nodes the whole table still runs
    // in seconds.
    const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 64;
    const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 5;

    const anole::graph mesh = anole::make_random_regular(n, 4, seed);

    anole::revocable_cfg revocable;
    revocable.params = anole::revocable_params::scaled(std::nullopt, 0.02, 0.12);
    revocable.params.k_cap = 32;  // report failure, don't climb forever
    revocable.auto_isoperimetric = true;

    const std::vector<anole::scenario> batch = {
        {"flood-max", &mesh, anole::flood_cfg{}, seed, 1},
        {"gilbert-style walks", &mesh, anole::gilbert_cfg{}, seed, 1},
        {"cautious broadcast (this paper)", &mesh, anole::irrevocable_cfg{}, seed, 1},
        {"revocable diffusion (this paper)", &mesh, revocable, seed, 1},
    };
    const char* knowledge[] = {"n, D", "n, tmix", "n, tmix, phi", "i(G) (scaled)"};

    anole::scenario_runner runner;
    const auto results = runner.run_batch(batch);

    const auto& prof = results[0].profile;
    std::printf("mesh: %s | m=%zu diameter=%u tmix=%llu phi=%.4f\n",
                mesh.name().c_str(), mesh.num_edges(), prof.diameter,
                static_cast<unsigned long long>(prof.mixing_time),
                prof.conductance);

    anole::text_table t({"protocol", "knowledge", "success", "rounds",
                         "messages", "bits"});
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto& run = results[i].runs[0];
        const auto totals = run.totals();
        t.add_row({results[i].label, knowledge[i], run.success() ? "yes" : "NO",
                   anole::fmt_count(run.rounds()), anole::fmt_count(totals.messages),
                   anole::fmt_count(totals.bits)});
    }

    std::printf("\n");
    t.print(std::cout);
    std::printf("\nHow to read it: flooding is optimal when m is small;"
                "\ncautious broadcast wins messages on well-connected meshes"
                "\n(Theorem 1); the revocable protocol is the only option if"
                "\nn is unknown — and it cannot ever stop (Theorem 2).\n");
    return 0;
}
