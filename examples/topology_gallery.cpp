// topology_gallery — dump any zoo family as Graphviz DOT or as a
// self-contained SVG via the in-tree Barnes–Hut force layout.
//
//   ./topology_gallery                      # list every family + alias
//   ./topology_gallery wheel 32             # DOT of wheel(32) on stdout
//   ./topology_gallery ba 48 7 | dot -Tsvg > ba.svg
//   ./topology_gallery --svg ba 48 7 > ba.svg   # no Graphviz needed
//
// docs/TOPOLOGIES.md pairs each catalog entry with its thumbnail
// command; this is the binary those commands run. In DOT mode nodes are
// colored by normalized degree so hubs (barabasi_albert, star, wheel)
// and bottleneck anchors stand out; --svg renders through
// graph/layout.h (deterministic in the seed, O(V log V + E) per
// iteration), which is what the campaign HTML report's gallery uses.
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "graph/dot_export.h"
#include "graph/generators.h"
#include "graph/layout.h"

using namespace anole;

int main(int argc, char** argv) {
    bool svg_mode = false;
    if (argc > 1 && std::string(argv[1]) == "--svg") {
        svg_mode = true;
        --argc;
        ++argv;
    }
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: topology_gallery [--svg] <family> [n=32] [seed=1]\n"
                     "families:");
        for (const graph_family f : all_families()) {
            std::fprintf(stderr, " %s", to_string(f));
        }
        std::fprintf(stderr, "\naliases: ws ba rgg geometric caveman er grid tree\n");
        return 2;
    }
    const auto family = family_from_string(argv[1]);
    if (!family) {
        std::fprintf(stderr, "error: unknown family '%s' (run with no args for "
                             "the list)\n",
                     argv[1]);
        return 2;
    }
    const auto parse_count = [](const char* arg, const char* what,
                                std::uint64_t dflt) -> std::uint64_t {
        if (arg == nullptr) return dflt;
        char* end = nullptr;
        const std::uint64_t v = std::strtoull(arg, &end, 10);
        // Reject sign prefixes (strtoull wraps "-1"), trailing garbage,
        // and empty input.
        if (*arg == '\0' || *arg == '-' || *arg == '+' || end == nullptr ||
            *end != '\0') {
            std::fprintf(stderr, "error: %s must be a non-negative number, "
                                 "got '%s'\n",
                         what, arg);
            std::exit(2);
        }
        return v;
    };
    const std::size_t n = parse_count(argc > 2 ? argv[2] : nullptr, "n", 32);
    const std::uint64_t seed = parse_count(argc > 3 ? argv[3] : nullptr, "seed", 1);
    if (n == 0) {
        std::fprintf(stderr, "error: n must be a positive number, got '%s'\n",
                     argv[2]);
        return 2;
    }

    try {
        const graph g = make_family(*family, n, seed);

        if (svg_mode) {
            layout_options lopt;
            lopt.seed = seed;
            const std::vector<layout_point> pts = force_layout(g, lopt);
            layout_svg_options sopt;
            sopt.width = 640;
            sopt.height = 480;
            sopt.node_radius = n <= 256 ? 3.0 : 1.6;
            std::fprintf(stderr, "%s: %zu nodes, %zu edges\n", g.name().c_str(),
                         g.num_nodes(), g.num_edges());
            std::cout << layout_svg(g, pts, sopt) << "\n";
            return 0;
        }

        dot_style style;
        // Shade by degree: light for leaves, saturated for hubs.
        const double dmax = static_cast<double>(g.max_degree());
        style.node_attrs = [&](node_id u) {
            const double t =
                dmax > 0 ? static_cast<double>(g.degree(u)) / dmax : 0.0;
            const int blue = 235 - static_cast<int>(150 * t);
            char buf[64];
            std::snprintf(buf, sizeof buf, "style=filled, fillcolor=\"#%02x%02xff\"",
                          blue, blue);
            return std::string(buf);
        };
        std::fprintf(stderr, "%s: %zu nodes, %zu edges\n", g.name().c_str(),
                     g.num_nodes(), g.num_edges());
        write_dot(std::cout, g, style);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }
    return 0;
}
