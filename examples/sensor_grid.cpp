// sensor_grid — the paper's motivating scenario: a massive ad-hoc sensor
// deployment (IoT) needs one coordinator, but the cheap sensors shipped
// without serial numbers. The field is a torus-shaped radio grid.
//
//   $ ./sensor_grid [side] [seed]
//
// After the election, the example *uses* the leader the way applications
// do: the elected node floods a beacon, every sensor learns its hop
// distance to the coordinator, and we print the resulting clustering
// statistics — demonstrating explicit coordination built on top of the
// implicit election.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "core/irrevocable.h"
#include "graph/generators.h"
#include "sim/engine.h"
#include "sim/runner.h"
#include "util/bit_codec.h"
#include "util/table.h"

namespace {

// Post-election beacon: the leader floods "hops so far"; each node keeps
// the minimum it hears. A classic BFS wave in CONGEST.
struct beacon_msg {
    std::uint32_t hops = 0;
    [[nodiscard]] std::size_t bit_size() const noexcept {
        return anole::gamma0_bits(hops);
    }
};

class beacon_node {
public:
    using message_type = beacon_msg;
    beacon_node(std::size_t degree, bool is_leader)
        : degree_(degree), distance_(is_leader ? 0 : UINT32_MAX) {}

    void on_round(anole::node_ctx<beacon_msg>& ctx,
                  anole::inbox_view<beacon_msg> inbox) {
        for (const auto& [port, msg] : inbox) {
            (void)port;
            distance_ = std::min(distance_, msg.hops);
        }
        if (distance_ != UINT32_MAX && !announced_) {
            announced_ = true;
            for (anole::port_id p = 0; p < degree_; ++p) {
                ctx.send(p, beacon_msg{distance_ + 1});
            }
        }
    }

    [[nodiscard]] std::uint32_t distance() const noexcept { return distance_; }

private:
    std::size_t degree_;
    std::uint32_t distance_;
    bool announced_ = false;
};

}  // namespace

int main(int argc, char** argv) {
    const std::size_t side = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20;
    const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;

    const anole::graph field = anole::make_torus(side, side);
    anole::scenario_runner runner;
    const auto& prof = runner.profile_for(field);
    std::printf("sensor field: %zu sensors on a %zux%zu torus (anonymous)\n",
                field.num_nodes(), side, side);

    // --- phase 1: elect the coordinator ---
    // The runner fills the model inputs (n, tmix, Φ) from the profile;
    // phase 2 replays the same parameters, so fill them explicitly here.
    const anole::irrevocable_params params =
        anole::scenario_runner::fill(anole::irrevocable_params{}, prof);
    const auto result =
        runner.run(anole::scenario{"election", &field,
                                   anole::irrevocable_cfg{params, {}}, seed, 1});
    if (!result.runs[0].ok) {
        std::printf("election run failed: %s\n", result.runs[0].error.c_str());
        return 1;
    }
    const auto& election =
        std::get<anole::irrevocable_result>(result.runs[0].detail);
    if (!election.success) {
        std::printf("election failed for this seed (whp event) — retry\n");
        return 1;
    }
    std::printf("election: %zu candidates competed, unique coordinator chosen"
                " in %llu rounds / %llu messages\n",
                election.num_candidates,
                static_cast<unsigned long long>(election.rounds),
                static_cast<unsigned long long>(election.totals.messages));

    // --- phase 2: the coordinator structures the field ---
    // Identify the engine-side index of the leader to seed the beacon
    // (the beacon itself is again fully anonymous).
    anole::engine<anole::irrevocable_node> probe(field, seed);
    probe.spawn([&](std::size_t u) {
        return anole::irrevocable_node(field.degree(static_cast<anole::node_id>(u)),
                                       params);
    });
    probe.run_rounds(params.total_rounds() + 1);
    std::size_t leader_index = 0;
    for (std::size_t u = 0; u < probe.num_nodes(); ++u) {
        if (probe.node(u).is_leader()) leader_index = u;
    }

    anole::engine<beacon_node> beacon(field, seed + 1);
    beacon.spawn([&](std::size_t u) {
        return beacon_node(field.degree(static_cast<anole::node_id>(u)),
                           u == leader_index);
    });
    beacon.run_rounds(prof.diameter + 2);

    std::vector<std::size_t> ring_count(prof.diameter + 2, 0);
    std::uint32_t max_d = 0;
    for (std::size_t u = 0; u < beacon.num_nodes(); ++u) {
        const std::uint32_t d = beacon.node(u).distance();
        ++ring_count[d];
        max_d = std::max(max_d, d);
    }

    anole::text_table t({"hops from coordinator", "sensors"});
    for (std::uint32_t d = 0; d <= max_d; ++d) {
        t.add_row({std::to_string(d), std::to_string(ring_count[d])});
    }
    std::printf("\ncoverage rings after the coordinator's beacon "
                "(%llu extra messages):\n",
                static_cast<unsigned long long>(beacon.metrics().total().messages));
    t.print(std::cout);
    std::printf("every sensor reached: %s\n",
                ring_count[0] == 1 && max_d <= prof.diameter ? "yes" : "no");
    return 0;
}
