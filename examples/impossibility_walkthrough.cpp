// impossibility_walkthrough — Theorem 2, narrated step by step.
//
//   $ ./impossibility_walkthrough [n] [witnesses] [seed]
//
// The paper's deepest result is negative: without knowing the network
// size, NO algorithm can elect a leader and stop, not even with constant
// success probability. This example walks through the pumping-wheel proof
// as an execution you can watch:
//
//   1. a perfectly correct stop-by-T(n) algorithm wins on the cycle C_n;
//   2. its winning random bits are replicated along witness segments of a
//      much larger cycle C_N (Figure 1);
//   3. the same algorithm, run on C_N, cannot tell the difference within
//      its deadline (Figure 2's invariant, checked node by node) — and
//      stops having elected TWO leaders per witness.
#include <cstdio>
#include <cstdlib>

#include "impossibility/pumping_wheel.h"

int main(int argc, char** argv) {
    const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 16;
    const std::size_t witnesses =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 3;
    const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1;

    anole::cycle_le_algo algo(n);
    std::printf("Step 1 — a correct algorithm on C_%zu.\n", n);
    std::printf("  A assembles a %llu-bit random ID (one coin per round) and"
                " floods the max;\n  it stops at T(n) = %llu rounds.\n",
                static_cast<unsigned long long>(algo.id_bits()),
                static_cast<unsigned long long>(algo.stop_time()));

    const auto win = anole::find_winning_execution(algo, seed);
    std::printf("  Winning execution found (attempt %zu): node %zu leads;"
                " its tapes are recorded.\n\n",
                win.attempts, win.leader_index);

    const auto layout = anole::build_witness_layout(algo, witnesses);
    std::printf("Step 2 — the Figure 1 layout on C_%zu.\n", layout.big_n);
    std::printf("  %zu witnesses of %zu nodes (T + [segment|segment] + T),"
                " separated by 2T = %llu fresh-random nodes.\n",
                layout.witnesses, layout.witness_len,
                static_cast<unsigned long long>(2 * layout.t));
    std::printf("  Witness nodes replay tape τ(q mod %zu); every interior"
                " node sees exactly\n  the neighborhood its C_%zu"
                " counterpart saw.\n\n",
                n, n);

    const auto res = anole::run_pumped(algo, win, witnesses, seed + 1);
    std::printf("Step 3 — run A on C_%zu for T(n) rounds.\n", layout.big_n);
    std::printf("  nodes stopped:      %zu / %zu (all convinced they're done)\n",
                res.stopped_total, layout.big_n);
    std::printf("  Figure 2 invariant: %s (%zu core-node configurations"
                " compared with Γ)\n",
                res.invariant_held ? "HELD" : "VIOLATED", res.invariant_checked);
    std::printf("  witnesses electing >= 2 leaders: %zu / %zu\n",
                res.witnesses_with_two, witnesses);
    std::printf("  leader flags raised on C_%zu:    %zu  (one would be correct)\n\n",
                layout.big_n, res.leaders_total);

    std::printf("Step 4 — why this breaks every algorithm.\n");
    std::printf("  Under fresh randomness the same collision needs N with"
                " log2(N) ~ %.0f\n  (Theorem 2's bound at c = 1/2) — beyond"
                " astronomical, but nonzero: so any\n  algorithm that stops"
                " by T(n) with probability >= c fails on SOME cycle.\n",
                anole::required_cycle_size_log2(algo, 0.5));
    std::printf("  Hence the paper's Revocable Leader Election: never stop,"
                " keep certifying\n  (run ./unknown_size_swarm to see it).\n");
    return res.witnesses_with_two == witnesses ? 0 : 1;
}
