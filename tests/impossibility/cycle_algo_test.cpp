// Tests for impossibility/cycle_algo.h: the stop-by-T(n) algorithm the
// pumping wheel pumps.
#include "impossibility/cycle_algo.h"

#include <gtest/gtest.h>

#include "impossibility/pumping_wheel.h"

namespace anole {
namespace {

TEST(CycleAlgo, StopTimeComposition) {
    cycle_le_algo a(16);
    EXPECT_EQ(a.id_bits(), 16u);                 // 4·log2(16)
    EXPECT_EQ(a.stop_time(), 16u + 8u + 1u);     // bits + radius + settle
    EXPECT_EQ(a.n(), 16u);
}

TEST(CycleAlgo, RejectsTinyCycles) {
    EXPECT_THROW(cycle_le_algo(2), error);
}

TEST(CycleAlgo, ElectsUniqueLeaderOnItsCycle) {
    for (std::size_t n : {8u, 16u, 32u, 64u}) {
        cycle_le_algo algo(n);
        int successes = 0;
        for (std::uint64_t seed = 1; seed <= 5; ++seed) {
            cycle_machine m(algo, n);
            m.seed_fresh(seed);
            m.run(algo.stop_time());
            EXPECT_EQ(m.stopped_count(), n);
            if (m.leaders().size() == 1) ++successes;
        }
        EXPECT_GE(successes, 4) << n;
    }
}

TEST(CycleAlgo, AllNodesStopExactlyAtT) {
    cycle_le_algo algo(8);
    cycle_machine m(algo, 8);
    m.seed_fresh(3);
    m.run(algo.stop_time() - 1);
    EXPECT_EQ(m.stopped_count(), 0u);  // nobody early
    m.run(1);
    EXPECT_EQ(m.stopped_count(), 8u);  // everybody on time
}

TEST(CycleAlgo, DeterministicGivenTapes) {
    cycle_le_algo algo(8);
    cycle_machine rec(algo, 8);
    rec.seed_recorders(7);
    rec.run(algo.stop_time());
    const auto tapes = rec.tapes();

    cycle_machine replay(algo, 8);
    for (std::size_t i = 0; i < 8; ++i) replay.set_tape(i, tapes[i]);
    replay.run(algo.stop_time());
    for (std::size_t i = 0; i < 8; ++i) {
        EXPECT_TRUE(replay.state(i) == rec.state(i)) << i;
    }
}

TEST(CycleAlgo, StatesComparable) {
    cyc_state a, b;
    EXPECT_TRUE(a == b);
    b.id = 1;
    EXPECT_FALSE(a == b);
}

TEST(CycleAlgo, MaxFloodsCorrectly) {
    // After T rounds the leader's ID must be everyone's max_seen.
    cycle_le_algo algo(16);
    cycle_machine m(algo, 16);
    m.seed_fresh(5);
    m.run(algo.stop_time());
    const auto leaders = m.leaders();
    ASSERT_EQ(leaders.size(), 1u);
    const std::uint64_t lid = m.state(leaders[0]).id;
    for (std::size_t i = 0; i < 16; ++i) {
        EXPECT_EQ(m.state(i).max_seen, lid) << i;
    }
}

}  // namespace
}  // namespace anole
