// Tests for impossibility/pumping_wheel.h: the executable Theorem 2.
#include "impossibility/pumping_wheel.h"

#include <gtest/gtest.h>

namespace anole {
namespace {

TEST(PumpingWheel, FindsWinningExecution) {
    cycle_le_algo algo(8);
    const auto win = find_winning_execution(algo, 3);
    EXPECT_EQ(win.tapes.size(), 8u);
    EXPECT_EQ(win.final_states.size(), 8u);
    EXPECT_TRUE(win.final_states[win.leader_index].leader);
    for (const auto& tape : win.tapes) {
        EXPECT_EQ(tape.size(), algo.stop_time());
    }
    // Exactly one leader in Γ.
    std::size_t leaders = 0;
    for (const auto& s : win.final_states) leaders += s.leader ? 1 : 0;
    EXPECT_EQ(leaders, 1u);
}

TEST(PumpingWheel, LayoutGeometryMatchesFigure1) {
    cycle_le_algo algo(8);
    const auto lay = build_witness_layout(algo, 3);
    EXPECT_EQ(lay.n, 8u);
    EXPECT_EQ(lay.t, algo.stop_time());
    EXPECT_EQ(lay.witness_len, 2 * lay.t + 2 * lay.n);
    EXPECT_EQ(lay.stride, 4 * lay.t + 2 * lay.n);
    EXPECT_EQ(lay.big_n, 3 * lay.stride);
    EXPECT_TRUE(lay.in_witness(0));
    EXPECT_FALSE(lay.in_witness(lay.witness_len));
    EXPECT_EQ(lay.core_begin(1) - lay.witness_begin(1), lay.t);
}

TEST(PumpingWheel, PumpedRunElectsTwoLeadersPerWitnessCore) {
    for (std::size_t n : {8u, 16u}) {
        cycle_le_algo algo(n);
        const auto win = find_winning_execution(algo, 5);
        for (std::size_t witnesses : {1u, 3u}) {
            const auto res = run_pumped(algo, win, witnesses, 11);
            EXPECT_EQ(res.witnesses_with_two, witnesses) << n;
            EXPECT_TRUE(res.invariant_held) << n;
            EXPECT_EQ(res.invariant_checked, witnesses * 2 * n);
            EXPECT_GE(res.leaders_total, 2 * witnesses);
            // Everyone on C_N stopped by T(n) believing the task done —
            // the essence of the impossibility.
            EXPECT_EQ(res.stopped_total, res.layout.big_n);
        }
    }
}

TEST(PumpingWheel, FreshTapesDoNotReproduceGamma) {
    // Negative control: without replication the invariant check fails
    // (fresh random IDs cannot match Γ's), though nodes still stop.
    cycle_le_algo algo(8);
    const auto win = find_winning_execution(algo, 5);
    const auto lay = build_witness_layout(algo, 2);
    cycle_machine m(algo, lay.big_n);
    m.seed_fresh(99);
    m.run(lay.t);
    bool matches = true;
    for (std::size_t q = 0; q < 2 * lay.n; ++q) {
        const std::size_t pos = lay.core_begin(0) + q;
        const std::size_t off = pos - lay.witness_begin(0);
        if (!(m.state(pos) == win.final_states[off % lay.n])) matches = false;
    }
    EXPECT_FALSE(matches);
}

TEST(PumpingWheel, RequiredSizeIsAstronomical) {
    cycle_le_algo algo(8);
    const double log2n = required_cycle_size_log2(algo, 0.5);
    // 2nT = 2·8·17 = 272 bits of tape must coincide: >> any real network.
    EXPECT_GT(log2n, 250.0);
    // Monotone in n.
    cycle_le_algo bigger(16);
    EXPECT_GT(required_cycle_size_log2(bigger, 0.5), log2n);
    EXPECT_THROW((void)required_cycle_size_log2(algo, 1.5), error);
}

TEST(PumpingWheel, SeparatorsIsolateWitnesses) {
    // With 2T-separation, witness cores behave identically whether there
    // is one witness or many: determinism + isolation.
    cycle_le_algo algo(8);
    const auto win = find_winning_execution(algo, 5);
    const auto one = run_pumped(algo, win, 1, 13);
    const auto many = run_pumped(algo, win, 4, 13);
    EXPECT_TRUE(one.invariant_held);
    EXPECT_TRUE(many.invariant_held);
    EXPECT_EQ(one.witnesses_with_two, 1u);
    EXPECT_EQ(many.witnesses_with_two, 4u);
}

}  // namespace
}  // namespace anole
