// Cross-module integration tests: the full experiment pipeline the bench
// harness is built on (profile a graph, run every protocol, compare).
#include <gtest/gtest.h>

#include "baseline/flood_max.h"
#include "baseline/gilbert_le.h"
#include "core/irrevocable.h"
#include "core/revocable.h"
#include "graph/generators.h"
#include "graph/properties.h"
#include "graph/spectral.h"
#include "util/stats.h"

namespace anole {
namespace {

TEST(Pipeline, AllProtocolsElectOnTheSameGraph) {
    graph g = make_random_regular(64, 4, 3);
    const auto prof = profile(g, 1);

    const auto fr = run_flood_max(g, prof.diameter, 5);
    EXPECT_TRUE(fr.success);

    gilbert_params gp;
    gp.n = g.num_nodes();
    gp.tmix = prof.mixing_time;
    const auto gr = run_gilbert(g, gp, 5);
    EXPECT_TRUE(gr.success);

    irrevocable_params ip;
    ip.n = g.num_nodes();
    ip.tmix = prof.mixing_time;
    ip.phi = prof.conductance;
    const auto ir = run_irrevocable(g, ip, 5);
    EXPECT_TRUE(ir.success);

    auto rp = revocable_params::scaled(std::nullopt, 0.02, 0.12);
    const auto rr = run_revocable(g, rp, 5, 50'000'000);
    EXPECT_TRUE(rr.success);
}

TEST(Pipeline, MessageOrderingMatchesTable1OnExpander) {
    // The paper's Theorem 1 claim, as a shape: on a well-connected graph
    // our protocol needs fewer messages than the Gilbert-style baseline.
    graph g = make_random_regular(256, 4, 7);
    const auto prof = profile(g, 1);

    gilbert_params gp;
    gp.n = g.num_nodes();
    gp.tmix = prof.mixing_time;

    irrevocable_params ip;
    ip.n = g.num_nodes();
    ip.tmix = prof.mixing_time;
    ip.phi = prof.conductance;

    sample_stats ours, theirs;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        ours.add(static_cast<double>(run_irrevocable(g, ip, seed).totals.messages));
        theirs.add(static_cast<double>(run_gilbert(g, gp, seed).totals.messages));
    }
    EXPECT_LT(ours.mean() * 2.0, theirs.mean());
}

TEST(Pipeline, CongestBitsPerMessageIsLogarithmic) {
    graph g = make_torus(8, 8);
    const auto prof = profile(g, 1);
    irrevocable_params ip;
    ip.n = g.num_nodes();
    ip.tmix = prof.mixing_time;
    ip.phi = prof.conductance;
    const auto r = run_irrevocable(g, ip, 3);
    const double bits_per_msg = static_cast<double>(r.totals.bits) /
                                static_cast<double>(r.totals.messages);
    // O(log n) with our constants: comfortably under 16·log2(n).
    EXPECT_LE(bits_per_msg, 16.0 * std::log2(64.0));
    EXPECT_GE(bits_per_msg, 3.0);
}

TEST(Pipeline, PermutedPortsGiveSameSuccessProfile) {
    // Anonymity end-to-end: relabeling ports must not change whether the
    // protocol family succeeds (it may change which node wins).
    graph g = make_torus(6, 6);
    const auto prof = profile(g, 1);
    irrevocable_params ip;
    ip.n = g.num_nodes();
    ip.tmix = prof.mixing_time;
    ip.phi = prof.conductance;
    graph h = g.with_permuted_ports(321);
    int base = 0, perm = 0;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        base += run_irrevocable(g, ip, seed).success ? 1 : 0;
        perm += run_irrevocable(h, ip, seed).success ? 1 : 0;
    }
    EXPECT_GE(base, 4);
    EXPECT_GE(perm, 4);
}

TEST(Pipeline, ProfileFeedsConsistentInputs) {
    // The protocol inputs derived from profile() must satisfy the known
    // analytic relations 1/Φ <= tmix (up to constants) used in §4.
    for (auto fam : {graph_family::cycle, graph_family::torus,
                     graph_family::random_regular}) {
        graph g = make_family(fam, 64, 3);
        const auto prof = profile(g, 1);
        EXPECT_GT(prof.conductance, 0.0) << to_string(fam);
        EXPECT_GE(static_cast<double>(prof.mixing_time) * prof.conductance, 0.4)
            << to_string(fam);
    }
}

}  // namespace
}  // namespace anole
