// Tests for util/bigint.h: the arbitrary-precision substrate under the
// exact diffusion potentials.
#include "util/bigint.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace anole {
namespace {

bigint random_bigint(xoshiro256ss& rng, std::size_t max_limbs) {
    bigint out;
    const std::size_t limbs = 1 + rng.below(max_limbs);
    for (std::size_t i = 0; i < limbs; ++i) {
        out <<= 64;
        out += bigint(rng());
    }
    return out;
}

TEST(Bigint, DefaultIsZero) {
    bigint z;
    EXPECT_TRUE(z.is_zero());
    EXPECT_EQ(z.bit_length(), 0u);
    EXPECT_EQ(z.to_decimal(), "0");
}

TEST(Bigint, FromUint64) {
    bigint v(12345);
    EXPECT_FALSE(v.is_zero());
    EXPECT_EQ(v.low64(), 12345u);
    EXPECT_TRUE(v.fits64());
    EXPECT_EQ(v.to_decimal(), "12345");
}

TEST(Bigint, Pow2) {
    EXPECT_EQ(bigint::pow2(0).to_decimal(), "1");
    EXPECT_EQ(bigint::pow2(10).to_decimal(), "1024");
    EXPECT_EQ(bigint::pow2(64).bit_length(), 65u);
    EXPECT_EQ(bigint::pow2(100).bit_length(), 101u);
}

TEST(Bigint, FromDecimalRoundTrip) {
    const std::string s = "123456789012345678901234567890123456789";
    EXPECT_EQ(bigint::from_decimal(s).to_decimal(), s);
}

TEST(Bigint, FromDecimalRejectsGarbage) {
    EXPECT_THROW(bigint::from_decimal(""), error);
    EXPECT_THROW(bigint::from_decimal("12a3"), error);
    EXPECT_THROW(bigint::from_decimal("-5"), error);
}

TEST(Bigint, AdditionCarries) {
    bigint a(~std::uint64_t{0});
    a += bigint(1);
    EXPECT_EQ(a, bigint::pow2(64));
}

TEST(Bigint, SubtractionBorrows) {
    bigint a = bigint::pow2(64);
    a -= bigint(1);
    EXPECT_EQ(a, bigint(~std::uint64_t{0}));
}

TEST(Bigint, SubtractionUnderflowThrows) {
    bigint a(5);
    EXPECT_THROW(a -= bigint(6), error);
}

TEST(Bigint, CompareOrdering) {
    EXPECT_LT(bigint(3), bigint(5));
    EXPECT_GT(bigint::pow2(100), bigint::pow2(99));
    EXPECT_EQ(bigint(7), bigint(7));
    EXPECT_LE(bigint(7), bigint(7));
    EXPECT_NE(bigint(7), bigint(8));
}

TEST(Bigint, ShiftRoundTrip) {
    xoshiro256ss rng(4);
    for (int i = 0; i < 50; ++i) {
        const bigint a = random_bigint(rng, 4);
        const std::size_t k = rng.below(200);
        EXPECT_EQ((a << k) >> k, a) << "k=" << k;
    }
}

TEST(Bigint, ShiftRightTruncates) {
    bigint a(0b1011);
    EXPECT_EQ(a >> 2, bigint(0b10));
    EXPECT_EQ(a >> 64, bigint(0));
}

TEST(Bigint, AddSubRoundTrip) {
    xoshiro256ss rng(5);
    for (int i = 0; i < 100; ++i) {
        const bigint a = random_bigint(rng, 5);
        const bigint b = random_bigint(rng, 5);
        bigint sum = a + b;
        EXPECT_EQ(sum - b, a);
        EXPECT_EQ(sum - a, b);
        EXPECT_GE(sum, a);
    }
}

TEST(Bigint, MulSmallDivmodRoundTrip) {
    xoshiro256ss rng(6);
    for (int i = 0; i < 100; ++i) {
        bigint a = random_bigint(rng, 4);
        const std::uint64_t m = 1 + rng.below(1'000'000);
        bigint b = a;
        b.mul_small(m);
        EXPECT_EQ(b.divmod_small(m), 0u);
        EXPECT_EQ(b, a);
    }
}

TEST(Bigint, DivmodSmallRemainder) {
    bigint a(1000);
    EXPECT_EQ(a.divmod_small(7), 1000 % 7);
    EXPECT_EQ(a, bigint(1000 / 7));
    bigint z(5);
    EXPECT_THROW(z.divmod_small(0), error);
}

TEST(Bigint, MulMatchesMulSmall) {
    xoshiro256ss rng(8);
    for (int i = 0; i < 50; ++i) {
        const bigint a = random_bigint(rng, 3);
        const std::uint64_t m = rng();
        bigint via_small = a;
        via_small.mul_small(m);
        EXPECT_EQ(a.mul(bigint(m)), via_small);
    }
}

TEST(Bigint, MulBigKnownValue) {
    // (2^64+1)^2 = 2^128 + 2^65 + 1
    bigint a = bigint::pow2(64) + bigint(1);
    bigint expect = bigint::pow2(128) + bigint::pow2(65) + bigint(1);
    EXPECT_EQ(a.mul(a), expect);
}

TEST(Bigint, BitLength) {
    EXPECT_EQ(bigint(1).bit_length(), 1u);
    EXPECT_EQ(bigint(2).bit_length(), 2u);
    EXPECT_EQ(bigint(255).bit_length(), 8u);
    EXPECT_EQ(bigint(256).bit_length(), 9u);
}

TEST(Bigint, TrailingZeros) {
    EXPECT_EQ(bigint(1).trailing_zeros(), 0u);
    EXPECT_EQ(bigint(8).trailing_zeros(), 3u);
    EXPECT_EQ(bigint::pow2(100).trailing_zeros(), 100u);
    EXPECT_THROW((void)bigint(0).trailing_zeros(), error);
}

TEST(Bigint, BitAccess) {
    bigint a(0b1010);
    EXPECT_FALSE(a.bit(0));
    EXPECT_TRUE(a.bit(1));
    EXPECT_FALSE(a.bit(2));
    EXPECT_TRUE(a.bit(3));
    EXPECT_FALSE(a.bit(1000));  // out of range = 0
}

TEST(Bigint, ToDouble) {
    EXPECT_DOUBLE_EQ(bigint(12345).to_double(), 12345.0);
    EXPECT_NEAR(bigint::pow2(100).to_double(), std::pow(2.0, 100), 1e15);
}

TEST(Bigint, ToHex) {
    EXPECT_EQ(bigint(0).to_hex(), "0x0");
    EXPECT_EQ(bigint(255).to_hex(), "0xff");
    EXPECT_EQ(bigint::pow2(64).to_hex(), "0x10000000000000000");
}

TEST(Bigint, DecimalRoundTripRandom) {
    xoshiro256ss rng(10);
    for (int i = 0; i < 25; ++i) {
        const bigint a = random_bigint(rng, 6);
        EXPECT_EQ(bigint::from_decimal(a.to_decimal()), a);
    }
}

}  // namespace
}  // namespace anole
