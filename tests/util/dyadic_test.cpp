// Tests for util/dyadic.h: exact rationals m/2^e and the conservation
// property the diffusion analysis needs.
#include "util/dyadic.h"

#include <gtest/gtest.h>

#include "util/bit_codec.h"

#include "util/rng.h"

namespace anole {
namespace {

TEST(Dyadic, ZeroAndOne) {
    EXPECT_TRUE(dyadic::zero().is_zero());
    EXPECT_FALSE(dyadic::one().is_zero());
    EXPECT_DOUBLE_EQ(dyadic::one().to_double(), 1.0);
    EXPECT_EQ(dyadic::zero().exponent(), 0u);
}

TEST(Dyadic, CanonicalForm) {
    // 4/2^2 == 1 (trailing zeros stripped).
    dyadic d(bigint(4), 2);
    EXPECT_EQ(d, dyadic::one());
    EXPECT_EQ(d.exponent(), 0u);
    // 6/2^1 == 3: exponent consumed by one factor of two.
    dyadic e(bigint(6), 1);
    EXPECT_EQ(e.mantissa(), bigint(3));
    EXPECT_EQ(e.exponent(), 0u);
}

TEST(Dyadic, HalfPlusHalfIsOne) {
    dyadic h(bigint(1), 1);  // 1/2
    EXPECT_EQ(h + h, dyadic::one());
}

TEST(Dyadic, AdditionAcrossExponents) {
    dyadic a(bigint(1), 2);  // 1/4
    dyadic b(bigint(1), 3);  // 1/8
    dyadic sum = a + b;      // 3/8
    EXPECT_EQ(sum.mantissa(), bigint(3));
    EXPECT_EQ(sum.exponent(), 3u);
    EXPECT_DOUBLE_EQ(sum.to_double(), 0.375);
}

TEST(Dyadic, SubtractionExact) {
    dyadic a(bigint(5), 3);  // 5/8
    dyadic b(bigint(1), 2);  // 2/8
    EXPECT_DOUBLE_EQ((a - b).to_double(), 3.0 / 8.0);
}

TEST(Dyadic, SubtractionUnderflowThrows) {
    dyadic a(bigint(1), 3);
    dyadic b(bigint(1), 2);
    EXPECT_THROW(a -= b, error);
}

TEST(Dyadic, CompareAcrossDenominators) {
    dyadic a(bigint(1), 1);  // 1/2
    dyadic b(bigint(3), 3);  // 3/8
    dyadic c(bigint(5), 3);  // 5/8
    EXPECT_GT(a, b);
    EXPECT_LT(a, c);
    EXPECT_LT(dyadic::zero(), b);
    EXPECT_GT(dyadic::one(), c);
    EXPECT_EQ(a, dyadic(bigint(4), 3));
}

TEST(Dyadic, DivPow2) {
    dyadic d = dyadic::one();
    d.div_pow2(4);
    EXPECT_DOUBLE_EQ(d.to_double(), 1.0 / 16.0);
    dyadic z = dyadic::zero();
    z.div_pow2(10);
    EXPECT_TRUE(z.is_zero());
    EXPECT_EQ(z.exponent(), 0u);  // zero stays canonical
}

TEST(Dyadic, MulSmall) {
    dyadic d(bigint(3), 4);  // 3/16
    d.mul_small(4);          // 12/16 = 3/4
    EXPECT_EQ(d.mantissa(), bigint(3));
    EXPECT_EQ(d.exponent(), 2u);
}

TEST(Dyadic, IntegerLift) {
    dyadic d(7);
    EXPECT_DOUBLE_EQ(d.to_double(), 7.0);
    EXPECT_EQ(d.exponent(), 0u);
}

TEST(Dyadic, ToStringDiagnostic) {
    dyadic d(bigint(3), 4);
    EXPECT_EQ(d.to_string(), "3/2^4");
}

// The invariant Lemma 3 rests on: one diffusion update preserves the sum
// of potentials exactly. Simulate the exchange at one "virtual" node set.
TEST(Dyadic, DiffusionStepConservesMassExactly) {
    xoshiro256ss rng(31);
    const std::size_t n = 8;
    const std::size_t log2_d = 5;  // D = 32 >= degree
    std::vector<dyadic> pot(n);
    for (std::size_t i = 0; i < n; ++i) {
        pot[i] = rng.bit() ? dyadic::one() : dyadic::zero();
    }
    dyadic before;
    for (const auto& p : pot) before += p;

    // Complete-graph exchange: everyone averages with everyone.
    std::vector<dyadic> next(n);
    for (std::size_t i = 0; i < n; ++i) {
        dyadic acc = pot[i];
        acc.mul_small((1u << log2_d) - (n - 1));
        for (std::size_t j = 0; j < n; ++j) {
            if (j != i) acc += pot[j];
        }
        acc.div_pow2(log2_d);
        next[i] = acc;
    }
    dyadic after;
    for (const auto& p : next) after += p;
    EXPECT_EQ(before, after);  // exact, not approximate
}

TEST(Dyadic, RepeatedAveragingApproachesMean) {
    // Two nodes averaging with share 1/4 each round converge to 1/2.
    dyadic a = dyadic::one(), b = dyadic::zero();
    for (int r = 0; r < 64; ++r) {
        dyadic na = a;
        na.mul_small(3);
        na += b;
        na.div_pow2(2);
        dyadic nb = b;
        nb.mul_small(3);
        nb += a;
        nb.div_pow2(2);
        a = na;
        b = nb;
    }
    EXPECT_NEAR(a.to_double(), 0.5, 1e-9);
    EXPECT_NEAR(b.to_double(), 0.5, 1e-9);
    EXPECT_EQ(a + b, dyadic::one());  // conservation still exact
}

TEST(Dyadic, WireBitsMatchesEncoderContract) {
    dyadic d(bigint(5), 7);
    EXPECT_EQ(d.wire_bits(), encoded_dyadic_bits(d));
    EXPECT_GT(d.wire_bits(), 0u);
}

}  // namespace
}  // namespace anole
