// Tests for util/table.h.
#include "util/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace anole {
namespace {

TEST(Table, PrintsAlignedCells) {
    text_table t({"name", "value"});
    t.add_row({"alpha", "1"});
    t.add_row({"b", "12345"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("12345"), std::string::npos);
    EXPECT_NE(out.find("+"), std::string::npos);
    EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, RowArityChecked) {
    text_table t({"a", "b"});
    EXPECT_THROW(t.add_row({"only-one"}), error);
}

TEST(Table, EmptyHeadersRejected) {
    EXPECT_THROW(text_table({}), error);
}

TEST(Table, CsvEscaping) {
    text_table t({"k", "v"});
    t.add_row({"with,comma", "with\"quote"});
    std::ostringstream os;
    t.print_csv(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("\"with,comma\""), std::string::npos);
    EXPECT_NE(out.find("\"with\"\"quote\""), std::string::npos);
    EXPECT_EQ(out.substr(0, 4), "k,v\n");
}

TEST(Table, JsonRowsKeyedByHeader) {
    text_table t({"graph", "messages"});
    t.add_row({"torus(8x8)", "1,234"});
    t.add_row({"cycle(64)", "56"});
    std::ostringstream os;
    t.print_json(os, "E1: demo");
    EXPECT_EQ(os.str(),
              "{\"title\": \"E1: demo\", \"rows\": ["
              "{\"graph\": \"torus(8x8)\", \"messages\": \"1,234\"}, "
              "{\"graph\": \"cycle(64)\", \"messages\": \"56\"}]}\n");
}

TEST(Table, JsonEscapesSpecials) {
    text_table t({"k"});
    t.add_row({"quote\" slash\\ newline\n"});
    std::ostringstream os;
    t.print_json(os, "x");
    EXPECT_NE(os.str().find("quote\\\" slash\\\\ newline\\n"), std::string::npos);
}

TEST(Format, Fixed) {
    EXPECT_EQ(fmt_fixed(3.14159, 2), "3.14");
    EXPECT_EQ(fmt_fixed(2.0, 0), "2");
}

TEST(Format, CountGroupsThousands) {
    EXPECT_EQ(fmt_count(0), "0");
    EXPECT_EQ(fmt_count(999), "999");
    EXPECT_EQ(fmt_count(1000), "1,000");
    EXPECT_EQ(fmt_count(1234567), "1,234,567");
    EXPECT_EQ(fmt_count(12), "12");
}

TEST(Format, Sci) {
    EXPECT_EQ(fmt_sci(1234567.0, 3), "1.23e+06");
}

TEST(Format, Ratio) {
    EXPECT_EQ(fmt_ratio(2.0), "2.00x");
}

}  // namespace
}  // namespace anole
