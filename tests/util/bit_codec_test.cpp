// Tests for util/bit_codec.h: the wire formats CONGEST accounting uses.
#include "util/bit_codec.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace anole {
namespace {

TEST(BitCodec, BitRoundTrip) {
    bit_writer w;
    w.put_bit(true);
    w.put_bit(false);
    w.put_bit(true);
    bit_reader r(w.bits());
    EXPECT_TRUE(r.get_bit());
    EXPECT_FALSE(r.get_bit());
    EXPECT_TRUE(r.get_bit());
    EXPECT_TRUE(r.exhausted());
}

TEST(BitCodec, UintRoundTrip) {
    bit_writer w;
    w.put_uint(0xDEAD, 16);
    w.put_uint(5, 3);
    bit_reader r(w.bits());
    EXPECT_EQ(r.get_uint(16), 0xDEADu);
    EXPECT_EQ(r.get_uint(3), 5u);
}

TEST(BitCodec, UintWidthLimit) {
    bit_writer w;
    EXPECT_THROW(w.put_uint(1, 65), error);
}

TEST(BitCodec, GammaKnownEncodings) {
    // gamma(1) = "1"
    {
        bit_writer w;
        w.put_gamma(1);
        EXPECT_EQ(w.size_bits(), 1u);
    }
    // gamma(2) = "010", gamma(3) = "011"
    {
        bit_writer w;
        w.put_gamma(2);
        EXPECT_EQ(w.size_bits(), 3u);
    }
    // gamma(4..7): 5 bits
    {
        bit_writer w;
        w.put_gamma(5);
        EXPECT_EQ(w.size_bits(), 5u);
    }
}

TEST(BitCodec, GammaRejectsZero) {
    bit_writer w;
    EXPECT_THROW(w.put_gamma(0), error);
}

TEST(BitCodec, GammaRoundTripRandom) {
    xoshiro256ss rng(2);
    bit_writer w;
    std::vector<std::uint64_t> values;
    for (int i = 0; i < 200; ++i) {
        const std::uint64_t v = 1 + rng.below(std::uint64_t{1} << 50);
        values.push_back(v);
        w.put_gamma(v);
    }
    bit_reader r(w.bits());
    for (std::uint64_t v : values) EXPECT_EQ(r.get_gamma(), v);
    EXPECT_TRUE(r.exhausted());
}

TEST(BitCodec, Gamma0HandlesZero) {
    bit_writer w;
    w.put_gamma0(0);
    w.put_gamma0(41);
    bit_reader r(w.bits());
    EXPECT_EQ(r.get_gamma0(), 0u);
    EXPECT_EQ(r.get_gamma0(), 41u);
}

TEST(BitCodec, GammaBitsMatchesEncoding) {
    xoshiro256ss rng(3);
    for (int i = 0; i < 100; ++i) {
        const std::uint64_t v = 1 + rng.below(std::uint64_t{1} << 48);
        bit_writer w;
        w.put_gamma(v);
        EXPECT_EQ(w.size_bits(), gamma_bits(v)) << v;
    }
}

TEST(BitCodec, DyadicRoundTrip) {
    xoshiro256ss rng(4);
    for (int i = 0; i < 50; ++i) {
        bigint m(1 + rng.below(1'000'000));
        const std::size_t e = rng.below(40);
        const dyadic d(std::move(m), e);
        bit_writer w;
        w.put_dyadic(d);
        EXPECT_EQ(w.size_bits(), encoded_dyadic_bits(d));
        bit_reader r(w.bits());
        EXPECT_EQ(r.get_dyadic(), d);
    }
}

TEST(BitCodec, DyadicZeroRoundTrip) {
    bit_writer w;
    w.put_dyadic(dyadic::zero());
    bit_reader r(w.bits());
    EXPECT_TRUE(r.get_dyadic().is_zero());
}

TEST(BitCodec, ReaderExhaustionThrows) {
    bit_writer w;
    w.put_bit(true);
    bit_reader r(w.bits());
    (void)r.get_bit();
    EXPECT_THROW((void)r.get_bit(), error);
}

TEST(BitCodec, BitsFor) {
    EXPECT_EQ(bits_for(0), 1u);
    EXPECT_EQ(bits_for(1), 1u);
    EXPECT_EQ(bits_for(2), 2u);
    EXPECT_EQ(bits_for(255), 8u);
    EXPECT_EQ(bits_for(256), 9u);
}

}  // namespace
}  // namespace anole
