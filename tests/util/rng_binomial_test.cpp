// Tests for util/rng.h's distributional samplers: binomial() across all
// three internal regimes (popcount p=1/2, BINV inversion, BTRS rejection)
// and multinomial_uniform(), checked by chi-squared against the
// per-token reference implementation they replaced in the walk ensemble
// (and against the analytic pmf where per-token sampling is too slow).
// All seeds are fixed, so every statistic below is deterministic.
#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

namespace anole {
namespace {

// The sampling loop binomial() replaced: n individual Bernoulli(p) draws.
std::uint64_t per_token_binomial(xoshiro256ss& rng, std::uint64_t n, double p) {
    std::uint64_t hits = 0;
    for (std::uint64_t t = 0; t < n; ++t) {
        if (p == 0.5 ? rng.bit() : rng.bernoulli(p)) ++hits;
    }
    return hits;
}

// Generous chi-squared threshold: df + 5*sqrt(2 df) sits far beyond the
// 99.9th percentile for every df used here; with fixed seeds the checks
// are deterministic anyway — the margin guards against resampling churn
// if the sampler internals ever change draw order.
double chi2_threshold(std::size_t df) {
    return static_cast<double>(df) + 5.0 * std::sqrt(2.0 * static_cast<double>(df));
}

// Two-sample chi-squared: same-size sample A (binomial()) vs sample B
// (per-token reference), bucketed per outcome k in [0, n] with sparse
// tails pooled so every bucket has a healthy expected count.
void expect_two_sample_match(std::uint64_t n, double p, std::uint64_t seed) {
    const int samples = 4000;
    xoshiro256ss rng_a(seed), rng_b(seed + 1);
    std::vector<int> a(n + 1, 0), b(n + 1, 0);
    for (int i = 0; i < samples; ++i) {
        ++a[binomial(rng_a, n, p)];
        ++b[per_token_binomial(rng_b, n, p)];
    }
    // Pool outcomes until each pooled bucket holds >= 20 combined counts.
    std::vector<double> pa, pb;
    double ca = 0, cb = 0;
    for (std::size_t k = 0; k <= n; ++k) {
        ca += a[k];
        cb += b[k];
        if (ca + cb >= 20) {
            pa.push_back(ca);
            pb.push_back(cb);
            ca = cb = 0;
        }
    }
    if (ca + cb > 0 && !pa.empty()) {
        pa.back() += ca;
        pb.back() += cb;
    }
    ASSERT_GE(pa.size(), 3u) << "degenerate bucketing for n=" << n << " p=" << p;
    double chi2 = 0;
    for (std::size_t i = 0; i < pa.size(); ++i) {
        const double d = pa[i] - pb[i];
        chi2 += d * d / (pa[i] + pb[i]);
    }
    EXPECT_LT(chi2, chi2_threshold(pa.size() - 1)) << "n=" << n << " p=" << p;
}

TEST(Binomial, EdgeCases) {
    xoshiro256ss r(1);
    EXPECT_EQ(binomial(r, 0, 0.5), 0u);
    EXPECT_EQ(binomial(r, 100, 0.0), 0u);
    EXPECT_EQ(binomial(r, 100, 1.0), 100u);
    for (int i = 0; i < 200; ++i) EXPECT_LE(binomial(r, 7, 0.3), 7u);
    EXPECT_THROW((void)binomial(r, 10, -0.1), error);
    EXPECT_THROW((void)binomial(r, 10, 1.5), error);
}

TEST(Binomial, DeterministicInSeed) {
    xoshiro256ss a(77), b(77);
    for (int i = 0; i < 200; ++i) {
        EXPECT_EQ(binomial(a, 1000, 0.37), binomial(b, 1000, 0.37));
    }
}

// p = 1/2, n <= 64: the popcount fast path (the lazy-walk coin).
TEST(Binomial, PopcountPathMatchesPerTokenReference) {
    expect_two_sample_match(25, 0.5, 101);
    expect_two_sample_match(64, 0.5, 102);
}

// n·p < 10: BINV inversion.
TEST(Binomial, InversionPathMatchesPerTokenReference) {
    expect_two_sample_match(45, 0.1, 103);
    expect_two_sample_match(30, 0.25, 104);
}

// n·p >= 10: BTRS rejection (small n keeps the reference affordable).
TEST(Binomial, BtrsPathMatchesPerTokenReference) {
    expect_two_sample_match(60, 0.2, 105);
    // p = 1/2 above the popcount cutoff (n <= 1024) so BTRS really runs.
    expect_two_sample_match(1200, 0.5, 106);
}

// Large-n BTRS (the million-token regime): per-token reference sampling
// is exactly what we're avoiding, so check against the analytic pmf.
TEST(Binomial, LargeNBtrsMatchesAnalyticPmf) {
    const std::uint64_t n = 5000;
    const double p = 0.5;
    const int samples = 20000;
    const double mean = static_cast<double>(n) * p;
    const double sd = std::sqrt(static_cast<double>(n) * p * (1 - p));
    // 16 equal-width buckets over mean ± 4σ, outermost buckets absorb the
    // tails; expected mass per bucket from the exact log-pmf.
    const int buckets = 16;
    const double lo = mean - 4 * sd, hi = mean + 4 * sd;
    const double width = (hi - lo) / buckets;
    auto bucket_of = [&](double k) {
        const int i = static_cast<int>((k - lo) / width);
        return i < 0 ? 0 : (i >= buckets ? buckets - 1 : i);
    };
    std::vector<double> expected(buckets, 0.0);
    const double logn1 = std::lgamma(static_cast<double>(n) + 1);
    for (std::uint64_t k = 0; k <= n; ++k) {
        const double kd = static_cast<double>(k);
        const double nd = static_cast<double>(n);
        const double logpmf = logn1 - std::lgamma(kd + 1) - std::lgamma(nd - kd + 1) +
                              kd * std::log(p) + (nd - kd) * std::log(1 - p);
        expected[bucket_of(kd)] += std::exp(logpmf) * samples;
    }
    std::vector<int> observed(buckets, 0);
    xoshiro256ss rng(107);
    for (int i = 0; i < samples; ++i) {
        ++observed[bucket_of(static_cast<double>(binomial(rng, n, p)))];
    }
    double chi2 = 0;
    for (int i = 0; i < buckets; ++i) {
        ASSERT_GT(expected[i], 1.0) << "bucket " << i;
        const double d = observed[i] - expected[i];
        chi2 += d * d / expected[i];
    }
    EXPECT_LT(chi2, chi2_threshold(buckets - 1));
}

TEST(Multinomial, CountsAlwaysSumToTotal) {
    xoshiro256ss rng(5);
    std::vector<std::uint64_t> out(7);
    for (std::uint64_t total : {0ull, 1ull, 13ull, 100000ull}) {
        multinomial_uniform(rng, total, out);
        std::uint64_t sum = 0;
        for (auto c : out) sum += c;
        EXPECT_EQ(sum, total);
    }
}

TEST(Multinomial, SingleBinTakesEverything) {
    xoshiro256ss rng(6);
    std::vector<std::uint64_t> out(1);
    multinomial_uniform(rng, 42, out);
    EXPECT_EQ(out[0], 42u);
}

TEST(Multinomial, EmptySpanThrows) {
    xoshiro256ss rng(6);
    EXPECT_THROW(multinomial_uniform(rng, 1, {}), error);
}

// Aggregate uniformity: pooled over many draws, bin totals are uniform.
TEST(Multinomial, BinTotalsUniformChiSquared) {
    const std::size_t bins = 7;
    const std::uint64_t per_draw = 500;
    const int draws = 400;
    xoshiro256ss rng(8);
    std::vector<std::uint64_t> out(bins);
    std::vector<double> totals(bins, 0.0);
    for (int i = 0; i < draws; ++i) {
        multinomial_uniform(rng, per_draw, out);
        for (std::size_t j = 0; j < bins; ++j) totals[j] += static_cast<double>(out[j]);
    }
    const double expected =
        static_cast<double>(per_draw) * draws / static_cast<double>(bins);
    double chi2 = 0;
    for (std::size_t j = 0; j < bins; ++j) {
        const double d = totals[j] - expected;
        chi2 += d * d / expected;
    }
    EXPECT_LT(chi2, chi2_threshold(bins - 1));
}

// Distributional check per bin: against the per-token reference splitter
// (each mover independently picks one of `bins` uniformly).
TEST(Multinomial, MatchesPerTokenSplitReference) {
    const std::size_t bins = 5;
    const std::uint64_t movers = 40;
    const int samples = 4000;
    xoshiro256ss rng_a(201), rng_b(202);
    // Compare the first bin's count distribution: Binomial(movers, 1/5).
    std::vector<int> a(movers + 1, 0), b(movers + 1, 0);
    std::vector<std::uint64_t> out(bins);
    for (int i = 0; i < samples; ++i) {
        multinomial_uniform(rng_a, movers, out);
        ++a[out[0]];
        std::uint64_t first = 0;
        for (std::uint64_t t = 0; t < movers; ++t) {
            if (rng_b.below(bins) == 0) ++first;
        }
        ++b[first];
    }
    std::vector<double> pa, pb;
    double ca = 0, cb = 0;
    for (std::size_t k = 0; k <= movers; ++k) {
        ca += a[k];
        cb += b[k];
        if (ca + cb >= 20) {
            pa.push_back(ca);
            pb.push_back(cb);
            ca = cb = 0;
        }
    }
    if (ca + cb > 0 && !pa.empty()) {
        pa.back() += ca;
        pb.back() += cb;
    }
    ASSERT_GE(pa.size(), 3u);
    double chi2 = 0;
    for (std::size_t i = 0; i < pa.size(); ++i) {
        const double d = pa[i] - pb[i];
        chi2 += d * d / (pa[i] + pb[i]);
    }
    EXPECT_LT(chi2, chi2_threshold(pa.size() - 1));
}

}  // namespace
}  // namespace anole
