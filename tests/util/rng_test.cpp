// Tests for util/rng.h: determinism, bounded sampling, Bernoulli, seeds,
// and the tape machinery the impossibility proof depends on.
#include "util/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace anole {
namespace {

TEST(Rng, SameSeedSameStream) {
    xoshiro256ss a(42), b(42);
    for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
    xoshiro256ss a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 1000; ++i) equal += a() == b() ? 1 : 0;
    EXPECT_LT(equal, 5);
}

TEST(Rng, BelowStaysInRange) {
    xoshiro256ss r(7);
    for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
        for (int i = 0; i < 200; ++i) EXPECT_LT(r.below(bound), bound);
    }
}

TEST(Rng, BelowOneIsAlwaysZero) {
    xoshiro256ss r(7);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(r.below(1), 0u);
}

TEST(Rng, BelowIsRoughlyUniform) {
    xoshiro256ss r(13);
    std::vector<int> counts(10, 0);
    const int samples = 100000;
    for (int i = 0; i < samples; ++i) ++counts[r.below(10)];
    for (int c : counts) {
        EXPECT_GT(c, samples / 10 - 600);
        EXPECT_LT(c, samples / 10 + 600);
    }
}

TEST(Rng, RangeInclusive) {
    xoshiro256ss r(3);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) seen.insert(r.range(5, 8));
    EXPECT_EQ(seen, (std::set<std::uint64_t>{5, 6, 7, 8}));
}

TEST(Rng, Uniform01InRange) {
    xoshiro256ss r(9);
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform01();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, BernoulliExtremes) {
    xoshiro256ss r(11);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.bernoulli(0.0));
        EXPECT_TRUE(r.bernoulli(1.0));
    }
}

TEST(Rng, BernoulliRatioMatchesExpectation) {
    xoshiro256ss r(17);
    int hits = 0;
    const int samples = 100000;
    for (int i = 0; i < samples; ++i) hits += r.bernoulli_ratio(1, 4) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / samples, 0.25, 0.01);
}

TEST(Rng, BitIsFair) {
    xoshiro256ss r(23);
    int ones = 0;
    const int samples = 100000;
    for (int i = 0; i < samples; ++i) ones += r.bit() ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(ones) / samples, 0.5, 0.01);
}

TEST(DeriveSeed, DeterministicAndSensitive) {
    EXPECT_EQ(derive_seed(1, 2, 3), derive_seed(1, 2, 3));
    EXPECT_NE(derive_seed(1, 2, 3), derive_seed(1, 2, 4));
    EXPECT_NE(derive_seed(1, 2, 3), derive_seed(1, 3, 3));
    EXPECT_NE(derive_seed(1, 2, 3), derive_seed(2, 2, 3));
}

TEST(DeriveSeed, AdjacentCoordinatesGiveIndependentStreams) {
    // Streams for node i and node i+1 should not correlate.
    xoshiro256ss a(derive_seed(99, 0, 0)), b(derive_seed(99, 1, 0));
    int equal = 0;
    for (int i = 0; i < 1000; ++i) equal += a() == b() ? 1 : 0;
    EXPECT_LT(equal, 5);
}

TEST(Tape, RecorderCapturesBits) {
    tape_recorder rec(5);
    std::vector<bool> drawn;
    for (int i = 0; i < 64; ++i) drawn.push_back(rec.next_bit());
    EXPECT_EQ(rec.tape(), drawn);
}

TEST(Tape, PlayerReplaysExactly) {
    tape_recorder rec(5);
    for (int i = 0; i < 64; ++i) (void)rec.next_bit();
    tape_player play(rec.tape());
    for (int i = 0; i < 64; ++i) EXPECT_EQ(play.next_bit(), rec.tape()[i]);
}

TEST(Tape, PlayerWrapsAround) {
    tape_player play(std::vector<bool>{true, false, true});
    std::vector<bool> expect = {true, false, true, true, false, true};
    for (bool e : expect) EXPECT_EQ(play.next_bit(), e);
}

TEST(Tape, EmptyTapeThrows) {
    EXPECT_THROW(tape_player(std::vector<bool>{}), error);
}

TEST(Tape, RngSourceDeterministic) {
    rng_bit_source a(3), b(3);
    for (int i = 0; i < 128; ++i) EXPECT_EQ(a.next_bit(), b.next_bit());
}

}  // namespace
}  // namespace anole
