// Tests for util/json.h — the minimal parser behind campaign specs and
// JSONL resume records.
#include "util/json.h"

#include <gtest/gtest.h>

namespace anole {
namespace {

TEST(Json, ParsesScalars) {
    EXPECT_TRUE(json_parse("null").is_null());
    EXPECT_TRUE(json_parse("true").as_bool());
    EXPECT_FALSE(json_parse("false").as_bool());
    EXPECT_DOUBLE_EQ(json_parse("3.25").as_number(), 3.25);
    EXPECT_DOUBLE_EQ(json_parse("-17").as_number(), -17.0);
    EXPECT_DOUBLE_EQ(json_parse("1e3").as_number(), 1000.0);
    EXPECT_EQ(json_parse("\"hi\"").as_string(), "hi");
    EXPECT_EQ(json_parse("  42  ").as_uint(), 42u);
}

TEST(Json, ParsesContainers) {
    const json_value v = json_parse(
        R"({"families": ["barbell", "ws"], "sizes": [64, 256], "seeds": 8,
            "nested": {"deep": [true, null]}})");
    ASSERT_TRUE(v.is_object());
    EXPECT_EQ(v.at("families").as_array().size(), 2u);
    EXPECT_EQ(v.at("families").as_array()[1].as_string(), "ws");
    EXPECT_EQ(v.at("sizes").as_array()[1].as_uint(), 256u);
    EXPECT_EQ(v.at("seeds").as_uint(), 8u);
    EXPECT_TRUE(v.at("nested").at("deep").as_array()[0].as_bool());
    EXPECT_TRUE(v.at("nested").at("deep").as_array()[1].is_null());
    EXPECT_TRUE(v.contains("seeds"));
    EXPECT_FALSE(v.contains("missing"));
}

TEST(Json, ParsesEmptyContainers) {
    EXPECT_TRUE(json_parse("{}").as_object().empty());
    EXPECT_TRUE(json_parse("[]").as_array().empty());
    EXPECT_TRUE(json_parse("[ ]").as_array().empty());
}

TEST(Json, DecodesStringEscapes) {
    EXPECT_EQ(json_parse(R"("a\"b\\c\/d\n\t")").as_string(), "a\"b\\c/d\n\t");
    EXPECT_EQ(json_parse(R"("Aé")").as_string(), "A\xc3\xa9");
    // Surrogate pair: U+1F600.
    EXPECT_EQ(json_parse(R"("😀")").as_string(), "\xf0\x9f\x98\x80");
}

TEST(Json, RejectsMalformedInput) {
    for (const char* bad :
         {"", "{", "[1,", "{\"a\":}", "tru", "\"unterminated", "01a", "1 2",
          "{\"a\" 1}", "\"bad \\x escape\"", "nul", "[1,2,]x"}) {
        EXPECT_THROW((void)json_parse(bad), error) << "input: " << bad;
    }
}

TEST(Json, TypeMismatchesThrow) {
    const json_value v = json_parse(R"({"a": 1})");
    EXPECT_THROW((void)v.as_array(), error);
    EXPECT_THROW((void)v.at("a").as_string(), error);
    EXPECT_THROW((void)v.at("b"), error);
    EXPECT_THROW((void)json_parse("-1").as_uint(), error);
    EXPECT_THROW((void)json_parse("1.5").as_uint(), error);
}

TEST(Json, EscapeRoundTripsThroughParse) {
    const std::string nasty = "quote\" backslash\\ newline\n tab\t ctrl\x01 end";
    std::string wire = "\"";  // append: dodges the GCC 12 -Wrestrict bug
    wire.append(json_escape(nasty));
    wire.append("\"");
    EXPECT_EQ(json_parse(wire).as_string(), nasty);
}

}  // namespace
}  // namespace anole
