// Tests for util/stats.h.
#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace anole {
namespace {

TEST(Stats, MeanAndVariance) {
    sample_stats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
    EXPECT_EQ(s.count(), 8u);
}

TEST(Stats, MinMaxMedian) {
    sample_stats s;
    for (double x : {3.0, 1.0, 2.0}) s.add(x);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 3.0);
    EXPECT_DOUBLE_EQ(s.median(), 2.0);
}

TEST(Stats, PercentileInterpolates) {
    sample_stats s;
    for (double x : {10.0, 20.0, 30.0, 40.0}) s.add(x);
    EXPECT_DOUBLE_EQ(s.percentile(0), 10.0);
    EXPECT_DOUBLE_EQ(s.percentile(100), 40.0);
    EXPECT_DOUBLE_EQ(s.percentile(50), 25.0);
}

TEST(Stats, EmptyThrows) {
    sample_stats s;
    EXPECT_THROW((void)s.mean(), error);
    EXPECT_THROW((void)s.min(), error);
    EXPECT_THROW((void)s.percentile(50), error);
    s.add(1.0);
    EXPECT_THROW((void)s.variance(), error);  // needs >= 2
}

TEST(Stats, PercentileRangeChecked) {
    sample_stats s;
    s.add(1.0);
    EXPECT_THROW((void)s.percentile(-1), error);
    EXPECT_THROW((void)s.percentile(101), error);
}

TEST(Fits, ThroughOriginRecoversSlope) {
    std::vector<double> x{1, 2, 3, 4}, y{2.5, 5.0, 7.5, 10.0};
    EXPECT_NEAR(fit_through_origin(x, y), 2.5, 1e-12);
}

TEST(Fits, LinearFitRecoversLine) {
    std::vector<double> x, y;
    for (int i = 0; i < 20; ++i) {
        x.push_back(i);
        y.push_back(3.0 + 2.0 * i);
    }
    const auto fit = linear_fit(x, y);
    EXPECT_NEAR(fit.intercept, 3.0, 1e-9);
    EXPECT_NEAR(fit.slope, 2.0, 1e-9);
    EXPECT_NEAR(fit.r2, 1.0, 1e-9);
}

TEST(Fits, LogLogSlopeFindsExponent) {
    std::vector<double> x, y;
    for (double v : {8.0, 16.0, 32.0, 64.0, 128.0}) {
        x.push_back(v);
        y.push_back(7.0 * v * v);  // y = 7 x^2
    }
    EXPECT_NEAR(loglog_slope(x, y), 2.0, 1e-9);
}

TEST(Fits, LogLogRejectsNonPositive) {
    std::vector<double> x{1, 2}, y{0, 1};
    EXPECT_THROW((void)loglog_slope(x, y), error);
}

TEST(Fits, SizeMismatchThrows) {
    std::vector<double> x{1, 2, 3}, y{1, 2};
    EXPECT_THROW((void)linear_fit(x, y), error);
    EXPECT_THROW((void)fit_through_origin(x, y), error);
}

}  // namespace
}  // namespace anole
