// Tests for core/post_election.h: the §3 extensions (explicit LE,
// broadcast, BFS tree construction) on top of the implicit election.
#include "core/post_election.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/properties.h"
#include "graph/spectral.h"

namespace anole {
namespace {

TEST(Announce, FloodsLeaderToEveryone) {
    for (auto fam : {graph_family::cycle, graph_family::torus, graph_family::star,
                     graph_family::binary_tree, graph_family::random_regular}) {
        graph g = make_family(fam, 48, 3);
        const auto d = diameter_exact(g);
        const auto r = run_announce(g, 0, 424242, d, 5);
        EXPECT_TRUE(r.all_know_leader) << to_string(fam);
        EXPECT_EQ(r.leader_id, 424242u);
    }
}

TEST(Announce, BuildsValidBfsTree) {
    for (auto fam : {graph_family::torus, graph_family::hypercube,
                     graph_family::erdos_renyi}) {
        graph g = make_family(fam, 64, 7);
        const auto d = diameter_exact(g);
        const auto r = run_announce(g, 5, 99, d, 9);
        EXPECT_TRUE(r.bfs_tree_valid) << to_string(fam);
        // Tree depth equals the root's eccentricity (BFS wave property).
        EXPECT_EQ(r.tree_depth, eccentricity(g, 5)) << to_string(fam);
    }
}

TEST(Announce, DepthsMatchBfsDistances) {
    graph g = make_torus(6, 6);
    const auto r = run_announce(g, 7, 11, diameter_exact(g), 3);
    const auto dist = bfs_distances(g, 7);
    for (std::size_t u = 0; u < g.num_nodes(); ++u) {
        EXPECT_EQ(r.depths[u], dist[u]) << u;
    }
}

TEST(Announce, CostIsDiameterTimeAndLinearMessages) {
    graph g = make_random_regular(128, 4, 3);
    const auto d = diameter_exact(g);
    const auto r = run_announce(g, 0, 7, d, 5);
    EXPECT_LE(r.rounds, d + 5);
    // One announcement per directed edge + one ack per node, no more.
    EXPECT_LE(r.totals.messages, 2 * g.num_edges() + g.num_nodes());
}

TEST(Announce, RejectsBadArguments) {
    graph g = make_cycle(8);
    EXPECT_THROW((void)run_announce(g, 100, 1, 4, 1), error);
    EXPECT_THROW((void)run_announce(g, 0, 0, 4, 1), error);
}

TEST(ExplicitElection, UpgradesImplicitToExplicit) {
    graph g = make_torus(6, 6);
    const auto prof = profile(g, 1);
    irrevocable_params p;
    p.n = g.num_nodes();
    p.tmix = prof.mixing_time;
    p.phi = prof.conductance;
    int ok = 0;
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        const auto r = run_explicit_irrevocable(g, p, prof.diameter, seed);
        if (!r.election.success) continue;  // implicit layer's whp event
        EXPECT_TRUE(r.success) << seed;
        EXPECT_TRUE(r.announcement.all_know_leader);
        EXPECT_EQ(r.announcement.leader_id, r.election.leader_id);
        EXPECT_TRUE(r.announcement.bfs_tree_valid);
        ++ok;
    }
    EXPECT_GE(ok, 3);
}

TEST(ExplicitElection, FailedElectionShortCircuits) {
    graph g = make_torus(5, 5);
    const auto prof = profile(g, 1);
    irrevocable_params p;
    p.n = g.num_nodes();
    p.tmix = prof.mixing_time;
    p.phi = prof.conductance;
    p.cand_c = 1e-9;  // no candidates -> implicit election fails
    const auto r = run_explicit_irrevocable(g, p, prof.diameter, 3);
    EXPECT_FALSE(r.election.success);
    EXPECT_FALSE(r.success);
    EXPECT_FALSE(r.announcement.all_know_leader);
}

}  // namespace
}  // namespace anole
