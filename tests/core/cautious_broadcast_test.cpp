// Tests for core/cautious_broadcast.h: tree well-formedness, cap
// enforcement, throttling, and Lemma 1's message-shape claims.
#include "core/cautious_broadcast.h"

#include <gtest/gtest.h>

#include <queue>

#include "graph/generators.h"

namespace anole {
namespace {

struct cb_run {
    engine<cautious_broadcast_node>* eng;
};

// Runs a single-source cautious broadcast; source = node 0.
std::unique_ptr<engine<cautious_broadcast_node>> run_cb(const graph& g, cb_config cfg,
                                                        std::uint64_t rounds,
                                                        std::uint64_t seed) {
    auto eng = std::make_unique<engine<cautious_broadcast_node>>(
        g, seed, congest_budget::strict_log(16));
    eng->spawn([&](std::size_t u) {
        return cautious_broadcast_node(g.degree(static_cast<node_id>(u)), u == 0,
                                       /*source_id=*/12345, cfg, rounds);
    });
    eng->run_until_halted(rounds + 2);
    return eng;
}

std::size_t territory_size(const engine<cautious_broadcast_node>& eng) {
    std::size_t count = 0;
    for (std::size_t u = 0; u < eng.num_nodes(); ++u) {
        if (eng.node(u).exec().in_tree()) ++count;
    }
    return count;
}

TEST(CautiousBroadcast, TreeIsWellFormed) {
    graph g = make_torus(6, 6);
    cb_config cfg;
    cfg.cap = 1000;  // effectively uncapped at this size
    auto eng = run_cb(g, cfg, 400, 3);

    // Every in-tree non-root has a parent that is itself in the tree, and
    // following parents reaches the root without cycles.
    for (std::size_t u = 0; u < g.num_nodes(); ++u) {
        const cb_exec& e = eng->node(u).exec();
        if (!e.in_tree() || e.is_root()) continue;
        ASSERT_TRUE(e.parent().has_value());
        // Walk up at most n steps.
        node_id cur = static_cast<node_id>(u);
        std::size_t steps = 0;
        while (!eng->node(cur).exec().is_root()) {
            const auto par = eng->node(cur).exec().parent();
            ASSERT_TRUE(par.has_value());
            cur = g.neighbor(cur, *par);
            ASSERT_TRUE(eng->node(cur).exec().in_tree());
            ASSERT_LT(++steps, g.num_nodes()) << "cycle in tree";
        }
    }
}

TEST(CautiousBroadcast, ParentChildConsistent) {
    graph g = make_random_regular(40, 4, 5);
    cb_config cfg;
    cfg.cap = 1000;
    auto eng = run_cb(g, cfg, 300, 7);
    // If u says "v is my child through port p", then v's parent port leads
    // back to u.
    for (std::size_t u = 0; u < g.num_nodes(); ++u) {
        const cb_exec& e = eng->node(u).exec();
        for (port_id cp : e.children()) {
            const node_id v = g.neighbor(static_cast<node_id>(u), cp);
            const cb_exec& ce = eng->node(v).exec();
            ASSERT_TRUE(ce.in_tree());
            ASSERT_TRUE(ce.parent().has_value());
            EXPECT_EQ(g.neighbor(v, *ce.parent()), u);
        }
    }
}

TEST(CautiousBroadcast, CoversSmallGraphWhenUncapped) {
    for (auto fam : {graph_family::path, graph_family::cycle, graph_family::star,
                     graph_family::complete}) {
        graph g = make_family(fam, 16, 2);
        cb_config cfg;
        cfg.cap = UINT64_MAX;
        auto eng = run_cb(g, cfg, 600, 11);
        EXPECT_EQ(territory_size(*eng), g.num_nodes()) << to_string(fam);
    }
}

TEST(CautiousBroadcast, CapBoundsTerritory) {
    graph g = make_torus(8, 8);
    cb_config cfg;
    cfg.cap = 10;
    auto eng = run_cb(g, cfg, 500, 13);
    const std::size_t t = territory_size(*eng);
    // Lemma 1's accounting: confirmed counts lag actual size, but the stop
    // cascade freezes growth within a doubling-and-report latency window.
    EXPECT_LT(t, 6 * cfg.cap);
    EXPECT_GE(t, 2u);
    // The root must have stopped.
    EXPECT_EQ(eng->node(0).exec().status(), cb_status::stopped);
}

TEST(CautiousBroadcast, StopPropagatesThroughTree) {
    graph g = make_path(24);
    cb_config cfg;
    cfg.cap = 6;
    auto eng = run_cb(g, cfg, 800, 17);
    for (std::size_t u = 0; u < g.num_nodes(); ++u) {
        const cb_exec& e = eng->node(u).exec();
        if (e.in_tree()) {
            EXPECT_EQ(e.status(), cb_status::stopped) << "node " << u;
        }
    }
}

TEST(CautiousBroadcast, MessagesScaleWithCapNotGraph) {
    // Lemma 1: messages = Õ(territory), independent of m, when capped.
    graph small = make_torus(8, 8);
    graph big = make_torus(16, 16);
    cb_config cfg;
    cfg.cap = 12;
    auto e1 = run_cb(small, cfg, 600, 19);
    auto e2 = run_cb(big, cfg, 600, 19);
    const double m1 = static_cast<double>(e1->metrics().total().messages);
    const double m2 = static_cast<double>(e2->metrics().total().messages);
    // 4x the graph must NOT mean 4x the messages; allow generous slack.
    EXPECT_LT(m2, m1 * 2.5);
}

TEST(CautiousBroadcast, ThrottleCutsMessagesVsLiteralPseudocode) {
    // E11's core claim: the printed every-round size reports cost far more
    // messages than the prose threshold reports, for the same territory.
    graph g = make_torus(10, 10);
    cb_config prose;
    prose.cap = 40;
    cb_config literal = prose;
    literal.report_every_round = true;
    auto ep = run_cb(g, prose, 500, 23);
    auto el = run_cb(g, literal, 500, 23);
    EXPECT_GT(el->metrics().total().messages, 2 * ep->metrics().total().messages);
}

TEST(CautiousBroadcast, NaiveFloodReachesEveryoneButCostsMore) {
    graph g = make_torus(8, 8);
    cb_config naive;
    naive.cap = UINT64_MAX;
    naive.throttle = false;
    naive.extend_all = true;
    auto en = run_cb(g, naive, 200, 29);
    EXPECT_EQ(territory_size(*en), g.num_nodes());
    // Flood touches every edge at least once.
    EXPECT_GE(en->metrics().total().messages, g.num_edges());
}

TEST(CautiousBroadcast, GrowthIsGradualUnderThrottle) {
    // The cautious tree grows at most ~1 adoption per active node per
    // round; after very few rounds the territory must still be tiny.
    graph g = make_complete(64);
    cb_config cfg;
    cfg.cap = 1000;
    auto eng = std::make_unique<engine<cautious_broadcast_node>>(
        g, 31, congest_budget::strict_log(16));
    eng->spawn([&](std::size_t u) {
        return cautious_broadcast_node(g.degree(static_cast<node_id>(u)), u == 0, 99,
                                       cfg, 1000);
    });
    eng->run_rounds(6);
    std::size_t t = 0;
    for (std::size_t u = 0; u < g.num_nodes(); ++u) {
        if (eng->node(u).exec().in_tree()) ++t;
    }
    EXPECT_LE(t, 40u);  // far below what a flood would reach (all 64 in 2)
}

TEST(CautiousBroadcast, DeterministicGivenSeed) {
    graph g = make_random_regular(30, 4, 3);
    cb_config cfg;
    cfg.cap = 20;
    auto a = run_cb(g, cfg, 300, 41);
    auto b = run_cb(g, cfg, 300, 41);
    EXPECT_EQ(a->metrics().total().messages, b->metrics().total().messages);
    for (std::size_t u = 0; u < g.num_nodes(); ++u) {
        EXPECT_EQ(a->node(u).exec().in_tree(), b->node(u).exec().in_tree());
    }
}

TEST(CautiousBroadcast, RootConfirmedTracksTerritory) {
    graph g = make_cycle(32);
    cb_config cfg;
    cfg.cap = UINT64_MAX;
    auto eng = run_cb(g, cfg, 800, 43);
    const std::size_t t = territory_size(*eng);
    const std::uint64_t confirmed = eng->node(0).exec().confirmed();
    EXPECT_LE(confirmed, t);
    EXPECT_GE(2 * confirmed + 2, t);  // doubling reports lag at most 2x
}

}  // namespace
}  // namespace anole
