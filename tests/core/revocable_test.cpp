// Tests for core/revocable.h: Theorem 3 / Corollary 1's protocol.
// Faithful parameters at tiny n; scaled policy for breadth.
#include "core/revocable.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/properties.h"

namespace anole {
namespace {

TEST(Revocable, FaithfulBlindOnTinyCycle) {
    graph g = make_cycle(4);
    auto p = revocable_params::paper_faithful();
    p.exact_potentials = false;
    const auto r = run_revocable(g, p, 42, 60'000'000);
    EXPECT_TRUE(r.success);
    EXPECT_EQ(r.num_leaders, 1u);
    EXPECT_EQ(r.nodes_chose, 4u);
    EXPECT_GT(r.congest_rounds, r.rounds);  // bit-by-bit charging is real
}

TEST(Revocable, FaithfulKnownIsoperimetricOnComplete) {
    graph g = make_complete(6);
    auto p = revocable_params::paper_faithful(isoperimetric_exact(g));
    p.exact_potentials = false;
    const auto r = run_revocable(g, p, 7, 60'000'000);
    EXPECT_TRUE(r.success);
    EXPECT_EQ(r.nodes_chose, 6u);
    // Degree alarm: nobody can choose while k^{1+ε} < degree+? = 5.
    for (const auto& [k, tr] : r.traces) {
        if (k * k < 5) {
            EXPECT_FALSE(tr.chose_here) << k;
        }
    }
}

TEST(Revocable, KnownIsoperimetricIsCheaperThanBlind) {
    graph g = make_cycle(4);
    auto blind = revocable_params::paper_faithful();
    blind.exact_potentials = false;
    auto informed = revocable_params::paper_faithful(isoperimetric_exact(g));
    informed.exact_potentials = false;
    const auto rb = run_revocable(g, blind, 3, 60'000'000);
    const auto ri = run_revocable(g, informed, 3, 60'000'000);
    ASSERT_TRUE(rb.success);
    ASSERT_TRUE(ri.success);
    // Theorem 3 vs Corollary 1: knowing i(G) divides the diffusion length.
    EXPECT_LT(ri.rounds, rb.rounds);
    EXPECT_LT(ri.totals.messages, rb.totals.messages);
}

TEST(Revocable, ExactPotentialsConservedThroughFullProtocol) {
    // Scaled (short diffusion) so exact mantissas stay small; the point is
    // that the protocol runs end-to-end on exact arithmetic.
    graph g = make_cycle(4);
    auto p = revocable_params::scaled(isoperimetric_exact(g), 0.001, 0.05);
    p.exact_potentials = true;
    p.r_floor = 8;
    p.f_floor = 6;
    const auto r = run_revocable(g, p, 5, 5'000'000);
    EXPECT_EQ(r.nodes_chose, 4u);
    EXPECT_GE(r.num_leaders, 1u);
}

struct scaled_case {
    graph_family family;
    std::size_t n;
};

class RevocableScaled : public ::testing::TestWithParam<scaled_case> {};

TEST_P(RevocableScaled, ElectsStableUniqueLeader) {
    const auto [fam, n] = GetParam();
    graph g = make_family(fam, n, 5);
    double iso = g.num_nodes() <= 20 ? isoperimetric_exact(g) : 0.0;
    auto p = revocable_params::scaled(
        iso > 0 ? std::optional<double>(iso) : std::nullopt, 0.02, 0.12);
    int successes = 0;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        const auto r = run_revocable(g, p, seed, 30'000'000);
        if (r.success) ++successes;
        EXPECT_LE(r.num_leaders, 2u) << to_string(fam);
    }
    EXPECT_GE(successes, 2) << to_string(fam);
}

INSTANTIATE_TEST_SUITE_P(
    Families, RevocableScaled,
    ::testing::Values(scaled_case{graph_family::cycle, 8},
                      scaled_case{graph_family::path, 8},
                      scaled_case{graph_family::complete, 8},
                      scaled_case{graph_family::torus, 16},
                      scaled_case{graph_family::star, 8},
                      scaled_case{graph_family::binary_tree, 9},
                      scaled_case{graph_family::random_regular, 16}),
    [](const auto& info) {
        return std::string(to_string(info.param.family)) + "_" +
               std::to_string(info.param.n);
    });

TEST(Revocable, LeaderHasMaxCertificateMinId) {
    graph g = make_torus(4, 4);
    auto p = revocable_params::scaled(std::nullopt, 0.02, 0.12);
    const auto r = run_revocable(g, p, 21, 30'000'000);
    ASSERT_TRUE(r.success);
    // Verify the dominance rule globally: the elected pair dominates every
    // chosen pair.
    EXPECT_GT(r.leader_certificate, 0u);
    EXPECT_GT(r.leader_id, 0u);
}

TEST(Revocable, RevocationsHappenThenQuiesce) {
    // Multiple nodes choose IDs at the same estimate; early wrong views
    // must be revoked; success implies quiescence afterwards.
    graph g = make_torus(4, 4);
    auto p = revocable_params::scaled(std::nullopt, 0.02, 0.12);
    const auto r = run_revocable(g, p, 31, 30'000'000);
    ASSERT_TRUE(r.success);
    EXPECT_GT(r.total_revocations, 0u);
    EXPECT_LE(r.stable_round, r.rounds);
}

TEST(Revocable, TracesShowLowEstimatesRejected) {
    graph g = make_cycle(4);
    auto p = revocable_params::paper_faithful();
    p.exact_potentials = false;
    const auto r = run_revocable(g, p, 42, 60'000'000);
    ASSERT_TRUE(r.success);
    // Lemma 8-style sanity: every estimate that was fully certified by
    // some node has a trace; iterations count matches f(k) per node.
    for (const auto& [k, tr] : r.traces) {
        EXPECT_GT(tr.iterations, 0u) << k;
        EXPECT_LE(tr.empty_iterations, tr.iterations) << k;
        EXPECT_LE(tr.probing_iterations, tr.iterations) << k;
    }
}

TEST(Revocable, DeterministicInSeed) {
    graph g = make_cycle(8);
    auto p = revocable_params::scaled(std::nullopt, 0.02, 0.12);
    const auto a = run_revocable(g, p, 9, 30'000'000);
    const auto b = run_revocable(g, p, 9, 30'000'000);
    EXPECT_EQ(a.rounds, b.rounds);
    EXPECT_EQ(a.leader_id, b.leader_id);
    EXPECT_EQ(a.totals.messages, b.totals.messages);
}

TEST(Revocable, PortPermutationInvariance) {
    graph g = make_torus(4, 4).with_permuted_ports(55);
    auto p = revocable_params::scaled(std::nullopt, 0.02, 0.12);
    int successes = 0;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        successes += run_revocable(g, p, seed, 30'000'000).success ? 1 : 0;
    }
    EXPECT_GE(successes, 2);
}

TEST(Revocable, KCapStopsEarly) {
    graph g = make_cycle(8);
    auto p = revocable_params::scaled(std::nullopt, 0.02, 0.12);
    p.k_cap = 2;  // give up before anyone can choose
    const auto r = run_revocable(g, p, 3, 30'000'000);
    EXPECT_FALSE(r.success);
    EXPECT_LE(r.final_estimate, 4u);
}

TEST(Revocable, MessageComplexityIsRoundsTimesEdges) {
    // Every node broadcasts every round: messages ≈ 2m · rounds.
    graph g = make_cycle(6);
    auto p = revocable_params::scaled(std::nullopt, 0.02, 0.12);
    const auto r = run_revocable(g, p, 13, 30'000'000);
    ASSERT_TRUE(r.success);
    const double per_round = static_cast<double>(r.totals.messages) /
                             static_cast<double>(r.rounds);
    EXPECT_NEAR(per_round, 2.0 * static_cast<double>(g.num_edges()), 2.0);
}

}  // namespace
}  // namespace anole
