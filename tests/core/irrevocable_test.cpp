// Tests for core/irrevocable.h: Theorem 1's protocol. Parameterized over
// graph families; all runs are deterministic in (graph, seed).
#include "core/irrevocable.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/spectral.h"

namespace anole {
namespace {

irrevocable_params params_for(const graph& g, std::uint64_t seed = 1) {
    const auto prof = profile(g, seed);
    irrevocable_params p;
    p.n = g.num_nodes();
    p.tmix = std::max<std::uint64_t>(prof.mixing_time, 1);
    p.phi = prof.conductance;
    return p;
}

// --- parameterized family sweep ---------------------------------------------

struct family_case {
    graph_family family;
    std::size_t n;
};

class IrrevocableFamily : public ::testing::TestWithParam<family_case> {};

TEST_P(IrrevocableFamily, ElectsUniqueLeaderAcrossSeeds) {
    const auto [fam, n] = GetParam();
    graph g = make_family(fam, n, 7);
    const auto p = params_for(g);
    int successes = 0;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        const auto r = run_irrevocable(g, p, seed);
        // Hard invariants on every run:
        EXPECT_LE(r.num_leaders, std::max<std::size_t>(r.num_candidates, 1));
        EXPECT_EQ(r.slot_overflows, 0u) << to_string(fam);
        if (r.success) {
            ++successes;
            EXPECT_TRUE(r.max_candidate_won) << to_string(fam) << " seed " << seed;
        }
    }
    // whp at these sizes: allow at most one unlucky seed.
    EXPECT_GE(successes, 4) << to_string(fam);
}

INSTANTIATE_TEST_SUITE_P(
    Families, IrrevocableFamily,
    ::testing::Values(family_case{graph_family::cycle, 32},
                      family_case{graph_family::torus, 64},
                      family_case{graph_family::complete, 64},
                      family_case{graph_family::random_regular, 64},
                      family_case{graph_family::hypercube, 64},
                      family_case{graph_family::erdos_renyi, 64},
                      family_case{graph_family::star, 64},
                      family_case{graph_family::ring_of_cliques, 64},
                      family_case{graph_family::binary_tree, 63},
                      family_case{graph_family::grid2d, 64}),
    [](const auto& info) {
        return std::string(to_string(info.param.family)) + "_" +
               std::to_string(info.param.n);
    });

// --- specific behaviors ------------------------------------------------------

TEST(Irrevocable, RunsUnderStrictCongestBudget) {
    graph g = make_torus(6, 6);
    const auto p = params_for(g);
    // strict_log(16) is the default; explicit here to document the check:
    // every protocol message must fit 16·⌈log2 n⌉ bits.
    EXPECT_NO_THROW({
        const auto r = run_irrevocable(g, p, 3, congest_budget::strict_log(16));
        (void)r;
    });
}

TEST(Irrevocable, DeterministicInSeed) {
    graph g = make_random_regular(48, 4, 5);
    const auto p = params_for(g);
    const auto a = run_irrevocable(g, p, 11);
    const auto b = run_irrevocable(g, p, 11);
    EXPECT_EQ(a.num_leaders, b.num_leaders);
    EXPECT_EQ(a.leader_id, b.leader_id);
    EXPECT_EQ(a.totals.messages, b.totals.messages);
    EXPECT_EQ(a.totals.bits, b.totals.bits);
}

TEST(Irrevocable, PortPermutationDoesNotBreakElection) {
    graph g = make_torus(6, 6);
    const auto p = params_for(g);
    graph h = g.with_permuted_ports(1234);
    int successes = 0;
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        successes += run_irrevocable(h, p, seed).success ? 1 : 0;
    }
    EXPECT_GE(successes, 3);
}

TEST(Irrevocable, TimeMatchesTheorem1Shape) {
    // rounds = O(tmix·log² n), dominated by the multiplexed broadcast.
    graph g = make_torus(6, 6);
    const auto p = params_for(g);
    const auto r = run_irrevocable(g, p, 3);
    EXPECT_EQ(r.rounds, p.total_rounds() + 1);
    const double bound = static_cast<double>(p.tmix) * p.log2n() * p.log2n() *
                         (4.0 * p.c * p.cand_c + 2.0 * p.c) +
                         16;
    EXPECT_LE(static_cast<double>(r.rounds), bound + 1);
}

TEST(Irrevocable, ZeroCandidatesIsAFailureNotACrash) {
    graph g = make_torus(5, 5);
    auto p = params_for(g);
    p.cand_c = 1e-9;  // nobody volunteers
    const auto r = run_irrevocable(g, p, 2);
    EXPECT_EQ(r.num_candidates, 0u);
    EXPECT_EQ(r.num_leaders, 0u);
    EXPECT_FALSE(r.success);
}

TEST(Irrevocable, EveryoneCandidateStillWorks) {
    graph g = make_complete(16);
    auto p = params_for(g);
    p.cand_c = 1e9;  // probability clamps to 1: all 16 are candidates
    const auto r = run_irrevocable(g, p, 3);
    EXPECT_EQ(r.num_candidates, 16u);
    EXPECT_EQ(r.num_leaders, 1u);
    EXPECT_TRUE(r.max_candidate_won);
}

TEST(Irrevocable, UnderProvisionedWalksCauseDetectableFailures) {
    // Lemma 2 violations are only observable when territories are small
    // and disjoint (on tiny or low-Φ graphs every tree covers the whole
    // network and the convergecast itself spreads the winner): use a
    // larger expander, few candidates, one token, and stunted walks.
    // Losers then never learn of the winner and multiple leaders appear.
    graph g = make_random_regular(256, 4, 11);
    auto p = params_for(g);
    p.cand_c = 0.5;       // ~4 candidates
    p.x_override = 1;     // a single walk token per candidate
    p.walk_len_mult = 0.05;
    std::size_t multi = 0;
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        const auto r = run_irrevocable(g, p, seed);
        if (r.num_leaders > 1) ++multi;
    }
    EXPECT_GE(multi, 1u);
}

TEST(Irrevocable, CandidateCountNearExpectation) {
    graph g = make_random_regular(256, 4, 9);
    auto p = params_for(g);
    std::size_t total = 0;
    const int runs = 8;
    for (int s = 0; s < runs; ++s) {
        total += run_irrevocable(g, p, 100 + s).num_candidates;
    }
    const double avg = static_cast<double>(total) / runs;
    const double expect = p.cand_c * p.log2n();  // = 8
    EXPECT_GT(avg, expect * 0.5);
    EXPECT_LT(avg, expect * 2.0);
}

TEST(Irrevocable, TerritoriesRespectCap) {
    graph g = make_torus(8, 8);
    const auto p = params_for(g);
    const auto r = run_irrevocable(g, p, 5);
    for (std::uint64_t t : r.territory_sizes) {
        EXPECT_LE(t, 6 * p.territory_cap());
    }
    EXPECT_EQ(r.territory_sizes.size(), r.num_candidates);
}

TEST(Irrevocable, PhaseAccountingSumsToTotal) {
    graph g = make_torus(6, 6);
    const auto p = params_for(g);
    const auto r = run_irrevocable(g, p, 3);
    const auto sum = r.phase_broadcast.messages + r.phase_walk.messages +
                     r.phase_convergecast.messages;
    EXPECT_LE(sum, r.totals.messages);
    EXPECT_GE(sum + 64, r.totals.messages);  // decide phase sends nothing
    EXPECT_GT(r.phase_broadcast.messages, 0u);
    EXPECT_GT(r.phase_walk.messages, 0u);
    EXPECT_GT(r.phase_convergecast.messages, 0u);
}

TEST(Irrevocable, ParamMismatchThrows) {
    graph g = make_cycle(16);
    irrevocable_params p;
    p.n = 8;  // wrong size
    p.tmix = 16;
    p.phi = 0.2;
    EXPECT_THROW((void)run_irrevocable(g, p, 1), error);
}

}  // namespace
}  // namespace anole
