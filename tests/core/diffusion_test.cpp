// Tests for core/diffusion.h: conservation, convergence (Lemmas 3-4),
// exact-vs-approx agreement, CONGEST charging.
#include "core/diffusion.h"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.h"
#include "graph/spectral.h"

namespace anole {
namespace {

using diff_engine = engine<diffusion_node>;

std::unique_ptr<diff_engine> run_diffusion(const graph& g, bool exact,
                                           std::size_t log2_d, std::uint64_t rounds,
                                           double black_fraction, std::uint64_t seed) {
    auto eng = std::make_unique<diff_engine>(g, seed, congest_budget::fragmenting(16));
    xoshiro256ss color_rng(derive_seed(seed, 0, 0xC0102));
    eng->spawn([&](std::size_t u) {
        const double start = color_rng.bernoulli(black_fraction) ? 1.0 : 0.0;
        return diffusion_node(g.degree(static_cast<node_id>(u)), start, exact, log2_d,
                              rounds);
    });
    eng->run_until_halted(rounds + 2);
    return eng;
}

TEST(Diffusion, ExactConservationBitForBit) {
    graph g = make_torus(4, 4);
    auto eng = run_diffusion(g, /*exact=*/true, /*log2_d=*/4, /*rounds=*/24, 0.5, 7);
    dyadic sum;
    for (std::size_t u = 0; u < g.num_nodes(); ++u) {
        sum += eng->node(u).potential_exact();
    }
    // Σ potentials must still be the integer number of black starters.
    EXPECT_EQ(sum.exponent(), 0u);
    EXPECT_TRUE(sum.mantissa().fits64());
}

TEST(Diffusion, ApproxConservationToFloatTolerance) {
    graph g = make_random_regular(32, 4, 3);
    auto eng = run_diffusion(g, false, 4, 200, 0.5, 9);
    double sum = 0, start_sum = 0;
    for (std::size_t u = 0; u < g.num_nodes(); ++u) sum += eng->node(u).potential();
    // Recompute the initial black count with the same coloring stream.
    xoshiro256ss color_rng(derive_seed(9, 0, 0xC0102));
    for (std::size_t u = 0; u < g.num_nodes(); ++u) {
        start_sum += color_rng.bernoulli(0.5) ? 1.0 : 0.0;
    }
    EXPECT_NEAR(sum, start_sum, 1e-9);
}

TEST(Diffusion, ConvergesToAverage) {
    // Lemma 3: potentials approach ‖Φ₁‖/n everywhere.
    graph g = make_complete(16);
    const std::uint64_t rounds = 600;
    auto eng = run_diffusion(g, false, 5, rounds, 0.5, 11);
    double sum = 0;
    for (std::size_t u = 0; u < g.num_nodes(); ++u) sum += eng->node(u).potential();
    const double avg = sum / static_cast<double>(g.num_nodes());
    for (std::size_t u = 0; u < g.num_nodes(); ++u) {
        EXPECT_NEAR(eng->node(u).potential(), avg, 0.02);
    }
}

TEST(Diffusion, Lemma4RoundBoundSuffices) {
    // r >= (2/φ²)·log(n/γ) rounds bring every node within γ relative
    // error of the average, φ = i(G)/D for our share matrix.
    graph g = make_cycle(8);
    const std::size_t log2_d = 4;  // D = 16
    const double i_g = 2.0 / 4.0;  // i(C_8) = 2/⌊n/2⌋
    const double phi = i_g / 16.0;
    const double gamma = 0.05;
    const auto r = static_cast<std::uint64_t>(
        std::ceil(2.0 / (phi * phi) * std::log(8.0 / gamma)));
    auto eng = run_diffusion(g, false, log2_d, r, 0.5, 13);
    double sum = 0;
    for (std::size_t u = 0; u < g.num_nodes(); ++u) sum += eng->node(u).potential();
    const double avg = sum / 8.0;
    if (avg > 0) {
        for (std::size_t u = 0; u < 8; ++u) {
            EXPECT_LE(std::abs(eng->node(u).potential() - avg) / avg, gamma);
        }
    }
}

TEST(Diffusion, ExactAndApproxAgree) {
    graph g = make_torus(4, 4);
    auto ex = run_diffusion(g, true, 4, 20, 0.5, 17);
    auto ap = run_diffusion(g, false, 4, 20, 0.5, 17);
    for (std::size_t u = 0; u < g.num_nodes(); ++u) {
        EXPECT_NEAR(ex->node(u).potential(), ap->node(u).potential(), 1e-9);
    }
}

TEST(Diffusion, ExactWireBitsGrowWithRounds) {
    // The paper's accounting: potential encodings grow ~log2(D) bits per
    // round. Check monotone growth of charged bits in exact mode.
    graph g = make_cycle(6);
    auto short_run = run_diffusion(g, true, 4, 8, 0.5, 19);
    auto long_run = run_diffusion(g, true, 4, 32, 0.5, 19);
    EXPECT_GT(long_run->metrics().total().bits,
              3 * short_run->metrics().total().bits);
    // Fragmenting budget charges extra congest rounds for the growth.
    EXPECT_GT(long_run->metrics().total().congest_rounds,
              long_run->metrics().total().rounds);
}

TEST(Diffusion, ChargedBitsFormula) {
    EXPECT_EQ(charged_potential_bits(1, 5), 6u);
    EXPECT_EQ(charged_potential_bits(10, 5), 51u);
}

TEST(Diffusion, DegreeBeyondDenominatorThrows) {
    graph g = make_star(20);  // hub degree 19 > D = 16
    auto eng = std::make_unique<diff_engine>(g, 1);
    eng->spawn([&](std::size_t u) {
        return diffusion_node(g.degree(static_cast<node_id>(u)), 1.0, false, 4, 10);
    });
    EXPECT_THROW(eng->run_rounds(3), error);
}

TEST(Diffusion, AllZeroStaysZero) {
    graph g = make_cycle(8);
    auto eng = std::make_unique<diff_engine>(g, 5);
    eng->spawn([&](std::size_t u) {
        return diffusion_node(g.degree(static_cast<node_id>(u)), 0.0, true, 4, 16);
    });
    eng->run_until_halted(20);
    for (std::size_t u = 0; u < g.num_nodes(); ++u) {
        EXPECT_TRUE(eng->node(u).potential_exact().is_zero());
    }
}

TEST(Diffusion, AllOnesStayOnes) {
    graph g = make_cycle(8);
    auto eng = std::make_unique<diff_engine>(g, 5);
    eng->spawn([&](std::size_t u) {
        return diffusion_node(g.degree(static_cast<node_id>(u)), 1.0, true, 4, 16);
    });
    eng->run_until_halted(20);
    for (std::size_t u = 0; u < g.num_nodes(); ++u) {
        EXPECT_EQ(eng->node(u).potential_exact(), dyadic::one());
    }
}

}  // namespace
}  // namespace anole
