// Tests for core/params.h: the concrete forms of the paper's parameter
// functions and their guardrails.
#include "core/params.h"

#include <gtest/gtest.h>

#include <cmath>

namespace anole {
namespace {

TEST(IrrevocableParams, IdSpaceIsNFourth) {
    irrevocable_params p;
    p.n = 10;
    EXPECT_EQ(p.id_space(), 10000u);
    p.n = 100;
    EXPECT_EQ(p.id_space(), 100000000u);
}

TEST(IrrevocableParams, IdSpaceOverflowGuard) {
    irrevocable_params p;
    p.n = std::size_t{1} << 15;
    EXPECT_THROW((void)p.id_space(), error);
}

TEST(IrrevocableParams, CandidateProbabilityClamped) {
    irrevocable_params p;
    p.n = 4;
    p.cand_c = 100;
    EXPECT_DOUBLE_EQ(p.cand_prob(), 1.0);
    p.cand_c = 1;
    p.n = 1024;
    EXPECT_NEAR(p.cand_prob(), 10.0 / 1024.0, 1e-12);
}

TEST(IrrevocableParams, XFormula) {
    irrevocable_params p;
    p.n = 1024;
    p.tmix = 64;
    p.phi = 0.25;
    // sqrt(1024*10 / (0.25*64)) = sqrt(640) = 25.3
    EXPECT_EQ(p.x(), 26u);
    p.x_mult = 2.0;
    EXPECT_EQ(p.x(), 51u);
    p.x_override = 7;
    EXPECT_EQ(p.x(), 7u);
}

TEST(IrrevocableParams, CapAndThrottleKnobs) {
    irrevocable_params p;
    p.n = 256;
    p.tmix = 16;
    p.phi = 0.5;
    EXPECT_GT(p.territory_cap(), 1u);
    p.cautious_cap = false;
    EXPECT_EQ(p.territory_cap(), UINT64_MAX);
}

TEST(IrrevocableParams, PhaseBoundariesOrdered) {
    irrevocable_params p;
    p.n = 128;
    p.tmix = 32;
    p.phi = 0.2;
    EXPECT_LT(p.bc_end(), p.walk_end());
    EXPECT_LT(p.walk_end(), p.total_rounds());
    EXPECT_EQ(p.bc_end(), p.bc_logical_rounds() * p.super_round());
}

TEST(IrrevocableParams, TimeComplexityShape) {
    // total_rounds = O(tmix log² n): doubling tmix ~doubles rounds.
    irrevocable_params a;
    a.n = 256;
    a.tmix = 32;
    a.phi = 0.2;
    irrevocable_params b = a;
    b.tmix = 64;
    const double ratio = static_cast<double>(b.total_rounds()) /
                         static_cast<double>(a.total_rounds());
    EXPECT_NEAR(ratio, 2.0, 0.2);
}

TEST(IrrevocableParams, Validation) {
    irrevocable_params p;
    EXPECT_THROW(p.validate(), error);
    p.n = 16;
    p.tmix = 4;
    p.phi = 0.5;
    EXPECT_NO_THROW(p.validate());
    p.phi = 1.5;
    EXPECT_THROW(p.validate(), error);
    p.phi = 0.5;
    p.c = 0;
    EXPECT_THROW(p.validate(), error);
}

// --- revocable -------------------------------------------------------------

TEST(RevocableParams, ShareDenominatorIsPow2AtLeast2K) {
    revocable_params p;  // ε = 1
    for (std::uint64_t k : {2u, 4u, 8u, 16u, 32u}) {
        const std::uint64_t d = p.share_denominator(k);
        EXPECT_EQ(d & (d - 1), 0u) << "power of two";
        EXPECT_GE(static_cast<double>(d), 2.0 * p.k_pow(k));
        EXPECT_LT(static_cast<double>(d), 4.0 * p.k_pow(k));
        EXPECT_EQ(std::uint64_t{1} << p.share_denominator_log2(k), d);
    }
}

TEST(RevocableParams, WhiteProbability) {
    revocable_params p;
    EXPECT_NEAR(p.p_white(4), std::log(2.0) / 16.0, 1e-12);
    EXPECT_LE(p.p_white(2), 1.0);
}

TEST(RevocableParams, TauFraction) {
    revocable_params p;  // ε = 1: k=4 -> K=16 -> τ = 14/15
    const auto t = p.tau(4);
    EXPECT_EQ(t.num, 14u);
    EXPECT_EQ(t.den, 15u);
    // Degenerate small k clamps to zero.
    revocable_params q;
    q.epsilon = 0.1;
    const auto t2 = q.tau(2);  // K = ceil(2^1.1) = 3 -> τ = 1/2
    EXPECT_EQ(t2.num, 1u);
    EXPECT_EQ(t2.den, 2u);
}

TEST(RevocableParams, BlindMatchesCorollaryForm) {
    // With i_eff = 2/k, r(k) must match 2·k^{2(2+ε)}·ln(k^{2(1+ε)}) up to
    // the power-of-two rounding of D (factor <= 4) plus the additive term.
    revocable_params p;  // blind, ε = 1
    for (std::uint64_t k : {4u, 8u, 16u}) {
        const double corollary =
            2.0 * std::pow(static_cast<double>(k), 2.0 * (2.0 + p.epsilon)) *
            std::log(std::pow(static_cast<double>(k), 2.0 * (1.0 + p.epsilon)));
        const double got = static_cast<double>(p.diffusion_rounds(k));
        EXPECT_GE(got, corollary * 0.9) << k;
        EXPECT_LE(got, corollary * 4.5 + p.k_pow(k) * std::log2(2.0 * k) + 1) << k;
    }
}

TEST(RevocableParams, KnownIsoperimetricShrinksDiffusion) {
    revocable_params blind;
    revocable_params informed;
    informed.isoperimetric = 2.0;  // e.g. a good expander
    EXPECT_LT(informed.diffusion_rounds(16), blind.diffusion_rounds(16));
}

TEST(RevocableParams, CertificationIterationsGrowWithK) {
    revocable_params p;
    EXPECT_LT(p.certification_iterations(4), p.certification_iterations(64));
    EXPECT_GE(p.certification_iterations(2), 1u);
}

TEST(RevocableParams, IdRangeGrowsAndCaps) {
    revocable_params p;
    EXPECT_LT(p.id_range(4), p.id_range(16));
    EXPECT_LE(p.id_range(1 << 30), std::uint64_t{1} << 62);
}

TEST(RevocableParams, ScaledPolicyFloorsApply) {
    auto p = revocable_params::scaled(std::nullopt, 1e-9, 1e-9);
    EXPECT_EQ(p.diffusion_rounds(4), p.r_floor);
    EXPECT_EQ(p.certification_iterations(4), p.f_floor);
}

TEST(RevocableParams, Validation) {
    revocable_params p;
    EXPECT_NO_THROW(p.validate());
    p.epsilon = 0;
    EXPECT_THROW(p.validate(), error);
    p.epsilon = 1;
    p.xi = 1.0;
    EXPECT_THROW(p.validate(), error);
    p.xi = 0.1;
    p.isoperimetric = -1.0;
    EXPECT_THROW(p.validate(), error);
}

}  // namespace
}  // namespace anole
