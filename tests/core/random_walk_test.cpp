// Tests for core/random_walk.h: token conservation and the mixing
// behaviour Algorithm 5's analysis relies on.
#include "core/random_walk.h"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.h"
#include "graph/spectral.h"

namespace anole {
namespace {

TEST(WalkEnsemble, TokensAreConserved) {
    for (auto fam : {graph_family::cycle, graph_family::torus,
                     graph_family::complete, graph_family::star}) {
        graph g = make_family(fam, 36, 3);
        const auto r = run_walk_ensemble(g, 0, 500, 64, 7);
        EXPECT_EQ(r.total_tokens, 500u) << to_string(fam);
    }
}

TEST(WalkEnsemble, ZeroTokensZeroMessages) {
    graph g = make_cycle(16);
    const auto r = run_walk_ensemble(g, 0, 0, 32, 3);
    EXPECT_EQ(r.total_tokens, 0u);
    EXPECT_EQ(r.totals.messages, 0u);
}

TEST(WalkEnsemble, MessagesBatchTokens) {
    // Token batching: messages per round <= 2m regardless of token count.
    graph g = make_torus(5, 5);
    const auto r = run_walk_ensemble(g, 0, 10'000, 20, 5);
    EXPECT_LE(r.totals.messages, 2 * g.num_edges() * 21);
    EXPECT_EQ(r.total_tokens, 10'000u);
}

TEST(WalkEnsemble, MixesToStationaryDistribution) {
    // After >= tmix steps, token counts approximate n_tokens * d_v/2m.
    graph g = make_random_regular(64, 4, 9);
    const auto prof = profile(g, 1);
    const std::uint64_t tokens = 100'000;
    const auto r = run_walk_ensemble(g, 0, tokens, 4 * prof.mixing_time, 11);
    const auto target = walk_stationary(g);
    for (std::size_t u = 0; u < g.num_nodes(); ++u) {
        const double expect = static_cast<double>(tokens) * target[u];
        const double got = static_cast<double>(r.resident[u]);
        // 5-sigma-ish Poisson tolerance.
        EXPECT_NEAR(got, expect, 5.0 * std::sqrt(expect) + 5.0) << u;
    }
}

TEST(WalkEnsemble, StationaryIsDegreeBiasedOnStar) {
    // The hub holds ~half the tokens at stationarity (d_hub = n-1 = m).
    graph g = make_star(17);
    const std::uint64_t tokens = 20'000;
    const auto r = run_walk_ensemble(g, 3, tokens, 200, 13);
    EXPECT_NEAR(static_cast<double>(r.resident[0]),
                static_cast<double>(tokens) / 2.0, 600.0);
}

TEST(WalkEnsemble, ShortWalksStayLocal) {
    // After 2 lazy steps from a cycle node, tokens are within distance 2.
    graph g = make_cycle(32);
    const auto r = run_walk_ensemble(g, 0, 1000, 2, 17);
    for (std::size_t u = 0; u < g.num_nodes(); ++u) {
        const std::size_t dist = std::min<std::size_t>(u, 32 - u);
        if (dist > 2) {
            EXPECT_EQ(r.resident[u], 0u) << u;
        }
    }
}

TEST(WalkEnsemble, DeterministicInSeed) {
    graph g = make_torus(5, 5);
    const auto a = run_walk_ensemble(g, 3, 777, 50, 23);
    const auto b = run_walk_ensemble(g, 3, 777, 50, 23);
    EXPECT_EQ(a.resident, b.resident);
    EXPECT_EQ(a.totals.messages, b.totals.messages);
}

TEST(WalkEnsemble, SourceOutOfRangeThrows) {
    graph g = make_cycle(8);
    EXPECT_THROW((void)run_walk_ensemble(g, 100, 10, 10, 1), error);
}

TEST(WalkEnsemble, DegreeZeroNodeIsAbsorbing) {
    // The 1-node graph (the only legal degree-0 instance under the
    // connectivity requirement) must keep every token resident instead
    // of sampling a random port — see the precondition note in
    // core/random_walk.h.
    const graph g(1, {}, "singleton");
    const auto r = run_walk_ensemble(g, 0, 250, 20, 5);
    ASSERT_EQ(r.resident.size(), 1u);
    EXPECT_EQ(r.resident[0], 250u);
    EXPECT_EQ(r.total_tokens, 250u);
    EXPECT_EQ(r.totals.messages, 0u);

    // And the n = 1 instances make_family can produce behave the same.
    const graph p1 = make_family(graph_family::path, 1, 1);
    ASSERT_EQ(p1.num_nodes(), 1u);
    EXPECT_EQ(run_walk_ensemble(p1, 0, 7, 5, 1).resident[0], 7u);
}

}  // namespace
}  // namespace anole
