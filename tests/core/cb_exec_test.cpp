// Unit-level tests for the cb_exec state machine (no engine): drive one
// node's executions by hand and check the protocol invariants locally.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/cautious_broadcast.h"

namespace anole {
namespace {

struct sent {
    port_id port;
    cb_kind kind;
    std::uint64_t value;
};

std::vector<sent> step(cb_exec& e, const cb_config& cfg, std::uint64_t seed = 1) {
    xoshiro256ss rng(seed);
    std::vector<sent> out;
    e.step(cfg, rng, [&out](port_id p, cb_kind k, std::uint64_t v) {
        out.push_back({p, k, v});
    });
    return out;
}

std::map<port_id, std::size_t> per_port(const std::vector<sent>& msgs) {
    std::map<port_id, std::size_t> count;
    for (const auto& m : msgs) ++count[m.port];
    return count;
}

TEST(CbExec, IdleNodeDoesNothing) {
    cb_exec e(4);
    cb_config cfg;
    EXPECT_TRUE(step(e, cfg).empty());
    EXPECT_FALSE(e.in_tree());
    EXPECT_EQ(e.status(), cb_status::passive);
}

TEST(CbExec, RootExtendsImmediately) {
    cb_exec e = cb_exec::make_root(4, 42);
    cb_config cfg;
    const auto msgs = step(e, cfg);
    ASSERT_EQ(msgs.size(), 1u);
    EXPECT_EQ(msgs[0].kind, cb_kind::source);
    EXPECT_EQ(msgs[0].value, 42u);
    EXPECT_TRUE(e.is_root());
    EXPECT_EQ(e.source_id(), 42u);
}

TEST(CbExec, RootNeverReinvitesSamePort) {
    cb_exec e = cb_exec::make_root(3, 9);
    cb_config cfg;
    std::vector<port_id> invited;
    for (int r = 0; r < 10; ++r) {
        for (const auto& m : step(e, cfg, 7 + r)) {
            if (m.kind == cb_kind::source) invited.push_back(m.port);
        }
    }
    // Degree 3: at most 3 distinct invitations, never a repeat.
    std::sort(invited.begin(), invited.end());
    EXPECT_EQ(std::adjacent_find(invited.begin(), invited.end()), invited.end());
    EXPECT_LE(invited.size(), 3u);
}

TEST(CbExec, AdoptionAcksAndAwaitsPermit) {
    cb_exec e(3);
    cb_config cfg;
    e.receive(1, cb_kind::source, 77);
    const auto msgs = step(e, cfg);
    ASSERT_TRUE(e.in_tree());
    EXPECT_EQ(e.source_id(), 77u);
    ASSERT_TRUE(e.parent().has_value());
    EXPECT_EQ(*e.parent(), 1u);
    // Exactly the confirm — no extension yet (no permit).
    ASSERT_EQ(msgs.size(), 1u);
    EXPECT_EQ(msgs[0].kind, cb_kind::confirm);
    EXPECT_EQ(msgs[0].port, 1u);
    EXPECT_EQ(e.status(), cb_status::passive);
    // Still no extension on the next step.
    EXPECT_TRUE(step(e, cfg).empty());
}

TEST(CbExec, PermitEnablesExtension) {
    cb_exec e(3);
    cb_config cfg;
    e.receive(1, cb_kind::source, 77);
    (void)step(e, cfg);
    e.receive(1, cb_kind::activate, 0);
    const auto msgs = step(e, cfg);
    EXPECT_EQ(e.status(), cb_status::active);
    ASSERT_EQ(msgs.size(), 1u);
    EXPECT_EQ(msgs[0].kind, cb_kind::source);
    EXPECT_NE(msgs[0].port, 1u);  // never back toward the parent
}

TEST(CbExec, FirstSourceWinsParenthood) {
    cb_exec e(4);
    cb_config cfg;
    e.receive(2, cb_kind::source, 10);
    e.receive(3, cb_kind::source, 11);
    (void)step(e, cfg);
    EXPECT_EQ(*e.parent(), 2u);
    EXPECT_EQ(e.source_id(), 10u);
}

TEST(CbExec, ConfirmRegistersChildAndCountsIt) {
    cb_exec e = cb_exec::make_root(3, 5);
    cb_config cfg;
    (void)step(e, cfg);  // extend
    e.receive(0, cb_kind::confirm, 1);
    (void)step(e, cfg);
    EXPECT_EQ(e.children().size(), 1u);
    EXPECT_EQ(e.confirmed(), 2u);
}

TEST(CbExec, RootVouchesReporters) {
    cb_exec e = cb_exec::make_root(4, 5);
    cb_config cfg;
    (void)step(e, cfg);
    e.receive(0, cb_kind::confirm, 1);  // new child on port 0
    const auto msgs = step(e, cfg);
    // The crossing (2 > 1) makes the root self-confirm: the reporter gets
    // its permit (activate) in the same step.
    bool activated = false;
    for (const auto& m : msgs) {
        if (m.kind == cb_kind::activate && m.port == 0) activated = true;
    }
    EXPECT_TRUE(activated);
    EXPECT_EQ(e.report_threshold(), 2u);
}

TEST(CbExec, CrossingReportsAndPassivates) {
    // Non-root with a parent on port 0: a child report that crosses the
    // threshold must go up as `size`, and the node pauses.
    cb_exec e(4);
    cb_config cfg;
    e.receive(0, cb_kind::source, 50);
    (void)step(e, cfg);                 // adopt, confirm
    e.receive(0, cb_kind::activate, 0); // permit
    (void)step(e, cfg);                 // extends somewhere
    e.receive(1, cb_kind::confirm, 1);  // suppose port 1 became a child
    const auto msgs = step(e, cfg);
    bool reported = false;
    for (const auto& m : msgs) {
        if (m.kind == cb_kind::size && m.port == 0 && m.value == 2) reported = true;
    }
    EXPECT_TRUE(reported);
    EXPECT_EQ(e.status(), cb_status::passive);
}

TEST(CbExec, RefreshFlowsWithoutCrossing) {
    // Root absorbs a refresh without any vouch traffic; counts update.
    cb_exec e = cb_exec::make_root(4, 5);
    cb_config cfg;
    (void)step(e, cfg);
    e.receive(0, cb_kind::confirm, 1);
    (void)step(e, cfg);  // confirmed=2, crossed to threshold 2
    e.receive(0, cb_kind::refresh, 2);
    (void)step(e, cfg);
    EXPECT_EQ(e.confirmed(), 3u);
}

TEST(CbExec, StopFreezesAndPropagatesOnce) {
    cb_exec e(4);
    cb_config cfg;
    e.receive(0, cb_kind::source, 50);
    (void)step(e, cfg);
    e.receive(1, cb_kind::confirm, 1);
    (void)step(e, cfg);
    e.receive(0, cb_kind::stop, 0);  // stop arrives from the parent
    const auto msgs = step(e, cfg);
    EXPECT_EQ(e.status(), cb_status::stopped);
    // Forwarded to the child (port 1) but NOT echoed to the parent.
    std::size_t stops_to_child = 0, stops_to_parent = 0;
    for (const auto& m : msgs) {
        if (m.kind != cb_kind::stop) continue;
        if (m.port == 1) ++stops_to_child;
        if (m.port == 0) ++stops_to_parent;
    }
    EXPECT_EQ(stops_to_child, 1u);
    EXPECT_EQ(stops_to_parent, 0u);
    // Nothing further on subsequent steps.
    EXPECT_TRUE(step(e, cfg).empty());
}

TEST(CbExec, CapTriggersStopEverywhere) {
    cb_exec e = cb_exec::make_root(4, 5);
    cb_config cfg;
    cfg.cap = 3;
    (void)step(e, cfg);
    e.receive(0, cb_kind::confirm, 1);
    (void)step(e, cfg);
    e.receive(1, cb_kind::confirm, 1);
    const auto msgs = step(e, cfg);  // confirmed = 3 >= cap
    EXPECT_EQ(e.status(), cb_status::stopped);
    std::size_t stops = 0;
    for (const auto& m : msgs) stops += m.kind == cb_kind::stop ? 1 : 0;
    EXPECT_EQ(stops, 2u);  // both children
}

TEST(CbExec, NeverTwoMessagesPerPortPerStep) {
    // Adversarial message soup: whatever arrives, a step never emits two
    // messages into one port (CONGEST).
    xoshiro256ss rng(99);
    for (int trial = 0; trial < 200; ++trial) {
        cb_exec e = trial % 2 == 0 ? cb_exec::make_root(5, 7) : cb_exec(5);
        cb_config cfg;
        cfg.cap = 4 + rng.below(8);
        for (int r = 0; r < 12; ++r) {
            const int injections = static_cast<int>(rng.below(4));
            for (int i = 0; i < injections; ++i) {
                const auto port = static_cast<port_id>(rng.below(5));
                const auto kind = static_cast<cb_kind>(rng.below(7));
                const std::uint64_t value = 1 + rng.below(8);
                e.receive(port, kind, value);
            }
            const auto msgs = step(e, cfg, rng());
            for (const auto& [port, count] : per_port(msgs)) {
                ASSERT_LE(count, 1u) << "trial " << trial << " round " << r
                                     << " port " << port;
            }
        }
    }
}

TEST(CbExec, ExtendAllFloodsAllUnusedPorts) {
    cb_exec e = cb_exec::make_root(4, 5);
    cb_config cfg;
    cfg.throttle = false;
    cfg.extend_all = true;
    const auto msgs = step(e, cfg);
    EXPECT_EQ(msgs.size(), 4u);
    for (const auto& m : msgs) EXPECT_EQ(m.kind, cb_kind::source);
    // Everything used: nothing more to invite.
    EXPECT_TRUE(step(e, cfg).empty());
}

}  // namespace
}  // namespace anole
