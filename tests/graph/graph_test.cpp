// Tests for graph/graph.h: CSR structure, port numbering, validation,
// and the anonymity adversary (port permutation).
#include "graph/graph.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/generators.h"

namespace anole {
namespace {

TEST(Graph, TriangleBasics) {
    graph g(3, {{0, 1}, {1, 2}, {0, 2}});
    EXPECT_EQ(g.num_nodes(), 3u);
    EXPECT_EQ(g.num_edges(), 3u);
    for (node_id u = 0; u < 3; ++u) EXPECT_EQ(g.degree(u), 2u);
    EXPECT_EQ(g.max_degree(), 2u);
}

TEST(Graph, ReversePortRoundTrip) {
    // Property: following a port and its reverse returns to the origin,
    // for every (node, port) pair, across several families.
    for (auto fam : {graph_family::torus, graph_family::random_regular,
                     graph_family::binary_tree, graph_family::complete}) {
        const graph g = make_family(fam, 36, 5);
        for (node_id u = 0; u < g.num_nodes(); ++u) {
            for (port_id p = 0; p < g.degree(u); ++p) {
                const node_id v = g.neighbor(u, p);
                const port_id q = g.reverse_port(u, p);
                ASSERT_LT(q, g.degree(v));
                EXPECT_EQ(g.neighbor(v, q), u) << g.name();
                EXPECT_EQ(g.reverse_port(v, q), p) << g.name();
            }
        }
    }
}

TEST(Graph, RejectsSelfLoop) {
    EXPECT_THROW(graph(2, {{0, 0}, {0, 1}}), error);
}

TEST(Graph, RejectsParallelEdges) {
    EXPECT_THROW(graph(2, {{0, 1}, {1, 0}}), error);
}

TEST(Graph, RejectsOutOfRange) {
    EXPECT_THROW(graph(2, {{0, 5}}), error);
}

TEST(Graph, RejectsDisconnected) {
    EXPECT_THROW(graph(4, {{0, 1}, {2, 3}}), error);
}

TEST(Graph, SingletonAllowed) {
    graph g(1, {});
    EXPECT_EQ(g.num_nodes(), 1u);
    EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Graph, PortTo) {
    graph g(3, {{0, 1}, {1, 2}, {0, 2}});
    EXPECT_EQ(g.neighbor(0, g.port_to(0, 2)), 2u);
    EXPECT_EQ(g.neighbor(1, g.port_to(1, 0)), 0u);
    EXPECT_THROW((void)g.port_to(0, 0), error);  // not an edge (self)
}

TEST(Graph, EdgeListNormalized) {
    graph g = make_cycle(5);
    const auto es = g.edge_list();
    EXPECT_EQ(es.size(), 5u);
    for (auto [u, v] : es) EXPECT_LT(u, v);
}

TEST(Graph, PermutedPortsPreserveTopology) {
    const graph g = make_torus(5, 5);
    const graph h = g.with_permuted_ports(99);
    ASSERT_EQ(h.num_nodes(), g.num_nodes());
    ASSERT_EQ(h.num_edges(), g.num_edges());
    for (node_id u = 0; u < g.num_nodes(); ++u) {
        ASSERT_EQ(h.degree(u), g.degree(u));
        // Same neighbor multiset, possibly different port order.
        std::multiset<node_id> a, b;
        for (port_id p = 0; p < g.degree(u); ++p) {
            a.insert(g.neighbor(u, p));
            b.insert(h.neighbor(u, p));
        }
        EXPECT_EQ(a, b);
        // Reverse ports still consistent.
        for (port_id p = 0; p < h.degree(u); ++p) {
            const node_id v = h.neighbor(u, p);
            EXPECT_EQ(h.neighbor(v, h.reverse_port(u, p)), u);
        }
    }
}

TEST(Graph, PermutedPortsActuallyPermute) {
    const graph g = make_complete(16);
    const graph h = g.with_permuted_ports(7);
    // With 15 ports per node, at least one node must see a changed order.
    bool changed = false;
    for (node_id u = 0; u < g.num_nodes() && !changed; ++u) {
        for (port_id p = 0; p < g.degree(u); ++p) {
            if (g.neighbor(u, p) != h.neighbor(u, p)) {
                changed = true;
                break;
            }
        }
    }
    EXPECT_TRUE(changed);
}

TEST(Graph, PermutationDeterministicInSeed) {
    const graph g = make_torus(4, 4);
    const graph h1 = g.with_permuted_ports(5);
    const graph h2 = g.with_permuted_ports(5);
    for (node_id u = 0; u < g.num_nodes(); ++u) {
        for (port_id p = 0; p < g.degree(u); ++p) {
            EXPECT_EQ(h1.neighbor(u, p), h2.neighbor(u, p));
        }
    }
}

TEST(Graph, FactsPropagateThroughPermutation) {
    graph g = make_cycle(8);
    ASSERT_TRUE(g.facts().diameter.has_value());
    const graph h = g.with_permuted_ports(3);
    EXPECT_EQ(h.facts().diameter, g.facts().diameter);
    EXPECT_NE(h.name(), g.name());
}

}  // namespace
}  // namespace anole
