// Tests for graph/dot_export.h.
#include "graph/dot_export.h"

#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.h"

namespace anole {
namespace {

TEST(DotExport, ContainsAllNodesAndEdges) {
    graph g = make_cycle(5);
    std::ostringstream os;
    write_dot(os, g);
    const std::string out = os.str();
    for (int u = 0; u < 5; ++u) {
        // Built via append rather than operator+ — GCC 12's -Wrestrict
        // false-positives on `"lit" + std::to_string(...)` at -O2+.
        std::string needle = "n";
        needle += std::to_string(u);
        needle += " [label=";
        EXPECT_NE(out.find(needle), std::string::npos);
    }
    EXPECT_NE(out.find("n0 -- n1"), std::string::npos);
    EXPECT_NE(out.find("n0 -- n4"), std::string::npos);
    EXPECT_EQ(out.substr(0, 11), "graph anole");
}

TEST(DotExport, CustomLabelsAndAttrs) {
    graph g = make_path(3);
    dot_style style;
    style.node_label = [](node_id u) {
        std::string label = "v";  // append: dodges the GCC 12 -Wrestrict bug
        label += std::to_string(u * 10);
        return label;
    };
    style.node_attrs = [](node_id u) {
        return u == 1 ? std::string("color=red") : std::string();
    };
    style.edge_attrs = [](node_id u, node_id v) {
        return u == 0 && v == 1 ? std::string("penwidth=3") : std::string();
    };
    std::ostringstream os;
    write_dot(os, g, style);
    const std::string out = os.str();
    EXPECT_NE(out.find("label=\"v10\""), std::string::npos);
    EXPECT_NE(out.find("color=red"), std::string::npos);
    EXPECT_NE(out.find("[penwidth=3]"), std::string::npos);
}

TEST(DotExport, HighlightStyle) {
    graph g = make_star(4);
    std::vector<bool> set{false, true, true, false};
    const auto style = highlight_style(set, node_id{0});
    std::ostringstream os;
    write_dot(os, g, style);
    const std::string out = os.str();
    EXPECT_NE(out.find("fillcolor=gold"), std::string::npos);
    EXPECT_NE(out.find("fillcolor=lightblue"), std::string::npos);
}

}  // namespace
}  // namespace anole
