// Tests for graph/properties.h: BFS, diameter, cut measures.
#include "graph/properties.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace anole {
namespace {

TEST(Bfs, DistancesOnPath) {
    graph g = make_path(5);
    const auto d = bfs_distances(g, 0);
    for (std::uint32_t i = 0; i < 5; ++i) EXPECT_EQ(d[i], i);
}

TEST(Bfs, DistancesOnCycleWrap) {
    graph g = make_cycle(6);
    const auto d = bfs_distances(g, 0);
    EXPECT_EQ(d[3], 3u);
    EXPECT_EQ(d[5], 1u);
}

TEST(Bfs, Eccentricity) {
    graph g = make_path(7);
    EXPECT_EQ(eccentricity(g, 0), 6u);
    EXPECT_EQ(eccentricity(g, 3), 3u);
}

TEST(Diameter, ExactOnFamilies) {
    EXPECT_EQ(diameter_exact(make_path(10)), 9u);
    EXPECT_EQ(diameter_exact(make_cycle(10)), 5u);
    EXPECT_EQ(diameter_exact(make_complete(10)), 1u);
    EXPECT_EQ(diameter_exact(make_hypercube(5)), 5u);
    EXPECT_EQ(diameter_exact(make_star(10)), 2u);
}

TEST(Diameter, EstimateBracketsExact) {
    for (auto fam : {graph_family::torus, graph_family::binary_tree,
                     graph_family::random_regular, graph_family::lollipop}) {
        const graph g = make_family(fam, 49, 7);
        const auto est = diameter_estimate(g);
        const auto exact = diameter_exact(g);
        EXPECT_LE(est.lower, exact) << to_string(fam);
        EXPECT_GE(est.upper, exact) << to_string(fam);
    }
}

TEST(Degrees, Stats) {
    graph g = make_star(5);
    const auto ds = degrees(g);
    EXPECT_EQ(ds.min, 1u);
    EXPECT_EQ(ds.max, 4u);
    EXPECT_DOUBLE_EQ(ds.mean, 8.0 / 5.0);
}

TEST(Cuts, HandCutOnBarbell) {
    graph g = make_barbell(4);
    // S = first clique: boundary = 1 bridge, |S| = 4, Vol(S) = 3*3+4 = 13.
    std::vector<bool> in_s(8, false);
    for (int i = 0; i < 4; ++i) in_s[i] = true;
    EXPECT_NEAR(cut_conductance(g, in_s), 1.0 / 13.0, 1e-12);
    EXPECT_NEAR(cut_isoperimetric(g, in_s), 1.0 / 4.0, 1e-12);
}

TEST(Cuts, ComplementGivesSameValue) {
    graph g = make_cycle(8);
    std::vector<bool> in_s(8, false);
    in_s[0] = in_s[1] = in_s[2] = true;
    std::vector<bool> comp(8, true);
    comp[0] = comp[1] = comp[2] = false;
    EXPECT_NEAR(cut_conductance(g, in_s), cut_conductance(g, comp), 1e-12);
    EXPECT_NEAR(cut_isoperimetric(g, in_s), cut_isoperimetric(g, comp), 1e-12);
}

TEST(Cuts, ImproperCutThrows) {
    graph g = make_cycle(4);
    EXPECT_THROW((void)cut_conductance(g, std::vector<bool>(4, false)), error);
    EXPECT_THROW((void)cut_conductance(g, std::vector<bool>(4, true)), error);
    EXPECT_THROW((void)cut_isoperimetric(g, std::vector<bool>(3, true)), error);
}

TEST(Cuts, ExactValuesOnKnownGraphs) {
    // Cycle C_8: best cut = contiguous half: 2 boundary edges.
    EXPECT_NEAR(conductance_exact(make_cycle(8)), 2.0 / 8.0, 1e-12);
    EXPECT_NEAR(isoperimetric_exact(make_cycle(8)), 2.0 / 4.0, 1e-12);
    // K_6: (n-s)/(n-1) at s=3 -> 3/5; i = 3.
    EXPECT_NEAR(conductance_exact(make_complete(6)), 3.0 / 5.0, 1e-12);
    EXPECT_NEAR(isoperimetric_exact(make_complete(6)), 3.0, 1e-12);
    // Path P_4: cutting one end edge: 1/1 iso? min over |S|<=2:
    // S={0}: 1/1; S={0,1}: 1/2 -> i = 1/2. Conductance: S={0,1}:
    // boundary 1, vol 3 -> 1/3.
    EXPECT_NEAR(conductance_exact(make_path(4)), 1.0 / 3.0, 1e-12);
    EXPECT_NEAR(isoperimetric_exact(make_path(4)), 1.0 / 2.0, 1e-12);
}

TEST(Cuts, ExactLimitedToSmallN) {
    graph g = make_cycle(30);
    EXPECT_THROW((void)conductance_exact(g), error);
    EXPECT_THROW((void)isoperimetric_exact(g), error);
}

TEST(Cuts, SweepIsUpperBoundOfExact) {
    // Sweep cuts (any embedding) can only overestimate the true minimum.
    for (auto fam : {graph_family::cycle, graph_family::barbell,
                     graph_family::star, graph_family::complete}) {
        const graph g = make_family(fam, 12, 3);
        std::vector<double> score(g.num_nodes());
        xoshiro256ss rng(4);
        for (auto& s : score) s = rng.uniform01();
        EXPECT_GE(conductance_sweep(g, score) + 1e-12, conductance_exact(g))
            << to_string(fam);
        EXPECT_GE(isoperimetric_sweep(g, score) + 1e-12, isoperimetric_exact(g))
            << to_string(fam);
    }
}

}  // namespace
}  // namespace anole
