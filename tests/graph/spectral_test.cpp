// Tests for graph/spectral.h: lazy-walk evolution, mixing time per the
// paper's §2 definition, eigenvalue estimation, sweep embeddings.
#include "graph/spectral.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "graph/generators.h"
#include "graph/properties.h"
#include "sim/thread_pool.h"

namespace anole {
namespace {

TEST(Walk, StepPreservesMass) {
    graph g = make_torus(4, 4);
    std::vector<double> pi(g.num_nodes(), 0.0);
    pi[3] = 1.0;
    for (int r = 0; r < 50; ++r) {
        pi = walk_distribution_step(g, pi);
        const double mass = std::accumulate(pi.begin(), pi.end(), 0.0);
        ASSERT_NEAR(mass, 1.0, 1e-12);
    }
}

TEST(Walk, StepHandComputedOnPath3) {
    // Path 0-1-2, start at node 1 (degree 2): stay 1/2, 1/4 to each end.
    graph g = make_path(3);
    std::vector<double> pi{0.0, 1.0, 0.0};
    pi = walk_distribution_step(g, pi);
    EXPECT_NEAR(pi[0], 0.25, 1e-15);
    EXPECT_NEAR(pi[1], 0.5, 1e-15);
    EXPECT_NEAR(pi[2], 0.25, 1e-15);
}

TEST(Walk, StationaryIsDegreeProportional) {
    graph g = make_star(5);
    const auto pi = walk_stationary(g);
    EXPECT_NEAR(pi[0], 4.0 / 8.0, 1e-15);  // hub: degree 4, 2m = 8
    EXPECT_NEAR(pi[1], 1.0 / 8.0, 1e-15);
    EXPECT_NEAR(std::accumulate(pi.begin(), pi.end(), 0.0), 1.0, 1e-12);
}

TEST(Walk, StationaryIsFixedPoint) {
    graph g = make_lollipop(5, 3);
    auto pi = walk_stationary(g);
    const auto next = walk_distribution_step(g, pi);
    for (std::size_t i = 0; i < pi.size(); ++i) EXPECT_NEAR(next[i], pi[i], 1e-12);
}

TEST(MixingTime, GrowsWithCycleLength) {
    mixing_time_options opt;
    opt.exhaustive_starts = true;
    const auto t8 = mixing_time_simulated(make_cycle(8), opt);
    const auto t16 = mixing_time_simulated(make_cycle(16), opt);
    const auto t32 = mixing_time_simulated(make_cycle(32), opt);
    EXPECT_LT(t8, t16);
    EXPECT_LT(t16, t32);
    // Θ(n²) shape: quadrupling-ish per doubling.
    EXPECT_GT(static_cast<double>(t32) / static_cast<double>(t16), 2.5);
}

TEST(MixingTime, CompleteGraphMixesFast) {
    mixing_time_options opt;
    opt.exhaustive_starts = true;
    EXPECT_LE(mixing_time_simulated(make_complete(16), opt), 16u);
}

TEST(MixingTime, HeuristicStartsMatchExhaustiveOnCycle) {
    // On vertex-transitive graphs every start is equivalent.
    mixing_time_options ex;
    ex.exhaustive_starts = true;
    mixing_time_options heur;
    heur.exhaustive_starts = false;
    graph g = make_cycle(16);
    EXPECT_EQ(mixing_time_simulated(g, ex), mixing_time_simulated(g, heur));
}

TEST(Lambda2, CompleteGraphClosedForm) {
    // Normalized adjacency of K_n has eigenvalues {1, -1/(n-1)}, so the
    // lazy matrix has second eigenvalue 1/2 - 1/(2(n-1)).
    const std::size_t n = 12;
    const double expect = 0.5 - 0.5 / static_cast<double>(n - 1);
    EXPECT_NEAR(lambda2_lazy(make_complete(n)), expect, 1e-6);
}

TEST(Lambda2, CycleClosedForm) {
    // Lazy cycle eigenvalues: 1/2 + cos(2πk/n)/2; second largest at k=1.
    const std::size_t n = 16;
    const double expect = 0.5 + 0.5 * std::cos(2.0 * M_PI / static_cast<double>(n));
    EXPECT_NEAR(lambda2_lazy(make_cycle(n)), expect, 1e-6);
}

TEST(Lambda2, SpectralBoundDominatesSimulatedTmix) {
    for (auto fam : {graph_family::cycle, graph_family::torus,
                     graph_family::complete, graph_family::star}) {
        const graph g = make_family(fam, 16, 3);
        mixing_time_options opt;
        opt.exhaustive_starts = true;
        graph stripped(g.num_nodes(), g.edge_list());  // drop facts
        EXPECT_GE(mixing_time_spectral_bound(stripped) + 1,
                  mixing_time_simulated(stripped, opt))
            << to_string(fam);
    }
}

TEST(Fiedler, SweepFindsBarbellBridge) {
    // The Fiedler embedding must expose the bridge cut exactly.
    graph g = make_barbell(6);
    const auto v = fiedler_vector(g);
    EXPECT_NEAR(conductance_sweep(g, v), conductance_exact(g), 1e-9);
}

TEST(Fiedler, SweepNearExactOnRingOfCliques) {
    graph g = make_ring_of_cliques(4, 3);
    const auto v = fiedler_vector(g);
    const double sweep = conductance_sweep(g, v);
    const double exact = conductance_exact(g);
    EXPECT_GE(sweep + 1e-12, exact);
    EXPECT_LE(sweep, exact * 2.0);  // sweep should be a decent bound here
}

TEST(Profile, HonorsGeneratorFacts) {
    graph g = make_cycle(32);  // has facts: diameter, Φ, i, tmix
    const auto p = profile(g, 1);
    EXPECT_EQ(p.diameter, 16u);
    EXPECT_NEAR(p.conductance, 2.0 / 32.0, 1e-12);
    EXPECT_EQ(p.mixing_time, 32u * 32u);
    EXPECT_TRUE(p.exact_cuts);
}

TEST(Profile, ComputesWhenNoFacts) {
    graph g(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});  // hand-built C_4
    const auto p = profile(g, 1);
    EXPECT_EQ(p.n, 4u);
    EXPECT_EQ(p.m, 4u);
    EXPECT_EQ(p.diameter, 2u);
    EXPECT_GT(p.conductance, 0.0);
    EXPECT_GT(p.mixing_time, 0u);
    EXPECT_GT(p.lambda2, 0.0);
}

TEST(MixingTimeSampled, MatchesExactOnSmallFamilies) {
    // The token-ensemble estimate against the exact §2 evaluation. Noise
    // biases the estimate slightly upward near the threshold, so the
    // tolerance is one-sided-ish: max(2 steps, exact/4).
    for (auto fam : {graph_family::cycle, graph_family::complete,
                     graph_family::dumbbell, graph_family::star,
                     graph_family::connected_caveman}) {
        const graph g = make_family(fam, 32, 1);
        graph stripped(g.num_nodes(), g.edge_list());  // drop facts
        mixing_time_options ex;
        ex.exhaustive_starts = true;
        const auto exact = mixing_time_simulated(stripped, ex);
        const auto sampled = mixing_time_sampled(stripped);
        const auto tol = std::max<std::uint64_t>(2, exact / 4);
        EXPECT_LE(sampled > exact ? sampled - exact : exact - sampled, tol)
            << to_string(fam) << " exact=" << exact << " sampled=" << sampled;
    }
}

TEST(MixingTimeSampled, DeterministicAcrossPools) {
    thread_pool p2(2), p8(8);
    const graph g = make_family(graph_family::dumbbell, 32, 1);
    sampled_mixing_options opt;
    opt.tokens = 8192;  // determinism check only — keep the ensemble small
    const auto serial = mixing_time_sampled(g, opt);
    for (thread_pool* pool : {&p2, &p8}) {
        opt.pool = pool;
        EXPECT_EQ(mixing_time_sampled(g, opt), serial);
    }
}

TEST(MixingTime, SimulatedDeterministicAcrossPools) {
    thread_pool p2(2), p8(8);
    for (const bool exhaustive : {false, true}) {
        const graph g = make_family(graph_family::dumbbell, 48, 1);
        mixing_time_options opt;
        opt.exhaustive_starts = exhaustive;
        const auto serial = mixing_time_simulated(g, opt);
        for (thread_pool* pool : {&p2, &p8}) {
            opt.pool = pool;
            EXPECT_EQ(mixing_time_simulated(g, opt), serial)
                << (exhaustive ? "exhaustive" : "heuristic");
        }
    }
}

TEST(Profile, ProvenanceReportsFactsAndKeepsCompatFlag) {
    const auto p = profile(make_cycle(32), 1);  // generator ships all facts
    EXPECT_EQ(p.diameter_method, profile_method::fact);
    EXPECT_EQ(p.conductance_method, profile_method::fact);
    EXPECT_EQ(p.isoperimetric_method, profile_method::fact);
    EXPECT_EQ(p.mixing_method, profile_method::fact);
    EXPECT_TRUE(p.exact_cuts);  // old consumers: fact counts as exact
}

TEST(Profile, ProvenanceReportsExactOnSmallBareGraph) {
    graph g(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
    const auto p = profile(g, 1);
    EXPECT_EQ(p.diameter_method, profile_method::exact);
    EXPECT_EQ(p.conductance_method, profile_method::exact);   // n <= 20
    EXPECT_EQ(p.mixing_method, profile_method::exact);        // exhaustive starts
    EXPECT_TRUE(p.exact_cuts);
    EXPECT_TRUE(p.lambda2_converged);
}

TEST(Profile, ProvenanceReportsBoundsOnLargerBareGraph) {
    const graph g = make_family(graph_family::connected_caveman, 200, 1);
    graph stripped(g.num_nodes(), g.edge_list());
    const auto p = profile(stripped, 1);
    EXPECT_EQ(p.conductance_method, profile_method::sweep);  // n > 20
    EXPECT_FALSE(p.exact_cuts);
    // n > 128: whatever tmix method the cost model picked, it is not the
    // exhaustive-exact one, and the value must respect the spectral bound.
    EXPECT_NE(p.mixing_method, profile_method::exact);
    EXPECT_NE(p.mixing_method, profile_method::fact);
    EXPECT_LE(p.mixing_time, mixing_time_spectral_bound(stripped, p.lambda2));
}

TEST(Profile, MethodNamesRoundTrip) {
    for (auto m : {profile_method::fact, profile_method::exact,
                   profile_method::sweep, profile_method::simulated,
                   profile_method::sampled, profile_method::spectral}) {
        EXPECT_EQ(profile_method_from_string(to_string(m)), m);
    }
    EXPECT_THROW((void)profile_method_from_string("guesswork"), error);
}

TEST(Profile, ToJsonCarriesProvenance) {
    const auto p = profile(make_cycle(32), 1);
    const std::string j = p.to_json();
    EXPECT_NE(j.find("\"mixing_method\":\"fact\""), std::string::npos) << j;
    EXPECT_NE(j.find("\"diameter_method\":\"fact\""), std::string::npos) << j;
    EXPECT_NE(j.find("\"lambda2_converged\""), std::string::npos) << j;
    EXPECT_NE(j.find("\"exact_cuts\":true"), std::string::npos) << j;
}

TEST(Profile, BitwiseIdenticalAcrossPools) {
    thread_pool p2(2), p8(8);
    // A fast-mixing family keeps the exhaustive dense tmix cheap; the
    // dumbbell/caveman pooled paths are covered by the dedicated
    // determinism tests above.
    const graph g = make_family(graph_family::watts_strogatz, 128, 1);
    graph stripped(g.num_nodes(), g.edge_list());
    const auto serial = profile(stripped, 1);
    for (thread_pool* pool : {&p2, &p8}) {
        profile_options opt;
        opt.pool = pool;
        const auto p = profile(stripped, opt);
        EXPECT_EQ(p.lambda2, serial.lambda2);  // bitwise
        EXPECT_EQ(p.mixing_time, serial.mixing_time);
        EXPECT_EQ(p.conductance, serial.conductance);
        EXPECT_EQ(p.isoperimetric, serial.isoperimetric);
        EXPECT_EQ(p.diameter, serial.diameter);
        EXPECT_EQ(p.to_json(), serial.to_json());
    }
}

}  // namespace
}  // namespace anole
