// Tests for graph/spectral.h: lazy-walk evolution, mixing time per the
// paper's §2 definition, eigenvalue estimation, sweep embeddings.
#include "graph/spectral.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "graph/generators.h"
#include "graph/properties.h"

namespace anole {
namespace {

TEST(Walk, StepPreservesMass) {
    graph g = make_torus(4, 4);
    std::vector<double> pi(g.num_nodes(), 0.0);
    pi[3] = 1.0;
    for (int r = 0; r < 50; ++r) {
        pi = walk_distribution_step(g, pi);
        const double mass = std::accumulate(pi.begin(), pi.end(), 0.0);
        ASSERT_NEAR(mass, 1.0, 1e-12);
    }
}

TEST(Walk, StepHandComputedOnPath3) {
    // Path 0-1-2, start at node 1 (degree 2): stay 1/2, 1/4 to each end.
    graph g = make_path(3);
    std::vector<double> pi{0.0, 1.0, 0.0};
    pi = walk_distribution_step(g, pi);
    EXPECT_NEAR(pi[0], 0.25, 1e-15);
    EXPECT_NEAR(pi[1], 0.5, 1e-15);
    EXPECT_NEAR(pi[2], 0.25, 1e-15);
}

TEST(Walk, StationaryIsDegreeProportional) {
    graph g = make_star(5);
    const auto pi = walk_stationary(g);
    EXPECT_NEAR(pi[0], 4.0 / 8.0, 1e-15);  // hub: degree 4, 2m = 8
    EXPECT_NEAR(pi[1], 1.0 / 8.0, 1e-15);
    EXPECT_NEAR(std::accumulate(pi.begin(), pi.end(), 0.0), 1.0, 1e-12);
}

TEST(Walk, StationaryIsFixedPoint) {
    graph g = make_lollipop(5, 3);
    auto pi = walk_stationary(g);
    const auto next = walk_distribution_step(g, pi);
    for (std::size_t i = 0; i < pi.size(); ++i) EXPECT_NEAR(next[i], pi[i], 1e-12);
}

TEST(MixingTime, GrowsWithCycleLength) {
    mixing_time_options opt;
    opt.exhaustive_starts = true;
    const auto t8 = mixing_time_simulated(make_cycle(8), opt);
    const auto t16 = mixing_time_simulated(make_cycle(16), opt);
    const auto t32 = mixing_time_simulated(make_cycle(32), opt);
    EXPECT_LT(t8, t16);
    EXPECT_LT(t16, t32);
    // Θ(n²) shape: quadrupling-ish per doubling.
    EXPECT_GT(static_cast<double>(t32) / static_cast<double>(t16), 2.5);
}

TEST(MixingTime, CompleteGraphMixesFast) {
    mixing_time_options opt;
    opt.exhaustive_starts = true;
    EXPECT_LE(mixing_time_simulated(make_complete(16), opt), 16u);
}

TEST(MixingTime, HeuristicStartsMatchExhaustiveOnCycle) {
    // On vertex-transitive graphs every start is equivalent.
    mixing_time_options ex;
    ex.exhaustive_starts = true;
    mixing_time_options heur;
    heur.exhaustive_starts = false;
    graph g = make_cycle(16);
    EXPECT_EQ(mixing_time_simulated(g, ex), mixing_time_simulated(g, heur));
}

TEST(Lambda2, CompleteGraphClosedForm) {
    // Normalized adjacency of K_n has eigenvalues {1, -1/(n-1)}, so the
    // lazy matrix has second eigenvalue 1/2 - 1/(2(n-1)).
    const std::size_t n = 12;
    const double expect = 0.5 - 0.5 / static_cast<double>(n - 1);
    EXPECT_NEAR(lambda2_lazy(make_complete(n)), expect, 1e-6);
}

TEST(Lambda2, CycleClosedForm) {
    // Lazy cycle eigenvalues: 1/2 + cos(2πk/n)/2; second largest at k=1.
    const std::size_t n = 16;
    const double expect = 0.5 + 0.5 * std::cos(2.0 * M_PI / static_cast<double>(n));
    EXPECT_NEAR(lambda2_lazy(make_cycle(n)), expect, 1e-6);
}

TEST(Lambda2, SpectralBoundDominatesSimulatedTmix) {
    for (auto fam : {graph_family::cycle, graph_family::torus,
                     graph_family::complete, graph_family::star}) {
        const graph g = make_family(fam, 16, 3);
        mixing_time_options opt;
        opt.exhaustive_starts = true;
        graph stripped(g.num_nodes(), g.edge_list());  // drop facts
        EXPECT_GE(mixing_time_spectral_bound(stripped) + 1,
                  mixing_time_simulated(stripped, opt))
            << to_string(fam);
    }
}

TEST(Fiedler, SweepFindsBarbellBridge) {
    // The Fiedler embedding must expose the bridge cut exactly.
    graph g = make_barbell(6);
    const auto v = fiedler_vector(g);
    EXPECT_NEAR(conductance_sweep(g, v), conductance_exact(g), 1e-9);
}

TEST(Fiedler, SweepNearExactOnRingOfCliques) {
    graph g = make_ring_of_cliques(4, 3);
    const auto v = fiedler_vector(g);
    const double sweep = conductance_sweep(g, v);
    const double exact = conductance_exact(g);
    EXPECT_GE(sweep + 1e-12, exact);
    EXPECT_LE(sweep, exact * 2.0);  // sweep should be a decent bound here
}

TEST(Profile, HonorsGeneratorFacts) {
    graph g = make_cycle(32);  // has facts: diameter, Φ, i, tmix
    const auto p = profile(g, 1);
    EXPECT_EQ(p.diameter, 16u);
    EXPECT_NEAR(p.conductance, 2.0 / 32.0, 1e-12);
    EXPECT_EQ(p.mixing_time, 32u * 32u);
    EXPECT_TRUE(p.exact_cuts);
}

TEST(Profile, ComputesWhenNoFacts) {
    graph g(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});  // hand-built C_4
    const auto p = profile(g, 1);
    EXPECT_EQ(p.n, 4u);
    EXPECT_EQ(p.m, 4u);
    EXPECT_EQ(p.diameter, 2u);
    EXPECT_GT(p.conductance, 0.0);
    EXPECT_GT(p.mixing_time, 0u);
    EXPECT_GT(p.lambda2, 0.0);
}

}  // namespace
}  // namespace anole
