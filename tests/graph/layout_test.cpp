// Tests for graph/layout.h: quadtree mass/centroid bookkeeping, the
// Barnes–Hut approximation against the exact pairwise sum, closed-form
// force sanity, bitwise determinism across thread-pool sizes, and the
// SVG renderer's caps.
#include "graph/layout.h"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.h"
#include "sim/thread_pool.h"

namespace anole {
namespace {

TEST(BhQuadtree, MassAndCentroidMatchTheBodySet) {
    const std::vector<layout_point> pts = {
        {0.0, 0.0}, {1.0, 0.0}, {0.0, 1.0}, {1.0, 1.0}, {0.25, 0.75}};
    bh_quadtree tree;
    tree.build(pts);
    EXPECT_DOUBLE_EQ(tree.total_mass(), 5.0);
    double sx = 0, sy = 0;
    for (const layout_point& p : pts) {
        sx += p.x;
        sy += p.y;
    }
    const layout_point c = tree.centroid();
    EXPECT_DOUBLE_EQ(c.x, sx / 5);
    EXPECT_DOUBLE_EQ(c.y, sy / 5);
    EXPECT_GE(tree.cell_count(), 1u);

    bh_quadtree empty;
    empty.build({});
    EXPECT_DOUBLE_EQ(empty.total_mass(), 0.0);
}

TEST(BhQuadtree, CoincidentPointsFoldIntoAggregateLeaves) {
    // 64 bodies at one coordinate would recurse forever without the
    // depth cap; with it they fold into an aggregate leaf.
    std::vector<layout_point> pts(64, layout_point{0.5, 0.5});
    pts.push_back({0.9, 0.9});
    bh_quadtree tree;
    tree.build(pts);
    EXPECT_DOUBLE_EQ(tree.total_mass(), 65.0);

    // The probe body inside the pile is excluded from its own force: the
    // 63 coincident companions contribute zero net direction (they sit
    // exactly at the probe), so the only pull is from the far body.
    const layout_point f = tree.repulsion(pts[0], 0, 1.0, 0.0);
    EXPECT_LT(f.x, 0.0);  // pushed away from (0.9, 0.9)
    EXPECT_LT(f.y, 0.0);
}

TEST(BhQuadtree, ThetaZeroMatchesBruteForcePairwiseSum) {
    // theta = 0 opens every cell: the traversal must reproduce the exact
    // O(V²) sum. Then theta = 0.85 must stay within a few percent.
    const graph g = make_family(graph_family::watts_strogatz, 200, 7);
    layout_options opt;
    opt.iterations = 3;  // partially-settled, irregular positions
    const std::vector<layout_point> pts = force_layout(g, opt);

    bh_quadtree tree;
    tree.build(pts);
    const double k = std::sqrt(1.0 / static_cast<double>(pts.size()));
    for (const std::size_t probe : {std::size_t{0}, std::size_t{57}, std::size_t{199}}) {
        layout_point exact{0, 0};
        for (std::size_t j = 0; j < pts.size(); ++j) {
            if (j == probe) continue;
            const double dx = pts[probe].x - pts[j].x;
            const double dy = pts[probe].y - pts[j].y;
            const double d2 = std::max(dx * dx + dy * dy, 1e-12);
            exact.x += dx * k * k / d2;
            exact.y += dy * k * k / d2;
        }
        const layout_point bh0 = tree.repulsion(pts[probe], probe, k, 0.0);
        EXPECT_NEAR(bh0.x, exact.x, 1e-9) << probe;
        EXPECT_NEAR(bh0.y, exact.y, 1e-9) << probe;

        const layout_point bh = tree.repulsion(pts[probe], probe, k, 0.85);
        const double mag = std::hypot(exact.x, exact.y);
        EXPECT_NEAR(bh.x, exact.x, 0.08 * mag + 1e-12) << probe;
        EXPECT_NEAR(bh.y, exact.y, 0.08 * mag + 1e-12) << probe;
    }
}

TEST(BhQuadtree, SymmetricSquareHasZeroNetForceAtCenter) {
    const std::vector<layout_point> pts = {
        {0.0, 0.0}, {1.0, 0.0}, {0.0, 1.0}, {1.0, 1.0}, {0.5, 0.5}};
    bh_quadtree tree;
    tree.build(pts);
    const layout_point f = tree.repulsion(pts[4], 4, 1.0, 0.0);
    EXPECT_NEAR(f.x, 0.0, 1e-12);
    EXPECT_NEAR(f.y, 0.0, 1e-12);
}

TEST(BhQuadtree, FarClusterActsAsItsPointMass) {
    // A tight far-away cluster under a coarse theta must contribute like
    // m bodies at its center of mass: F = k²·m/d along the axis.
    std::vector<layout_point> pts;
    constexpr std::size_t m = 16;
    for (std::size_t i = 0; i < m; ++i) {
        pts.push_back({10.0 + 1e-6 * static_cast<double>(i), 10.0});
    }
    bh_quadtree tree;
    tree.build(pts);
    const layout_point probe{0.0, 10.0};
    const double k = 0.3;
    const layout_point f = tree.repulsion(probe, bh_quadtree::npos, k, 0.85);
    const double d = 10.0 + 1e-6 * (m - 1) / 2.0;  // distance to the COM
    EXPECT_NEAR(f.x, -k * k * m / d, 1e-6);
    EXPECT_NEAR(f.y, 0.0, 1e-9);
}

TEST(ForceLayout, SeedStableAndBitwiseIdenticalAcrossPoolSizes) {
    const graph g = make_family(graph_family::connected_caveman, 3000, 3);

    layout_options serial;
    serial.seed = 11;
    const std::vector<layout_point> base = force_layout(g, serial);
    ASSERT_EQ(base.size(), g.num_nodes());
    for (const layout_point& p : base) {
        EXPECT_GE(p.x, 0.0);
        EXPECT_LE(p.x, 1.0);
        EXPECT_GE(p.y, 0.0);
        EXPECT_LE(p.y, 1.0);
    }

    // 3000 nodes span two 2048-blocks, so pools actually shard the pass.
    for (const std::size_t workers : {std::size_t{2}, std::size_t{8}}) {
        thread_pool pool(workers);
        layout_options sharded;
        sharded.seed = 11;
        sharded.pool = &pool;
        const std::vector<layout_point> pts = force_layout(g, sharded);
        ASSERT_EQ(pts.size(), base.size());
        for (std::size_t u = 0; u < pts.size(); ++u) {
            EXPECT_EQ(pts[u].x, base[u].x) << "workers=" << workers << " u=" << u;
            EXPECT_EQ(pts[u].y, base[u].y) << "workers=" << workers << " u=" << u;
        }
    }

    // A different seed is a different embedding.
    layout_options other;
    other.seed = 12;
    const std::vector<layout_point> alt = force_layout(g, other);
    std::size_t moved = 0;
    for (std::size_t u = 0; u < alt.size(); ++u) {
        if (alt[u].x != base[u].x || alt[u].y != base[u].y) ++moved;
    }
    EXPECT_GT(moved, alt.size() / 2);
}

TEST(ForceLayout, TinyGraphsAreWellDefined) {
    const graph one(1, {});
    const auto p1 = force_layout(one);
    ASSERT_EQ(p1.size(), 1u);
    EXPECT_DOUBLE_EQ(p1[0].x, 0.5);
    EXPECT_DOUBLE_EQ(p1[0].y, 0.5);

    const graph pair(2, {{0, 1}});
    const auto p2 = force_layout(pair);
    ASSERT_EQ(p2.size(), 2u);
    EXPECT_NE(std::pair(p2[0].x, p2[0].y), std::pair(p2[1].x, p2[1].y));
}

TEST(LayoutSvg, EmitsSelfContainedMarkupAndHonorsCaps) {
    const graph g = make_family(graph_family::wheel, 64, 1);
    const std::vector<layout_point> pts = force_layout(g);
    const std::string svg = layout_svg(g, pts);

    EXPECT_EQ(svg.rfind("<svg", 0), 0u);
    EXPECT_NE(svg.find("</svg>"), std::string::npos);
    EXPECT_NE(svg.find("class=\"ge\""), std::string::npos);
    EXPECT_NE(svg.find("class=\"gn\""), std::string::npos);
    // The only URL-ish string is the xmlns namespace identifier.
    std::size_t at = svg.find("http://");
    while (at != std::string::npos) {
        EXPECT_EQ(svg.compare(at, 26, "http://www.w3.org/2000/svg"), 0);
        at = svg.find("http://", at + 1);
    }
    EXPECT_EQ(svg.find("<script"), std::string::npos);

    // Caps: a tiny edge budget stride-samples rather than dropping the
    // drawing or blowing it up.
    layout_svg_options capped;
    capped.max_edges = 10;
    capped.max_nodes = 8;
    const std::string small = layout_svg(g, pts, capped);
    std::size_t lines = 0, circles = 0;
    for (std::size_t at = small.find("<line"); at != std::string::npos;
         at = small.find("<line", at + 1)) {
        ++lines;
    }
    for (std::size_t at = small.find("<circle"); at != std::string::npos;
         at = small.find("<circle", at + 1)) {
        ++circles;
    }
    EXPECT_LE(lines, 2u * 10u);  // stride rounding, never the full edge set
    EXPECT_LE(circles, 2u * 8u);
    EXPECT_GT(lines, 0u);
    EXPECT_GT(circles, 0u);

    // Mismatched spans are a programming error.
    EXPECT_THROW((void)layout_svg(g, std::vector<layout_point>(3)), error);
}

}  // namespace
}  // namespace anole
