// Tests for graph/lanczos.h: the sparse Lanczos eigensolver behind
// lambda2_lazy / fiedler_vector.
//
//   * n=64, all 19 zoo families: the Ritz value must match a dense Jacobi
//     eigensolver (written here, no shared code) to 1e-7.
//   * n=256, all 19 families: eigenpair property checked independently
//     (one matvec in the test), plus deflation (the returned vector is
//     orthogonal to the known top eigenvector) and closed forms for
//     cycle/complete; power-iteration cross-check on sparse families.
//   * The sharded path must be bitwise identical for every pool size.
#include "graph/lanczos.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "graph/generators.h"
#include "graph/spectral.h"
#include "sim/thread_pool.h"

namespace anole {
namespace {

// Dense symmetrized lazy matrix N = I/2 + D^{-1/2} A D^{-1/2} / 2.
std::vector<std::vector<double>> dense_lazy(const graph& g) {
    const std::size_t n = g.num_nodes();
    std::vector<std::vector<double>> a(n, std::vector<double>(n, 0.0));
    for (node_id u = 0; u < n; ++u) {
        a[u][u] = 0.5;
        const double su = 1.0 / std::sqrt(static_cast<double>(g.degree(u)));
        for (node_id v : g.neighbors(u)) {
            a[u][v] += 0.5 * su / std::sqrt(static_cast<double>(g.degree(v)));
        }
    }
    return a;
}

// Cyclic Jacobi eigenvalue iteration; returns all eigenvalues sorted
// descending. O(n³) per sweep — test sizes only.
std::vector<double> jacobi_eigenvalues(std::vector<std::vector<double>> a) {
    const std::size_t n = a.size();
    for (int sweep = 0; sweep < 60; ++sweep) {
        double off = 0.0;
        for (std::size_t p = 0; p < n; ++p) {
            for (std::size_t q = p + 1; q < n; ++q) off += a[p][q] * a[p][q];
        }
        if (off < 1e-24) break;
        for (std::size_t p = 0; p < n; ++p) {
            for (std::size_t q = p + 1; q < n; ++q) {
                if (std::abs(a[p][q]) < 1e-15) continue;
                const double theta = (a[q][q] - a[p][p]) / (2.0 * a[p][q]);
                const double t = (theta >= 0 ? 1.0 : -1.0) /
                                 (std::abs(theta) + std::sqrt(theta * theta + 1.0));
                const double c = 1.0 / std::sqrt(t * t + 1.0);
                const double s = t * c;
                for (std::size_t k = 0; k < n; ++k) {
                    const double akp = a[k][p], akq = a[k][q];
                    a[k][p] = c * akp - s * akq;
                    a[k][q] = s * akp + c * akq;
                }
                for (std::size_t k = 0; k < n; ++k) {
                    const double apk = a[p][k], aqk = a[q][k];
                    a[p][k] = c * apk - s * aqk;
                    a[q][k] = s * apk + c * aqk;
                }
            }
        }
    }
    std::vector<double> eig(n);
    for (std::size_t i = 0; i < n; ++i) eig[i] = a[i][i];
    std::sort(eig.begin(), eig.end(), std::greater<>());
    return eig;
}

TEST(Lanczos, MatchesDenseJacobiOnAllFamilies64) {
    for (graph_family f : all_families()) {
        const graph g = make_family(f, 64, 1);
        const double expect = jacobi_eigenvalues(dense_lazy(g))[1];
        const lanczos_result r = lanczos_lambda2(g);
        EXPECT_NEAR(r.lambda2, expect, 1e-7)
            << to_string(f) << " n=" << g.num_nodes();
        EXPECT_LE(r.residual, 1e-6) << to_string(f);
    }
}

TEST(Lanczos, EigenpairPropertyOnAllFamilies256) {
    for (graph_family f : all_families()) {
        const graph g = make_family(f, 256, 1);
        const std::size_t n = g.num_nodes();
        const lanczos_result r = lanczos_lambda2(g);
        ASSERT_EQ(r.fiedler.size(), n) << to_string(f);
        EXPECT_GE(r.lambda2, 0.0) << to_string(f);
        EXPECT_LE(r.lambda2, 1.0) << to_string(f);
        EXPECT_LE(r.residual, 1e-6) << to_string(f);

        // Undo the D^{-1/2} output scaling to recover the raw unit
        // eigenvector of N, then check N v = θ v and v ⊥ √d directly.
        std::vector<double> v(n), sqrt_d(n);
        double nv = 0.0, nd = 0.0;
        for (node_id u = 0; u < n; ++u) {
            sqrt_d[u] = std::sqrt(static_cast<double>(g.degree(u)));
            v[u] = r.fiedler[u] * sqrt_d[u];
            nv += v[u] * v[u];
            nd += g.degree(u);
        }
        nv = std::sqrt(nv);
        ASSERT_GT(nv, 0.0) << to_string(f);
        double dot_top = 0.0, res2 = 0.0;
        for (node_id u = 0; u < n; ++u) {
            double s = 0.0;
            for (node_id w : g.neighbors(u)) {
                s += v[w] / nv / sqrt_d[w];
            }
            const double nvu = 0.5 * v[u] / nv + 0.5 / sqrt_d[u] * s;
            const double d = nvu - r.lambda2 * v[u] / nv;
            res2 += d * d;
            dot_top += (v[u] / nv) * (sqrt_d[u] / std::sqrt(nd));
        }
        EXPECT_LE(std::sqrt(res2), 1e-6) << to_string(f);
        EXPECT_LE(std::abs(dot_top), 1e-7) << to_string(f);
    }
}

TEST(Lanczos, ClosedFormsAt256) {
    const double l_complete = lanczos_lambda2(make_complete(256)).lambda2;
    EXPECT_NEAR(l_complete, 0.5 - 0.5 / 255.0, 1e-8);
    const double l_cycle = lanczos_lambda2(make_cycle(256)).lambda2;
    EXPECT_NEAR(l_cycle, 0.5 + 0.5 * std::cos(2.0 * M_PI / 256.0), 1e-8);
}

TEST(Lanczos, AgreesWithPowerIterationOnSparseFamilies256) {
    for (graph_family f : {graph_family::cycle, graph_family::watts_strogatz,
                           graph_family::barabasi_albert, graph_family::binary_tree}) {
        const graph g = make_family(f, 256, 1);
        const double lan = lanczos_lambda2(g).lambda2;
        const double pow = lambda2_power(g);
        EXPECT_NEAR(lan, pow, 1e-6) << to_string(f);
    }
}

TEST(Lanczos, BitwiseIdenticalForEveryPoolSize) {
    thread_pool p2(2), p8(8);
    for (graph_family f : {graph_family::dumbbell, graph_family::connected_caveman,
                           graph_family::barabasi_albert, graph_family::torus}) {
        const graph g = make_family(f, 256, 1);
        const lanczos_result serial = lanczos_lambda2(g);
        for (thread_pool* pool : {&p2, &p8}) {
            lanczos_options opt;
            opt.pool = pool;
            const lanczos_result r = lanczos_lambda2(g, opt);
            EXPECT_EQ(r.lambda2, serial.lambda2) << to_string(f);  // bitwise
            EXPECT_EQ(r.iterations, serial.iterations) << to_string(f);
            ASSERT_EQ(r.fiedler.size(), serial.fiedler.size()) << to_string(f);
            for (std::size_t i = 0; i < r.fiedler.size(); ++i) {
                ASSERT_EQ(r.fiedler[i], serial.fiedler[i])
                    << to_string(f) << " component " << i;
            }
        }
    }
}

TEST(Lanczos, ExplicitBudgetIsHonored) {
    const graph g = make_cycle(64);
    lanczos_options opt;
    opt.max_iters = 5;
    const lanczos_result r = lanczos_lambda2(g, opt);
    EXPECT_LE(r.iterations, 5u);
    // 5 Krylov steps cannot resolve the cycle's clustered spectrum.
    EXPECT_FALSE(r.converged);
}

TEST(Lanczos, RejectsSingletons) {
    EXPECT_THROW((void)lanczos_lambda2(make_complete(1)), error);
}

}  // namespace
}  // namespace anole
