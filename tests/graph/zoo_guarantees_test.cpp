// Guarantees for the topology-zoo generators (ISSUE 2 tentpole),
// mirroring generator_guarantees_test.cpp for the six new families:
// structural contracts (sizes, degrees, connectivity), the analytic
// facts each generator advertises, and the Φ/tmix regime each family was
// added to stress (low-Φ bottlenecks, heavy tails, clustered meshes).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>

#include "graph/generators.h"
#include "graph/properties.h"
#include "graph/spectral.h"

namespace anole {
namespace {

bool connected(const graph& g) {
    const auto dist = bfs_distances(g, 0);
    return std::all_of(dist.begin(), dist.end(), [](std::uint32_t d) {
        return d != std::numeric_limits<std::uint32_t>::max();
    });
}

TEST(ZooGuarantees, WattsStrogatzPreservesEdgeCountAcrossBeta) {
    // Rewiring moves endpoints but never adds or removes edges: |E| =
    // n·k/2 for every beta, and the graph stays simple + connected.
    for (const double beta : {0.0, 0.1, 0.5, 1.0}) {
        for (const std::size_t n : {16u, 64u, 200u}) {
            const graph g = make_watts_strogatz(n, 4, beta, 7);
            ASSERT_EQ(g.num_nodes(), n) << "beta=" << beta;
            EXPECT_EQ(g.num_edges(), n * 2) << "beta=" << beta;
            EXPECT_TRUE(connected(g)) << g.name() << " beta=" << beta;
        }
    }
}

TEST(ZooGuarantees, WattsStrogatzBetaZeroIsTheExactLattice) {
    // Every node sees exactly its two nearest neighbors per side.
    const graph g = make_watts_strogatz(32, 4, 0.0, 1);
    for (node_id u = 0; u < 32; ++u) ASSERT_EQ(g.degree(u), 4u);
    // The k=4 lattice's diameter is ⌈(n/2)/2⌉ = n/4.
    EXPECT_EQ(diameter_exact(g), 8u);
}

TEST(ZooGuarantees, WattsStrogatzShortcutsShrinkTheLatticeDiameter) {
    // The small-world effect: 15% shortcuts collapse the Θ(n) lattice
    // diameter to far below the beta = 0 value at the same size.
    const std::size_t n = 256;
    const auto lattice_diam = diameter_exact(make_watts_strogatz(n, 4, 0.0, 3));
    const auto sw_diam = diameter_exact(make_watts_strogatz(n, 4, 0.15, 3));
    EXPECT_EQ(lattice_diam, n / 4);
    EXPECT_LT(sw_diam, lattice_diam / 2);
}

TEST(ZooGuarantees, BarabasiAlbertSizeAndMinimumDegree)
{
    // Seed K_{m+1} plus m edges per later node; every node keeps
    // degree >= m, and the edge count is exact.
    for (const std::size_t m : {1u, 2u, 3u}) {
        for (const std::size_t n : {16u, 64u, 200u}) {
            const graph g = make_barabasi_albert(n, m, 11);
            ASSERT_EQ(g.num_nodes(), n);
            EXPECT_EQ(g.num_edges(), m * (m + 1) / 2 + (n - m - 1) * m);
            for (node_id u = 0; u < n; ++u) {
                ASSERT_GE(g.degree(u), m) << "node " << u << " of " << g.name();
            }
            EXPECT_TRUE(connected(g));
        }
    }
}

TEST(ZooGuarantees, BarabasiAlbertGrowsHubs) {
    // Preferential attachment concentrates degree: the max degree must
    // dwarf both the attachment parameter and the mean degree — the
    // heavy-tail regime no other family provides.
    const graph g = make_barabasi_albert(400, 2, 5);
    const auto d = degrees(g);
    EXPECT_GE(d.max, 20u);            // hub: ~√n scale in expectation
    EXPECT_LT(d.mean, 4.1);           // mean stays ~2m
    EXPECT_GE(d.max, 5 * d.min);
}

TEST(ZooGuarantees, RandomGeometricRadiusSweepsDensity) {
    // Radius √2 covers the whole unit square: the RGG is complete. A
    // moderate radius stays connected (by resampling) but far sparser.
    const graph dense = make_random_geometric(24, 1.5, 3);
    EXPECT_EQ(dense.num_edges(), 24u * 23 / 2);
    const graph sparse = make_random_geometric(64, 0.35, 3);
    EXPECT_TRUE(connected(sparse));
    EXPECT_LT(sparse.num_edges(), 64u * 63 / 2 / 3);
}

TEST(ZooGuarantees, ConnectedCavemanIsRegularAndConnected) {
    // The rewired cave edge keeps every node at degree cave_size - 1 —
    // the property distinguishing it from ring_of_cliques, whose
    // gateways gain degree.
    for (const std::size_t caves : {3u, 5u, 8u}) {
        for (const std::size_t size : {3u, 4u, 7u}) {
            const graph g = make_connected_caveman(caves, size);
            ASSERT_EQ(g.num_nodes(), caves * size);
            for (node_id u = 0; u < g.num_nodes(); ++u) {
                ASSERT_EQ(g.degree(u), size - 1) << "node " << u << " of " << g.name();
            }
            EXPECT_TRUE(connected(g));
        }
    }
}

TEST(ZooGuarantees, DumbbellFactsAndBottleneck) {
    // Advertised diameter is exact, and the bar keeps conductance at the
    // barbell scale or below (the near-zero-Φ corner).
    for (const std::size_t bar : {1u, 4u, 9u}) {
        const graph g = make_dumbbell(6, bar);
        ASSERT_EQ(g.num_nodes(), 12 + bar);
        ASSERT_TRUE(g.facts().diameter.has_value());
        EXPECT_EQ(*g.facts().diameter, bar + 3);
        EXPECT_EQ(diameter_exact(g), bar + 3);
        EXPECT_TRUE(connected(g));
    }
    const double phi = profile(make_dumbbell(8, 4), 1).conductance;
    EXPECT_LT(phi, 0.05);
    EXPECT_GT(phi, 0.0);
}

TEST(ZooGuarantees, WheelDegreesAndDiameter) {
    for (const std::size_t n : {4u, 9u, 33u}) {
        const graph g = make_wheel(n);
        ASSERT_EQ(g.num_nodes(), n);
        EXPECT_EQ(g.degree(0), n - 1);  // hub
        for (node_id u = 1; u < n; ++u) {
            ASSERT_EQ(g.degree(u), 3u) << "rim node " << u;
        }
        EXPECT_EQ(diameter_exact(g), n == 4 ? 1u : 2u);
        EXPECT_TRUE(connected(g));
    }
}

TEST(ZooGuarantees, ZooCoversBothEndsOfTheConductanceAxis) {
    // The reason these families exist: at comparable sizes the clustered/
    // bottlenecked zoo members sit well below the small-world and
    // heavy-tail members on Φ, giving the campaign sweeps both regimes.
    const double phi_ws = profile(make_watts_strogatz(64, 4, 0.15, 1), 1).conductance;
    const double phi_ba = profile(make_barabasi_albert(64, 2, 1), 1).conductance;
    const double phi_dumbbell = profile(make_dumbbell(30, 4), 1).conductance;
    const double phi_caveman = profile(make_connected_caveman(8, 8), 1).conductance;
    EXPECT_GT(phi_ws, 5 * phi_dumbbell);
    EXPECT_GT(phi_ba, 5 * phi_dumbbell);
    EXPECT_GT(phi_ws, 3 * phi_caveman);
    EXPECT_GT(phi_ba, 3 * phi_caveman);
}

TEST(ZooGuarantees, MixingTimeOrdersBottleneckVsSmallWorld) {
    // tmix blows up with the bottleneck: dumbbell must mix an order of
    // magnitude slower than the equally-sized small world.
    const auto tmix_sw = profile(make_watts_strogatz(64, 4, 0.15, 1), 1).mixing_time;
    const auto tmix_db = profile(make_dumbbell(30, 4), 1).mixing_time;
    EXPECT_GT(tmix_db, 10 * tmix_sw);
}

TEST(ZooGuarantees, FamilyRegistryRoundTripsNamesAndAliases) {
    for (const graph_family f : all_families()) {
        const auto parsed = family_from_string(to_string(f));
        ASSERT_TRUE(parsed.has_value()) << to_string(f);
        EXPECT_EQ(*parsed, f);
    }
    EXPECT_EQ(family_from_string("ws"), graph_family::watts_strogatz);
    EXPECT_EQ(family_from_string("ba"), graph_family::barabasi_albert);
    EXPECT_EQ(family_from_string("rgg"), graph_family::random_geometric);
    EXPECT_EQ(family_from_string("geometric"), graph_family::random_geometric);
    EXPECT_EQ(family_from_string("caveman"), graph_family::connected_caveman);
    EXPECT_EQ(family_from_string("er"), graph_family::erdos_renyi);
    EXPECT_FALSE(family_from_string("no_such_family").has_value());
}

TEST(ZooGuarantees, MakeFamilyHandlesTinySizesForEveryFamily) {
    // The n = 1 and n = 2 requests must produce valid (possibly clamped)
    // instances for every family — the degree-0 corner (single node) is
    // legal for families without a structural minimum.
    for (const graph_family f : all_families()) {
        for (const std::size_t n : {1u, 2u, 5u}) {
            const graph g = make_family(f, n, 3);
            EXPECT_GE(g.num_nodes(), 1u) << to_string(f) << " n=" << n;
            EXPECT_TRUE(connected(g)) << to_string(f) << " n=" << n;
        }
    }
}

}  // namespace
}  // namespace anole
