// Tests for graph/generators.h: structure, counts, degrees, analytic
// facts, determinism, parameter validation.
#include "graph/generators.h"

#include <gtest/gtest.h>

#include "graph/properties.h"

namespace anole {
namespace {

TEST(Generators, Path) {
    graph g = make_path(5);
    EXPECT_EQ(g.num_nodes(), 5u);
    EXPECT_EQ(g.num_edges(), 4u);
    EXPECT_EQ(degrees(g).min, 1u);
    EXPECT_EQ(degrees(g).max, 2u);
    EXPECT_EQ(*g.facts().diameter, 4u);
}

TEST(Generators, Cycle) {
    graph g = make_cycle(8);
    EXPECT_EQ(g.num_nodes(), 8u);
    EXPECT_EQ(g.num_edges(), 8u);
    EXPECT_EQ(degrees(g).min, 2u);
    EXPECT_EQ(degrees(g).max, 2u);
    EXPECT_EQ(*g.facts().diameter, 4u);
    EXPECT_THROW(make_cycle(2), error);
}

TEST(Generators, CycleFactsMatchExactComputation) {
    graph g = make_cycle(8);
    EXPECT_EQ(diameter_exact(g), *g.facts().diameter);
    EXPECT_NEAR(conductance_exact(g), *g.facts().conductance, 1e-12);
    EXPECT_NEAR(isoperimetric_exact(g), *g.facts().isoperimetric, 1e-12);
}

TEST(Generators, Complete) {
    graph g = make_complete(7);
    EXPECT_EQ(g.num_edges(), 21u);
    EXPECT_EQ(degrees(g).min, 6u);
    EXPECT_EQ(diameter_exact(g), 1u);
    EXPECT_NEAR(conductance_exact(g), *g.facts().conductance, 1e-12);
    EXPECT_NEAR(isoperimetric_exact(g), *g.facts().isoperimetric, 1e-12);
}

TEST(Generators, Star) {
    graph g = make_star(9);
    EXPECT_EQ(g.num_edges(), 8u);
    EXPECT_EQ(g.degree(0), 8u);
    EXPECT_EQ(diameter_exact(g), 2u);
    EXPECT_NEAR(conductance_exact(g), 1.0, 1e-12);
    EXPECT_NEAR(isoperimetric_exact(g), 1.0, 1e-12);
}

TEST(Generators, Grid) {
    graph g = make_grid2d(3, 4);
    EXPECT_EQ(g.num_nodes(), 12u);
    EXPECT_EQ(g.num_edges(), 3u * 3 + 4u * 2);  // 9 horizontal + 8 vertical
    EXPECT_EQ(diameter_exact(g), 5u);
    EXPECT_EQ(*g.facts().diameter, 5u);
}

TEST(Generators, Torus) {
    graph g = make_torus(4, 6);
    EXPECT_EQ(g.num_nodes(), 24u);
    EXPECT_EQ(g.num_edges(), 48u);  // 2 per node
    EXPECT_EQ(degrees(g).min, 4u);
    EXPECT_EQ(degrees(g).max, 4u);
    EXPECT_EQ(diameter_exact(g), 5u);
    EXPECT_EQ(*g.facts().diameter, 5u);
    EXPECT_THROW(make_torus(2, 5), error);
}

TEST(Generators, Hypercube) {
    graph g = make_hypercube(4);
    EXPECT_EQ(g.num_nodes(), 16u);
    EXPECT_EQ(g.num_edges(), 32u);
    EXPECT_EQ(degrees(g).max, 4u);
    EXPECT_EQ(diameter_exact(g), 4u);
}

TEST(Generators, BinaryTree) {
    graph g = make_binary_tree(7);
    EXPECT_EQ(g.num_edges(), 6u);
    EXPECT_EQ(g.degree(0), 2u);   // root
    EXPECT_EQ(g.degree(6), 1u);   // leaf
    EXPECT_EQ(diameter_exact(g), 4u);
}

TEST(Generators, RandomRegularIsRegular) {
    for (std::uint64_t seed : {1u, 2u, 3u}) {
        graph g = make_random_regular(50, 4, seed);
        EXPECT_EQ(g.num_nodes(), 50u);
        const auto ds = degrees(g);
        EXPECT_EQ(ds.min, 4u);
        EXPECT_EQ(ds.max, 4u);
    }
}

TEST(Generators, RandomRegularDeterministic) {
    graph a = make_random_regular(30, 4, 9);
    graph b = make_random_regular(30, 4, 9);
    EXPECT_EQ(a.edge_list(), b.edge_list());
}

TEST(Generators, RandomRegularValidation) {
    EXPECT_THROW(make_random_regular(5, 3, 1), error);   // n*d odd
    EXPECT_THROW(make_random_regular(4, 4, 1), error);   // d >= n
}

TEST(Generators, ErdosRenyiConnectedAndDeterministic) {
    graph a = make_erdos_renyi(40, 0.3, 5);
    graph b = make_erdos_renyi(40, 0.3, 5);
    EXPECT_EQ(a.num_nodes(), 40u);
    EXPECT_EQ(a.edge_list(), b.edge_list());
    EXPECT_THROW(make_erdos_renyi(10, 0.0, 1), error);
}

TEST(Generators, ErdosRenyiTooSparseThrows) {
    // p = tiny on 50 nodes: essentially never connected.
    EXPECT_THROW(make_erdos_renyi(50, 0.001, 1, 5), error);
}

TEST(Generators, RingOfCliquesStructure) {
    graph g = make_ring_of_cliques(4, 5);
    EXPECT_EQ(g.num_nodes(), 20u);
    // 4 cliques of C(5,2)=10 edges + 4 bridges.
    EXPECT_EQ(g.num_edges(), 44u);
    // Clique-internal nodes (index 2..4 of each clique) have degree 4.
    EXPECT_EQ(g.degree(2), 4u);
    // Gateways carry one extra edge.
    EXPECT_EQ(g.degree(0), 5u);
}

TEST(Generators, RingOfCliquesDegenerateIsCycle) {
    graph g = make_ring_of_cliques(5, 1);
    EXPECT_EQ(g.num_nodes(), 5u);
    EXPECT_EQ(g.num_edges(), 5u);
    EXPECT_EQ(degrees(g).max, 2u);
}

TEST(Generators, Barbell) {
    graph g = make_barbell(4);
    EXPECT_EQ(g.num_nodes(), 8u);
    EXPECT_EQ(g.num_edges(), 13u);  // 2*C(4,2) + bridge
    EXPECT_EQ(diameter_exact(g), 3u);
    // The bridge cut is the worst: conductance = 1/min Vol = 1/13.
    EXPECT_NEAR(conductance_exact(g), 1.0 / 13.0, 1e-12);
}

TEST(Generators, Lollipop) {
    graph g = make_lollipop(4, 3);
    EXPECT_EQ(g.num_nodes(), 7u);
    EXPECT_EQ(g.num_edges(), 9u);
    EXPECT_EQ(g.degree(6), 1u);  // tail end
}

TEST(Generators, MakeFamilyApproximatesSize) {
    for (graph_family f : all_families()) {
        const graph g = make_family(f, 64, 3);
        EXPECT_GE(g.num_nodes(), 16u) << to_string(f);
        EXPECT_LE(g.num_nodes(), 144u) << to_string(f);
    }
}

TEST(Generators, FamilyNamesUnique) {
    std::set<std::string> names;
    for (graph_family f : all_families()) names.insert(to_string(f));
    EXPECT_EQ(names.size(), all_families().size());
}

}  // namespace
}  // namespace anole
