// Tests for the per-round port-rewiring adversary (sim/dynamics.h's
// slot_layout + apply_port_rewire) and the graph::with_permuted_ports
// primitive it generalizes: rewiring any subset of nodes preserves the
// multigraph (degree sequence, physical edge multiset, peer-table
// involution) and payloads relocated along `moves` stay on their
// physical directed edge; a full rewire reduces exactly to
// with_permuted_ports of the same seed.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <set>
#include <vector>

#include "graph/generators.h"
#include "graph/graph.h"
#include "sim/dynamics.h"

namespace anole {
namespace {

// Applies `moves` to a payload array the way the engine relocates its
// in-flight message/stamp buffers: gather at old slots, scatter to new.
std::vector<std::uint32_t> relocate(
    std::vector<std::uint32_t> payload,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& moves) {
    std::vector<std::uint32_t> tmp;
    tmp.reserve(moves.size());
    for (const auto& [src, dst] : moves) tmp.push_back(payload[src]);
    for (std::size_t i = 0; i < moves.size(); ++i) payload[moves[i].second] = tmp[i];
    return payload;
}

// Full structural audit after a rewire: `before` is the pre-rewire peer
// table, `tag` the relocated per-slot payload initialized to tag[s] = s.
void expect_rewire_invariants(const slot_layout& layout,
                              const std::vector<std::uint32_t>& before,
                              const std::vector<std::uint32_t>& after,
                              const std::vector<std::uint32_t>& tag) {
    for (std::uint32_t s = 0; s < after.size(); ++s) {
        // Still an involution with no fixed points (no self-loops).
        ASSERT_LT(after[s], after.size());
        EXPECT_EQ(after[after[s]], s);
        EXPECT_NE(after[s], s);
        // The payload that landed in s came from a slot of the same node
        // (a rewire permutes each node's own slot range only)...
        const std::uint32_t origin = tag[s];
        EXPECT_EQ(layout.owner[s], layout.owner[origin]);
        // ...and its physical counterpart moved with it: the slot paired
        // with s now holds exactly the payload that was paired with
        // `origin` before. Together these say every physical directed
        // edge — endpoints AND in-flight payload — survived intact, so
        // the edge multiset and degree sequence are unchanged.
        EXPECT_EQ(tag[after[s]], before[origin]);
    }
}

std::vector<std::uint32_t> iota_tags(std::size_t slots) {
    std::vector<std::uint32_t> tag(slots);
    std::iota(tag.begin(), tag.end(), 0);
    return tag;
}

TEST(SlotLayout, MirrorsGraphPeerTable) {
    const graph g = make_family(graph_family::dumbbell, 20, 3);
    const slot_layout layout(g);
    ASSERT_EQ(layout.peer.size(), 2 * g.num_edges());
    ASSERT_EQ(layout.owner.size(), layout.peer.size());
    ASSERT_EQ(layout.base.size(), g.num_nodes() + 1);
    for (node_id u = 0; u < g.num_nodes(); ++u) {
        for (port_id p = 0; p < g.degree(u); ++p) {
            const auto s = static_cast<std::uint32_t>(layout.base[u] + p);
            EXPECT_EQ(layout.owner[s], u);
            EXPECT_EQ(layout.owner[layout.peer[s]], g.neighbor(u, p));
            EXPECT_EQ(layout.peer[layout.peer[s]], s);
        }
    }
}

TEST(PortRewire, EmptyNodeListIsANoOp) {
    const graph g = make_cycle(12);
    slot_layout layout(g);
    const std::vector<std::uint32_t> before = layout.peer;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> moves;
    apply_port_rewire(layout.base, layout.owner, layout.peer, {}, 99, moves);
    EXPECT_EQ(layout.peer, before);
    EXPECT_TRUE(moves.empty());
}

TEST(PortRewire, SubsetRewirePreservesMultigraph) {
    for (const graph_family f :
         {graph_family::cycle, graph_family::dumbbell, graph_family::torus,
          graph_family::barbell, graph_family::barabasi_albert}) {
        const graph g = make_family(f, 24, 5);
        slot_layout layout(g);
        const std::vector<std::uint32_t> before = layout.peer;
        // An arbitrary sorted subset: every third node.
        std::vector<node_id> nodes;
        for (node_id u = 0; u < g.num_nodes(); u += 3) nodes.push_back(u);
        std::vector<std::pair<std::uint32_t, std::uint32_t>> moves;
        apply_port_rewire(layout.base, layout.owner, layout.peer, nodes, 7, moves);
        const auto tag = relocate(iota_tags(before.size()), moves);
        expect_rewire_invariants(layout, before, layout.peer, tag);
    }
}

TEST(PortRewire, RepeatedRewiresStayConsistent) {
    const graph g = make_family(graph_family::connected_caveman, 30, 2);
    slot_layout layout(g);
    auto tag = iota_tags(layout.peer.size());
    for (std::uint64_t round = 0; round < 8; ++round) {
        const std::vector<std::uint32_t> before = layout.peer;
        // Alternate between all nodes, singletons and small ranges.
        std::vector<node_id> nodes;
        if (round % 3 == 0) {
            for (node_id u = 0; u < g.num_nodes(); ++u) nodes.push_back(u);
        } else if (round % 3 == 1) {
            nodes = {static_cast<node_id>(round % g.num_nodes())};
        } else {
            nodes = {1, 2, 5, 13};
        }
        std::vector<std::pair<std::uint32_t, std::uint32_t>> moves;
        apply_port_rewire(layout.base, layout.owner, layout.peer, nodes,
                          1000 + round, moves);
        // Fresh tags per step so the invariant audit sees one rewire.
        const auto step_tag = relocate(iota_tags(before.size()), moves);
        expect_rewire_invariants(layout, before, layout.peer, step_tag);
        tag = relocate(std::move(tag), moves);
    }
    // Across all eight rewires, every slot's payload never left its node.
    for (std::uint32_t s = 0; s < tag.size(); ++s) {
        EXPECT_EQ(layout.owner[s], layout.owner[tag[s]]);
    }
}

TEST(PortRewire, DeterministicInSeed) {
    const graph g = make_family(graph_family::torus, 16, 1);
    std::vector<node_id> all(g.num_nodes());
    std::iota(all.begin(), all.end(), 0);
    slot_layout a(g), b(g);
    std::vector<std::pair<std::uint32_t, std::uint32_t>> ma, mb;
    apply_port_rewire(a.base, a.owner, a.peer, all, 4242, ma);
    apply_port_rewire(b.base, b.owner, b.peer, all, 4242, mb);
    EXPECT_EQ(a.peer, b.peer);
    EXPECT_EQ(ma, mb);
    slot_layout c(g);
    std::vector<std::pair<std::uint32_t, std::uint32_t>> mc;
    apply_port_rewire(c.base, c.owner, c.peer, all, 4243, mc);
    EXPECT_NE(c.peer, a.peer);
}

// The reduction the dynamics layer is built on: rewiring EVERY node with
// seed S transforms the peer table into exactly the peer table of
// g.with_permuted_ports(S) — both sides draw per-node permutations from
// fill_port_permutation.
TEST(PortRewire, FullRewireEqualsWithPermutedPorts) {
    for (const std::uint64_t seed : {1ull, 77ull, 123456789ull}) {
        const graph g = make_family(graph_family::watts_strogatz, 40, 9);
        slot_layout layout(g);
        std::vector<node_id> all(g.num_nodes());
        std::iota(all.begin(), all.end(), 0);
        std::vector<std::pair<std::uint32_t, std::uint32_t>> moves;
        apply_port_rewire(layout.base, layout.owner, layout.peer, all, seed, moves);
        const slot_layout reference(g.with_permuted_ports(seed));
        EXPECT_EQ(layout.peer, reference.peer) << "seed " << seed;
    }
}

// --- with_permuted_ports regression audit ------------------------------------

// Regression: with_permuted_ports used to build its result around the
// (now removed) private default constructor, assigning members one by
// one — any member added later shipped half-initialized in the permuted
// copy. It now copies the whole graph first and permutes the adjacency
// in place; this pins every non-adjacency member.
TEST(WithPermutedPorts, CopiesEveryMemberOfTheSource) {
    graph g = make_family(graph_family::lollipop, 24, 4);
    graph_facts facts;
    facts.diameter = 13;
    facts.conductance = 0.125;
    facts.isoperimetric = 0.5;
    facts.mixing_time = 77;
    g.set_facts(facts);

    const graph p = g.with_permuted_ports(3);
    EXPECT_EQ(p.name(), g.name() + "+permports");
    EXPECT_EQ(p.num_nodes(), g.num_nodes());
    EXPECT_EQ(p.num_edges(), g.num_edges());
    EXPECT_EQ(p.max_degree(), g.max_degree());
    ASSERT_TRUE(p.facts().diameter.has_value());
    EXPECT_EQ(*p.facts().diameter, 13u);
    ASSERT_TRUE(p.facts().conductance.has_value());
    EXPECT_EQ(*p.facts().conductance, 0.125);
    ASSERT_TRUE(p.facts().isoperimetric.has_value());
    EXPECT_EQ(*p.facts().isoperimetric, 0.5);
    ASSERT_TRUE(p.facts().mixing_time.has_value());
    EXPECT_EQ(*p.facts().mixing_time, 77u);
}

TEST(WithPermutedPorts, PermutesLabelsNotTopology) {
    const graph g = make_family(graph_family::random_geometric, 32, 6);
    const graph p = g.with_permuted_ports(11);
    for (node_id u = 0; u < g.num_nodes(); ++u) {
        ASSERT_EQ(p.degree(u), g.degree(u));
        // Same neighbor multiset under both labelings...
        std::multiset<node_id> orig, perm;
        for (port_id q = 0; q < g.degree(u); ++q) {
            orig.insert(g.neighbor(u, q));
            perm.insert(p.neighbor(u, q));
        }
        EXPECT_EQ(perm, orig);
        // ...and reverse ports stay mutually consistent.
        for (port_id q = 0; q < p.degree(u); ++q) {
            const node_id v = p.neighbor(u, q);
            EXPECT_EQ(p.neighbor(v, p.reverse_port(u, q)), u);
            EXPECT_EQ(p.reverse_port(v, p.reverse_port(u, q)), q);
        }
    }
    // Same canonical u < v edge multiset (edge_list enumerates in port
    // order, which the permutation shuffles — sort before comparing).
    auto ge = g.edge_list(), pe = p.edge_list();
    std::sort(ge.begin(), ge.end());
    std::sort(pe.begin(), pe.end());
    EXPECT_EQ(ge, pe);
}

TEST(FillPortPermutation, UniformPermutationDeterministicPerNode) {
    std::vector<port_id> a(7), b(7);
    fill_port_permutation(5, 3, a);
    fill_port_permutation(5, 3, b);
    EXPECT_EQ(a, b);
    std::vector<port_id> sorted = a;
    std::sort(sorted.begin(), sorted.end());
    for (port_id p = 0; p < 7; ++p) EXPECT_EQ(sorted[p], p);
    fill_port_permutation(5, 4, b);  // same seed, different node
    EXPECT_NE(a, b);
}

}  // namespace
}  // namespace anole
