// Generator guarantees the experiment harness leans on (ISSUE 1
// satellite): regular/grid/expander generators produce connected graphs
// with exactly the advertised degrees across a size sweep, and the
// conductance/mixing estimators return sane values on graphs whose true
// quantities are known in closed form.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "graph/generators.h"
#include "graph/properties.h"
#include "graph/spectral.h"

namespace anole {
namespace {

bool connected(const graph& g) {
    const auto dist = bfs_distances(g, 0);
    return std::all_of(dist.begin(), dist.end(), [](std::uint32_t d) {
        return d != std::numeric_limits<std::uint32_t>::max();
    });
}

TEST(GeneratorGuarantees, RandomRegularAdvertisedDegreeAcrossSweep) {
    for (std::size_t d : {3u, 4u, 6u}) {
        for (std::size_t n : {16u, 64u, 200u}) {
            if (n * d % 2 != 0) continue;  // pairing model needs even n·d
            // The pairing model's simple-graph acceptance rate decays like
            // exp((1-d²)/4) — d = 6 needs far more than the default 1000
            // rejection attempts.
            const graph g = make_random_regular(n, d, 99, 200'000);
            ASSERT_EQ(g.num_nodes(), n);
            EXPECT_EQ(g.num_edges(), n * d / 2);
            for (node_id u = 0; u < n; ++u) {
                ASSERT_EQ(g.degree(u), d) << "node " << u << " of " << g.name();
            }
            EXPECT_TRUE(connected(g)) << g.name();
        }
    }
}

TEST(GeneratorGuarantees, TorusIsFourRegularAndConnected) {
    for (std::size_t rows : {3u, 5u, 8u}) {
        const graph g = make_torus(rows, rows + 1);
        for (node_id u = 0; u < g.num_nodes(); ++u) ASSERT_EQ(g.degree(u), 4u);
        EXPECT_TRUE(connected(g));
    }
}

TEST(GeneratorGuarantees, GridDegreesByPosition) {
    // 4-neighborhood without wraparound: corners 2, borders 3, interior 4.
    const std::size_t rows = 5, cols = 7;
    const graph g = make_grid2d(rows, cols);
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c) {
            const auto u = static_cast<node_id>(r * cols + c);
            const bool rim_r = r == 0 || r == rows - 1;
            const bool rim_c = c == 0 || c == cols - 1;
            const std::size_t expect = 4 - (rim_r ? 1 : 0) - (rim_c ? 1 : 0);
            ASSERT_EQ(g.degree(u), expect) << "(" << r << "," << c << ")";
        }
    }
    EXPECT_TRUE(connected(g));
}

TEST(GeneratorGuarantees, HypercubeIsDimRegular) {
    for (std::size_t dim : {3u, 5u, 7u}) {
        const graph g = make_hypercube(dim);
        ASSERT_EQ(g.num_nodes(), std::size_t{1} << dim);
        for (node_id u = 0; u < g.num_nodes(); ++u) ASSERT_EQ(g.degree(u), dim);
        EXPECT_TRUE(connected(g));
    }
}

TEST(GeneratorGuarantees, ExpanderFamiliesHaveSubstantialConductance) {
    // The "well-connected regime" graphs the Theorem 1 experiments use
    // must keep their measured Φ bounded away from the cycle scale 2/n.
    for (const graph& g : {make_random_regular(128, 4, 5), make_hypercube(7),
                           make_erdos_renyi(128, 0.12, 5)}) {
        const graph_profile prof = profile(g, 1);
        EXPECT_GT(prof.conductance, 0.05) << g.name();
        EXPECT_TRUE(connected(g)) << g.name();
    }
}

TEST(GeneratorGuarantees, ConductanceExactOnClosedFormGraphs) {
    // K_n: the optimum is the balanced cut; volume form gives
    // Φ(K_n) = ⌈n/2⌉ / (n-1) · ... >= 1/2 always.
    EXPECT_GE(conductance_exact(make_complete(8)), 0.5);
    EXPECT_GE(conductance_exact(make_complete(13)), 0.5);
    // Star: every cut separates leaves from the hub side; Φ(S_n) = 1.
    EXPECT_DOUBLE_EQ(conductance_exact(make_star(9)), 1.0);
    // C_n: the optimum cut is an arc of n/2 nodes: |∂S| = 2, Vol = n,
    // so Φ = 2/n (volume form).
    for (std::size_t n : {8u, 12u, 16u}) {
        EXPECT_NEAR(conductance_exact(make_cycle(n)),
                    2.0 / static_cast<double>(n), 1e-12);
    }
}

TEST(GeneratorGuarantees, SweepUpperBoundIsSaneOnKnownGraphs) {
    // The Fiedler sweep cut must stay an upper bound and, on graphs with
    // an obvious bottleneck, land near the truth.
    const graph barbell = make_barbell(8);
    const double exact = conductance_exact(barbell);
    const double sweep = conductance_sweep(barbell, fiedler_vector(barbell));
    EXPECT_GE(sweep, exact - 1e-12);
    EXPECT_LT(sweep, 4 * exact);  // the bottleneck is found, not missed
}

TEST(GeneratorGuarantees, ProfileOrdersMixingTimesSensibly) {
    // tmix(C_32) = Θ(n²) must dwarf tmix(K_32) = O(1)-ish; the profile's
    // simulated values must reflect the ordering by a wide margin.
    const graph_profile cyc = profile(make_cycle(32), 1);
    const graph_profile com = profile(make_complete(32), 1);
    EXPECT_GT(cyc.mixing_time, 10 * com.mixing_time);
    EXPECT_GT(cyc.mixing_time, 100u);  // Θ(n²) scale at n = 32
    // And the profile must agree with generator facts where present.
    EXPECT_NEAR(cyc.conductance, 2.0 / 32.0, 1e-9);
}

TEST(GeneratorGuarantees, RingOfCliquesConductanceScalesWithDial) {
    // The conductance dial: growing the clique size at fixed n must
    // *shrink* Φ (bottleneck stays 2 bridges, volume grows).
    const double phi_many_small =
        profile(make_ring_of_cliques(16, 4), 1).conductance;
    const double phi_few_big =
        profile(make_ring_of_cliques(4, 16), 1).conductance;
    EXPECT_GT(phi_many_small, phi_few_big);
    EXPECT_GT(phi_few_big, 0.0);
}

}  // namespace
}  // namespace anole
