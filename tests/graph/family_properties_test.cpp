// Cross-family property suite: invariants that must hold for EVERY
// topology the generators can produce, at several sizes and seeds
// (parameterized sweep). These are the structural contracts the
// simulator and the protocols rely on.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "graph/generators.h"
#include "graph/properties.h"
#include "graph/spectral.h"

namespace anole {
namespace {

struct family_size {
    graph_family family;
    std::size_t n;
    std::uint64_t seed;
};

class FamilyProperties : public ::testing::TestWithParam<family_size> {
protected:
    [[nodiscard]] graph build() const {
        const auto& p = GetParam();
        return make_family(p.family, p.n, p.seed);
    }
};

TEST_P(FamilyProperties, HandshakeLemma) {
    const graph g = build();
    std::size_t degree_sum = 0;
    for (node_id u = 0; u < g.num_nodes(); ++u) degree_sum += g.degree(u);
    EXPECT_EQ(degree_sum, 2 * g.num_edges());
}

TEST_P(FamilyProperties, ReversePortsAreInvolutions) {
    const graph g = build();
    for (node_id u = 0; u < g.num_nodes(); ++u) {
        for (port_id p = 0; p < g.degree(u); ++p) {
            const node_id v = g.neighbor(u, p);
            const port_id q = g.reverse_port(u, p);
            ASSERT_EQ(g.neighbor(v, q), u);
            ASSERT_EQ(g.reverse_port(v, q), p);
        }
    }
}

TEST_P(FamilyProperties, NoSelfLoopsNoParallelEdges) {
    const graph g = build();
    for (node_id u = 0; u < g.num_nodes(); ++u) {
        std::set<node_id> seen;
        for (node_id v : g.neighbors(u)) {
            EXPECT_NE(v, u);
            EXPECT_TRUE(seen.insert(v).second) << "parallel edge at " << u;
        }
    }
}

TEST_P(FamilyProperties, ConnectedByConstruction) {
    const graph g = build();
    const auto dist = bfs_distances(g, 0);
    for (std::uint32_t d : dist) {
        EXPECT_NE(d, std::numeric_limits<std::uint32_t>::max());
    }
}

TEST_P(FamilyProperties, DiameterEstimateBracketsExact) {
    const graph g = build();
    const auto est = diameter_estimate(g);
    const auto exact = diameter_exact(g);
    EXPECT_LE(est.lower, exact);
    EXPECT_GE(est.upper, exact);
}

TEST_P(FamilyProperties, GeneratorFactsAreConsistent) {
    const graph g = build();
    const auto& f = g.facts();
    if (f.diameter) {
        EXPECT_EQ(*f.diameter, diameter_exact(g));
    }
    if (g.num_nodes() <= 20) {
        if (f.conductance) {
            EXPECT_NEAR(*f.conductance, conductance_exact(g), 1e-9);
        }
        if (f.isoperimetric) {
            EXPECT_NEAR(*f.isoperimetric, isoperimetric_exact(g), 1e-9);
        }
    }
}

TEST_P(FamilyProperties, PortPermutationPreservesStructure) {
    const graph g = build();
    const graph h = g.with_permuted_ports(12345);
    ASSERT_EQ(h.num_nodes(), g.num_nodes());
    ASSERT_EQ(h.num_edges(), g.num_edges());
    for (node_id u = 0; u < g.num_nodes(); ++u) {
        std::multiset<node_id> a, b;
        for (port_id p = 0; p < g.degree(u); ++p) {
            a.insert(g.neighbor(u, p));
            b.insert(h.neighbor(u, p));
        }
        ASSERT_EQ(a, b);
    }
}

TEST_P(FamilyProperties, LazyWalkStationaryIsFixedPoint) {
    const graph g = build();
    const auto pi = walk_stationary(g);
    EXPECT_NEAR(std::accumulate(pi.begin(), pi.end(), 0.0), 1.0, 1e-9);
    const auto next = walk_distribution_step(g, pi);
    for (std::size_t i = 0; i < pi.size(); ++i) {
        ASSERT_NEAR(next[i], pi[i], 1e-12);
    }
}

TEST_P(FamilyProperties, SpectralRadiusBelowOne) {
    const graph g = build();
    const double l2 = lambda2_lazy(g);
    EXPECT_GE(l2, 0.0);
    EXPECT_LT(l2, 1.0);
    // Lazy chains have spectrum in [0, 1] with λ2 >= 1/2 only possible
    // when mixing is slow; either way the gap must be positive.
    EXPECT_GT(1.0 - l2, 1e-9);
}

std::vector<family_size> sweep_cases() {
    std::vector<family_size> cases;
    for (graph_family f : all_families()) {
        for (std::size_t n : {12u, 40u}) {
            cases.push_back({f, n, 3});
        }
        cases.push_back({f, 24, 9});  // second seed
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, FamilyProperties,
                         ::testing::ValuesIn(sweep_cases()),
                         [](const auto& info) {
                             return std::string(to_string(info.param.family)) +
                                    "_n" + std::to_string(info.param.n) + "_s" +
                                    std::to_string(info.param.seed);
                         });

}  // namespace
}  // namespace anole
