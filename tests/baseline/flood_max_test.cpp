// Tests for baseline/flood_max.h.
#include "baseline/flood_max.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/properties.h"

namespace anole {
namespace {

TEST(FloodMax, ElectsUniqueLeaderOnFamilies) {
    for (auto fam : {graph_family::cycle, graph_family::torus, graph_family::star,
                     graph_family::complete, graph_family::random_regular,
                     graph_family::binary_tree}) {
        graph g = make_family(fam, 48, 3);
        const auto d = diameter_exact(g);
        for (std::uint64_t seed = 1; seed <= 3; ++seed) {
            const auto r = run_flood_max(g, d, seed);
            EXPECT_TRUE(r.success) << to_string(fam) << " seed " << seed;
            EXPECT_EQ(r.num_leaders, 1u);
        }
    }
}

TEST(FloodMax, LeaderHoldsGlobalMaximum) {
    graph g = make_torus(5, 5);
    const auto r = run_flood_max(g, diameter_exact(g), 7);
    ASSERT_TRUE(r.success);
    EXPECT_GT(r.leader_id, 0u);
}

TEST(FloodMax, TimeIsDiameterPlusConstant) {
    graph g = make_path(30);
    const auto r = run_flood_max(g, 29, 3);
    EXPECT_LE(r.rounds, 32u);
    EXPECT_TRUE(r.success);
}

TEST(FloodMax, MessagesBoundedByWaves) {
    // Change-triggered flooding: each node re-broadcasts at most once per
    // improvement; improvements per node <= #distinct IDs on its shortest
    // path tree, typically O(log n). Certify <= m * (small factor).
    graph g = make_random_regular(128, 4, 5);
    const auto r = run_flood_max(g, diameter_exact(g), 9);
    const double per_edge = static_cast<double>(r.totals.messages) /
                            static_cast<double>(2 * g.num_edges());
    EXPECT_LE(per_edge, 12.0);
    EXPECT_GE(r.totals.messages, 2 * g.num_edges());  // round 0 full wave
}

TEST(FloodMax, InsufficientDiameterFailsSometimes) {
    // With 0 flood rounds everyone keeps their own maximum: all leaders.
    graph g = make_cycle(16);
    const auto r = run_flood_max(g, 0, 3);
    EXPECT_GT(r.num_leaders, 1u);
    EXPECT_FALSE(r.success);
}

TEST(FloodMax, Deterministic) {
    graph g = make_torus(4, 4);
    const auto a = run_flood_max(g, 4, 11);
    const auto b = run_flood_max(g, 4, 11);
    EXPECT_EQ(a.leader_id, b.leader_id);
    EXPECT_EQ(a.totals.messages, b.totals.messages);
}

}  // namespace
}  // namespace anole
