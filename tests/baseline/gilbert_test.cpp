// Tests for baseline/gilbert_le.h (the PODC'18-style comparator).
#include "baseline/gilbert_le.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/spectral.h"

namespace anole {
namespace {

gilbert_params params_for(const graph& g) {
    gilbert_params p;
    p.n = g.num_nodes();
    const auto prof = profile(g, 1);
    p.tmix = std::max<std::uint64_t>(prof.mixing_time, 1);
    return p;
}

TEST(Gilbert, ElectsUniqueLeaderOnWellConnectedFamilies) {
    for (auto fam : {graph_family::complete, graph_family::random_regular,
                     graph_family::hypercube, graph_family::torus}) {
        graph g = make_family(fam, 64, 3);
        const auto p = params_for(g);
        int successes = 0;
        for (std::uint64_t seed = 1; seed <= 4; ++seed) {
            const auto r = run_gilbert(g, p, seed);
            if (r.success) {
                ++successes;
                EXPECT_TRUE(r.max_candidate_won) << to_string(fam);
            }
        }
        EXPECT_GE(successes, 3) << to_string(fam);
    }
}

TEST(Gilbert, Deterministic) {
    graph g = make_random_regular(48, 4, 3);
    const auto p = params_for(g);
    const auto a = run_gilbert(g, p, 5);
    const auto b = run_gilbert(g, p, 5);
    EXPECT_EQ(a.leader_id, b.leader_id);
    EXPECT_EQ(a.totals.messages, b.totals.messages);
}

TEST(Gilbert, TimeIsTwoWalkPhases) {
    graph g = make_torus(6, 6);
    const auto p = params_for(g);
    const auto r = run_gilbert(g, p, 3);
    EXPECT_EQ(r.rounds, p.total_rounds() + 1);
}

TEST(Gilbert, MessageEnvelopeScalesWithTokensTimesLength) {
    // The walk phase dominates: messages = O(#cands · x_g · L).
    graph g = make_random_regular(128, 4, 7);
    const auto p = params_for(g);
    const auto r = run_gilbert(g, p, 3);
    const double envelope = p.cand_c * p.log2n() * 2.0 *
                            static_cast<double>(p.tokens()) *
                            static_cast<double>(p.walk_len());
    EXPECT_LE(static_cast<double>(r.totals.messages), envelope);
    EXPECT_GE(static_cast<double>(r.totals.messages),
              static_cast<double>(p.tokens()) / 4.0);
}

TEST(Gilbert, ZeroCandidatesFailsGracefully) {
    graph g = make_torus(5, 5);
    auto p = params_for(g);
    p.cand_c = 1e-9;
    const auto r = run_gilbert(g, p, 2);
    EXPECT_EQ(r.num_candidates, 0u);
    EXPECT_FALSE(r.success);
}

TEST(Gilbert, UnderTokenedFailsDetectably) {
    // With one token per candidate AND stunted walks, the visited sets
    // rarely intersect on a large expander: some seeds must yield
    // multiple leaders. (On small graphs a full-length walk covers the
    // network and the protocol succeeds despite one token.)
    graph g = make_random_regular(256, 4, 11);
    auto p = params_for(g);
    p.tokens_mult = 1e-9;  // floors to 1 token
    p.c = 0.05;            // stunted walk length
    std::size_t multi = 0;
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        if (run_gilbert(g, p, seed).num_leaders > 1) ++multi;
    }
    EXPECT_GE(multi, 1u);
}

TEST(Gilbert, ParamValidation) {
    graph g = make_cycle(8);
    gilbert_params p;
    p.n = 4;  // mismatch
    p.tmix = 8;
    EXPECT_THROW((void)run_gilbert(g, p, 1), error);
}

}  // namespace
}  // namespace anole
