// Tests for sim/thread_pool.h: drain semantics, visibility of job
// results after wait(), parallel_for coverage, reuse across waves.
#include "sim/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <vector>

namespace anole {
namespace {

TEST(ThreadPool, SizeDefaultsToAtLeastOne) {
    thread_pool p(0);
    EXPECT_GE(p.size(), 1u);
}

TEST(ThreadPool, WaitDrainsAllJobs) {
    thread_pool p(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i) {
        p.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    p.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
    thread_pool p(3);
    std::vector<int> hits(257, 0);  // plain writes: distinct slots per job
    p.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
              static_cast<int>(hits.size()));
    for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, ReusableAcrossWaves) {
    thread_pool p(2);
    std::atomic<int> count{0};
    for (int wave = 0; wave < 5; ++wave) {
        for (int i = 0; i < 20; ++i) {
            p.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
        }
        p.wait();
        EXPECT_EQ(count.load(), 20 * (wave + 1));
    }
}

TEST(ThreadPool, DestructorDrainsPendingJobs) {
    std::atomic<int> count{0};
    {
        thread_pool p(1);
        for (int i = 0; i < 10; ++i) {
            p.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
        }
        // No wait(): the destructor must still run everything queued.
    }
    EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, JobsOverlapInTime) {
    // Four 100ms sleeps across four workers must overlap regardless of
    // core count; a serial pool would need >= 400ms.
    thread_pool p(4);
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < 4; ++i) {
        p.submit([] { std::this_thread::sleep_for(std::chrono::milliseconds(100)); });
    }
    p.wait();
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - t0);
    EXPECT_LT(elapsed.count(), 350);
}

TEST(ThreadPool, WaitWithNoJobsReturnsImmediately) {
    thread_pool p(2);
    p.wait();  // must not deadlock
    SUCCEED();
}

TEST(ThreadPool, NestedParallelForInsidePoolJobDoesNotDeadlock) {
    // The engine shards rounds over the same pool the runner uses for
    // repetitions: a pool job calling parallel_for must make progress
    // even when every worker is occupied by such jobs (helping wait).
    thread_pool p(2);
    std::atomic<int> total{0};
    p.parallel_for(8, [&](std::size_t) {
        p.parallel_for(16, [&](std::size_t) {
            total.fetch_add(1, std::memory_order_relaxed);
        });
    });
    EXPECT_EQ(total.load(), 8 * 16);
}

TEST(ThreadPool, NestedParallelForOnSingleWorkerPool) {
    // Degenerate but legal: one worker, nesting two levels deep — the
    // calling threads drain their own groups entirely by themselves.
    thread_pool p(1);
    std::atomic<int> total{0};
    p.parallel_for(4, [&](std::size_t) {
        p.parallel_for(4, [&](std::size_t) {
            total.fetch_add(1, std::memory_order_relaxed);
        });
    });
    EXPECT_EQ(total.load(), 16);
}

TEST(ThreadPool, ParallelForZeroCountIsNoOp) {
    thread_pool p(2);
    p.parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
    SUCCEED();
}

}  // namespace
}  // namespace anole
