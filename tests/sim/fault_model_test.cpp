// Statistical and equivalence tests for the fault models of
// sim/dynamics.h: chi-squared validation that realized message-loss and
// crash rates match the configured Bernoulli parameters (same style and
// thresholds as rng_binomial_test), zero-effect dynamics bitwise
// identical to static runs, budget accounting under loss, and the
// acceptance sweep — all five algorithms reach a verdict (success or
// bounded failure, never a hang) under every dynamics preset on cycle,
// dumbbell and torus.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "graph/generators.h"
#include "sim/campaign.h"
#include "sim/dynamics.h"
#include "sim/engine.h"
#include "sim/runner.h"

namespace anole {
namespace {

struct probe_msg {
    std::uint64_t value = 0;
    [[nodiscard]] std::size_t bit_size() const noexcept { return 8; }
};

// Maximal chatter: every node sends on every port every round and never
// halts — so with no churn/crash every one of the 2m slots is live every
// round, making the per-run delivery count a constant and the realized
// loss count an exact Binomial(deliveries, loss_prob) sample.
class chatterbox {
public:
    using message_type = probe_msg;
    explicit chatterbox(std::size_t degree) : degree_(degree) {}

    void on_round(node_ctx<probe_msg>& ctx, inbox_view<probe_msg> inbox) {
        for (const auto& [port, msg] : inbox) {
            digest_ = digest_ * 0x9e3779b97f4a7c15ULL + msg.value + port;
        }
        for (port_id p = 0; p < degree_; ++p) ctx.send(p, probe_msg{ctx.round()});
    }

    std::uint64_t digest_ = 0;

private:
    std::size_t degree_;
};

dynamics_stats run_chatter(const graph& g, const dynamics_spec& spec,
                           std::uint64_t seed, std::uint64_t rounds) {
    engine<chatterbox> eng(g, seed);
    eng.set_dynamics(spec, seed);
    eng.spawn(
        [&](std::size_t u) { return chatterbox(g.degree(static_cast<node_id>(u))); });
    eng.run_rounds(rounds);
    return eng.dynamics()->stats();
}

// rng_binomial_test's generous threshold: df + 5·sqrt(2·df) is far past
// the 99.9th percentile; with fixed seeds the statistic is deterministic
// anyway — the margin guards against resampling churn.
double chi2_threshold(std::size_t df) {
    return static_cast<double>(df) + 5.0 * std::sqrt(2.0 * static_cast<double>(df));
}

// One-sample chi-squared of integer samples against Binomial(n, p),
// bucketed over mean ± 4σ with the outermost buckets absorbing tails.
void expect_binomial_match(const std::vector<std::uint64_t>& samples,
                           std::uint64_t n, double p) {
    const double nd = static_cast<double>(n);
    const double mean = nd * p;
    const double sd = std::sqrt(nd * p * (1 - p));
    const int buckets = 12;
    const double lo = mean - 4 * sd, hi = mean + 4 * sd;
    const double width = (hi - lo) / buckets;
    auto bucket_of = [&](double k) {
        const int i = static_cast<int>((k - lo) / width);
        return i < 0 ? 0 : (i >= buckets ? buckets - 1 : i);
    };
    std::vector<double> expected(buckets, 0.0);
    const double logn1 = std::lgamma(nd + 1);
    for (std::uint64_t k = 0; k <= n; ++k) {
        const double kd = static_cast<double>(k);
        const double logpmf = logn1 - std::lgamma(kd + 1) -
                              std::lgamma(nd - kd + 1) + kd * std::log(p) +
                              (nd - kd) * std::log(1 - p);
        expected[bucket_of(kd)] += std::exp(logpmf) * static_cast<double>(samples.size());
    }
    std::vector<int> observed(buckets, 0);
    for (const std::uint64_t s : samples) {
        ++observed[bucket_of(static_cast<double>(s))];
    }
    // Pool sparse buckets (tails) so every cell has healthy mass.
    std::vector<double> pe, po;
    double ce = 0, co = 0;
    for (int i = 0; i < buckets; ++i) {
        ce += expected[i];
        co += observed[i];
        if (ce >= 10) {
            pe.push_back(ce);
            po.push_back(co);
            ce = co = 0;
        }
    }
    if (ce > 0 && !pe.empty()) {
        pe.back() += ce;
        po.back() += co;
    }
    ASSERT_GE(pe.size(), 3u);
    double chi2 = 0;
    for (std::size_t i = 0; i < pe.size(); ++i) {
        const double d = po[i] - pe[i];
        chi2 += d * d / pe[i];
    }
    EXPECT_LT(chi2, chi2_threshold(pe.size() - 1));
}

// --- loss rate ----------------------------------------------------------------

TEST(FaultModel, LossRateMatchesConfiguredBernoulli) {
    const graph g = make_cycle(16);  // 32 directed slots, all live per round
    const std::uint64_t rounds = 30;
    const double p = 0.05;
    dynamics_spec spec;
    spec.loss_prob = p;
    std::vector<std::uint64_t> losses;
    std::uint64_t deliveries = 0;
    for (std::uint64_t run = 0; run < 200; ++run) {
        const dynamics_stats st = run_chatter(g, spec, 9000 + run, rounds);
        // Round 0 has nothing in flight; every later round delivers 2m.
        ASSERT_EQ(st.deliveries, 2 * g.num_edges() * (rounds - 1));
        deliveries = st.deliveries;
        losses.push_back(st.lost_messages);
        EXPECT_EQ(st.churned_messages, 0u);
        EXPECT_EQ(st.crashes, 0u);
    }
    expect_binomial_match(losses, deliveries, p);
}

// --- crash rate ---------------------------------------------------------------

TEST(FaultModel, CrashRateMatchesConfiguredBernoulli) {
    const graph g = make_family(graph_family::torus, 36, 1);
    dynamics_spec spec;
    spec.crash_prob = 0.1;
    std::vector<std::uint64_t> crashes;
    for (std::uint64_t run = 0; run < 300; ++run) {
        // One round: every node is live, so crash_trials == n exactly and
        // the crash count is one clean Binomial(n, p) sample per run.
        const dynamics_stats st = run_chatter(g, spec, 500 + run, 1);
        ASSERT_EQ(st.crash_trials, g.num_nodes());
        crashes.push_back(st.crashes);
    }
    expect_binomial_match(crashes, g.num_nodes(), spec.crash_prob);
}

TEST(FaultModel, CrashedNodesStayPermanentlySilent) {
    const graph g = make_cycle(12);
    dynamics_spec spec;
    spec.crash_prob = 0.2;
    engine<chatterbox> eng(g, 3);
    eng.set_dynamics(spec, 3);
    eng.spawn(
        [&](std::size_t u) { return chatterbox(g.degree(static_cast<node_id>(u))); });
    eng.run_rounds(40);
    const dynamics_stats st = eng.dynamics()->stats();
    EXPECT_GT(st.crashes, 0u);  // p=0.2 over 12 nodes x 40 rounds
    EXPECT_EQ(eng.halted_count(), st.crashes);  // crash == engine-halted
    // Trials only ever count live nodes: once everyone crashed, no draws.
    EXPECT_LE(st.crash_trials, 12ull * 40);
}

// --- zero-effect dynamics == static -------------------------------------------

std::vector<std::uint64_t> chatter_digests(const graph& g, std::uint64_t seed,
                                           std::uint64_t rounds,
                                           const dynamics_spec* spec) {
    engine<chatterbox> eng(g, seed);
    if (spec != nullptr) eng.set_dynamics(*spec, seed);
    eng.spawn(
        [&](std::size_t u) { return chatterbox(g.degree(static_cast<node_id>(u))); });
    eng.run_rounds(rounds);
    std::vector<std::uint64_t> out;
    for (std::size_t u = 0; u < g.num_nodes(); ++u) {
        out.push_back(eng.node(u).digest_);
    }
    return out;
}

TEST(FaultModel, AllZeroSpecIsExactlyStatic) {
    const graph g = make_family(graph_family::dumbbell, 20, 1);
    const dynamics_spec zero;  // enabled() == false
    EXPECT_FALSE(zero.enabled());
    EXPECT_EQ(chatter_digests(g, 11, 25, &zero), chatter_digests(g, 11, 25, nullptr));
}

// Churn machinery running every round with zero possible effect: on a
// tree every edge is in the BFS backbone, so protect_backbone masks the
// entire churn draw and the run must stay bitwise identical to static —
// the strongest "zero realized rate == static" statement, because the
// full per-round fault pass (window redraws, live-slot scan) executes.
TEST(FaultModel, ProtectedBackboneOnTreeIsExactlyStatic) {
    const graph g = make_family(graph_family::binary_tree, 31, 1);
    ASSERT_EQ(g.num_edges(), g.num_nodes() - 1);  // a tree: backbone == all
    dynamics_spec spec;
    spec.edge_down_prob = 0.9;
    spec.churn_interval = 2;
    ASSERT_TRUE(spec.enabled());
    engine<chatterbox> eng(g, 13);
    eng.set_dynamics(spec, 13);
    eng.spawn(
        [&](std::size_t u) { return chatterbox(g.degree(static_cast<node_id>(u))); });
    eng.run_rounds(25);
    const dynamics_stats st = eng.dynamics()->stats();
    EXPECT_EQ(st.churned_messages, 0u);
    EXPECT_EQ(st.edge_down_rounds, 0u);
    std::vector<std::uint64_t> dynamic;
    for (std::size_t u = 0; u < g.num_nodes(); ++u) {
        dynamic.push_back(eng.node(u).digest_);
    }
    EXPECT_EQ(dynamic, chatter_digests(g, 13, 25, nullptr));
}

TEST(FaultModel, UnprotectedChurnDoesKillMessages) {
    const graph g = make_family(graph_family::binary_tree, 31, 1);
    dynamics_spec spec;
    spec.edge_down_prob = 0.5;
    spec.protect_backbone = false;
    const dynamics_stats st = run_chatter(g, spec, 21, 25);
    EXPECT_GT(st.churned_messages, 0u);
}

// --- budget accounting --------------------------------------------------------

// Loss destroys messages at delivery, after the sender was charged: the
// message/bit budget lines must match the static run exactly (the
// network was paid; delivery failed). docs/DYNAMICS.md pins this rule.
TEST(FaultModel, LossChargesSendersFully) {
    const graph g = make_cycle(16);
    auto totals = [&](const dynamics_spec* spec) {
        engine<chatterbox> eng(g, 7);
        if (spec != nullptr) eng.set_dynamics(*spec, 7);
        eng.spawn([&](std::size_t u) {
            return chatterbox(g.degree(static_cast<node_id>(u)));
        });
        eng.run_rounds(20);
        return eng.metrics().total();
    };
    dynamics_spec lossy;
    lossy.loss_prob = 0.5;
    const phase_counters with_loss = totals(&lossy);
    const phase_counters without = totals(nullptr);
    EXPECT_EQ(with_loss.messages, without.messages);
    EXPECT_EQ(with_loss.bits, without.bits);
}

// --- sleep --------------------------------------------------------------------

TEST(FaultModel, SleepingNodesSkipRoundsAndResume) {
    const graph g = make_cycle(16);
    dynamics_spec spec;
    spec.sleep_prob = 0.1;
    spec.sleep_rounds = 4;
    engine<chatterbox> eng(g, 19);
    eng.set_dynamics(spec, 19);
    eng.spawn(
        [&](std::size_t u) { return chatterbox(g.degree(static_cast<node_id>(u))); });
    eng.run_rounds(50);
    const dynamics_stats st = eng.dynamics()->stats();
    EXPECT_GT(st.sleep_events, 0u);
    // Sleepers send nothing while away, so fewer messages than static...
    EXPECT_LT(eng.metrics().total().messages, 16ull * 2 * 50);
    // ...but nobody halts: every node resumes after its nap.
    EXPECT_EQ(eng.halted_count(), 0u);
}

// --- the acceptance sweep -----------------------------------------------------

// Every preset x {cycle, dumbbell, torus} x all five algorithms: each
// run must come back with a verdict — success, or a captured bounded
// failure (round cap, budget, frozen network) — never a hang. Configs
// are the campaign's bounded defaults, with revocable's round cap pulled
// in further to keep the sweep fast.
TEST(FaultModel, AllAlgorithmsReachVerdictsUnderEveryPreset) {
    scenario_runner runner(0);
    for (const auto& topo :
         {family_spec{graph_family::cycle, 24, 1},
          family_spec{graph_family::dumbbell, 24, 1},
          family_spec{graph_family::torus, 25, 1}}) {
        const graph& g = runner.materialize(topo);
        const graph_profile& prof = runner.profile_for(g);
        for (const auto& [dname, dspec] : all_dynamics_presets()) {
            for (const algo_kind kind :
                 {algo_kind::flood_max, algo_kind::gilbert, algo_kind::irrevocable,
                  algo_kind::revocable, algo_kind::cautious_broadcast}) {
                algo_config cfg =
                    campaign_default_config(kind, g.num_nodes(), g.num_edges());
                if (auto* rv = std::get_if<revocable_cfg>(&cfg)) {
                    rv->max_rounds = 4000;
                }
                const run_record rec = scenario_runner::run_once(g, prof, cfg,
                                                                 31, dspec);
                if (!rec.ok) {
                    EXPECT_FALSE(rec.error.empty())
                        << to_string(kind) << "@" << dname << " on " << g.name();
                }
                SUCCEED() << to_string(kind) << "@" << dname << " on " << g.name()
                          << " reached a verdict";
            }
        }
    }
}

}  // namespace
}  // namespace anole
