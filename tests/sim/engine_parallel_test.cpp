// Tests for the engine's sharded parallel rounds: node_jobs 1/2/8 must
// produce bitwise-identical metrics, halting rounds, and final node
// states — on every topology family in the zoo. The flat single-writer
// slot layout plus private per-node RNG streams is what makes this an
// exact (not statistical) guarantee; these tests are the enforcement.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/random_walk.h"
#include "graph/generators.h"
#include "sim/engine.h"
#include "sim/runner.h"

namespace anole {
namespace {

struct probe_msg {
    std::uint64_t value = 0;
    [[nodiscard]] std::size_t bit_size() const noexcept { return 8; }
};

// RNG-dependent chatter: sends a random value on a random subset of
// ports, folds what it hears into a running digest, halts at a per-node
// RNG-drawn round. Exercises randomness, partial sends, and staggered
// halting — everything that could diverge under resharding.
class scrambler {
public:
    using message_type = probe_msg;
    explicit scrambler(std::size_t degree) : degree_(degree) {}

    void on_round(node_ctx<probe_msg>& ctx, inbox_view<probe_msg> inbox) {
        for (const auto& [port, msg] : inbox) {
            digest_ = digest_ * 0x9e3779b97f4a7c15ULL + msg.value + port;
        }
        if (halt_round_ == 0) halt_round_ = 4 + ctx.rng().below(12);
        if (ctx.round() >= halt_round_) {
            ctx.halt();
            return;
        }
        for (port_id p = 0; p < degree_; ++p) {
            if (ctx.rng().bit()) ctx.send(p, probe_msg{ctx.rng()()});
        }
    }

    std::uint64_t digest_ = 0;

private:
    std::size_t degree_;
    std::uint64_t halt_round_ = 0;
};

struct run_digest {
    std::vector<std::uint64_t> node_state;
    std::uint64_t rounds = 0;
    std::size_t halted = 0;
    phase_counters totals;

    bool operator==(const run_digest&) const = default;
};

run_digest run_scrambler(const graph& g, std::size_t node_jobs, std::uint64_t seed) {
    engine<scrambler> eng(g, seed);
    eng.set_parallelism(nullptr, node_jobs);
    eng.spawn([&](std::size_t u) { return scrambler(g.degree(static_cast<node_id>(u))); });
    run_digest d;
    d.rounds = eng.run_until_halted(1000);
    d.halted = eng.halted_count();
    d.totals = eng.metrics().total();
    for (std::size_t u = 0; u < g.num_nodes(); ++u) {
        d.node_state.push_back(eng.node(u).digest_);
    }
    return d;
}

TEST(EngineParallel, ShardedRoundsMatchSerialExactly) {
    const graph g = make_random_regular(64, 4, 11);
    const run_digest serial = run_scrambler(g, 1, 42);
    EXPECT_EQ(run_scrambler(g, 2, 42), serial);
    EXPECT_EQ(run_scrambler(g, 8, 42), serial);
    // More shards than nodes degenerates gracefully.
    EXPECT_EQ(run_scrambler(g, 200, 42), serial);
}

TEST(EngineParallel, WalkEnsembleIdenticalAcrossNodeJobs) {
    const graph g = make_dumbbell(16, 4);
    auto run = [&](std::size_t node_jobs) {
        scoped_engine_parallelism par(engine_parallelism{nullptr, node_jobs});
        return run_walk_ensemble(g, 0, 5000, 64, 7);
    };
    const walk_ensemble_result serial = run(1);
    for (std::size_t k : {2, 8}) {
        const walk_ensemble_result sharded = run(k);
        EXPECT_EQ(sharded.resident, serial.resident) << "node_jobs=" << k;
        EXPECT_EQ(sharded.total_tokens, serial.total_tokens);
        EXPECT_EQ(sharded.totals.messages, serial.totals.messages);
        EXPECT_EQ(sharded.totals.bits, serial.totals.bits);
    }
}

// The acceptance bar: every family in the zoo, parallel == serial.
TEST(EngineParallel, AllTopologyFamiliesIdentical) {
    for (graph_family f : all_families()) {
        const graph g = make_family(f, 20, 3);
        const run_digest serial = run_scrambler(g, 1, 9);
        const run_digest sharded = run_scrambler(g, 3, 9);
        EXPECT_EQ(sharded, serial) << "family: " << to_string(f);
    }
}

TEST(EngineParallel, SharedPoolMatchesOwnedWorkers) {
    const graph g = make_torus(6, 6);
    thread_pool shared(3);
    const run_digest owned = run_scrambler(g, 3, 21);
    engine<scrambler> eng(g, 21);
    eng.set_parallelism(&shared, 3);
    eng.spawn([&](std::size_t u) { return scrambler(g.degree(static_cast<node_id>(u))); });
    run_digest d;
    d.rounds = eng.run_until_halted(1000);
    d.halted = eng.halted_count();
    d.totals = eng.metrics().total();
    for (std::size_t u = 0; u < g.num_nodes(); ++u) {
        d.node_state.push_back(eng.node(u).digest_);
    }
    EXPECT_EQ(d, owned);
}

TEST(EngineParallel, AmbientParallelismScopesAndRestores) {
    ASSERT_EQ(ambient_engine_parallelism().node_jobs, 1u);
    {
        scoped_engine_parallelism outer(engine_parallelism{nullptr, 4});
        EXPECT_EQ(ambient_engine_parallelism().node_jobs, 4u);
        {
            scoped_engine_parallelism inner(engine_parallelism{nullptr, 2});
            EXPECT_EQ(ambient_engine_parallelism().node_jobs, 2u);
        }
        EXPECT_EQ(ambient_engine_parallelism().node_jobs, 4u);
    }
    EXPECT_EQ(ambient_engine_parallelism().node_jobs, 1u);
}

// Protocol exceptions surface from sharded rounds just as from serial
// ones (strict budget violations are model semantics, never demoted).
class oversender {
public:
    using message_type = probe_msg;
    explicit oversender(std::size_t degree) : degree_(degree) {}
    void on_round(node_ctx<probe_msg>& ctx, inbox_view<probe_msg>) {
        for (port_id p = 0; p < degree_; ++p) ctx.send(p, probe_msg{});
    }

private:
    std::size_t degree_;
};

TEST(EngineParallel, StrictBudgetViolationPropagatesFromShards) {
    const graph g = make_cycle(16);
    engine<oversender> eng(g, 1, congest_budget{budget_mode::strict, 4});  // 4 bits
    eng.set_parallelism(nullptr, 4);
    eng.spawn([&](std::size_t u) { return oversender(g.degree(static_cast<node_id>(u))); });
    EXPECT_THROW(eng.run_rounds(1), error);
}

// End-to-end through the ScenarioRunner: scenario::node_jobs is a pure
// wall-clock knob — run records match the serial ones field for field.
TEST(EngineParallel, RunnerNodeJobsDoesNotChangeResults) {
    auto sweep = [&](std::size_t node_jobs) {
        scenario s;
        s.topology = family_spec{graph_family::torus, 16, 1};
        s.algo = flood_cfg{};
        s.seed = 5;
        s.repetitions = 3;
        s.node_jobs = node_jobs;
        scenario_runner runner(2);
        return runner.run(s);
    };
    const scenario_result serial = sweep(1);
    const scenario_result sharded = sweep(4);
    ASSERT_EQ(sharded.runs.size(), serial.runs.size());
    for (std::size_t r = 0; r < serial.runs.size(); ++r) {
        EXPECT_EQ(sharded.runs[r].ok, serial.runs[r].ok);
        EXPECT_EQ(sharded.runs[r].rounds(), serial.runs[r].rounds());
        EXPECT_EQ(sharded.runs[r].totals().messages, serial.runs[r].totals().messages);
        EXPECT_EQ(sharded.runs[r].totals().bits, serial.runs[r].totals().bits);
        EXPECT_EQ(sharded.runs[r].num_leaders(), serial.runs[r].num_leaders());
    }
}

}  // namespace
}  // namespace anole
