// Trace record/replay tests (sim/trace.h): every realized adversary
// schedule is recordable as JSONL and replayable byte-for-byte — same
// node states, same metrics, same dynamics_stats including the
// schedule_digest — across node-jobs 1/2/8 on all 19 topology families.
// Hand-edited traces are rejected with a clear error, and a committed
// fixture (tests/data/) pins a recorded schedule as a regression anchor.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "graph/generators.h"
#include "sim/dynamics.h"
#include "sim/engine.h"

namespace anole {
namespace {

struct probe_msg {
    std::uint64_t value = 0;
    [[nodiscard]] std::size_t bit_size() const noexcept { return 8; }
};

// Deterministic chatter (no node RNG): the digest is a pure function of
// what the adversary let through, so replay equality is exactly schedule
// equality.
class chatterbox {
public:
    using message_type = probe_msg;
    explicit chatterbox(std::size_t degree) : degree_(degree) {}
    void on_round(node_ctx<probe_msg>& ctx, inbox_view<probe_msg> inbox) {
        for (const auto& [port, msg] : inbox) {
            digest_ = digest_ * 0x9e3779b97f4a7c15ULL + msg.value + port;
        }
        for (port_id p = 0; p < degree_; ++p) ctx.send(p, probe_msg{ctx.round()});
    }
    std::uint64_t digest_ = 0;

private:
    std::size_t degree_;
};

struct run_digest {
    std::vector<std::uint64_t> node_state;
    phase_counters totals;
    dynamics_stats dynamics;
    bool operator==(const run_digest&) const = default;
};

run_digest run_traced(const graph& g, const dynamics_spec& spec,
                      std::uint64_t seed, std::uint64_t rounds,
                      std::size_t node_jobs = 1) {
    engine<chatterbox> eng(g, seed);
    eng.set_parallelism(nullptr, node_jobs);
    eng.set_dynamics(spec, seed);
    eng.spawn(
        [&](std::size_t u) { return chatterbox(g.degree(static_cast<node_id>(u))); });
    eng.run_rounds(rounds);
    run_digest d;
    d.totals = eng.metrics().total();
    d.dynamics = eng.dynamics()->stats();
    for (std::size_t u = 0; u < g.num_nodes(); ++u) {
        d.node_state.push_back(eng.node(u).digest_);
    }
    return d;
}

// Every event source at once, so traces exercise every record kind.
dynamics_spec everything_spec() {
    dynamics_spec d;
    d.rewire_prob = 0.1;
    d.edge_down_prob = 0.2;
    d.churn_interval = 4;
    d.loss_prob = 0.05;
    d.crash_prob = 0.01;
    d.sleep_prob = 0.02;
    d.sleep_rounds = 3;
    d.leave_prob = 0.02;
    d.join_prob = 0.3;
    // Adaptive without a probe: every sender reads as undecided, so the
    // frontier strategy still emits adaptive_kill events.
    d.strategy = adaptive_kind::target_frontier_loss;
    d.strategy_intensity = 0.05;
    return d;
}

std::string temp_trace(const char* tag) {
    return testing::TempDir() + "anole_trace_" + tag + ".jsonl";
}

// --- the acceptance sweep: record -> replay, bitwise, all families ------------

TEST(Trace, RecordThenReplayIsBitwiseOnAllFamilies) {
    for (graph_family f : all_families()) {
        const graph g = make_family(f, 20, 3);
        const std::string path = temp_trace(to_string(f));

        dynamics_spec rec_spec = everything_spec();
        rec_spec.trace_record = path;
        const run_digest recorded = run_traced(g, rec_spec, 17, 40);
        EXPECT_NE(recorded.dynamics.schedule_digest, 0u) << to_string(f);

        dynamics_spec replay_spec;  // all knobs come from the file
        replay_spec.trace_replay = path;
        for (const std::size_t jobs : {1, 2, 8}) {
            const run_digest replayed = run_traced(g, replay_spec, 17, 40, jobs);
            EXPECT_EQ(replayed, recorded)
                << "family: " << to_string(f) << " node_jobs=" << jobs;
        }
        std::remove(path.c_str());
    }
}

// Re-recording a replay reproduces the file's event stream: record ->
// replay+record -> the second trace loads to the same events.
TEST(Trace, ReplayCanReRecordIdentically) {
    const graph g = make_family(graph_family::dumbbell, 24, 1);
    const std::string first = temp_trace("rerecord_a");
    const std::string second = temp_trace("rerecord_b");
    dynamics_spec spec = everything_spec();
    spec.trace_record = first;
    (void)run_traced(g, spec, 23, 30);

    dynamics_spec replay;
    replay.trace_replay = first;
    replay.trace_record = second;
    (void)run_traced(g, replay, 23, 30);

    const trace_log a = trace_log::load(first);
    const trace_log b = trace_log::load(second);
    EXPECT_EQ(a.events, b.events);
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_EQ(a.spec_json, b.spec_json);
    std::remove(first.c_str());
    std::remove(second.c_str());
}

// A trace carries its own spec + seed: replaying under a caller spec
// with *different* sampling knobs still reproduces the recorded run.
TEST(Trace, RecordedSpecOverridesCallerKnobs) {
    const graph g = make_cycle(16);
    const std::string path = temp_trace("override");
    dynamics_spec spec = everything_spec();
    spec.trace_record = path;
    const run_digest recorded = run_traced(g, spec, 31, 30);

    dynamics_spec replay;
    replay.loss_prob = 0.9;  // would devastate the run if honored
    replay.crash_prob = 0.9;
    replay.trace_replay = path;
    EXPECT_EQ(run_traced(g, replay, 31, 30), recorded);
    std::remove(path.c_str());
}

// --- tamper rejection ---------------------------------------------------------

std::vector<std::string> read_lines(const std::string& path) {
    std::ifstream in(path);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
    return lines;
}

void write_lines(const std::string& path, const std::vector<std::string>& lines) {
    std::ofstream out(path, std::ios::trunc);
    for (const auto& l : lines) out << l << "\n";
}

// Records a dense trace on a small cycle; every tamper case below edits
// this file and expects a *clear* rejection, not a silent divergence.
std::string record_tamper_base() {
    static const std::string path = [] {
        const graph g = make_cycle(8);
        const std::string p = temp_trace("tamper_base");
        dynamics_spec spec;
        spec.loss_prob = 0.3;
        spec.crash_prob = 0.05;
        spec.trace_record = p;
        (void)run_traced(g, spec, 41, 30);
        return p;
    }();
    return path;
}

void expect_replay_throws(const std::string& path, const char* what_substr) {
    const graph g = make_cycle(8);
    dynamics_spec replay;
    replay.trace_replay = path;
    try {
        (void)run_traced(g, replay, 41, 30);
        FAIL() << "tampered trace accepted (expected: " << what_substr << ")";
    } catch (const error& e) {
        EXPECT_NE(std::string(e.what()).find(what_substr), std::string::npos)
            << "actual error: " << e.what();
    }
}

TEST(Trace, TamperedEventOrderIsRejected) {
    auto lines = read_lines(record_tamper_base());
    ASSERT_GT(lines.size(), 3u);
    // Swap the last two event lines: rounds become decreasing (or, for
    // same-round events, the cursor hits a mismatched kind).
    std::swap(lines[lines.size() - 1], lines[lines.size() - 2]);
    const std::string path = temp_trace("tamper_order");
    write_lines(path, lines);
    const graph g = make_cycle(8);
    dynamics_spec replay;
    replay.trace_replay = path;
    // Rejected either at load (round order) or at replay (stale event) —
    // both with a message pointing at the trace.
    try {
        (void)run_traced(g, replay, 41, 30);
        FAIL() << "reordered trace accepted";
    } catch (const error& e) {
        EXPECT_NE(std::string(e.what()).find("trace"), std::string::npos)
            << "actual error: " << e.what();
    }
    std::remove(path.c_str());
}

TEST(Trace, TamperedNodeIdIsRejected) {
    auto lines = read_lines(record_tamper_base());
    bool edited = false;
    for (auto& l : lines) {
        const auto pos = l.find("\"e\":\"crash\",\"a\":");
        if (pos == std::string::npos) continue;
        l = l.substr(0, pos) + "\"e\":\"crash\",\"a\":9999}";
        edited = true;
        break;
    }
    ASSERT_TRUE(edited) << "base trace recorded no crash events";
    const std::string path = temp_trace("tamper_id");
    write_lines(path, lines);
    expect_replay_throws(path, "out of range");
    std::remove(path.c_str());
}

TEST(Trace, UnknownEventKindIsRejected) {
    auto lines = read_lines(record_tamper_base());
    ASSERT_GT(lines.size(), 2u);
    lines[1] = R"({"r":0,"e":"meteor","a":1})";
    const std::string path = temp_trace("tamper_kind");
    write_lines(path, lines);
    expect_replay_throws(path, "unknown event kind");
    std::remove(path.c_str());
}

TEST(Trace, WrongTopologyIsRejected) {
    // A cycle(8) trace replayed on a torus: the footprint check fires.
    const graph g = make_family(graph_family::torus, 16, 1);
    dynamics_spec replay;
    replay.trace_replay = record_tamper_base();
    engine<chatterbox> eng(g, 41);
    try {
        eng.set_dynamics(replay, 41);
        eng.spawn([&](std::size_t u) {
            return chatterbox(g.degree(static_cast<node_id>(u)));
        });
        eng.run_rounds(5);
        FAIL() << "trace from a different topology accepted";
    } catch (const error& e) {
        EXPECT_NE(std::string(e.what()).find("trace"), std::string::npos)
            << "actual error: " << e.what();
    }
}

// --- the committed regression fixture -----------------------------------------

// tests/data/trace_cycle16.jsonl was recorded once (chatterbox, cycle 16,
// run seed 77, 40 rounds, the everything_spec schedule) and committed.
// Replaying it must reproduce the exact recorded schedule digest — if
// the dynamics layer's event order, digest offsets, or replay semantics
// drift, this constant moves and the test names the regression.
// Recorded 2026-08-08; regenerate with the recipe above if the trace
// format itself changes (and say why in the commit).
constexpr std::uint64_t kFixtureScheduleDigest = 0xe6152d3804782f4aULL;
constexpr std::uint64_t kFixtureNodeFold = 0x9f5272b7681a0308ULL;

TEST(Trace, CommittedFixtureReplaysBitwise) {
    const std::string path =
        std::string(ANOLE_SOURCE_DIR) + "/tests/data/trace_cycle16.jsonl";
    const graph g = make_cycle(16);
    dynamics_spec replay;
    replay.trace_replay = path;
    const run_digest d = run_traced(g, replay, 77, 40);
    EXPECT_EQ(d.dynamics.schedule_digest, kFixtureScheduleDigest);
    std::uint64_t node_fold = 0;
    for (const std::uint64_t s : d.node_state) {
        node_fold = node_fold * 0x9e3779b97f4a7c15ULL + s;
    }
    EXPECT_EQ(node_fold, kFixtureNodeFold);
}

}  // namespace
}  // namespace anole
