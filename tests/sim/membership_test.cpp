// Node join/leave tests (sim/dynamics.h membership churn + engine
// presence tracking): departures release their slot ranges, joiners
// respawn as fresh protocol instances attached on the footprint edges,
// and every driver reaches a *bounded* verdict even when the live set
// empties — the empty-live-set regression pins the `no_live_nodes`
// error, never a hang.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "baseline/flood_max.h"
#include "graph/generators.h"
#include "sim/dynamics.h"
#include "sim/engine.h"
#include "sim/runner.h"

namespace anole {
namespace {

struct probe_msg {
    std::uint64_t value = 0;
    [[nodiscard]] std::size_t bit_size() const noexcept { return 8; }
};

class chatterbox {
public:
    using message_type = probe_msg;
    explicit chatterbox(std::size_t degree) : degree_(degree) {}
    void on_round(node_ctx<probe_msg>& ctx, inbox_view<probe_msg> inbox) {
        for (const auto& [port, msg] : inbox) {
            digest_ = digest_ * 0x9e3779b97f4a7c15ULL + msg.value + port;
        }
        for (port_id p = 0; p < degree_; ++p) ctx.send(p, probe_msg{ctx.round()});
    }
    std::uint64_t digest_ = 0;

private:
    std::size_t degree_;
};

// engine is pinned in place (non-copyable), so tests hold it in a rig.
struct chatter_rig {
    engine<chatterbox> eng;
    chatter_rig(const graph& g, const dynamics_spec& spec, std::uint64_t seed)
        : eng(g, seed) {
        eng.set_dynamics(spec, seed);
        eng.spawn([&](std::size_t u) {
            return chatterbox(g.degree(static_cast<node_id>(u)));
        });
    }
};

// --- leave / join mechanics ---------------------------------------------------

TEST(Membership, LeaversReleaseSlotsAndJoinersReattach) {
    const graph g = make_family(graph_family::torus, 25, 1);
    dynamics_spec spec;
    spec.leave_prob = 0.05;
    spec.join_prob = 0.5;
    chatter_rig rig(g, spec, 7);
    auto& eng = rig.eng;
    eng.run_rounds(60);
    const dynamics_stats st = eng.dynamics()->stats();
    EXPECT_GT(st.leaves, 0u);
    EXPECT_GT(st.joins, 0u);
    // A leaver with traffic in flight takes those messages down with it.
    EXPECT_GT(st.released_messages, 0u);
    // Presence bookkeeping closes: n - (leaves - joins) == present.
    EXPECT_EQ(eng.present_count(),
              g.num_nodes() - static_cast<std::size_t>(st.leaves - st.joins));
    EXPECT_LE(eng.live_count(), eng.present_count());
}

TEST(Membership, JoinRespawnsFreshProtocolInstance) {
    const graph g = make_cycle(12);
    dynamics_spec spec;
    spec.leave_prob = 0.2;
    spec.join_prob = 1.0;  // leavers come straight back
    chatter_rig rig(g, spec, 11);
    auto& eng = rig.eng;
    eng.run_rounds(40);
    const dynamics_stats st = eng.dynamics()->stats();
    ASSERT_GT(st.joins, 0u);
    // Everybody who left is back (join_prob = 1 readmits next round).
    EXPECT_GE(eng.present_count() + 1, g.num_nodes());
    // Respawned chatterboxes restart from digest 0 and keep running.
    EXPECT_EQ(eng.halted_count(), 0u);
}

TEST(Membership, ChurnIsBitwiseIdenticalAcrossNodeJobs) {
    const graph g = make_family(graph_family::dumbbell, 24, 1);
    dynamics_spec spec;
    spec.leave_prob = 0.05;
    spec.join_prob = 0.3;
    spec.loss_prob = 0.05;
    auto digest = [&](std::size_t node_jobs) {
        engine<chatterbox> eng(g, 5);
        eng.set_parallelism(nullptr, node_jobs);
        eng.set_dynamics(spec, 5);
        eng.spawn([&](std::size_t u) {
            return chatterbox(g.degree(static_cast<node_id>(u)));
        });
        eng.run_rounds(50);
        std::vector<std::uint64_t> out;
        for (std::size_t u = 0; u < g.num_nodes(); ++u) {
            out.push_back(eng.node(u).digest_);
        }
        out.push_back(eng.dynamics()->stats().schedule_digest);
        return out;
    };
    const auto serial = digest(1);
    EXPECT_EQ(digest(2), serial);
    EXPECT_EQ(digest(8), serial);
}

// --- the empty-live-set regression --------------------------------------------

TEST(Membership, AllNodesLeavingYieldsBoundedNoLiveNodesVerdict) {
    const graph g = make_cycle(8);
    dynamics_spec spec;
    spec.leave_prob = 1.0;  // everyone departs in round 0's pre-pass
    chatter_rig rig(g, spec, 3);
    auto& eng = rig.eng;
    try {
        eng.run_until([] { return false; }, 1000);
        FAIL() << "run_until returned with an empty live set";
    } catch (const error& e) {
        EXPECT_NE(std::string(e.what()).find("no_live_nodes"), std::string::npos)
            << "actual error: " << e.what();
    }
    EXPECT_EQ(eng.live_count(), 0u);
    EXPECT_EQ(eng.present_count(), 0u);
}

TEST(Membership, FloodOnEmptyLiveSetReportsBoundedFailure) {
    const graph g = make_family(graph_family::star, 16, 1);
    dynamics_spec spec;
    spec.leave_prob = 1.0;
    const graph_profile prof = profile(g, 1);
    const run_record rec =
        scenario_runner::run_once(g, prof, flood_cfg{}, 21, spec);
    EXPECT_FALSE(rec.ok);
    EXPECT_NE(rec.error.find("no_live_nodes"), std::string::npos)
        << "actual error: " << rec.error;
    EXPECT_FALSE(rec.success());
    EXPECT_NE(rec.verdict().find("error:"), std::string::npos);
}

// All-crash is the *other* way to empty the live set; that one resolves
// through run_until_halted's all-halted exit, not an exception.
TEST(Membership, AllCrashedResolvesThroughHaltedExit) {
    const graph g = make_cycle(8);
    dynamics_spec spec;
    spec.crash_prob = 1.0;
    chatter_rig rig(g, spec, 9);
    auto& eng = rig.eng;
    EXPECT_NO_THROW(eng.run_until_halted(1000));
    EXPECT_EQ(eng.live_count(), 0u);
    EXPECT_EQ(eng.present_count(), g.num_nodes());  // crashed, not departed
}

// Flood-max under membership churn: joiners never drew an ID, so they
// must not claim leadership at the final round (id == 0 guard).
TEST(Membership, FloodJoinersNeverClaimLeadership) {
    const graph g = make_family(graph_family::torus, 25, 1);
    dynamics_spec spec;
    spec.leave_prob = 0.05;
    spec.join_prob = 0.8;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        const flood_result res = run_flood_max(g, /*diameter=*/8, seed,
                                               congest_budget::strict_log(16), spec);
        for (const oracle_violation& v : res.oracle.violations) {
            EXPECT_NE(v.check, "leader_undecided") << v.detail;
        }
    }
}

}  // namespace
}  // namespace anole
