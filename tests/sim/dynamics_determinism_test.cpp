// Determinism tests for the dynamic-network layer (sim/dynamics.h): the
// whole adversary schedule is a pure function of the seed, applied in a
// serial pre-round pass — so runs under dynamics must stay bitwise
// identical across --node-jobs 1/2/8, on every family in the topology
// zoo (the PR that added sharded rounds pinned this for static runs;
// this extends the table to dynamic ones). Also pins the engine-level
// reduction: a full rewire firing before round 0 is indistinguishable
// from running statically on graph::with_permuted_ports.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "graph/generators.h"
#include "sim/dynamics.h"
#include "sim/engine.h"
#include "sim/runner.h"

namespace anole {
namespace {

struct probe_msg {
    std::uint64_t value = 0;
    [[nodiscard]] std::size_t bit_size() const noexcept { return 8; }
};

// The engine_parallel_test scrambler, with arrival ports folded into the
// digest so port-rewiring is observable: random chatter on random port
// subsets, RNG-staggered halting.
class scrambler {
public:
    using message_type = probe_msg;
    explicit scrambler(std::size_t degree) : degree_(degree) {}

    void on_round(node_ctx<probe_msg>& ctx, inbox_view<probe_msg> inbox) {
        for (const auto& [port, msg] : inbox) {
            digest_ = digest_ * 0x9e3779b97f4a7c15ULL + msg.value + port;
        }
        if (halt_round_ == 0) halt_round_ = 6 + ctx.rng().below(14);
        if (ctx.round() >= halt_round_) {
            ctx.halt();
            return;
        }
        for (port_id p = 0; p < degree_; ++p) {
            if (ctx.rng().bit()) ctx.send(p, probe_msg{ctx.rng()()});
        }
    }

    std::uint64_t digest_ = 0;

private:
    std::size_t degree_;
    std::uint64_t halt_round_ = 0;
};

struct run_digest {
    std::vector<std::uint64_t> node_state;
    std::uint64_t rounds = 0;
    std::size_t halted = 0;
    phase_counters totals;
    dynamics_stats dynamics;  // includes the realized schedule_digest

    bool operator==(const run_digest&) const = default;
};

run_digest run_dynamic(const graph& g, const dynamics_spec& spec,
                       std::size_t node_jobs, std::uint64_t seed) {
    engine<scrambler> eng(g, seed);
    eng.set_parallelism(nullptr, node_jobs);
    eng.set_dynamics(spec, seed);
    eng.spawn(
        [&](std::size_t u) { return scrambler(g.degree(static_cast<node_id>(u))); });
    run_digest d;
    d.rounds = eng.run_until_halted(2000);
    d.halted = eng.halted_count();
    d.totals = eng.metrics().total();
    for (std::size_t u = 0; u < g.num_nodes(); ++u) {
        d.node_state.push_back(eng.node(u).digest_);
    }
    if (eng.dynamics() != nullptr) d.dynamics = eng.dynamics()->stats();
    return d;
}

// Every adversary at once — the spec most likely to expose a schedule
// that depends on thread interleaving.
dynamics_spec storm_spec() {
    dynamics_spec d;
    d.rewire_prob = 0.2;
    d.edge_down_prob = 0.2;
    d.churn_interval = 3;
    d.loss_prob = 0.05;
    d.sleep_prob = 0.02;
    d.sleep_rounds = 3;
    return d;
}

// The acceptance bar: all 19 zoo families, node_jobs 1/2/8, byte-equal
// node states, metrics, AND realized event schedules (schedule_digest).
TEST(DynamicsDeterminism, AllFamiliesIdenticalAcrossNodeJobs) {
    for (graph_family f : all_families()) {
        const graph g = make_family(f, 20, 3);
        const run_digest serial = run_dynamic(g, storm_spec(), 1, 17);
        EXPECT_EQ(run_dynamic(g, storm_spec(), 2, 17), serial)
            << "family: " << to_string(f) << " node_jobs=2";
        EXPECT_EQ(run_dynamic(g, storm_spec(), 8, 17), serial)
            << "family: " << to_string(f) << " node_jobs=8";
    }
}

TEST(DynamicsDeterminism, SameSeedSameSchedule) {
    const graph g = make_family(graph_family::dumbbell, 24, 1);
    const run_digest a = run_dynamic(g, storm_spec(), 1, 5);
    const run_digest b = run_dynamic(g, storm_spec(), 1, 5);
    EXPECT_EQ(a, b);
    EXPECT_NE(a.dynamics.schedule_digest, 0u);  // the storm really fired
}

TEST(DynamicsDeterminism, DifferentSeedDifferentSchedule) {
    const graph g = make_family(graph_family::torus, 16, 1);
    const run_digest a = run_dynamic(g, storm_spec(), 1, 5);
    const run_digest b = run_dynamic(g, storm_spec(), 1, 6);
    EXPECT_NE(a.dynamics.schedule_digest, b.dynamics.schedule_digest);
}

// A deterministic protocol (always sends, never halts): its slot
// liveness is independent of the run seed, so the realized adversary
// schedule is a pure function of the spec seed alone.
class beacon {
public:
    using message_type = probe_msg;
    explicit beacon(std::size_t degree) : degree_(degree) {}
    void on_round(node_ctx<probe_msg>& ctx, inbox_view<probe_msg>) {
        for (port_id p = 0; p < degree_; ++p) ctx.send(p, probe_msg{ctx.round()});
    }

private:
    std::size_t degree_;
};

TEST(DynamicsDeterminism, ExplicitSpecSeedDecouplesScheduleFromRunSeed) {
    const graph g = make_family(graph_family::cycle, 20, 1);
    dynamics_spec d = storm_spec();
    d.seed = 99;  // pinned: the schedule no longer follows the run seed
    auto schedule = [&](std::uint64_t run_seed) {
        engine<beacon> eng(g, run_seed);
        eng.set_dynamics(d, run_seed);
        eng.spawn([&](std::size_t u) {
            return beacon(g.degree(static_cast<node_id>(u)));
        });
        eng.run_rounds(60);
        return eng.dynamics()->stats();
    };
    const dynamics_stats a = schedule(5);
    EXPECT_NE(a.schedule_digest, 0u);
    EXPECT_EQ(a, schedule(6));  // full stats equality, not just the digest
    // An unpinned spec (seed = 0) derives from the run seed instead.
    d.seed = 0;
    engine<beacon> eng(g, 5);
    eng.set_dynamics(d, 5);
    eng.spawn(
        [&](std::size_t u) { return beacon(g.degree(static_cast<node_id>(u))); });
    eng.run_rounds(60);
    EXPECT_NE(eng.dynamics()->stats().schedule_digest, a.schedule_digest);
}

// Engine-level reduction: a rewire_period beyond the run length fires
// exactly once, before round 0 (no messages in flight yet) — the run
// must be byte-identical to a static run on with_permuted_ports of the
// round-0 rewire seed. This is the bridge between the per-round
// adversary and the one-shot anonymity adversary the tests always used.
TEST(DynamicsDeterminism, SingleRewireReducesToWithPermutedPorts) {
    const graph g = make_family(graph_family::watts_strogatz, 32, 7);
    dynamics_spec d;
    d.rewire_period = 1 << 20;  // fires at round 0 only
    d.seed = 4321;
    const run_digest dynamic = run_dynamic(g, d, 1, 77);

    const graph permuted =
        g.with_permuted_ports(dynamics_state(g, d, 77).rewire_seed(0));
    engine<scrambler> eng(permuted, 77);
    eng.spawn([&](std::size_t u) {
        return scrambler(permuted.degree(static_cast<node_id>(u)));
    });
    run_digest reference;
    reference.rounds = eng.run_until_halted(2000);
    reference.halted = eng.halted_count();
    reference.totals = eng.metrics().total();
    for (std::size_t u = 0; u < permuted.num_nodes(); ++u) {
        reference.node_state.push_back(eng.node(u).digest_);
    }

    EXPECT_EQ(dynamic.node_state, reference.node_state);
    EXPECT_EQ(dynamic.rounds, reference.rounds);
    EXPECT_EQ(dynamic.totals, reference.totals);
}

// The runner path: scenario::dynamics rides through run()/run_batch()
// and node_jobs stays a pure wall-clock knob under dynamics too.
TEST(DynamicsDeterminism, RunnerNodeJobsInvariantUnderDynamics) {
    auto sweep = [&](std::size_t node_jobs) {
        scenario s;
        s.topology = family_spec{graph_family::torus, 16, 1};
        s.algo = flood_cfg{};
        s.seed = 12;
        s.repetitions = 3;
        s.node_jobs = node_jobs;
        s.dynamics = storm_spec();
        scenario_runner runner(2);
        return runner.run(s);
    };
    const scenario_result serial = sweep(1);
    const scenario_result sharded = sweep(4);
    ASSERT_EQ(sharded.runs.size(), serial.runs.size());
    for (std::size_t r = 0; r < serial.runs.size(); ++r) {
        EXPECT_EQ(sharded.runs[r].ok, serial.runs[r].ok);
        EXPECT_EQ(sharded.runs[r].error, serial.runs[r].error);
        EXPECT_EQ(sharded.runs[r].rounds(), serial.runs[r].rounds());
        EXPECT_EQ(sharded.runs[r].totals().messages, serial.runs[r].totals().messages);
        EXPECT_EQ(sharded.runs[r].totals().bits, serial.runs[r].totals().bits);
        EXPECT_EQ(sharded.runs[r].num_leaders(), serial.runs[r].num_leaders());
    }
}

}  // namespace
}  // namespace anole
