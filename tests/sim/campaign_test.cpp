// Tests for sim/campaign.h (ISSUE 2 satellite): spec expansion,
// JSONL record round-trip, resume-skips-completed, topology/profile
// cache sharing across variants, and byte-identical output regardless
// of --jobs.
#include "sim/campaign.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

namespace anole {
namespace {

// Fast spec: two cheap variants on two small topologies.
campaign_spec tiny_spec(std::string output = {}) {
    campaign_spec spec;
    spec.families = {graph_family::wheel, graph_family::connected_caveman};
    spec.sizes = {16};
    spec.variants = {algo_kind::flood_max, algo_kind::irrevocable};
    spec.seeds = 3;
    spec.base_seed = 10;
    spec.output = std::move(output);
    return spec;
}

std::string temp_path(const char* tag) {
    // Tags are unique per test, and gtest runs each test of this binary
    // in its own invocation — no cross-test collisions.
    return ::testing::TempDir() + "anole_campaign_" + tag + ".jsonl";
}

std::string slurp(const std::string& path) {
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

TEST(Campaign, ExpansionIsTheFullCartesianProductWithUniqueKeys) {
    campaign_spec spec = tiny_spec();
    spec.sizes = {16, 32, 64};
    spec.seeds = 5;
    const auto units = expand(spec);
    ASSERT_EQ(units.size(), 2u * 3u * 2u * 5u);
    std::set<std::string> keys;
    for (const auto& u : units) keys.insert(u.key());
    EXPECT_EQ(keys.size(), units.size());
    // Expansion order: topology groups outer, (variant, seed) inner.
    EXPECT_EQ(units[0].key(), "wheel/16/t1/flood_max/10");
    EXPECT_EQ(units[1].key(), "wheel/16/t1/flood_max/11");
    EXPECT_EQ(units[spec.variants.size() * spec.seeds].key(),
              "wheel/32/t1/flood_max/10");
}

TEST(Campaign, SpecFromJsonParsesSchemaAndAliases) {
    const campaign_spec spec = campaign_spec_from_json(
        R"({"families": ["barbell", "ws", "ba"], "sizes": [64, 256],
            "variants": ["revocable", "cautious"], "seeds": 8,
            "base_seed": 3, "topology_seed": 9, "output": "x.jsonl"})");
    ASSERT_EQ(spec.families.size(), 3u);
    EXPECT_EQ(spec.families[1], graph_family::watts_strogatz);
    EXPECT_EQ(spec.families[2], graph_family::barabasi_albert);
    ASSERT_EQ(spec.variants.size(), 2u);
    EXPECT_EQ(spec.variants[1], algo_kind::cautious_broadcast);
    EXPECT_EQ(spec.sizes, (std::vector<std::size_t>{64, 256}));
    EXPECT_EQ(spec.seeds, 8u);
    EXPECT_EQ(spec.base_seed, 3u);
    EXPECT_EQ(spec.topology_seed, 9u);
    EXPECT_EQ(spec.output, "x.jsonl");

    EXPECT_THROW((void)campaign_spec_from_json(R"({"families": ["nope"]})"), error);
    EXPECT_THROW((void)campaign_spec_from_json(R"({"unknown_key": 1})"), error);
    // Valid JSON but an empty sweep axis: rejected by validate().
    EXPECT_THROW((void)campaign_spec_from_json(
                     R"({"families": ["barbell"], "sizes": [], "variants": ["flood"]})"),
                 error);
}

TEST(Campaign, RecordRoundTripsThroughJson) {
    campaign_record rec;
    rec.unit = {graph_family::barabasi_albert, 64, 3, algo_kind::revocable, 17};
    rec.nodes = 64;
    rec.edges = 125;
    rec.phi = 0.25;
    rec.tmix = 33;
    rec.ok = true;
    rec.success = true;
    rec.leaders = 1;
    rec.rounds = 1234;
    rec.messages = 56789;
    rec.bits = 424242;
    rec.congest_rounds = 2345;
    rec.error = "with \"quotes\" and\nnewline";

    const campaign_record back = campaign_record::from_json(rec.to_json());
    EXPECT_EQ(back.unit.key(), rec.unit.key());
    EXPECT_EQ(back.nodes, rec.nodes);
    EXPECT_EQ(back.edges, rec.edges);
    EXPECT_DOUBLE_EQ(back.phi, rec.phi);
    EXPECT_EQ(back.tmix, rec.tmix);
    EXPECT_EQ(back.ok, rec.ok);
    EXPECT_EQ(back.success, rec.success);
    EXPECT_EQ(back.leaders, rec.leaders);
    EXPECT_EQ(back.rounds, rec.rounds);
    EXPECT_EQ(back.messages, rec.messages);
    EXPECT_EQ(back.bits, rec.bits);
    EXPECT_EQ(back.congest_rounds, rec.congest_rounds);
    EXPECT_EQ(back.error, rec.error);
}

TEST(Campaign, RunProducesOneRecordPerUnit) {
    scenario_runner runner(2);
    const campaign_report report = run_campaign(tiny_spec(), runner);
    EXPECT_EQ(report.executed, 12u);
    EXPECT_EQ(report.skipped, 0u);
    EXPECT_EQ(report.failed, 0u);
    ASSERT_EQ(report.records.size(), 12u);
    for (const auto& rec : report.records) {
        EXPECT_TRUE(rec.ok) << rec.unit.key() << ": " << rec.error;
        EXPECT_GT(rec.messages, 0u) << rec.unit.key();
        EXPECT_GT(rec.nodes, 0u);
    }
    // The aggregate table groups by (family, n, variant): 4 cells.
    EXPECT_EQ(campaign_table(report.records).row_count(), 4u);
}

TEST(Campaign, ResumeSkipsEveryCompletedUnit) {
    const std::string path = temp_path("resume");
    std::remove(path.c_str());

    scenario_runner first(2);
    const campaign_report run1 = run_campaign(tiny_spec(path), first);
    EXPECT_EQ(run1.executed, 12u);

    // A second invocation finds every unit recorded: 0 re-runs.
    scenario_runner second(2);
    const campaign_report run2 = run_campaign(tiny_spec(path), second);
    EXPECT_EQ(run2.executed, 0u);
    EXPECT_EQ(run2.skipped, 12u);
    ASSERT_EQ(run2.records.size(), 12u);
    // Loaded records carry the full payload, not just keys.
    for (std::size_t i = 0; i < run2.records.size(); ++i) {
        EXPECT_EQ(run2.records[i].unit.key(), run1.records[i].unit.key());
        EXPECT_EQ(run2.records[i].messages, run1.records[i].messages);
    }
    std::remove(path.c_str());
}

TEST(Campaign, ResumeAfterPartialFileRunsOnlyMissingUnits) {
    // Simulate a SIGKILLed campaign: keep the first 5 recorded lines
    // (including a torn 6th) and resume — exactly the other 7 units run.
    const std::string path = temp_path("partial");
    std::remove(path.c_str());

    scenario_runner first(2);
    const campaign_report full = run_campaign(tiny_spec(path), first);
    ASSERT_EQ(full.executed, 12u);

    std::vector<std::string> lines;
    {
        std::ifstream in(path);
        std::string line;
        while (std::getline(in, line)) lines.push_back(line);
    }
    ASSERT_EQ(lines.size(), 13u);  // schema header + 12 records
    {
        std::ofstream out(path, std::ios::trunc);
        for (std::size_t i = 0; i < 6; ++i) out << lines[i] << "\n";
        out << lines[6].substr(0, lines[6].size() / 2);  // torn mid-write
    }

    scenario_runner second(2);
    const campaign_report resumed = run_campaign(tiny_spec(path), second);
    EXPECT_EQ(resumed.skipped, 5u);
    EXPECT_EQ(resumed.executed, 7u);
    ASSERT_EQ(resumed.records.size(), 12u);
    // Re-run units reproduce the original numbers (same seeds).
    for (std::size_t i = 0; i < 12; ++i) {
        EXPECT_EQ(resumed.records[i].unit.key(), full.records[i].unit.key());
        EXPECT_EQ(resumed.records[i].messages, full.records[i].messages) << i;
    }

    // The resume must have started a fresh line after the torn fragment
    // (not glued its first record onto it): a third invocation parses
    // the whole file and re-runs nothing.
    scenario_runner third(2);
    const campaign_report settled = run_campaign(tiny_spec(path), third);
    EXPECT_EQ(settled.executed, 0u);
    EXPECT_EQ(settled.skipped, 12u);
    std::remove(path.c_str());
}

TEST(Campaign, DifferentTopologySeedDoesNotReuseRecordedRuns) {
    // --topology-seed resamples the graph instances; records measured on
    // the old instances must not satisfy the new sweep.
    const std::string path = temp_path("topo_seed");
    std::remove(path.c_str());

    scenario_runner first(2);
    ASSERT_EQ(run_campaign(tiny_spec(path), first).executed, 12u);

    campaign_spec resampled = tiny_spec(path);
    resampled.topology_seed = 2;
    scenario_runner second(2);
    const campaign_report rerun = run_campaign(resampled, second);
    EXPECT_EQ(rerun.executed, 12u);
    EXPECT_EQ(rerun.skipped, 0u);
    std::remove(path.c_str());
}

TEST(Campaign, VariantsShareOneGraphAndOneProfilePerTopology) {
    // The whole point of the shared cache: 2 variants x 3 seeds on one
    // (family, n) materialize ONE graph and profile it ONCE.
    scenario_runner runner(2);
    campaign_spec spec = tiny_spec();
    spec.families = {graph_family::watts_strogatz};
    const campaign_report report = run_campaign(spec, runner);
    EXPECT_EQ(report.executed, 6u);
    EXPECT_EQ(runner.cached_graphs(), 1u);
    EXPECT_EQ(runner.cached_profiles(), 1u);
    // And the cached instance is the same const graph* a fresh
    // materialize of the campaign's family_spec returns.
    const graph& g = runner.materialize(
        family_spec{graph_family::watts_strogatz, 16, spec.topology_seed});
    EXPECT_EQ(runner.cached_graphs(), 1u);
    for (const auto& rec : report.records) {
        EXPECT_EQ(rec.nodes, g.num_nodes());
        EXPECT_EQ(rec.edges, g.num_edges());
    }
}

TEST(Campaign, OutputIsByteIdenticalForAnyJobCount) {
    const std::string serial_path = temp_path("serial");
    const std::string wide_path = temp_path("wide");
    std::remove(serial_path.c_str());
    std::remove(wide_path.c_str());

    scenario_runner serial(1), wide(8);
    const campaign_report a = run_campaign(tiny_spec(serial_path), serial);
    const campaign_report b = run_campaign(tiny_spec(wide_path), wide);
    EXPECT_EQ(a.executed, b.executed);
    EXPECT_EQ(slurp(serial_path), slurp(wide_path));

    // The aggregate tables agree too.
    std::ostringstream ta, tb;
    campaign_table(a.records).print(ta);
    campaign_table(b.records).print(tb);
    EXPECT_EQ(ta.str(), tb.str());
    std::remove(serial_path.c_str());
    std::remove(wide_path.c_str());
}

TEST(Campaign, VariantNamesParseIncludingAliases) {
    EXPECT_EQ(variant_from_string("flood_max"), algo_kind::flood_max);
    EXPECT_EQ(variant_from_string("flood"), algo_kind::flood_max);
    EXPECT_EQ(variant_from_string("gilbert"), algo_kind::gilbert);
    EXPECT_EQ(variant_from_string("irrevocable"), algo_kind::irrevocable);
    EXPECT_EQ(variant_from_string("revocable"), algo_kind::revocable);
    EXPECT_EQ(variant_from_string("cautious"), algo_kind::cautious_broadcast);
    EXPECT_EQ(variant_from_string("cautious_broadcast"), algo_kind::cautious_broadcast);
    EXPECT_FALSE(variant_from_string("nope").has_value());
}

TEST(Campaign, DefaultConfigsCoverEveryVariant) {
    for (const algo_kind k :
         {algo_kind::flood_max, algo_kind::gilbert, algo_kind::irrevocable,
          algo_kind::revocable, algo_kind::cautious_broadcast}) {
        EXPECT_EQ(kind_of(campaign_default_config(k, 64, 128)), k);
    }
    // The revocable round budget shrinks as the graph densifies.
    const auto sparse = std::get<revocable_cfg>(
        campaign_default_config(algo_kind::revocable, 64, 128));
    const auto dense = std::get<revocable_cfg>(
        campaign_default_config(algo_kind::revocable, 256, 16'000));
    EXPECT_GT(sparse.max_rounds, dense.max_rounds);
}

// --- ISSUE 8: oracle columns + adaptive dynamics through the ledger -----------

TEST(Campaign, OracleColumnsRoundTripThroughJsonl) {
    campaign_record rec;
    rec.unit = {graph_family::cycle, 16, 1, algo_kind::flood_max, 7,
                "assassin", *dynamics_preset("assassin")};
    rec.ok = true;
    rec.success = true;
    rec.oracle_ok = false;
    rec.oracle_summary = "VIOLATION multi_leader: 2 leaders with \"distinct\" ids";

    const std::string line = rec.to_json();
    EXPECT_NE(line.find("\"oracle_ok\":false"), std::string::npos);
    const campaign_record back = campaign_record::from_json(line);
    EXPECT_EQ(back.unit.key(), rec.unit.key());
    EXPECT_FALSE(back.oracle_ok);
    EXPECT_EQ(back.oracle_summary, rec.oracle_summary);

    // Healthy records write the flag but omit the summary payload.
    rec.oracle_ok = true;
    rec.oracle_summary.clear();
    const std::string ok_line = rec.to_json();
    EXPECT_NE(ok_line.find("\"oracle_ok\":true"), std::string::npos);
    EXPECT_EQ(ok_line.find("\"oracle\":\""), std::string::npos);
    EXPECT_TRUE(campaign_record::from_json(ok_line).oracle_ok);
}

TEST(Campaign, PreOracleLedgerLinesStillResume) {
    // Ledgers written before the oracle layer carry no oracle_ok key;
    // they must load (oracle_ok defaults true) and satisfy a resume.
    const std::string path = temp_path("pre_oracle");
    std::remove(path.c_str());

    scenario_runner first(2);
    ASSERT_EQ(run_campaign(tiny_spec(path), first).executed, 12u);

    // Rewrite the ledger with the oracle fields stripped AND the schema
    // header dropped, old-schema style (headerless legacy files must
    // keep resuming).
    std::vector<std::string> lines;
    {
        std::ifstream in(path);
        std::string line;
        while (std::getline(in, line)) lines.push_back(line);
    }
    ASSERT_EQ(lines.size(), 13u);  // schema header + 12 records
    {
        std::ofstream out(path, std::ios::trunc);
        for (auto& l : lines) {
            if (parse_campaign_schema_header(l).has_value()) continue;
            const auto pos = l.find(",\"oracle_ok\":");
            ASSERT_NE(pos, std::string::npos);
            const auto end = l.find(',', pos + 1);
            ASSERT_NE(end, std::string::npos);
            out << l.substr(0, pos) + l.substr(end) << "\n";
        }
    }

    scenario_runner second(2);
    const campaign_report resumed = run_campaign(tiny_spec(path), second);
    EXPECT_EQ(resumed.executed, 0u);
    EXPECT_EQ(resumed.skipped, 12u);
    for (const auto& rec : resumed.records) {
        EXPECT_TRUE(rec.oracle_ok) << rec.unit.key();
        EXPECT_TRUE(rec.oracle_summary.empty());
    }
    std::remove(path.c_str());
}

TEST(Campaign, AdaptiveDynamicsAxisResumesFromLedger) {
    // A campaign swept over adaptive presets keys each record with the
    // dynamics name; a re-invocation with the same spec re-runs nothing.
    campaign_spec spec;
    spec.families = {graph_family::wheel};
    spec.sizes = {16};
    spec.variants = {algo_kind::flood_max};
    spec.seeds = 2;
    spec.base_seed = 10;
    spec.dynamics = {{"static", dynamics_spec{}},
                     {"assassin", *dynamics_preset("assassin")},
                     {"frontier", *dynamics_preset("frontier")}};
    const std::string path = temp_path("adaptive_axis");
    std::remove(path.c_str());
    spec.output = path;

    scenario_runner first(2);
    const campaign_report run1 = run_campaign(spec, first);
    EXPECT_EQ(run1.executed, 6u);
    // Keys carry the dynamics suffix, so axes never alias each other.
    EXPECT_EQ(run1.records[2].unit.key(), "wheel/16/t1/flood_max/10/assassin");

    scenario_runner second(2);
    const campaign_report run2 = run_campaign(spec, second);
    EXPECT_EQ(run2.executed, 0u);
    EXPECT_EQ(run2.skipped, 6u);
    std::remove(path.c_str());
}

TEST(Campaign, LedgerStampsSchemaHeader) {
    const std::string path = temp_path("schema_header");
    std::remove(path.c_str());

    scenario_runner runner(2);
    ASSERT_EQ(run_campaign(tiny_spec(path), runner).executed, 12u);

    std::ifstream in(path);
    std::string first_line;
    ASSERT_TRUE(std::getline(in, first_line));
    EXPECT_EQ(first_line, campaign_schema_header_line());
    const auto version = parse_campaign_schema_header(first_line);
    ASSERT_TRUE(version.has_value());
    EXPECT_EQ(*version, campaign_schema_version);
    // Record lines are never mistaken for headers.
    std::string second_line;
    ASSERT_TRUE(std::getline(in, second_line));
    EXPECT_FALSE(parse_campaign_schema_header(second_line).has_value());

    // load_campaign_ledger skips the header and returns only records.
    EXPECT_EQ(load_campaign_ledger(path).size(), 12u);
    std::remove(path.c_str());
}

TEST(Campaign, IncompatibleSchemaVersionRejected) {
    const std::string path = temp_path("schema_reject");
    {
        std::ofstream out(path, std::ios::trunc);
        out << "{\"schema\":\"anole-campaign\",\"version\":99}\n";
    }
    EXPECT_THROW(check_campaign_ledger_schema(path), error);
    EXPECT_THROW((void)load_campaign_ledger(path), error);
    scenario_runner runner(2);
    EXPECT_THROW((void)run_campaign(tiny_spec(path), runner), error);
    std::remove(path.c_str());

    // Missing and headerless files pass the check.
    EXPECT_NO_THROW(check_campaign_ledger_schema(path));
    {
        std::ofstream out(path, std::ios::trunc);
        out << "{\"key\":\"not-a-header\"}\n";
    }
    EXPECT_NO_THROW(check_campaign_ledger_schema(path));
    std::remove(path.c_str());
}

}  // namespace
}  // namespace anole
