// Tests for sim/profile_cache.h and the runner's disk-cache layering:
// bitwise round-trips, corrupt/stale entries silently recomputed, and the
// "second campaign is free" contract (fresh_profiles drops to zero).
#include "sim/profile_cache.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "graph/generators.h"
#include "sim/runner.h"

namespace anole {
namespace {

std::string temp_path(const std::string& tag) {
    return ::testing::TempDir() + "anole_profile_cache_" + tag + ".jsonl";
}

bool bitwise_equal(const graph_profile& a, const graph_profile& b) {
    return a.n == b.n && a.m == b.m && a.diameter == b.diameter &&
           a.conductance == b.conductance && a.isoperimetric == b.isoperimetric &&
           a.mixing_time == b.mixing_time && a.lambda2 == b.lambda2 &&
           a.exact_cuts == b.exact_cuts && a.diameter_method == b.diameter_method &&
           a.conductance_method == b.conductance_method &&
           a.isoperimetric_method == b.isoperimetric_method &&
           a.mixing_method == b.mixing_method &&
           a.lambda2_converged == b.lambda2_converged;
}

TEST(ProfileCache, RoundTripIsBitwiseIdentical) {
    const std::string path = temp_path("roundtrip");
    std::remove(path.c_str());

    const graph g = make_family(graph_family::dumbbell, 64, 1);
    const graph_profile p = profile(g);
    {
        profile_cache cache(path);
        EXPECT_EQ(cache.size(), 0u);
        cache.store("dumbbell/64/s1/v1", p);
        EXPECT_EQ(cache.size(), 1u);
        const auto hit = cache.lookup("dumbbell/64/s1/v1");
        ASSERT_TRUE(hit.has_value());
        EXPECT_TRUE(bitwise_equal(*hit, p));
    }
    // A fresh instance re-reads the file; doubles must survive the
    // %.17g print → from_chars parse round trip bit-for-bit.
    profile_cache reloaded(path);
    EXPECT_EQ(reloaded.size(), 1u);
    const auto hit = reloaded.lookup("dumbbell/64/s1/v1");
    ASSERT_TRUE(hit.has_value());
    EXPECT_TRUE(bitwise_equal(*hit, p));
    EXPECT_EQ(hit->to_json(), p.to_json());
    EXPECT_FALSE(reloaded.lookup("dumbbell/64/s2/v1").has_value());
    std::remove(path.c_str());
}

TEST(ProfileCache, LaterLinesWin) {
    const std::string path = temp_path("upsert");
    std::remove(path.c_str());

    graph_profile p1 = profile(make_cycle(16));
    graph_profile p2 = p1;
    p2.mixing_time += 17;
    {
        profile_cache cache(path);
        cache.store("k", p1);
        cache.store("k", p2);
        EXPECT_EQ(cache.size(), 1u);
    }
    profile_cache reloaded(path);
    const auto hit = reloaded.lookup("k");
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->mixing_time, p2.mixing_time);
    std::remove(path.c_str());
}

TEST(ProfileCache, CorruptAndStaleLinesAreSkipped) {
    const std::string path = temp_path("corrupt");
    std::remove(path.c_str());

    const graph_profile good = profile(make_cycle(16));
    {
        profile_cache cache(path);
        cache.store("good", good);
    }
    {
        // Hand-append garbage, a version from the future, and a
        // structurally valid object missing required fields.
        std::ofstream out(path, std::ios::app);
        out << "not json at all {{{\n";
        out << "{\"key\":\"stale\",\"version\":999,\"profile\":" << good.to_json()
            << "}\n";
        out << "{\"key\":\"incomplete\",\"version\":1,\"profile\":{\"n\":4}}\n";
    }
    profile_cache reloaded(path);
    EXPECT_EQ(reloaded.size(), 1u);
    EXPECT_TRUE(reloaded.lookup("good").has_value());
    EXPECT_FALSE(reloaded.lookup("stale").has_value());
    EXPECT_FALSE(reloaded.lookup("incomplete").has_value());
    std::remove(path.c_str());
}

TEST(ProfileCache, MissingFileIsEmptyAndUnwritablePathThrows) {
    profile_cache empty(temp_path("never_created_nonexistent"));
    EXPECT_EQ(empty.size(), 0u);

    profile_cache bad("/nonexistent_dir_anole/cache.jsonl");
    EXPECT_THROW(bad.store("k", profile(make_cycle(16))), error);
}

TEST(ProfileCacheRunner, SecondRunnerComputesNothing) {
    const std::string path = temp_path("runner");
    std::remove(path.c_str());

    const family_spec spec{graph_family::dumbbell, 64, 1};
    graph_profile first;
    {
        scenario_runner runner(2);
        runner.set_profile_cache(path);
        const graph& g = runner.materialize(spec);
        first = runner.profile_for(g);
        EXPECT_EQ(runner.fresh_profiles(), 1u);
        // Memory hit on repeat: still exactly one fresh compute.
        (void)runner.profile_for(g);
        EXPECT_EQ(runner.fresh_profiles(), 1u);
    }
    {
        // New process stand-in: cold memory, warm disk.
        scenario_runner runner(2);
        runner.set_profile_cache(path);
        const graph_profile& again = runner.profile_for(runner.materialize(spec));
        EXPECT_EQ(runner.fresh_profiles(), 0u);
        EXPECT_TRUE(bitwise_equal(again, first));
    }
    {
        // Without the cache attached the same profile is recomputed —
        // and matches, because profile() is deterministic.
        scenario_runner runner(2);
        const graph_profile& cold = runner.profile_for(runner.materialize(spec));
        EXPECT_EQ(runner.fresh_profiles(), 1u);
        EXPECT_TRUE(bitwise_equal(cold, first));
    }
    std::remove(path.c_str());
}

TEST(ProfileCacheRunner, BorrowedGraphsBypassTheDiskCache) {
    const std::string path = temp_path("borrowed");
    std::remove(path.c_str());

    const graph g = make_cycle(32);
    scenario_runner runner(2);
    runner.set_profile_cache(path);
    (void)runner.profile_for(runner.materialize(&g));
    EXPECT_EQ(runner.fresh_profiles(), 1u);

    // No (family, n, seed) identity → nothing may have been persisted.
    profile_cache disk(path);
    EXPECT_EQ(disk.size(), 0u);
    std::remove(path.c_str());
}

}  // namespace
}  // namespace anole
