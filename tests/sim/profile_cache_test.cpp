// Tests for sim/profile_cache.h and the runner's disk-cache layering:
// bitwise round-trips, corrupt/stale entries silently recomputed, and the
// "second campaign is free" contract (fresh_profiles drops to zero).
#include "sim/profile_cache.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "graph/generators.h"
#include "sim/runner.h"

namespace anole {
namespace {

std::string temp_path(const std::string& tag) {
    return ::testing::TempDir() + "anole_profile_cache_" + tag + ".jsonl";
}

bool bitwise_equal(const graph_profile& a, const graph_profile& b) {
    return a.n == b.n && a.m == b.m && a.diameter == b.diameter &&
           a.conductance == b.conductance && a.isoperimetric == b.isoperimetric &&
           a.mixing_time == b.mixing_time && a.lambda2 == b.lambda2 &&
           a.exact_cuts == b.exact_cuts && a.diameter_method == b.diameter_method &&
           a.conductance_method == b.conductance_method &&
           a.isoperimetric_method == b.isoperimetric_method &&
           a.mixing_method == b.mixing_method &&
           a.lambda2_converged == b.lambda2_converged;
}

TEST(ProfileCache, RoundTripIsBitwiseIdentical) {
    const std::string path = temp_path("roundtrip");
    std::remove(path.c_str());

    const graph g = make_family(graph_family::dumbbell, 64, 1);
    const graph_profile p = profile(g);
    {
        profile_cache cache(path);
        EXPECT_EQ(cache.size(), 0u);
        cache.store("dumbbell/64/s1/v1", p);
        EXPECT_EQ(cache.size(), 1u);
        const auto hit = cache.lookup("dumbbell/64/s1/v1");
        ASSERT_TRUE(hit.has_value());
        EXPECT_TRUE(bitwise_equal(*hit, p));
    }
    // A fresh instance re-reads the file; doubles must survive the
    // %.17g print → from_chars parse round trip bit-for-bit.
    profile_cache reloaded(path);
    EXPECT_EQ(reloaded.size(), 1u);
    const auto hit = reloaded.lookup("dumbbell/64/s1/v1");
    ASSERT_TRUE(hit.has_value());
    EXPECT_TRUE(bitwise_equal(*hit, p));
    EXPECT_EQ(hit->to_json(), p.to_json());
    EXPECT_FALSE(reloaded.lookup("dumbbell/64/s2/v1").has_value());
    std::remove(path.c_str());
}

TEST(ProfileCache, LaterLinesWin) {
    const std::string path = temp_path("upsert");
    std::remove(path.c_str());

    graph_profile p1 = profile(make_cycle(16));
    graph_profile p2 = p1;
    p2.mixing_time += 17;
    {
        profile_cache cache(path);
        cache.store("k", p1);
        cache.store("k", p2);
        EXPECT_EQ(cache.size(), 1u);
    }
    profile_cache reloaded(path);
    const auto hit = reloaded.lookup("k");
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->mixing_time, p2.mixing_time);
    std::remove(path.c_str());
}

TEST(ProfileCache, CorruptAndStaleLinesAreSkipped) {
    const std::string path = temp_path("corrupt");
    std::remove(path.c_str());

    const graph_profile good = profile(make_cycle(16));
    {
        profile_cache cache(path);
        cache.store("good", good);
    }
    {
        // Hand-append garbage, a version from the future, and a
        // structurally valid object missing required fields.
        std::ofstream out(path, std::ios::app);
        out << "not json at all {{{\n";
        out << "{\"key\":\"stale\",\"version\":999,\"profile\":" << good.to_json()
            << "}\n";
        out << "{\"key\":\"incomplete\",\"version\":1,\"profile\":{\"n\":4}}\n";
    }
    profile_cache reloaded(path);
    EXPECT_EQ(reloaded.size(), 1u);
    EXPECT_TRUE(reloaded.lookup("good").has_value());
    EXPECT_FALSE(reloaded.lookup("stale").has_value());
    EXPECT_FALSE(reloaded.lookup("incomplete").has_value());
    std::remove(path.c_str());
}

TEST(ProfileCache, MissingFileIsEmptyAndUnwritablePathThrows) {
    profile_cache empty(temp_path("never_created_nonexistent"));
    EXPECT_EQ(empty.size(), 0u);

    profile_cache bad("/nonexistent_dir_anole/cache.jsonl");
    EXPECT_THROW(bad.store("k", profile(make_cycle(16))), error);
}

TEST(ProfileCache, StoreRewritesAtomicallyAndHealsCorruptTail) {
    // The pre-fleet append path could leave a torn tail if a writer died
    // mid-line; the rewrite path must both survive loading such a file
    // and produce a clean file on the next store.
    const std::string path = temp_path("heal");
    std::remove(path.c_str());

    const graph_profile good = profile(make_cycle(16));
    {
        profile_cache cache(path);
        cache.store("good", good);
    }
    {
        std::ofstream out(path, std::ios::app);
        out << "{\"key\":\"torn\",\"version\":1,\"prof";  // SIGKILL mid-write
    }
    profile_cache healed(path);
    EXPECT_EQ(healed.size(), 1u);
    const graph_profile other = profile(make_cycle(24));
    healed.store("other", other);

    // Every line of the rewritten file parses; the torn tail is gone.
    std::ifstream in(path);
    std::string line;
    std::size_t parsed = 0;
    while (std::getline(in, line)) {
        EXPECT_FALSE(line.empty());
        EXPECT_EQ(line.back(), '}');
        ++parsed;
    }
    EXPECT_EQ(parsed, 2u);
    // And no lock or temp file is left behind.
    EXPECT_FALSE(std::ifstream(path + ".lock").good());
    EXPECT_FALSE(std::ifstream(path + ".tmp").good());

    profile_cache reloaded(path);
    EXPECT_EQ(reloaded.size(), 2u);
    EXPECT_TRUE(reloaded.lookup("good").has_value());
    EXPECT_TRUE(reloaded.lookup("other").has_value());
    std::remove(path.c_str());
}

TEST(ProfileCache, ConcurrentWritersPreserveAllEntries) {
    // N separate cache instances (separate-process stand-ins) hammer one
    // file; the lock + rewrite protocol must keep every entry.
    const std::string path = temp_path("concurrent");
    std::remove(path.c_str());

    constexpr std::size_t kWriters = 6;
    constexpr std::size_t kPerWriter = 4;
    std::vector<graph_profile> profiles;
    for (std::size_t i = 0; i < kPerWriter; ++i) {
        profiles.push_back(profile(make_cycle(12 + 4 * i)));
    }

    const auto entry_key = [](std::size_t w, std::size_t i) {
        std::string k = "w";
        k += std::to_string(w);
        k += "/k";
        k += std::to_string(i);
        return k;
    };
    std::vector<std::thread> writers;
    for (std::size_t w = 0; w < kWriters; ++w) {
        writers.emplace_back([&, w] {
            profile_cache cache(path);  // each thread its own instance
            for (std::size_t i = 0; i < kPerWriter; ++i) {
                cache.store(entry_key(w, i), profiles[i]);
            }
        });
    }
    for (auto& t : writers) t.join();

    profile_cache merged(path);
    EXPECT_EQ(merged.size(), kWriters * kPerWriter);
    for (std::size_t w = 0; w < kWriters; ++w) {
        for (std::size_t i = 0; i < kPerWriter; ++i) {
            const auto hit = merged.lookup(entry_key(w, i));
            ASSERT_TRUE(hit.has_value()) << w << "/" << i;
            EXPECT_TRUE(bitwise_equal(*hit, profiles[i]));
        }
    }
    std::remove(path.c_str());
}

TEST(ProfileCacheRunner, SecondRunnerComputesNothing) {
    const std::string path = temp_path("runner");
    std::remove(path.c_str());

    const family_spec spec{graph_family::dumbbell, 64, 1};
    graph_profile first;
    {
        scenario_runner runner(2);
        runner.set_profile_cache(path);
        const graph& g = runner.materialize(spec);
        first = runner.profile_for(g);
        EXPECT_EQ(runner.fresh_profiles(), 1u);
        // Memory hit on repeat: still exactly one fresh compute.
        (void)runner.profile_for(g);
        EXPECT_EQ(runner.fresh_profiles(), 1u);
    }
    {
        // New process stand-in: cold memory, warm disk.
        scenario_runner runner(2);
        runner.set_profile_cache(path);
        const graph_profile& again = runner.profile_for(runner.materialize(spec));
        EXPECT_EQ(runner.fresh_profiles(), 0u);
        EXPECT_TRUE(bitwise_equal(again, first));
    }
    {
        // Without the cache attached the same profile is recomputed —
        // and matches, because profile() is deterministic.
        scenario_runner runner(2);
        const graph_profile& cold = runner.profile_for(runner.materialize(spec));
        EXPECT_EQ(runner.fresh_profiles(), 1u);
        EXPECT_TRUE(bitwise_equal(cold, first));
    }
    std::remove(path.c_str());
}

TEST(ProfileCacheRunner, BorrowedGraphsBypassTheDiskCache) {
    const std::string path = temp_path("borrowed");
    std::remove(path.c_str());

    const graph g = make_cycle(32);
    scenario_runner runner(2);
    runner.set_profile_cache(path);
    (void)runner.profile_for(runner.materialize(&g));
    EXPECT_EQ(runner.fresh_profiles(), 1u);

    // No (family, n, seed) identity → nothing may have been persisted.
    profile_cache disk(path);
    EXPECT_EQ(disk.size(), 0u);
    std::remove(path.c_str());
}

}  // namespace
}  // namespace anole
