// Fault-recovery oracle tests (sim/oracle.h): unit checks for each
// verdict (leader_undecided, multi_leader, leader_view, fault_accounting,
// round_cap), plus the acceptance sweep — every adaptive strategy on all
// 19 topology families at node-jobs 1/2/8 finishes with zero safety
// violations reported by the oracle.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "baseline/flood_max.h"
#include "graph/generators.h"
#include "sim/dynamics.h"
#include "sim/engine.h"
#include "sim/oracle.h"

namespace anole {
namespace {

struct probe_msg {
    std::uint64_t value = 0;
    [[nodiscard]] std::size_t bit_size() const noexcept { return 8; }
};

// A puppet node whose status the tests script directly: the oracle only
// sees the probe, so each check is exercised with exact state.
class puppet {
public:
    using message_type = probe_msg;
    explicit puppet(std::size_t degree) : degree_(degree) {}
    void on_round(node_ctx<probe_msg>& ctx, inbox_view<probe_msg>) {
        for (port_id p = 0; p < degree_; ++p) ctx.send(p, probe_msg{1});
    }

private:
    std::size_t degree_;
};

// engine is pinned in place (non-copyable), so tests hold it in a rig.
struct puppet_rig {
    engine<puppet> eng;
    explicit puppet_rig(const graph& g, std::uint64_t rounds = 3) : eng(g, 1) {
        eng.spawn([&](std::size_t u) {
            return puppet(g.degree(static_cast<node_id>(u)));
        });
        eng.run_rounds(rounds);
    }
};

// --- individual checks --------------------------------------------------------

TEST(Oracle, CleanSingleLeaderPasses) {
    const graph g = make_cycle(8);
    puppet_rig rig(g);
    const auto rep = run_oracle(rig.eng, [](std::size_t u) {
        node_status st;
        st.decided = true;
        st.leader = u == 3;
        st.own_id = u == 3 ? 42 : 0;
        return st;
    });
    EXPECT_TRUE(rep.pass()) << rep.summary();
    EXPECT_EQ(rep.live_leaders, 1u);
    EXPECT_EQ(rep.live_nodes, 8u);
    EXPECT_NE(rep.summary().find("ok"), std::string::npos);
}

TEST(Oracle, UndecidedLeaderIsAViolation) {
    const graph g = make_cycle(8);
    puppet_rig rig(g);
    const auto rep = run_oracle(rig.eng, [](std::size_t u) {
        node_status st;
        st.decided = false;  // flag without a verdict
        st.leader = u == 0;
        return st;
    });
    ASSERT_FALSE(rep.pass());
    EXPECT_EQ(rep.violations.front().check, "leader_undecided");
}

TEST(Oracle, ConflictingLeadersOnCleanScheduleAreAViolation) {
    const graph g = make_cycle(8);
    puppet_rig rig(g);
    const auto rep = run_oracle(rig.eng, [](std::size_t u) {
        node_status st;
        st.decided = true;
        st.leader = u < 2;
        st.own_id = u + 1;  // distinct identities: a genuine conflict
        return st;
    });
    ASSERT_FALSE(rep.pass());
    EXPECT_EQ(rep.violations.front().check, "multi_leader");
}

// Two leaders that drew the *same* random ID agree on the elected
// identity — the anonymous-model notion of agreement, not a conflict.
TEST(Oracle, CollidingIdenticalLeadersAreAgreementNotConflict) {
    const graph g = make_cycle(8);
    puppet_rig rig(g);
    const auto rep = run_oracle(rig.eng, [](std::size_t u) {
        node_status st;
        st.decided = true;
        st.leader = u < 2;
        st.own_id = 42;  // birthday collision
        st.own_cert = 4;
        return st;
    });
    EXPECT_TRUE(rep.pass()) << rep.summary();
    EXPECT_EQ(rep.live_leaders, 2u);
}

// Under destructive faults a second leader is re-election in progress,
// not a safety bug: the multi_leader check must stand down.
TEST(Oracle, ConflictingLeadersUnderFireAreTolerated) {
    const graph g = make_cycle(8);
    dynamics_spec spec;
    spec.loss_prob = 0.5;
    engine<puppet> eng(g, 1);
    eng.set_dynamics(spec, 1);
    eng.spawn(
        [&](std::size_t u) { return puppet(g.degree(static_cast<node_id>(u))); });
    eng.run_rounds(5);
    ASSERT_GT(eng.dynamics()->stats().lost_messages, 0u);
    const auto rep = run_oracle(eng, [](std::size_t u) {
        node_status st;
        st.decided = true;
        st.leader = u < 2;
        st.own_id = u + 1;
        return st;
    });
    EXPECT_TRUE(rep.pass()) << rep.summary();
}

TEST(Oracle, ViewDisagreementOnCleanScheduleIsAViolation) {
    const graph g = make_cycle(8);
    puppet_rig rig(g);
    const auto rep = run_oracle(
        rig.eng,
        [](std::size_t u) {
            node_status st;
            st.decided = true;
            st.leader = u == 0;
            st.own_id = u == 0 ? 7 : 0;
            st.own_cert = u == 0 ? 4 : 0;
            st.view_id = u == 5 ? 99 : 7;  // node 5 disagrees
            st.view_cert = 4;
            return st;
        },
        {.check_views = true});
    ASSERT_FALSE(rep.pass());
    EXPECT_EQ(rep.violations.front().check, "leader_view");
    EXPECT_NE(rep.violations.front().detail.find("node 5"), std::string::npos);
}

TEST(Oracle, RoundCapOverrunIsAViolation) {
    const graph g = make_cycle(8);
    puppet_rig rig(g, /*rounds=*/10);
    const auto rep = run_oracle(
        rig.eng, [](std::size_t) { return node_status{}; }, {.round_cap = 5});
    ASSERT_FALSE(rep.pass());
    EXPECT_EQ(rep.violations.front().check, "round_cap");
}

// Budget lines stay charged for destroyed messages: the accounting check
// passes on real lossy runs by construction (senders pay at send time).
TEST(Oracle, FaultAccountingHoldsUnderHeavyLoss) {
    const graph g = make_family(graph_family::torus, 25, 1);
    dynamics_spec spec;
    spec.loss_prob = 0.6;
    spec.edge_down_prob = 0.3;
    spec.protect_backbone = false;
    engine<puppet> eng(g, 3);
    eng.set_dynamics(spec, 3);
    eng.spawn(
        [&](std::size_t u) { return puppet(g.degree(static_cast<node_id>(u))); });
    eng.run_rounds(20);
    const dynamics_stats st = eng.dynamics()->stats();
    ASSERT_GT(st.lost_messages + st.churned_messages, 0u);
    const auto rep = run_oracle(eng, [](std::size_t) { return node_status{}; });
    for (const auto& v : rep.violations) {
        EXPECT_NE(v.check, "fault_accounting") << v.detail;
    }
}

TEST(Oracle, DefaultReportIsNotEvaluated) {
    const oracle_report rep;
    EXPECT_FALSE(rep.evaluated);
    EXPECT_EQ(rep.summary(), "not evaluated");
    EXPECT_TRUE(rep.pass());  // vacuous: no violations recorded
}

// --- the acceptance sweep -----------------------------------------------------

// Every adaptive strategy x all 19 zoo families x node-jobs {1, 2, 8}:
// the flood driver's oracle must report zero safety violations on every
// single run — the adaptive adversary may destroy liveness (no leader
// survives), never safety.
TEST(Oracle, ZeroViolationsAcrossStrategiesFamiliesAndNodeJobs) {
    for (const adaptive_kind strat :
         {adaptive_kind::target_frontier_loss, adaptive_kind::leader_assassin,
          adaptive_kind::cut_churn}) {
        dynamics_spec spec;
        spec.strategy = strat;
        spec.strategy_intensity = 0.4;
        spec.strategy_grace = 1;
        spec.strategy_max_kills = 2;
        for (graph_family f : all_families()) {
            const graph g = make_family(f, 20, 3);
            for (const std::size_t jobs : {1, 2, 8}) {
                scoped_engine_parallelism par(engine_parallelism{nullptr, jobs});
                const flood_result res = run_flood_max(
                    g, /*diameter=*/g.num_nodes(), 11,
                    congest_budget::strict_log(16), spec);
                EXPECT_TRUE(res.oracle.evaluated);
                EXPECT_TRUE(res.oracle.pass())
                    << to_string(strat) << " on " << to_string(f) << " node_jobs="
                    << jobs << ": " << res.oracle.summary();
            }
        }
    }
}

}  // namespace
}  // namespace anole
