// Tests for sim/report.h: the HTML report is self-contained (no external
// references), carries every section the ledger feeds it, themes for
// light+dark, and surfaces safety violations.
#include "sim/report.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "sim/runner.h"

namespace anole {
namespace {

std::vector<campaign_record> run_tiny_campaign() {
    campaign_spec spec;
    spec.families = {graph_family::wheel, graph_family::connected_caveman};
    spec.sizes = {16, 24};
    spec.variants = {algo_kind::flood_max, algo_kind::irrevocable};
    spec.seeds = 2;
    spec.base_seed = 10;
    scenario_runner runner(2);
    return run_campaign(spec, runner).records;
}

TEST(Report, RendersEverySectionSelfContained) {
    const std::vector<campaign_record> records = run_tiny_campaign();
    ASSERT_EQ(records.size(), 16u);

    report_options opt;
    opt.title = "fleet nightly";
    opt.expected_units = 16;
    const std::string html = render_campaign_report(records, opt);

    // Document shell and the declared sections.
    EXPECT_EQ(html.rfind("<!DOCTYPE html>", 0), 0u);
    EXPECT_NE(html.find("<title>fleet nightly</title>"), std::string::npos);
    EXPECT_NE(html.find("units recorded"), std::string::npos);
    EXPECT_NE(html.find("16 / 16"), std::string::npos);  // expected_units tile
    EXPECT_NE(html.find("mean messages vs n"), std::string::npos);
    EXPECT_NE(html.find("mean rounds vs n"), std::string::npos);
    EXPECT_NE(html.find("aggregate table"), std::string::npos);
    EXPECT_NE(html.find("topology gallery"), std::string::npos);
    EXPECT_NE(html.find("<svg"), std::string::npos);
    EXPECT_NE(html.find("<table>"), std::string::npos);

    // Family and variant names appear (charts, table, gallery captions).
    EXPECT_NE(html.find("wheel"), std::string::npos);
    EXPECT_NE(html.find("connected_caveman"), std::string::npos);
    EXPECT_NE(html.find("flood_max"), std::string::npos);
    EXPECT_NE(html.find("irrevocable"), std::string::npos);

    // Two variants → a legend is mandatory; markers carry native
    // tooltips; dark mode is a first-class stylesheet block.
    EXPECT_NE(html.find("class=\"legend\""), std::string::npos);
    EXPECT_NE(html.find("<title>flood_max"), std::string::npos);
    EXPECT_NE(html.find("prefers-color-scheme: dark"), std::string::npos);

    // Self-contained: no scripts, no external fetches. The only URL-like
    // string allowed is the SVG xmlns namespace identifier.
    EXPECT_EQ(html.find("<script"), std::string::npos);
    EXPECT_EQ(html.find("https://"), std::string::npos);
    EXPECT_EQ(html.find("<link"), std::string::npos);
    EXPECT_EQ(html.find("@import"), std::string::npos);
    EXPECT_EQ(html.find("url("), std::string::npos);
    std::size_t at = html.find("http://");
    while (at != std::string::npos) {
        EXPECT_EQ(html.compare(at, 27, "http://www.w3.org/2000/svg\""), 0)
            << "unexpected URL at offset " << at;
        at = html.find("http://", at + 1);
    }

    // Clean campaign: the safety section reports green, never red.
    EXPECT_NE(html.find("status-good"), std::string::npos);
    EXPECT_EQ(html.find("oracle violation"), std::string::npos);
}

TEST(Report, SurfacesViolationsAndFailures) {
    std::vector<campaign_record> records = run_tiny_campaign();
    records[0].oracle_ok = false;
    records[0].oracle_summary = "VIOLATION multi_leader: 2 leaders";
    records[1].ok = false;
    records[1].error = "engine exploded <dramatically>";

    report_options opt;
    opt.thumbnails = false;  // violation path needs no gallery
    const std::string html = render_campaign_report(records, opt);
    EXPECT_NE(html.find("1 oracle violation(s)"), std::string::npos);
    EXPECT_NE(html.find(records[0].unit.key()), std::string::npos);
    EXPECT_NE(html.find("VIOLATION multi_leader: 2 leaders"), std::string::npos);
    EXPECT_NE(html.find("1 failed unit(s)"), std::string::npos);
    // HTML-escaped, not injected.
    EXPECT_NE(html.find("engine exploded &lt;dramatically&gt;"), std::string::npos);
    EXPECT_EQ(html.find("<dramatically>"), std::string::npos);
    EXPECT_EQ(html.find("topology gallery"), std::string::npos);
}

TEST(Report, EmptyLedgerStillRendersADocument) {
    const std::string html = render_campaign_report({});
    EXPECT_EQ(html.rfind("<!DOCTYPE html>", 0), 0u);
    EXPECT_NE(html.find("0"), std::string::npos);
    EXPECT_EQ(html.find("<svg"), std::string::npos);  // nothing to chart
}

TEST(Report, WritesFileAndThrowsOnBadPath) {
    const std::string path = ::testing::TempDir() + "anole_report_test.html";
    std::remove(path.c_str());
    const std::vector<campaign_record> records = run_tiny_campaign();
    report_options opt;
    opt.thumbnails = false;
    write_campaign_report(path, records, opt);
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream ss;
    ss << in.rdbuf();
    EXPECT_EQ(ss.str(), render_campaign_report(records, opt));
    std::remove(path.c_str());

    EXPECT_THROW(
        write_campaign_report("/nonexistent_dir_anole/report.html", records, opt),
        error);
}

}  // namespace
}  // namespace anole
