// Tests for sim/fleet.h: lease exclusivity and reclaim, multi-worker
// campaigns whose merged ledger is byte-identical to a single-worker
// run, crashed-worker recovery, and merge schema rejection/idempotence.
#include "sim/fleet.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>

#include "sim/runner.h"

namespace anole {
namespace {

campaign_spec tiny_spec(std::string output) {
    campaign_spec spec;
    spec.families = {graph_family::wheel, graph_family::connected_caveman};
    spec.sizes = {16};
    spec.variants = {algo_kind::flood_max, algo_kind::irrevocable};
    spec.seeds = 3;
    spec.base_seed = 10;
    spec.output = std::move(output);
    return spec;
}

std::string temp_path(const char* tag) {
    return ::testing::TempDir() + "anole_fleet_" + tag + ".jsonl";
}

std::string slurp(const std::string& path) {
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

void wipe(const std::string& ledger) {
    std::error_code ec;
    std::filesystem::remove_all(fleet_paths{ledger}.dir(), ec);
    std::remove(ledger.c_str());
}

TEST(FleetPaths, LayoutAndSanitizedIds) {
    const fleet_paths p{"runs/camp.jsonl"};
    EXPECT_EQ(p.dir(), "runs/camp.jsonl.fleet");
    EXPECT_EQ(p.shard("w1"), "runs/camp.jsonl.fleet/shard-w1.jsonl");
    EXPECT_EQ(p.lease(7), "runs/camp.jsonl.fleet/lease-7.json");

    EXPECT_EQ(sanitize_worker_id("ci-worker.3"), "ci-worker.3");
    EXPECT_EQ(sanitize_worker_id("a/b c"), "a_b_c");
    // Empty falls back to the pid-derived default.
    EXPECT_EQ(sanitize_worker_id(""), fleet_worker_id());
    EXPECT_EQ(fleet_worker_id().front(), 'w');
}

TEST(FleetLease, ExclusiveAcquireAndRoundTrip) {
    const std::string path = temp_path("lease_excl");
    std::remove(path.c_str());

    const lease_info a{"alice", fleet_now(), 60, 3};
    const lease_info b{"bob", fleet_now(), 60, 3};
    bool reclaimed = true;
    ASSERT_TRUE(try_acquire_lease(path, a, &reclaimed));
    EXPECT_FALSE(reclaimed);  // fresh, not reclaimed

    // A live foreign lease is not claimable.
    EXPECT_FALSE(try_acquire_lease(path, b, &reclaimed));
    EXPECT_FALSE(reclaimed);

    // The owner can re-acquire (heartbeat refresh).
    EXPECT_TRUE(try_acquire_lease(path, a));

    const auto read = read_lease(path);
    ASSERT_TRUE(read.has_value());
    EXPECT_EQ(read->owner, "alice");
    EXPECT_EQ(read->ttl, 60u);
    EXPECT_EQ(read->group, 3u);

    // Release by a non-owner is a no-op; by the owner deletes the file.
    release_lease(path, "bob");
    EXPECT_TRUE(read_lease(path).has_value());
    release_lease(path, "alice");
    EXPECT_FALSE(read_lease(path).has_value());
}

TEST(FleetLease, ExpiredAndTornLeasesAreReclaimed) {
    const std::string path = temp_path("lease_expired");
    std::remove(path.c_str());

    // A lease whose heartbeat is far in the past (crashed worker).
    const lease_info dead{"crashed", fleet_now() - 1000, 60, 0};
    ASSERT_TRUE(try_acquire_lease(path, dead));

    const lease_info mine{"me", fleet_now(), 60, 0};
    bool reclaimed = false;
    ASSERT_TRUE(try_acquire_lease(path, mine, &reclaimed));
    EXPECT_TRUE(reclaimed);
    ASSERT_TRUE(read_lease(path).has_value());
    EXPECT_EQ(read_lease(path)->owner, "me");
    release_lease(path, "me");

    // A torn lease file (killed mid-write) reads as nullopt and is
    // likewise claimable.
    {
        std::ofstream out(path, std::ios::trunc);
        out << "{\"owner\":\"half";
    }
    EXPECT_FALSE(read_lease(path).has_value());
    reclaimed = false;
    ASSERT_TRUE(try_acquire_lease(path, mine, &reclaimed));
    EXPECT_TRUE(reclaimed);
    release_lease(path, "me");
    std::remove(path.c_str());
}

TEST(FleetLease, RacingClaimantsGetDisjointLeases) {
    // N threads race create-exclusive on G fresh leases; every lease
    // must end up with exactly one winner.
    const std::string base = ::testing::TempDir() + "anole_fleet_race";
    constexpr std::size_t kClaimants = 8, kGroups = 5;
    for (std::size_t g = 0; g < kGroups; ++g) {
        std::remove((base + std::to_string(g)).c_str());
    }

    std::vector<std::set<std::size_t>> won(kClaimants);
    std::vector<std::thread> claimants;
    for (std::size_t c = 0; c < kClaimants; ++c) {
        claimants.emplace_back([&, c] {
            const std::string id = "racer" + std::to_string(c);
            for (std::size_t g = 0; g < kGroups; ++g) {
                const lease_info mine{id, fleet_now(), 60, g};
                if (try_acquire_lease(base + std::to_string(g), mine)) {
                    won[c].insert(g);
                }
            }
        });
    }
    for (auto& t : claimants) t.join();

    std::size_t total = 0;
    for (const auto& w : won) total += w.size();
    EXPECT_EQ(total, kGroups);  // each group won exactly once
    for (std::size_t g = 0; g < kGroups; ++g) {
        const auto l = read_lease(base + std::to_string(g));
        ASSERT_TRUE(l.has_value());
        EXPECT_TRUE(won[std::stoul(l->owner.substr(5))].count(g));
        std::remove((base + std::to_string(g)).c_str());
    }
}

TEST(FleetWorker, ThreeWorkersMergeByteIdenticalToSingleRun) {
    // The acceptance gate: a 3-worker fleet, merged, must reproduce the
    // single-worker ledger byte for byte.
    const std::string solo_path = temp_path("solo");
    const std::string fleet_path = temp_path("trio");
    wipe(solo_path);
    wipe(fleet_path);

    scenario_runner solo_runner(2);
    const campaign_report solo = run_campaign(tiny_spec(solo_path), solo_runner);
    ASSERT_EQ(solo.executed, 12u);

    std::vector<fleet_report> reports(3);
    std::vector<std::thread> workers;
    for (std::size_t w = 0; w < 3; ++w) {
        workers.emplace_back([&, w] {
            scenario_runner runner(2);
            fleet_options opt;
            opt.worker_id = "w" + std::to_string(w);
            reports[w] = run_fleet_worker(tiny_spec(fleet_path), runner, opt);
        });
    }
    for (auto& t : workers) t.join();

    std::size_t executed = 0, failed = 0;
    for (const fleet_report& r : reports) {
        executed += r.executed;
        failed += r.failed;
        // left_leased > 0 is legal mid-fleet: a worker may exit while a
        // live peer still holds a group — that peer finishes it, which
        // the coverage assertion below proves.
    }
    EXPECT_EQ(failed, 0u);
    // Units are deterministic, so racing duplicates are legal — but
    // every unit ran at least once and the fleet as a whole ran them.
    EXPECT_GE(executed, 12u);

    const merge_report merged = merge_fleet(tiny_spec(fleet_path));
    EXPECT_EQ(merged.covered, 12u);
    EXPECT_EQ(merged.total_units, 12u);
    EXPECT_EQ(merged.foreign, 0u);
    EXPECT_EQ(merged.shards, 3u);

    EXPECT_EQ(slurp(fleet_path), slurp(solo_path));

    // Merging again changes nothing (idempotent canonical form).
    const std::string first_merge = slurp(fleet_path);
    (void)merge_fleet(tiny_spec(fleet_path));
    EXPECT_EQ(slurp(fleet_path), first_merge);

    // And the merged ledger satisfies an ordinary resume completely.
    scenario_runner resume_runner(2);
    const campaign_report resumed =
        run_campaign(tiny_spec(fleet_path), resume_runner);
    EXPECT_EQ(resumed.executed, 0u);
    EXPECT_EQ(resumed.skipped, 12u);

    wipe(solo_path);
    wipe(fleet_path);
}

TEST(FleetWorker, KilledWorkersExpiredLeaseIsReclaimed) {
    const std::string ledger = temp_path("reclaim");
    wipe(ledger);

    const campaign_spec spec = tiny_spec(ledger);
    const fleet_paths paths{ledger};
    std::filesystem::create_directories(paths.dir());

    // A "crashed" worker left an expired lease on group 0 and no records.
    const lease_info stale{"deadbeef", fleet_now() - 500, 60, 0};
    ASSERT_TRUE(try_acquire_lease(paths.lease(0), stale));

    scenario_runner runner(2);
    fleet_options opt;
    opt.worker_id = "survivor";
    const fleet_report rep = run_fleet_worker(spec, runner, opt);
    EXPECT_EQ(rep.leases_reclaimed, 1u);
    EXPECT_EQ(rep.executed, 12u);
    EXPECT_EQ(rep.left_leased, 0u);

    const merge_report merged = merge_fleet(spec);
    EXPECT_EQ(merged.covered, 12u);
    wipe(ledger);
}

TEST(FleetWorker, LiveForeignLeaseIsLeftAlone) {
    const std::string ledger = temp_path("live_lease");
    wipe(ledger);

    const campaign_spec spec = tiny_spec(ledger);
    const fleet_paths paths{ledger};
    std::filesystem::create_directories(paths.dir());

    // A live peer holds group 0; this worker must do group 1 only and
    // report the blocked group, not steal or wait for it.
    const lease_info live{"peer", fleet_now(), 3600, 0};
    ASSERT_TRUE(try_acquire_lease(paths.lease(0), live));

    scenario_runner runner(2);
    fleet_options opt;
    opt.worker_id = "patient";
    const fleet_report rep = run_fleet_worker(spec, runner, opt);
    EXPECT_EQ(rep.executed, 6u);  // one of two groups
    EXPECT_EQ(rep.left_leased, 1u);
    EXPECT_EQ(rep.leases_reclaimed, 0u);
    ASSERT_TRUE(read_lease(paths.lease(0)).has_value());
    EXPECT_EQ(read_lease(paths.lease(0))->owner, "peer");
    wipe(ledger);
}

TEST(FleetMerge, RejectsIncompatibleShardSchema) {
    const std::string ledger = temp_path("bad_shard");
    wipe(ledger);

    const campaign_spec spec = tiny_spec(ledger);
    const fleet_paths paths{ledger};
    std::filesystem::create_directories(paths.dir());
    {
        std::ofstream out(paths.shard("future"));
        out << "{\"schema\":\"anole-campaign\",\"version\":42}\n";
    }
    EXPECT_THROW((void)merge_fleet(spec), error);
    wipe(ledger);
}

TEST(FleetMerge, FoldsLegacyHeaderlessLedgerAndKeepsForeignRecords) {
    const std::string ledger = temp_path("legacy");
    wipe(ledger);

    // Run the campaign, then strip the header and append a foreign
    // record (another spec's unit) — merge must keep both.
    scenario_runner runner(2);
    ASSERT_EQ(run_campaign(tiny_spec(ledger), runner).executed, 12u);
    std::vector<std::string> lines;
    {
        std::ifstream in(ledger);
        std::string line;
        while (std::getline(in, line)) {
            if (!parse_campaign_schema_header(line).has_value()) {
                lines.push_back(line);
            }
        }
    }
    ASSERT_EQ(lines.size(), 12u);
    std::string foreign_line = lines[0];
    const std::string from = "\"key\":\"wheel/16/t1/flood_max/10\"";
    const std::string to = "\"key\":\"wheel/999/t1/flood_max/10\"";
    ASSERT_NE(foreign_line.find(from), std::string::npos);
    foreign_line.replace(foreign_line.find(from), from.size(), to);
    {
        std::ofstream out(ledger, std::ios::trunc);
        for (const std::string& l : lines) out << l << "\n";
        out << foreign_line << "\n";
    }

    const merge_report merged = merge_fleet(tiny_spec(ledger));
    EXPECT_EQ(merged.covered, 12u);
    EXPECT_EQ(merged.foreign, 1u);
    EXPECT_EQ(merged.records, 13u);

    // The canonical rewrite gained a header, kept the foreign line at
    // the end, and still resumes clean.
    std::ifstream in(ledger);
    std::string first;
    ASSERT_TRUE(std::getline(in, first));
    EXPECT_EQ(first, campaign_schema_header_line());
    const std::string all = slurp(ledger);
    EXPECT_NE(all.find(to), std::string::npos);

    scenario_runner resume_runner(2);
    const campaign_report resumed =
        run_campaign(tiny_spec(ledger), resume_runner);
    EXPECT_EQ(resumed.executed, 0u);
    EXPECT_EQ(resumed.skipped, 12u);
    wipe(ledger);
}

}  // namespace
}  // namespace anole
