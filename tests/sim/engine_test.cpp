// Tests for sim/engine.h: synchronous delivery, CONGEST enforcement,
// metrics, determinism, halting, and anonymity under port permutation.
#include "sim/engine.h"

#include <gtest/gtest.h>

#include <numeric>

#include "graph/generators.h"

namespace anole {
namespace {

struct test_msg {
    std::uint64_t value = 0;
    std::size_t bits = 8;
    [[nodiscard]] std::size_t bit_size() const noexcept { return bits; }
};

// Sends its running counter to every port each round; sums what it hears.
class chatter {
public:
    using message_type = test_msg;
    explicit chatter(std::size_t degree) : degree_(degree) {}

    void on_round(node_ctx<test_msg>& ctx, inbox_view<test_msg> inbox) {
        for (const auto& [port, msg] : inbox) {
            (void)port;
            received_ += msg.value;
            ++count_;
        }
        for (port_id p = 0; p < degree_; ++p) {
            ctx.send(p, test_msg{ctx.round() + 1, 8});
        }
    }

    std::uint64_t received_ = 0;
    std::uint64_t count_ = 0;

private:
    std::size_t degree_;
};

TEST(Engine, SynchronousDelivery) {
    graph g = make_cycle(4);
    engine<chatter> eng(g, 1);
    eng.spawn([&](std::size_t u) { return chatter(g.degree(u)); });
    eng.run_rounds(1);
    // Round 0 messages not yet processed by anyone.
    for (std::size_t u = 0; u < 4; ++u) EXPECT_EQ(eng.node(u).count_, 0u);
    eng.run_rounds(1);
    // Every node heard both neighbors' round-0 messages (value 1).
    for (std::size_t u = 0; u < 4; ++u) {
        EXPECT_EQ(eng.node(u).count_, 2u);
        EXPECT_EQ(eng.node(u).received_, 2u);
    }
}

TEST(Engine, MessageAndBitCounting) {
    graph g = make_cycle(4);
    engine<chatter> eng(g, 1);
    eng.spawn([&](std::size_t u) { return chatter(g.degree(u)); });
    eng.run_rounds(3);
    // 4 nodes * 2 ports * 3 rounds.
    EXPECT_EQ(eng.metrics().total().messages, 24u);
    EXPECT_EQ(eng.metrics().total().bits, 24u * 8);
    EXPECT_EQ(eng.metrics().total().rounds, 3u);
}

TEST(Engine, PhaseSplitCounting) {
    graph g = make_cycle(4);
    engine<chatter> eng(g, 1);
    eng.spawn([&](std::size_t u) { return chatter(g.degree(u)); });
    eng.set_phase("a");
    eng.run_rounds(2);
    eng.set_phase("b");
    eng.run_rounds(3);
    EXPECT_EQ(eng.metrics().phase("a").rounds, 2u);
    EXPECT_EQ(eng.metrics().phase("b").rounds, 3u);
    EXPECT_EQ(eng.metrics().phase("a").messages, 16u);
    EXPECT_EQ(eng.metrics().phase("b").messages, 24u);
    EXPECT_EQ(eng.metrics().phase("nope").messages, 0u);
}

// Sends two messages into the same port: must throw.
class double_sender {
public:
    using message_type = test_msg;
    explicit double_sender(std::size_t) {}
    void on_round(node_ctx<test_msg>& ctx, inbox_view<test_msg>) {
        ctx.send(0, test_msg{});
        ctx.send(0, test_msg{});
    }
};

TEST(Engine, DoubleSendThrows) {
    if (!congest_guard_checks) {
        GTEST_SKIP() << "CONGEST guards compiled out in Release";
    }
    graph g = make_cycle(3);
    engine<double_sender> eng(g, 1);
    eng.spawn([](std::size_t) { return double_sender(0); });
    EXPECT_THROW(eng.run_rounds(1), error);
}

class port_overflow {
public:
    using message_type = test_msg;
    explicit port_overflow(std::size_t) {}
    void on_round(node_ctx<test_msg>& ctx, inbox_view<test_msg>) {
        ctx.send(static_cast<port_id>(ctx.degree()), test_msg{});
    }
};

TEST(Engine, PortOutOfRangeThrows) {
    if (!congest_guard_checks) {
        GTEST_SKIP() << "CONGEST guards compiled out in Release";
    }
    graph g = make_cycle(3);
    engine<port_overflow> eng(g, 1);
    eng.spawn([](std::size_t) { return port_overflow(0); });
    EXPECT_THROW(eng.run_rounds(1), error);
}

class big_sender {
public:
    using message_type = test_msg;
    explicit big_sender(std::size_t bits) : bits_(bits) {}
    void on_round(node_ctx<test_msg>& ctx, inbox_view<test_msg>) {
        ctx.send(0, test_msg{0, bits_});
    }

private:
    std::size_t bits_;
};

TEST(Engine, StrictBudgetRejectsOversize) {
    graph g = make_cycle(4);  // budget = 4 * ceil(log2 3) = 8 bits
    congest_budget strict = congest_budget::strict_log(4);
    engine<big_sender> eng(g, 1, strict);
    eng.spawn([](std::size_t) { return big_sender(100); });
    EXPECT_THROW(eng.run_rounds(1), error);
}

TEST(Engine, StrictBudgetAcceptsFitting) {
    graph g = make_cycle(4);
    engine<big_sender> eng(g, 1, congest_budget::strict_log(4));
    eng.spawn([](std::size_t) { return big_sender(8); });
    EXPECT_NO_THROW(eng.run_rounds(2));
}

TEST(Engine, FragmentBudgetChargesCongestRounds) {
    graph g = make_cycle(4);
    congest_budget frag = congest_budget::fragmenting(4);  // 8 bits/round
    engine<big_sender> eng(g, 1, frag);
    eng.spawn([](std::size_t) { return big_sender(33); });  // ⌈33/8⌉ = 5
    eng.run_rounds(2);
    EXPECT_EQ(eng.metrics().total().rounds, 2u);
    EXPECT_EQ(eng.metrics().total().congest_rounds, 10u);
}

TEST(Engine, CountOnlyIgnoresBudget) {
    graph g = make_cycle(4);
    engine<big_sender> eng(g, 1, congest_budget::unlimited());
    eng.spawn([](std::size_t) { return big_sender(10000); });
    eng.run_rounds(2);
    EXPECT_EQ(eng.metrics().total().congest_rounds, 2u);  // uncharged
    EXPECT_EQ(eng.metrics().total().bits, 8u * 10000);
}

class halts_at {
public:
    using message_type = test_msg;
    halts_at(std::size_t degree, std::uint64_t when) : degree_(degree), when_(when) {}
    void on_round(node_ctx<test_msg>& ctx, inbox_view<test_msg> inbox) {
        for (const auto& kv : inbox) {
            (void)kv;
            ++heard_;
        }
        if (ctx.round() >= when_) {
            ctx.halt();
            return;
        }
        for (port_id p = 0; p < degree_; ++p) ctx.send(p, test_msg{});
    }
    std::uint64_t heard_ = 0;

private:
    std::size_t degree_;
    std::uint64_t when_;
};

TEST(Engine, HaltStopsNode) {
    graph g = make_cycle(4);
    engine<halts_at> eng(g, 1);
    eng.spawn([&](std::size_t u) { return halts_at(g.degree(u), u == 0 ? 0 : 100); });
    eng.run_rounds(3);
    EXPECT_EQ(eng.halted_count(), 1u);
    // Node 0 halted at round 0: heard nothing ever.
    EXPECT_EQ(eng.node(0).heard_, 0u);
}

TEST(Engine, RunUntilHalted) {
    graph g = make_cycle(4);
    engine<halts_at> eng(g, 1);
    eng.spawn([&](std::size_t u) { return halts_at(g.degree(u), 5); });
    const auto rounds = eng.run_until_halted(100);
    EXPECT_EQ(rounds, 6u);
    EXPECT_EQ(eng.halted_count(), 4u);
}

TEST(Engine, RunUntilHaltedThrowsOnBudget) {
    graph g = make_cycle(4);
    engine<halts_at> eng(g, 1);
    eng.spawn([&](std::size_t u) { return halts_at(g.degree(u), 1000); });
    EXPECT_THROW(eng.run_until_halted(10), error);
}

TEST(Engine, DeterministicAcrossRuns) {
    graph g = make_random_regular(20, 4, 3);
    auto run = [&](std::uint64_t seed) {
        engine<chatter> eng(g, seed);
        eng.spawn([&](std::size_t u) { return chatter(g.degree(u)); });
        eng.run_rounds(10);
        std::uint64_t acc = 0;
        for (std::size_t u = 0; u < g.num_nodes(); ++u) acc += eng.node(u).received_;
        return std::make_pair(acc, eng.metrics().total().messages);
    };
    EXPECT_EQ(run(5), run(5));
}

TEST(Engine, SpawnTwiceThrows) {
    graph g = make_cycle(3);
    engine<chatter> eng(g, 1);
    eng.spawn([&](std::size_t u) { return chatter(g.degree(u)); });
    EXPECT_THROW(eng.spawn([&](std::size_t u) { return chatter(g.degree(u)); }),
                 error);
}

TEST(Engine, StepWithoutSpawnThrows) {
    graph g = make_cycle(3);
    engine<chatter> eng(g, 1);
    EXPECT_THROW(eng.run_rounds(1), error);
}

// Flat-slot transport: a message is visible exactly one round, then its
// stamp expires — no stale redelivery, no explicit clearing.
class one_shot {
public:
    using message_type = test_msg;
    explicit one_shot(std::size_t degree) : degree_(degree) {}
    void on_round(node_ctx<test_msg>& ctx, inbox_view<test_msg> inbox) {
        sizes_.push_back(inbox.size());
        empties_.push_back(inbox.empty());
        if (ctx.round() == 0) {
            for (port_id p = 0; p < degree_; ++p) ctx.send(p, test_msg{7, 8});
        }
    }
    std::vector<std::size_t> sizes_;
    std::vector<bool> empties_;

private:
    std::size_t degree_;
};

TEST(Engine, SlotStampsExpireAfterOneRound) {
    graph g = make_cycle(4);
    engine<one_shot> eng(g, 1);
    eng.spawn([&](std::size_t u) { return one_shot(g.degree(u)); });
    eng.run_rounds(4);
    for (std::size_t u = 0; u < 4; ++u) {
        const auto& n = eng.node(u);
        ASSERT_EQ(n.sizes_.size(), 4u);
        EXPECT_EQ(n.sizes_[0], 0u);  // nothing in flight yet
        EXPECT_EQ(n.sizes_[1], 2u);  // both neighbors' round-0 sends
        EXPECT_EQ(n.sizes_[2], 0u);  // delivered once, never again
        EXPECT_EQ(n.sizes_[3], 0u);
        EXPECT_TRUE(n.empties_[0]);
        EXPECT_FALSE(n.empties_[1]);
        EXPECT_TRUE(n.empties_[2]);
    }
}

// Anonymity: a protocol's aggregate outcome distribution must be the same
// under any port relabeling (here: exact equality of mass aggregates,
// since chatter is symmetric and deterministic in structure).
TEST(Engine, PortPermutationInvariantAggregate) {
    graph g = make_torus(4, 4);
    graph h = g.with_permuted_ports(77);
    auto total = [&](const graph& gg) {
        engine<chatter> eng(gg, 9);
        eng.spawn([&](std::size_t u) { return chatter(gg.degree(u)); });
        eng.run_rounds(8);
        std::uint64_t acc = 0;
        for (std::size_t u = 0; u < gg.num_nodes(); ++u) acc += eng.node(u).received_;
        return acc;
    };
    EXPECT_EQ(total(g), total(h));
}

}  // namespace
}  // namespace anole
