// Adaptive-adversary tests (sim/dynamics.h adaptive_kind): each built-in
// strategy observes the engine's per-round status snapshot and lands its
// signature attack — the assassin crashes a flag-flying *live* leader
// after its grace period, frontier loss kills only undecided senders'
// traffic, cut_churn kills only boundary-crossing traffic — while the
// schedule stays a pure function of the seed (bitwise identical across
// --node-jobs) and selectable by preset name from campaign specs.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "baseline/flood_max.h"
#include "core/revocable.h"
#include "graph/generators.h"
#include "sim/campaign.h"
#include "sim/dynamics.h"
#include "sim/engine.h"
#include "util/json.h"

namespace anole {
namespace {

struct probe_msg {
    std::uint64_t value = 0;
    [[nodiscard]] std::size_t bit_size() const noexcept { return 8; }
};

// Minimal protocol with an observable *live* leader: designated chiefs
// raise the flag at round 2 and keep broadcasting forever. (Flood-max
// leaders halt the instant they decide, and the assassin only strikes
// live nodes — so the one-shot election baselines cannot exercise it.)
class standing_leader {
public:
    using message_type = probe_msg;
    standing_leader(std::size_t degree, bool chief) : degree_(degree), chief_(chief) {}

    void on_round(node_ctx<probe_msg>& ctx, inbox_view<probe_msg> inbox) {
        (void)inbox;
        if (chief_ && ctx.round() >= 2) {
            decided_ = true;
            leader_ = true;
        }
        for (port_id p = 0; p < degree_; ++p) ctx.send(p, probe_msg{ctx.round()});
    }

    bool decided_ = false;
    bool leader_ = false;

private:
    std::size_t degree_;
    bool chief_;
};

// engine is pinned in place (non-copyable), so tests hold it in a rig.
struct standing_rig {
    engine<standing_leader> eng;

    template <class Pick>
    standing_rig(const graph& g, const dynamics_spec& spec, std::uint64_t seed,
                 Pick&& is_chief)
        : eng(g, seed) {
        eng.set_dynamics(spec, seed);
        eng.spawn([&](std::size_t u) {
            return standing_leader(g.degree(static_cast<node_id>(u)), is_chief(u));
        });
        eng.set_status_probe([this](std::size_t u) { return status(u); });
    }

    [[nodiscard]] node_status status(std::size_t u) const {
        node_status st;
        st.decided = eng.node(u).decided_;
        st.leader = eng.node(u).leader_;
        st.own_id = u + 1;
        return st;
    }
};

// --- leader_assassin ----------------------------------------------------------

TEST(AdaptiveAdversary, AssassinCrashesTheLeaderAfterGrace) {
    const graph g = make_cycle(12);
    dynamics_spec spec;
    spec.strategy = adaptive_kind::leader_assassin;
    spec.strategy_grace = 1;
    spec.strategy_max_kills = 1;
    standing_rig rig(g, spec, 3, [](std::size_t u) { return u == 0; });
    rig.eng.run_rounds(20);
    // Flag up during round 2, first observed in round 3's pre-pass,
    // struck one grace round later.
    EXPECT_TRUE(rig.eng.node_crashed(0));
    EXPECT_EQ(rig.eng.dynamics()->stats().assassinations, 1u);
    const oracle_report rep =
        run_oracle(rig.eng, [&rig](std::size_t u) { return rig.status(u); });
    EXPECT_EQ(rep.crashed_leaders, 1u);
    EXPECT_EQ(rep.live_leaders, 0u);
    EXPECT_TRUE(rep.pass()) << rep.summary();
}

TEST(AdaptiveAdversary, AssassinHonorsKillBudget) {
    const graph g = make_cycle(12);
    dynamics_spec spec;
    spec.strategy = adaptive_kind::leader_assassin;
    spec.strategy_grace = 1;
    spec.strategy_max_kills = 1;
    // Two standing leaders, budget for one kill: exactly one survives.
    standing_rig rig(g, spec, 5, [](std::size_t u) { return u < 2; });
    rig.eng.run_rounds(30);
    EXPECT_EQ(rig.eng.dynamics()->stats().assassinations, 1u);
    EXPECT_EQ(static_cast<int>(rig.eng.node_crashed(0)) +
                  static_cast<int>(rig.eng.node_crashed(1)),
              1);
}

// Revocable under the assassin: the attack lands (or the run ends before
// a leader ever stood long enough), the oracle never reports a safety
// violation, and every run ends in a bounded verdict.
TEST(AdaptiveAdversary, RevocableSurvivesAssassinationSafely) {
    const graph g = make_cycle(8);
    dynamics_spec spec;
    spec.strategy = adaptive_kind::leader_assassin;
    spec.strategy_grace = 2;
    spec.strategy_max_kills = 1;
    auto params = revocable_params::scaled(std::nullopt, 0.02, 0.12);
    params.k_cap = 16;
    std::uint64_t assassinations = 0;
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        const revocable_result res =
            run_revocable(g, params, seed, /*max_rounds=*/200'000,
                          congest_budget::fragmenting(16), spec);
        EXPECT_TRUE(res.oracle.pass()) << "seed " << seed << ": "
                                       << res.oracle.summary();
        assassinations += res.oracle.crashed_leaders;
    }
    EXPECT_GT(assassinations, 0u)
        << "no seed ever produced an observable assassination";
}

// --- message-killing strategies ----------------------------------------------

TEST(AdaptiveAdversary, FrontierLossHitsOnlyUndecidedSenders) {
    const graph g = make_family(graph_family::torus, 36, 1);
    dynamics_spec spec;
    spec.strategy = adaptive_kind::target_frontier_loss;
    spec.strategy_intensity = 0.5;
    engine<flood_max_node> eng(g, 7);
    eng.set_dynamics(spec, 7);
    eng.spawn([&](std::size_t u) {
        return flood_max_node(g.degree(static_cast<node_id>(u)),
                              g.num_nodes() * g.num_nodes(), 11);
    });
    eng.set_status_probe([&eng](std::size_t u) {
        node_status st;
        st.decided = eng.node(u).done();
        st.leader = eng.node(u).is_leader();
        st.own_id = eng.node(u).id();
        return st;
    });
    eng.run_until_halted(20);
    const dynamics_stats st = eng.dynamics()->stats();
    EXPECT_GT(st.targeted_losses, 0u);
    EXPECT_EQ(st.cut_losses, 0u);
    EXPECT_EQ(st.lost_messages, 0u);  // no oblivious loss configured
}

TEST(AdaptiveAdversary, CutChurnKillsBoundaryTrafficOnly) {
    // One standing leader makes node 0 permanently decided while the rest
    // never decide: every slot out of / into node 0 crosses the boundary.
    const graph g = make_cycle(12);
    dynamics_spec spec;
    spec.strategy = adaptive_kind::cut_churn;
    spec.strategy_intensity = 1.0;
    standing_rig rig(g, spec, 9, [](std::size_t u) { return u == 0; });
    rig.eng.run_rounds(20);
    const dynamics_stats st = rig.eng.dynamics()->stats();
    EXPECT_GT(st.cut_losses, 0u);
    EXPECT_EQ(st.targeted_losses, 0u);
    // Intensity 1 on a 2-regular cycle: exactly the four boundary slots
    // (0<->1, 0<->11, both directions) die per round once the flag is up,
    // never interior traffic — bounded by 4 per round over 20 rounds.
    EXPECT_LE(st.cut_losses, 4u * 20);
}

// --- determinism: adaptivity must not break node-jobs identity ----------------

TEST(AdaptiveAdversary, BitwiseIdenticalAcrossNodeJobs) {
    const graph g = make_family(graph_family::watts_strogatz, 32, 3);
    for (const adaptive_kind k :
         {adaptive_kind::target_frontier_loss, adaptive_kind::leader_assassin,
          adaptive_kind::cut_churn}) {
        dynamics_spec spec;
        spec.strategy = k;
        spec.strategy_intensity = 0.4;
        auto run = [&](std::size_t node_jobs) {
            engine<flood_max_node> eng(g, 13);
            eng.set_parallelism(nullptr, node_jobs);
            eng.set_dynamics(spec, 13);
            eng.spawn([&](std::size_t u) {
                return flood_max_node(g.degree(static_cast<node_id>(u)),
                                      g.num_nodes() * g.num_nodes(), 12);
            });
            eng.set_status_probe([&eng](std::size_t u) {
                node_status st;
                st.decided = eng.node(u).done();
                st.leader = eng.node(u).is_leader();
                st.own_id = eng.node(u).id();
                return st;
            });
            eng.run_until_halted(20);
            return eng.dynamics()->stats();
        };
        const dynamics_stats serial = run(1);
        EXPECT_EQ(run(2), serial) << to_string(k) << " node_jobs=2";
        EXPECT_EQ(run(8), serial) << to_string(k) << " node_jobs=8";
    }
}

// --- spec plumbing ------------------------------------------------------------

TEST(AdaptiveAdversary, StrategyNamesRoundTrip) {
    for (const adaptive_kind k :
         {adaptive_kind::none, adaptive_kind::target_frontier_loss,
          adaptive_kind::leader_assassin, adaptive_kind::cut_churn}) {
        const auto back = adaptive_from_string(to_string(k));
        ASSERT_TRUE(back.has_value()) << to_string(k);
        EXPECT_EQ(*back, k);
    }
    EXPECT_FALSE(adaptive_from_string("nope").has_value());
}

TEST(AdaptiveAdversary, PresetsSelectableAndJsonRoundTrips) {
    for (const char* name : {"frontier", "assassin", "cutchurn", "member"}) {
        const auto preset = dynamics_preset(name);
        ASSERT_TRUE(preset.has_value()) << name;
        ASSERT_TRUE(preset->enabled()) << name;
        // to_json -> dynamics_from_json is the identity on every knob.
        const json_value v = json_parse(preset->to_json());
        const auto [rt_name, rt_spec] = dynamics_from_json(v);
        (void)rt_name;
        EXPECT_EQ(rt_spec, *preset) << name;
    }
}

TEST(AdaptiveAdversary, CampaignSpecParsesAdaptiveAxis) {
    const campaign_spec spec = campaign_spec_from_json(R"({
        "families": ["cycle"], "sizes": [16], "variants": ["flood"],
        "seeds": 1,
        "dynamics": ["assassin",
                     {"name": "hard_frontier",
                      "strategy": "target_frontier_loss",
                      "strategy_intensity": 0.9}]
    })");
    ASSERT_EQ(spec.dynamics.size(), 2u);
    EXPECT_EQ(spec.dynamics[0].second.strategy, adaptive_kind::leader_assassin);
    EXPECT_EQ(spec.dynamics[1].first, "hard_frontier");
    EXPECT_EQ(spec.dynamics[1].second.strategy,
              adaptive_kind::target_frontier_loss);
    EXPECT_DOUBLE_EQ(spec.dynamics[1].second.strategy_intensity, 0.9);
}

}  // namespace
}  // namespace anole
