// Tests for sim/runner.h + sim/scenario.h: parameter auto-fill from the
// profile, unified records across all five algorithms, determinism in
// --jobs, topology/profile caching, and error capture.
#include "sim/runner.h"

#include <gtest/gtest.h>

#include <set>

#include "graph/generators.h"

namespace anole {
namespace {

TEST(Scenario, KindOfMatchesVariantAlternative) {
    EXPECT_EQ(kind_of(flood_cfg{}), algo_kind::flood_max);
    EXPECT_EQ(kind_of(gilbert_cfg{}), algo_kind::gilbert);
    EXPECT_EQ(kind_of(irrevocable_cfg{}), algo_kind::irrevocable);
    EXPECT_EQ(kind_of(revocable_cfg{}), algo_kind::revocable);
    EXPECT_EQ(kind_of(cautious_cfg{}), algo_kind::cautious_broadcast);
    EXPECT_STREQ(to_string(algo_kind::irrevocable), "irrevocable");
}

TEST(Runner, FillsZeroModelInputsFromProfile) {
    graph_profile prof;
    prof.n = 64;
    prof.mixing_time = 17;
    prof.conductance = 0.25;
    prof.isoperimetric = 0.5;

    const auto ip = scenario_runner::fill(irrevocable_params{}, prof);
    EXPECT_EQ(ip.n, 64u);
    EXPECT_EQ(ip.tmix, 17u);
    EXPECT_DOUBLE_EQ(ip.phi, 0.25);

    // Explicit values win over the profile.
    irrevocable_params explicit_p;
    explicit_p.n = 32;
    explicit_p.tmix = 5;
    explicit_p.phi = 0.75;
    const auto kept = scenario_runner::fill(explicit_p, prof);
    EXPECT_EQ(kept.n, 32u);
    EXPECT_EQ(kept.tmix, 5u);
    EXPECT_DOUBLE_EQ(kept.phi, 0.75);

    const auto gp = scenario_runner::fill(gilbert_params{}, prof);
    EXPECT_EQ(gp.n, 64u);
    EXPECT_EQ(gp.tmix, 17u);

    revocable_cfg rc;
    rc.auto_isoperimetric = true;
    EXPECT_DOUBLE_EQ(*scenario_runner::fill(rc, prof).isoperimetric, 0.5);
    rc.auto_isoperimetric = false;
    EXPECT_FALSE(scenario_runner::fill(rc, prof).isoperimetric.has_value());
}

TEST(Runner, RunsEveryAlgorithmKindOnOneTopology) {
    scenario_runner runner(2);
    const graph g = make_torus(4, 4);

    revocable_cfg rc;
    rc.params = revocable_params::scaled(std::nullopt, 0.02, 0.12);
    rc.params.k_cap = 32;
    const std::vector<scenario> batch = {
        {"", &g, flood_cfg{}, 1, 2},
        {"", &g, gilbert_cfg{}, 1, 2},
        {"", &g, irrevocable_cfg{}, 1, 2},
        {"", &g, rc, 1, 2},
        {"", &g, cautious_cfg{}, 1, 2},
    };
    const auto results = runner.run_batch(batch);
    ASSERT_EQ(results.size(), 5u);
    for (const auto& res : results) {
        ASSERT_EQ(res.runs.size(), 2u);
        for (const auto& run : res.runs) {
            EXPECT_TRUE(run.ok) << res.label << ": " << run.error;
            EXPECT_GT(run.totals().messages, 0u) << res.label;
            EXPECT_GT(run.rounds(), 0u) << res.label;
        }
        EXPECT_EQ(res.topology, &g);
        EXPECT_EQ(res.profile.n, 16u);
    }
    // Flood-max on a 4x4 torus with the measured diameter elects exactly
    // one leader deterministically in the seed.
    EXPECT_EQ(results[0].successes(), 2u);
    EXPECT_EQ(results[0].success_ratio(), "2/2");
    // Cautious broadcast reports its territory through the detail.
    const auto& cb = std::get<cb_result>(results[4].runs[0].detail);
    EXPECT_GE(cb.territory, 1u);
}

TEST(Runner, ResultsAreIdenticalForAnyJobCount) {
    const graph g = make_random_regular(32, 4, 7);
    scenario s{"", &g, irrevocable_cfg{}, 11, 4};

    scenario_runner serial(1), wide(8);
    const auto a = serial.run(s);
    const auto b = wide.run(s);
    ASSERT_EQ(a.runs.size(), b.runs.size());
    for (std::size_t i = 0; i < a.runs.size(); ++i) {
        EXPECT_EQ(a.runs[i].seed, b.runs[i].seed);
        EXPECT_EQ(a.runs[i].success(), b.runs[i].success());
        EXPECT_EQ(a.runs[i].totals().messages, b.runs[i].totals().messages);
        EXPECT_EQ(a.runs[i].totals().bits, b.runs[i].totals().bits);
        EXPECT_EQ(a.runs[i].rounds(), b.runs[i].rounds());
    }
}

TEST(Runner, RepetitionSeedsAreSequential) {
    const graph g = make_cycle(8);
    scenario_runner runner(2);
    const auto res = runner.run(scenario{"", &g, flood_cfg{}, 42, 3});
    ASSERT_EQ(res.runs.size(), 3u);
    EXPECT_EQ(res.runs[0].seed, 42u);
    EXPECT_EQ(res.runs[1].seed, 43u);
    EXPECT_EQ(res.runs[2].seed, 44u);
}

TEST(Runner, MaterializeCachesFamilyInstances) {
    scenario_runner runner(1);
    const family_spec spec{graph_family::torus, 16, 3};
    const graph& a = runner.materialize(spec);
    const graph& b = runner.materialize(spec);
    EXPECT_EQ(&a, &b);  // same cached instance
    const graph& c = runner.materialize(family_spec{graph_family::torus, 16, 4});
    EXPECT_NE(&a, &c);  // different seed, different instance
    EXPECT_EQ(a.num_nodes(), 16u);
}

TEST(Runner, ProfileIsCachedPerGraph) {
    scenario_runner runner(1);
    const graph g = make_complete(8);
    const graph_profile& a = runner.profile_for(g);
    const graph_profile& b = runner.profile_for(g);
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(a.n, 8u);
    EXPECT_EQ(a.m, 28u);
}

TEST(Runner, DerivesLabelFromTopologyAndAlgorithm) {
    scenario_runner runner(1);
    const auto res =
        runner.run(scenario{"", family_spec{graph_family::cycle, 8, 1},
                            flood_cfg{}, 1, 1});
    EXPECT_EQ(res.label, res.topology->name() + std::string("/flood_max"));
    const auto named =
        runner.run(scenario{"my row", family_spec{graph_family::cycle, 8, 1},
                            flood_cfg{}, 1, 1});
    EXPECT_EQ(named.label, "my row");
}

TEST(Runner, CapturesRunErrorsInsteadOfThrowing) {
    // irrevocable_params::id_space requires n < 2^15; forcing a huge n
    // through the params makes the run throw — the record must capture it.
    const graph g = make_cycle(8);
    irrevocable_cfg bad;
    bad.params.n = std::size_t{1} << 15;
    scenario_runner runner(1);
    const auto res = runner.run(scenario{"", &g, bad, 1, 2});
    ASSERT_EQ(res.runs.size(), 2u);
    for (const auto& run : res.runs) {
        EXPECT_FALSE(run.ok);
        EXPECT_FALSE(run.error.empty());
        EXPECT_FALSE(run.success());
        EXPECT_EQ(run.totals().messages, 0u);
    }
    EXPECT_EQ(res.successes(), 0u);
    EXPECT_TRUE(res.messages().empty());  // failed runs excluded from stats
}

TEST(Runner, BatchSharesTopologyAcrossScenarios) {
    scenario_runner runner(4);
    const family_spec spec{graph_family::torus, 16, 1};
    const std::vector<scenario> batch = {
        {"", spec, flood_cfg{}, 1, 1},
        {"", spec, gilbert_cfg{}, 1, 1},
        {"", spec, irrevocable_cfg{}, 1, 1},
    };
    const auto results = runner.run_batch(batch);
    ASSERT_EQ(results.size(), 3u);
    EXPECT_EQ(results[0].topology, results[1].topology);
    EXPECT_EQ(results[1].topology, results[2].topology);
}

TEST(Runner, CautiousCapXOverridesTerritoryCap) {
    // A tiny cap must produce a much smaller territory than no cap.
    const graph g = make_torus(8, 8);
    scenario_runner runner(2);
    cautious_cfg tiny;
    tiny.cap_x = 0.001;  // cap clamps to 2
    cautious_cfg unbounded;  // default cap = UINT64_MAX
    const auto small = runner.run(scenario{"", &g, tiny, 5, 1});
    const auto big = runner.run(scenario{"", &g, unbounded, 5, 1});
    const auto& ts = std::get<cb_result>(small.runs[0].detail);
    const auto& tb = std::get<cb_result>(big.runs[0].detail);
    EXPECT_LT(ts.territory, tb.territory);
}

}  // namespace
}  // namespace anole
