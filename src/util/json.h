// anole — minimal JSON reader + string escaping.
//
// The campaign engine (sim/campaign.h) persists one JSON object per run
// to a JSONL file and reads it back on resume, and accepts a JSON
// campaign spec file. This is the small recursive-descent parser backing
// both: objects, arrays, strings (with \uXXXX escapes decoded to UTF-8),
// numbers (as double), booleans and null — the full value grammar of RFC
// 8259 minus implementation limits we don't need (numbers beyond double,
// >256 nesting levels). Writing stays hand-rolled at the call sites
// (every record is a flat object), so only `json_escape` is exported for
// that direction.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "util/error.h"

namespace anole {

class json_value {
public:
    using array = std::vector<json_value>;
    using object = std::map<std::string, json_value>;

    json_value() : v_(nullptr) {}
    json_value(std::nullptr_t) : v_(nullptr) {}
    json_value(bool b) : v_(b) {}
    json_value(double d) : v_(d) {}
    json_value(std::string s) : v_(std::move(s)) {}
    json_value(array a) : v_(std::move(a)) {}
    json_value(object o) : v_(std::move(o)) {}

    [[nodiscard]] bool is_null() const noexcept {
        return std::holds_alternative<std::nullptr_t>(v_);
    }
    [[nodiscard]] bool is_bool() const noexcept { return std::holds_alternative<bool>(v_); }
    [[nodiscard]] bool is_number() const noexcept {
        return std::holds_alternative<double>(v_);
    }
    [[nodiscard]] bool is_string() const noexcept {
        return std::holds_alternative<std::string>(v_);
    }
    [[nodiscard]] bool is_array() const noexcept { return std::holds_alternative<array>(v_); }
    [[nodiscard]] bool is_object() const noexcept {
        return std::holds_alternative<object>(v_);
    }

    // Typed accessors; throw anole::error on type mismatch.
    [[nodiscard]] bool as_bool() const;
    [[nodiscard]] double as_number() const;
    [[nodiscard]] std::uint64_t as_uint() const;  // number, checked >= 0
    [[nodiscard]] const std::string& as_string() const;
    [[nodiscard]] const array& as_array() const;
    [[nodiscard]] const object& as_object() const;

    // Object member access; `contains` + throwing `at`.
    [[nodiscard]] bool contains(const std::string& key) const;
    [[nodiscard]] const json_value& at(const std::string& key) const;

private:
    std::variant<std::nullptr_t, bool, double, std::string, array, object> v_;
};

// Parses exactly one JSON value (leading/trailing whitespace allowed;
// anything else after the value is an error). Throws anole::error with a
// byte offset on malformed input.
[[nodiscard]] json_value json_parse(std::string_view text);

// Escapes `s` for embedding inside a JSON string literal (quotes not
// included): ", \, control characters -> \uXXXX.
[[nodiscard]] std::string json_escape(std::string_view s);

}  // namespace anole
