// anole — deterministic random-number substrate.
//
// All randomness in the library flows through these generators so that
// every experiment is reproducible from a single (graph, seed) pair.
//
//   * splitmix64 — stateless mixer; used to derive independent stream
//     seeds from (master_seed, node_index, phase_tag) tuples.
//   * xoshiro256ss — the workhorse generator (xoshiro256**, Blackman &
//     Vigna); satisfies UniformRandomBitGenerator so <random>
//     distributions work, but we provide bias-free bounded sampling
//     (Lemire) and exact Bernoulli helpers of our own because protocol
//     correctness proofs are stated in exact probabilities.
//
// Protocol code additionally supports *recorded tapes* (util/rng.h's
// `tape_recorder` / `tape_player`): the impossibility machinery
// (Theorem 2) needs to replay the exact bit sequence an execution drew.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "util/error.h"

namespace anole {

// --- splitmix64 -----------------------------------------------------------

// Stateless 64-bit mixer. mix(seed, i) gives the i-th derived seed.
[[nodiscard]] constexpr std::uint64_t splitmix64_next(std::uint64_t& state) noexcept {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

// Derives a well-mixed seed from up to three coordinates. Passing the same
// coordinates always yields the same seed; distinct coordinates yield
// (practically) independent seeds.
[[nodiscard]] constexpr std::uint64_t derive_seed(std::uint64_t master, std::uint64_t a = 0,
                                                  std::uint64_t b = 0) noexcept {
    std::uint64_t s = master;
    std::uint64_t x = splitmix64_next(s);
    s ^= a * 0xd1342543de82ef95ULL + 0x2545f4914f6cdd1dULL;
    x ^= splitmix64_next(s);
    s ^= b * 0xda942042e4dd58b5ULL + 0x9e3779b97f4a7c15ULL;
    x ^= splitmix64_next(s);
    return x;
}

// --- xoshiro256** ---------------------------------------------------------

class xoshiro256ss {
public:
    using result_type = std::uint64_t;

    xoshiro256ss() : xoshiro256ss(0xdeadbeefcafef00dULL) {}

    explicit xoshiro256ss(std::uint64_t seed) noexcept {
        // Seed the full 256-bit state from splitmix64, as recommended by
        // the xoshiro authors; guards against the all-zero state.
        std::uint64_t s = seed;
        for (auto& w : state_) w = splitmix64_next(s);
        if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
    }

    static constexpr result_type min() noexcept { return 0; }
    static constexpr result_type max() noexcept {
        return std::numeric_limits<result_type>::max();
    }

    result_type operator()() noexcept {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    // Uniform integer in [0, bound) without modulo bias (Lemire's method).
    // bound must be > 0.
    [[nodiscard]] std::uint64_t below(std::uint64_t bound) noexcept {
        // 128-bit multiply-shift; rejection only in the rare biased zone.
        std::uint64_t x = (*this)();
        __uint128_t m = static_cast<__uint128_t>(x) * bound;
        auto lo = static_cast<std::uint64_t>(m);
        if (lo < bound) {
            const std::uint64_t threshold = (0 - bound) % bound;
            while (lo < threshold) {
                x = (*this)();
                m = static_cast<__uint128_t>(x) * bound;
                lo = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    // Uniform integer in the inclusive range [lo, hi].
    [[nodiscard]] std::uint64_t range(std::uint64_t lo, std::uint64_t hi) noexcept {
        return lo + below(hi - lo + 1);
    }

    // Uniform double in [0, 1) with 53 random bits.
    [[nodiscard]] double uniform01() noexcept {
        return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
    }

    // Bernoulli(p). Exact for p given as a double.
    [[nodiscard]] bool bernoulli(double p) noexcept { return uniform01() < p; }

    // Bernoulli(num/den) with exact integer arithmetic — used where the
    // paper's analysis depends on exact probabilities like (c log n)/n.
    [[nodiscard]] bool bernoulli_ratio(std::uint64_t num, std::uint64_t den) noexcept {
        return below(den) < num;
    }

    // One fair random bit (the impossibility proof's unit of randomness).
    [[nodiscard]] bool bit() noexcept { return ((*this)() >> 63) != 0; }

private:
    static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
        return (x << k) | (x >> (64 - k));
    }
    std::uint64_t state_[4];
};

// --- distributional sampling ----------------------------------------------
//
// The lazy-walk ensembles (core/random_walk.h) need whole *populations* of
// coin flips per round: "of the R resident tokens, how many stay?" is
// Binomial(R, 1/2), and "how do the movers split over d ports?" is a
// uniform multinomial. Sampling those distributions directly turns an
// O(tokens) per-round loop into O(degree) — a million-token ensemble costs
// the same as a ten-token one.

// Number of successes in n Bernoulli(p) trials. Expected O(1) time for
// any n: exact popcount of fair bits for p = 1/2 with n <= 1024, a
// per-trial loop for n <= 16, CDF inversion (BINV) while n·p < 10, and
// Hörmann's BTRS transformed rejection above. p must lie in [0, 1].
[[nodiscard]] std::uint64_t binomial(xoshiro256ss& rng, std::uint64_t n, double p);

// Splits `count` items over out.size() equally likely bins (exact uniform
// multinomial, sampled as a chain of conditional binomials). The bin
// counts always sum to `count`.
void multinomial_uniform(xoshiro256ss& rng, std::uint64_t count,
                         std::span<std::uint64_t> out);

// --- random tapes ---------------------------------------------------------
//
// Theorem 2's pumping-wheel argument treats an execution as a function of
// the per-round random bits each node draws. `bit_source` abstracts where
// those bits come from so the same protocol code runs live (fresh RNG),
// recorded (RNG + transcript) or replayed (transcript, wrap-around).

class bit_source {
public:
    virtual ~bit_source() = default;
    [[nodiscard]] virtual bool next_bit() = 0;
};

// Live generator-backed bits.
class rng_bit_source final : public bit_source {
public:
    explicit rng_bit_source(std::uint64_t seed) : rng_(seed) {}
    [[nodiscard]] bool next_bit() override { return rng_.bit(); }

private:
    xoshiro256ss rng_;
};

// Draws from an RNG while recording every bit for later replay.
class tape_recorder final : public bit_source {
public:
    explicit tape_recorder(std::uint64_t seed) : rng_(seed) {}

    [[nodiscard]] bool next_bit() override {
        const bool b = rng_.bit();
        tape_.push_back(b);
        return b;
    }

    [[nodiscard]] const std::vector<bool>& tape() const noexcept { return tape_; }

private:
    xoshiro256ss rng_;
    std::vector<bool> tape_;
};

// Replays a fixed tape; wraps around if the consumer outruns it (the
// pumping-wheel construction only relies on the first T(n) rounds, so
// wrap-around never affects the checked prefix).
class tape_player final : public bit_source {
public:
    explicit tape_player(std::vector<bool> tape) : tape_(std::move(tape)) {
        require(!tape_.empty(), "tape_player: empty tape");
    }

    [[nodiscard]] bool next_bit() override {
        const bool b = tape_[pos_];
        pos_ = (pos_ + 1) % tape_.size();
        return b;
    }

private:
    std::vector<bool> tape_;
    std::size_t pos_ = 0;
};

}  // namespace anole
