#include "util/table.h"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <iomanip>
#include <sstream>

namespace anole {

namespace {

bool looks_numeric(const std::string& s) {
    if (s.empty()) return false;
    bool digit = false;
    for (char ch : s) {
        if (std::isdigit(static_cast<unsigned char>(ch)) != 0) {
            digit = true;
        } else if (ch != '.' && ch != '-' && ch != '+' && ch != 'e' && ch != 'E' &&
                   ch != ',' && ch != 'x' && ch != '%') {
            return false;
        }
    }
    return digit;
}

std::string pad(const std::string& s, std::size_t width, bool right_align) {
    if (s.size() >= width) return s;
    const std::string fill(width - s.size(), ' ');
    return right_align ? fill + s : s + fill;
}

}  // namespace

void text_table::print(std::ostream& os) const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }
    auto rule = [&] {
        os << '+';
        for (std::size_t w : widths) os << std::string(w + 2, '-') << '+';
        os << '\n';
    };
    rule();
    os << '|';
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        os << ' ' << pad(headers_[c], widths[c], false) << " |";
    }
    os << '\n';
    rule();
    for (const auto& row : rows_) {
        os << '|';
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << ' ' << pad(row[c], widths[c], looks_numeric(row[c])) << " |";
        }
        os << '\n';
    }
    rule();
}

void text_table::print_csv(std::ostream& os) const {
    auto emit = [&os](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            const std::string& s = cells[c];
            const bool quote =
                s.find_first_of(",\"\n") != std::string::npos;
            if (c) os << ',';
            if (quote) {
                os << '"';
                for (char ch : s) {
                    if (ch == '"') os << '"';
                    os << ch;
                }
                os << '"';
            } else {
                os << s;
            }
        }
        os << '\n';
    };
    emit(headers_);
    for (const auto& row : rows_) emit(row);
}

void text_table::print_json(std::ostream& os, const std::string& title) const {
    auto quote = [&os](const std::string& s) {
        os << '"';
        for (char ch : s) {
            switch (ch) {
                case '"': os << "\\\""; break;
                case '\\': os << "\\\\"; break;
                case '\n': os << "\\n"; break;
                case '\t': os << "\\t"; break;
                default:
                    if (static_cast<unsigned char>(ch) < 0x20) {
                        char buf[8];
                        std::snprintf(buf, sizeof buf, "\\u%04x", ch);
                        os << buf;
                    } else {
                        os << ch;
                    }
            }
        }
        os << '"';
    };
    os << "{\"title\": ";
    quote(title);
    os << ", \"rows\": [";
    for (std::size_t r = 0; r < rows_.size(); ++r) {
        os << (r ? ", " : "") << '{';
        for (std::size_t c = 0; c < headers_.size(); ++c) {
            if (c) os << ", ";
            quote(headers_[c]);
            os << ": ";
            quote(rows_[r][c]);
        }
        os << '}';
    }
    os << "]}\n";
}

std::string fmt_fixed(double v, int decimals) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(decimals) << v;
    return os.str();
}

std::string fmt_count(std::uint64_t v) {
    std::string raw = std::to_string(v);
    std::string out;
    out.reserve(raw.size() + raw.size() / 3);
    std::size_t lead = raw.size() % 3 == 0 ? 3 : raw.size() % 3;
    for (std::size_t i = 0; i < raw.size(); ++i) {
        if (i != 0 && (i + 3 - lead) % 3 == 0) out.push_back(',');
        out.push_back(raw[i]);
    }
    return out;
}

std::string fmt_sci(double v, int sig) {
    std::ostringstream os;
    os << std::scientific << std::setprecision(sig - 1) << v;
    return os.str();
}

std::string fmt_ratio(double v) { return fmt_fixed(v, 2) + "x"; }

}  // namespace anole
