// anole — exact dyadic rationals: mantissa / 2^exponent.
//
// The diffusion phase of the Revocable LE algorithm (paper Algorithm 7)
// repeatedly computes
//
//     Φ ← Φ + Σ_{i∈N} Φ_i / D  −  |N|·Φ / D,     D = 2·k^{1+ε}
//
// With D a power of two (we round the share denominator up to the next
// power of two — see core/params.h; the transition matrix stays symmetric
// and doubly stochastic, which is all Lemmas 3–5 need), every potential is
// exactly representable as m / 2^e. This type implements that arithmetic
// exactly, preserving the global conservation invariant Σ Φ = const that
// the convergence analysis relies on, and exposing the *bit size* a
// CONGEST transmission of the value would need (the paper transmits
// potentials bit by bit; the simulator's fragmenting channel uses this).
//
// Representation invariant: mantissa is odd or zero; exponent == 0 when
// mantissa is zero (canonical form, so equality is limb equality).
#pragma once

#include <cstdint>
#include <string>

#include "util/bigint.h"
#include "util/error.h"

namespace anole {

class dyadic {
public:
    dyadic() = default;  // zero

    // m / 2^e, canonicalized.
    dyadic(bigint mantissa, std::size_t exponent)
        : mant_(std::move(mantissa)), exp_(exponent) {
        normalize();
    }

    dyadic(std::uint64_t v) : mant_(v), exp_(0) {}  // NOLINT: implicit integer lift

    [[nodiscard]] static dyadic zero() { return dyadic{}; }
    [[nodiscard]] static dyadic one() { return dyadic{1}; }

    [[nodiscard]] bool is_zero() const noexcept { return mant_.is_zero(); }
    [[nodiscard]] const bigint& mantissa() const noexcept { return mant_; }
    [[nodiscard]] std::size_t exponent() const noexcept { return exp_; }

    // --- arithmetic (exact) ---
    dyadic& operator+=(const dyadic& o);
    // Precondition: *this >= o.
    dyadic& operator-=(const dyadic& o);
    // Divide by 2^k (exact: exponent bump).
    dyadic& div_pow2(std::size_t k) {
        if (!mant_.is_zero()) exp_ += k;
        return *this;
    }
    // Multiply by a small integer.
    dyadic& mul_small(std::uint64_t m) {
        mant_.mul_small(m);
        normalize();
        return *this;
    }

    friend dyadic operator+(dyadic a, const dyadic& b) { return a += b; }
    friend dyadic operator-(dyadic a, const dyadic& b) { return a -= b; }

    // --- comparison (numeric) ---
    [[nodiscard]] int compare(const dyadic& o) const;
    friend bool operator==(const dyadic& a, const dyadic& b) { return a.compare(b) == 0; }
    friend bool operator!=(const dyadic& a, const dyadic& b) { return a.compare(b) != 0; }
    friend bool operator<(const dyadic& a, const dyadic& b) { return a.compare(b) < 0; }
    friend bool operator<=(const dyadic& a, const dyadic& b) { return a.compare(b) <= 0; }
    friend bool operator>(const dyadic& a, const dyadic& b) { return a.compare(b) > 0; }
    friend bool operator>=(const dyadic& a, const dyadic& b) { return a.compare(b) >= 0; }

    // --- conversions / size ---
    [[nodiscard]] double to_double() const noexcept;

    // Bits to transmit this value verbatim: mantissa bits + exponent encoded
    // as an Elias-gamma-style length (see util/bit_codec.h encode_dyadic for
    // the actual wire format; this matches it exactly).
    [[nodiscard]] std::size_t wire_bits() const noexcept;

    [[nodiscard]] std::string to_string() const;  // "m/2^e" for diagnostics

private:
    void normalize() {
        if (mant_.is_zero()) {
            exp_ = 0;
            return;
        }
        const std::size_t tz = mant_.trailing_zeros();
        const std::size_t strip = tz < exp_ ? tz : exp_;
        if (strip > 0) {
            mant_ >>= strip;
            exp_ -= strip;
        }
    }

    bigint mant_;          // odd or zero
    std::size_t exp_ = 0;  // denominator = 2^exp_
};

}  // namespace anole
