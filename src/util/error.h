// anole — common error type.
//
// Per C++ Core Guidelines E.14: use purpose-designed exception types.
// `anole::error` signals precondition/configuration violations (bugs in the
// caller or impossible experiment setups). Protocol-level "failure" events
// (e.g. zero candidates were selected) are *data*, never exceptions: they
// are whp-bounded outcomes that the harness measures.
#pragma once

#include <stdexcept>
#include <string>

namespace anole {

class error : public std::runtime_error {
public:
    explicit error(const std::string& what) : std::runtime_error(what) {}
};

// Throws anole::error with `msg` when `cond` is false.
// Used for checking preconditions on public API boundaries; internal
// invariants use assert().
inline void require(bool cond, const std::string& msg) {
    if (!cond) throw error(msg);
}

}  // namespace anole
