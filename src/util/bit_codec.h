// anole — bit-exact message encoding.
//
// The CONGEST model charges communication in *bits*: O(log n) bits per
// link per round (paper §2). The simulator (src/sim) therefore accounts
// message sizes in bits, and protocols that ship structured payloads
// (IDs, counters, potentials) encode them through this codec so the
// accounted size is the real serialized size, not sizeof(struct).
//
// Wire formats:
//   * fixed-width field: `width` low bits of a value, MSB-first.
//   * Elias-gamma natural number (>=1): unary length prefix + binary rest;
//     encode_gamma(v) costs 2*floor(log2 v) + 1 bits.
//   * non-negative integer via gamma(v+1).
//   * dyadic rational: gamma(exponent+1), gamma(mantissa_bits+1), then the
//     mantissa bits (canonical odd mantissa, MSB-first).
//
// bit_writer/bit_reader are symmetric; round-trip tests in
// tests/util/bit_codec_test.cpp pin the format.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/bigint.h"
#include "util/dyadic.h"
#include "util/error.h"

namespace anole {

class bit_writer {
public:
    void put_bit(bool b) {
        bits_.push_back(b);
    }

    // Writes the `width` low bits of `v`, most significant first.
    void put_uint(std::uint64_t v, std::size_t width) {
        require(width <= 64, "bit_writer::put_uint: width > 64");
        for (std::size_t i = width; i-- > 0;) put_bit(((v >> i) & 1u) != 0);
    }

    // Elias gamma code for v >= 1.
    void put_gamma(std::uint64_t v);

    // Any non-negative value, as gamma(v + 1).
    void put_gamma0(std::uint64_t v) { put_gamma(v + 1); }

    void put_dyadic(const dyadic& d);

    [[nodiscard]] std::size_t size_bits() const noexcept { return bits_.size(); }
    [[nodiscard]] const std::vector<bool>& bits() const noexcept { return bits_; }
    [[nodiscard]] std::vector<bool> take() noexcept { return std::move(bits_); }

private:
    std::vector<bool> bits_;
};

class bit_reader {
public:
    explicit bit_reader(const std::vector<bool>& bits) : bits_(bits) {}

    [[nodiscard]] bool get_bit() {
        require(pos_ < bits_.size(), "bit_reader: out of bits");
        return bits_[pos_++];
    }

    [[nodiscard]] std::uint64_t get_uint(std::size_t width) {
        require(width <= 64, "bit_reader::get_uint: width > 64");
        std::uint64_t v = 0;
        for (std::size_t i = 0; i < width; ++i) v = (v << 1) | (get_bit() ? 1u : 0u);
        return v;
    }

    [[nodiscard]] std::uint64_t get_gamma();
    [[nodiscard]] std::uint64_t get_gamma0() { return get_gamma() - 1; }
    [[nodiscard]] dyadic get_dyadic();

    [[nodiscard]] std::size_t remaining() const noexcept { return bits_.size() - pos_; }
    [[nodiscard]] bool exhausted() const noexcept { return pos_ == bits_.size(); }

private:
    const std::vector<bool>& bits_;
    std::size_t pos_ = 0;
};

// Size (in bits) of the gamma encoding of v >= 1, without encoding.
// Inline: message types call this from bit_size() on the engine's send
// hot path.
[[nodiscard]] inline std::size_t gamma_bits(std::uint64_t v) noexcept {
    if (v == 0) return 0;  // not encodable; callers use gamma0 for 0
    const auto floor_log2 = static_cast<std::size_t>(std::bit_width(v) - 1);
    return 2 * floor_log2 + 1;
}
// Size of gamma0 (v >= 0).
[[nodiscard]] inline std::size_t gamma0_bits(std::uint64_t v) noexcept {
    return gamma_bits(v + 1);
}
// Size of the dyadic wire format, matching bit_writer::put_dyadic.
[[nodiscard]] std::size_t encoded_dyadic_bits(const dyadic& d) noexcept;

// Number of bits needed to represent values 0..max_value (>=1 wide).
[[nodiscard]] inline std::size_t bits_for(std::uint64_t max_value) noexcept {
    if (max_value == 0) return 1;
    return static_cast<std::size_t>(std::bit_width(max_value));
}

}  // namespace anole
