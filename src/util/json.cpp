#include "util/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace anole {

bool json_value::as_bool() const {
    require(is_bool(), "json: not a boolean");
    return std::get<bool>(v_);
}

double json_value::as_number() const {
    require(is_number(), "json: not a number");
    return std::get<double>(v_);
}

std::uint64_t json_value::as_uint() const {
    const double d = as_number();
    require(d >= 0 && d == std::floor(d), "json: not a non-negative integer");
    return static_cast<std::uint64_t>(d);
}

const std::string& json_value::as_string() const {
    require(is_string(), "json: not a string");
    return std::get<std::string>(v_);
}

const json_value::array& json_value::as_array() const {
    require(is_array(), "json: not an array");
    return std::get<array>(v_);
}

const json_value::object& json_value::as_object() const {
    require(is_object(), "json: not an object");
    return std::get<object>(v_);
}

bool json_value::contains(const std::string& key) const {
    return is_object() && as_object().count(key) > 0;
}

const json_value& json_value::at(const std::string& key) const {
    const auto& o = as_object();
    auto it = o.find(key);
    require(it != o.end(), "json: missing key '" + key + "'");
    return it->second;
}

namespace {

class parser {
public:
    explicit parser(std::string_view text) : text_(text) {}

    json_value parse() {
        json_value v = value();
        skip_ws();
        require(pos_ == text_.size(), err("trailing content after JSON value"));
        return v;
    }

private:
    [[nodiscard]] std::string err(const std::string& what) const {
        return "json parse error at byte " + std::to_string(pos_) + ": " + what;
    }

    void skip_ws() {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
                text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    [[nodiscard]] char peek() {
        require(pos_ < text_.size(), err("unexpected end of input"));
        return text_[pos_];
    }

    void expect(char c) {
        require(peek() == c, err(std::string("expected '") + c + "'"));
        ++pos_;
    }

    bool consume_literal(std::string_view lit) {
        if (text_.substr(pos_, lit.size()) != lit) return false;
        pos_ += lit.size();
        return true;
    }

    json_value value() {
        require(depth_ < 256, err("nesting too deep"));
        skip_ws();
        const char c = peek();
        if (c == '{') return object();
        if (c == '[') return array();
        if (c == '"') return json_value(string());
        if (c == 't') {
            require(consume_literal("true"), err("bad literal"));
            return json_value(true);
        }
        if (c == 'f') {
            require(consume_literal("false"), err("bad literal"));
            return json_value(false);
        }
        if (c == 'n') {
            require(consume_literal("null"), err("bad literal"));
            return json_value(nullptr);
        }
        return number();
    }

    json_value object() {
        ++depth_;
        expect('{');
        json_value::object o;
        skip_ws();
        if (peek() == '}') {
            ++pos_;
            --depth_;
            return json_value(std::move(o));
        }
        while (true) {
            skip_ws();
            std::string key = string();
            skip_ws();
            expect(':');
            o.emplace(std::move(key), value());
            skip_ws();
            const char c = peek();
            if (c == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            break;
        }
        --depth_;
        return json_value(std::move(o));
    }

    json_value array() {
        ++depth_;
        expect('[');
        json_value::array a;
        skip_ws();
        if (peek() == ']') {
            ++pos_;
            --depth_;
            return json_value(std::move(a));
        }
        while (true) {
            a.push_back(value());
            skip_ws();
            const char c = peek();
            if (c == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            break;
        }
        --depth_;
        return json_value(std::move(a));
    }

    std::string string() {
        expect('"');
        std::string out;
        while (true) {
            require(pos_ < text_.size(), err("unterminated string"));
            const char c = text_[pos_++];
            if (c == '"') break;
            if (c != '\\') {
                require(static_cast<unsigned char>(c) >= 0x20,
                        err("raw control character in string"));
                out.push_back(c);
                continue;
            }
            require(pos_ < text_.size(), err("unterminated escape"));
            const char e = text_[pos_++];
            switch (e) {
                case '"': out.push_back('"'); break;
                case '\\': out.push_back('\\'); break;
                case '/': out.push_back('/'); break;
                case 'b': out.push_back('\b'); break;
                case 'f': out.push_back('\f'); break;
                case 'n': out.push_back('\n'); break;
                case 'r': out.push_back('\r'); break;
                case 't': out.push_back('\t'); break;
                case 'u': append_codepoint(out); break;
                default: throw error(err("bad escape character"));
            }
        }
        return out;
    }

    [[nodiscard]] unsigned hex4() {
        require(pos_ + 4 <= text_.size(), err("truncated \\u escape"));
        unsigned v = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = text_[pos_++];
            v <<= 4;
            if (c >= '0' && c <= '9') {
                v |= static_cast<unsigned>(c - '0');
            } else if (c >= 'a' && c <= 'f') {
                v |= static_cast<unsigned>(c - 'a' + 10);
            } else if (c >= 'A' && c <= 'F') {
                v |= static_cast<unsigned>(c - 'A' + 10);
            } else {
                throw error(err("bad hex digit in \\u escape"));
            }
        }
        return v;
    }

    void append_codepoint(std::string& out) {
        unsigned cp = hex4();
        if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate: need a pair
            require(consume_literal("\\u"), err("unpaired surrogate"));
            const unsigned lo = hex4();
            require(lo >= 0xDC00 && lo <= 0xDFFF, err("bad low surrogate"));
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
        }
        // UTF-8 encode.
        if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
        } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        } else if (cp < 0x10000) {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        } else {
            out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        }
    }

    json_value number() {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
                text_[pos_] == '+' || text_[pos_] == '-')) {
            ++pos_;
        }
        double d = 0;
        const auto [ptr, ec] =
            std::from_chars(text_.data() + start, text_.data() + pos_, d);
        require(ec == std::errc{} && ptr == text_.data() + pos_ && pos_ > start,
                err("bad number"));
        return json_value(d);
    }

    std::string_view text_;
    std::size_t pos_ = 0;
    std::size_t depth_ = 0;
};

}  // namespace

json_value json_parse(std::string_view text) { return parser(text).parse(); }

std::string json_escape(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x",
                                  static_cast<unsigned>(static_cast<unsigned char>(c)));
                    out += buf;
                } else {
                    out.push_back(c);
                }
        }
    }
    return out;
}

}  // namespace anole
