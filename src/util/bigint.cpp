#include "util/bigint.h"

#include <algorithm>
#include <bit>
#include <cctype>
#include <cmath>

namespace anole {

namespace {
constexpr std::size_t limb_bits = 64;
}

bigint bigint::from_decimal(const std::string& s) {
    require(!s.empty(), "bigint::from_decimal: empty string");
    bigint out;
    for (char ch : s) {
        require(std::isdigit(static_cast<unsigned char>(ch)) != 0,
                "bigint::from_decimal: non-digit character");
        out.mul_small(10);
        out += bigint(static_cast<std::uint64_t>(ch - '0'));
    }
    return out;
}

bigint bigint::pow2(std::size_t k) {
    bigint out;
    out.limbs_.assign(k / limb_bits + 1, 0);
    out.limbs_.back() = std::uint64_t{1} << (k % limb_bits);
    return out;
}

std::size_t bigint::bit_length() const noexcept {
    if (limbs_.empty()) return 0;
    return (limbs_.size() - 1) * limb_bits +
           (limb_bits - static_cast<std::size_t>(std::countl_zero(limbs_.back())));
}

std::size_t bigint::trailing_zeros() const {
    require(!is_zero(), "bigint::trailing_zeros: zero has no trailing zeros");
    std::size_t tz = 0;
    for (std::uint64_t limb : limbs_) {
        if (limb == 0) {
            tz += limb_bits;
        } else {
            tz += static_cast<std::size_t>(std::countr_zero(limb));
            break;
        }
    }
    return tz;
}

bool bigint::bit(std::size_t i) const noexcept {
    const std::size_t limb = i / limb_bits;
    if (limb >= limbs_.size()) return false;
    return ((limbs_[limb] >> (i % limb_bits)) & 1u) != 0;
}

double bigint::to_double() const noexcept {
    double out = 0.0;
    for (auto it = limbs_.rbegin(); it != limbs_.rend(); ++it) {
        out = out * 0x1.0p64 + static_cast<double>(*it);
    }
    return out;
}

std::string bigint::to_decimal() const {
    if (is_zero()) return "0";
    bigint tmp = *this;
    std::string out;
    while (!tmp.is_zero()) {
        const std::uint64_t digit = tmp.divmod_small(10);
        out.push_back(static_cast<char>('0' + digit));
    }
    std::reverse(out.begin(), out.end());
    return out;
}

std::string bigint::to_hex() const {
    if (is_zero()) return "0x0";
    std::string out = "0x";
    static const char* digits = "0123456789abcdef";
    bool leading = true;
    for (auto it = limbs_.rbegin(); it != limbs_.rend(); ++it) {
        for (int shift = 60; shift >= 0; shift -= 4) {
            const unsigned nib = static_cast<unsigned>((*it >> shift) & 0xF);
            if (leading && nib == 0) continue;
            leading = false;
            out.push_back(digits[nib]);
        }
    }
    return out;
}

int bigint::compare(const bigint& o) const noexcept {
    if (limbs_.size() != o.limbs_.size())
        return limbs_.size() < o.limbs_.size() ? -1 : 1;
    for (std::size_t i = limbs_.size(); i-- > 0;) {
        if (limbs_[i] != o.limbs_[i]) return limbs_[i] < o.limbs_[i] ? -1 : 1;
    }
    return 0;
}

bigint& bigint::operator+=(const bigint& o) {
    const std::size_t n = std::max(limbs_.size(), o.limbs_.size());
    limbs_.resize(n, 0);
    unsigned char carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t rhs = i < o.limbs_.size() ? o.limbs_[i] : 0;
        const std::uint64_t a = limbs_[i];
        const std::uint64_t sum = a + rhs + carry;
        carry = (sum < a || (carry && sum == a)) ? 1 : 0;
        limbs_[i] = sum;
    }
    if (carry) limbs_.push_back(1);
    return *this;
}

bigint& bigint::operator-=(const bigint& o) {
    require(compare(o) >= 0, "bigint::operator-=: would underflow (unsigned)");
    unsigned char borrow = 0;
    for (std::size_t i = 0; i < limbs_.size(); ++i) {
        const std::uint64_t rhs = i < o.limbs_.size() ? o.limbs_[i] : 0;
        const std::uint64_t a = limbs_[i];
        const std::uint64_t diff = a - rhs - borrow;
        borrow = (a < rhs || (borrow && a == rhs)) ? 1 : 0;
        limbs_[i] = diff;
    }
    trim();
    return *this;
}

bigint& bigint::operator<<=(std::size_t bits) {
    if (is_zero() || bits == 0) return *this;
    const std::size_t limb_shift = bits / limb_bits;
    const std::size_t bit_shift = bits % limb_bits;
    const std::size_t old_n = limbs_.size();
    limbs_.resize(old_n + limb_shift + 1, 0);
    for (std::size_t i = old_n; i-- > 0;) {
        const std::uint64_t v = limbs_[i];
        limbs_[i] = 0;
        if (bit_shift == 0) {
            limbs_[i + limb_shift] |= v;
        } else {
            limbs_[i + limb_shift] |= v << bit_shift;
            limbs_[i + limb_shift + 1] |= v >> (limb_bits - bit_shift);
        }
    }
    trim();
    return *this;
}

bigint& bigint::operator>>=(std::size_t bits) {
    if (is_zero() || bits == 0) return *this;
    const std::size_t limb_shift = bits / limb_bits;
    const std::size_t bit_shift = bits % limb_bits;
    if (limb_shift >= limbs_.size()) {
        limbs_.clear();
        return *this;
    }
    const std::size_t new_n = limbs_.size() - limb_shift;
    for (std::size_t i = 0; i < new_n; ++i) {
        std::uint64_t v = limbs_[i + limb_shift] >> bit_shift;
        if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size()) {
            v |= limbs_[i + limb_shift + 1] << (limb_bits - bit_shift);
        }
        limbs_[i] = v;
    }
    limbs_.resize(new_n);
    trim();
    return *this;
}

bigint& bigint::mul_small(std::uint64_t m) {
    if (m == 0 || is_zero()) {
        limbs_.clear();
        return *this;
    }
    std::uint64_t carry = 0;
    for (auto& limb : limbs_) {
        const __uint128_t prod = static_cast<__uint128_t>(limb) * m + carry;
        limb = static_cast<std::uint64_t>(prod);
        carry = static_cast<std::uint64_t>(prod >> 64);
    }
    if (carry) limbs_.push_back(carry);
    return *this;
}

std::uint64_t bigint::divmod_small(std::uint64_t d) {
    require(d != 0, "bigint::divmod_small: division by zero");
    std::uint64_t rem = 0;
    for (std::size_t i = limbs_.size(); i-- > 0;) {
        const __uint128_t cur = (static_cast<__uint128_t>(rem) << 64) | limbs_[i];
        limbs_[i] = static_cast<std::uint64_t>(cur / d);
        rem = static_cast<std::uint64_t>(cur % d);
    }
    trim();
    return rem;
}

bigint bigint::mul(const bigint& o) const {
    if (is_zero() || o.is_zero()) return bigint{};
    bigint out;
    out.limbs_.assign(limbs_.size() + o.limbs_.size(), 0);
    for (std::size_t i = 0; i < limbs_.size(); ++i) {
        std::uint64_t carry = 0;
        for (std::size_t j = 0; j < o.limbs_.size(); ++j) {
            const __uint128_t cur = static_cast<__uint128_t>(limbs_[i]) * o.limbs_[j] +
                                    out.limbs_[i + j] + carry;
            out.limbs_[i + j] = static_cast<std::uint64_t>(cur);
            carry = static_cast<std::uint64_t>(cur >> 64);
        }
        out.limbs_[i + o.limbs_.size()] += carry;
    }
    out.trim();
    return out;
}

}  // namespace anole
