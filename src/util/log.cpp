#include "util/log.h"

namespace anole {

namespace {
log_level g_level = log_level::warn;
}

log_level get_log_level() noexcept { return g_level; }
void set_log_level(log_level lvl) noexcept { g_level = lvl; }

const char* to_string(log_level lvl) noexcept {
    switch (lvl) {
        case log_level::trace: return "TRACE";
        case log_level::debug: return "DEBUG";
        case log_level::info: return "INFO";
        case log_level::warn: return "WARN";
        case log_level::err: return "ERROR";
        case log_level::off: return "OFF";
    }
    return "?";
}

namespace detail {
void log_emit(log_level lvl, const std::string& msg) {
    std::cerr << "[" << to_string(lvl) << "] " << msg << "\n";
}
}  // namespace detail

}  // namespace anole
