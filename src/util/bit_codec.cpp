#include "util/bit_codec.h"

#include <bit>

namespace anole {

void bit_writer::put_gamma(std::uint64_t v) {
    require(v >= 1, "bit_writer::put_gamma: value must be >= 1");
    // floor(log2 v), same derivation gamma_bits (bit_codec.h) uses.
    const auto len = static_cast<std::size_t>(std::bit_width(v) - 1);
    for (std::size_t i = 0; i < len; ++i) put_bit(false);  // unary prefix
    put_bit(true);                                         // stop bit = MSB of v
    for (std::size_t i = len; i-- > 0;) put_bit(((v >> i) & 1u) != 0);
}

void bit_writer::put_dyadic(const dyadic& d) {
    put_gamma0(d.exponent());
    const bigint& m = d.mantissa();
    const std::size_t mb = m.bit_length();
    put_gamma0(mb);
    for (std::size_t i = mb; i-- > 0;) put_bit(m.bit(i));
}

std::uint64_t bit_reader::get_gamma() {
    std::size_t len = 0;
    while (!get_bit()) ++len;
    std::uint64_t v = 1;
    for (std::size_t i = 0; i < len; ++i) v = (v << 1) | (get_bit() ? 1u : 0u);
    return v;
}

dyadic bit_reader::get_dyadic() {
    const std::uint64_t exp = get_gamma0();
    const std::uint64_t mb = get_gamma0();
    bigint m;
    for (std::uint64_t i = 0; i < mb; ++i) {
        m <<= 1;
        if (get_bit()) m += bigint(1);
    }
    return dyadic(std::move(m), static_cast<std::size_t>(exp));
}

std::size_t encoded_dyadic_bits(const dyadic& d) noexcept {
    const std::size_t mb = d.mantissa().bit_length();
    return gamma0_bits(d.exponent()) + gamma0_bits(mb) + mb;
}

}  // namespace anole
