// anole — statistics helpers for the experiment harness.
//
// Experiments run multiple seeds per configuration; benches report
// mean/median/stddev/min/max and simple regressions (measured cost vs a
// predicted asymptotic form) so the tables can show measured/predicted
// ratios the way EXPERIMENTS.md records them.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/error.h"

namespace anole {

// Accumulates samples; all queries are O(n log n) worst case (sorting for
// order statistics) on an explicit copy, so accumulation stays O(1).
class sample_stats {
public:
    void add(double x) { xs_.push_back(x); }

    [[nodiscard]] std::size_t count() const noexcept { return xs_.size(); }
    [[nodiscard]] bool empty() const noexcept { return xs_.empty(); }
    [[nodiscard]] double mean() const;
    [[nodiscard]] double variance() const;  // sample variance (n-1 denominator)
    [[nodiscard]] double stddev() const;
    [[nodiscard]] double min() const;
    [[nodiscard]] double max() const;
    [[nodiscard]] double median() const { return percentile(50.0); }
    // Linear-interpolated percentile, p in [0, 100].
    [[nodiscard]] double percentile(double p) const;
    [[nodiscard]] const std::vector<double>& samples() const noexcept { return xs_; }

private:
    std::vector<double> xs_;
};

// Least-squares fit y ≈ a*x (through the origin): returns a.
// Used to estimate the constant in "messages ≈ a * sqrt(n*tmix/phi)".
[[nodiscard]] double fit_through_origin(std::span<const double> x,
                                        std::span<const double> y);

// Ordinary least squares y ≈ a + b*x; returns {a, b}.
struct linear_fit_result {
    double intercept;
    double slope;
    double r2;  // coefficient of determination
};
[[nodiscard]] linear_fit_result linear_fit(std::span<const double> x,
                                           std::span<const double> y);

// log-log slope: fits log y ≈ a + b log x, returns b. Estimates the
// empirical polynomial exponent of a scaling curve. All inputs must be > 0.
[[nodiscard]] double loglog_slope(std::span<const double> x, std::span<const double> y);

}  // namespace anole
