// anole — arbitrary-precision unsigned integers.
//
// Why this exists: the Revocable LE algorithm (paper §5.2, Algorithm 7)
// diffuses node "potentials" that are averaged with share fraction
// 1/(2k^{1+ε}) per neighbor per round. After r rounds a potential is a
// rational with denominator (2k^{1+ε})^r — it needs ω(log n) bits and the
// paper explicitly transmits it *bit by bit* under CONGEST. Floating point
// would silently destroy the conservation invariant (Σ potentials is
// constant) that Lemma 3 rests on, so we implement exact dyadic rationals
// (util/dyadic.h) on top of this unsigned bigint.
//
// Scope: unsigned only, little-endian base-2^64 limbs, the operations the
// library needs (add/sub/compare/shift/small-multiply/bit ops) plus
// decimal I/O for diagnostics. Not a general bignum; see tests for the
// contract.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/error.h"

namespace anole {

class bigint {
public:
    // --- construction ---
    bigint() = default;                       // value 0
    bigint(std::uint64_t v) {                 // NOLINT(google-explicit-constructor)
        if (v != 0) limbs_.push_back(v);      // implicit: uint64 -> bigint is value-preserving
    }

    [[nodiscard]] static bigint from_decimal(const std::string& s);

    // 2^k
    [[nodiscard]] static bigint pow2(std::size_t k);

    // --- observers ---
    [[nodiscard]] bool is_zero() const noexcept { return limbs_.empty(); }

    // Number of significant bits; bit_length(0) == 0.
    [[nodiscard]] std::size_t bit_length() const noexcept;

    // Number of trailing zero bits; undefined (throws) for zero.
    [[nodiscard]] std::size_t trailing_zeros() const;

    [[nodiscard]] bool bit(std::size_t i) const noexcept;

    // Truncates to the low 64 bits.
    [[nodiscard]] std::uint64_t low64() const noexcept {
        return limbs_.empty() ? 0 : limbs_[0];
    }

    // Returns true iff the value fits in 64 bits.
    [[nodiscard]] bool fits64() const noexcept { return limbs_.size() <= 1; }

    // Best-effort conversion to double (may lose precision / overflow to inf).
    [[nodiscard]] double to_double() const noexcept;

    [[nodiscard]] std::string to_decimal() const;
    [[nodiscard]] std::string to_hex() const;

    // --- comparison ---
    [[nodiscard]] int compare(const bigint& o) const noexcept;
    friend bool operator==(const bigint& a, const bigint& b) noexcept {
        return a.compare(b) == 0;
    }
    friend bool operator!=(const bigint& a, const bigint& b) noexcept {
        return a.compare(b) != 0;
    }
    friend bool operator<(const bigint& a, const bigint& b) noexcept {
        return a.compare(b) < 0;
    }
    friend bool operator<=(const bigint& a, const bigint& b) noexcept {
        return a.compare(b) <= 0;
    }
    friend bool operator>(const bigint& a, const bigint& b) noexcept {
        return a.compare(b) > 0;
    }
    friend bool operator>=(const bigint& a, const bigint& b) noexcept {
        return a.compare(b) >= 0;
    }

    // --- arithmetic ---
    bigint& operator+=(const bigint& o);
    // Precondition: *this >= o (unsigned subtraction).
    bigint& operator-=(const bigint& o);
    bigint& operator<<=(std::size_t bits);
    bigint& operator>>=(std::size_t bits);
    bigint& mul_small(std::uint64_t m);
    // Divides by small divisor, returns remainder. Precondition: d != 0.
    std::uint64_t divmod_small(std::uint64_t d);

    friend bigint operator+(bigint a, const bigint& b) { return a += b; }
    friend bigint operator-(bigint a, const bigint& b) { return a -= b; }
    friend bigint operator<<(bigint a, std::size_t k) { return a <<= k; }
    friend bigint operator>>(bigint a, std::size_t k) { return a >>= k; }

    // Full multiplication (schoolbook); used only in tests/diagnostics.
    [[nodiscard]] bigint mul(const bigint& o) const;

    // Raw limb access for hashing/serialization.
    [[nodiscard]] const std::vector<std::uint64_t>& limbs() const noexcept { return limbs_; }

private:
    void trim() noexcept {
        while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
    }
    std::vector<std::uint64_t> limbs_;  // little-endian, no trailing zero limbs
};

}  // namespace anole
