// anole — minimal leveled logger for the experiment harness.
//
// Deliberately tiny: benchmarks and examples print structured tables via
// util/table.h; the logger exists for optional progress/diagnostic chatter
// that must be easy to silence in tests. Not thread-safe by design — the
// simulator is single-threaded (synchronous rounds), and benches log from
// the main thread only.
#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace anole {

enum class log_level { trace = 0, debug = 1, info = 2, warn = 3, err = 4, off = 5 };

// Global minimum level; messages below it are dropped.
log_level get_log_level() noexcept;
void set_log_level(log_level lvl) noexcept;

const char* to_string(log_level lvl) noexcept;

namespace detail {
void log_emit(log_level lvl, const std::string& msg);

class log_line {
public:
    log_line(log_level lvl) : lvl_(lvl), live_(lvl >= get_log_level()) {}
    ~log_line() {
        if (live_) log_emit(lvl_, out_.str());
    }
    log_line(const log_line&) = delete;
    log_line& operator=(const log_line&) = delete;

    template <class T>
    log_line& operator<<(const T& v) {
        if (live_) out_ << v;
        return *this;
    }

private:
    log_level lvl_;
    bool live_;
    std::ostringstream out_;
};
}  // namespace detail

inline detail::log_line log_trace() { return detail::log_line(log_level::trace); }
inline detail::log_line log_debug() { return detail::log_line(log_level::debug); }
inline detail::log_line log_info() { return detail::log_line(log_level::info); }
inline detail::log_line log_warn() { return detail::log_line(log_level::warn); }
inline detail::log_line log_error() { return detail::log_line(log_level::err); }

}  // namespace anole
