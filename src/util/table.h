// anole — aligned text tables + CSV for bench output.
//
// Every bench binary prints (a) a human-readable aligned table mirroring
// the paper's Table 1 row structure and (b) optionally machine-readable
// CSV (--csv). This keeps EXPERIMENTS.md diffable against fresh runs.
#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

#include "util/error.h"

namespace anole {

class text_table {
public:
    explicit text_table(std::vector<std::string> headers)
        : headers_(std::move(headers)) {
        require(!headers_.empty(), "text_table: no headers");
    }

    void add_row(std::vector<std::string> cells) {
        require(cells.size() == headers_.size(),
                "text_table::add_row: cell count != header count");
        rows_.push_back(std::move(cells));
    }

    [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }
    [[nodiscard]] const std::vector<std::string>& header() const noexcept {
        return headers_;
    }
    [[nodiscard]] const std::vector<std::vector<std::string>>& rows() const noexcept {
        return rows_;
    }

    // Aligned, boxed with '-' rules; right-aligns cells that parse as numbers.
    void print(std::ostream& os) const;
    // RFC-4180-ish CSV (quotes cells containing comma/quote/newline).
    void print_csv(std::ostream& os) const;
    // JSON: {"title": ..., "rows": [{header: cell, ...}, ...]} — one
    // object per row keyed by header, all values as strings (the
    // BENCH_*.json trajectory schema; see docs/BENCHMARKS.md).
    void print_json(std::ostream& os, const std::string& title) const;

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

// Formatting helpers used by benches: fixed decimals, engineering-style
// thousands grouping for counters, compact scientific for big values.
[[nodiscard]] std::string fmt_fixed(double v, int decimals);
[[nodiscard]] std::string fmt_count(std::uint64_t v);     // 1234567 -> "1,234,567"
[[nodiscard]] std::string fmt_sci(double v, int sig = 3); // 1.23e+06
[[nodiscard]] std::string fmt_ratio(double v);            // 2 decimals + 'x'

}  // namespace anole
