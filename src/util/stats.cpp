#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace anole {

double sample_stats::mean() const {
    require(!xs_.empty(), "sample_stats::mean: no samples");
    double s = 0;
    for (double x : xs_) s += x;
    return s / static_cast<double>(xs_.size());
}

double sample_stats::variance() const {
    require(xs_.size() >= 2, "sample_stats::variance: need >= 2 samples");
    const double m = mean();
    double s = 0;
    for (double x : xs_) s += (x - m) * (x - m);
    return s / static_cast<double>(xs_.size() - 1);
}

double sample_stats::stddev() const { return std::sqrt(variance()); }

double sample_stats::min() const {
    require(!xs_.empty(), "sample_stats::min: no samples");
    return *std::min_element(xs_.begin(), xs_.end());
}

double sample_stats::max() const {
    require(!xs_.empty(), "sample_stats::max: no samples");
    return *std::max_element(xs_.begin(), xs_.end());
}

double sample_stats::percentile(double p) const {
    require(!xs_.empty(), "sample_stats::percentile: no samples");
    require(p >= 0.0 && p <= 100.0, "sample_stats::percentile: p out of [0,100]");
    std::vector<double> sorted = xs_;
    std::sort(sorted.begin(), sorted.end());
    if (sorted.size() == 1) return sorted[0];
    const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const double frac = rank - static_cast<double>(lo);
    if (lo + 1 >= sorted.size()) return sorted.back();
    return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

double fit_through_origin(std::span<const double> x, std::span<const double> y) {
    require(x.size() == y.size() && !x.empty(),
            "fit_through_origin: size mismatch or empty");
    double num = 0, den = 0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        num += x[i] * y[i];
        den += x[i] * x[i];
    }
    require(den > 0, "fit_through_origin: degenerate x");
    return num / den;
}

linear_fit_result linear_fit(std::span<const double> x, std::span<const double> y) {
    require(x.size() == y.size() && x.size() >= 2,
            "linear_fit: need >= 2 equal-length samples");
    const auto n = static_cast<double>(x.size());
    double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        sx += x[i];
        sy += y[i];
        sxx += x[i] * x[i];
        sxy += x[i] * y[i];
        syy += y[i] * y[i];
    }
    const double den = n * sxx - sx * sx;
    require(std::abs(den) > 1e-12, "linear_fit: degenerate x");
    const double b = (n * sxy - sx * sy) / den;
    const double a = (sy - b * sx) / n;
    double ss_res = 0;
    const double ybar = sy / n;
    double ss_tot = 0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        const double pred = a + b * x[i];
        ss_res += (y[i] - pred) * (y[i] - pred);
        ss_tot += (y[i] - ybar) * (y[i] - ybar);
    }
    const double r2 = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0;
    return {a, b, r2};
}

double loglog_slope(std::span<const double> x, std::span<const double> y) {
    require(x.size() == y.size() && x.size() >= 2,
            "loglog_slope: need >= 2 equal-length samples");
    std::vector<double> lx(x.size()), ly(y.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
        require(x[i] > 0 && y[i] > 0, "loglog_slope: inputs must be positive");
        lx[i] = std::log(x[i]);
        ly[i] = std::log(y[i]);
    }
    return linear_fit(lx, ly).slope;
}

}  // namespace anole
