// anole — rng.h is header-only; this TU exists so the library has an
// object to archive and to host any future out-of-line definitions.
#include "util/rng.h"

namespace anole {
// Intentionally empty.
}  // namespace anole
