// anole — out-of-line RNG pieces: the binomial / multinomial samplers.
//
// The generators themselves are header-only; what lives here is the
// distributional sampling the walk ensembles use to replace per-token
// coin flips (see rng.h). The binomial sampler follows the classic
// split: exact bit-counting for the dyadic p = 1/2 small-count case,
// BINV inversion while n·p is small, and Hörmann's BTRS transformed
// rejection (the same algorithm TensorFlow and friends ship) for the
// bulk regime. BTRS draws a couple of uniforms per sample regardless of
// n, which is what makes million-token walk rounds O(degree).
#include "util/rng.h"

#include <bit>
#include <cmath>

namespace anole {

namespace {

// log(k!) minus Stirling's main term log(sqrt(2π)) + (k+½)log(k+1) − (k+1):
// table below 10, 3-term series above (error < 1e-10 there).
double stirling_tail(double k) {
    static constexpr double table[] = {
        0.08106146679532726, 0.04134069595540929, 0.02767792568499834,
        0.02079067210376509, 0.01664469118982119, 0.01387612882307075,
        0.01189670994589177, 0.01041126526197209, 0.00925546218271273,
        0.00833056343336287};
    if (k < 10) return table[static_cast<int>(k)];
    const double kp1 = k + 1;
    const double inv_kp1sq = 1.0 / (kp1 * kp1);
    return (1.0 / 12 - (1.0 / 360 - (1.0 / 1260) * inv_kp1sq) * inv_kp1sq) / kp1;
}

// BINV: climb the CDF from 0. Needs q^n representable, i.e. n·p modest
// (callers guarantee n·p < 10 with p <= 1/2, so q^n >= e^-20).
std::uint64_t binomial_inversion(xoshiro256ss& rng, std::uint64_t n, double p) {
    const double q = 1 - p;
    const double s = p / q;
    const double a = (static_cast<double>(n) + 1) * s;
    const double r0 = std::pow(q, static_cast<double>(n));
    for (;;) {
        double r = r0;
        double u = rng.uniform01();
        std::uint64_t k = 0;
        while (u > r) {
            u -= r;
            ++k;
            if (k > n) break;  // float round-off at the far tail: resample
            r *= a / static_cast<double>(k) - s;
        }
        if (k <= n) return k;
    }
}

// BTRS (Hörmann 1993): transformed rejection with a squeeze. Valid for
// n·p >= 10 and p <= 1/2; ~1.15 uniform pairs per sample.
std::uint64_t binomial_btrs(xoshiro256ss& rng, std::uint64_t n, double p) {
    const double nd = static_cast<double>(n);
    const double spq = std::sqrt(nd * p * (1 - p));
    const double b = 1.15 + 2.53 * spq;
    const double a = -0.0873 + 0.0248 * b + 0.01 * p;
    const double c = nd * p + 0.5;
    const double v_r = 0.92 - 4.2 / b;
    const double r = p / (1 - p);
    const double alpha = (2.83 + 5.1 / b) * spq;
    const double m = std::floor((nd + 1) * p);
    for (;;) {
        const double u = rng.uniform01() - 0.5;
        double v = rng.uniform01();
        const double us = 0.5 - std::fabs(u);
        const double kd = std::floor((2 * a / us + b) * u + c);
        if (us >= 0.07 && v <= v_r) return static_cast<std::uint64_t>(kd);
        if (kd < 0 || kd > nd) continue;
        v = std::log(v * alpha / (a / (us * us) + b));
        const double accept =
            (m + 0.5) * std::log((m + 1) / (r * (nd - m + 1))) +
            (nd + 1) * std::log((nd - m + 1) / (nd - kd + 1)) +
            (kd + 0.5) * std::log(r * (nd - kd + 1) / (kd + 1)) +
            stirling_tail(m) + stirling_tail(nd - m) - stirling_tail(kd) -
            stirling_tail(nd - kd);
        if (v <= accept) return static_cast<std::uint64_t>(kd);
    }
}

}  // namespace

std::uint64_t binomial(xoshiro256ss& rng, std::uint64_t n, double p) {
    require(p >= 0.0 && p <= 1.0, "binomial: p outside [0, 1]");
    if (n == 0 || p <= 0.0) return 0;
    if (p >= 1.0) return n;
    // The lazy-walk coin: exactly n fair bits, counted. Exact in the
    // dyadic sense the protocol proofs use, and one RNG word per 64
    // trials — cheaper than rejection-sampling setup up to ~1k trials.
    if (p == 0.5 && n <= 1024) {
        std::uint64_t left = n;
        std::uint64_t hits = 0;
        while (left >= 64) {
            hits += static_cast<std::uint64_t>(std::popcount(rng()));
            left -= 64;
        }
        if (left > 0) {
            hits += static_cast<std::uint64_t>(
                std::popcount(rng() & ((1ull << left) - 1)));
        }
        return hits;
    }
    if (p > 0.5) return n - binomial(rng, n, 1 - p);
    // A handful of trials: individual coins beat any setup cost.
    if (n <= 16) {
        std::uint64_t hits = 0;
        for (std::uint64_t t = 0; t < n; ++t) hits += rng.uniform01() < p ? 1 : 0;
        return hits;
    }
    if (static_cast<double>(n) * p < 10.0) return binomial_inversion(rng, n, p);
    return binomial_btrs(rng, n, p);
}

namespace {

// Exact uniform multinomial by recursive halving: items landing in the
// left half of the bin range are Binomial(count, left/size) of the total,
// then each half recurses independently. Same draw count as the naive
// conditional chain (bins - 1), but the probabilities are all ~1/2 and
// the counts shrink geometrically — so most draws hit the popcount fast
// path instead of full rejection sampling.
void multinomial_halve(xoshiro256ss& rng, std::uint64_t count,
                       std::span<std::uint64_t> out) {
    if (out.size() == 1) {
        out[0] = count;
        return;
    }
    if (count == 0) {
        for (auto& c : out) c = 0;
        return;
    }
    const std::size_t mid = out.size() / 2;
    const std::uint64_t left =
        binomial(rng, count,
                 static_cast<double>(mid) / static_cast<double>(out.size()));
    multinomial_halve(rng, left, out.first(mid));
    multinomial_halve(rng, count - left, out.subspan(mid));
}

}  // namespace

void multinomial_uniform(xoshiro256ss& rng, std::uint64_t count,
                         std::span<std::uint64_t> out) {
    require(!out.empty(), "multinomial_uniform: no bins");
    multinomial_halve(rng, count, out);
}

}  // namespace anole
