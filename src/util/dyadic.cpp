#include "util/dyadic.h"

#include <algorithm>
#include <cmath>

#include "util/bit_codec.h"

namespace anole {

dyadic& dyadic::operator+=(const dyadic& o) {
    if (o.is_zero()) return *this;
    if (is_zero()) {
        *this = o;
        return *this;
    }
    // Align to the common denominator 2^max(exp_, o.exp_).
    const std::size_t e = std::max(exp_, o.exp_);
    bigint a = mant_ << (e - exp_);
    bigint b = o.mant_ << (e - o.exp_);
    a += b;
    mant_ = std::move(a);
    exp_ = e;
    normalize();
    return *this;
}

dyadic& dyadic::operator-=(const dyadic& o) {
    require(compare(o) >= 0, "dyadic::operator-=: would underflow (non-negative type)");
    if (o.is_zero()) return *this;
    const std::size_t e = std::max(exp_, o.exp_);
    bigint a = mant_ << (e - exp_);
    bigint b = o.mant_ << (e - o.exp_);
    a -= b;
    mant_ = std::move(a);
    exp_ = e;
    normalize();
    return *this;
}

int dyadic::compare(const dyadic& o) const {
    if (is_zero() && o.is_zero()) return 0;
    if (is_zero()) return -1;
    if (o.is_zero()) return 1;
    // Compare m_a / 2^ea vs m_b / 2^eb  <=>  m_a << (e-ea) vs m_b << (e-eb).
    const std::size_t e = std::max(exp_, o.exp_);
    // Cheap pre-check on integer bit lengths to avoid shifting when the
    // magnitudes are far apart.
    const std::size_t la = mant_.bit_length() + (e - exp_);
    const std::size_t lb = o.mant_.bit_length() + (e - o.exp_);
    if (la != lb) return la < lb ? -1 : 1;
    const bigint a = mant_ << (e - exp_);
    const bigint b = o.mant_ << (e - o.exp_);
    return a.compare(b);
}

double dyadic::to_double() const noexcept {
    if (is_zero()) return 0.0;
    // Use the top ~64 bits of the mantissa to avoid overflowing to inf for
    // long mantissas, then scale by the adjusted exponent.
    const std::size_t bl = mant_.bit_length();
    if (bl <= 1000) {
        return mant_.to_double() * std::pow(2.0, -static_cast<double>(exp_));
    }
    const bigint top = mant_ >> (bl - 64);
    const double frac = top.to_double();
    return frac * std::pow(2.0, static_cast<double>(bl - 64) - static_cast<double>(exp_));
}

std::size_t dyadic::wire_bits() const noexcept {
    return encoded_dyadic_bits(*this);
}

std::string dyadic::to_string() const {
    return mant_.to_decimal() + "/2^" + std::to_string(exp_);
}

}  // namespace anole
