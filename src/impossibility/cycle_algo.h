// anole — a stop-by-T(n) Leader Election algorithm on cycles, in the
// execution model of Theorem 2's proof.
//
// The impossibility proof (paper §5.1) treats an algorithm as a Mealy
// machine: per round every node draws ONE random bit, observes the states
// its two cycle neighbors exposed in the previous round, and transitions
// deterministically. To *demonstrate* the theorem operationally we need a
// concrete algorithm A in this model that (a) knows the cycle size n,
// (b) solves LE on C_n whp, and (c) stops by a fixed T(n) — then the
// pumping-wheel construction (pumping_wheel.h) shows how tape replication
// makes the very same A elect two leaders on a larger cycle C_N whose
// size it does not know.
//
//   A: for B = 4⌈log2 n⌉ rounds, accumulate one random bit per round into
//      an ID (the proof's "one random bit per round" assumption, verbatim);
//      then flood the running maximum for ⌈n/2⌉ + 1 rounds (a cycle has
//      radius ⌈n/2⌉); stop at T(n) = B + ⌈n/2⌉ + 1 and raise the flag iff
//      the maximum equals the own ID. Unique maximum whp ⇒ one leader.
//
// States are plain comparable structs so the Figure 2 invariant ("node at
// distance x from the core's center has the same configuration as the
// C_n node at distance x mod n") can be checked field-for-field.
#pragma once

#include <cstdint>
#include <tuple>

#include "util/error.h"

namespace anole {

// Full per-node configuration; equality = configuration equality.
struct cyc_state {
    std::uint64_t id = 0;        // bits accumulated so far
    std::uint64_t max_seen = 0;  // flood maximum
    bool stopped = false;
    bool leader = false;

    friend bool operator==(const cyc_state& a, const cyc_state& b) noexcept {
        return std::tie(a.id, a.max_seen, a.stopped, a.leader) ==
               std::tie(b.id, b.max_seen, b.stopped, b.leader);
    }
};

class cycle_le_algo {
public:
    // The algorithm is *told* the cycle has `n` nodes — exactly the
    // knowledge Theorem 2 says cannot be replaced.
    explicit cycle_le_algo(std::size_t n) : n_(n) {
        require(n >= 3, "cycle_le_algo: n >= 3");
        bits_ = 4 * ceil_log2(n);
    }

    [[nodiscard]] std::size_t n() const noexcept { return n_; }
    [[nodiscard]] std::uint64_t id_bits() const noexcept { return bits_; }
    // Stop time T(n): ID assembly + radius flood + settle round.
    [[nodiscard]] std::uint64_t stop_time() const noexcept {
        return bits_ + (n_ + 1) / 2 + 1;
    }

    [[nodiscard]] cyc_state initial() const noexcept { return {}; }

    // One deterministic transition given the round number, the node's own
    // random bit for this round, and both neighbors' previous states.
    [[nodiscard]] cyc_state step(std::uint64_t round, const cyc_state& self, bool bit,
                                 const cyc_state& left, const cyc_state& right) const {
        cyc_state s = self;
        if (s.stopped) return s;
        if (round < bits_) {
            s.id = (s.id << 1) | (bit ? 1u : 0u);
            s.max_seen = s.id;
        } else {
            if (left.max_seen > s.max_seen) s.max_seen = left.max_seen;
            if (right.max_seen > s.max_seen) s.max_seen = right.max_seen;
        }
        if (round + 1 >= stop_time()) {
            s.stopped = true;
            s.leader = s.max_seen == s.id;
        }
        return s;
    }

private:
    [[nodiscard]] static std::uint64_t ceil_log2(std::size_t v) noexcept {
        std::uint64_t b = 0;
        std::size_t t = 1;
        while (t < v) {
            t <<= 1;
            ++b;
        }
        return b == 0 ? 1 : b;
    }

    std::size_t n_;
    std::uint64_t bits_;
};

}  // namespace anole
