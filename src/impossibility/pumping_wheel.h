// anole — the probabilistic pumping wheel (paper §5.1, Theorem 2,
// Figures 1 and 2), executable.
//
// Machinery:
//   * cycle_machine — runs a cycle_le_algo on a cycle of any size, each
//     node drawing bits from its own bit_source (live RNG, recorder, or
//     replayed tape); exposes the full configuration history so the
//     Figure 2 invariant can be checked.
//   * find_winning_execution — runs A on C_n with tape recorders until
//     the execution wins (unique leader); returns the per-node tapes of
//     the winning configuration Γ.
//   * build_witness_layout — the Figure 1 geometry on C_N: W witnesses of
//     2T(n) + 2n nodes (core = middle 2n, two n-node segments), pairwise
//     separated by 2T(n) fresh-random nodes, N = W · (4T(n) + 2n).
//   * run_pumped — assigns witness node at cyclic offset q the tape
//     τ_{q mod n} of the winning C_n execution (a locally C_n-consistent
//     labeling: every witness-interior node sees exactly the neighborhood
//     its C_n counterpart saw, so by induction — the Figure 2 invariant —
//     the core reproduces two copies of Γ), fresh random tapes elsewhere,
//     runs A for T(n) rounds, and reports every leader and every
//     invariant violation.
//
// The theorem's probabilistic content — that *fresh* random tapes realize
// some witness's replication spontaneously once
// N ≥ (1 + ln(1/c)/c² · 2^{2nT}) (4T + 2n) — is what makes the bound
// astronomical; required_cycle_size() evaluates it so the bench can print
// why the demonstration seeds tapes instead of waiting for the universe
// to end. Either way the conclusion is the same and is checked by
// execution: the algorithm cannot distinguish C_N from C_n, stops, and
// elects two leaders.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "impossibility/cycle_algo.h"
#include "util/error.h"
#include "util/rng.h"

namespace anole {

// Runs a cycle_le_algo on a cycle of `size` nodes with per-node bit
// sources. Node i's neighbors are (i-1) mod size and (i+1) mod size.
class cycle_machine {
public:
    cycle_machine(const cycle_le_algo& algo, std::size_t size)
        : algo_(&algo), size_(size) {
        require(size >= 3, "cycle_machine: size >= 3");
        states_.assign(size, algo.initial());
        sources_.resize(size);
    }

    // All nodes draw fresh bits derived from (seed, node index).
    void seed_fresh(std::uint64_t seed) {
        for (std::size_t i = 0; i < size_; ++i) {
            sources_[i] = std::make_unique<rng_bit_source>(derive_seed(seed, i, 0xC1C));
        }
    }
    // All nodes record their bits (for find_winning_execution).
    void seed_recorders(std::uint64_t seed) {
        recorders_.clear();
        recorders_.resize(size_);
        for (std::size_t i = 0; i < size_; ++i) {
            auto rec = std::make_unique<tape_recorder>(derive_seed(seed, i, 0xEC0));
            recorders_[i] = rec.get();
            sources_[i] = std::move(rec);
        }
    }
    void set_tape(std::size_t i, std::vector<bool> tape) {
        require(i < size_, "cycle_machine::set_tape: out of range");
        sources_[i] = std::make_unique<tape_player>(std::move(tape));
    }
    void set_fresh(std::size_t i, std::uint64_t seed) {
        require(i < size_, "cycle_machine::set_fresh: out of range");
        sources_[i] = std::make_unique<rng_bit_source>(derive_seed(seed, i, 0xF2E));
    }

    // Runs `rounds` synchronous rounds.
    void run(std::uint64_t rounds) {
        std::vector<cyc_state> next(size_);
        for (std::uint64_t r = 0; r < rounds; ++r) {
            for (std::size_t i = 0; i < size_; ++i) {
                require(sources_[i] != nullptr, "cycle_machine: node without bits");
                const bool bit = sources_[i]->next_bit();
                const cyc_state& left = states_[(i + size_ - 1) % size_];
                const cyc_state& right = states_[(i + 1) % size_];
                next[i] = algo_->step(round_, states_[i], bit, left, right);
            }
            states_.swap(next);
            ++round_;
        }
    }

    [[nodiscard]] std::size_t size() const noexcept { return size_; }
    [[nodiscard]] std::uint64_t round() const noexcept { return round_; }
    [[nodiscard]] const cyc_state& state(std::size_t i) const { return states_[i]; }
    [[nodiscard]] std::vector<std::size_t> leaders() const {
        std::vector<std::size_t> out;
        for (std::size_t i = 0; i < size_; ++i) {
            if (states_[i].leader) out.push_back(i);
        }
        return out;
    }
    [[nodiscard]] std::size_t stopped_count() const {
        std::size_t c = 0;
        for (const auto& s : states_) c += s.stopped ? 1 : 0;
        return c;
    }
    // Tapes recorded so far (seed_recorders mode only).
    [[nodiscard]] std::vector<std::vector<bool>> tapes() const {
        std::vector<std::vector<bool>> out;
        out.reserve(recorders_.size());
        for (const auto* rec : recorders_) {
            require(rec != nullptr, "cycle_machine::tapes: not recording");
            out.push_back(rec->tape());
        }
        return out;
    }

private:
    const cycle_le_algo* algo_;
    std::size_t size_;
    std::uint64_t round_ = 0;
    std::vector<cyc_state> states_;
    std::vector<std::unique_ptr<bit_source>> sources_;
    std::vector<tape_recorder*> recorders_;  // non-owning views
};

// --- winning executions ------------------------------------------------------

struct winning_execution {
    std::vector<std::vector<bool>> tapes;  // per C_n node, length T(n)
    std::vector<cyc_state> final_states;   // the winning configuration Γ
    std::size_t leader_index = 0;
    std::size_t attempts = 0;
};

// Repeats fresh executions of A on C_n until one elects a unique leader
// (usually the first attempt); records the tapes realizing Γ.
[[nodiscard]] winning_execution find_winning_execution(const cycle_le_algo& algo,
                                                       std::uint64_t seed,
                                                       std::size_t max_attempts = 1000);

// --- the Figure 1 layout -----------------------------------------------------

struct witness_layout {
    std::size_t n = 0;           // the size A believes in
    std::uint64_t t = 0;         // T(n)
    std::size_t witnesses = 0;   // W
    std::size_t witness_len = 0; // 2T + 2n
    std::size_t stride = 0;      // 4T + 2n (witness + separator)
    std::size_t big_n = 0;       // N = W · stride

    // Witness w occupies positions [w*stride, w*stride + witness_len).
    [[nodiscard]] std::size_t witness_begin(std::size_t w) const { return w * stride; }
    // Core = middle 2n positions of the witness.
    [[nodiscard]] std::size_t core_begin(std::size_t w) const {
        return witness_begin(w) + static_cast<std::size_t>(t);
    }
    [[nodiscard]] bool in_witness(std::size_t pos) const {
        return pos % stride < witness_len;
    }
};

[[nodiscard]] witness_layout build_witness_layout(const cycle_le_algo& algo,
                                                  std::size_t witnesses);

// --- the pumped execution ----------------------------------------------------

struct pumped_result {
    std::size_t leaders_total = 0;       // flags raised anywhere on C_N
    std::size_t stopped_total = 0;       // nodes that stopped by T(n)
    std::size_t witnesses_with_two = 0;  // witnesses whose core elected >= 2
    bool invariant_held = true;          // Figure 2 check over all cores
    std::size_t invariant_checked = 0;   // node-comparisons performed
    witness_layout layout;
};

// Builds C_N per the layout, seeds witness nodes with tapes τ_{q mod n}
// (q = offset within the witness) and separators with fresh randomness,
// runs A for T(n) rounds, verifies the Figure 2 invariant on every core
// node (state must equal the C_n counterpart's final state in Γ), and
// counts leaders.
[[nodiscard]] pumped_result run_pumped(const cycle_le_algo& algo,
                                       const winning_execution& win,
                                       std::size_t witnesses, std::uint64_t seed);

// Theorem 2's sufficient cycle size for *spontaneous* double election
// with probability > 1 - c: N = (1 + ln(1/c)/c² · 2^{2nT}) (4T + 2n).
// Returned as log2(N) (the value itself does not fit in any integer).
[[nodiscard]] double required_cycle_size_log2(const cycle_le_algo& algo, double c);

}  // namespace anole
