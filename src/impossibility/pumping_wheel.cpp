#include "impossibility/pumping_wheel.h"

#include <cmath>

namespace anole {

winning_execution find_winning_execution(const cycle_le_algo& algo, std::uint64_t seed,
                                         std::size_t max_attempts) {
    for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
        cycle_machine m(algo, algo.n());
        m.seed_recorders(derive_seed(seed, attempt, 0x717));
        m.run(algo.stop_time());
        const auto leaders = m.leaders();
        if (leaders.size() == 1 && m.stopped_count() == algo.n()) {
            winning_execution win;
            win.tapes = m.tapes();
            win.final_states.reserve(algo.n());
            for (std::size_t i = 0; i < algo.n(); ++i) {
                win.final_states.push_back(m.state(i));
            }
            win.leader_index = leaders[0];
            win.attempts = attempt + 1;
            return win;
        }
    }
    throw error("find_winning_execution: no winning execution found");
}

witness_layout build_witness_layout(const cycle_le_algo& algo, std::size_t witnesses) {
    require(witnesses >= 1, "build_witness_layout: witnesses >= 1");
    witness_layout lay;
    lay.n = algo.n();
    lay.t = algo.stop_time();
    lay.witnesses = witnesses;
    lay.witness_len = 2 * static_cast<std::size_t>(lay.t) + 2 * lay.n;
    lay.stride = lay.witness_len + 2 * static_cast<std::size_t>(lay.t);
    lay.big_n = witnesses * lay.stride;
    return lay;
}

pumped_result run_pumped(const cycle_le_algo& algo, const winning_execution& win,
                         std::size_t witnesses, std::uint64_t seed) {
    const witness_layout lay = build_witness_layout(algo, witnesses);
    require(win.tapes.size() == lay.n, "run_pumped: tape count != n");

    cycle_machine m(algo, lay.big_n);
    // Separators: fresh randomness — the adversary controls nothing there.
    m.seed_fresh(derive_seed(seed, 0, 0xB16));
    // Witnesses: locally C_n-consistent tape replication (Figure 1): the
    // node at offset q within the witness runs τ_{q mod n}, so every
    // witness-interior node sees exactly the neighborhood its C_n
    // counterpart saw.
    for (std::size_t w = 0; w < lay.witnesses; ++w) {
        const std::size_t base = lay.witness_begin(w);
        for (std::size_t q = 0; q < lay.witness_len; ++q) {
            m.set_tape(base + q, win.tapes[q % lay.n]);
        }
    }

    m.run(lay.t);

    pumped_result res;
    res.layout = lay;
    res.leaders_total = m.leaders().size();
    res.stopped_total = m.stopped_count();

    // Figure 2 invariant at t = T(n): every core node's configuration
    // equals its C_n counterpart's configuration in Γ.
    for (std::size_t w = 0; w < lay.witnesses; ++w) {
        const std::size_t cb = lay.core_begin(w);
        std::size_t leaders_in_core = 0;
        for (std::size_t q = 0; q < 2 * lay.n; ++q) {
            const std::size_t pos = cb + q;
            const std::size_t offset_in_witness = pos - lay.witness_begin(w);
            const cyc_state& got = m.state(pos);
            const cyc_state& want = win.final_states[offset_in_witness % lay.n];
            ++res.invariant_checked;
            if (!(got == want)) res.invariant_held = false;
            if (got.leader) ++leaders_in_core;
        }
        if (leaders_in_core >= 2) ++res.witnesses_with_two;
    }
    return res;
}

double required_cycle_size_log2(const cycle_le_algo& algo, double c) {
    require(c > 0 && c < 1, "required_cycle_size_log2: 0 < c < 1");
    const double n = static_cast<double>(algo.n());
    const double t = static_cast<double>(algo.stop_time());
    // N = (1 + ln(1/c)/c² · 2^{2nT}) · (4T + 2n); in log2:
    const double log2_reps = std::log2(std::log(1.0 / c) / (c * c)) + 2.0 * n * t;
    const double log2_stride = std::log2(4.0 * t + 2.0 * n);
    return log2_reps + log2_stride;
}

}  // namespace anole
