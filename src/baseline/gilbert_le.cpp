#include "baseline/gilbert_le.h"

#include <algorithm>

namespace anole {

void gilbert_node::queue_kill(std::uint64_t id) {
    auto it = crumbs_.find(id);
    if (it == crumbs_.end() || it->second.kill_sent) return;
    it->second.kill_sent = true;
    const port_id p = it->second.from;
    out_[p].kills.push_back(id);
    out_used_[p] = 1;
}

void gilbert_node::on_round(node_ctx<gl_msg>& ctx, inbox_view<gl_msg> inbox) {
    if (!inited_) {
        inited_ = true;
        candidate_ = ctx.rng().bernoulli(p_->cand_prob());
        if (candidate_) {
            id_ = ctx.rng().range(1, p_->id_space());
            mark_max_ = id_;
            tokens_[id_] = p_->tokens();
            crumbs_[id_] = {0, true};  // own ID: kills terminate here
        }
        out_.resize(degree_);
        out_used_.assign(degree_, 0);
    }

    const std::uint64_t r = ctx.round();
    if (r >= p_->total_rounds()) {
        leader_ = candidate_ && !killed_ && mark_max_ == id_;
        ctx.halt();
        return;
    }
    if (inbox.empty() && tokens_.empty()) return;  // idle fast path

    for (auto& m : out_) {
        m.walks.clear();
        m.kills.clear();
    }
    std::fill(out_used_.begin(), out_used_.end(), 0);

    // --- receive ---
    for (const auto& [port, msg] : inbox) {
        for (const auto& [wid, cnt] : msg.walks) {
            // Breadcrumb: first arrival port points back toward the
            // candidate (strictly earlier in time, hence acyclic).
            crumbs_.try_emplace(wid, crumb{port, false});
            if (wid > mark_max_) {
                // This territory is dominated: kill every weaker
                // candidate we hold a breadcrumb for.
                mark_max_ = wid;
                for (const auto& [cid, cr] : crumbs_) {
                    (void)cr;
                    if (cid < wid) queue_kill(cid);
                }
            } else if (wid < mark_max_) {
                queue_kill(wid);  // token walked into stronger territory
            }
            tokens_[wid] += cnt;  // tokens keep walking regardless
        }
        for (std::uint64_t kid : msg.kills) {
            if (candidate_ && kid == id_) {
                killed_ = true;
            } else {
                queue_kill(kid);  // forward along the breadcrumb chain
            }
        }
    }
    if (candidate_ && mark_max_ > id_) killed_ = true;

    // --- move tokens (walk phase only; drain phase only forwards kills) ---
    if (r < p_->walk_len()) {
        for (auto& [wid, cnt] : tokens_) {
            std::uint64_t staying = 0;
            for (std::uint64_t t = 0; t < cnt; ++t) {
                if (ctx.rng().bit()) {
                    const auto p = static_cast<port_id>(ctx.rng().below(degree_));
                    bool found = false;
                    for (auto& w : out_[p].walks) {
                        if (w.first == wid) {
                            ++w.second;
                            found = true;
                            break;
                        }
                    }
                    if (!found) out_[p].walks.emplace_back(wid, 1);
                    out_used_[p] = 1;
                } else {
                    ++staying;
                }
            }
            cnt = staying;
        }
        // Drop empty entries to keep the map small.
        for (auto it = tokens_.begin(); it != tokens_.end();) {
            it = it->second == 0 ? tokens_.erase(it) : std::next(it);
        }
    } else {
        tokens_.clear();  // walk phase over; only kills continue
    }

    for (port_id p = 0; p < degree_; ++p) {
        if (out_used_[p]) ctx.send(p, out_[p]);
    }
}

gilbert_result run_gilbert(const graph& g, const gilbert_params& params,
                           std::uint64_t seed, congest_budget budget,
                           const dynamics_spec& dynamics) {
    params.validate();
    require(params.n == g.num_nodes(), "run_gilbert: params.n must equal graph size");

    engine<gilbert_node> eng(g, seed, budget);
    if (dynamics.enabled()) eng.set_dynamics(dynamics, seed);
    eng.spawn([&](std::size_t u) {
        return gilbert_node(g.degree(static_cast<node_id>(u)), params);
    });
    const auto probe = [&eng](std::size_t u) {
        const auto& nd = eng.node(u);
        node_status st;
        st.decided = nd.is_leader() || nd.killed();
        st.leader = nd.is_leader();
        st.own_id = nd.id();
        return st;
    };
    eng.set_status_probe(probe);
    eng.set_phase("gilbert");
    eng.run_rounds(params.total_rounds() + 1);

    gilbert_result res;
    res.rounds = eng.round();
    res.totals = eng.metrics().total();
    std::uint64_t max_cand = 0;
    for (std::size_t u = 0; u < eng.num_nodes(); ++u) {
        if (!eng.node_present(u) || eng.node_crashed(u)) continue;
        const auto& nd = eng.node(u);
        if (nd.is_candidate()) {
            ++res.num_candidates;
            max_cand = std::max(max_cand, nd.id());
        }
        if (nd.is_leader()) {
            ++res.num_leaders;
            res.leader_id = nd.id();
        }
    }
    res.success = res.num_leaders == 1;
    res.max_candidate_won = res.success && res.leader_id == max_cand;
    res.oracle = run_oracle(eng, probe, {.round_cap = params.total_rounds() + 1});
    return res;
}

}  // namespace anole
