// anole — Gilbert/Robinson/Sourav-style Leader Election baseline
// (PODC 2018 [10]: O(tmix·√n·log^{7/2} n) messages, the comparator that
// Theorem 1 improves on).
//
// Substitution note (DESIGN.md): we do not have [10]'s text; this module
// implements the structure as summarized *in the reproduced paper*:
// random-ID candidates spread tokens by random walks, and walk sets of
// different candidates meet whp on well-connected graphs ("territories
// which could be efficiently discovered by a small number of independent
// random walks", §1). Concretely:
//
//   * candidates (probability c·log n / n) draw IDs from {1..n⁴} and
//     launch x_g = √n·log^{3/2} n lazy random-walk tokens for
//     L = c·tmix·log n rounds — #cands · x_g · L matches the
//     O(tmix·√n·log^{7/2} n) message envelope;
//   * every node remembers, per candidate ID seen, the port of first
//     token arrival (breadcrumb). Breadcrumb chains point strictly back
//     in arrival time, hence terminate at the candidate;
//   * when a node holds evidence of two candidates A < B (a B mark and an
//     A breadcrumb, in either arrival order) it sends kill(A) along A's
//     breadcrumb; kills are forwarded (deduplicated) along breadcrumbs
//     until they reach A, whose leader hopes die;
//   * after the walk phase an equal-length drain phase lets kills finish;
//     a candidate that was never killed raises the flag.
//
// Tokens of different candidates traversing a link in the same round are
// batched into one message (≤ #candidates = O(log n) entries, so
// O(log² n) bits; the fragmenting budget charges the excess per CONGEST).
// Unlike the cautious-broadcast protocol, this baseline has no bounded
// territories: its message count scales with x_g·L = Θ̃(tmix·√n), which
// is exactly the gap the E2 experiment measures.
#pragma once

#include <cmath>
#include <cstdint>
#include <map>
#include <vector>

#include "graph/graph.h"
#include "sim/engine.h"
#include "sim/oracle.h"
#include "util/bit_codec.h"

namespace anole {

struct gilbert_params {
    std::size_t n = 0;        // 0 = auto-filled by the ScenarioRunner
    std::uint64_t tmix = 0;   // 0 = auto-filled; validate() demands >= 1
    double c = 1.0;           // walk length constant
    double cand_c = 1.0;      // candidate probability constant
    double tokens_mult = 1.0; // scales x_g

    [[nodiscard]] double log2n() const { return std::log2(static_cast<double>(n)); }
    [[nodiscard]] std::uint64_t id_space() const {
        const auto nn = static_cast<std::uint64_t>(n);
        return nn * nn * nn * nn;
    }
    [[nodiscard]] double cand_prob() const {
        return std::min(1.0, cand_c * log2n() / static_cast<double>(n));
    }
    [[nodiscard]] std::uint64_t tokens() const {  // x_g = √n · log^{3/2} n
        const double v = std::sqrt(static_cast<double>(n)) * std::pow(log2n(), 1.5);
        return std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(std::ceil(tokens_mult * v)));
    }
    [[nodiscard]] std::uint64_t walk_len() const {
        return std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(
                   std::ceil(c * static_cast<double>(tmix) * log2n())));
    }
    [[nodiscard]] std::uint64_t total_rounds() const { return 2 * walk_len(); }

    void validate() const {
        require(n >= 2 && n < (std::size_t{1} << 15), "gilbert_params: 2 <= n < 2^15");
        require(tmix >= 1, "gilbert_params: tmix >= 1");
    }
};

struct gl_msg {
    // Batched walk tokens (id, count) plus batched kill notices.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> walks;
    std::vector<std::uint64_t> kills;

    [[nodiscard]] std::size_t bit_size() const noexcept {
        std::size_t bits = 2;  // presence flags
        for (const auto& [id, cnt] : walks) bits += gamma0_bits(id) + gamma0_bits(cnt);
        for (std::uint64_t id : kills) bits += gamma0_bits(id);
        return bits;
    }
};

class gilbert_node {
public:
    using message_type = gl_msg;

    gilbert_node(std::size_t degree, const gilbert_params& params)
        : degree_(degree), p_(&params) {}

    void on_round(node_ctx<gl_msg>& ctx, inbox_view<gl_msg> inbox);

    [[nodiscard]] bool is_candidate() const noexcept { return candidate_; }
    [[nodiscard]] std::uint64_t id() const noexcept { return id_; }
    [[nodiscard]] bool is_leader() const noexcept { return leader_; }
    [[nodiscard]] bool killed() const noexcept { return killed_; }
    [[nodiscard]] std::size_t marks() const noexcept { return crumbs_.size(); }

private:
    struct crumb {
        port_id from;      // first-arrival port: points back toward the candidate
        bool kill_sent;    // dedup: forward each kill at most once
    };

    void queue_kill(std::uint64_t id);

    std::size_t degree_;
    const gilbert_params* p_;

    bool inited_ = false;
    bool candidate_ = false;
    bool killed_ = false;
    bool leader_ = false;
    std::uint64_t id_ = 0;
    std::uint64_t mark_max_ = 0;

    std::map<std::uint64_t, crumb> crumbs_;
    std::map<std::uint64_t, std::uint64_t> tokens_;  // id -> resident count
    // Staged per-port output, rebuilt each round.
    std::vector<gl_msg> out_;
    std::vector<char> out_used_;
};

struct gilbert_result {
    bool success = false;
    std::size_t num_candidates = 0;   // candidates among live nodes
    std::size_t num_leaders = 0;      // leaders among live nodes
    std::uint64_t leader_id = 0;
    bool max_candidate_won = false;
    std::uint64_t rounds = 0;
    phase_counters totals;
    oracle_report oracle;  // sim/oracle.h safety verdicts
};

[[nodiscard]] gilbert_result run_gilbert(const graph& g, const gilbert_params& params,
                                         std::uint64_t seed,
                                         congest_budget budget =
                                             congest_budget::fragmenting(16),
                                         const dynamics_spec& dynamics = {});

}  // namespace anole
