// anole — flooding-max baseline (the O(m)-messages / O(D)-time class).
//
// Stands in for the classic universal Leader Election algorithms of
// Kutten et al. [16] in Table 1: every node draws a random ID from
// {1..n⁴} (random IDs substitute for the unique IDs assumed there — the
// standard trick in anonymous networks with known n) and the maximum is
// flooded for diameter-many rounds; the unique maximum raises the flag.
//
// Substitution note (DESIGN.md): [16]'s O(m)-expected-message algorithm
// uses referee subsampling we do not reproduce; change-triggered flooding
// is the textbook comparator with the same Θ(m)-per-wave message shape
// and O(D) time, which is what the Table 1 / E4 experiments compare
// against. Knowledge used: n (ID range, CONGEST budget) and D (round
// count) — the same row of Table 1 assumes both.
#pragma once

#include <cstdint>

#include "graph/graph.h"
#include "sim/engine.h"
#include "sim/oracle.h"
#include "util/bit_codec.h"

namespace anole {

struct flood_msg {
    std::uint64_t id = 0;
    [[nodiscard]] std::size_t bit_size() const noexcept { return gamma0_bits(id); }
};

class flood_max_node {
public:
    using message_type = flood_msg;

    // `rounds` = diameter upper bound + 1 (the +1 delivers the last wave).
    flood_max_node(std::size_t degree, std::uint64_t id_space, std::uint64_t rounds)
        : degree_(degree), id_space_(id_space), rounds_(rounds) {}

    void on_round(node_ctx<flood_msg>& ctx, inbox_view<flood_msg> inbox) {
        if (ctx.round() == 0) {
            id_ = ctx.rng().range(1, id_space_);
            max_ = id_;
        }
        for (const auto& [port, msg] : inbox) {
            (void)port;
            if (msg.id > max_) max_ = msg.id;
        }
        if (ctx.round() >= rounds_) {
            // id_ == 0 means this instance joined after round 0 and never
            // drew an ID — it cannot claim leadership.
            leader_ = id_ != 0 && max_ == id_;
            done_ = true;
            ctx.halt();
            return;
        }
        // Change-triggered flood: re-broadcast only when the known
        // maximum improves (round 0 always broadcasts own ID).
        if (max_ != last_sent_) {
            last_sent_ = max_;
            for (port_id p = 0; p < degree_; ++p) {
                ctx.send(p, flood_msg{max_});
            }
        }
    }

    [[nodiscard]] std::uint64_t id() const noexcept { return id_; }
    [[nodiscard]] bool is_leader() const noexcept { return leader_; }
    [[nodiscard]] bool done() const noexcept { return done_; }

private:
    std::size_t degree_;
    std::uint64_t id_space_;
    std::uint64_t rounds_;
    std::uint64_t id_ = 0;
    std::uint64_t max_ = 0;
    std::uint64_t last_sent_ = 0;
    bool leader_ = false;
    bool done_ = false;
};

struct flood_result {
    bool success = false;
    std::size_t num_leaders = 0;  // leaders among live nodes
    std::uint64_t leader_id = 0;
    std::uint64_t rounds = 0;
    phase_counters totals;
    oracle_report oracle;  // sim/oracle.h safety verdicts
};

// Runs flood-max with `diameter` + 1 rounds of flooding. A non-trivial
// `dynamics` spec (sim/dynamics.h) attaches the per-round adversary; the
// round cap still bounds the run, so faulty runs end in a verdict.
[[nodiscard]] flood_result run_flood_max(const graph& g, std::uint64_t diameter,
                                         std::uint64_t seed,
                                         congest_budget budget =
                                             congest_budget::strict_log(16),
                                         const dynamics_spec& dynamics = {});

}  // namespace anole
