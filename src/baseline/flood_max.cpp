#include "baseline/flood_max.h"

namespace anole {

flood_result run_flood_max(const graph& g, std::uint64_t diameter, std::uint64_t seed,
                           congest_budget budget, const dynamics_spec& dynamics) {
    const std::size_t n = g.num_nodes();
    require(n >= 2 && n < (std::size_t{1} << 15), "run_flood_max: 2 <= n < 2^15");
    const auto nn = static_cast<std::uint64_t>(n);
    const std::uint64_t id_space = nn * nn * nn * nn;

    engine<flood_max_node> eng(g, seed, budget);
    if (dynamics.enabled()) eng.set_dynamics(dynamics, seed);
    eng.spawn([&](std::size_t u) {
        return flood_max_node(g.degree(static_cast<node_id>(u)), id_space, diameter + 1);
    });
    const auto probe = [&eng](std::size_t u) {
        const auto& nd = eng.node(u);
        node_status st;
        st.decided = nd.done();
        st.leader = nd.is_leader();
        st.own_id = nd.id();
        return st;
    };
    eng.set_status_probe(probe);
    eng.set_phase("flood");
    eng.run_until_halted(diameter + 3);

    flood_result res;
    res.rounds = eng.round();
    res.totals = eng.metrics().total();
    for (std::size_t u = 0; u < n; ++u) {
        if (!eng.node_present(u) || eng.node_crashed(u)) continue;
        if (eng.node(u).is_leader()) {
            ++res.num_leaders;
            res.leader_id = eng.node(u).id();
        }
    }
    res.success = res.num_leaders == 1;
    res.oracle = run_oracle(eng, probe, {.round_cap = diameter + 3});
    return res;
}

}  // namespace anole
