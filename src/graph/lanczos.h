// anole — sparse Lanczos eigensolver for the symmetrized lazy walk.
//
// Every protocol in the paper is parameterized by spectral quantities of
// the topology (λ₂ feeds the tmix bound, the Fiedler vector feeds the
// Φ/i(G) sweep cuts), so `profile()` needs the second eigenpair of
//
//     N = I/2 + D^{-1/2} A D^{-1/2} / 2        (symmetric, spectrum ⊆ [0,1])
//
// at sizes where power iteration with deflation (the pre-Lanczos path,
// still exported as lambda2_power / fiedler_vector_power in
// graph/spectral.h) is hopeless: its error decays like (λ₃/λ₂)^t, which
// on the low-gap families central to the paper's story (dumbbell,
// caveman, cycle) means Θ(n²)-ish matvecs. Lanczos builds a Krylov basis
// instead and extracts the Ritz pair from the tridiagonal projection —
// tens to a few hundred matvecs for the same answer.
//
// Implementation notes:
//   * The known top eigenpair (√d, 1) is deflated explicitly: every new
//     Krylov vector is orthogonalized against the unit √d vector, so the
//     largest Ritz value of T approximates λ₂ directly.
//   * Reorthogonalization: one full Gram–Schmidt pass against the stored
//     basis every step (lazier schedules let the recurrence coefficients
//     absorb re-grown parasitic components and T's spectrum drifts above
//     1), with a *selective* second pass when the first one removed a
//     macroscopic component (Kahan–Parlett: twice is enough). The basis
//     is stored anyway (the Fiedler vector is recovered from it), and
//     its size is capped, so the extra pass stays O(max_iters · n).
//   * Matvecs, dots and axpys are sharded over an optional thread_pool
//     in *fixed-size blocks* with the partial sums reduced in block
//     order, so the result is bitwise identical for every pool size
//     (including none) — the same jobs-invariance contract the engine's
//     sharded rounds keep.
//
// `tests/graph/lanczos_test.cpp` checks the Ritz pair against a dense
// Jacobi reference on all 19 zoo families and enforces the determinism
// contract.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace anole {

class thread_pool;  // sim/thread_pool.h; borrowed, never owned

struct lanczos_options {
    // Krylov budget. 0 = auto: min(n - 1, 256), clamped further when the
    // basis would exceed ~512 MB (64e6 doubles) so million-node graphs
    // stay in memory. Convergence is usually reached far earlier.
    std::size_t max_iters = 0;
    // Ritz-residual target ‖N v − θ v‖₂; the spectrum lives in [0, 1] so
    // this is an absolute eigenvalue error bound.
    double tol = 1e-9;
    std::uint64_t seed = 7;
    // Shards matvecs/reductions; nullptr = serial. Results are bitwise
    // identical either way.
    thread_pool* pool = nullptr;
};

struct lanczos_result {
    double lambda2 = 0.0;          // largest Ritz value after deflation
    std::vector<double> fiedler;   // eigenvector, D^{-1/2}-scaled (sweep-ready)
    std::size_t iterations = 0;    // Lanczos steps taken
    double residual = 0.0;         // ‖N v − θ v‖₂ of the returned pair
    bool converged = false;        // residual <= tol before the budget ran out
};

// Second eigenpair of the symmetrized lazy walk. Requires n >= 2.
// Deterministic in (g, opt.seed) and independent of opt.pool.
[[nodiscard]] lanczos_result lanczos_lambda2(const graph& g,
                                             const lanczos_options& opt = {});

}  // namespace anole
