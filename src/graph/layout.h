// anole — pool-based Barnes–Hut force-directed layout.
//
// The campaign HTML report (sim/report.h) and the topology gallery need
// graph thumbnails at zoo scale. Graphviz DOT rendering — the PR-2 path —
// is O(V²) in practice and external; this module replaces it with an
// in-tree Fruchterman–Reingold spring embedder whose repulsion pass runs
// through a Barnes–Hut quadtree, so one iteration costs O(V log V + E)
// and a 10⁵-node instance lays out in seconds.
//
// Determinism contract (the same one the engine and Lanczos keep):
//   * initial positions derive from (seed, node index) alone;
//   * the quadtree is built by inserting bodies in index order;
//   * per-node force accumulation reads shared immutable state (positions
//     + tree) and writes only its own displacement slot, so sharding the
//     force pass over a thread_pool is bitwise-identical for every pool
//     size — seed-stable coordinates across `--jobs`, test-enforced.
//
// The quadtree lives in one flat std::vector pool (no per-cell
// allocation); cells hold aggregate mass and a center-of-mass sum, and a
// depth cap turns coincident points into aggregate leaves instead of
// recursing forever. theta = 0 degenerates to the exact O(V²) pairwise
// sum, which is what the closed-form sanity tests compare against.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace anole {

class thread_pool;  // sim/thread_pool.h; borrowed, never owned

struct layout_point {
    double x = 0;
    double y = 0;
};

// --- Barnes–Hut quadtree ----------------------------------------------------

class bh_quadtree {
public:
    // Builds over `pts` (borrowed; must outlive force queries). Bodies
    // are inserted in index order — deterministic pool layout.
    void build(std::span<const layout_point> pts);

    [[nodiscard]] double total_mass() const noexcept;
    [[nodiscard]] layout_point centroid() const;
    [[nodiscard]] std::size_t cell_count() const noexcept { return cells_.size(); }

    // Approximate repulsive force k²·Σ_j m_j·(p − com_j)/|p − com_j|² on a
    // probe at p, opening cells while width/dist > theta. `self` (an index
    // into the build span, or npos) is excluded from the sum. theta = 0
    // yields the exact pairwise sum. `scratch` is the traversal stack —
    // callers in a hot loop reuse one to avoid per-query allocation.
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);
    [[nodiscard]] layout_point repulsion(layout_point p, std::size_t self, double k,
                                         double theta,
                                         std::vector<std::int32_t>& scratch) const;
    [[nodiscard]] layout_point repulsion(layout_point p, std::size_t self, double k,
                                         double theta) const;

private:
    struct cell {
        double cx = 0, cy = 0, half = 0;  // square center + half-width
        double mass = 0;                  // bodies in this subtree
        double mx = 0, my = 0;            // Σ position (divide by mass for COM)
        std::int32_t child[4] = {-1, -1, -1, -1};
        // >= 0: single-body leaf; kAggregate: coincident bodies folded at
        // the depth cap; -1: internal or empty.
        std::int32_t body = -1;
    };
    static constexpr std::int32_t kAggregate = -2;
    static constexpr int kMaxDepth = 48;

    void insert_into(std::int32_t c, std::int32_t i, int depth);
    void descend(std::int32_t c, std::int32_t i, int depth);

    std::vector<cell> cells_;
    std::span<const layout_point> pts_;
};

// --- force-directed layout --------------------------------------------------

struct layout_options {
    // 0 = auto: enough iterations for small graphs to settle, fewer at
    // scale where each one costs more (the report only needs shape).
    std::size_t iterations = 0;
    // Barnes–Hut opening angle; larger = faster/coarser. 0 = exact.
    double theta = 0.85;
    std::uint64_t seed = 1;
    // Shards the per-node force pass; nullptr = serial. Bitwise-identical
    // results for every pool size.
    thread_pool* pool = nullptr;
};

// Deterministic Fruchterman–Reingold embedding of g into [0, 1]², BH
// repulsion + CSR-edge attraction + linear cooling. O(iterations ·
// (V log V + E)) time, O(V) memory beyond the tree pool.
[[nodiscard]] std::vector<layout_point> force_layout(const graph& g,
                                                     const layout_options& opt = {});

// --- SVG rendering ----------------------------------------------------------

struct layout_svg_options {
    double width = 320;
    double height = 240;
    double margin = 10;
    // Drawing 10⁵ nodes / 10⁶ edges as DOM elements would defeat the
    // point of a fast layout; past the caps a deterministic stride sample
    // is drawn instead (every ⌈m/max_edges⌉-th edge, in edge-list order).
    std::size_t max_edges = 4000;
    std::size_t max_nodes = 20000;
    double node_radius = 1.6;
    // Presentation attributes; the report's stylesheet overrides them via
    // the "ge"/"gn" classes so thumbnails follow light/dark mode.
    std::string edge_color = "#c3c2b7";
    std::string node_color = "#2a78d6";
};

// One self-contained <svg> element (no external references).
[[nodiscard]] std::string layout_svg(const graph& g, std::span<const layout_point> pts,
                                     const layout_svg_options& opt = {});

}  // namespace anole
