// anole — spectral analysis of the lazy random walk.
//
// The paper's walk (Algorithm 5) is the *lazy uniform* walk: stay put with
// probability 1/2, else move to a uniform neighbor. Its transition matrix
// is P = I/2 + D⁻¹A/2 with stationary distribution π_i = d_i / 2m, and the
// paper defines tmix(G) as the least t with ‖P^t π0 − π*‖∞ ≤ 1/(2n) for
// every start π0 (§2).
//
// We provide:
//   * walk_distribution_step — one exact step of π ← πP (sparse, O(m));
//   * mixing_time_simulated — direct evaluation of the §2 definition from
//     every point-mass start (exact; O(n · tmix · m), for small/medium n)
//     or from a heuristic subset of extremal starts (certified as a lower
//     bound estimate, in practice tight);
//   * lambda2_lazy — second-largest eigenvalue of the symmetrized lazy
//     walk via power iteration with deflation, giving the spectral upper
//     bound tmix ≤ log(2n·√(dmax/dmin)·n)/(1−λ₂)-style estimates;
//   * fiedler_vector — eigenvector for λ₂ of the normalized adjacency,
//     feeding the sweep cuts in graph/properties.h.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace anole {

// One step of the lazy uniform walk distribution: out[v] =
// pi[v]/2 + Σ_{u~v} pi[u]/(2 deg(u)). `pi` and the result sum to the same
// total (exactly in real arithmetic; to ~1e-15 in double).
[[nodiscard]] std::vector<double> walk_distribution_step(const graph& g,
                                                         const std::vector<double>& pi);

// Stationary distribution of the lazy uniform walk: d_i / 2m.
[[nodiscard]] std::vector<double> walk_stationary(const graph& g);

struct mixing_time_options {
    // If true, try every point-mass start (exact per the §2 definition);
    // otherwise only extremal starts (double-sweep endpoints, min/max
    // degree nodes, plus `extra_starts` random ones).
    bool exhaustive_starts = false;
    std::size_t extra_starts = 4;
    std::uint64_t seed = 1;
    // Hard cap on simulated steps (throws anole::error beyond it).
    std::uint64_t max_steps = 50'000'000;
};

// tmix per the paper's definition (∞-norm gap 1/(2n)). With
// exhaustive_starts this is exact; otherwise it is a lower-bound estimate
// that is tight on all families we ship (worst starts are extremal).
[[nodiscard]] std::uint64_t mixing_time_simulated(const graph& g,
                                                  const mixing_time_options& opt = {});

// Second-largest eigenvalue (in absolute value all eigenvalues of the lazy
// matrix are >= 0, so this is λ₂) of the symmetrized lazy walk
// N = I/2 + D^{-1/2} A D^{-1/2} / 2, via power iteration with deflation of
// the known top eigenvector (√d). `iters` power steps (default auto).
[[nodiscard]] double lambda2_lazy(const graph& g, std::size_t iters = 0);

// Spectral upper bound on tmix from λ₂: ceil( log(n²·√(dmax/dmin)·2) / (1−λ₂) ).
[[nodiscard]] std::uint64_t mixing_time_spectral_bound(const graph& g);

// Fiedler-style embedding: eigenvector of the *second* eigenvalue of the
// normalized adjacency D^{-1/2} A D^{-1/2}, components scaled by D^{-1/2}
// so sweep cuts cut the right measure. Deterministic given `seed`.
[[nodiscard]] std::vector<double> fiedler_vector(const graph& g, std::size_t iters = 0,
                                                 std::uint64_t seed = 7);

// --- one-stop profile used by benches ---

struct graph_profile {
    std::size_t n = 0;
    std::size_t m = 0;
    std::uint32_t diameter = 0;      // exact when n small, else upper bound
    double conductance = 0;          // exact when n <= 20, else sweep upper bound
    double isoperimetric = 0;        // likewise
    std::uint64_t mixing_time = 0;   // simulated per §2 definition
    double lambda2 = 0;
    bool exact_cuts = false;         // whether Φ/i(G) are exact
};

// Computes the profile, honoring generator-provided graph_facts when
// available (they win over estimates; estimates fill gaps).
[[nodiscard]] graph_profile profile(const graph& g, std::uint64_t seed = 1);

}  // namespace anole
