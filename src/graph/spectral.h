// anole — spectral analysis of the lazy random walk.
//
// The paper's walk (Algorithm 5) is the *lazy uniform* walk: stay put with
// probability 1/2, else move to a uniform neighbor. Its transition matrix
// is P = I/2 + D⁻¹A/2 with stationary distribution π_i = d_i / 2m, and the
// paper defines tmix(G) as the least t with ‖P^t π0 − π*‖∞ ≤ 1/(2n) for
// every start π0 (§2).
//
// We provide:
//   * walk_distribution_step — one exact step of π ← πP (sparse, O(m));
//   * mixing_time_simulated — direct evaluation of the §2 definition from
//     every point-mass start (exact; O(n · tmix · m), for small/medium n)
//     or from a heuristic subset of extremal starts (certified as a lower
//     bound estimate, in practice tight); independent starts shard over
//     an optional thread_pool with a jobs-invariant max-reduction;
//   * mixing_time_sampled — §2 distance estimated from a token *ensemble*
//     (the PR 3 binomial/multinomial machinery) instead of a dense
//     π-vector: O(n + min(tokens, 2m)) RNG work per step, which beats the
//     dense O(m) float pass exactly on the large dense-ish families where
//     the dense path is the wall;
//   * lambda2_lazy / fiedler_vector — second eigenpair of the symmetrized
//     lazy walk via sparse Lanczos (graph/lanczos.h); the pre-Lanczos
//     power-iteration-with-deflation paths remain as lambda2_power /
//     fiedler_vector_power (now with residual-based early exit);
//   * profile() — the one-stop measurement bundle with per-field
//     provenance, a cost model that picks the cheapest adequate tmix
//     method, and thread-pool sharding throughout.
//
// docs/PROFILES.md describes the pipeline, the estimator error semantics
// and the on-disk cache layered above this module by sim/profile_cache.h.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace anole {

class thread_pool;  // sim/thread_pool.h; borrowed, never owned

// One step of the lazy uniform walk distribution: out[v] =
// pi[v]/2 + Σ_{u~v} pi[u]/(2 deg(u)). `pi` and the result sum to the same
// total (exactly in real arithmetic; to ~1e-15 in double).
[[nodiscard]] std::vector<double> walk_distribution_step(const graph& g,
                                                         const std::vector<double>& pi);

// Stationary distribution of the lazy uniform walk: d_i / 2m.
[[nodiscard]] std::vector<double> walk_stationary(const graph& g);

struct mixing_time_options {
    // If true, try every point-mass start (exact per the §2 definition);
    // otherwise only extremal starts (double-sweep endpoints, min/max
    // degree nodes, plus `extra_starts` random ones).
    bool exhaustive_starts = false;
    std::size_t extra_starts = 4;
    std::uint64_t seed = 1;
    // Hard cap on simulated steps per start (throws anole::error beyond it).
    std::uint64_t max_steps = 50'000'000;
    // Shards independent starts; nullptr = serial. The per-start step
    // counts are deterministic and the reduction is a max, so the result
    // is identical for every pool size.
    thread_pool* pool = nullptr;
};

// tmix per the paper's definition (∞-norm gap 1/(2n)). With
// exhaustive_starts this is exact; otherwise it is a lower-bound estimate
// that is tight on all families we ship (worst starts are extremal).
[[nodiscard]] std::uint64_t mixing_time_simulated(const graph& g,
                                                  const mixing_time_options& opt = {});

struct sampled_mixing_options {
    // Ensemble size per start. 0 = auto: sized so the per-node sampling
    // noise (≈ √(π_max/K)) sits well below the 1/(2n) decision threshold,
    // i.e. K ≈ 256 · π_max · n². On near-regular families π_max ≈ 1/n so
    // K = O(n); the estimator's per-step cost O(n + min(K, 2m)) then beats
    // the dense path's O(m) floats whenever m ≫ n.
    std::uint64_t tokens = 0;
    std::size_t extra_starts = 4;
    std::uint64_t seed = 1;
    // Hard cap on steps per start (throws anole::error beyond it).
    std::uint64_t max_steps = 50'000'000;
    thread_pool* pool = nullptr;  // shards independent starts
};

// tmix estimated from token counts of a simulated ensemble (extremal
// starts, same start heuristic as mixing_time_simulated). Sampling noise
// makes this an *estimate*, biased slightly upward near the threshold
// (noise inflates the measured gap); tests cross-validate it against the
// exact dense evaluation on small n. Deterministic in (g, opt) and
// independent of opt.pool.
[[nodiscard]] std::uint64_t mixing_time_sampled(const graph& g,
                                                const sampled_mixing_options& opt = {});

// Second-largest eigenvalue (all eigenvalues of the lazy matrix are >= 0,
// so this is λ₂) of the symmetrized lazy walk
// N = I/2 + D^{-1/2} A D^{-1/2} / 2, via sparse Lanczos (graph/lanczos.h).
// `iters` caps the Krylov budget (default auto); `pool` shards matvecs
// with bitwise-identical results.
[[nodiscard]] double lambda2_lazy(const graph& g, std::size_t iters = 0,
                                  thread_pool* pool = nullptr);

// Pre-Lanczos path: power iteration with deflation of the known top
// eigenvector (√d), kept as a cross-check and for the perf baseline.
// Stops early once the Rayleigh residual ‖Nv − ρv‖₂ drops below `tol`
// (computed from quantities the iteration already has, no extra matvec).
[[nodiscard]] double lambda2_power(const graph& g, std::size_t iters = 0,
                                   double tol = 1e-9);

// Spectral upper bound on tmix from λ₂: ceil( log(n²·√(dmax/dmin)·2) / (1−λ₂) ).
[[nodiscard]] std::uint64_t mixing_time_spectral_bound(const graph& g);
// Same bound from an already-computed λ₂ (profile() reuses its Lanczos run).
[[nodiscard]] std::uint64_t mixing_time_spectral_bound(const graph& g, double lambda2);

// Fiedler-style embedding: eigenvector of the *second* eigenvalue of the
// normalized adjacency D^{-1/2} A D^{-1/2}, components scaled by D^{-1/2}
// so sweep cuts cut the right measure. Deterministic given `seed`;
// Lanczos-backed (pool shards matvecs, bitwise identical).
[[nodiscard]] std::vector<double> fiedler_vector(const graph& g, std::size_t iters = 0,
                                                 std::uint64_t seed = 7,
                                                 thread_pool* pool = nullptr);

// Pre-Lanczos power-iteration path with residual-based early exit.
[[nodiscard]] std::vector<double> fiedler_vector_power(const graph& g,
                                                       std::size_t iters = 0,
                                                       std::uint64_t seed = 7,
                                                       double tol = 1e-9);

// --- one-stop profile used by benches ---

// How a profile field was obtained. The numeric contract per method:
// fact/exact are true values; sweep is a certified upper bound (cuts) or
// BFS upper bound (diameter); simulated is the §2 evaluation from
// extremal starts (lower-bound estimate, tight in practice); sampled is
// the token-ensemble estimate; spectral is the λ₂ upper bound on tmix.
enum class profile_method : std::uint8_t {
    fact,       // generator-provided graph_facts
    exact,      // exhaustive computation of the definition
    sweep,      // sweep-cut / double-sweep upper bound
    simulated,  // dense §2 simulation from extremal starts
    sampled,    // token-ensemble §2 estimate
    spectral,   // λ₂-derived upper bound
};

[[nodiscard]] const char* to_string(profile_method m) noexcept;
// Parses to_string's output; throws anole::error on unknown names.
[[nodiscard]] profile_method profile_method_from_string(const std::string& s);

struct graph_profile {
    std::size_t n = 0;
    std::size_t m = 0;
    std::uint32_t diameter = 0;      // exact when n·m small, else upper bound
    double conductance = 0;          // exact when n <= 20, else sweep upper bound
    double isoperimetric = 0;        // likewise
    std::uint64_t mixing_time = 0;   // per §2; see mixing_method for how
    double lambda2 = 0;
    bool exact_cuts = false;         // compat: conductance is fact/exact

    // Provenance (new): how each field above was obtained.
    profile_method diameter_method = profile_method::exact;
    profile_method conductance_method = profile_method::exact;
    profile_method isoperimetric_method = profile_method::exact;
    profile_method mixing_method = profile_method::exact;
    bool lambda2_converged = false;  // Lanczos residual met its tolerance

    // Single-line JSON object; doubles printed with %.17g so a parse via
    // util/json (std::from_chars) round-trips them bitwise.
    [[nodiscard]] std::string to_json() const;
};

struct profile_options {
    std::uint64_t seed = 1;
    // Shards eigensolver matvecs and independent tmix starts. Results are
    // identical for every pool configuration (including none).
    thread_pool* pool = nullptr;
    // Approximate work budget (inner-loop operations) for *measuring*
    // tmix; when both the dense and the sampled estimator would exceed
    // it, profile() reports the spectral bound instead.
    std::uint64_t tmix_work_budget = 400'000'000;
    // Below this n, tmix is evaluated exhaustively from every start.
    std::size_t exhaustive_tmix_n = 128;
    // All-pairs BFS diameter only while n·m stays under this.
    std::uint64_t exact_diameter_work = 50'000'000;
    // Exact-enumeration cut bound (must stay <= 24, see properties.h).
    std::size_t exact_cuts_n = 20;
};

// Computes the profile, honoring generator-provided graph_facts when
// available (they win over estimates; estimates fill gaps).
[[nodiscard]] graph_profile profile(const graph& g, std::uint64_t seed = 1);
// Full-control overload (note: no default argument — profile(g) binds to
// the seed overload above).
[[nodiscard]] graph_profile profile(const graph& g, const profile_options& opt);

}  // namespace anole
