// anole — combinatorial graph analyzers.
//
// The protocols take (linear upper bounds on) tmix, Φ and i(G) as inputs
// (paper §4 and Theorem 3); this module provides exact values for small
// graphs and certified bounds for larger ones:
//
//   * BFS machinery: distances, eccentricity, exact diameter (all-pairs
//     for small n, double-sweep lower + eccentricity upper otherwise).
//   * conductance Φ(G) (volume form, paper §2) and isoperimetric number
//     i(G) (Mohar [23]): exact by subset enumeration for n <= ~24,
//     sweep-cut upper bounds via the Fiedler vector otherwise
//     (graph/spectral.h computes the vector).
//
// Sweep-cut values are *upper bounds* on the true minimum — exactly the
// "linear upper bound" inputs the algorithms are specified to accept.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace anole {

// BFS distances from src; unreachable = max (cannot happen: connected).
[[nodiscard]] std::vector<std::uint32_t> bfs_distances(const graph& g, node_id src);

[[nodiscard]] std::uint32_t eccentricity(const graph& g, node_id src);

// Exact diameter. O(n·m) — use for n up to a few thousand.
[[nodiscard]] std::uint32_t diameter_exact(const graph& g);

// [lower, upper] via double sweep + center eccentricity. O(m) per sweep.
struct diameter_bounds {
    std::uint32_t lower;
    std::uint32_t upper;
};
[[nodiscard]] diameter_bounds diameter_estimate(const graph& g);

struct degree_stats {
    std::size_t min;
    std::size_t max;
    double mean;
};
[[nodiscard]] degree_stats degrees(const graph& g);

// --- cut quality measures (paper §2 definitions) ---

// Conductance of a single cut S (indicator vector, true = in S):
// |∂S| / min(Vol(S), Vol(S̄)). Throws if S is empty or everything.
[[nodiscard]] double cut_conductance(const graph& g, const std::vector<bool>& in_s);

// Edge-isoperimetric ratio of S: |∂S| / |S| with |S| <= n/2 enforced by
// flipping to the complement if needed.
[[nodiscard]] double cut_isoperimetric(const graph& g, const std::vector<bool>& in_s);

// Exact Φ(G) by enumerating all 2^(n-1)-1 cuts. Requires n <= 24.
[[nodiscard]] double conductance_exact(const graph& g);

// Exact i(G) by enumeration. Requires n <= 24.
[[nodiscard]] double isoperimetric_exact(const graph& g);

// Sweep-cut upper bounds from an embedding (typically the Fiedler vector):
// sorts nodes by score, evaluates every prefix cut, returns the best.
[[nodiscard]] double conductance_sweep(const graph& g, const std::vector<double>& score);
[[nodiscard]] double isoperimetric_sweep(const graph& g, const std::vector<double>& score);

}  // namespace anole
