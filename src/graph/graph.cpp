#include "graph/graph.h"

#include <algorithm>
#include <numeric>
#include <queue>
#include <set>

namespace anole {

graph::graph(std::size_t n, const std::vector<std::pair<node_id, node_id>>& edges,
             std::string name)
    : name_(std::move(name)) {
    require(n >= 1, "graph: need at least one node");
    require(n <= std::size_t{1} << 31, "graph: too many nodes for node_id");

    // Validate edges and count degrees.
    std::vector<std::size_t> deg(n, 0);
    std::set<std::pair<node_id, node_id>> seen;
    for (auto [u, v] : edges) {
        require(u < n && v < n, "graph: edge endpoint out of range");
        require(u != v, "graph: self-loops not allowed");
        auto key = std::minmax(u, v);
        require(seen.insert({key.first, key.second}).second,
                "graph: parallel edges not allowed");
        ++deg[u];
        ++deg[v];
    }

    offsets_.assign(n + 1, 0);
    std::partial_sum(deg.begin(), deg.end(), offsets_.begin() + 1);
    nbr_.resize(2 * edges.size());
    rev_port_.resize(2 * edges.size());

    std::vector<std::size_t> fill(n, 0);
    for (auto [u, v] : edges) {
        const auto pu = static_cast<port_id>(fill[u]++);
        const auto pv = static_cast<port_id>(fill[v]++);
        nbr_[offsets_[u] + pu] = v;
        nbr_[offsets_[v] + pv] = u;
        rev_port_[offsets_[u] + pu] = pv;
        rev_port_[offsets_[v] + pv] = pu;
    }
    max_degree_ = deg.empty() ? 0 : *std::max_element(deg.begin(), deg.end());

    // Connectivity check (model requirement, paper §2).
    if (n > 1) {
        std::vector<char> vis(n, 0);
        std::queue<node_id> q;
        q.push(0);
        vis[0] = 1;
        std::size_t cnt = 1;
        while (!q.empty()) {
            const node_id u = q.front();
            q.pop();
            for (node_id w : neighbors(u)) {
                if (!vis[w]) {
                    vis[w] = 1;
                    ++cnt;
                    q.push(w);
                }
            }
        }
        require(cnt == n, "graph: must be connected");
    }
}

port_id graph::port_to(node_id u, node_id v) const {
    for (port_id p = 0; p < degree(u); ++p) {
        if (neighbor(u, p) == v) return p;
    }
    throw error("graph::port_to: not an edge");
}

void fill_port_permutation(std::uint64_t seed, node_id u, std::span<port_id> perm) {
    std::iota(perm.begin(), perm.end(), 0);
    xoshiro256ss rng(derive_seed(seed, u, 0x9097));
    for (std::size_t i = perm.size(); i > 1; --i) {
        std::swap(perm[i - 1], perm[rng.below(i)]);
    }
}

graph graph::with_permuted_ports(std::uint64_t seed) const {
    // Full copy first, then permute the adjacency in place: building the
    // result from the private default constructor and assigning fields one
    // by one left every later-added member (cached profiles, auxiliary
    // adjacency) half-initialized — copy-then-permute cannot drift.
    graph out = *this;
    out.name_ = name_ + "+permports";

    const std::size_t n = num_nodes();
    // Per-node permutation of its port slots.
    std::vector<std::vector<port_id>> perm(n);  // perm[u][old_port] = new_port
    for (node_id u = 0; u < n; ++u) {
        perm[u].resize(degree(u));
        fill_port_permutation(seed, u, perm[u]);
    }
    for (node_id u = 0; u < n; ++u) {
        for (port_id p = 0; p < degree(u); ++p) {
            const node_id v = neighbor(u, p);
            const port_id q = reverse_port(u, p);
            const port_id np = perm[u][p];
            out.nbr_[offsets_[u] + np] = v;
            out.rev_port_[offsets_[u] + np] = perm[v][q];
        }
    }
    return out;
}

std::vector<std::pair<node_id, node_id>> graph::edge_list() const {
    std::vector<std::pair<node_id, node_id>> out;
    out.reserve(num_edges());
    for (node_id u = 0; u < num_nodes(); ++u) {
        for (node_id v : neighbors(u)) {
            if (u < v) out.emplace_back(u, v);
        }
    }
    return out;
}

}  // namespace anole
