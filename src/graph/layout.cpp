#include "graph/layout.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "sim/thread_pool.h"
#include "util/rng.h"

namespace anole {

// --- quadtree ---------------------------------------------------------------

void bh_quadtree::build(std::span<const layout_point> pts) {
    pts_ = pts;
    cells_.clear();
    if (pts.empty()) return;

    double minx = std::numeric_limits<double>::infinity(), maxx = -minx;
    double miny = minx, maxy = maxx;
    for (const layout_point& p : pts) {
        minx = std::min(minx, p.x);
        maxx = std::max(maxx, p.x);
        miny = std::min(miny, p.y);
        maxy = std::max(maxy, p.y);
    }
    cell root;
    root.cx = (minx + maxx) / 2;
    root.cy = (miny + maxy) / 2;
    // Square root cell; the epsilon keeps boundary points strictly inside
    // so the quadrant test never oscillates.
    root.half = std::max({maxx - minx, maxy - miny, 1e-12}) / 2 * (1 + 1e-9);
    cells_.reserve(pts.size() * 2 + 16);
    cells_.push_back(root);
    for (std::size_t i = 0; i < pts.size(); ++i) {
        insert_into(0, static_cast<std::int32_t>(i), 0);
    }
}

void bh_quadtree::insert_into(std::int32_t c, std::int32_t i, int depth) {
    cells_[c].mass += 1;
    cells_[c].mx += pts_[static_cast<std::size_t>(i)].x;
    cells_[c].my += pts_[static_cast<std::size_t>(i)].y;
    if (cells_[c].mass == 1) {  // first body in a fresh cell
        cells_[c].body = i;
        return;
    }
    if (cells_[c].body == kAggregate) return;  // depth-capped pile-up
    if (cells_[c].body >= 0) {
        if (depth >= kMaxDepth) {
            // Coincident (or near-coincident beyond double resolution)
            // bodies: fold into an aggregate leaf instead of splitting.
            cells_[c].body = kAggregate;
            return;
        }
        // Occupied leaf becomes internal: push the resident body down one
        // level (its mass is already counted in this cell).
        const std::int32_t other = cells_[c].body;
        cells_[c].body = -1;
        descend(c, other, depth);
    }
    descend(c, i, depth);
}

void bh_quadtree::descend(std::int32_t c, std::int32_t i, int depth) {
    const layout_point& p = pts_[static_cast<std::size_t>(i)];
    const int q = (p.x >= cells_[c].cx ? 1 : 0) | (p.y >= cells_[c].cy ? 2 : 0);
    std::int32_t ch = cells_[c].child[q];
    if (ch < 0) {
        ch = static_cast<std::int32_t>(cells_.size());
        cell child;
        const double h = cells_[c].half / 2;
        child.cx = cells_[c].cx + ((q & 1) != 0 ? h : -h);
        child.cy = cells_[c].cy + ((q & 2) != 0 ? h : -h);
        child.half = h;
        cells_.push_back(child);  // may reallocate: re-index below
        cells_[c].child[q] = ch;
    }
    insert_into(ch, i, depth + 1);
}

double bh_quadtree::total_mass() const noexcept {
    return cells_.empty() ? 0.0 : cells_[0].mass;
}

layout_point bh_quadtree::centroid() const {
    if (cells_.empty() || cells_[0].mass == 0) return {0, 0};
    return {cells_[0].mx / cells_[0].mass, cells_[0].my / cells_[0].mass};
}

layout_point bh_quadtree::repulsion(layout_point p, std::size_t self, double k,
                                    double theta,
                                    std::vector<std::int32_t>& scratch) const {
    layout_point f{0, 0};
    if (cells_.empty()) return f;
    const double k2 = k * k;
    scratch.clear();
    scratch.push_back(0);
    while (!scratch.empty()) {
        const cell& c = cells_[static_cast<std::size_t>(scratch.back())];
        scratch.pop_back();
        if (c.mass <= 0) continue;
        double mass = c.mass;
        double comx = c.mx / c.mass, comy = c.my / c.mass;
        if (c.body >= 0) {  // single-body leaf
            if (static_cast<std::size_t>(c.body) == self) continue;
        } else if (c.body != kAggregate) {  // internal: maybe open
            const double dx0 = p.x - comx, dy0 = p.y - comy;
            const double d2 = dx0 * dx0 + dy0 * dy0;
            const double width = 2 * c.half;
            if (width * width > theta * theta * d2) {
                for (const std::int32_t ch : c.child) {
                    if (ch >= 0) scratch.push_back(ch);
                }
                continue;
            }
        } else if (self != npos) {
            // Aggregate leaf that may contain the probe body itself (it
            // cannot be opened): subtract the self contribution so the
            // remainder acts as a point mass.
            const layout_point& sp = pts_[self];
            if (std::abs(sp.x - c.cx) <= c.half && std::abs(sp.y - c.cy) <= c.half) {
                mass -= 1;
                if (mass <= 0) continue;
                comx = (c.mx - sp.x) / mass;
                comy = (c.my - sp.y) / mass;
            }
        }
        const double dx = p.x - comx, dy = p.y - comy;
        // Softened so exactly coincident survivors produce a large-but-
        // finite kick (the temperature cap bounds it anyway).
        const double d2 = std::max(dx * dx + dy * dy, 1e-12);
        const double scale = k2 * mass / d2;  // (k²/d)·(1/d) per unit delta
        f.x += dx * scale;
        f.y += dy * scale;
    }
    return f;
}

layout_point bh_quadtree::repulsion(layout_point p, std::size_t self, double k,
                                    double theta) const {
    std::vector<std::int32_t> scratch;
    scratch.reserve(64);
    return repulsion(p, self, k, theta, scratch);
}

// --- force_layout -----------------------------------------------------------

namespace {

constexpr std::uint64_t kLayoutTag = 0x6c61796f75743264ULL;  // "layout2d"

std::size_t auto_iterations(std::size_t n) {
    if (n <= 2048) return 100;
    if (n <= 32768) return 50;
    return 30;
}

}  // namespace

std::vector<layout_point> force_layout(const graph& g, const layout_options& opt) {
    const std::size_t n = g.num_nodes();
    std::vector<layout_point> pts(n);
    if (n == 0) return pts;
    if (n == 1) {
        pts[0] = {0.5, 0.5};
        return pts;
    }
    // Initial placement depends on (seed, node index) only — stable under
    // any iteration sharding.
    for (std::size_t u = 0; u < n; ++u) {
        xoshiro256ss rng(derive_seed(opt.seed, u, kLayoutTag));
        pts[u] = {rng.uniform01(), rng.uniform01()};
    }

    const double k = std::sqrt(1.0 / static_cast<double>(n));
    const std::size_t iters =
        opt.iterations != 0 ? opt.iterations : auto_iterations(n);
    std::vector<layout_point> disp(n);
    bh_quadtree tree;

    constexpr std::size_t kBlock = 2048;
    const std::size_t blocks = (n + kBlock - 1) / kBlock;

    for (std::size_t it = 0; it < iters; ++it) {
        tree.build(pts);
        // Linear cooling from a tenth of the frame to a floor that still
        // lets late iterations untangle local crossings.
        const double t =
            std::max(0.1 * (1.0 - static_cast<double>(it) / static_cast<double>(iters)),
                     1e-3);
        const auto do_block = [&](std::size_t b) {
            std::vector<std::int32_t> scratch;
            scratch.reserve(128);
            const std::size_t lo = b * kBlock, hi = std::min(lo + kBlock, n);
            for (std::size_t u = lo; u < hi; ++u) {
                layout_point f =
                    tree.repulsion(pts[u], u, k, opt.theta, scratch);
                for (const node_id v : g.neighbors(static_cast<node_id>(u))) {
                    const double dx = pts[u].x - pts[v].x;
                    const double dy = pts[u].y - pts[v].y;
                    const double d = std::sqrt(dx * dx + dy * dy);
                    // Attraction d²/k along the edge: displacement −Δ·d/k.
                    f.x -= dx * d / k;
                    f.y -= dy * d / k;
                }
                const double len = std::sqrt(f.x * f.x + f.y * f.y);
                if (len > t) {
                    f.x *= t / len;
                    f.y *= t / len;
                }
                disp[u] = f;
            }
        };
        if (opt.pool != nullptr && opt.pool->size() > 1 && blocks > 1) {
            opt.pool->parallel_for(blocks, do_block);
        } else {
            for (std::size_t b = 0; b < blocks; ++b) do_block(b);
        }
        for (std::size_t u = 0; u < n; ++u) {
            pts[u].x += disp[u].x;
            pts[u].y += disp[u].y;
        }
    }

    // Normalize into [0, 1]² for renderers.
    double minx = pts[0].x, maxx = pts[0].x, miny = pts[0].y, maxy = pts[0].y;
    for (const layout_point& p : pts) {
        minx = std::min(minx, p.x);
        maxx = std::max(maxx, p.x);
        miny = std::min(miny, p.y);
        maxy = std::max(maxy, p.y);
    }
    const double span = std::max({maxx - minx, maxy - miny, 1e-12});
    for (layout_point& p : pts) {
        p.x = (p.x - minx) / span;
        p.y = (p.y - miny) / span;
    }
    return pts;
}

// --- SVG --------------------------------------------------------------------

std::string layout_svg(const graph& g, std::span<const layout_point> pts,
                       const layout_svg_options& opt) {
    require(pts.size() == g.num_nodes(), "layout_svg: pts/graph size mismatch");
    const double w = opt.width, h = opt.height, m = opt.margin;
    const auto sx = [&](double x) { return m + x * (w - 2 * m); };
    const auto sy = [&](double y) { return m + y * (h - 2 * m); };

    std::string out;
    out.reserve(1 << 16);
    char buf[192];
    std::snprintf(buf, sizeof buf,
                  "<svg xmlns=\"http://www.w3.org/2000/svg\" viewBox=\"0 0 %.0f %.0f\" "
                  "width=\"%.0f\" height=\"%.0f\" role=\"img\">",
                  w, h, w, h);
    out += buf;

    const auto edges = g.edge_list();
    const std::size_t estride =
        opt.max_edges == 0 ? 1 : std::max<std::size_t>(1, edges.size() / opt.max_edges);
    std::snprintf(buf, sizeof buf,
                  "<g class=\"ge\" stroke=\"%s\" stroke-width=\"0.7\" "
                  "stroke-opacity=\"0.55\">",
                  opt.edge_color.c_str());
    out += buf;
    for (std::size_t i = 0; i < edges.size(); i += estride) {
        const auto [u, v] = edges[i];
        std::snprintf(buf, sizeof buf,
                      "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\"/>",
                      sx(pts[u].x), sy(pts[u].y), sx(pts[v].x), sy(pts[v].y));
        out += buf;
    }
    out += "</g>";

    const std::size_t nstride =
        opt.max_nodes == 0 ? 1 : std::max<std::size_t>(1, pts.size() / opt.max_nodes);
    std::snprintf(buf, sizeof buf, "<g class=\"gn\" fill=\"%s\">",
                  opt.node_color.c_str());
    out += buf;
    for (std::size_t u = 0; u < pts.size(); u += nstride) {
        std::snprintf(buf, sizeof buf, "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"%.1f\"/>",
                      sx(pts[u].x), sy(pts[u].y), opt.node_radius);
        out += buf;
    }
    out += "</g></svg>";
    return out;
}

}  // namespace anole
