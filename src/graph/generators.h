// anole — topology generators.
//
// The benchmark harness exercises every Table 1 row on concrete families
// chosen to span the (Φ, tmix, D) landscape the paper's bounds trade over:
//
//   complete, hypercube, random_regular, erdos_renyi — well-connected,
//       tmix = O(polylog): the regime where cautious broadcast shines and
//       the Ω(m) flooding bound of [16] is beaten.
//   torus, grid2d — moderate expansion, tmix = Θ(n) for square shapes.
//   cycle, path — Φ = Θ(1/n), tmix = Θ(n²): the adversarial end, and the
//       topology of the Theorem 2 pumping-wheel construction.
//   ring_of_cliques, barbell, lollipop — conductance *dials*: fix n, vary
//       the bottleneck, for the E4 crossover experiment.
//   star, binary_tree — degenerate/hierarchical sanity topologies.
//
// Generators attach analytic `graph_facts` when textbook-exact values are
// cheap (documented per generator); estimators fill the rest at runtime.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace anole {

// Simple path P_n: 0-1-2-...-(n-1). n >= 1.
[[nodiscard]] graph make_path(std::size_t n);

// Cycle C_n. n >= 3. Facts: diameter ⌊n/2⌋, Φ = 2/n (volume form),
// i(G) = 2/⌊n/2⌋, tmix <= n² (lazy-walk upper bound).
[[nodiscard]] graph make_cycle(std::size_t n);

// Complete graph K_n. n >= 2. Facts: diameter 1, Φ >= 1/2, i(G) = ⌈n/2⌉.
[[nodiscard]] graph make_complete(std::size_t n);

// Star S_n: node 0 is the hub, n-1 leaves. n >= 2. Facts: diameter 2
// (n > 2), Φ = 1, i(G) = 1.
[[nodiscard]] graph make_star(std::size_t n);

// rows x cols grid, 4-neighborhood, no wraparound. rows*cols >= 1.
[[nodiscard]] graph make_grid2d(std::size_t rows, std::size_t cols);

// rows x cols torus (wraparound grid). rows, cols >= 3 (else parallel
// edges). Facts: diameter ⌊rows/2⌋+⌊cols/2⌋.
[[nodiscard]] graph make_torus(std::size_t rows, std::size_t cols);

// d-dimensional hypercube, n = 2^d nodes. d >= 1. Facts: diameter d.
[[nodiscard]] graph make_hypercube(std::size_t dim);

// Complete binary tree on n nodes (heap layout). n >= 1.
[[nodiscard]] graph make_binary_tree(std::size_t n);

// Random d-regular simple connected graph via the pairing model with
// rejection. Requires n*d even, d < n. Throws after `max_attempts`
// rejected pairings (practically unreachable for d >= 3).
[[nodiscard]] graph make_random_regular(std::size_t n, std::size_t d,
                                        std::uint64_t seed,
                                        std::size_t max_attempts = 1000);

// Erdős–Rényi G(n, p), resampled until connected (throws after
// max_attempts). For guaranteed-quick connectivity use p >= 2 ln n / n.
[[nodiscard]] graph make_erdos_renyi(std::size_t n, double p, std::uint64_t seed,
                                     std::size_t max_attempts = 1000);

// `num_cliques` cliques of `clique_size` nodes arranged in a ring;
// consecutive cliques joined by a single edge between designated gateway
// nodes. num_cliques >= 3, clique_size >= 1 (size 1 degenerates to C_k).
// This is the conductance dial: Φ = Θ(1/(num_cliques * clique_size²)).
[[nodiscard]] graph make_ring_of_cliques(std::size_t num_cliques,
                                         std::size_t clique_size);

// Two K_k cliques joined by a single bridge edge. k >= 2.
// Facts: diameter 3, Φ = Θ(1/k²).
[[nodiscard]] graph make_barbell(std::size_t k);

// Lollipop: K_k with a path of `tail` extra nodes hanging off one vertex.
// k >= 2, tail >= 1. The classic worst case for hitting times.
[[nodiscard]] graph make_lollipop(std::size_t k, std::size_t tail);

// --- registry for parameterized tests/benches ---

enum class graph_family {
    path,
    cycle,
    complete,
    star,
    grid2d,
    torus,
    hypercube,
    binary_tree,
    random_regular,
    erdos_renyi,
    ring_of_cliques,
    barbell,
    lollipop,
};

[[nodiscard]] const char* to_string(graph_family f) noexcept;

// Builds a family instance of approximately `n` nodes with sensible shape
// defaults (square torus, degree-4 regular, p = 3 ln n / n for ER, √n
// cliques of √n nodes for ring_of_cliques, ...). The returned graph's
// num_nodes() may differ slightly from n (e.g. squares, powers of two).
[[nodiscard]] graph make_family(graph_family f, std::size_t n, std::uint64_t seed);

// All families, for TEST_P instantiations.
[[nodiscard]] std::vector<graph_family> all_families();

}  // namespace anole
