// anole — topology generators.
//
// The benchmark harness exercises every Table 1 row on concrete families
// chosen to span the (Φ, tmix, D) landscape the paper's bounds trade over:
//
//   complete, hypercube, random_regular, erdos_renyi — well-connected,
//       tmix = O(polylog): the regime where cautious broadcast shines and
//       the Ω(m) flooding bound of [16] is beaten.
//   torus, grid2d — moderate expansion, tmix = Θ(n) for square shapes.
//   cycle, path — Φ = Θ(1/n), tmix = Θ(n²): the adversarial end, and the
//       topology of the Theorem 2 pumping-wheel construction.
//   ring_of_cliques, barbell, dumbbell, lollipop — conductance *dials*:
//       fix n, vary the bottleneck, for the E4 crossover experiment.
//   star, binary_tree, wheel — degenerate/hierarchical sanity topologies.
//   watts_strogatz, barabasi_albert, random_geometric,
//   connected_caveman — the "zoo" beyond the textbook families: clustered
//       small-worlds, heavy-tailed degrees, proximity meshes and caves,
//       stressing the Φ/tmix axes between the clean extremes above.
//
// Generators attach analytic `graph_facts` when textbook-exact values are
// cheap (documented per generator); estimators fill the rest at runtime.
// docs/TOPOLOGIES.md catalogs every family: construction, measured
// Φ/i(G)/tmix trends, and which paper regime it stresses.
//
// Every family also serves as the *footprint* of the dynamic-network
// adversary (sim/dynamics.h): churn downs non-backbone edges per window,
// so a footprint's cycle space is exactly the adversary's room to move —
// trees (star, binary_tree) admit no churn at all under backbone
// protection, while dense families lose up to m − (n − 1) edges per
// window yet stay T-interval connected. docs/DYNAMICS.md has the model.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.h"

namespace anole {

// Simple path P_n: 0-1-2-...-(n-1). n >= 1.
[[nodiscard]] graph make_path(std::size_t n);

// Cycle C_n. n >= 3. Facts: diameter ⌊n/2⌋, Φ = 2/n (volume form),
// i(G) = 2/⌊n/2⌋, tmix <= n² (lazy-walk upper bound).
[[nodiscard]] graph make_cycle(std::size_t n);

// Complete graph K_n. n >= 2. Facts: diameter 1, Φ >= 1/2, i(G) = ⌈n/2⌉.
[[nodiscard]] graph make_complete(std::size_t n);

// Star S_n: node 0 is the hub, n-1 leaves. n >= 2. Facts: diameter 2
// (n > 2), Φ = 1, i(G) = 1.
[[nodiscard]] graph make_star(std::size_t n);

// rows x cols grid, 4-neighborhood, no wraparound. rows*cols >= 1.
[[nodiscard]] graph make_grid2d(std::size_t rows, std::size_t cols);

// rows x cols torus (wraparound grid). rows, cols >= 3 (else parallel
// edges). Facts: diameter ⌊rows/2⌋+⌊cols/2⌋.
[[nodiscard]] graph make_torus(std::size_t rows, std::size_t cols);

// d-dimensional hypercube, n = 2^d nodes. d >= 1. Facts: diameter d.
[[nodiscard]] graph make_hypercube(std::size_t dim);

// Complete binary tree on n nodes (heap layout). n >= 1.
[[nodiscard]] graph make_binary_tree(std::size_t n);

// Random d-regular simple connected graph via the pairing model with
// rejection. Requires n*d even, d < n. Throws after `max_attempts`
// rejected pairings (practically unreachable for d >= 3).
[[nodiscard]] graph make_random_regular(std::size_t n, std::size_t d,
                                        std::uint64_t seed,
                                        std::size_t max_attempts = 1000);

// Erdős–Rényi G(n, p), resampled until connected (throws after
// max_attempts). For guaranteed-quick connectivity use p >= 2 ln n / n.
[[nodiscard]] graph make_erdos_renyi(std::size_t n, double p, std::uint64_t seed,
                                     std::size_t max_attempts = 1000);

// `num_cliques` cliques of `clique_size` nodes arranged in a ring;
// consecutive cliques joined by a single edge between designated gateway
// nodes. num_cliques >= 3, clique_size >= 1 (size 1 degenerates to C_k).
// This is the conductance dial: Φ = Θ(1/(num_cliques * clique_size²)).
[[nodiscard]] graph make_ring_of_cliques(std::size_t num_cliques,
                                         std::size_t clique_size);

// Two K_k cliques joined by a single bridge edge. k >= 2.
// Facts: diameter 3, Φ = Θ(1/k²).
[[nodiscard]] graph make_barbell(std::size_t k);

// Lollipop: K_k with a path of `tail` extra nodes hanging off one vertex.
// k >= 2, tail >= 1. The classic worst case for hitting times.
[[nodiscard]] graph make_lollipop(std::size_t k, std::size_t tail);

// Dumbbell: two K_k cliques joined by a path of `bar` intermediate nodes
// (bar = 0 degenerates to the barbell). k >= 2, n = 2k + bar.
// Facts: diameter bar + 3. The bar stretches the bottleneck: Φ = Θ(1/k²)
// like the barbell but tmix grows with bar² on top — the near-zero-
// conductance corner of the zoo.
[[nodiscard]] graph make_dumbbell(std::size_t k, std::size_t bar);

// Wheel W_n: node 0 is the hub, nodes 1..n-1 form a cycle, every rim node
// also connects to the hub. n >= 4. Facts: diameter 1 (n = 4), else 2.
// Constant Φ with a Θ(n)-degree hub: a hub-and-spoke sanity topology
// whose rim (unlike the star's leaves) is itself connected.
[[nodiscard]] graph make_wheel(std::size_t n);

// Watts–Strogatz small world: ring lattice where each node connects to
// its k/2 nearest neighbors per side, then each edge is rewired to a
// uniform random endpoint with probability beta (self-loops/duplicates
// skipped; edge count is preserved). Resampled until connected (throws
// after max_attempts). Requires k even, 2 <= k < n, beta in [0, 1].
// beta = 0 is the exact lattice; small beta keeps the lattice's
// clustering while shortcuts collapse the diameter — the regime between
// cycle (tmix = Θ(n²)) and expander (tmix = polylog).
[[nodiscard]] graph make_watts_strogatz(std::size_t n, std::size_t k, double beta,
                                        std::uint64_t seed,
                                        std::size_t max_attempts = 1000);

// Barabási–Albert preferential attachment: seed clique K_{m+1}, then
// each new node attaches to `m` distinct existing nodes sampled
// proportionally to degree. Requires 1 <= m, n >= m + 1. Connected by
// construction; heavy-tailed degrees (hubs of degree ~√n) make the walk
// stationary distribution maximally non-uniform.
[[nodiscard]] graph make_barabasi_albert(std::size_t n, std::size_t m,
                                         std::uint64_t seed);

// Random geometric graph: n points uniform in the unit square, edge iff
// Euclidean distance <= radius. Resampled until connected (throws after
// max_attempts; connectivity whp needs radius >= √(ln n / (π n))).
// Spatial clustering without hubs — the "ad-hoc mesh" regime.
[[nodiscard]] graph make_random_geometric(std::size_t n, double radius,
                                          std::uint64_t seed,
                                          std::size_t max_attempts = 1000);

// Connected caveman: `num_caves` cliques of `cave_size` nodes in a ring;
// in each cave the edge between members 0 and 1 is re-pointed to member 1
// of the next cave. Every node has degree cave_size - 1 (the graph is
// regular), unlike ring_of_cliques whose gateways gain degree.
// num_caves >= 3, cave_size >= 3 (size 2 would be 1-regular — a perfect
// matching, disconnected). Clustered low-Φ meshes: Φ = Θ(1/(num_caves
// · cave_size²)) with maximal clustering coefficient inside caves.
[[nodiscard]] graph make_connected_caveman(std::size_t num_caves,
                                           std::size_t cave_size);

// --- registry for parameterized tests/benches ---

enum class graph_family {
    path,
    cycle,
    complete,
    star,
    grid2d,
    torus,
    hypercube,
    binary_tree,
    random_regular,
    erdos_renyi,
    ring_of_cliques,
    barbell,
    lollipop,
    dumbbell,
    wheel,
    watts_strogatz,
    barabasi_albert,
    random_geometric,
    connected_caveman,
};

[[nodiscard]] const char* to_string(graph_family f) noexcept;

// Inverse of to_string, plus the short aliases the campaign CLI accepts:
// "ws" (watts_strogatz), "ba" (barabasi_albert), "rgg"/"geometric"
// (random_geometric), "caveman" (connected_caveman), "er" (erdos_renyi),
// "grid" (grid2d), "tree" (binary_tree). Returns nullopt for unknown
// names.
[[nodiscard]] std::optional<graph_family> family_from_string(std::string_view name);

// Builds a family instance of approximately `n` nodes with sensible shape
// defaults (square torus, degree-4 regular, p = 3 ln n / n for ER, √n
// cliques of √n nodes for ring_of_cliques, k = 4 / beta = 0.15 for
// watts_strogatz, m = 2 for barabasi_albert, ...). The returned graph's
// num_nodes() may differ slightly from n (e.g. squares, powers of two).
// Accepts n >= 1; families with a structural minimum (cycle needs 3,
// wheel needs 4, grid2d clamps to 2x2, ...) clamp n up to it, so every
// family yields a valid graph at every size — only path and binary_tree
// produce the n = 1 singleton with a degree-0 node (see the degree-0
// precondition notes in core/random_walk.h).
[[nodiscard]] graph make_family(graph_family f, std::size_t n, std::uint64_t seed);

// All families, for TEST_P instantiations.
[[nodiscard]] std::vector<graph_family> all_families();

}  // namespace anole
