#include "graph/lanczos.h"

#include <algorithm>
#include <cmath>

#include "sim/thread_pool.h"
#include "util/rng.h"

namespace anole {

namespace {

// Fixed block size for sharded vector work. Fixed — not derived from the
// pool size — so partial sums are accumulated over identical ranges and
// reduced in identical (block) order no matter how many workers run:
// bitwise-identical results for every pool configuration.
constexpr std::size_t kBlock = 1 << 15;

std::size_t num_blocks(std::size_t n) { return (n + kBlock - 1) / kBlock; }

template <class Fn>
void for_blocks(std::size_t n, thread_pool* pool, Fn&& fn) {
    const std::size_t blocks = num_blocks(n);
    if (pool == nullptr || blocks <= 1) {
        for (std::size_t b = 0; b < blocks; ++b) {
            fn(b, b * kBlock, std::min(n, (b + 1) * kBlock));
        }
        return;
    }
    pool->parallel_for(blocks, [&](std::size_t b) {
        fn(b, b * kBlock, std::min(n, (b + 1) * kBlock));
    });
}

// Blocked dot product with deterministic (block-order) reduction.
double dot_det(const std::vector<double>& x, const std::vector<double>& y,
               std::vector<double>& partial, thread_pool* pool) {
    const std::size_t n = x.size();
    partial.assign(num_blocks(n), 0.0);
    for_blocks(n, pool, [&](std::size_t b, std::size_t lo, std::size_t hi) {
        double s = 0.0;
        for (std::size_t i = lo; i < hi; ++i) s += x[i] * y[i];
        partial[b] = s;
    });
    double s = 0.0;
    for (double p : partial) s += p;
    return s;
}

double norm2_det(const std::vector<double>& x, std::vector<double>& partial,
                 thread_pool* pool) {
    return std::sqrt(dot_det(x, x, partial, pool));
}

// y = N x with N = I/2 + D^{-1/2} A D^{-1/2} / 2, in gather form: each
// output element is one node's sum over its neighbor list in port order,
// so the summation order is a property of the graph, not the sharding.
void lazy_sym_matvec(const graph& g, const std::vector<double>& x,
                     const std::vector<double>& inv_sqrt_d,
                     std::vector<double>& scaled, std::vector<double>& y,
                     thread_pool* pool) {
    const std::size_t n = g.num_nodes();
    for_blocks(n, pool, [&](std::size_t, std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) scaled[i] = x[i] * inv_sqrt_d[i];
    });
    for_blocks(n, pool, [&](std::size_t, std::size_t lo, std::size_t hi) {
        for (std::size_t u = lo; u < hi; ++u) {
            double s = 0.0;
            for (node_id v : g.neighbors(static_cast<node_id>(u))) s += scaled[v];
            y[u] = 0.5 * x[u] + 0.5 * inv_sqrt_d[u] * s;
        }
    });
}

// w -= c * v, blocked.
void axpy_det(std::vector<double>& w, double c, const std::vector<double>& v,
              thread_pool* pool) {
    for_blocks(w.size(), pool, [&](std::size_t, std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) w[i] -= c * v[i];
    });
}

// Number of eigenvalues of the j×j tridiagonal (alpha, beta) strictly
// below x (Sturm sequence count).
std::size_t sturm_count(const std::vector<double>& alpha,
                        const std::vector<double>& beta, std::size_t j, double x) {
    std::size_t count = 0;
    double q = 1.0;
    for (std::size_t i = 0; i < j; ++i) {
        const double b2 = i == 0 ? 0.0 : beta[i - 1] * beta[i - 1];
        q = alpha[i] - x - (q == 0.0 ? b2 / 1e-300 : b2 / q);
        if (q < 0.0) ++count;
    }
    return count;
}

// Largest eigenvalue of the leading j×j tridiagonal by bisection. The
// deflated lazy spectrum lives in [0, 1]; widen slightly for roundoff.
double tridiag_largest(const std::vector<double>& alpha,
                       const std::vector<double>& beta, std::size_t j) {
    double lo = -0.25, hi = 1.25;
    for (int it = 0; it < 100; ++it) {
        const double mid = 0.5 * (lo + hi);
        if (sturm_count(alpha, beta, j, mid) >= j) {
            hi = mid;  // all eigenvalues below mid
        } else {
            lo = mid;
        }
    }
    return 0.5 * (lo + hi);
}

// Eigenvector of the j×j tridiagonal for eigenvalue ~theta via inverse
// iteration (Gaussian elimination with partial pivoting; the fill-in of
// a pivoted tridiagonal solve is one extra superdiagonal).
std::vector<double> tridiag_eigvec(const std::vector<double>& alpha,
                                   const std::vector<double>& beta, std::size_t j,
                                   double theta) {
    std::vector<double> y(j, 1.0 / std::sqrt(static_cast<double>(j)));
    const double shift = theta + 1e-13 + std::abs(theta) * 1e-12;
    std::vector<double> d(j), e(j, 0.0), f(j, 0.0), sub(j, 0.0);
    for (int pass = 0; pass < 3; ++pass) {
        for (std::size_t i = 0; i < j; ++i) {
            d[i] = alpha[i] - shift;
            e[i] = i + 1 < j ? beta[i] : 0.0;
            sub[i] = i + 1 < j ? beta[i] : 0.0;
            f[i] = 0.0;
        }
        std::vector<double> rhs = y;
        for (std::size_t i = 0; i + 1 < j; ++i) {
            if (std::abs(sub[i]) > std::abs(d[i])) {
                std::swap(d[i], sub[i]);
                std::swap(e[i], d[i + 1]);
                std::swap(f[i], e[i + 1]);
                std::swap(rhs[i], rhs[i + 1]);
            }
            if (d[i] == 0.0) d[i] = 1e-300;
            const double m = sub[i] / d[i];
            d[i + 1] -= m * e[i];
            e[i + 1] -= m * f[i];
            rhs[i + 1] -= m * rhs[i];
        }
        if (d[j - 1] == 0.0) d[j - 1] = 1e-300;
        for (std::size_t ii = j; ii-- > 0;) {
            double s = rhs[ii];
            if (ii + 1 < j) s -= e[ii] * y[ii + 1];
            if (ii + 2 < j) s -= f[ii] * y[ii + 2];
            y[ii] = s / d[ii];
        }
        double nn = 0.0;
        for (double v : y) nn += v * v;
        nn = std::sqrt(nn);
        if (nn < 1e-300) break;
        for (double& v : y) v /= nn;
    }
    return y;
}

}  // namespace

lanczos_result lanczos_lambda2(const graph& g, const lanczos_options& opt) {
    const std::size_t n = g.num_nodes();
    require(n >= 2, "lanczos_lambda2: n >= 2");
    thread_pool* pool = opt.pool;

    std::vector<double> inv_sqrt_d(n), top(n);
    for (node_id u = 0; u < n; ++u) {
        inv_sqrt_d[u] = 1.0 / std::sqrt(static_cast<double>(g.degree(u)));
        top[u] = std::sqrt(static_cast<double>(g.degree(u)));
    }
    std::vector<double> partial;
    const double tn = norm2_det(top, partial, pool);
    for (double& x : top) x /= tn;

    // Krylov budget: small relative to n (convergence is typically tens
    // of steps), capped so the stored basis stays within ~512 MB.
    std::size_t max_iters = opt.max_iters;
    if (max_iters == 0) {
        max_iters = std::min<std::size_t>(n - 1, 256);
        const std::size_t mem_cap =
            std::max<std::size_t>(48, (std::size_t{64} << 20) / std::max<std::size_t>(n, 1));
        max_iters = std::min(max_iters, mem_cap);
    }
    max_iters = std::min(max_iters, n - 1) > 0 ? std::min(max_iters, n - 1) : 1;

    std::vector<std::vector<double>> basis;
    basis.reserve(max_iters + 1);
    std::vector<double> alpha, beta;
    alpha.reserve(max_iters);
    beta.reserve(max_iters);

    // Deterministic random start, deflated against the top eigenvector.
    {
        xoshiro256ss rng(derive_seed(opt.seed, n, g.num_edges()));
        std::vector<double> v(n);
        for (double& x : v) x = rng.uniform01() - 0.5;
        axpy_det(v, dot_det(v, top, partial, pool), top, pool);
        const double nv = norm2_det(v, partial, pool);
        require(nv > 0, "lanczos_lambda2: degenerate start");
        for_blocks(n, pool, [&](std::size_t, std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i) v[i] /= nv;
        });
        basis.push_back(std::move(v));
    }

    lanczos_result out;
    std::vector<double> w(n), scaled(n);
    double theta = 0.0;
    std::vector<double> ritz_y;
    bool exhausted = false;

    for (std::size_t j = 0; j < max_iters; ++j) {
        lazy_sym_matvec(g, basis[j], inv_sqrt_d, scaled, w, pool);
        if (j > 0) axpy_det(w, beta[j - 1], basis[j - 1], pool);
        const double a = dot_det(w, basis[j], partial, pool);
        alpha.push_back(a);
        axpy_det(w, a, basis[j], pool);
        axpy_det(w, dot_det(w, top, partial, pool), top, pool);

        // Reorthogonalize against the whole basis every step: with a lazy
        // (period-k) schedule the recurrence coefficients recorded between
        // passes absorb the re-grown parasitic components and T's spectrum
        // drifts above 1 (observed at n=10⁴). One full Gram–Schmidt pass
        // per step keeps T faithful; the *second* pass is the selective
        // part — run only when the first pass removed a macroscopic
        // component (Kahan–Parlett: "twice is enough").
        const double nb_raw = norm2_det(w, partial, pool);
        for (const auto& vb : basis) {
            axpy_det(w, dot_det(w, vb, partial, pool), vb, pool);
        }
        axpy_det(w, dot_det(w, top, partial, pool), top, pool);
        double nb = norm2_det(w, partial, pool);
        if (nb < 0.5 * nb_raw) {
            for (const auto& vb : basis) {
                axpy_det(w, dot_det(w, vb, partial, pool), vb, pool);
            }
            axpy_det(w, dot_det(w, top, partial, pool), top, pool);
            nb = norm2_det(w, partial, pool);
        }
        out.iterations = j + 1;

        if (nb < 1e-12) {
            // Krylov space exhausted: T now represents the reachable
            // invariant subspace exactly — the Ritz pair is the answer.
            exhausted = true;
            theta = tridiag_largest(alpha, beta, alpha.size());
            ritz_y = tridiag_eigvec(alpha, beta, alpha.size(), theta);
            break;
        }
        beta.push_back(nb);
        std::vector<double> next(n);
        for_blocks(n, pool, [&](std::size_t, std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i) next[i] = w[i] / nb;
        });
        basis.push_back(std::move(next));

        // Ritz convergence estimate: residual of the top Ritz pair of
        // T_{j+1} is β_j · |last component of its eigenvector|.
        theta = tridiag_largest(alpha, beta, alpha.size());
        ritz_y = tridiag_eigvec(alpha, beta, alpha.size(), theta);
        if (nb * std::abs(ritz_y.back()) <= 0.5 * opt.tol && j >= 2) break;
    }
    (void)exhausted;

    // Assemble the Ritz vector in node space, re-deflate, normalize.
    std::vector<double> fied(n, 0.0);
    const std::size_t k = ritz_y.size();
    for_blocks(n, pool, [&](std::size_t, std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
            double s = 0.0;
            for (std::size_t jj = 0; jj < k; ++jj) s += ritz_y[jj] * basis[jj][i];
            fied[i] = s;
        }
    });
    axpy_det(fied, dot_det(fied, top, partial, pool), top, pool);
    const double nf = norm2_det(fied, partial, pool);
    if (nf > 1e-300) {
        for_blocks(n, pool, [&](std::size_t, std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i) fied[i] /= nf;
        });
    }

    // Honest residual against the graph operator (one extra matvec).
    lazy_sym_matvec(g, fied, inv_sqrt_d, scaled, w, pool);
    axpy_det(w, theta, fied, pool);
    out.residual = norm2_det(w, partial, pool);
    // The deflated lazy spectrum is analytically ⊆ [0, 1]; clamp the last
    // ulps of roundoff so downstream log(1 − λ₂) stays finite.
    out.lambda2 = std::clamp(theta, 0.0, 1.0);
    out.converged = out.residual <= opt.tol;

    // Scale back: sweep cuts order by the D^{-1/2}-scaled embedding.
    for_blocks(n, pool, [&](std::size_t, std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) fied[i] *= inv_sqrt_d[i];
    });
    out.fiedler = std::move(fied);
    return out;
}

}  // namespace anole
