#include "graph/properties.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <queue>

namespace anole {

std::vector<std::uint32_t> bfs_distances(const graph& g, node_id src) {
    require(src < g.num_nodes(), "bfs_distances: src out of range");
    std::vector<std::uint32_t> dist(g.num_nodes(),
                                    std::numeric_limits<std::uint32_t>::max());
    std::queue<node_id> q;
    dist[src] = 0;
    q.push(src);
    while (!q.empty()) {
        const node_id u = q.front();
        q.pop();
        for (node_id v : g.neighbors(u)) {
            if (dist[v] == std::numeric_limits<std::uint32_t>::max()) {
                dist[v] = dist[u] + 1;
                q.push(v);
            }
        }
    }
    return dist;
}

std::uint32_t eccentricity(const graph& g, node_id src) {
    const auto dist = bfs_distances(g, src);
    return *std::max_element(dist.begin(), dist.end());
}

std::uint32_t diameter_exact(const graph& g) {
    std::uint32_t diam = 0;
    for (node_id u = 0; u < g.num_nodes(); ++u) {
        diam = std::max(diam, eccentricity(g, u));
    }
    return diam;
}

diameter_bounds diameter_estimate(const graph& g) {
    // Double sweep: ecc from 0 finds far node a; ecc(a) is a lower bound
    // achieved by some b; 2*radius-ish gives an upper bound via ecc(mid).
    const auto d0 = bfs_distances(g, 0);
    const node_id a = static_cast<node_id>(
        std::max_element(d0.begin(), d0.end()) - d0.begin());
    const auto da = bfs_distances(g, a);
    const node_id b = static_cast<node_id>(
        std::max_element(da.begin(), da.end()) - da.begin());
    const std::uint32_t lower = da[b];
    // Upper bound: 2 * eccentricity of any node bounds the diameter.
    const std::uint32_t upper = std::min(2 * eccentricity(g, b), 2 * da[b]);
    return {lower, std::max(lower, upper)};
}

degree_stats degrees(const graph& g) {
    std::size_t mn = g.num_nodes(), mx = 0, total = 0;
    for (node_id u = 0; u < g.num_nodes(); ++u) {
        const std::size_t d = g.degree(u);
        mn = std::min(mn, d);
        mx = std::max(mx, d);
        total += d;
    }
    return {mn, mx, static_cast<double>(total) / static_cast<double>(g.num_nodes())};
}

namespace {

struct cut_tally {
    std::uint64_t boundary = 0;  // |∂S|
    std::uint64_t size_s = 0;    // |S|
    std::uint64_t vol_s = 0;     // Vol(S)
};

cut_tally tally_cut(const graph& g, const std::vector<bool>& in_s) {
    cut_tally t;
    for (node_id u = 0; u < g.num_nodes(); ++u) {
        if (!in_s[u]) continue;
        ++t.size_s;
        t.vol_s += g.degree(u);
        for (node_id v : g.neighbors(u)) {
            if (!in_s[v]) ++t.boundary;
        }
    }
    return t;
}

}  // namespace

double cut_conductance(const graph& g, const std::vector<bool>& in_s) {
    require(in_s.size() == g.num_nodes(), "cut_conductance: size mismatch");
    const cut_tally t = tally_cut(g, in_s);
    require(t.size_s > 0 && t.size_s < g.num_nodes(),
            "cut_conductance: cut must be proper");
    const std::uint64_t vol_total = 2 * g.num_edges();
    const std::uint64_t vol_min = std::min(t.vol_s, vol_total - t.vol_s);
    return static_cast<double>(t.boundary) / static_cast<double>(vol_min);
}

double cut_isoperimetric(const graph& g, const std::vector<bool>& in_s) {
    require(in_s.size() == g.num_nodes(), "cut_isoperimetric: size mismatch");
    const cut_tally t = tally_cut(g, in_s);
    require(t.size_s > 0 && t.size_s < g.num_nodes(),
            "cut_isoperimetric: cut must be proper");
    const std::uint64_t s = std::min<std::uint64_t>(t.size_s, g.num_nodes() - t.size_s);
    return static_cast<double>(t.boundary) / static_cast<double>(s);
}

namespace {

// Enumerates all proper cuts with node 0 fixed out of S (each unordered
// partition once); calls fn(boundary, |S|, Vol(S)).
template <class Fn>
void enumerate_cuts(const graph& g, Fn&& fn) {
    const std::size_t n = g.num_nodes();
    require(n >= 2, "enumerate_cuts: n >= 2");
    require(n <= 24, "enumerate_cuts: exact enumeration limited to n <= 24");
    const std::size_t limit = std::size_t{1} << (n - 1);
    std::vector<bool> in_s(n, false);
    for (std::size_t mask = 1; mask < limit; ++mask) {
        // Gray-code-free simple re-tally would be O(2^n * m); use
        // incremental flips via gray code: successive masks differ by the
        // lowest set bit of the index.
        for (std::size_t b = 0; b + 1 < n; ++b) in_s[b + 1] = ((mask >> b) & 1u) != 0;
        const cut_tally t = tally_cut(g, in_s);
        fn(t);
    }
}

}  // namespace

double conductance_exact(const graph& g) {
    double best = std::numeric_limits<double>::infinity();
    const std::uint64_t vol_total = 2 * g.num_edges();
    enumerate_cuts(g, [&](const cut_tally& t) {
        const std::uint64_t vol_min = std::min(t.vol_s, vol_total - t.vol_s);
        if (vol_min == 0) return;
        best = std::min(best,
                        static_cast<double>(t.boundary) / static_cast<double>(vol_min));
    });
    return best;
}

double isoperimetric_exact(const graph& g) {
    double best = std::numeric_limits<double>::infinity();
    const std::size_t n = g.num_nodes();
    enumerate_cuts(g, [&](const cut_tally& t) {
        const std::uint64_t s = std::min<std::uint64_t>(t.size_s, n - t.size_s);
        if (s == 0) return;
        best = std::min(best, static_cast<double>(t.boundary) / static_cast<double>(s));
    });
    return best;
}

namespace {

template <class RatioFn>
double sweep_best(const graph& g, const std::vector<double>& score, RatioFn&& ratio) {
    require(score.size() == g.num_nodes(), "sweep: score size mismatch");
    const std::size_t n = g.num_nodes();
    std::vector<node_id> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](node_id a, node_id b) { return score[a] < score[b]; });

    std::vector<bool> in_s(n, false);
    std::uint64_t boundary = 0, vol_s = 0, size_s = 0;
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i + 1 < n; ++i) {
        const node_id u = order[i];
        in_s[u] = true;
        ++size_s;
        vol_s += g.degree(u);
        // Adding u flips each incident edge's cut status.
        for (node_id v : g.neighbors(u)) {
            if (in_s[v]) {
                --boundary;
            } else {
                ++boundary;
            }
        }
        best = std::min(best, ratio(boundary, size_s, vol_s));
    }
    return best;
}

}  // namespace

double conductance_sweep(const graph& g, const std::vector<double>& score) {
    const std::uint64_t vol_total = 2 * g.num_edges();
    const std::size_t n = g.num_nodes();
    return sweep_best(g, score,
                      [vol_total, n](std::uint64_t boundary, std::uint64_t size_s,
                                     std::uint64_t vol_s) {
                          (void)n;
                          (void)size_s;
                          const std::uint64_t vol_min =
                              std::min(vol_s, vol_total - vol_s);
                          return vol_min == 0
                                     ? std::numeric_limits<double>::infinity()
                                     : static_cast<double>(boundary) /
                                           static_cast<double>(vol_min);
                      });
}

double isoperimetric_sweep(const graph& g, const std::vector<double>& score) {
    const std::size_t n = g.num_nodes();
    return sweep_best(
        g, score,
        [n](std::uint64_t boundary, std::uint64_t size_s, std::uint64_t vol_s) {
            (void)vol_s;
            const std::uint64_t s = std::min<std::uint64_t>(size_s, n - size_s);
            return s == 0 ? std::numeric_limits<double>::infinity()
                          : static_cast<double>(boundary) / static_cast<double>(s);
        });
}

}  // namespace anole
