// anole — immutable undirected graph with port numbering.
//
// This is the topology substrate for the anonymous-network model of the
// paper (§2): a connected undirected graph G = (V, E) where nodes have NO
// identifiers, only a local labeling of incident links ("port numbers"
// 1..deg). Engine-side code refers to nodes by dense index (bookkeeping
// only); protocol code must never see those indices — the simulator's
// node context exposes ports exclusively, and tests run protocols under
// random port permutations to enforce label-independence.
//
// Representation: CSR adjacency. For each node u and each local port p we
// store the neighbor index and the *reverse port* — the port at the
// neighbor under which this link appears. The reverse port is what makes
// O(1) message delivery into the right inbox slot possible.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "util/error.h"
#include "util/rng.h"

namespace anole {

using node_id = std::uint32_t;
using port_id = std::uint32_t;  // 0-based in code; the paper's 1..N is cosmetic

// Analytic facts a generator may know about the instance it produced.
// Estimators (graph/properties.h, graph/spectral.h) fill gaps at runtime.
struct graph_facts {
    std::optional<std::uint64_t> diameter;
    std::optional<double> conductance;        // Φ(G), exact or analytic bound
    std::optional<double> isoperimetric;      // i(G)
    std::optional<std::uint64_t> mixing_time; // tmix upper bound (lazy walk)
};

class graph {
public:
    // Builds from an edge list over nodes [0, n). Validates: no self-loops,
    // no parallel edges, connected (required by the model, §2).
    graph(std::size_t n, const std::vector<std::pair<node_id, node_id>>& edges,
          std::string name = "custom");

    // --- size ---
    [[nodiscard]] std::size_t num_nodes() const noexcept { return offsets_.size() - 1; }
    [[nodiscard]] std::size_t num_edges() const noexcept { return nbr_.size() / 2; }
    [[nodiscard]] std::size_t degree(node_id u) const noexcept {
        return offsets_[u + 1] - offsets_[u];
    }
    [[nodiscard]] std::size_t max_degree() const noexcept { return max_degree_; }

    // --- topology access (engine-side only) ---
    // Neighbor reached from u via local port p (0 <= p < degree(u)).
    [[nodiscard]] node_id neighbor(node_id u, port_id p) const noexcept {
        return nbr_[offsets_[u] + p];
    }
    // Port at `neighbor(u,p)` under which the same link appears.
    [[nodiscard]] port_id reverse_port(node_id u, port_id p) const noexcept {
        return rev_port_[offsets_[u] + p];
    }
    // All neighbors of u in port order.
    [[nodiscard]] std::span<const node_id> neighbors(node_id u) const noexcept {
        return {nbr_.data() + offsets_[u], degree(u)};
    }

    // Port at u that leads to v; throws if (u,v) is not an edge. O(deg(u)).
    [[nodiscard]] port_id port_to(node_id u, node_id v) const;

    // --- anonymity adversary ---
    // Returns a copy with every node's ports independently permuted at
    // random (per-node permutations from fill_port_permutation, so the
    // engine's per-round re-wiring adversary — sim/dynamics.h — reduces
    // to this exactly when it fires once before round 0). The abstract
    // topology is identical; only local labels move.
    [[nodiscard]] graph with_permuted_ports(std::uint64_t seed) const;

    // --- metadata ---
    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] const graph_facts& facts() const noexcept { return facts_; }
    void set_facts(graph_facts f) noexcept { facts_ = std::move(f); }
    void set_name(std::string n) noexcept { name_ = std::move(n); }

    // Edge list (u < v), for analyzers.
    [[nodiscard]] std::vector<std::pair<node_id, node_id>> edge_list() const;

private:
    std::vector<std::size_t> offsets_;  // n+1 entries
    std::vector<node_id> nbr_;          // 2m entries, port-ordered per node
    std::vector<port_id> rev_port_;     // parallel to nbr_
    std::size_t max_degree_ = 0;
    std::string name_;
    graph_facts facts_;
};

// The canonical port-relabeling draw shared by graph::with_permuted_ports
// and the dynamics adversary (sim/dynamics.h): fills perm with a uniform
// permutation of [0, perm.size()) — perm[old_port] = new_port — derived
// deterministically from (seed, u). Keeping both callers on one derivation
// is what makes "rewire every round" provably reduce to "permute once".
void fill_port_permutation(std::uint64_t seed, node_id u, std::span<port_id> perm);

}  // namespace anole
