#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "util/rng.h"

namespace anole {

namespace {
using edge_list = std::vector<std::pair<node_id, node_id>>;

node_id nid(std::size_t v) { return static_cast<node_id>(v); }
}  // namespace

graph make_path(std::size_t n) {
    require(n >= 1, "make_path: n >= 1");
    edge_list es;
    es.reserve(n - 1);
    for (std::size_t i = 0; i + 1 < n; ++i) es.emplace_back(nid(i), nid(i + 1));
    graph g(n, es, "path(" + std::to_string(n) + ")");
    graph_facts f;
    f.diameter = n - 1;
    g.set_facts(f);
    return g;
}

graph make_cycle(std::size_t n) {
    require(n >= 3, "make_cycle: n >= 3");
    edge_list es;
    es.reserve(n);
    for (std::size_t i = 0; i < n; ++i) es.emplace_back(nid(i), nid((i + 1) % n));
    graph g(n, es, "cycle(" + std::to_string(n) + ")");
    graph_facts f;
    f.diameter = n / 2;
    // Worst cut = contiguous half: |∂S| = 2, Vol(S) = 2⌊n/2⌋.
    f.conductance = 2.0 / (2.0 * static_cast<double>(n / 2));
    f.isoperimetric = 2.0 / static_cast<double>(n / 2);
    // Lazy walk on C_n mixes in Θ(n²); n² is a safe linear-input upper bound.
    f.mixing_time = static_cast<std::uint64_t>(n) * n;
    g.set_facts(f);
    return g;
}

graph make_complete(std::size_t n) {
    require(n >= 2, "make_complete: n >= 2");
    edge_list es;
    es.reserve(n * (n - 1) / 2);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) es.emplace_back(nid(i), nid(j));
    }
    graph g(n, es, "complete(" + std::to_string(n) + ")");
    graph_facts f;
    f.diameter = 1;
    // S of size s: |∂S| = s(n−s), Vol(S) = s(n−1) ⇒ ratio = (n−s)/(n−1),
    // minimized at s = ⌊n/2⌋.
    f.conductance =
        static_cast<double>(n - n / 2) / static_cast<double>(n - 1);
    f.isoperimetric = static_cast<double>(n - n / 2);
    // Lazy walk on K_n is within 1/(2n) of uniform in O(log n) steps.
    f.mixing_time = 2 * static_cast<std::uint64_t>(std::ceil(std::log2(2.0 * n * n))) + 2;
    g.set_facts(f);
    return g;
}

graph make_star(std::size_t n) {
    require(n >= 2, "make_star: n >= 2");
    edge_list es;
    es.reserve(n - 1);
    for (std::size_t i = 1; i < n; ++i) es.emplace_back(nid(0), nid(i));
    graph g(n, es, "star(" + std::to_string(n) + ")");
    graph_facts f;
    f.diameter = n == 2 ? 1 : 2;
    f.conductance = 1.0;   // every cut edge count equals the smaller volume
    f.isoperimetric = 1.0; // S = set of leaves: |∂S|/|S| = 1
    g.set_facts(f);
    return g;
}

graph make_grid2d(std::size_t rows, std::size_t cols) {
    require(rows >= 1 && cols >= 1, "make_grid2d: rows, cols >= 1");
    auto at = [cols](std::size_t r, std::size_t c) { return nid(r * cols + c); };
    edge_list es;
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c) {
            if (c + 1 < cols) es.emplace_back(at(r, c), at(r, c + 1));
            if (r + 1 < rows) es.emplace_back(at(r, c), at(r + 1, c));
        }
    }
    graph g(rows * cols, es,
            "grid2d(" + std::to_string(rows) + "x" + std::to_string(cols) + ")");
    graph_facts f;
    f.diameter = (rows - 1) + (cols - 1);
    g.set_facts(f);
    return g;
}

graph make_torus(std::size_t rows, std::size_t cols) {
    require(rows >= 3 && cols >= 3, "make_torus: rows, cols >= 3");
    auto at = [cols](std::size_t r, std::size_t c) { return nid(r * cols + c); };
    edge_list es;
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c) {
            es.emplace_back(at(r, c), at(r, (c + 1) % cols));
            es.emplace_back(at(r, c), at((r + 1) % rows, c));
        }
    }
    graph g(rows * cols, es,
            "torus(" + std::to_string(rows) + "x" + std::to_string(cols) + ")");
    graph_facts f;
    f.diameter = rows / 2 + cols / 2;
    g.set_facts(f);
    return g;
}

graph make_hypercube(std::size_t dim) {
    require(dim >= 1 && dim <= 24, "make_hypercube: 1 <= dim <= 24");
    const std::size_t n = std::size_t{1} << dim;
    edge_list es;
    es.reserve(n * dim / 2);
    for (std::size_t v = 0; v < n; ++v) {
        for (std::size_t b = 0; b < dim; ++b) {
            const std::size_t w = v ^ (std::size_t{1} << b);
            if (v < w) es.emplace_back(nid(v), nid(w));
        }
    }
    graph g(n, es, "hypercube(" + std::to_string(dim) + ")");
    graph_facts f;
    f.diameter = dim;
    g.set_facts(f);
    return g;
}

graph make_binary_tree(std::size_t n) {
    require(n >= 1, "make_binary_tree: n >= 1");
    edge_list es;
    es.reserve(n - 1);
    for (std::size_t i = 1; i < n; ++i) es.emplace_back(nid((i - 1) / 2), nid(i));
    return graph(n, es, "binary_tree(" + std::to_string(n) + ")");
}

graph make_random_regular(std::size_t n, std::size_t d, std::uint64_t seed,
                          std::size_t max_attempts) {
    require(n >= 2 && d >= 1 && d < n, "make_random_regular: need 1 <= d < n >= 2");
    require(n * d % 2 == 0, "make_random_regular: n*d must be even");
    xoshiro256ss rng(derive_seed(seed, n, d));
    for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
        // Pairing (configuration) model: shuffle n*d stubs, pair them up.
        std::vector<node_id> stubs(n * d);
        for (std::size_t i = 0; i < stubs.size(); ++i) stubs[i] = nid(i / d);
        for (std::size_t i = stubs.size(); i > 1; --i) {
            std::swap(stubs[i - 1], stubs[rng.below(i)]);
        }
        edge_list es;
        es.reserve(n * d / 2);
        std::set<std::pair<node_id, node_id>> seen;
        bool simple = true;
        for (std::size_t i = 0; i < stubs.size(); i += 2) {
            node_id u = stubs[i], v = stubs[i + 1];
            if (u == v) {
                simple = false;
                break;
            }
            auto key = std::minmax(u, v);
            if (!seen.insert({key.first, key.second}).second) {
                simple = false;
                break;
            }
            es.emplace_back(u, v);
        }
        if (!simple) continue;
        try {
            return graph(n, es,
                         "random_regular(n=" + std::to_string(n) +
                             ",d=" + std::to_string(d) + ")");
        } catch (const error&) {
            continue;  // disconnected; resample
        }
    }
    throw error("make_random_regular: exceeded max_attempts");
}

graph make_erdos_renyi(std::size_t n, double p, std::uint64_t seed,
                       std::size_t max_attempts) {
    require(n >= 2, "make_erdos_renyi: n >= 2");
    require(p > 0.0 && p <= 1.0, "make_erdos_renyi: p in (0,1]");
    xoshiro256ss rng(derive_seed(seed, n, 0xE12));
    for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
        edge_list es;
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = i + 1; j < n; ++j) {
                if (rng.bernoulli(p)) es.emplace_back(nid(i), nid(j));
            }
        }
        try {
            return graph(n, es, "erdos_renyi(n=" + std::to_string(n) + ")");
        } catch (const error&) {
            continue;  // disconnected; resample
        }
    }
    throw error("make_erdos_renyi: exceeded max_attempts (p too small?)");
}

graph make_ring_of_cliques(std::size_t num_cliques, std::size_t clique_size) {
    require(num_cliques >= 3, "make_ring_of_cliques: num_cliques >= 3");
    require(clique_size >= 1, "make_ring_of_cliques: clique_size >= 1");
    const std::size_t n = num_cliques * clique_size;
    auto at = [clique_size](std::size_t c, std::size_t i) {
        return nid(c * clique_size + i);
    };
    edge_list es;
    for (std::size_t c = 0; c < num_cliques; ++c) {
        for (std::size_t i = 0; i < clique_size; ++i) {
            for (std::size_t j = i + 1; j < clique_size; ++j) {
                es.emplace_back(at(c, i), at(c, j));
            }
        }
        // Gateway: node 0 of clique c connects to node min(1, size-1) of
        // clique c+1, so for size >= 2 the two gateway roles differ.
        const std::size_t next = (c + 1) % num_cliques;
        const std::size_t in_port = clique_size >= 2 ? 1 : 0;
        es.emplace_back(at(c, 0), at(next, in_port));
    }
    return graph(n, es,
                 "ring_of_cliques(" + std::to_string(num_cliques) + "x" +
                     std::to_string(clique_size) + ")");
}

graph make_barbell(std::size_t k) {
    require(k >= 2, "make_barbell: k >= 2");
    edge_list es;
    for (std::size_t i = 0; i < k; ++i) {
        for (std::size_t j = i + 1; j < k; ++j) {
            es.emplace_back(nid(i), nid(j));
            es.emplace_back(nid(k + i), nid(k + j));
        }
    }
    es.emplace_back(nid(0), nid(k));  // bridge
    graph g(2 * k, es, "barbell(" + std::to_string(k) + ")");
    graph_facts f;
    f.diameter = 3;
    g.set_facts(f);
    return g;
}

graph make_lollipop(std::size_t k, std::size_t tail) {
    require(k >= 2 && tail >= 1, "make_lollipop: k >= 2, tail >= 1");
    edge_list es;
    for (std::size_t i = 0; i < k; ++i) {
        for (std::size_t j = i + 1; j < k; ++j) es.emplace_back(nid(i), nid(j));
    }
    for (std::size_t t = 0; t < tail; ++t) {
        es.emplace_back(nid(t == 0 ? 0 : k + t - 1), nid(k + t));
    }
    return graph(k + tail, es,
                 "lollipop(k=" + std::to_string(k) + ",tail=" + std::to_string(tail) + ")");
}

const char* to_string(graph_family f) noexcept {
    switch (f) {
        case graph_family::path: return "path";
        case graph_family::cycle: return "cycle";
        case graph_family::complete: return "complete";
        case graph_family::star: return "star";
        case graph_family::grid2d: return "grid2d";
        case graph_family::torus: return "torus";
        case graph_family::hypercube: return "hypercube";
        case graph_family::binary_tree: return "binary_tree";
        case graph_family::random_regular: return "random_regular";
        case graph_family::erdos_renyi: return "erdos_renyi";
        case graph_family::ring_of_cliques: return "ring_of_cliques";
        case graph_family::barbell: return "barbell";
        case graph_family::lollipop: return "lollipop";
    }
    return "?";
}

graph make_family(graph_family f, std::size_t n, std::uint64_t seed) {
    require(n >= 2, "make_family: n >= 2");
    switch (f) {
        case graph_family::path: return make_path(n);
        case graph_family::cycle: return make_cycle(std::max<std::size_t>(n, 3));
        case graph_family::complete: return make_complete(n);
        case graph_family::star: return make_star(n);
        case graph_family::grid2d: {
            const auto side = static_cast<std::size_t>(std::round(std::sqrt(n)));
            return make_grid2d(std::max<std::size_t>(side, 2),
                               std::max<std::size_t>(side, 2));
        }
        case graph_family::torus: {
            const auto side = static_cast<std::size_t>(std::round(std::sqrt(n)));
            return make_torus(std::max<std::size_t>(side, 3),
                              std::max<std::size_t>(side, 3));
        }
        case graph_family::hypercube: {
            std::size_t d = 1;
            while ((std::size_t{1} << (d + 1)) <= n && d < 24) ++d;
            return make_hypercube(d);
        }
        case graph_family::binary_tree: return make_binary_tree(n);
        case graph_family::random_regular: {
            std::size_t nn = n;
            if (nn * 4 % 2 != 0) ++nn;  // keep n*d even (d=4: always even)
            return make_random_regular(std::max<std::size_t>(nn, 6), 4, seed);
        }
        case graph_family::erdos_renyi: {
            const double p =
                std::min(1.0, 3.0 * std::log(static_cast<double>(n)) /
                                   static_cast<double>(n));
            return make_erdos_renyi(n, p, seed);
        }
        case graph_family::ring_of_cliques: {
            const auto side = std::max<std::size_t>(
                3, static_cast<std::size_t>(std::round(std::sqrt(n))));
            return make_ring_of_cliques(side, std::max<std::size_t>(n / side, 1));
        }
        case graph_family::barbell: return make_barbell(std::max<std::size_t>(n / 2, 2));
        case graph_family::lollipop:
            return make_lollipop(std::max<std::size_t>(n / 2, 2),
                                 std::max<std::size_t>(n - n / 2, 1));
    }
    throw error("make_family: unknown family");
}

std::vector<graph_family> all_families() {
    return {graph_family::path,          graph_family::cycle,
            graph_family::complete,      graph_family::star,
            graph_family::grid2d,        graph_family::torus,
            graph_family::hypercube,     graph_family::binary_tree,
            graph_family::random_regular, graph_family::erdos_renyi,
            graph_family::ring_of_cliques, graph_family::barbell,
            graph_family::lollipop};
}

}  // namespace anole
