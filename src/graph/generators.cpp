#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "util/rng.h"

namespace anole {

namespace {
using edge_list = std::vector<std::pair<node_id, node_id>>;

node_id nid(std::size_t v) { return static_cast<node_id>(v); }
}  // namespace

graph make_path(std::size_t n) {
    require(n >= 1, "make_path: n >= 1");
    edge_list es;
    es.reserve(n - 1);
    for (std::size_t i = 0; i + 1 < n; ++i) es.emplace_back(nid(i), nid(i + 1));
    graph g(n, es, "path(" + std::to_string(n) + ")");
    graph_facts f;
    f.diameter = n - 1;
    g.set_facts(f);
    return g;
}

graph make_cycle(std::size_t n) {
    require(n >= 3, "make_cycle: n >= 3");
    edge_list es;
    es.reserve(n);
    for (std::size_t i = 0; i < n; ++i) es.emplace_back(nid(i), nid((i + 1) % n));
    graph g(n, es, "cycle(" + std::to_string(n) + ")");
    graph_facts f;
    f.diameter = n / 2;
    // Worst cut = contiguous half: |∂S| = 2, Vol(S) = 2⌊n/2⌋.
    f.conductance = 2.0 / (2.0 * static_cast<double>(n / 2));
    f.isoperimetric = 2.0 / static_cast<double>(n / 2);
    // Lazy walk on C_n mixes in Θ(n²); n² is a safe linear-input upper bound.
    f.mixing_time = static_cast<std::uint64_t>(n) * n;
    g.set_facts(f);
    return g;
}

graph make_complete(std::size_t n) {
    require(n >= 2, "make_complete: n >= 2");
    edge_list es;
    es.reserve(n * (n - 1) / 2);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) es.emplace_back(nid(i), nid(j));
    }
    graph g(n, es, "complete(" + std::to_string(n) + ")");
    graph_facts f;
    f.diameter = 1;
    // S of size s: |∂S| = s(n−s), Vol(S) = s(n−1) ⇒ ratio = (n−s)/(n−1),
    // minimized at s = ⌊n/2⌋.
    f.conductance =
        static_cast<double>(n - n / 2) / static_cast<double>(n - 1);
    f.isoperimetric = static_cast<double>(n - n / 2);
    // Lazy walk on K_n is within 1/(2n) of uniform in O(log n) steps.
    f.mixing_time = 2 * static_cast<std::uint64_t>(std::ceil(std::log2(2.0 * n * n))) + 2;
    g.set_facts(f);
    return g;
}

graph make_star(std::size_t n) {
    require(n >= 2, "make_star: n >= 2");
    edge_list es;
    es.reserve(n - 1);
    for (std::size_t i = 1; i < n; ++i) es.emplace_back(nid(0), nid(i));
    graph g(n, es, "star(" + std::to_string(n) + ")");
    graph_facts f;
    f.diameter = n == 2 ? 1 : 2;
    f.conductance = 1.0;   // every cut edge count equals the smaller volume
    f.isoperimetric = 1.0; // S = set of leaves: |∂S|/|S| = 1
    g.set_facts(f);
    return g;
}

graph make_grid2d(std::size_t rows, std::size_t cols) {
    require(rows >= 1 && cols >= 1, "make_grid2d: rows, cols >= 1");
    auto at = [cols](std::size_t r, std::size_t c) { return nid(r * cols + c); };
    edge_list es;
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c) {
            if (c + 1 < cols) es.emplace_back(at(r, c), at(r, c + 1));
            if (r + 1 < rows) es.emplace_back(at(r, c), at(r + 1, c));
        }
    }
    graph g(rows * cols, es,
            "grid2d(" + std::to_string(rows) + "x" + std::to_string(cols) + ")");
    graph_facts f;
    f.diameter = (rows - 1) + (cols - 1);
    g.set_facts(f);
    return g;
}

graph make_torus(std::size_t rows, std::size_t cols) {
    require(rows >= 3 && cols >= 3, "make_torus: rows, cols >= 3");
    auto at = [cols](std::size_t r, std::size_t c) { return nid(r * cols + c); };
    edge_list es;
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c) {
            es.emplace_back(at(r, c), at(r, (c + 1) % cols));
            es.emplace_back(at(r, c), at((r + 1) % rows, c));
        }
    }
    graph g(rows * cols, es,
            "torus(" + std::to_string(rows) + "x" + std::to_string(cols) + ")");
    graph_facts f;
    f.diameter = rows / 2 + cols / 2;
    g.set_facts(f);
    return g;
}

graph make_hypercube(std::size_t dim) {
    require(dim >= 1 && dim <= 24, "make_hypercube: 1 <= dim <= 24");
    const std::size_t n = std::size_t{1} << dim;
    edge_list es;
    es.reserve(n * dim / 2);
    for (std::size_t v = 0; v < n; ++v) {
        for (std::size_t b = 0; b < dim; ++b) {
            const std::size_t w = v ^ (std::size_t{1} << b);
            if (v < w) es.emplace_back(nid(v), nid(w));
        }
    }
    graph g(n, es, "hypercube(" + std::to_string(dim) + ")");
    graph_facts f;
    f.diameter = dim;
    g.set_facts(f);
    return g;
}

graph make_binary_tree(std::size_t n) {
    require(n >= 1, "make_binary_tree: n >= 1");
    edge_list es;
    es.reserve(n - 1);
    for (std::size_t i = 1; i < n; ++i) es.emplace_back(nid((i - 1) / 2), nid(i));
    return graph(n, es, "binary_tree(" + std::to_string(n) + ")");
}

graph make_random_regular(std::size_t n, std::size_t d, std::uint64_t seed,
                          std::size_t max_attempts) {
    require(n >= 2 && d >= 1 && d < n, "make_random_regular: need 1 <= d < n >= 2");
    require(n * d % 2 == 0, "make_random_regular: n*d must be even");
    xoshiro256ss rng(derive_seed(seed, n, d));
    for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
        // Pairing (configuration) model: shuffle n*d stubs, pair them up.
        std::vector<node_id> stubs(n * d);
        for (std::size_t i = 0; i < stubs.size(); ++i) stubs[i] = nid(i / d);
        for (std::size_t i = stubs.size(); i > 1; --i) {
            std::swap(stubs[i - 1], stubs[rng.below(i)]);
        }
        edge_list es;
        es.reserve(n * d / 2);
        std::set<std::pair<node_id, node_id>> seen;
        bool simple = true;
        for (std::size_t i = 0; i < stubs.size(); i += 2) {
            node_id u = stubs[i], v = stubs[i + 1];
            if (u == v) {
                simple = false;
                break;
            }
            auto key = std::minmax(u, v);
            if (!seen.insert({key.first, key.second}).second) {
                simple = false;
                break;
            }
            es.emplace_back(u, v);
        }
        if (!simple) continue;
        try {
            return graph(n, es,
                         "random_regular(n=" + std::to_string(n) +
                             ",d=" + std::to_string(d) + ")");
        } catch (const error&) {
            continue;  // disconnected; resample
        }
    }
    throw error("make_random_regular: exceeded max_attempts");
}

graph make_erdos_renyi(std::size_t n, double p, std::uint64_t seed,
                       std::size_t max_attempts) {
    require(n >= 2, "make_erdos_renyi: n >= 2");
    require(p > 0.0 && p <= 1.0, "make_erdos_renyi: p in (0,1]");
    xoshiro256ss rng(derive_seed(seed, n, 0xE12));
    for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
        edge_list es;
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = i + 1; j < n; ++j) {
                if (rng.bernoulli(p)) es.emplace_back(nid(i), nid(j));
            }
        }
        try {
            return graph(n, es, "erdos_renyi(n=" + std::to_string(n) + ")");
        } catch (const error&) {
            continue;  // disconnected; resample
        }
    }
    throw error("make_erdos_renyi: exceeded max_attempts (p too small?)");
}

graph make_ring_of_cliques(std::size_t num_cliques, std::size_t clique_size) {
    require(num_cliques >= 3, "make_ring_of_cliques: num_cliques >= 3");
    require(clique_size >= 1, "make_ring_of_cliques: clique_size >= 1");
    const std::size_t n = num_cliques * clique_size;
    auto at = [clique_size](std::size_t c, std::size_t i) {
        return nid(c * clique_size + i);
    };
    edge_list es;
    for (std::size_t c = 0; c < num_cliques; ++c) {
        for (std::size_t i = 0; i < clique_size; ++i) {
            for (std::size_t j = i + 1; j < clique_size; ++j) {
                es.emplace_back(at(c, i), at(c, j));
            }
        }
        // Gateway: node 0 of clique c connects to node min(1, size-1) of
        // clique c+1, so for size >= 2 the two gateway roles differ.
        const std::size_t next = (c + 1) % num_cliques;
        const std::size_t in_port = clique_size >= 2 ? 1 : 0;
        es.emplace_back(at(c, 0), at(next, in_port));
    }
    return graph(n, es,
                 "ring_of_cliques(" + std::to_string(num_cliques) + "x" +
                     std::to_string(clique_size) + ")");
}

graph make_barbell(std::size_t k) {
    require(k >= 2, "make_barbell: k >= 2");
    edge_list es;
    for (std::size_t i = 0; i < k; ++i) {
        for (std::size_t j = i + 1; j < k; ++j) {
            es.emplace_back(nid(i), nid(j));
            es.emplace_back(nid(k + i), nid(k + j));
        }
    }
    es.emplace_back(nid(0), nid(k));  // bridge
    graph g(2 * k, es, "barbell(" + std::to_string(k) + ")");
    graph_facts f;
    f.diameter = 3;
    g.set_facts(f);
    return g;
}

graph make_lollipop(std::size_t k, std::size_t tail) {
    require(k >= 2 && tail >= 1, "make_lollipop: k >= 2, tail >= 1");
    edge_list es;
    for (std::size_t i = 0; i < k; ++i) {
        for (std::size_t j = i + 1; j < k; ++j) es.emplace_back(nid(i), nid(j));
    }
    for (std::size_t t = 0; t < tail; ++t) {
        es.emplace_back(nid(t == 0 ? 0 : k + t - 1), nid(k + t));
    }
    return graph(k + tail, es,
                 "lollipop(k=" + std::to_string(k) + ",tail=" + std::to_string(tail) + ")");
}

graph make_dumbbell(std::size_t k, std::size_t bar) {
    require(k >= 2, "make_dumbbell: k >= 2");
    require(bar >= 1, "make_dumbbell: bar >= 1 (use make_barbell for bar = 0)");
    const std::size_t n = 2 * k + bar;
    // Clique A on [0, k), bar on [k, k+bar), clique B on [k+bar, n).
    edge_list es;
    for (std::size_t i = 0; i < k; ++i) {
        for (std::size_t j = i + 1; j < k; ++j) {
            es.emplace_back(nid(i), nid(j));
            es.emplace_back(nid(k + bar + i), nid(k + bar + j));
        }
    }
    es.emplace_back(nid(0), nid(k));  // clique A anchor -> first bar node
    for (std::size_t t = 0; t + 1 < bar; ++t) es.emplace_back(nid(k + t), nid(k + t + 1));
    es.emplace_back(nid(k + bar - 1), nid(k + bar));  // last bar node -> B anchor
    graph g(n, es,
            "dumbbell(k=" + std::to_string(k) + ",bar=" + std::to_string(bar) + ")");
    graph_facts f;
    // Farthest pair: non-anchor of A to non-anchor of B, via both anchors.
    f.diameter = bar + 3;
    g.set_facts(f);
    return g;
}

graph make_wheel(std::size_t n) {
    require(n >= 4, "make_wheel: n >= 4");
    edge_list es;
    es.reserve(2 * (n - 1));
    for (std::size_t i = 1; i < n; ++i) {
        es.emplace_back(nid(0), nid(i));
        const std::size_t next = i + 1 < n ? i + 1 : 1;
        if (next != i) es.emplace_back(nid(i), nid(next));
    }
    graph g(n, es, "wheel(" + std::to_string(n) + ")");
    graph_facts f;
    f.diameter = n == 4 ? 1 : 2;  // W_4 = K_4
    g.set_facts(f);
    return g;
}

graph make_watts_strogatz(std::size_t n, std::size_t k, double beta,
                          std::uint64_t seed, std::size_t max_attempts) {
    require(k >= 2 && k % 2 == 0, "make_watts_strogatz: k even, >= 2");
    require(k < n, "make_watts_strogatz: k < n");
    require(beta >= 0.0 && beta <= 1.0, "make_watts_strogatz: beta in [0,1]");
    xoshiro256ss rng(derive_seed(seed, n, k ^ 0x55AA));
    for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
        // Ring lattice: i ~ i+d for d in [1, k/2].
        std::set<std::pair<node_id, node_id>> edges;
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t d = 1; d <= k / 2; ++d) {
                const node_id a = nid(i), b = nid((i + d) % n);
                edges.insert({std::min(a, b), std::max(a, b)});
            }
        }
        // Rewire each lattice edge with probability beta: keep endpoint u,
        // re-point the other end at a uniform node (skipping self-loops
        // and existing edges, so |E| = nk/2 is preserved).
        const edge_list lattice(edges.begin(), edges.end());
        for (const auto& [u, v] : lattice) {
            if (!rng.bernoulli(beta)) continue;
            const auto w = nid(rng.below(n));
            if (w == u) continue;
            const std::pair<node_id, node_id> nkey{std::min(u, w), std::max(u, w)};
            if (edges.count(nkey)) continue;
            edges.erase({u, v});
            edges.insert(nkey);
        }
        try {
            return graph(n, edge_list(edges.begin(), edges.end()),
                         "watts_strogatz(n=" + std::to_string(n) +
                             ",k=" + std::to_string(k) + ")");
        } catch (const error&) {
            continue;  // rewiring disconnected the ring; resample
        }
    }
    throw error("make_watts_strogatz: exceeded max_attempts");
}

graph make_barabasi_albert(std::size_t n, std::size_t m, std::uint64_t seed) {
    require(m >= 1, "make_barabasi_albert: m >= 1");
    require(n >= m + 1, "make_barabasi_albert: n >= m + 1");
    xoshiro256ss rng(derive_seed(seed, n, m ^ 0xBA));
    edge_list es;
    // Seed community: K_{m+1}, so every node starts with degree >= m.
    // `ends` holds every edge endpoint once per incidence; sampling a
    // uniform entry is exactly degree-proportional sampling.
    std::vector<node_id> ends;
    for (std::size_t i = 0; i <= m; ++i) {
        for (std::size_t j = i + 1; j <= m; ++j) {
            es.emplace_back(nid(i), nid(j));
            ends.push_back(nid(i));
            ends.push_back(nid(j));
        }
    }
    std::set<node_id> picked;
    for (std::size_t v = m + 1; v < n; ++v) {
        picked.clear();
        while (picked.size() < m) {
            picked.insert(ends[rng.below(ends.size())]);
        }
        for (node_id u : picked) {
            es.emplace_back(nid(v), u);
            ends.push_back(nid(v));
            ends.push_back(u);
        }
    }
    return graph(n, es,
                 "barabasi_albert(n=" + std::to_string(n) + ",m=" +
                     std::to_string(m) + ")");
}

graph make_random_geometric(std::size_t n, double radius, std::uint64_t seed,
                            std::size_t max_attempts) {
    require(n >= 1, "make_random_geometric: n >= 1");
    require(radius > 0.0, "make_random_geometric: radius > 0");
    xoshiro256ss rng(derive_seed(seed, n, 0x2CC));
    const double r2 = radius * radius;
    for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
        std::vector<std::pair<double, double>> pts(n);
        for (auto& p : pts) p = {rng.uniform01(), rng.uniform01()};
        edge_list es;
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = i + 1; j < n; ++j) {
                const double dx = pts[i].first - pts[j].first;
                const double dy = pts[i].second - pts[j].second;
                if (dx * dx + dy * dy <= r2) es.emplace_back(nid(i), nid(j));
            }
        }
        try {
            return graph(n, es, "random_geometric(n=" + std::to_string(n) + ")");
        } catch (const error&) {
            continue;  // disconnected; resample the point set
        }
    }
    throw error("make_random_geometric: exceeded max_attempts (radius too small?)");
}

graph make_connected_caveman(std::size_t num_caves, std::size_t cave_size) {
    require(num_caves >= 3, "make_connected_caveman: num_caves >= 3");
    // cave_size = 2 would make the graph 1-regular — a perfect matching,
    // necessarily disconnected.
    require(cave_size >= 3, "make_connected_caveman: cave_size >= 3");
    const std::size_t n = num_caves * cave_size;
    auto at = [cave_size](std::size_t c, std::size_t i) {
        return nid(c * cave_size + i);
    };
    edge_list es;
    for (std::size_t c = 0; c < num_caves; ++c) {
        for (std::size_t i = 0; i < cave_size; ++i) {
            for (std::size_t j = i + 1; j < cave_size; ++j) {
                // The (0,1) edge of each cave is re-pointed to the next
                // cave's member 1, keeping the graph (cave_size-1)-regular.
                if (i == 0 && j == 1) continue;
                es.emplace_back(at(c, i), at(c, j));
            }
        }
        es.emplace_back(at(c, 0), at((c + 1) % num_caves, 1));
    }
    return graph(n, es,
                 "connected_caveman(" + std::to_string(num_caves) + "x" +
                     std::to_string(cave_size) + ")");
}

const char* to_string(graph_family f) noexcept {
    switch (f) {
        case graph_family::path: return "path";
        case graph_family::cycle: return "cycle";
        case graph_family::complete: return "complete";
        case graph_family::star: return "star";
        case graph_family::grid2d: return "grid2d";
        case graph_family::torus: return "torus";
        case graph_family::hypercube: return "hypercube";
        case graph_family::binary_tree: return "binary_tree";
        case graph_family::random_regular: return "random_regular";
        case graph_family::erdos_renyi: return "erdos_renyi";
        case graph_family::ring_of_cliques: return "ring_of_cliques";
        case graph_family::barbell: return "barbell";
        case graph_family::lollipop: return "lollipop";
        case graph_family::dumbbell: return "dumbbell";
        case graph_family::wheel: return "wheel";
        case graph_family::watts_strogatz: return "watts_strogatz";
        case graph_family::barabasi_albert: return "barabasi_albert";
        case graph_family::random_geometric: return "random_geometric";
        case graph_family::connected_caveman: return "connected_caveman";
    }
    return "?";
}

std::optional<graph_family> family_from_string(std::string_view name) {
    for (graph_family f : all_families()) {
        if (name == to_string(f)) return f;
    }
    if (name == "ws") return graph_family::watts_strogatz;
    if (name == "ba") return graph_family::barabasi_albert;
    if (name == "rgg" || name == "geometric") return graph_family::random_geometric;
    if (name == "caveman") return graph_family::connected_caveman;
    if (name == "er") return graph_family::erdos_renyi;
    if (name == "grid") return graph_family::grid2d;
    if (name == "tree") return graph_family::binary_tree;
    return std::nullopt;
}

graph make_family(graph_family f, std::size_t n, std::uint64_t seed) {
    require(n >= 1, "make_family: n >= 1");
    switch (f) {
        case graph_family::path: return make_path(n);
        case graph_family::cycle: return make_cycle(std::max<std::size_t>(n, 3));
        case graph_family::complete: return make_complete(std::max<std::size_t>(n, 2));
        case graph_family::star: return make_star(std::max<std::size_t>(n, 2));
        case graph_family::grid2d: {
            const auto side = static_cast<std::size_t>(std::round(std::sqrt(n)));
            return make_grid2d(std::max<std::size_t>(side, 2),
                               std::max<std::size_t>(side, 2));
        }
        case graph_family::torus: {
            const auto side = static_cast<std::size_t>(std::round(std::sqrt(n)));
            return make_torus(std::max<std::size_t>(side, 3),
                              std::max<std::size_t>(side, 3));
        }
        case graph_family::hypercube: {
            std::size_t d = 1;
            while ((std::size_t{1} << (d + 1)) <= n && d < 24) ++d;
            return make_hypercube(d);
        }
        case graph_family::binary_tree: return make_binary_tree(n);
        case graph_family::random_regular: {
            std::size_t nn = n;
            if (nn * 4 % 2 != 0) ++nn;  // keep n*d even (d=4: always even)
            return make_random_regular(std::max<std::size_t>(nn, 6), 4, seed);
        }
        case graph_family::erdos_renyi: {
            const std::size_t nn = std::max<std::size_t>(n, 4);
            const double p =
                std::min(1.0, 3.0 * std::log(static_cast<double>(nn)) /
                                   static_cast<double>(nn));
            return make_erdos_renyi(nn, p, seed);
        }
        case graph_family::ring_of_cliques: {
            const auto side = std::max<std::size_t>(
                3, static_cast<std::size_t>(std::round(std::sqrt(n))));
            return make_ring_of_cliques(side, std::max<std::size_t>(n / side, 1));
        }
        case graph_family::barbell: return make_barbell(std::max<std::size_t>(n / 2, 2));
        case graph_family::lollipop:
            return make_lollipop(std::max<std::size_t>(n / 2, 2),
                                 std::max<std::size_t>(n - n / 2, 1));
        case graph_family::dumbbell: {
            // Bar takes ~n/4 nodes; the cliques split the rest.
            const std::size_t bar = std::max<std::size_t>(n / 4, 1);
            const std::size_t k = std::max<std::size_t>((n - std::min(bar, n)) / 2, 2);
            return make_dumbbell(k, bar);
        }
        case graph_family::wheel: return make_wheel(std::max<std::size_t>(n, 4));
        case graph_family::watts_strogatz: {
            // k = 4 nearest neighbors, 15% shortcuts: clustered but small
            // diameter — the canonical small-world operating point.
            const std::size_t nn = std::max<std::size_t>(n, 6);
            return make_watts_strogatz(nn, 4, 0.15, seed);
        }
        case graph_family::barabasi_albert:
            return make_barabasi_albert(std::max<std::size_t>(n, 3), 2, seed);
        case graph_family::random_geometric: {
            const std::size_t nn = std::max<std::size_t>(n, 2);
            // ~1.5x the connectivity-threshold radius √(ln n / (π n)), so
            // the rejection loop accepts quickly at every size.
            const double r = std::min(
                1.5, 1.5 * std::sqrt(std::log(static_cast<double>(nn) + 1.0) /
                                     (3.14159265358979 * static_cast<double>(nn))));
            return make_random_geometric(nn, r, seed);
        }
        case graph_family::connected_caveman: {
            const auto caves = std::max<std::size_t>(
                3, static_cast<std::size_t>(std::round(std::sqrt(n))));
            return make_connected_caveman(caves, std::max<std::size_t>(n / caves, 3));
        }
    }
    throw error("make_family: unknown family");
}

std::vector<graph_family> all_families() {
    return {graph_family::path,          graph_family::cycle,
            graph_family::complete,      graph_family::star,
            graph_family::grid2d,        graph_family::torus,
            graph_family::hypercube,     graph_family::binary_tree,
            graph_family::random_regular, graph_family::erdos_renyi,
            graph_family::ring_of_cliques, graph_family::barbell,
            graph_family::lollipop,      graph_family::dumbbell,
            graph_family::wheel,         graph_family::watts_strogatz,
            graph_family::barabasi_albert, graph_family::random_geometric,
            graph_family::connected_caveman};
}

}  // namespace anole
