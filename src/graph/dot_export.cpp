#include "graph/dot_export.h"

#include <utility>

namespace anole {

void write_dot(std::ostream& os, const graph& g, const dot_style& style) {
    os << "graph anole {\n";
    if (!style.graph_attrs.empty()) os << "  " << style.graph_attrs << "\n";
    os << "  node [shape=circle, fontsize=10];\n";
    for (node_id u = 0; u < g.num_nodes(); ++u) {
        os << "  n" << u;
        const std::string label =
            style.node_label ? style.node_label(u) : std::to_string(u);
        os << " [label=\"" << label << "\"";
        if (style.node_attrs) {
            const std::string extra = style.node_attrs(u);
            if (!extra.empty()) os << ", " << extra;
        }
        os << "];\n";
    }
    for (const auto& [u, v] : g.edge_list()) {
        os << "  n" << u << " -- n" << v;
        if (style.edge_attrs) {
            const std::string extra = style.edge_attrs(u, v);
            if (!extra.empty()) os << " [" << extra << "]";
        }
        os << ";\n";
    }
    os << "}\n";
}

dot_style highlight_style(std::vector<bool> in_set, std::optional<node_id> special) {
    dot_style s;
    s.node_attrs = [set = std::move(in_set), special](node_id u) -> std::string {
        if (special && *special == u) {
            return "fillcolor=gold, style=filled, penwidth=2";
        }
        if (u < set.size() && set[u]) return "fillcolor=lightblue, style=filled";
        return "";
    };
    return s;
}

}  // namespace anole
