// anole — Graphviz DOT export.
//
// Release-quality tooling: dump a topology, an election outcome, or a
// broadcast territory as a .dot file for quick visual inspection
// (`dot -Tsvg out.dot > out.svg`). Styling hooks are simple per-node /
// per-edge label and attribute callbacks so examples and debugging
// sessions can color leaders, candidates, territories or BFS depths
// without this header knowing about protocols.
#pragma once

#include <functional>
#include <ostream>
#include <string>

#include "graph/graph.h"

namespace anole {

struct dot_style {
    // Extra per-node attributes, e.g. "fillcolor=gold,style=filled".
    // Empty string = defaults.
    std::function<std::string(node_id)> node_attrs;
    // Extra attributes for the edge u-v (u < v).
    std::function<std::string(node_id, node_id)> edge_attrs;
    // Node label; default = the engine-side index.
    std::function<std::string(node_id)> node_label;
    std::string graph_attrs = "layout=neato; overlap=false; splines=true;";
};

// Writes an undirected Graphviz representation of `g` to `os`.
void write_dot(std::ostream& os, const graph& g, const dot_style& style = {});

// Convenience: a style that highlights one set of nodes (e.g. a
// territory) and one special node (e.g. the leader).
[[nodiscard]] dot_style highlight_style(std::vector<bool> in_set,
                                        std::optional<node_id> special);

}  // namespace anole
