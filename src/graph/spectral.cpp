#include "graph/spectral.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "graph/lanczos.h"
#include "graph/properties.h"
#include "sim/thread_pool.h"
#include "util/rng.h"

namespace anole {

std::vector<double> walk_distribution_step(const graph& g, const std::vector<double>& pi) {
    require(pi.size() == g.num_nodes(), "walk_distribution_step: size mismatch");
    std::vector<double> out(pi.size(), 0.0);
    for (node_id u = 0; u < g.num_nodes(); ++u) {
        const double self = pi[u] * 0.5;
        out[u] += self;
        const double share = pi[u] * 0.5 / static_cast<double>(g.degree(u));
        for (node_id v : g.neighbors(u)) out[v] += share;
    }
    return out;
}

std::vector<double> walk_stationary(const graph& g) {
    std::vector<double> pi(g.num_nodes());
    const double denom = 2.0 * static_cast<double>(g.num_edges());
    for (node_id u = 0; u < g.num_nodes(); ++u) {
        pi[u] = static_cast<double>(g.degree(u)) / denom;
    }
    return pi;
}

namespace {

constexpr std::uint64_t kOverBudget = ~std::uint64_t{0};

// Steps the distribution from a point mass at `src` until within eps of
// stationary in ∞-norm; returns the step count, or kOverBudget past
// max_steps (pool jobs must not throw; callers convert the sentinel).
std::uint64_t mix_from(const graph& g, node_id src, const std::vector<double>& target,
                       double eps, std::uint64_t max_steps) {
    std::vector<double> pi(g.num_nodes(), 0.0);
    pi[src] = 1.0;
    for (std::uint64_t t = 0;; ++t) {
        double gap = 0.0;
        for (std::size_t i = 0; i < pi.size(); ++i) {
            gap = std::max(gap, std::abs(pi[i] - target[i]));
        }
        if (gap <= eps) return t;
        if (t >= max_steps) return kOverBudget;
        pi = walk_distribution_step(g, pi);
    }
}

// The shared start heuristic: BFS-farthest pair, min/max degree, randoms.
std::vector<node_id> extremal_starts(const graph& g, std::uint64_t seed,
                                     std::size_t extra_starts) {
    const auto d0 = bfs_distances(g, 0);
    const node_id a = static_cast<node_id>(std::max_element(d0.begin(), d0.end()) -
                                           d0.begin());
    const auto da = bfs_distances(g, a);
    const node_id b = static_cast<node_id>(std::max_element(da.begin(), da.end()) -
                                           da.begin());
    node_id dmin = 0, dmax = 0;
    for (node_id u = 0; u < g.num_nodes(); ++u) {
        if (g.degree(u) < g.degree(dmin)) dmin = u;
        if (g.degree(u) > g.degree(dmax)) dmax = u;
    }
    std::vector<node_id> starts = {0, a, b, dmin, dmax};
    xoshiro256ss rng(derive_seed(seed, g.num_nodes(), 0x317));
    for (std::size_t i = 0; i < extra_starts; ++i) {
        starts.push_back(static_cast<node_id>(rng.below(g.num_nodes())));
    }
    std::sort(starts.begin(), starts.end());
    starts.erase(std::unique(starts.begin(), starts.end()), starts.end());
    return starts;
}

// Runs fn(i) for every start index, sharded when a pool is given. The
// per-index results land in a caller-indexed vector, so the max-reduction
// below is independent of scheduling.
template <class Fn>
void for_each_start(std::size_t count, thread_pool* pool, Fn&& fn) {
    if (pool == nullptr || count <= 1) {
        for (std::size_t i = 0; i < count; ++i) fn(i);
    } else {
        pool->parallel_for(count, fn);
    }
}

}  // namespace

std::uint64_t mixing_time_simulated(const graph& g, const mixing_time_options& opt) {
    const auto target = walk_stationary(g);
    const double eps = 1.0 / (2.0 * static_cast<double>(g.num_nodes()));

    std::vector<node_id> starts;
    if (opt.exhaustive_starts) {
        starts.resize(g.num_nodes());
        std::iota(starts.begin(), starts.end(), 0);
    } else {
        starts = extremal_starts(g, opt.seed, opt.extra_starts);
    }

    std::vector<std::uint64_t> per_start(starts.size(), 0);
    for_each_start(starts.size(), opt.pool, [&](std::size_t i) {
        per_start[i] = mix_from(g, starts[i], target, eps, opt.max_steps);
    });
    std::uint64_t worst = 0;
    for (std::uint64_t t : per_start) worst = std::max(worst, t);
    require(worst != kOverBudget, "mixing_time_simulated: exceeded max_steps");
    return worst;
}

namespace {

// Token-ensemble evaluation of the §2 stopping rule from one start:
// evolve K tokens at once (binomial stayers, multinomial port split —
// PR 3's O(degree) machinery) and measure ‖ĉ/K − π‖∞ instead of the
// dense distribution. Returns the step count or kOverBudget.
std::uint64_t sampled_mix_from(const graph& g, node_id src, std::uint64_t tokens,
                               const std::vector<double>& target, double eps,
                               std::uint64_t seed, std::uint64_t max_steps) {
    const std::size_t n = g.num_nodes();
    std::vector<std::uint64_t> counts(n, 0), next(n, 0);
    counts[src] = tokens;
    std::size_t max_deg = 0;
    for (node_id u = 0; u < n; ++u) max_deg = std::max(max_deg, g.degree(u));
    std::vector<std::uint64_t> ports(max_deg);
    xoshiro256ss rng(derive_seed(seed, src, 0x5A3D));
    const double inv_k = 1.0 / static_cast<double>(tokens);

    for (std::uint64_t t = 0;; ++t) {
        double gap = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            gap = std::max(gap,
                           std::abs(static_cast<double>(counts[i]) * inv_k - target[i]));
        }
        if (gap <= eps) return t;
        if (t >= max_steps) return kOverBudget;

        std::fill(next.begin(), next.end(), 0);
        for (node_id u = 0; u < n; ++u) {
            const std::uint64_t resident = counts[u];
            if (resident == 0) continue;
            const std::uint64_t movers = binomial(rng, resident, 0.5);
            next[u] += resident - movers;
            if (movers == 0) continue;
            const auto nbrs = g.neighbors(u);
            const std::uint64_t d = nbrs.size();
            if (movers < d) {
                for (std::uint64_t i = 0; i < movers; ++i) {
                    ++next[nbrs[static_cast<std::size_t>(rng.below(d))]];
                }
            } else {
                auto span = std::span<std::uint64_t>(ports.data(), d);
                multinomial_uniform(rng, movers, span);
                for (std::uint64_t p = 0; p < d; ++p) next[nbrs[p]] += span[p];
            }
        }
        counts.swap(next);
    }
}

std::uint64_t auto_tokens(const graph& g) {
    // Per-node noise of ĉ_v/K at stationarity is ≈ √(π_v/K) ≤ √(π_max/K);
    // keeping 4σ under half the 1/(2n) threshold needs K ≥ 256·π_max·n².
    const double n = static_cast<double>(g.num_nodes());
    const double pi_max = degrees(g).max / (2.0 * static_cast<double>(g.num_edges()));
    const double k = 256.0 * pi_max * n * n;
    return std::max<std::uint64_t>(4096, static_cast<std::uint64_t>(std::ceil(k)));
}

}  // namespace

std::uint64_t mixing_time_sampled(const graph& g, const sampled_mixing_options& opt) {
    const auto target = walk_stationary(g);
    const double eps = 1.0 / (2.0 * static_cast<double>(g.num_nodes()));
    const std::uint64_t tokens = opt.tokens != 0 ? opt.tokens : auto_tokens(g);
    const auto starts = extremal_starts(g, opt.seed, opt.extra_starts);

    std::vector<std::uint64_t> per_start(starts.size(), 0);
    for_each_start(starts.size(), opt.pool, [&](std::size_t i) {
        per_start[i] = sampled_mix_from(g, starts[i], tokens, target, eps, opt.seed,
                                        opt.max_steps);
    });
    std::uint64_t worst = 0;
    for (std::uint64_t t : per_start) worst = std::max(worst, t);
    require(worst != kOverBudget, "mixing_time_sampled: exceeded max_steps");
    return worst;
}

namespace {

// y = N x with N = I/2 + D^{-1/2} A D^{-1/2} / 2 (symmetric).
std::vector<double> lazy_sym_step(const graph& g, const std::vector<double>& x,
                                  const std::vector<double>& inv_sqrt_d) {
    std::vector<double> y(x.size(), 0.0);
    for (node_id u = 0; u < g.num_nodes(); ++u) {
        y[u] += 0.5 * x[u];
        const double xu = 0.5 * x[u] * inv_sqrt_d[u];
        for (node_id v : g.neighbors(u)) {
            y[v] += xu * inv_sqrt_d[v];
        }
    }
    return y;
}

double norm2(const std::vector<double>& v) {
    double s = 0;
    for (double x : v) s += x * x;
    return std::sqrt(s);
}

void deflate(std::vector<double>& v, const std::vector<double>& unit_top) {
    double dot = 0;
    for (std::size_t i = 0; i < v.size(); ++i) dot += v[i] * unit_top[i];
    for (std::size_t i = 0; i < v.size(); ++i) v[i] -= dot * unit_top[i];
}

std::size_t auto_iters(const graph& g, std::size_t requested) {
    if (requested != 0) return requested;
    // Power iteration error decays like (λ3/λ2)^t; spectral gaps as small
    // as ~1/n² (cycle) need Θ(n² log n) iterations. Cap generously; the
    // residual early exit below stops well-conditioned families long
    // before this worst-case budget.
    const double n = static_cast<double>(g.num_nodes());
    const double est = 40.0 * n * std::log(n + 2.0);
    return static_cast<std::size_t>(std::min(est, 4.0e6)) + 100;
}

// Shared power-iteration core: returns the converged unit vector in `v`
// and the final Rayleigh quotient. `tol` bounds ‖Nv − ρv‖₂, computed from
// ρ = v·w and ‖w‖ (no extra matvec: residual² = ‖w‖² − ρ² for unit v).
double power_iterate(const graph& g, std::vector<double>& v,
                     const std::vector<double>& inv_sqrt_d,
                     const std::vector<double>& top, std::size_t its, double tol) {
    double rho = 0.5;
    for (std::size_t t = 0; t < its; ++t) {
        std::vector<double> w = lazy_sym_step(g, v, inv_sqrt_d);
        deflate(w, top);
        const double nw = norm2(w);
        if (nw < 1e-300) return 0.5;  // spectrum collapsed; lazy floor
        double dot = 0.0;
        for (std::size_t i = 0; i < v.size(); ++i) dot += v[i] * w[i];
        rho = dot;
        const double res2 = nw * nw - rho * rho;
        for (std::size_t i = 0; i < v.size(); ++i) v[i] = w[i] / nw;
        if (t > 4 && res2 <= tol * tol) break;
    }
    return rho;
}

}  // namespace

double lambda2_lazy(const graph& g, std::size_t iters, thread_pool* pool) {
    lanczos_options opt;
    opt.max_iters = iters;
    opt.pool = pool;
    return lanczos_lambda2(g, opt).lambda2;
}

double lambda2_power(const graph& g, std::size_t iters, double tol) {
    const std::size_t n = g.num_nodes();
    require(n >= 2, "lambda2_power: n >= 2");
    std::vector<double> inv_sqrt_d(n), top(n);
    for (node_id u = 0; u < n; ++u) {
        inv_sqrt_d[u] = 1.0 / std::sqrt(static_cast<double>(g.degree(u)));
        top[u] = std::sqrt(static_cast<double>(g.degree(u)));
    }
    const double tn = norm2(top);
    for (double& x : top) x /= tn;

    xoshiro256ss rng(derive_seed(0xFEED, n, g.num_edges()));
    std::vector<double> v(n);
    for (double& x : v) x = rng.uniform01() - 0.5;
    deflate(v, top);
    const double nv = norm2(v);
    require(nv > 0, "lambda2_power: degenerate start");
    for (double& x : v) x /= nv;

    return power_iterate(g, v, inv_sqrt_d, top, auto_iters(g, iters), tol);
}

std::uint64_t mixing_time_spectral_bound(const graph& g, double lambda2) {
    const double n = static_cast<double>(g.num_nodes());
    const auto ds = degrees(g);
    const double ratio = std::sqrt(static_cast<double>(ds.max) /
                                   static_cast<double>(ds.min));
    // ‖P^t π0 − π‖∞ ≤ n·√(dmax/dmin)·λ₂^t; need ≤ 1/(2n).
    const double needed = std::log(2.0 * n * n * ratio);
    const double gap = -std::log(std::min(lambda2, 1.0 - 1e-12));
    return static_cast<std::uint64_t>(std::ceil(needed / std::max(gap, 1e-12)));
}

std::uint64_t mixing_time_spectral_bound(const graph& g) {
    return mixing_time_spectral_bound(g, lambda2_lazy(g));
}

std::vector<double> fiedler_vector(const graph& g, std::size_t iters, std::uint64_t seed,
                                   thread_pool* pool) {
    lanczos_options opt;
    opt.max_iters = iters;
    opt.seed = seed;
    opt.pool = pool;
    return lanczos_lambda2(g, opt).fiedler;
}

std::vector<double> fiedler_vector_power(const graph& g, std::size_t iters,
                                         std::uint64_t seed, double tol) {
    const std::size_t n = g.num_nodes();
    require(n >= 2, "fiedler_vector_power: n >= 2");
    std::vector<double> inv_sqrt_d(n), top(n);
    for (node_id u = 0; u < n; ++u) {
        inv_sqrt_d[u] = 1.0 / std::sqrt(static_cast<double>(g.degree(u)));
        top[u] = std::sqrt(static_cast<double>(g.degree(u)));
    }
    const double tn = norm2(top);
    for (double& x : top) x /= tn;

    xoshiro256ss rng(derive_seed(seed, n, 0xF1ED));
    std::vector<double> v(n);
    for (double& x : v) x = rng.uniform01() - 0.5;
    deflate(v, top);
    const double nv = norm2(v);
    for (double& x : v) x /= nv;

    power_iterate(g, v, inv_sqrt_d, top, auto_iters(g, iters), tol);
    // Scale back: sweep cuts should order by the D^{-1/2}-scaled embedding.
    for (std::size_t i = 0; i < n; ++i) v[i] *= inv_sqrt_d[i];
    return v;
}

const char* to_string(profile_method m) noexcept {
    switch (m) {
        case profile_method::fact: return "fact";
        case profile_method::exact: return "exact";
        case profile_method::sweep: return "sweep";
        case profile_method::simulated: return "simulated";
        case profile_method::sampled: return "sampled";
        case profile_method::spectral: return "spectral";
    }
    return "unknown";
}

profile_method profile_method_from_string(const std::string& s) {
    if (s == "fact") return profile_method::fact;
    if (s == "exact") return profile_method::exact;
    if (s == "sweep") return profile_method::sweep;
    if (s == "simulated") return profile_method::simulated;
    if (s == "sampled") return profile_method::sampled;
    if (s == "spectral") return profile_method::spectral;
    throw error("profile_method_from_string: unknown method '" + s + "'");
}

std::string graph_profile::to_json() const {
    char buf[640];
    std::snprintf(
        buf, sizeof(buf),
        "{\"n\":%zu,\"m\":%zu,\"diameter\":%u,\"conductance\":%.17g,"
        "\"isoperimetric\":%.17g,\"mixing_time\":%llu,\"lambda2\":%.17g,"
        "\"exact_cuts\":%s,\"diameter_method\":\"%s\",\"conductance_method\":\"%s\","
        "\"isoperimetric_method\":\"%s\",\"mixing_method\":\"%s\","
        "\"lambda2_converged\":%s}",
        n, m, diameter, conductance, isoperimetric,
        static_cast<unsigned long long>(mixing_time), lambda2,
        exact_cuts ? "true" : "false", to_string(diameter_method),
        to_string(conductance_method), to_string(isoperimetric_method),
        to_string(mixing_method), lambda2_converged ? "true" : "false");
    return std::string(buf);
}

graph_profile profile(const graph& g, std::uint64_t seed) {
    profile_options opt;
    opt.seed = seed;
    return profile(g, opt);
}

graph_profile profile(const graph& g, const profile_options& opt) {
    graph_profile p;
    p.n = g.num_nodes();
    p.m = g.num_edges();
    const graph_facts& f = g.facts();

    if (f.diameter) {
        p.diameter = static_cast<std::uint32_t>(*f.diameter);
        p.diameter_method = profile_method::fact;
    } else if (static_cast<std::uint64_t>(p.n) * p.m <= opt.exact_diameter_work) {
        p.diameter = diameter_exact(g);
        p.diameter_method = profile_method::exact;
    } else {
        p.diameter = diameter_estimate(g).upper;
        p.diameter_method = profile_method::sweep;
    }

    // One Lanczos run serves λ₂ and (when needed) both sweep cuts — the
    // old path recomputed the Fiedler vector per cut.
    lanczos_options lopt;
    lopt.seed = opt.seed;
    lopt.pool = opt.pool;
    const lanczos_result eig = lanczos_lambda2(g, lopt);
    p.lambda2 = eig.lambda2;
    p.lambda2_converged = eig.converged;

    const bool small = p.n <= opt.exact_cuts_n;
    if (f.conductance) {
        p.conductance = *f.conductance;
        p.conductance_method = profile_method::fact;
    } else if (small) {
        p.conductance = conductance_exact(g);
        p.conductance_method = profile_method::exact;
    } else {
        p.conductance = conductance_sweep(g, eig.fiedler);
        p.conductance_method = profile_method::sweep;
    }
    if (f.isoperimetric) {
        p.isoperimetric = *f.isoperimetric;
        p.isoperimetric_method = profile_method::fact;
    } else if (small) {
        p.isoperimetric = isoperimetric_exact(g);
        p.isoperimetric_method = profile_method::exact;
    } else {
        p.isoperimetric = isoperimetric_sweep(g, eig.fiedler);
        p.isoperimetric_method = profile_method::sweep;
    }
    p.exact_cuts = p.conductance_method == profile_method::fact ||
                   p.conductance_method == profile_method::exact;

    if (f.mixing_time) {
        p.mixing_time = *f.mixing_time;
        p.mixing_method = profile_method::fact;
        return p;
    }
    if (p.n <= opt.exhaustive_tmix_n) {
        mixing_time_options mo;
        mo.seed = opt.seed;
        mo.exhaustive_starts = true;
        mo.pool = opt.pool;
        p.mixing_time = mixing_time_simulated(g, mo);
        p.mixing_method = profile_method::exact;
        return p;
    }

    // Cost model: predict the work each estimator needs from the spectral
    // bound t̂ (already paid for by the Lanczos run) and run the cheapest
    // one that fits the budget; past the budget the bound itself is the
    // answer. Work units: dense = floats touched (2m per step per start),
    // sampled = RNG-weighted draws (n scan + min(K, 2m) port work).
    const std::uint64_t that = mixing_time_spectral_bound(g, p.lambda2);
    const double starts = 5.0 + 4.0;  // extremal heuristic start count
    const double m2 = 2.0 * static_cast<double>(p.m);
    const double dense_cost = static_cast<double>(that) * m2 * starts;
    const std::uint64_t tokens = auto_tokens(g);
    constexpr double kRngOpWeight = 4.0;  // one RNG draw ≈ a few float ops
    const double sampled_cost =
        static_cast<double>(that) * starts * kRngOpWeight *
        (static_cast<double>(p.n) + std::min(m2, static_cast<double>(tokens)));
    const double budget = static_cast<double>(opt.tmix_work_budget);
    // Past 8·t̂ something is off (the bound should dominate the measured
    // value); give up on measurement and report the bound.
    const std::uint64_t step_cap = 8 * that + 64;

    try {
        if (dense_cost <= budget && dense_cost <= sampled_cost) {
            mixing_time_options mo;
            mo.seed = opt.seed;
            mo.max_steps = step_cap;
            mo.pool = opt.pool;
            p.mixing_time = mixing_time_simulated(g, mo);
            p.mixing_method = profile_method::simulated;
            return p;
        }
        if (sampled_cost <= budget) {
            sampled_mixing_options so;
            so.seed = opt.seed;
            so.tokens = tokens;
            so.max_steps = step_cap;
            so.pool = opt.pool;
            p.mixing_time = mixing_time_sampled(g, so);
            p.mixing_method = profile_method::sampled;
            return p;
        }
    } catch (const error&) {
        // Step cap blown: fall through to the spectral bound.
    }
    p.mixing_time = that;
    p.mixing_method = profile_method::spectral;
    return p;
}

}  // namespace anole
