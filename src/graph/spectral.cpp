#include "graph/spectral.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "graph/properties.h"
#include "util/rng.h"

namespace anole {

std::vector<double> walk_distribution_step(const graph& g, const std::vector<double>& pi) {
    require(pi.size() == g.num_nodes(), "walk_distribution_step: size mismatch");
    std::vector<double> out(pi.size(), 0.0);
    for (node_id u = 0; u < g.num_nodes(); ++u) {
        const double self = pi[u] * 0.5;
        out[u] += self;
        const double share = pi[u] * 0.5 / static_cast<double>(g.degree(u));
        for (node_id v : g.neighbors(u)) out[v] += share;
    }
    return out;
}

std::vector<double> walk_stationary(const graph& g) {
    std::vector<double> pi(g.num_nodes());
    const double denom = 2.0 * static_cast<double>(g.num_edges());
    for (node_id u = 0; u < g.num_nodes(); ++u) {
        pi[u] = static_cast<double>(g.degree(u)) / denom;
    }
    return pi;
}

namespace {

// Steps the distribution from a point mass at `src` until within eps of
// stationary in ∞-norm; returns the step count.
std::uint64_t mix_from(const graph& g, node_id src, const std::vector<double>& target,
                       double eps, std::uint64_t max_steps) {
    std::vector<double> pi(g.num_nodes(), 0.0);
    pi[src] = 1.0;
    for (std::uint64_t t = 0;; ++t) {
        double gap = 0.0;
        for (std::size_t i = 0; i < pi.size(); ++i) {
            gap = std::max(gap, std::abs(pi[i] - target[i]));
        }
        if (gap <= eps) return t;
        require(t < max_steps, "mixing_time_simulated: exceeded max_steps");
        pi = walk_distribution_step(g, pi);
    }
}

}  // namespace

std::uint64_t mixing_time_simulated(const graph& g, const mixing_time_options& opt) {
    const auto target = walk_stationary(g);
    const double eps = 1.0 / (2.0 * static_cast<double>(g.num_nodes()));

    std::vector<node_id> starts;
    if (opt.exhaustive_starts) {
        starts.resize(g.num_nodes());
        std::iota(starts.begin(), starts.end(), 0);
    } else {
        // Extremal heuristic: BFS-farthest pair, min/max degree, randoms.
        const auto d0 = bfs_distances(g, 0);
        const node_id a = static_cast<node_id>(
            std::max_element(d0.begin(), d0.end()) - d0.begin());
        const auto da = bfs_distances(g, a);
        const node_id b = static_cast<node_id>(
            std::max_element(da.begin(), da.end()) - da.begin());
        node_id dmin = 0, dmax = 0;
        for (node_id u = 0; u < g.num_nodes(); ++u) {
            if (g.degree(u) < g.degree(dmin)) dmin = u;
            if (g.degree(u) > g.degree(dmax)) dmax = u;
        }
        starts = {0, a, b, dmin, dmax};
        xoshiro256ss rng(derive_seed(opt.seed, g.num_nodes(), 0x317));
        for (std::size_t i = 0; i < opt.extra_starts; ++i) {
            starts.push_back(static_cast<node_id>(rng.below(g.num_nodes())));
        }
        std::sort(starts.begin(), starts.end());
        starts.erase(std::unique(starts.begin(), starts.end()), starts.end());
    }

    std::uint64_t worst = 0;
    for (node_id s : starts) {
        worst = std::max(worst, mix_from(g, s, target, eps, opt.max_steps));
    }
    return worst;
}

namespace {

// y = N x with N = I/2 + D^{-1/2} A D^{-1/2} / 2 (symmetric).
std::vector<double> lazy_sym_step(const graph& g, const std::vector<double>& x,
                                  const std::vector<double>& inv_sqrt_d) {
    std::vector<double> y(x.size(), 0.0);
    for (node_id u = 0; u < g.num_nodes(); ++u) {
        y[u] += 0.5 * x[u];
        const double xu = 0.5 * x[u] * inv_sqrt_d[u];
        for (node_id v : g.neighbors(u)) {
            y[v] += xu * inv_sqrt_d[v];
        }
    }
    return y;
}

double norm2(const std::vector<double>& v) {
    double s = 0;
    for (double x : v) s += x * x;
    return std::sqrt(s);
}

void deflate(std::vector<double>& v, const std::vector<double>& unit_top) {
    double dot = 0;
    for (std::size_t i = 0; i < v.size(); ++i) dot += v[i] * unit_top[i];
    for (std::size_t i = 0; i < v.size(); ++i) v[i] -= dot * unit_top[i];
}

std::size_t auto_iters(const graph& g, std::size_t requested) {
    if (requested != 0) return requested;
    // Power iteration error decays like (λ2/λ1)^t; spectral gaps as small
    // as ~1/n² (cycle) need Θ(n² log n) iterations. Cap generously.
    const double n = static_cast<double>(g.num_nodes());
    const double est = 40.0 * n * std::log(n + 2.0);
    return static_cast<std::size_t>(std::min(est, 4.0e6)) + 100;
}

}  // namespace

double lambda2_lazy(const graph& g, std::size_t iters) {
    const std::size_t n = g.num_nodes();
    require(n >= 2, "lambda2_lazy: n >= 2");
    std::vector<double> inv_sqrt_d(n), top(n);
    for (node_id u = 0; u < n; ++u) {
        inv_sqrt_d[u] = 1.0 / std::sqrt(static_cast<double>(g.degree(u)));
        top[u] = std::sqrt(static_cast<double>(g.degree(u)));
    }
    const double tn = norm2(top);
    for (double& x : top) x /= tn;

    xoshiro256ss rng(derive_seed(0xFEED, n, g.num_edges()));
    std::vector<double> v(n);
    for (double& x : v) x = rng.uniform01() - 0.5;
    deflate(v, top);
    double nv = norm2(v);
    require(nv > 0, "lambda2_lazy: degenerate start");
    for (double& x : v) x /= nv;

    const std::size_t its = auto_iters(g, iters);
    double lambda = 0.5;
    for (std::size_t t = 0; t < its; ++t) {
        std::vector<double> w = lazy_sym_step(g, v, inv_sqrt_d);
        deflate(w, top);
        const double nw = norm2(w);
        if (nw < 1e-300) return 0.5;  // spectrum collapsed; lazy floor
        lambda = nw;  // Rayleigh-ish: |N v| for unit v converges to λ2
        for (std::size_t i = 0; i < n; ++i) v[i] = w[i] / nw;
        // Early exit once consecutive estimates stabilize.
        if (t > 64 && t % 32 == 0) {
            std::vector<double> w2 = lazy_sym_step(g, v, inv_sqrt_d);
            deflate(w2, top);
            const double l2 = norm2(w2);
            if (std::abs(l2 - lambda) < 1e-12) return l2;
        }
    }
    return lambda;
}

std::uint64_t mixing_time_spectral_bound(const graph& g) {
    const double l2 = lambda2_lazy(g);
    const double n = static_cast<double>(g.num_nodes());
    const auto ds = degrees(g);
    const double ratio = std::sqrt(static_cast<double>(ds.max) /
                                   static_cast<double>(ds.min));
    // ‖P^t π0 − π‖∞ ≤ n·√(dmax/dmin)·λ₂^t; need ≤ 1/(2n).
    const double needed = std::log(2.0 * n * n * ratio);
    const double gap = -std::log(std::min(l2, 1.0 - 1e-12));
    return static_cast<std::uint64_t>(std::ceil(needed / std::max(gap, 1e-12)));
}

std::vector<double> fiedler_vector(const graph& g, std::size_t iters, std::uint64_t seed) {
    const std::size_t n = g.num_nodes();
    require(n >= 2, "fiedler_vector: n >= 2");
    std::vector<double> inv_sqrt_d(n), top(n);
    for (node_id u = 0; u < n; ++u) {
        inv_sqrt_d[u] = 1.0 / std::sqrt(static_cast<double>(g.degree(u)));
        top[u] = std::sqrt(static_cast<double>(g.degree(u)));
    }
    const double tn = norm2(top);
    for (double& x : top) x /= tn;

    xoshiro256ss rng(derive_seed(seed, n, 0xF1ED));
    std::vector<double> v(n);
    for (double& x : v) x = rng.uniform01() - 0.5;
    deflate(v, top);
    double nv = norm2(v);
    for (double& x : v) x /= nv;

    const std::size_t its = auto_iters(g, iters);
    for (std::size_t t = 0; t < its; ++t) {
        std::vector<double> w = lazy_sym_step(g, v, inv_sqrt_d);
        deflate(w, top);
        const double nw = norm2(w);
        if (nw < 1e-300) break;
        for (std::size_t i = 0; i < n; ++i) v[i] = w[i] / nw;
    }
    // Scale back: sweep cuts should order by the D^{-1/2}-scaled embedding.
    for (std::size_t i = 0; i < n; ++i) v[i] *= inv_sqrt_d[i];
    return v;
}

graph_profile profile(const graph& g, std::uint64_t seed) {
    graph_profile p;
    p.n = g.num_nodes();
    p.m = g.num_edges();
    const graph_facts& f = g.facts();

    if (f.diameter) {
        p.diameter = static_cast<std::uint32_t>(*f.diameter);
    } else if (p.n <= 4096) {
        p.diameter = diameter_exact(g);
    } else {
        p.diameter = diameter_estimate(g).upper;
    }

    const bool small = p.n <= 20;
    p.exact_cuts = small;
    if (f.conductance) {
        p.conductance = *f.conductance;
        p.exact_cuts = true;
    } else if (small) {
        p.conductance = conductance_exact(g);
    } else {
        p.conductance = conductance_sweep(g, fiedler_vector(g, 0, seed));
    }
    if (f.isoperimetric) {
        p.isoperimetric = *f.isoperimetric;
    } else if (small) {
        p.isoperimetric = isoperimetric_exact(g);
    } else {
        p.isoperimetric = isoperimetric_sweep(g, fiedler_vector(g, 0, seed));
    }

    p.lambda2 = lambda2_lazy(g);
    if (f.mixing_time) {
        p.mixing_time = *f.mixing_time;
    } else {
        mixing_time_options opt;
        opt.seed = seed;
        opt.exhaustive_starts = p.n <= 128;
        p.mixing_time = mixing_time_simulated(g, opt);
    }
    return p;
}

}  // namespace anole
