// anole — post-election services: explicit leader election, leader
// broadcast, and BFS spanning-tree construction.
//
// The paper's related-work section notes that the implicit-election
// results "are extended to other problems, such as Broadcast, tree
// construction and explicit Leader Election, once a leader has been
// elected" (§3). This module provides exactly those extensions on top of
// either election protocol, still anonymous and CONGEST-conformant:
//
//   * leader announcement — the (unique) flag holder floods its random ID
//     for diameter-many rounds; afterwards every node knows the leader's
//     ID, upgrading implicit election to *explicit* election at O(m·1)
//     extra messages per improvement wave and O(D) extra time;
//   * BFS tree — the announcement wave doubles as tree construction: the
//     port of first arrival is the parent pointer, children acks build
//     the child lists, yielding a breadth-first spanning tree rooted at
//     the leader (the substrate for the leader's later coordination
//     work — aggregation, scheduling, resource allocation, per §1).
//
// run_explicit_irrevocable() composes Theorem 1's protocol with the
// announcement and returns both the election and tree statistics; tests
// verify the tree is a well-formed BFS tree (parent depth = own depth−1).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/irrevocable.h"
#include "graph/graph.h"
#include "sim/engine.h"
#include "util/bit_codec.h"

namespace anole {

struct announce_msg {
    std::uint64_t leader_id = 0;
    std::uint32_t depth = 0;  // BFS depth of the sender
    bool ack = false;         // child -> parent adoption ack

    [[nodiscard]] std::size_t bit_size() const noexcept {
        return 1 + gamma0_bits(leader_id) + gamma0_bits(depth);
    }
};

// Announcement + BFS-tree protocol. Exactly one node is constructed as
// the root (the election winner). Runs `rounds` >= diameter + 2 rounds.
class announce_node {
public:
    using message_type = announce_msg;

    announce_node(std::size_t degree, bool is_root, std::uint64_t leader_id,
                  std::uint64_t rounds)
        : degree_(degree), rounds_(rounds) {
        if (is_root) {
            leader_id_ = leader_id;
            depth_ = 0;
        }
    }

    void on_round(node_ctx<announce_msg>& ctx, inbox_view<announce_msg> inbox) {
        for (const auto& [port, msg] : inbox) {
            if (msg.ack) {
                children_.push_back(port);
            } else if (!joined() && msg.leader_id != 0) {
                leader_id_ = msg.leader_id;
                depth_ = msg.depth + 1;
                parent_ = port;
                ack_pending_ = true;
            }
        }
        if (ctx.round() >= rounds_) {
            ctx.halt();
            return;
        }
        if (joined() && !announced_) {
            announced_ = true;
            for (port_id p = 0; p < degree_; ++p) {
                if (parent_ && *parent_ == p) continue;  // ack goes there
                ctx.send(p, announce_msg{leader_id_, depth_, false});
            }
        }
        if (ack_pending_) {
            ack_pending_ = false;
            ctx.send(*parent_, announce_msg{leader_id_, depth_, true});
        }
    }

    [[nodiscard]] bool joined() const noexcept { return leader_id_ != 0; }
    [[nodiscard]] std::uint64_t known_leader() const noexcept { return leader_id_; }
    [[nodiscard]] std::uint32_t depth() const noexcept { return depth_; }
    [[nodiscard]] std::optional<port_id> parent() const noexcept { return parent_; }
    [[nodiscard]] const std::vector<port_id>& children() const noexcept {
        return children_;
    }

private:
    std::size_t degree_;
    std::uint64_t rounds_;
    std::uint64_t leader_id_ = 0;
    std::uint32_t depth_ = 0;
    std::optional<port_id> parent_;
    std::vector<port_id> children_;
    bool announced_ = false;
    bool ack_pending_ = false;
};

// --- drivers -----------------------------------------------------------------

struct announce_result {
    bool all_know_leader = false;
    std::uint64_t leader_id = 0;
    std::uint32_t tree_depth = 0;     // max BFS depth (== ecc of the root)
    bool bfs_tree_valid = false;      // every non-root: depth == parent+1
    std::uint64_t rounds = 0;
    phase_counters totals;
    std::vector<std::uint32_t> depths;  // per node
};

// Floods the leader's ID from `root`; `diameter` bounds the wave.
[[nodiscard]] announce_result run_announce(const graph& g, node_id root,
                                           std::uint64_t leader_id,
                                           std::uint64_t diameter,
                                           std::uint64_t seed);

struct explicit_result {
    irrevocable_result election;
    announce_result announcement;
    // Explicit LE succeeded: unique flag AND everyone knows the same ID.
    bool success = false;
};

// Theorem 1's protocol + the §3 extension: implicit election upgraded to
// explicit, with the BFS coordination tree as a byproduct.
[[nodiscard]] explicit_result run_explicit_irrevocable(const graph& g,
                                                       const irrevocable_params& params,
                                                       std::uint64_t diameter,
                                                       std::uint64_t seed);

}  // namespace anole
