// anole — Irrevocable Leader Election with known n (paper §4, Theorem 1).
//
// Algorithm 1 in four phases, all in the CONGEST model:
//
//   1. init (round 0) — every node draws ID uniform in {1..n⁴} and becomes
//      a candidate with probability (c·log n)/n.
//   2. broadcast — every candidate grows a territory with Cautious
//      broadcast (core/cautious_broadcast.h). The whp ≤ 4c·log n parallel
//      executions are time-multiplexed over *super-rounds* of 4c·log n
//      engine rounds: each node assigns the executions it is involved in
//      to slots in arrival order and steps one execution per engine round
//      (paper §4 "Candidate nodes span their territories"). Messages are
//      demultiplexed by the execution's source ID, so slot choices are
//      purely local.
//   3. walk — each candidate launches x lazy random walks (stay with
//      probability 1/2, else uniform neighbor) carrying its ID for
//      c·tmix·log n rounds. Walk tokens traversing a link in the same
//      round are merged into one ⟨ID_max, count⟩ message, and smaller IDs
//      are absorbed by larger ones on contact (Algorithm 5), keeping each
//      link at one O(log n)-bit message per round.
//   4. convergecast — every tree node repeatedly pushes the largest walk
//      ID it has seen toward each of its parents (one per territory it
//      belongs to); a candidate that never learns an ID above its own
//      raises the leader flag (Algorithm 5 convergecast + Algorithm 1
//      line 7).
//
// Documented deviation from the printed pseudocode: Algorithm 5 line 2
// initializes ID_max ← own ID at *every* node; taken literally the
// convergecast would return the maximum of all n random IDs and no
// candidate could ever win. The analysis (Theorem 1: "exactly one
// candidate with biggest ID is heard by all other candidates") requires
// that only candidate IDs circulate, so non-candidates start with
// ID_max = 0 here. Convergecast sends are also change-triggered rather
// than every-round — the Theorem 1 proof charges convergecast "not bigger
// than Cautious broadcast" messages, which every-round sending would
// violate (same reconciliation as Algorithm 4 line 24; see
// core/cautious_broadcast.h).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/cautious_broadcast.h"
#include "core/params.h"
#include "graph/graph.h"
#include "sim/engine.h"
#include "sim/oracle.h"
#include "util/bit_codec.h"

namespace anole {

// Wire message: cautious-broadcast kinds (tagged with the execution's
// source ID), walk-token batches, and convergecast updates.
struct ir_msg {
    enum class kind : std::uint8_t {
        // 0..6 mirror cb_kind numerically (cast in both directions).
        cb_source = 0,
        cb_confirm = 1,
        cb_size = 2,
        cb_activate = 3,
        cb_deactivate = 4,
        cb_stop = 5,
        cb_refresh = 6,
        walk = 7,  // exec = ID_max carried, value = token count
        cc = 8,    // exec = ID_max
    };

    kind k = kind::cb_source;
    std::uint64_t exec = 0;
    std::uint64_t value = 0;

    [[nodiscard]] std::size_t bit_size() const noexcept {
        switch (k) {
            case kind::cb_confirm:
            case kind::cb_size:
            case kind::cb_refresh:
            case kind::walk:
                return 4 + gamma0_bits(exec) + gamma0_bits(value);
            default:
                return 4 + gamma0_bits(exec);
        }
    }
};

class irrevocable_node {
public:
    using message_type = ir_msg;

    irrevocable_node(std::size_t degree, const irrevocable_params& params)
        : degree_(degree), p_(&params) {}

    void on_round(node_ctx<ir_msg>& ctx, inbox_view<ir_msg> inbox);

    // --- observers ---
    [[nodiscard]] bool is_candidate() const noexcept { return candidate_; }
    [[nodiscard]] std::uint64_t id() const noexcept { return id_; }
    [[nodiscard]] bool is_leader() const noexcept { return leader_; }
    [[nodiscard]] bool decided() const noexcept { return decided_; }
    [[nodiscard]] std::uint64_t id_max() const noexcept { return id_max_; }
    [[nodiscard]] const std::map<std::uint64_t, cb_exec>& executions() const noexcept {
        return execs_;
    }
    // Executions beyond the super-round slot capacity (whp zero; §4).
    [[nodiscard]] std::size_t slot_overflows() const noexcept { return overflows_; }
    [[nodiscard]] std::uint64_t walk_tokens() const noexcept { return walk_count_; }

private:
    void init(node_ctx<ir_msg>& ctx);
    void broadcast_round(node_ctx<ir_msg>& ctx, inbox_view<ir_msg> inbox);
    void walk_round(node_ctx<ir_msg>& ctx, inbox_view<ir_msg> inbox);
    void convergecast_round(node_ctx<ir_msg>& ctx, inbox_view<ir_msg> inbox);
    void decide(node_ctx<ir_msg>& ctx);

    cb_exec& exec_for(std::uint64_t exec_id);
    void absorb_id(std::uint64_t id) noexcept {
        if (id > id_max_) id_max_ = id;
    }

    std::size_t degree_;
    const irrevocable_params* p_;

    bool inited_ = false;
    bool candidate_ = false;
    std::uint64_t id_ = 0;
    bool leader_ = false;
    bool decided_ = false;

    // Broadcast phase: executions keyed by source ID; slot order = arrival.
    std::map<std::uint64_t, cb_exec> execs_;
    std::vector<std::uint64_t> slots_;
    std::size_t overflows_ = 0;

    // Walk phase.
    std::uint64_t walk_count_ = 0;
    std::uint64_t id_max_ = 0;
    std::vector<std::uint64_t> out_scratch_;  // per-port token counts
    std::vector<port_id> touched_;            // ports with nonzero counts

    // Convergecast phase: distinct parent ports over all territories.
    bool cc_ready_ = false;
    std::vector<port_id> parent_ports_;
    std::uint64_t cc_last_sent_ = 0;  // change-triggered resend
};

// --- experiment driver -------------------------------------------------------

struct irrevocable_result {
    bool success = false;         // exactly one leader flag raised
    std::size_t num_candidates = 0;
    std::size_t num_leaders = 0;
    std::uint64_t leader_id = 0;  // if exactly one
    bool max_candidate_won = false;
    std::size_t slot_overflows = 0;
    std::uint64_t rounds = 0;
    phase_counters totals;
    phase_counters phase_broadcast;
    phase_counters phase_walk;
    phase_counters phase_convergecast;
    std::vector<std::uint64_t> territory_sizes;  // per candidate (tree size)
    oracle_report oracle;  // sim/oracle.h safety verdicts
};

// Runs the full protocol on `g` with fresh per-node randomness derived
// from `seed`. The graph outlives the call. Budget defaults to a strict
// 16·⌈log2 n⌉ bits/link/round CONGEST budget (every protocol message fits;
// the factor is the O(log n) constant).
[[nodiscard]] irrevocable_result run_irrevocable(const graph& g,
                                                 const irrevocable_params& params,
                                                 std::uint64_t seed,
                                                 congest_budget budget =
                                                     congest_budget::strict_log(16),
                                                 const dynamics_spec& dynamics = {});

}  // namespace anole
