// anole — Revocable Leader Election, "Blind Leader Election with
// Certificates via Diffusion with Thresholds" (paper §5.2, Algorithms
// 6–7, Theorem 3 / Corollary 1).
//
// No node knows anything about the network (in blind mode, not even a
// bound on its size). Nodes iterate estimates k = 2, 4, 8, …; for each
// estimate they run f(k) *certification* iterations, each consisting of:
//
//   * coloring — each node is white w.p. p(k) = ln2/k^{1+ε}, else black;
//   * diffusion (r(k) rounds) — potentials (black 1, white 0) are
//     averaged with share denominator D(k) (core/diffusion.h); alarms set
//     the node's status q to `low` if its degree exceeds k^{1+ε}, if any
//     neighbor reports `low`, or — at phase end — if its potential stays
//     above τ(k) = 1 − 1/(k^{1+ε}−1) (Lemma 5: once k^{1+ε} ≥ 2n+1 and a
//     white node exists, every potential falls below τ);
//   * dissemination (k^{1+ε} rounds) — status, white-sighting flag and the
//     best (ID, certificate) pair are flooded.
//
// In the decision phase a node that never chose an ID, saw whites in
// fewer than half the iterations, and had at least one probing iteration,
// draws an ID uniform in [1..k^{4(1+ε)}·log⁴(4k)] *certified by k*. The
// leader, from any node's perspective, is the smallest ID among those
// carrying the largest certificate; the flag is revocable — hearing a
// better certificate later dethrones a leader (the impossibility theorem
// shows some revocation risk is unavoidable without knowing n).
//
// Pseudocode reconciliation: Algorithm 6 line 16 as printed overwrites
// (idldr, Kldr) with the node's own fresh choice unconditionally, which
// would discard an already-heard better certificate and break the
// monotone "largest certificate, then smallest ID" convergence that the
// analysis describes ("updating it as soon as x receives a larger
// certificate or the same certificate with a smaller ID", §5.2). We apply
// the same dominance rule to the node's own choice instead.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/diffusion.h"
#include "core/params.h"
#include "graph/graph.h"
#include "sim/engine.h"
#include "sim/oracle.h"
#include "util/bit_codec.h"
#include "util/dyadic.h"

namespace anole {

// Broadcast payload for both diffusion and dissemination rounds.
struct rev_msg {
    bool has_potential = false;  // diffusion rounds only
    double pot_d = 0;
    dyadic pot_x;
    bool q_low = false;
    bool c_white = false;
    std::uint64_t idldr = 0;  // 0 = nil
    std::uint64_t kldr = 0;   // 0 = nil
    std::uint64_t charged = 0;

    [[nodiscard]] std::size_t bit_size() const noexcept { return charged; }
};

class revocable_node {
public:
    using message_type = rev_msg;

    revocable_node(std::size_t degree, const revocable_params& params)
        : degree_(degree), p_(&params) {}

    void on_round(node_ctx<rev_msg>& ctx, inbox_view<rev_msg> inbox);

    // --- observers ---
    [[nodiscard]] std::uint64_t estimate() const noexcept { return k_; }
    [[nodiscard]] std::uint64_t id() const noexcept { return id_; }
    [[nodiscard]] std::uint64_t certificate() const noexcept { return cert_; }
    [[nodiscard]] std::uint64_t leader_id() const noexcept { return idldr_; }
    [[nodiscard]] std::uint64_t leader_certificate() const noexcept { return kldr_; }
    [[nodiscard]] bool leader() const noexcept { return leader_; }
    [[nodiscard]] std::uint64_t revocations() const noexcept { return revocations_; }
    // Per-estimate trace for the Lemma 6-8 experiments (E10).
    struct estimate_trace {
        std::uint64_t empty_iterations = 0;    // no white detected
        std::uint64_t probing_iterations = 0;  // ended with q = probing
        std::uint64_t iterations = 0;
        bool chose_here = false;
    };
    [[nodiscard]] const std::map<std::uint64_t, estimate_trace>& traces() const noexcept {
        return traces_;
    }

private:
    enum class phase : std::uint8_t { diffuse, disseminate };

    void start_estimate(node_ctx<rev_msg>& ctx);
    void start_iteration(node_ctx<rev_msg>& ctx);
    void apply_exchange(inbox_view<rev_msg> inbox, bool diffusion_update);
    void broadcast(node_ctx<rev_msg>& ctx, bool with_potential);
    void end_iteration();
    void decide(node_ctx<rev_msg>& ctx);
    void consider_leader(std::uint64_t cand_id, std::uint64_t cand_k);
    [[nodiscard]] bool potential_above_tau() const;

    std::size_t degree_;
    const revocable_params* p_;

    bool started_ = false;

    // Estimate loop.
    std::uint64_t k_ = 1;  // doubled on entry, so first estimate is 2
    std::uint64_t f_k_ = 0, r_k_ = 0, d_k_ = 0;
    std::uint64_t share_d_ = 0;
    std::size_t share_log2_ = 0;
    std::uint64_t iter_ = 0;
    std::uint64_t empty_count_ = 0, probing_count_ = 0;

    // Iteration state.
    phase phase_ = phase::diffuse;
    std::uint64_t round_in_phase_ = 0;
    bool white_ = false;
    bool q_low_ = false;
    bool c_white_ = false;
    double pot_d_ = 1.0;
    dyadic pot_x_ = dyadic::one();

    // Decision state.
    std::uint64_t id_ = 0, cert_ = 0;      // own (ID, certificate); 0 = nil
    std::uint64_t idldr_ = 0, kldr_ = 0;   // current leader view
    bool leader_ = false;
    std::uint64_t revocations_ = 0;

    std::map<std::uint64_t, estimate_trace> traces_;
};

// --- experiment driver -------------------------------------------------------

struct revocable_result {
    bool success = false;            // unique leader flag at stop
    std::size_t num_leaders = 0;
    std::uint64_t leader_id = 0;
    std::uint64_t leader_certificate = 0;
    std::uint64_t final_estimate = 0;          // k when stopped
    std::uint64_t stable_round = 0;            // first round views were final
    std::uint64_t rounds = 0;                  // engine rounds executed
    std::uint64_t congest_rounds = 0;          // bit-by-bit charged time
    std::uint64_t total_revocations = 0;       // leader-view changes after adoption
    std::size_t nodes_chose = 0;               // live nodes with an ID
    phase_counters totals;
    // Aggregated per-estimate traces (summed over nodes), for E10.
    std::map<std::uint64_t, revocable_node::estimate_trace> traces;
    oracle_report oracle;  // sim/oracle.h safety verdicts
};

// Runs until every node chose an ID, all leader views agree, and the view
// survives one further full estimate unchanged (revocability quiescence),
// or until params.k_cap / max_rounds. The fragmenting CONGEST budget
// charges bit-by-bit potential transmission per Theorem 3's accounting.
[[nodiscard]] revocable_result run_revocable(const graph& g,
                                             const revocable_params& params,
                                             std::uint64_t seed,
                                             std::uint64_t max_rounds = 500'000'000,
                                             congest_budget budget =
                                                 congest_budget::fragmenting(16),
                                             const dynamics_spec& dynamics = {});

}  // namespace anole
