// anole — potential diffusion (paper §5.2, the Avg core).
//
// The Revocable LE algorithm probes each network-size estimate k by
// *diffusing* node potentials: black nodes start at 1, white at 0, and in
// every round each node replaces its potential by
//
//     Φ ← Φ + Σ_{i∈N} Φ_i / D − |N|·Φ / D
//
// with share denominator D. The transition matrix is symmetric and doubly
// stochastic, so potentials converge to the uniform average ‖Φ₁‖/n
// (Lemma 3) at a rate governed by the chain's conductance (Lemma 4). The
// paper uses D = 2k^{1+ε}; we round D up to a power of two so *exact*
// (dyadic-rational) potentials stay exact — see revocable_params::
// share_denominator for why the analysis is preserved.
//
// Two arithmetic modes:
//   * exact — util/dyadic.h values; the conservation invariant
//     Σ Φ = const holds bit-for-bit and messages carry the true
//     (growing) encoding, transmitted bit-by-bit under CONGEST via the
//     fragmenting budget. Mantissas grow ~log2(D) bits per round — the
//     paper's own accounting ("each iteration i takes i·log(2k^{1+ε})
//     rounds") concedes this growth, so exact mode is for small round
//     counts (tests, E9 ablation).
//   * approx — double arithmetic for long sweeps; messages are *charged*
//     the paper's bit cost (1 + round·⌈log2 D⌉ bits) so time/bit
//     accounting still follows Theorem 3's model even though the payload
//     is a machine double.
//
// This header provides the shared update helpers plus a standalone
// diffusion-only protocol used by the Lemma 3/4 experiments (E9).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/engine.h"
#include "util/bit_codec.h"
#include "util/dyadic.h"

namespace anole {

// One diffusion update, exact arithmetic.
//   pot <- (pot*(D - deg) + Σ incoming) / D,   D = 2^log2_d
// Requires deg <= D (guaranteed by the degree alarm k^{1+ε} >= |N| and
// D >= 2k^{1+ε}).
[[nodiscard]] inline dyadic diffuse_exact(const dyadic& pot,
                                          const std::vector<dyadic>& incoming,
                                          std::uint64_t d, std::size_t log2_d) {
    dyadic acc = pot;
    acc.mul_small(d - incoming.size());
    for (const dyadic& in : incoming) acc += in;
    acc.div_pow2(log2_d);
    return acc;
}

// Same update in double arithmetic.
[[nodiscard]] inline double diffuse_approx(double pot, const std::vector<double>& incoming,
                                           std::uint64_t d) {
    double acc = pot * static_cast<double>(d - incoming.size());
    for (double in : incoming) acc += in;
    return acc / static_cast<double>(d);
}

// The paper's charged wire size of a potential in diffusion round r
// (1-based) with share denominator 2^log2_d: the value is a dyadic with
// at most 1 + r·log2_d significant bits.
[[nodiscard]] inline std::size_t charged_potential_bits(std::uint64_t r,
                                                        std::size_t log2_d) noexcept {
    return 1 + static_cast<std::size_t>(r) * log2_d;
}

// ---------------------------------------------------------------------------
// Standalone diffusion protocol (E9: Lemmas 3-5 validation)
// ---------------------------------------------------------------------------

struct diff_msg {
    double pot_d = 0;
    dyadic pot_x;
    bool exact = false;
    std::uint64_t charged = 0;  // set by sender

    [[nodiscard]] std::size_t bit_size() const noexcept { return charged; }
};

// Runs `rounds` diffusion exchanges with denominator 2^log2_d, starting
// from a given potential; exposes the trajectory endpoint. The harness
// initializes node 0..n-1 with arbitrary starting potentials (e.g. the
// black/white pattern of the Revocable LE certification phase).
class diffusion_node {
public:
    using message_type = diff_msg;

    diffusion_node(std::size_t degree, double start, bool exact, std::size_t log2_d,
                   std::uint64_t rounds)
        : degree_(degree),
          exact_(exact),
          log2_d_(log2_d),
          rounds_(rounds),
          pot_d_(start),
          pot_x_(start >= 1.0 ? dyadic::one() : dyadic::zero()) {
        require(!exact || start == 0.0 || start == 1.0,
                "diffusion_node: exact mode starts from 0/1 potentials");
    }

    void on_round(node_ctx<diff_msg>& ctx, inbox_view<diff_msg> inbox) {
        const std::uint64_t d = std::uint64_t{1} << log2_d_;
        require(degree_ <= d, "diffusion_node: degree exceeds share denominator");
        if (ctx.round() > 0) {
            // Apply the exchange completed by last round's messages.
            if (exact_) {
                std::vector<dyadic> in;
                in.reserve(inbox.size());
                for (const auto& [port, msg] : inbox) {
                    (void)port;
                    in.push_back(msg.pot_x);
                }
                pot_x_ = diffuse_exact(pot_x_, in, d, log2_d_);
            } else {
                std::vector<double> in;
                in.reserve(inbox.size());
                for (const auto& [port, msg] : inbox) {
                    (void)port;
                    in.push_back(msg.pot_d);
                }
                pot_d_ = diffuse_approx(pot_d_, in, d);
            }
        }
        if (ctx.round() >= rounds_) {
            ctx.halt();
            return;
        }
        diff_msg m;
        m.exact = exact_;
        if (exact_) {
            m.pot_x = pot_x_;
            m.charged = m.pot_x.wire_bits();
        } else {
            m.pot_d = pot_d_;
            m.charged = charged_potential_bits(ctx.round() + 1, log2_d_);
        }
        for (port_id p = 0; p < degree_; ++p) ctx.send(p, m);
    }

    [[nodiscard]] double potential() const noexcept {
        return exact_ ? pot_x_.to_double() : pot_d_;
    }
    [[nodiscard]] const dyadic& potential_exact() const noexcept { return pot_x_; }
    [[nodiscard]] bool exact() const noexcept { return exact_; }

private:
    std::size_t degree_;
    bool exact_;
    std::size_t log2_d_;
    std::uint64_t rounds_;
    double pot_d_;
    dyadic pot_x_;
};

}  // namespace anole
