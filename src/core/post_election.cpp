#include "core/post_election.h"

#include <algorithm>

namespace anole {

announce_result run_announce(const graph& g, node_id root, std::uint64_t leader_id,
                             std::uint64_t diameter, std::uint64_t seed) {
    require(root < g.num_nodes(), "run_announce: root out of range");
    require(leader_id != 0, "run_announce: leader_id must be nonzero");

    const std::uint64_t rounds = diameter + 2;
    engine<announce_node> eng(g, seed, congest_budget::strict_log(16));
    eng.spawn([&](std::size_t u) {
        return announce_node(g.degree(static_cast<node_id>(u)), u == root, leader_id,
                             rounds);
    });
    eng.run_until_halted(rounds + 2);

    announce_result res;
    res.leader_id = leader_id;
    res.rounds = eng.round();
    res.totals = eng.metrics().total();
    res.all_know_leader = true;
    res.bfs_tree_valid = true;
    res.depths.reserve(g.num_nodes());
    for (std::size_t u = 0; u < g.num_nodes(); ++u) {
        const announce_node& nd = eng.node(u);
        res.depths.push_back(nd.depth());
        if (!nd.joined() || nd.known_leader() != leader_id) {
            res.all_know_leader = false;
        }
        res.tree_depth = std::max(res.tree_depth, nd.depth());
        if (u != root) {
            if (!nd.parent()) {
                res.bfs_tree_valid = false;
            } else {
                const node_id pu =
                    g.neighbor(static_cast<node_id>(u), *nd.parent());
                if (eng.node(pu).depth() + 1 != nd.depth()) {
                    res.bfs_tree_valid = false;
                }
            }
        }
    }
    return res;
}

explicit_result run_explicit_irrevocable(const graph& g,
                                         const irrevocable_params& params,
                                         std::uint64_t diameter, std::uint64_t seed) {
    explicit_result out;
    out.election = run_irrevocable(g, params, seed);
    if (!out.election.success) return out;

    // Locate the winner engine-side (harness knowledge only; the
    // announcement protocol itself stays anonymous).
    engine<irrevocable_node> probe(g, seed);
    probe.spawn([&](std::size_t u) {
        return irrevocable_node(g.degree(static_cast<node_id>(u)), params);
    });
    probe.run_rounds(params.total_rounds() + 1);
    node_id root = 0;
    for (std::size_t u = 0; u < probe.num_nodes(); ++u) {
        if (probe.node(u).is_leader()) root = static_cast<node_id>(u);
    }

    out.announcement =
        run_announce(g, root, out.election.leader_id, diameter, seed + 1);
    out.success = out.announcement.all_know_leader;
    return out;
}

}  // namespace anole
