// anole — Cautious broadcast (paper §4, Algorithms 2–4).
//
// The paper's novel technique #1: a source ("candidate") grows a spanning
// tree over a bounded *territory*, throttled so that "only nodes in less
// populated branches are given permit to extend the tree". Mechanisms:
//
//   * adoption — an active tree node extends by sending the source ID
//     through a uniformly random unused port; the receiver (if not yet in
//     a tree for this execution) adopts the sender as parent and replies
//     with a confirmation (its initial subtree size, 1).
//   * doubling-threshold reports — each node tracks its confirmed subtree
//     size (1 + Σ last confirmed sizes of children). When the count first
//     exceeds a power of two it reports the count to its parent, turns
//     passive, and deactivates its children: the populated branch pauses.
//     Count changes *between* crossings flow upward as lightweight
//     `refresh` reports (one per change, no passivation): without them,
//     degree-2 chains deadlock with every count stuck at 4 — a node's
//     count is 1 + its child's last report, and crossing values (2,3,5,9,
//     …) can then never exceed 3. Refreshes cost ≤ depth messages per
//     adoption, which stays within Lemma 1's Õ(x·tmix) envelope: on
//     bushy (well-connected) trees depth is logarithmic, and on chain-like
//     graphs Φ is small so the cap x·tmix·Φ, and hence the territory, is
//     tiny relative to the budget.
//   * legitimacy confirmation — a parent that absorbs a child's report
//     without crossing its own threshold re-activates that child
//     (re-activation waves cascade down); a parent that does cross
//     reports upward in turn. Small branches thus resume quickly while
//     large ones stall until an ancestor vouches for their growth. The
//     root self-confirms (it owns the global budget).
//   * global cap — when any node's confirmed count reaches the cap
//     x·tmix·Φ it floods ⟨stop⟩ through the tree and the execution
//     freezes (Algorithm 4 line 2).
//
// Pseudocode reconciliation (documented deviation): Algorithm 4 line 24
// as printed sends the subtree size to the parent *every round*, which
// would cost Ω(T·tmix) messages per territory and contradict Lemma 1's
// Õ(x·tmix) bound; the prose spec in §4 (and Lemma 1's proof, which
// charges "a constant number of uses of a link per each change of the
// thresholds at its end nodes") reports only on threshold crossings. We
// implement the prose by default and keep the literal printed behavior
// available as cb_config::report_every_round for the E11 ablation, which
// measures exactly this message blow-up. cb_config::extend_all gives the
// naive uncautious flood for the same experiment.
//
// The class below is one *execution's* per-node state machine, engine
// agnostic: the caller buffers received messages into it and invokes
// step() once per logical round with a send callback. It is used (a)
// embedded in the Irrevocable LE protocol, which multiplexes many
// executions over super-rounds (core/irrevocable.h), and (b) standalone
// via `cautious_broadcast_node` for the Lemma 1 experiments (E7/E11).
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "sim/engine.h"
#include "util/bit_codec.h"
#include "util/error.h"
#include "util/rng.h"

namespace anole {

enum class cb_kind : std::uint8_t {
    source = 0,      // carries the broadcast/source ID; invites adoption
    confirm = 1,     // adoption ack: initial subtree report of 1
    size = 2,        // threshold report: confirmed subtree count
    activate = 3,    // legitimacy confirmation / re-activation wave
    deactivate = 4,  // pause wave for populated branches
    stop = 5,        // territory cap reached: freeze the execution
    refresh = 6,     // non-crossing count update (no vouch implied)
};

enum class cb_status : std::uint8_t { active, passive, stopped };

struct cb_config {
    std::uint64_t cap = UINT64_MAX;  // x·tmix·Φ territory cap
    bool throttle = true;            // doubling-threshold machinery
    bool report_every_round = false; // literal Algorithm 4 line 24 (E11)
    bool extend_all = false;         // naive flood instead of one random port (E11)
};

class cb_exec {
public:
    // Non-source node, not yet in any tree for this execution.
    explicit cb_exec(std::size_t degree) : degree_(degree) {}

    // Source (candidate) node: root of the tree, active from the start.
    [[nodiscard]] static cb_exec make_root(std::size_t degree, std::uint64_t source_id) {
        cb_exec e(degree);
        e.is_root_ = true;
        e.in_tree_ = true;
        e.source_id_ = source_id;
        e.status_ = cb_status::active;
        return e;
    }

    // Buffers a received message for the next step(). `value` is the
    // source ID for cb_kind::source and the count for confirm/size.
    void receive(port_id p, cb_kind kind, std::uint64_t value) {
        pending_.emplace_back(p, kind, value);
    }

    // One logical round: processes buffered receptions, then transmits.
    // send(port, kind, value); the state machine never emits two messages
    // to the same port within one step.
    template <class Send>
    void step(const cb_config& cfg, xoshiro256ss& rng, Send&& send) {
        process_receptions(cfg);
        transmit(cfg, rng, std::forward<Send>(send));
    }

    // --- observers (harness/tests) ---
    [[nodiscard]] bool in_tree() const noexcept { return in_tree_; }
    [[nodiscard]] bool is_root() const noexcept { return is_root_; }
    [[nodiscard]] cb_status status() const noexcept { return status_; }
    [[nodiscard]] std::uint64_t source_id() const noexcept { return source_id_; }
    [[nodiscard]] std::optional<port_id> parent() const noexcept { return parent_; }
    [[nodiscard]] std::uint64_t confirmed() const noexcept { return confirmed_; }
    [[nodiscard]] std::uint64_t report_threshold() const noexcept { return report_next_; }
    [[nodiscard]] const std::vector<port_id>& children() const noexcept {
        return children_;
    }

private:
    void process_receptions(const cb_config& cfg);

    template <class Send>
    void transmit(const cb_config& cfg, xoshiro256ss& rng, Send&& send);

    void mark_used(port_id p) {
        auto it = std::lower_bound(used_.begin(), used_.end(), p);
        if (it == used_.end() || *it != p) used_.insert(it, p);
    }
    [[nodiscard]] std::size_t child_index(port_id p) const {
        for (std::size_t i = 0; i < children_.size(); ++i) {
            if (children_[i] == p) return i;
        }
        return children_.size();
    }
    void upsert_child(port_id p, std::uint64_t sz, bool reporter);
    void recompute_confirmed() {
        std::uint64_t c = 1;
        for (std::uint64_t s : child_size_) c += s;
        confirmed_ = c;
    }
    // Smallest power of two >= v ("exceeds 2^i": the next report fires
    // only when confirmed_ becomes strictly greater than this).
    [[nodiscard]] static std::uint64_t pow2_at_least(std::uint64_t v) {
        std::uint64_t t = 1;
        while (t < v) t <<= 1;
        return t;
    }
    [[nodiscard]] std::optional<port_id> random_avail_port(xoshiro256ss& rng);
    [[nodiscard]] bool stop_came_from(port_id p) const {
        return std::find(stop_from_.begin(), stop_from_.end(), p) != stop_from_.end();
    }

    std::size_t degree_ = 0;
    bool is_root_ = false;
    bool in_tree_ = false;
    bool adopted_this_round_ = false;
    bool got_activate_ = false;
    bool got_deactivate_ = false;
    bool got_child_update_ = false;  // a confirm/size/refresh arrived
    cb_status status_ = cb_status::passive;
    std::uint64_t source_id_ = 0;
    std::optional<port_id> parent_;
    std::uint64_t confirmed_ = 1;
    std::uint64_t report_next_ = 1;
    std::uint64_t last_reported_ = 0;  // last count sent to the parent
    bool stop_told_ = false;

    std::vector<port_id> children_;
    std::vector<std::uint64_t> child_size_;
    std::vector<char> child_passive_;   // what we believe / last told them
    std::vector<char> child_stop_told_; // late joiners still need the stop
    std::vector<port_id> used_;         // sorted; ports sent to or received from
    std::vector<port_id> reporters_;    // children that reported this round
    std::vector<port_id> stop_from_;    // ports a stop arrived on (no echo)
    struct pending_msg {
        port_id port;
        cb_kind kind;
        std::uint64_t value;
        pending_msg(port_id p, cb_kind k, std::uint64_t v)
            : port(p), kind(k), value(v) {}
    };
    std::vector<pending_msg> pending_;
};

// ---------------------------------------------------------------------------

// Wire message for the standalone protocol (one execution network-wide).
struct cb_msg {
    cb_kind kind = cb_kind::source;
    std::uint64_t value = 0;

    [[nodiscard]] std::size_t bit_size() const noexcept {
        // 3-bit kind tag + payload where meaningful.
        switch (kind) {
            case cb_kind::source:
            case cb_kind::confirm:
            case cb_kind::size:
            case cb_kind::refresh:
                return 3 + gamma0_bits(value);
            default:
                return 3;
        }
    }
};

// Standalone single-execution cautious broadcast as an engine protocol:
// the experiment constructs exactly one node as the source. Runs a fixed
// number of logical rounds then halts. (The Irrevocable LE protocol embeds
// cb_exec directly and multiplexes many executions instead.)
class cautious_broadcast_node {
public:
    using message_type = cb_msg;

    cautious_broadcast_node(std::size_t degree, bool is_source, std::uint64_t source_id,
                            cb_config cfg, std::uint64_t logical_rounds)
        : exec_(is_source ? cb_exec::make_root(degree, source_id) : cb_exec(degree)),
          cfg_(cfg),
          rounds_(logical_rounds) {}

    void on_round(node_ctx<cb_msg>& ctx, inbox_view<cb_msg> inbox) {
        for (const auto& [port, msg] : inbox) exec_.receive(port, msg.kind, msg.value);
        if (ctx.round() >= rounds_) {
            ctx.halt();
            return;
        }
        exec_.step(cfg_, ctx.rng(), [&ctx](port_id p, cb_kind k, std::uint64_t v) {
            ctx.send(p, cb_msg{k, v});
        });
    }

    [[nodiscard]] const cb_exec& exec() const noexcept { return exec_; }

private:
    cb_exec exec_;
    cb_config cfg_;
    std::uint64_t rounds_;
};

// --- template implementation -----------------------------------------------

template <class Send>
void cb_exec::transmit(const cb_config& cfg, xoshiro256ss& rng, Send&& send) {
    if (!in_tree_) return;

    if (status_ == cb_status::stopped) {
        // Freeze: propagate stop to all tree neighbors (no echo). Children
        // that joined after the first wave (in-flight adoptions) are told
        // as soon as their confirm arrives — hence per-child flags rather
        // than a single latch.
        if (!stop_told_) {
            stop_told_ = true;
            if (!is_root_ && parent_ && !stop_came_from(*parent_)) {
                send(*parent_, cb_kind::stop, 0);
            }
        }
        for (std::size_t i = 0; i < children_.size(); ++i) {
            if (!child_stop_told_[i] && !stop_came_from(children_[i])) {
                child_stop_told_[i] = 1;
                send(children_[i], cb_kind::stop, 0);
            } else {
                child_stop_told_[i] = 1;
            }
        }
        reporters_.clear();
        got_activate_ = got_deactivate_ = got_child_update_ = false;
        return;
    }

    // Adoption ack (first round in the tree).
    const bool just_adopted = adopted_this_round_;
    if (just_adopted) {
        adopted_this_round_ = false;
        last_reported_ = 1;
        send(*parent_, cb_kind::confirm, 1);
    }

    recompute_confirmed();
    const bool child_update = got_child_update_;
    got_child_update_ = false;

    // Global cap: freeze the execution (Algorithm 4 line 2). Deferred one
    // step after adoption so the ack is the only parent-port message of
    // the round (in the real protocol a fresh node's count is 1 anyway —
    // children cannot have confirmed to it yet).
    if (!just_adopted && confirmed_ >= cfg.cap) {
        status_ = cb_status::stopped;
        stop_told_ = true;
        for (std::size_t i = 0; i < children_.size(); ++i) {
            child_stop_told_[i] = 1;
            send(children_[i], cb_kind::stop, 0);
        }
        if (!is_root_ && parent_) send(*parent_, cb_kind::stop, 0);
        reporters_.clear();
        got_activate_ = got_deactivate_ = false;
        return;
    }

    // Literal printed-pseudocode mode (E11): size to parent every round.
    if (cfg.report_every_round && !is_root_ && !just_adopted) {
        send(*parent_, cb_kind::size, confirmed_);
    }

    bool crossed = false;
    // A just-adopted node defers threshold handling one step so the
    // adoption ack is the only message on the parent port this round.
    if (cfg.throttle && !just_adopted && confirmed_ > report_next_) {
        crossed = true;
        report_next_ = pow2_at_least(confirmed_);
        // A fresh cross supersedes any wave received this round: we must
        // await (or, as root, grant) a new confirmation.
        got_activate_ = got_deactivate_ = false;
        if (!is_root_) {
            if (!cfg.report_every_round) {
                last_reported_ = confirmed_;
                send(*parent_, cb_kind::size, confirmed_);
            }
            status_ = cb_status::passive;
            for (std::size_t i = 0; i < children_.size(); ++i) {
                if (!child_passive_[i]) {
                    child_passive_[i] = 1;
                    send(children_[i], cb_kind::deactivate, 0);
                }
            }
        } else {
            for (port_id p : reporters_) {
                const std::size_t i = child_index(p);
                if (i < children_.size() && child_passive_[i]) {
                    child_passive_[i] = 0;
                    send(p, cb_kind::activate, 0);
                }
            }
        }
    } else if (cfg.throttle && !cfg.report_every_round && !is_root_ &&
               !just_adopted && child_update && confirmed_ != last_reported_) {
        // Non-crossing count change: refresh the parent's view without
        // the passivation protocol (see the header note on chain graphs).
        last_reported_ = confirmed_;
        send(*parent_, cb_kind::refresh, confirmed_);
    }

    if (!crossed && status_ == cb_status::active) {
        // Absorbed reports without crossing: vouch for the reporters.
        for (port_id p : reporters_) {
            const std::size_t i = child_index(p);
            if (i < children_.size() && child_passive_[i]) {
                child_passive_[i] = 0;
                send(p, cb_kind::activate, 0);
            }
        }
    }
    reporters_.clear();

    // Wave cascades (mutually exclusive: a parent sends one message per
    // logical round, and a cross cleared both flags above).
    if (got_activate_) {
        got_activate_ = false;
        for (std::size_t i = 0; i < children_.size(); ++i) {
            if (child_passive_[i]) {
                child_passive_[i] = 0;
                send(children_[i], cb_kind::activate, 0);
            }
        }
    }
    if (got_deactivate_) {
        got_deactivate_ = false;
        for (std::size_t i = 0; i < children_.size(); ++i) {
            if (!child_passive_[i]) {
                child_passive_[i] = 1;
                send(children_[i], cb_kind::deactivate, 0);
            }
        }
    }

    // Extension: active nodes invite unused neighbors.
    if (status_ == cb_status::active &&
        (!cfg.throttle || confirmed_ <= report_next_)) {
        if (cfg.extend_all) {
            for (port_id p = 0; p < degree_; ++p) {
                if (!std::binary_search(used_.begin(), used_.end(), p)) {
                    mark_used(p);
                    send(p, cb_kind::source, source_id_);
                }
            }
        } else if (auto p = random_avail_port(rng)) {
            mark_used(*p);
            send(*p, cb_kind::source, source_id_);
        }
    }
}

}  // namespace anole
