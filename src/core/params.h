// anole — protocol parameter policies.
//
// The paper states parameters asymptotically ("c > 0 a sufficiently large
// constant", "x = Θ̃(√(n log n/(Φ tmix)))"). Experiments need concrete
// values, so every formula lives here with its provenance, and every knob
// the ablation benches sweep is an explicit field. Two families:
//
//   irrevocable_params — Algorithm 1 (known n). Inputs: n plus linear
//     upper bounds on tmix and a lower bound on Φ (§4: "it is enough to
//     have linear upper bounds").
//
//   revocable_params — Algorithm 6/7 (unknown n). Knows *nothing* about
//     the network in blind mode; optionally knows i(G) (Theorem 3 vs
//     Corollary 1). Provides the paper-faithful functional forms f(k),
//     p(k), r(k), τ(k) and optional scaling knobs for tractable sweeps
//     (documented substitution — see DESIGN.md §2).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <optional>

#include "util/error.h"

namespace anole {

// ---------------------------------------------------------------------------
// Irrevocable LE (paper §4)
// ---------------------------------------------------------------------------

struct irrevocable_params {
    // --- model inputs ---
    std::size_t n = 0;        // known network size (or linear upper bound)
    std::uint64_t tmix = 0;   // linear upper bound on mixing time, >= 1
    double phi = 0;           // conductance (lower bound), in (0, 1]

    // --- analysis constants (paper's single "sufficiently large" c) ---
    double c = 1.0;           // multiplies tmix·log n round counts
    double cand_c = 1.0;      // candidate probability = cand_c·log2(n)/n

    // --- ablation knobs ---
    double x_mult = 1.0;            // scales x (E12 sweeps this)
    std::uint64_t x_override = 0;   // if nonzero, x is exactly this
    double walk_len_mult = 1.0;     // scales the walk length (E12)
    bool cautious_cap = true;       // disable => unbounded territories (E11)
    bool cautious_throttle = true;  // disable doubling thresholds (E11)

    [[nodiscard]] double log2n() const { return std::log2(static_cast<double>(n)); }

    // ID space {1..n^4} (§4 "Selecting random IDs").
    [[nodiscard]] std::uint64_t id_space() const {
        require(n >= 2 && n < (std::size_t{1} << 15),
                "irrevocable_params: need 2 <= n < 2^15 so n^4 fits in 63 bits");
        const auto nn = static_cast<std::uint64_t>(n);
        return nn * nn * nn * nn;
    }

    // Candidate probability (c log n)/n, clamped to [0,1].
    [[nodiscard]] double cand_prob() const {
        return std::min(1.0, cand_c * log2n() / static_cast<double>(n));
    }

    // x = Θ̃(√(n log n / (Φ tmix))) — number of walks per candidate
    // (fixed before Lemma 2).
    [[nodiscard]] std::uint64_t x() const {
        if (x_override != 0) return x_override;
        const double v = std::sqrt(static_cast<double>(n) * log2n() /
                                   (phi * static_cast<double>(tmix)));
        return std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(std::ceil(x_mult * v)));
    }

    // Walk length c·tmix·log n (Algorithm 5).
    [[nodiscard]] std::uint64_t walk_len() const {
        return std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(
                   std::ceil(walk_len_mult * c * static_cast<double>(tmix) * log2n())));
    }

    // Cautious-broadcast territory cap x·tmix·Φ (Algorithm 4 line 2).
    [[nodiscard]] std::uint64_t territory_cap() const {
        if (!cautious_cap) return UINT64_MAX;
        const double v = static_cast<double>(x()) * static_cast<double>(tmix) * phi;
        return std::max<std::uint64_t>(2, static_cast<std::uint64_t>(std::ceil(v)));
    }

    // Super-round width 4c·log n (§4 "Candidate nodes span their
    // territories") — the number of engine rounds per logical
    // cautious-broadcast step, one slot per parallel execution. Stated
    // via the candidate probability (4·E[#candidates]) so that clamped
    // probabilities (cand_prob = 1 ⇒ n candidates) still yield a sound,
    // bounded slot count: n slots always suffice.
    [[nodiscard]] std::uint64_t super_round() const {
        const double expected = cand_prob() * static_cast<double>(n);
        const auto v = static_cast<std::uint64_t>(std::ceil(4.0 * expected));
        return std::clamp<std::uint64_t>(v, 1, n);
    }

    // Logical cautious-broadcast steps: c·tmix·log n (Algorithm 2 line 7).
    [[nodiscard]] std::uint64_t bc_logical_rounds() const {
        return std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(
                   std::ceil(c * static_cast<double>(tmix) * log2n())));
    }

    // Convergecast rounds: c·tmix·log n (Algorithm 5 convergecast).
    [[nodiscard]] std::uint64_t cc_rounds() const { return bc_logical_rounds(); }

    // --- phase boundaries in engine rounds ---
    [[nodiscard]] std::uint64_t bc_end() const {
        return bc_logical_rounds() * super_round();
    }
    [[nodiscard]] std::uint64_t walk_end() const { return bc_end() + walk_len(); }
    [[nodiscard]] std::uint64_t total_rounds() const { return walk_end() + cc_rounds(); }

    void validate() const {
        require(n >= 2, "irrevocable_params: n >= 2");
        require(tmix >= 1, "irrevocable_params: tmix >= 1");
        require(phi > 0 && phi <= 1.0, "irrevocable_params: phi in (0,1]");
        require(c > 0 && cand_c > 0, "irrevocable_params: constants > 0");
    }
};

// ---------------------------------------------------------------------------
// Revocable LE (paper §5.2; Theorem 3 / Corollary 1)
// ---------------------------------------------------------------------------

struct revocable_params {
    // 0 < ε <= 1 (Theorem 3). ε = 1 keeps k^{1+ε} integral for k = 2^i.
    double epsilon = 1.0;
    // 0 < ξ < 1 — per-lemma failure budget in f(k).
    double xi = 0.1;

    // Known isoperimetric number i(G) (Theorem 3). Unset => blind mode
    // (Corollary 1): substitute the universal bound i(G) >= 2/n with the
    // current *estimate* k standing in for n, i.e. i_eff(k) = 2/k.
    std::optional<double> isoperimetric;

    // Exact dyadic potentials (paper-faithful bit-by-bit accounting) vs
    // double (fast, ablation E9).
    bool exact_potentials = true;

    // --- scaled-policy knobs (see DESIGN.md substitutions) ---
    // Multipliers < 1 shrink the phase lengths below the proven bounds;
    // floors keep phases non-degenerate. paper_faithful() leaves these 1.
    double r_scale = 1.0;  // diffusion rounds
    double f_scale = 1.0;  // certification iterations
    std::uint64_t r_floor = 1;
    std::uint64_t f_floor = 1;
    // Hard cap on the estimate k (engine harness stops doubling there);
    // 0 = run until every node chose an ID and views are stable.
    std::uint64_t k_cap = 0;

    [[nodiscard]] static revocable_params paper_faithful(
        std::optional<double> iso = std::nullopt) {
        revocable_params p;
        p.isoperimetric = iso;
        return p;
    }
    [[nodiscard]] static revocable_params scaled(std::optional<double> iso,
                                                 double r_scale, double f_scale) {
        revocable_params p;
        p.isoperimetric = iso;
        p.r_scale = r_scale;
        p.f_scale = f_scale;
        p.r_floor = 8;
        p.f_floor = 6;
        p.exact_potentials = false;
        return p;
    }

    // k^{1+ε} as a real.
    [[nodiscard]] double k_pow(std::uint64_t k) const {
        return std::pow(static_cast<double>(k), 1.0 + epsilon);
    }

    // Share denominator D(k): the paper's 2k^{1+ε} rounded up to a power
    // of two so dyadic potentials stay exact. The diffusion matrix stays
    // symmetric and doubly stochastic; φ(P) shrinks by at most 2x, which
    // r(k) below absorbs by using D(k) directly (the paper's
    // 8k^{2(1+ε)}/i(G)² is exactly 2·(2k^{1+ε})²/i(G)²).
    [[nodiscard]] std::uint64_t share_denominator(std::uint64_t k) const {
        const double want = 2.0 * k_pow(k);
        std::uint64_t d = 2;
        std::size_t log2d = 1;
        while (static_cast<double>(d) < want) {
            d <<= 1;
            ++log2d;
        }
        (void)log2d;
        return d;
    }
    [[nodiscard]] std::size_t share_denominator_log2(std::uint64_t k) const {
        const std::uint64_t d = share_denominator(k);
        std::size_t l = 0;
        while ((std::uint64_t{1} << l) < d) ++l;
        return l;
    }

    // p(k) = ln 2 / k^{1+ε} (white probability, Theorem 3).
    [[nodiscard]] double p_white(std::uint64_t k) const {
        return std::min(1.0, std::log(2.0) / k_pow(k));
    }

    // τ(k) = 1 − 1/(k^{1+ε} − 1) as an exact fraction (num, den) =
    // ((K−2), (K−1)) with K = ⌈k^{1+ε}⌉; compared exactly against dyadic
    // potentials. For k = 2, K = 2^{1+ε} may be < 3 — τ clamps to 0.
    struct threshold_fraction {
        std::uint64_t num;
        std::uint64_t den;
    };
    [[nodiscard]] threshold_fraction tau(std::uint64_t k) const {
        const auto kk =
            static_cast<std::uint64_t>(std::ceil(k_pow(k)));
        if (kk <= 2) return {0, 1};
        return {kk - 2, kk - 1};
    }

    // Degree alarm bound k^{1+ε} (Algorithm 7 line 7).
    [[nodiscard]] std::uint64_t degree_bound(std::uint64_t k) const {
        return static_cast<std::uint64_t>(std::floor(k_pow(k)));
    }

    // r(k): diffusion rounds. Theorem 3 form 8k^{2(1+ε)}/i(G)²·log(k^{2(1+ε)})
    // + k^{1+ε}·log(2k), expressed through D(k) (see share_denominator):
    // (2·D(k)²/i_eff²)·ln(k^{2(1+ε)}) + k^{1+ε}·log2(2k).
    [[nodiscard]] std::uint64_t diffusion_rounds(std::uint64_t k) const {
        const double i_eff = isoperimetric ? *isoperimetric
                                           : 2.0 / static_cast<double>(k);
        const double d = static_cast<double>(share_denominator(k));
        const double part1 = 2.0 * d * d / (i_eff * i_eff) *
                             std::log(std::pow(static_cast<double>(k),
                                               2.0 * (1.0 + epsilon)));
        const double part2 = k_pow(k) * std::log2(2.0 * static_cast<double>(k));
        const double scaled_v = r_scale * (part1 + part2);
        return std::max<std::uint64_t>(
            r_floor, static_cast<std::uint64_t>(std::ceil(scaled_v)));
    }

    // Dissemination rounds k^{1+ε} (Algorithm 7 line 14).
    [[nodiscard]] std::uint64_t dissemination_rounds(std::uint64_t k) const {
        return std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(std::ceil(k_pow(k))));
    }

    // f(k) = (4√2/(√2−1)²)·ln(k^{1+ε}/ξ) certification iterations
    // (Algorithm 6 header).
    [[nodiscard]] std::uint64_t certification_iterations(std::uint64_t k) const {
        const double lead = 4.0 * std::sqrt(2.0) /
                            ((std::sqrt(2.0) - 1.0) * (std::sqrt(2.0) - 1.0));
        const double v = lead * std::log(k_pow(k) / xi);
        const double scaled_v = f_scale * v;
        return std::max<std::uint64_t>(
            f_floor, static_cast<std::uint64_t>(std::ceil(scaled_v)));
    }

    // Decision-phase ID range upper bound k^{4(1+ε)}·log⁴(4k)
    // (Algorithm 6 line 15), capped at 2^62 to stay in uint64.
    [[nodiscard]] std::uint64_t id_range(std::uint64_t k) const {
        const double v = std::pow(static_cast<double>(k), 4.0 * (1.0 + epsilon)) *
                         std::pow(std::log2(4.0 * static_cast<double>(k)), 4.0);
        const double cap = 4.6e18;  // < 2^62
        return static_cast<std::uint64_t>(std::min(std::max(v, 16.0), cap));
    }

    void validate() const {
        require(epsilon > 0 && epsilon <= 1.0, "revocable_params: 0 < ε <= 1");
        require(xi > 0 && xi < 1.0, "revocable_params: 0 < ξ < 1");
        require(!isoperimetric || *isoperimetric > 0,
                "revocable_params: i(G) must be positive when given");
        require(r_scale > 0 && f_scale > 0, "revocable_params: scales > 0");
    }
};

}  // namespace anole
