#include "core/revocable.h"

#include <algorithm>

namespace anole {

void revocable_node::on_round(node_ctx<rev_msg>& ctx, inbox_view<rev_msg> inbox) {
    if (!started_) {
        started_ = true;
        start_estimate(ctx);
        start_iteration(ctx);
        broadcast(ctx, /*with_potential=*/true);
        round_in_phase_ = 1;
        return;
    }

    if (phase_ == phase::diffuse) {
        apply_exchange(inbox, /*diffusion_update=*/true);
        if (round_in_phase_ < r_k_) {
            broadcast(ctx, /*with_potential=*/true);
            ++round_in_phase_;
        } else {
            // Final diffusion exchange applied: threshold alarm
            // (Algorithm 7 line 13), then the dissemination phase opens.
            if (!q_low_ && potential_above_tau()) {
                q_low_ = true;
                pot_d_ = 1.0;
                pot_x_ = dyadic::one();
            }
            phase_ = phase::disseminate;
            round_in_phase_ = 1;
            broadcast(ctx, /*with_potential=*/false);
        }
        return;
    }

    // Dissemination phase.
    apply_exchange(inbox, /*diffusion_update=*/false);
    if (round_in_phase_ < d_k_) {
        broadcast(ctx, /*with_potential=*/false);
        ++round_in_phase_;
        return;
    }

    // Iteration complete (Algorithm 6 lines 12-13).
    end_iteration();
    if (iter_ < f_k_) {
        start_iteration(ctx);
        broadcast(ctx, /*with_potential=*/true);
        round_in_phase_ = 1;
        return;
    }

    // Estimate complete: decision phase (Algorithm 6 lines 14-17), then
    // the next estimate begins immediately.
    decide(ctx);
    start_estimate(ctx);
    start_iteration(ctx);
    broadcast(ctx, /*with_potential=*/true);
    round_in_phase_ = 1;
}

void revocable_node::start_estimate(node_ctx<rev_msg>& ctx) {
    (void)ctx;
    k_ *= 2;
    f_k_ = p_->certification_iterations(k_);
    r_k_ = p_->diffusion_rounds(k_);
    d_k_ = p_->dissemination_rounds(k_);
    share_d_ = p_->share_denominator(k_);
    share_log2_ = p_->share_denominator_log2(k_);
    iter_ = 0;
    empty_count_ = 0;
    probing_count_ = 0;
}

void revocable_node::start_iteration(node_ctx<rev_msg>& ctx) {
    white_ = ctx.rng().bernoulli(p_->p_white(k_));
    q_low_ = false;
    c_white_ = white_;  // Algorithm 7 line 2
    if (white_) {
        pot_d_ = 0.0;
        pot_x_ = dyadic::zero();
    } else {
        pot_d_ = 1.0;
        pot_x_ = dyadic::one();
    }
    phase_ = phase::diffuse;
    round_in_phase_ = 0;
}

void revocable_node::apply_exchange(inbox_view<rev_msg> inbox, bool diffusion_update) {
    if (diffusion_update) {
        // Algorithm 7 lines 7-9: probe only while nobody alarms.
        bool all_probing = !q_low_ && degree_ <= p_->degree_bound(k_);
        if (all_probing) {
            for (const auto& [port, msg] : inbox) {
                (void)port;
                if (msg.q_low) {
                    all_probing = false;
                    break;
                }
            }
        }
        if (all_probing) {
            if (p_->exact_potentials) {
                std::vector<dyadic> in;
                in.reserve(inbox.size());
                for (const auto& [port, msg] : inbox) {
                    (void)port;
                    in.push_back(msg.pot_x);
                }
                pot_x_ = diffuse_exact(pot_x_, in, share_d_, share_log2_);
            } else {
                std::vector<double> in;
                in.reserve(inbox.size());
                for (const auto& [port, msg] : inbox) {
                    (void)port;
                    in.push_back(msg.pot_d);
                }
                pot_d_ = diffuse_approx(pot_d_, in, share_d_);
            }
        } else {
            q_low_ = true;
            pot_d_ = 1.0;
            pot_x_ = dyadic::one();
        }
    } else {
        // Dissemination (Algorithm 7 lines 16-18).
        for (const auto& [port, msg] : inbox) {
            (void)port;
            if (msg.q_low) q_low_ = true;
            if (msg.c_white) c_white_ = true;
        }
    }
    // Leader-view updates run in both phases (lines 10-12 and 19-21).
    for (const auto& [port, msg] : inbox) {
        (void)port;
        if (msg.idldr != 0) consider_leader(msg.idldr, msg.kldr);
    }
}

void revocable_node::broadcast(node_ctx<rev_msg>& ctx, bool with_potential) {
    rev_msg m;
    m.has_potential = with_potential;
    m.q_low = q_low_;
    m.c_white = c_white_;
    m.idldr = idldr_;
    m.kldr = kldr_;
    std::size_t bits = 2 + gamma0_bits(m.idldr) + gamma0_bits(m.kldr);
    if (with_potential) {
        if (p_->exact_potentials) {
            m.pot_x = pot_x_;
            bits += m.pot_x.wire_bits();
        } else {
            m.pot_d = pot_d_;
            bits += charged_potential_bits(round_in_phase_ + 1, share_log2_);
        }
    }
    m.charged = bits;
    for (port_id p = 0; p < degree_; ++p) ctx.send(p, m);
}

void revocable_node::end_iteration() {
    ++iter_;
    if (!c_white_) ++empty_count_;    // empty[i] = ¬c
    if (!q_low_) ++probing_count_;    // status[i] = q == probing
}

void revocable_node::decide(node_ctx<rev_msg>& ctx) {
    auto& tr = traces_[k_];
    tr.empty_iterations = empty_count_;
    tr.probing_iterations = probing_count_;
    tr.iterations = f_k_;
    // Algorithm 6 line 14: strict majority of white-free iterations, and
    // at least one probing iteration.
    if (id_ == 0 && 2 * empty_count_ > f_k_ && probing_count_ > 0) {
        id_ = ctx.rng().range(1, p_->id_range(k_));
        cert_ = k_;
        tr.chose_here = true;
        consider_leader(id_, cert_);
    }
    leader_ = id_ != 0 && idldr_ == id_ && kldr_ == cert_;  // line 17
}

void revocable_node::consider_leader(std::uint64_t cand_id, std::uint64_t cand_k) {
    const bool adopt =
        idldr_ == 0 || cand_k > kldr_ || (cand_k == kldr_ && cand_id < idldr_);
    if (!adopt) return;
    if (idldr_ != 0 && (idldr_ != cand_id || kldr_ != cand_k)) ++revocations_;
    idldr_ = cand_id;
    kldr_ = cand_k;
    leader_ = id_ != 0 && idldr_ == id_ && kldr_ == cert_;
}

bool revocable_node::potential_above_tau() const {
    const auto tau = p_->tau(k_);
    if (tau.num == 0) return !p_->exact_potentials ? pot_d_ > 0 : !pot_x_.is_zero();
    if (!p_->exact_potentials) {
        return pot_d_ > static_cast<double>(tau.num) / static_cast<double>(tau.den);
    }
    // pot > num/den  <=>  mant * den > num * 2^exp   (exact).
    bigint lhs = pot_x_.mantissa();
    lhs.mul_small(tau.den);
    bigint rhs(tau.num);
    rhs <<= pot_x_.exponent();
    return lhs > rhs;
}

// ---------------------------------------------------------------------------

revocable_result run_revocable(const graph& g, const revocable_params& params,
                               std::uint64_t seed, std::uint64_t max_rounds,
                               congest_budget budget, const dynamics_spec& dynamics) {
    params.validate();

    engine<revocable_node> eng(g, seed, budget);
    if (dynamics.enabled()) eng.set_dynamics(dynamics, seed);
    eng.spawn([&](std::size_t u) {
        return revocable_node(g.degree(static_cast<node_id>(u)), params);
    });
    const auto probe = [&eng](std::size_t u) {
        const auto& nd = eng.node(u);
        node_status st;
        st.decided = nd.id() != 0;
        st.leader = nd.leader();
        st.own_id = nd.id();
        st.own_cert = nd.certificate();
        st.view_id = nd.leader_id();
        st.view_cert = nd.leader_certificate();
        return st;
    };
    eng.set_status_probe(probe);

    // All convergence predicates quantify over *live* nodes only: a
    // crashed node's frozen view, or a departed node's slot, must not
    // block the survivors from reaching agreement (re-election after an
    // assassination is measured through exactly this).
    const std::size_t n = eng.num_nodes();
    auto live = [&](std::size_t u) -> bool {
        return eng.node_present(u) && !eng.node_crashed(u);
    };
    auto views_consistent = [&]() -> bool {
        bool any = false;
        std::uint64_t vid = 0, vk = 0;
        for (std::size_t u = 0; u < n; ++u) {
            if (!live(u)) continue;
            const auto& nd = eng.node(u);
            if (nd.id() == 0 || nd.leader_id() == 0) return false;
            if (!any) {
                any = true;
                vid = nd.leader_id();
                vk = nd.leader_certificate();
            } else if (nd.leader_id() != vid || nd.leader_certificate() != vk) {
                return false;
            }
        }
        return any;
    };
    auto past_cap = [&]() -> bool {
        if (params.k_cap == 0) return false;
        for (std::size_t u = 0; u < n; ++u) {
            if (live(u) && eng.node(u).estimate() <= params.k_cap) return false;
        }
        return true;
    };
    auto first_live_view = [&]() -> std::pair<std::uint64_t, std::uint64_t> {
        for (std::size_t u = 0; u < n; ++u) {
            if (live(u)) {
                return {eng.node(u).leader_id(), eng.node(u).leader_certificate()};
            }
        }
        return {0, 0};
    };

    revocable_result res;
    bool reached = false;
    try {
        eng.run_until([&] { return views_consistent() || past_cap(); }, max_rounds);
        reached = views_consistent();
    } catch (const error&) {
        reached = false;  // max_rounds exhausted: report what we have
    }

    res.stable_round = eng.round();
    const auto [view_id, view_k] =
        reached ? first_live_view() : std::pair<std::uint64_t, std::uint64_t>{0, 0};

    if (reached) {
        // Revocability check: once every node has chosen an ID and all
        // views agree, no undominated (ID, certificate) pair can still be
        // in flight, so views are provably final; we nevertheless run a
        // bounded verification window and assert they did not move. (A
        // full extra estimate would be the airtight check, but its cost
        // grows ~k^{4(2+ε)} in blind mode — the window is the documented
        // substitution.)
        const std::uint64_t extra =
            std::min<std::uint64_t>(res.stable_round / 2 + 1000, 200'000);
        eng.run_rounds(extra);
    }

    res.rounds = eng.round();
    res.totals = eng.metrics().total();
    res.congest_rounds = eng.metrics().total().congest_rounds;

    const auto [final_view_id, final_view_k] = first_live_view();
    bool all_same = true;
    std::size_t live_nodes = 0;
    for (std::size_t u = 0; u < n; ++u) {
        const auto& nd = eng.node(u);
        // Cost/trace aggregates cover every incarnation that ran,
        // including crashed nodes; correctness quantifiers below are
        // live-only.
        res.total_revocations += nd.revocations();
        res.final_estimate = std::max(res.final_estimate, nd.estimate());
        for (const auto& [k, tr] : nd.traces()) {
            auto& agg = res.traces[k];
            agg.empty_iterations += tr.empty_iterations;
            agg.probing_iterations += tr.probing_iterations;
            agg.iterations += tr.iterations;
            agg.chose_here = agg.chose_here || tr.chose_here;
        }
        if (!live(u)) continue;
        ++live_nodes;
        if (nd.leader()) {
            ++res.num_leaders;
            res.leader_id = nd.id();
            res.leader_certificate = nd.certificate();
        }
        if (nd.id() != 0) ++res.nodes_chose;
        if (nd.leader_id() != final_view_id || nd.leader_certificate() != final_view_k) {
            all_same = false;
        }
    }
    res.success = reached && all_same && res.num_leaders == 1 &&
                  res.nodes_chose == live_nodes && live_nodes > 0 &&
                  final_view_id == view_id && final_view_k == view_k;
    res.oracle = run_oracle(eng, probe, {.check_views = reached});
    return res;
}

}  // namespace anole
