#include "core/irrevocable.h"

#include <algorithm>

namespace anole {

namespace {

cb_kind to_cb_kind(ir_msg::kind k) {
    return static_cast<cb_kind>(static_cast<std::uint8_t>(k));
}
ir_msg::kind to_ir_kind(cb_kind k) {
    return static_cast<ir_msg::kind>(static_cast<std::uint8_t>(k));
}

}  // namespace

void irrevocable_node::on_round(node_ctx<ir_msg>& ctx, inbox_view<ir_msg> inbox) {
    if (!inited_) init(ctx);

    const std::uint64_t r = ctx.round();
    if (r < p_->bc_end()) {
        broadcast_round(ctx, inbox);
    } else if (r < p_->walk_end()) {
        walk_round(ctx, inbox);
    } else if (r < p_->total_rounds()) {
        convergecast_round(ctx, inbox);
    } else {
        // Stragglers from the last convergecast round still count.
        for (const auto& [port, msg] : inbox) {
            (void)port;
            if (msg.k == ir_msg::kind::cc) absorb_id(msg.exec);
        }
        decide(ctx);
    }
}

void irrevocable_node::init(node_ctx<ir_msg>& ctx) {
    inited_ = true;
    id_ = ctx.rng().range(1, p_->id_space());
    candidate_ = ctx.rng().bernoulli(p_->cand_prob());
    if (candidate_) {
        id_max_ = id_;  // only candidate IDs circulate (see header note)
        execs_.emplace(id_, cb_exec::make_root(degree_, id_));
        slots_.push_back(id_);
    }
}

cb_exec& irrevocable_node::exec_for(std::uint64_t exec_id) {
    auto it = execs_.find(exec_id);
    if (it == execs_.end()) {
        it = execs_.emplace(exec_id, cb_exec(degree_)).first;
        slots_.push_back(exec_id);
        if (slots_.size() > p_->super_round()) ++overflows_;
    }
    return it->second;
}

void irrevocable_node::broadcast_round(node_ctx<ir_msg>& ctx, inbox_view<ir_msg> inbox) {
    // Demultiplex by source ID; buffering preserves arrival order.
    for (const auto& [port, msg] : inbox) {
        if (msg.k > ir_msg::kind::cb_refresh) continue;  // stray later-phase msg
        exec_for(msg.exec).receive(port, to_cb_kind(msg.k), msg.value);
    }

    // One execution per engine round: slot index cycles each super-round.
    const std::uint64_t slot = ctx.round() % p_->super_round();
    if (slot >= slots_.size()) return;
    // Executions past the slot capacity (whp none) are simply never
    // stepped, matching the paper's "assign arbitrary 4c·log n executions
    // to available rounds".
    const std::uint64_t exec_id = slots_[slot];
    auto it = execs_.find(exec_id);
    if (it == execs_.end()) return;

    cb_config cfg;
    cfg.cap = p_->territory_cap();
    cfg.throttle = p_->cautious_throttle;
    it->second.step(cfg, ctx.rng(),
                    [&ctx, exec_id](port_id p, cb_kind k, std::uint64_t v) {
                        ctx.send(p, ir_msg{to_ir_kind(k), exec_id, v});
                    });
}

void irrevocable_node::walk_round(node_ctx<ir_msg>& ctx, inbox_view<ir_msg> inbox) {
    const bool launch = ctx.round() == p_->bc_end() && candidate_;
    if (inbox.empty() && walk_count_ == 0 && !launch) return;  // idle fast path

    // Receive: merge token batches, absorb larger IDs (Algorithm 5).
    for (const auto& [port, msg] : inbox) {
        if (msg.k != ir_msg::kind::walk) {
            // Last broadcast-phase stragglers: deliver to their execution
            // so tree state (parents are what convergecast needs) is
            // complete. The execution emits nothing further.
            if (msg.k <= ir_msg::kind::cb_refresh) {
                cb_config cfg;
                cfg.cap = p_->territory_cap();
                cfg.throttle = p_->cautious_throttle;
                cb_exec& e = exec_for(msg.exec);
                e.receive(port, to_cb_kind(msg.k), msg.value);
                e.step(cfg, ctx.rng(), [](port_id, cb_kind, std::uint64_t) {});
            }
            continue;
        }
        walk_count_ += msg.value;
        absorb_id(msg.exec);
    }

    // Scratch outbox, allocated once per node and wiped via touched list.
    if (out_scratch_.size() != degree_) out_scratch_.assign(degree_, 0);
    touched_.clear();
    auto emit = [&](port_id p) {
        if (out_scratch_[p]++ == 0) touched_.push_back(p);
    };

    if (launch) {
        // All x tokens leave the candidate at the first walk round
        // (Algorithm 5 lines 4-6).
        for (std::uint64_t i = 0; i < p_->x(); ++i) {
            emit(static_cast<port_id>(ctx.rng().below(degree_)));
        }
    } else {
        // Lazy step: each resident token moves with probability 1/2.
        std::uint64_t staying = 0;
        for (std::uint64_t t = 0; t < walk_count_; ++t) {
            if (ctx.rng().bit()) {
                emit(static_cast<port_id>(ctx.rng().below(degree_)));
            } else {
                ++staying;
            }
        }
        walk_count_ = staying;
    }
    for (port_id p : touched_) {
        ctx.send(p, ir_msg{ir_msg::kind::walk, id_max_, out_scratch_[p]});
        out_scratch_[p] = 0;
    }
}

void irrevocable_node::convergecast_round(node_ctx<ir_msg>& ctx,
                                          inbox_view<ir_msg> inbox) {
    if (!cc_ready_) {
        cc_ready_ = true;
        // Distinct parent ports over every territory this node joined.
        for (const auto& [exec_id, e] : execs_) {
            (void)exec_id;
            if (e.in_tree() && !e.is_root() && e.parent()) {
                parent_ports_.push_back(*e.parent());
            }
        }
        std::sort(parent_ports_.begin(), parent_ports_.end());
        parent_ports_.erase(std::unique(parent_ports_.begin(), parent_ports_.end()),
                            parent_ports_.end());
        cc_last_sent_ = 0;  // force an initial send
    }

    for (const auto& [port, msg] : inbox) {
        (void)port;
        if (msg.k == ir_msg::kind::cc || msg.k == ir_msg::kind::walk) {
            absorb_id(msg.exec);
        }
    }

    // Change-triggered push of the running maximum toward every parent.
    if (id_max_ != cc_last_sent_ && id_max_ != 0) {
        cc_last_sent_ = id_max_;
        for (port_id p : parent_ports_) {
            ctx.send(p, ir_msg{ir_msg::kind::cc, id_max_, 0});
        }
    }
}

void irrevocable_node::decide(node_ctx<ir_msg>& ctx) {
    decided_ = true;
    leader_ = candidate_ && id_max_ == id_;
    ctx.halt();
}

// ---------------------------------------------------------------------------

irrevocable_result run_irrevocable(const graph& g, const irrevocable_params& params,
                                   std::uint64_t seed, congest_budget budget,
                                   const dynamics_spec& dynamics) {
    params.validate();
    require(params.n == g.num_nodes(),
            "run_irrevocable: params.n must equal the graph size");

    engine<irrevocable_node> eng(g, seed, budget);
    if (dynamics.enabled()) eng.set_dynamics(dynamics, seed);
    eng.spawn([&](std::size_t u) {
        return irrevocable_node(g.degree(static_cast<node_id>(u)), params);
    });
    const auto probe = [&eng](std::size_t u) {
        const auto& nd = eng.node(u);
        node_status st;
        st.decided = nd.decided();
        st.leader = nd.is_leader();
        st.own_id = nd.id();
        return st;
    };
    eng.set_status_probe(probe);

    eng.set_phase("broadcast");
    eng.run_rounds(params.bc_end());
    eng.set_phase("walk");
    eng.run_rounds(params.walk_end() - params.bc_end());
    eng.set_phase("convergecast");
    eng.run_rounds(params.total_rounds() - params.walk_end());
    eng.set_phase("decide");
    eng.run_rounds(1);

    irrevocable_result res;
    res.rounds = eng.round();
    res.totals = eng.metrics().total();
    res.phase_broadcast = eng.metrics().phase("broadcast");
    res.phase_walk = eng.metrics().phase("walk");
    res.phase_convergecast = eng.metrics().phase("convergecast");

    std::uint64_t max_cand_id = 0;
    for (std::size_t u = 0; u < eng.num_nodes(); ++u) {
        const auto& node = eng.node(u);
        res.slot_overflows += node.slot_overflows();
        if (!eng.node_present(u) || eng.node_crashed(u)) continue;
        if (node.is_candidate()) {
            ++res.num_candidates;
            max_cand_id = std::max(max_cand_id, node.id());
        }
        if (node.is_leader()) {
            ++res.num_leaders;
            res.leader_id = node.id();
        }
    }
    // Territory sizes: count tree membership per execution (candidate ID).
    std::map<std::uint64_t, std::uint64_t> territory;
    for (std::size_t u = 0; u < eng.num_nodes(); ++u) {
        for (const auto& [exec_id, e] : eng.node(u).executions()) {
            if (e.in_tree()) ++territory[exec_id];
        }
    }
    for (const auto& [exec_id, count] : territory) {
        (void)exec_id;
        res.territory_sizes.push_back(count);
    }
    res.success = res.num_leaders == 1;
    res.max_candidate_won = res.num_leaders == 1 && res.leader_id == max_cand_id;
    res.oracle = run_oracle(eng, probe, {.round_cap = params.total_rounds() + 1});
    return res;
}

}  // namespace anole
