// anole — standalone lazy random-walk token ensembles.
//
// The walk primitive of Algorithm 5, factored out as its own protocol:
// a set of source nodes each launch `tokens` lazy walk tokens (stay with
// probability 1/2, else uniform random neighbor); tokens traversing a
// link in the same round are batched into one ⟨count⟩ message (CONGEST).
// Rounds are sampled *distributionally* — stayers ~ Binomial(resident,
// 1/2), movers split over ports as a uniform multinomial (util/rng.h) —
// so a round costs O(degree) rather than O(resident tokens): the exact
// same token-level law, but million-token ensembles run at the price of
// ten-token ones (tests/util/rng_binomial_test.cpp checks the samplers
// against the per-token reference by chi-squared).
// Unlike the full protocol's walks, these carry no IDs — the ensemble is
// used to validate the *mixing* behaviour the analysis relies on:
// after tmix steps, token positions sample the stationary distribution
// d_v/2m (tests/core/random_walk_test.cpp correlates the empirical
// histogram against graph/spectral.h's prediction), and hitting
// experiments (E8) measure territory discovery.
//
// Degree-0 precondition: the connectivity requirement of the model means
// a node of degree 0 can only be the sole node of a 1-node graph (e.g.
// make_family(f, 1, s) for path/binary_tree, or a star whose center was
// removed leaving a single leaf as its own instance). Such a node is
// treated as absorbing — tokens launched there stay resident forever and
// the ensemble is a no-op. All drivers here accept that case; they never
// sample a random port on a degree-0 node.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "sim/engine.h"
#include "util/bit_codec.h"
#include "util/rng.h"

namespace anole {

struct walk_msg {
    std::uint64_t count = 0;
    [[nodiscard]] std::size_t bit_size() const noexcept {
        return gamma0_bits(count);
    }
};

class walk_ensemble_node {
public:
    using message_type = walk_msg;

    // `tokens` start here at round 0; the ensemble runs `rounds` steps.
    walk_ensemble_node(std::size_t degree, std::uint64_t tokens, std::uint64_t rounds)
        : degree_(degree), resident_(tokens), rounds_(rounds) {}

    void on_round(node_ctx<walk_msg>& ctx, inbox_view<walk_msg> inbox) {
        for (const auto& [port, msg] : inbox) {
            (void)port;
            resident_ += msg.count;
            visits_ += msg.count;
        }
        if (ctx.round() >= rounds_) {
            ctx.halt();
            return;
        }
        // A degree-0 node (possible only on the 1-node graph — the model
        // requires connectivity) is absorbing: every token stays, and the
        // port split below is never reached.
        if (resident_ == 0 || degree_ == 0) return;
        // Distributional round: instead of flipping a lazy coin per token
        // (O(resident)), sample how many move — Binomial(resident, 1/2) —
        // and split the movers over the ports as an exact uniform
        // multinomial. O(degree) regardless of how many tokens sit here,
        // with the identical per-token distribution.
        const std::uint64_t movers = binomial(ctx.rng(), resident_, 0.5);
        resident_ -= movers;
        if (movers == 0) return;
        if (out_.size() != degree_) out_.resize(degree_);
        multinomial_uniform(ctx.rng(), movers, out_);
        for (port_id p = 0; p < degree_; ++p) {
            if (out_[p] != 0) ctx.send(p, walk_msg{out_[p]});
        }
    }

    // Tokens currently parked at this node.
    [[nodiscard]] std::uint64_t resident() const noexcept { return resident_; }
    // Total token arrivals over the run (excluding the initial placement).
    [[nodiscard]] std::uint64_t visits() const noexcept { return visits_; }

private:
    std::size_t degree_;
    std::uint64_t resident_;
    std::uint64_t rounds_;
    std::uint64_t visits_ = 0;
    std::vector<std::uint64_t> out_;
};

struct walk_ensemble_result {
    std::vector<std::uint64_t> resident;  // tokens per node at the end
    std::uint64_t total_tokens = 0;
    phase_counters totals;
};

// Launches `tokens` walks from node `source` for `rounds` lazy steps.
[[nodiscard]] walk_ensemble_result run_walk_ensemble(const graph& g, node_id source,
                                                     std::uint64_t tokens,
                                                     std::uint64_t rounds,
                                                     std::uint64_t seed);

}  // namespace anole
