#include "core/random_walk.h"

namespace anole {

walk_ensemble_result run_walk_ensemble(const graph& g, node_id source,
                                       std::uint64_t tokens, std::uint64_t rounds,
                                       std::uint64_t seed) {
    require(source < g.num_nodes(), "run_walk_ensemble: source out of range");
    engine<walk_ensemble_node> eng(g, seed, congest_budget::strict_log(16));
    eng.spawn([&](std::size_t u) {
        return walk_ensemble_node(g.degree(static_cast<node_id>(u)),
                                  u == source ? tokens : 0, rounds);
    });
    eng.run_until_halted(rounds + 2);

    walk_ensemble_result res;
    res.totals = eng.metrics().total();
    res.resident.reserve(g.num_nodes());
    for (std::size_t u = 0; u < g.num_nodes(); ++u) {
        const std::uint64_t r = eng.node(u).resident();
        res.resident.push_back(r);
        res.total_tokens += r;
    }
    return res;
}

}  // namespace anole
