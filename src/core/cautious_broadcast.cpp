#include "core/cautious_broadcast.h"

namespace anole {

void cb_exec::process_receptions(const cb_config& cfg) {
    for (const pending_msg& pm : pending_) {
        mark_used(pm.port);
        switch (pm.kind) {
            case cb_kind::source:
                if (!in_tree_) {
                    in_tree_ = true;
                    adopted_this_round_ = true;
                    parent_ = pm.port;
                    source_id_ = pm.value;
                    // Prose mode: a fresh node holds no *permit* — it may
                    // not extend until its parent confirms the adoption
                    // was within budget (the "only nodes in less
                    // populated branches are given permit to extend"
                    // discipline). Without this gate the frontier races
                    // ahead of the confirmed counts and the territory cap
                    // cannot bind. The literal printed pseudocode starts
                    // adopted nodes active instead (Algorithm 3 line 15).
                    status_ = cfg.report_every_round ? cb_status::active
                                                     : cb_status::passive;
                }
                // Already in the tree (or the root): the link is consumed
                // for extension purposes but the invitation is ignored.
                break;
            case cb_kind::confirm:
                // Prose mode: the adoption ack doubles as a report — the
                // child awaits the parent's activate (its permit).
                // Robustness: a node outside the tree has no children, and
                // the parent port can never be a child; such messages are
                // not protocol-reachable and are dropped.
                if (!in_tree_ || (parent_ && *parent_ == pm.port)) break;
                upsert_child(pm.port, pm.value,
                             /*reporter=*/!cfg.report_every_round);
                break;
            case cb_kind::size:
                // In the literal every-round mode size messages are plain
                // refreshes, not threshold reports; the reporter flag (and
                // the passivation it implies) applies only to prose-mode
                // crossing reports, which arrive at most once per
                // threshold change.
                if (!in_tree_ || (parent_ && *parent_ == pm.port)) break;
                upsert_child(pm.port, pm.value,
                             /*reporter=*/!cfg.report_every_round);
                break;
            case cb_kind::refresh:
                if (!in_tree_ || (parent_ && *parent_ == pm.port)) break;
                upsert_child(pm.port, pm.value, /*reporter=*/false);
                break;
            case cb_kind::activate:
                // Waves are a parent-to-child protocol; anything else is
                // not protocol-reachable and is dropped (the flags must
                // not latch while outside the tree, and at most one wave
                // per round can arrive on the single parent port).
                if (status_ != cb_status::stopped && in_tree_ && !is_root_ &&
                    parent_ && *parent_ == pm.port) {
                    status_ = cb_status::active;
                    got_activate_ = true;
                    got_deactivate_ = false;
                }
                break;
            case cb_kind::deactivate:
                if (status_ != cb_status::stopped && in_tree_ && !is_root_ &&
                    parent_ && *parent_ == pm.port) {
                    status_ = cb_status::passive;
                    got_deactivate_ = true;
                    got_activate_ = false;
                }
                break;
            case cb_kind::stop:
                status_ = cb_status::stopped;
                stop_from_.push_back(pm.port);
                break;
        }
    }
    pending_.clear();
}

void cb_exec::upsert_child(port_id p, std::uint64_t sz, bool reporter) {
    got_child_update_ = true;
    const std::size_t i = child_index(p);
    if (i == children_.size()) {
        children_.push_back(p);
        child_size_.push_back(sz);
        child_passive_.push_back(0);
        child_stop_told_.push_back(0);
    } else {
        child_size_[i] = sz;
    }
    if (reporter) {
        const std::size_t j = child_index(p);
        child_passive_[j] = 1;  // reporters pause awaiting confirmation
        reporters_.push_back(p);
    }
}

std::optional<port_id> cb_exec::random_avail_port(xoshiro256ss& rng) {
    if (used_.size() >= degree_) return std::nullopt;
    // Rejection sampling against the sorted used_ list; expected O(1)
    // tries while used_ <= degree_/2, exact fallback otherwise.
    if (used_.size() * 2 <= degree_) {
        for (int tries = 0; tries < 64; ++tries) {
            const auto p = static_cast<port_id>(rng.below(degree_));
            if (!std::binary_search(used_.begin(), used_.end(), p)) return p;
        }
    }
    // Exact: pick the j-th unused port.
    const std::size_t unused = degree_ - used_.size();
    std::size_t j = rng.below(unused);
    std::size_t ui = 0;
    for (port_id p = 0; p < degree_; ++p) {
        if (ui < used_.size() && used_[ui] == p) {
            ++ui;
            continue;
        }
        if (j == 0) return p;
        --j;
    }
    return std::nullopt;  // unreachable
}

}  // namespace anole
