// anole — simulation metrics.
//
// Communication accounting per the paper's cost model (§2):
//   * time  = number of synchronous rounds;
//   * messages = point-to-point messages (one per link direction per round);
//   * bits = exact encoded size of every message (CONGEST charges
//     O(log n) bits per link per round; our tables report both);
//   * congest_rounds = rounds after charging fragmentation: a message of
//     b bits on a link with per-round budget B costs ⌈b/B⌉ rounds, and a
//     synchronous network advances at the pace of its slowest link. This
//     is how the paper accounts the bit-by-bit potential transmissions in
//     Theorem 3's time analysis.
//
// Counters can be split by named phase (engine.set_phase) so benches can
// report per-phase rows (broadcast vs walk vs convergecast, ...).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace anole {

struct phase_counters {
    std::uint64_t rounds = 0;
    std::uint64_t congest_rounds = 0;
    std::uint64_t messages = 0;
    std::uint64_t bits = 0;

    phase_counters& operator+=(const phase_counters& o) noexcept {
        rounds += o.rounds;
        congest_rounds += o.congest_rounds;
        messages += o.messages;
        bits += o.bits;
        return *this;
    }

    friend bool operator==(const phase_counters&, const phase_counters&) = default;
};

class sim_metrics {
public:
    void begin_phase(const std::string& name) { current_ = name; }
    [[nodiscard]] const std::string& current_phase() const noexcept { return current_; }

    void count_round(std::uint64_t congest_cost) noexcept {
        auto& c = phases_[current_];
        ++c.rounds;
        c.congest_rounds += congest_cost;
        ++total_.rounds;
        total_.congest_rounds += congest_cost;
    }
    void count_message(std::uint64_t bits) noexcept { count_messages(1, bits); }

    // Bulk form: the engine accumulates a whole round's sends locally and
    // flushes once, so the per-send hot path never touches the phase map.
    void count_messages(std::uint64_t messages, std::uint64_t bits) noexcept {
        auto& c = phases_[current_];
        c.messages += messages;
        c.bits += bits;
        total_.messages += messages;
        total_.bits += bits;
    }

    [[nodiscard]] const phase_counters& total() const noexcept { return total_; }
    [[nodiscard]] const std::map<std::string, phase_counters>& phases() const noexcept {
        return phases_;
    }
    [[nodiscard]] phase_counters phase(const std::string& name) const {
        auto it = phases_.find(name);
        return it == phases_.end() ? phase_counters{} : it->second;
    }

private:
    std::string current_ = "default";
    phase_counters total_;
    std::map<std::string, phase_counters> phases_;
};

}  // namespace anole
