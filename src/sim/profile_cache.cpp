#include "sim/profile_cache.h"

#include <fstream>

#include "util/json.h"

namespace anole {

namespace {

// Strict parse of one cached profile payload; throws on any mismatch so
// the caller can skip the whole line.
graph_profile profile_from_json(const json_value& v) {
    graph_profile p;
    p.n = static_cast<std::size_t>(v.at("n").as_uint());
    p.m = static_cast<std::size_t>(v.at("m").as_uint());
    p.diameter = static_cast<std::uint32_t>(v.at("diameter").as_uint());
    p.conductance = v.at("conductance").as_number();
    p.isoperimetric = v.at("isoperimetric").as_number();
    p.mixing_time = v.at("mixing_time").as_uint();
    p.lambda2 = v.at("lambda2").as_number();
    p.exact_cuts = v.at("exact_cuts").as_bool();
    p.diameter_method = profile_method_from_string(v.at("diameter_method").as_string());
    p.conductance_method =
        profile_method_from_string(v.at("conductance_method").as_string());
    p.isoperimetric_method =
        profile_method_from_string(v.at("isoperimetric_method").as_string());
    p.mixing_method = profile_method_from_string(v.at("mixing_method").as_string());
    p.lambda2_converged = v.at("lambda2_converged").as_bool();
    return p;
}

}  // namespace

profile_cache::profile_cache(std::string path) : path_(std::move(path)) {
    std::ifstream in(path_);
    if (!in) return;  // no file yet: empty cache
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty()) continue;
        try {
            const json_value v = json_parse(line);
            if (v.at("version").as_uint() != profile_cache_version) continue;
            entries_.insert_or_assign(v.at("key").as_string(),
                                      profile_from_json(v.at("profile")));
        } catch (const error&) {
            // Torn tail line, hand-edited garbage, or an entry written by
            // an incompatible build: recompute instead of trusting it.
        }
    }
}

std::optional<graph_profile> profile_cache::lookup(const std::string& key) const {
    std::unique_lock<std::mutex> lk(mu_);
    auto it = entries_.find(key);
    if (it == entries_.end()) return std::nullopt;
    return it->second;
}

void profile_cache::store(const std::string& key, const graph_profile& p) {
    std::unique_lock<std::mutex> lk(mu_);
    std::ofstream out(path_, std::ios::app);
    require(static_cast<bool>(out), "profile_cache: cannot open " + path_);
    out << "{\"key\":\"" << json_escape(key)
        << "\",\"version\":" << profile_cache_version << ",\"profile\":" << p.to_json()
        << "}\n";
    out.flush();
    require(static_cast<bool>(out), "profile_cache: write failed for " + path_);
    entries_.insert_or_assign(key, p);
}

std::size_t profile_cache::size() const {
    std::unique_lock<std::mutex> lk(mu_);
    return entries_.size();
}

}  // namespace anole
