#include "sim/profile_cache.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>

#include "util/json.h"

namespace anole {

namespace {

// Strict parse of one cached profile payload; throws on any mismatch so
// the caller can skip the whole line.
graph_profile profile_from_json(const json_value& v) {
    graph_profile p;
    p.n = static_cast<std::size_t>(v.at("n").as_uint());
    p.m = static_cast<std::size_t>(v.at("m").as_uint());
    p.diameter = static_cast<std::uint32_t>(v.at("diameter").as_uint());
    p.conductance = v.at("conductance").as_number();
    p.isoperimetric = v.at("isoperimetric").as_number();
    p.mixing_time = v.at("mixing_time").as_uint();
    p.lambda2 = v.at("lambda2").as_number();
    p.exact_cuts = v.at("exact_cuts").as_bool();
    p.diameter_method = profile_method_from_string(v.at("diameter_method").as_string());
    p.conductance_method =
        profile_method_from_string(v.at("conductance_method").as_string());
    p.isoperimetric_method =
        profile_method_from_string(v.at("isoperimetric_method").as_string());
    p.mixing_method = profile_method_from_string(v.at("mixing_method").as_string());
    p.lambda2_converged = v.at("lambda2_converged").as_bool();
    return p;
}

// Every valid entry of a cache file, later lines winning. Missing file =
// empty; torn/garbage/wrong-version lines skipped (recomputed instead of
// trusted).
std::map<std::string, graph_profile> load_entries(const std::string& path) {
    std::map<std::string, graph_profile> entries;
    std::ifstream in(path);
    if (!in) return entries;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty()) continue;
        try {
            const json_value v = json_parse(line);
            if (v.at("version").as_uint() != profile_cache_version) continue;
            entries.insert_or_assign(v.at("key").as_string(),
                                     profile_from_json(v.at("profile")));
        } catch (const error&) {
            // Torn tail line, hand-edited garbage, or an entry written by
            // an incompatible build: recompute instead of trusting it.
        }
    }
    return entries;
}

std::string entry_line(const std::string& key, const graph_profile& p) {
    return "{\"key\":\"" + json_escape(key) +
           "\",\"version\":" + std::to_string(profile_cache_version) +
           ",\"profile\":" + p.to_json() + "}";
}

// Create-exclusive sibling lock file; held for the duration of one
// rewrite. Locks older than kStaleAfter are assumed to belong to a
// crashed writer and are broken (a live rewrite takes milliseconds).
class cache_file_lock {
public:
    explicit cache_file_lock(const std::string& cache_path)
        : lock_path_(cache_path + ".lock") {
        using clock = std::chrono::steady_clock;
        constexpr auto kStaleAfter = std::chrono::seconds(30);
        constexpr auto kTimeout = std::chrono::seconds(30);
        const auto deadline = clock::now() + kTimeout;
        for (;;) {
            if (std::FILE* f = std::fopen(lock_path_.c_str(), "wx")) {
                std::fclose(f);
                return;
            }
            if (errno != EEXIST) {
                throw error("profile_cache: cannot open " + lock_path_);
            }
            std::error_code ec;
            const auto mtime = std::filesystem::last_write_time(lock_path_, ec);
            if (!ec) {
                const auto age = std::filesystem::file_time_type::clock::now() - mtime;
                if (age > kStaleAfter) {
                    std::remove(lock_path_.c_str());
                    continue;  // retry the exclusive create immediately
                }
            }
            if (clock::now() >= deadline) {
                throw error("profile_cache: timed out waiting for lock " +
                            lock_path_);
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
    }
    ~cache_file_lock() { std::remove(lock_path_.c_str()); }
    cache_file_lock(const cache_file_lock&) = delete;
    cache_file_lock& operator=(const cache_file_lock&) = delete;

private:
    std::string lock_path_;
};

}  // namespace

profile_cache::profile_cache(std::string path) : path_(std::move(path)) {
    entries_ = load_entries(path_);
}

std::optional<graph_profile> profile_cache::lookup(const std::string& key) const {
    std::unique_lock<std::mutex> lk(mu_);
    auto it = entries_.find(key);
    if (it == entries_.end()) return std::nullopt;
    return it->second;
}

void profile_cache::store(const std::string& key, const graph_profile& p) {
    std::unique_lock<std::mutex> lk(mu_);
    entries_.insert_or_assign(key, p);

    const cache_file_lock lock(path_);
    // Merge entries other processes landed while we weren't looking; our
    // own entries win ties (profiles are deterministic, so ties are
    // byte-identical anyway — this also heals any corrupt tail the old
    // append path may have left behind).
    std::map<std::string, graph_profile> merged = load_entries(path_);
    for (const auto& [k, prof] : entries_) merged.insert_or_assign(k, prof);

    const std::string tmp = path_ + ".tmp";
    {
        std::ofstream out(tmp, std::ios::trunc);
        require(static_cast<bool>(out), "profile_cache: cannot open " + tmp);
        for (const auto& [k, prof] : merged) out << entry_line(k, prof) << "\n";
        out.flush();
        require(static_cast<bool>(out), "profile_cache: write failed for " + tmp);
    }
    // Atomic on POSIX: readers see the old complete file or the new one.
    require(std::rename(tmp.c_str(), path_.c_str()) == 0,
            "profile_cache: cannot replace " + path_);
    entries_ = std::move(merged);
}

std::size_t profile_cache::size() const {
    std::unique_lock<std::mutex> lk(mu_);
    return entries_.size();
}

}  // namespace anole
