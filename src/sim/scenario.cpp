#include "sim/scenario.h"

namespace anole {

algo_kind kind_of(const algo_config& c) noexcept {
    return static_cast<algo_kind>(c.index());
}

const char* to_string(algo_kind k) noexcept {
    switch (k) {
        case algo_kind::flood_max: return "flood_max";
        case algo_kind::gilbert: return "gilbert";
        case algo_kind::irrevocable: return "irrevocable";
        case algo_kind::revocable: return "revocable";
        case algo_kind::cautious_broadcast: return "cautious_broadcast";
    }
    return "?";
}

namespace {

// Unified views over the five result structs.
template <class Fn>
auto visit_detail(const algo_result& d, Fn&& fn) {
    return std::visit(std::forward<Fn>(fn), d);
}

}  // namespace

bool run_record::success() const noexcept {
    if (!ok) return false;
    return visit_detail(detail, [](const auto& r) { return r.success; });
}

std::size_t run_record::num_leaders() const noexcept {
    if (!ok) return 0;
    return visit_detail(detail, [](const auto& r) -> std::size_t {
        if constexpr (requires { r.num_leaders; }) {
            return r.num_leaders;
        } else {
            return 0;  // cautious broadcast does not elect
        }
    });
}

std::uint64_t run_record::rounds() const noexcept {
    if (!ok) return 0;
    return visit_detail(detail, [](const auto& r) { return r.rounds; });
}

phase_counters run_record::totals() const noexcept {
    if (!ok) return {};
    return visit_detail(detail, [](const auto& r) { return r.totals; });
}

oracle_report run_record::oracle() const noexcept {
    if (!ok) return {};
    return visit_detail(detail, [](const auto& r) { return r.oracle; });
}

std::string run_record::verdict() const {
    if (!ok) return "error: " + error;
    return oracle().summary();
}

std::size_t scenario_result::successes() const noexcept {
    std::size_t n = 0;
    for (const auto& r : runs) n += r.success() ? 1 : 0;
    return n;
}

std::string scenario_result::success_ratio() const {
    return std::to_string(successes()) + "/" + std::to_string(runs.size());
}

namespace {

template <class Fn>
sample_stats collect(const std::vector<run_record>& runs, Fn&& fn) {
    sample_stats s;
    for (const auto& r : runs) {
        if (r.ok) s.add(static_cast<double>(fn(r)));
    }
    return s;
}

}  // namespace

sample_stats scenario_result::messages() const {
    return collect(runs, [](const run_record& r) { return r.totals().messages; });
}

sample_stats scenario_result::bits() const {
    return collect(runs, [](const run_record& r) { return r.totals().bits; });
}

sample_stats scenario_result::rounds() const {
    return collect(runs, [](const run_record& r) { return r.rounds(); });
}

sample_stats scenario_result::congest_rounds() const {
    return collect(runs, [](const run_record& r) { return r.totals().congest_rounds; });
}

}  // namespace anole
