#include "sim/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>

#include "graph/generators.h"
#include "graph/layout.h"
#include "sim/thread_pool.h"
#include "util/stats.h"
#include "util/table.h"

namespace anole {

namespace {

// --- small helpers ----------------------------------------------------------

std::string html_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
            case '&': out += "&amp;"; break;
            case '<': out += "&lt;"; break;
            case '>': out += "&gt;"; break;
            case '"': out += "&quot;"; break;
            default: out += c;
        }
    }
    return out;
}

std::string fmt_g(double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.4g", v);
    return buf;
}

std::string fmt_pos(double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.1f", v);
    return buf;
}

// Fixed categorical slot per variant — identity, never rank; the CSS
// custom properties --s1..--s5 carry the light/dark hex pairs.
int variant_slot(algo_kind k) {
    switch (k) {
        case algo_kind::flood_max: return 1;
        case algo_kind::gilbert: return 2;
        case algo_kind::irrevocable: return 3;
        case algo_kind::revocable: return 4;
        case algo_kind::cautious_broadcast: return 5;
    }
    return 1;
}

// Dash pattern per dynamics model (series identity stays the variant
// hue; the line style distinguishes the adversary).
const char* dynamics_dash(std::size_t dyn_index) {
    static const char* kDashes[] = {"", "6 3", "2 3", "8 3 2 3", "1 3"};
    return kDashes[dyn_index % (sizeof kDashes / sizeof kDashes[0])];
}

// --- series extraction ------------------------------------------------------

struct series_point {
    std::size_t n = 0;
    double mean_messages = 0;
    double mean_rounds = 0;
    std::size_t runs = 0;
};

struct chart_series {
    algo_kind variant;
    std::string dynamics;  // empty = static
    std::size_t dyn_index = 0;
    std::vector<series_point> points;  // sorted by n

    [[nodiscard]] std::string label() const {
        std::string l = to_string(variant);
        if (!dynamics.empty()) l += "@" + dynamics;
        return l;
    }
};

struct family_chart {
    graph_family family;
    std::vector<chart_series> series;
};

// Per-family mean complexity series over the ok records, families and
// series in first-appearance order, points sorted by n.
std::vector<family_chart> extract_charts(const std::vector<campaign_record>& records) {
    std::vector<family_chart> charts;
    std::map<std::string, std::size_t> family_at;
    std::map<std::string, std::size_t> dyn_index;
    for (const campaign_record& r : records) {
        if (!r.ok) continue;
        const std::string fkey = to_string(r.unit.family);
        auto [fit, fnew] = family_at.try_emplace(fkey, charts.size());
        if (fnew) charts.push_back(family_chart{r.unit.family, {}});
        family_chart& fc = charts[fit->second];

        auto [dit, dnew] =
            dyn_index.try_emplace(r.unit.dynamics_name, dyn_index.size());
        chart_series* sp = nullptr;
        for (chart_series& s : fc.series) {
            if (s.variant == r.unit.variant && s.dynamics == r.unit.dynamics_name) {
                sp = &s;
                break;
            }
        }
        if (sp == nullptr) {
            fc.series.push_back(
                chart_series{r.unit.variant, r.unit.dynamics_name, dit->second, {}});
            sp = &fc.series.back();
        }
        series_point* pp = nullptr;
        for (series_point& p : sp->points) {
            if (p.n == r.unit.n) {
                pp = &p;
                break;
            }
        }
        if (pp == nullptr) {
            sp->points.push_back(series_point{r.unit.n, 0, 0, 0});
            pp = &sp->points.back();
        }
        // Streaming mean update.
        const double w = static_cast<double>(pp->runs);
        pp->mean_messages = (pp->mean_messages * w + static_cast<double>(r.messages)) /
                            (w + 1);
        pp->mean_rounds =
            (pp->mean_rounds * w + static_cast<double>(r.rounds)) / (w + 1);
        ++pp->runs;
    }
    for (family_chart& fc : charts) {
        for (chart_series& s : fc.series) {
            std::sort(s.points.begin(), s.points.end(),
                      [](const series_point& a, const series_point& b) {
                          return a.n < b.n;
                      });
        }
    }
    return charts;
}

// --- SVG line chart ---------------------------------------------------------

constexpr double kW = 280, kH = 204;
constexpr double kL = 46, kR = 272, kT = 12, kB = 176;

double log_pos(double v, double lo, double hi) {
    if (hi <= lo) return 0.5;
    return (std::log10(std::max(v, 1.0)) - lo) / (hi - lo);
}

// One small-multiple: log-log polylines + markers, native <title>
// tooltips, recessive grid. `metric` selects messages or rounds.
std::string chart_svg(const family_chart& fc, bool messages, double ylo, double yhi,
                      const std::vector<std::size_t>& xticks) {
    const double xlo = std::log10(std::max<double>(xticks.front(), 1));
    const double xhi = std::log10(std::max<double>(xticks.back(), 1));
    const auto px = [&](double n) { return kL + log_pos(n, xlo, xhi) * (kR - kL); };
    const auto py = [&](double v) { return kB - log_pos(v, ylo, yhi) * (kB - kT); };

    std::string s;
    s += "<svg viewBox=\"0 0 " + fmt_pos(kW) + " " + fmt_pos(kH) +
         "\" width=\"" + fmt_pos(kW) + "\" height=\"" + fmt_pos(kH) +
         "\" role=\"img\" aria-label=\"" + html_escape(to_string(fc.family)) +
         (messages ? " messages" : " rounds") + " vs n\">";

    // Horizontal gridlines + y tick labels at integer powers of ten.
    for (int e = static_cast<int>(std::ceil(ylo)); e <= static_cast<int>(std::floor(yhi));
         ++e) {
        const double y = py(std::pow(10.0, e));
        s += "<line class=\"grid\" x1=\"" + fmt_pos(kL) + "\" y1=\"" + fmt_pos(y) +
             "\" x2=\"" + fmt_pos(kR) + "\" y2=\"" + fmt_pos(y) + "\"/>";
        const std::string lab =
            e <= 3 ? fmt_g(std::pow(10.0, e)) : ("1e" + std::to_string(e));
        s += "<text class=\"tick\" x=\"" + fmt_pos(kL - 4) + "\" y=\"" +
             fmt_pos(y + 3) + "\" text-anchor=\"end\">" + lab + "</text>";
    }
    // Baseline + x tick labels at the recorded sizes.
    s += "<line class=\"axis\" x1=\"" + fmt_pos(kL) + "\" y1=\"" + fmt_pos(kB) +
         "\" x2=\"" + fmt_pos(kR) + "\" y2=\"" + fmt_pos(kB) + "\"/>";
    for (const std::size_t n : xticks) {
        const double x = px(static_cast<double>(n));
        s += "<text class=\"tick\" x=\"" + fmt_pos(x) + "\" y=\"" + fmt_pos(kB + 12) +
             "\" text-anchor=\"middle\">" + std::to_string(n) + "</text>";
    }

    for (const chart_series& cs : fc.series) {
        const int slot = variant_slot(cs.variant);
        const char* dash = dynamics_dash(cs.dyn_index);
        std::string pl = "<polyline class=\"sv" + std::to_string(slot) + "\"";
        if (dash[0] != '\0') pl += " stroke-dasharray=\"" + std::string(dash) + "\"";
        pl += " points=\"";
        for (const series_point& p : cs.points) {
            const double v = messages ? p.mean_messages : p.mean_rounds;
            pl += fmt_pos(px(static_cast<double>(p.n))) + "," + fmt_pos(py(v)) + " ";
        }
        pl += "\"/>";
        s += pl;
        for (const series_point& p : cs.points) {
            const double v = messages ? p.mean_messages : p.mean_rounds;
            s += "<circle class=\"sf" + std::to_string(slot) + "\" cx=\"" +
                 fmt_pos(px(static_cast<double>(p.n))) + "\" cy=\"" + fmt_pos(py(v)) +
                 "\" r=\"3\"><title>" + html_escape(cs.label()) +
                 " · n=" + std::to_string(p.n) + " · mean " +
                 (messages ? "messages " : "rounds ") + fmt_g(v) + " (" +
                 std::to_string(p.runs) + " runs)</title></circle>";
        }
    }
    s += "<text class=\"chart-title\" x=\"" + fmt_pos(kL) + "\" y=\"" +
         fmt_pos(kT - 2) + "\">" + html_escape(to_string(fc.family)) + "</text>";
    s += "</svg>";
    return s;
}

// Global log10 range of one metric across every chart (shared y-scale —
// small multiples must be comparable).
void metric_range(const std::vector<family_chart>& charts, bool messages,
                  double* lo, double* hi) {
    double mn = 1e300, mx = -1e300;
    for (const family_chart& fc : charts) {
        for (const chart_series& cs : fc.series) {
            for (const series_point& p : cs.points) {
                const double v =
                    std::max(messages ? p.mean_messages : p.mean_rounds, 1.0);
                mn = std::min(mn, v);
                mx = std::max(mx, v);
            }
        }
    }
    if (mx < mn) {
        mn = 1;
        mx = 10;
    }
    *lo = std::floor(std::log10(mn));
    *hi = std::ceil(std::log10(mx));
    if (*hi <= *lo) *hi = *lo + 1;
}

std::string legend_html(const std::vector<family_chart>& charts) {
    std::vector<std::pair<std::string, std::pair<int, std::size_t>>> entries;
    std::set<std::string> seen;
    for (const family_chart& fc : charts) {
        for (const chart_series& cs : fc.series) {
            if (!seen.insert(cs.label()).second) continue;
            entries.emplace_back(cs.label(),
                                 std::make_pair(variant_slot(cs.variant), cs.dyn_index));
        }
    }
    if (entries.size() < 2) return "";  // single series: the title names it
    std::string s = "<div class=\"legend\">";
    for (const auto& [label, sd] : entries) {
        const char* dash = dynamics_dash(sd.second);
        s += "<span class=\"lg\"><svg viewBox=\"0 0 26 10\" width=\"26\" "
             "height=\"10\" aria-hidden=\"true\"><line class=\"sv" +
             std::to_string(sd.first) + "\" x1=\"1\" y1=\"5\" x2=\"25\" y2=\"5\"";
        if (dash[0] != '\0') s += " stroke-dasharray=\"" + std::string(dash) + "\"";
        s += "/></svg>" + html_escape(label) + "</span>";
    }
    s += "</div>";
    return s;
}

// --- sections ---------------------------------------------------------------

std::string tiles_html(const std::vector<campaign_record>& records,
                       const report_options& opt) {
    std::size_t ok = 0, elected = 0, safe = 0;
    for (const campaign_record& r : records) {
        if (!r.ok) continue;
        ++ok;
        if (r.leaders == 1) ++elected;
        if (r.oracle_ok) ++safe;
    }
    const auto tile = [](const std::string& value, const std::string& label) {
        return "<div class=\"tile\"><div class=\"tile-v\">" + value +
               "</div><div class=\"tile-l\">" + label + "</div></div>";
    };
    std::string units = std::to_string(records.size());
    if (opt.expected_units > 0) units += " / " + std::to_string(opt.expected_units);
    std::string s = "<div class=\"tiles\">";
    s += tile(units, "units recorded");
    s += tile(std::to_string(ok), "completed ok");
    s += tile(std::to_string(elected) + " / " + std::to_string(ok), "single leader");
    s += tile(std::to_string(safe) + " / " + std::to_string(ok), "oracle clean");
    s += "</div>";
    return s;
}

std::string table_html(const std::vector<campaign_record>& records) {
    const text_table t = campaign_table(records);
    std::string s = "<table><thead><tr>";
    for (const std::string& h : t.header()) s += "<th>" + html_escape(h) + "</th>";
    s += "</tr></thead><tbody>";
    for (const auto& row : t.rows()) {
        s += "<tr>";
        for (const std::string& cell : row) s += "<td>" + html_escape(cell) + "</td>";
        s += "</tr>";
    }
    s += "</tbody></table>";
    return s;
}

std::string safety_html(const std::vector<campaign_record>& records) {
    std::vector<const campaign_record*> violations, failures;
    for (const campaign_record& r : records) {
        if (r.ok && !r.oracle_ok) violations.push_back(&r);
        if (!r.ok) failures.push_back(&r);
    }
    std::string s;
    if (violations.empty() && failures.empty()) {
        s += "<p class=\"status-good\">✓ every completed unit passed the safety "
             "oracle and no unit failed.</p>";
        return s;
    }
    constexpr std::size_t kCap = 50;
    if (!violations.empty()) {
        s += "<p class=\"status-crit\">✗ " + std::to_string(violations.size()) +
             " oracle violation(s)</p><ul>";
        for (std::size_t i = 0; i < std::min(violations.size(), kCap); ++i) {
            s += "<li><code>" + html_escape(violations[i]->unit.key()) + "</code> — " +
                 html_escape(violations[i]->oracle_summary) + "</li>";
        }
        if (violations.size() > kCap) {
            s += "<li>… " + std::to_string(violations.size() - kCap) + " more</li>";
        }
        s += "</ul>";
    }
    if (!failures.empty()) {
        s += "<p class=\"status-crit\">✗ " + std::to_string(failures.size()) +
             " failed unit(s)</p><ul>";
        for (std::size_t i = 0; i < std::min(failures.size(), kCap); ++i) {
            s += "<li><code>" + html_escape(failures[i]->unit.key()) + "</code> — " +
                 html_escape(failures[i]->error) + "</li>";
        }
        if (failures.size() > kCap) {
            s += "<li>… " + std::to_string(failures.size() - kCap) + " more</li>";
        }
        s += "</ul>";
    }
    return s;
}

std::string gallery_html(const std::vector<campaign_record>& records,
                         const report_options& opt) {
    // Largest recorded instance per family, first-appearance order.
    struct pick {
        graph_family family;
        std::size_t n = 0;
        std::uint64_t topology_seed = 1;
    };
    std::vector<pick> picks;
    std::map<std::string, std::size_t> at;
    for (const campaign_record& r : records) {
        const std::string k = to_string(r.unit.family);
        auto [it, fresh] = at.try_emplace(k, picks.size());
        if (fresh) picks.push_back(pick{r.unit.family, r.unit.n, r.unit.topology_seed});
        pick& p = picks[it->second];
        if (r.unit.n > p.n) {
            p.n = r.unit.n;
            p.topology_seed = r.unit.topology_seed;
        }
    }
    if (picks.empty()) return "";

    thread_pool pool(opt.jobs);
    layout_svg_options svg_opt;
    svg_opt.max_edges = opt.thumb_edge_cap;

    std::string s = "<div class=\"gallery\">";
    for (const pick& p : picks) {
        s += "<figure class=\"thumb\">";
        if (p.n > opt.max_thumb_nodes) {
            s += "<div class=\"thumb-skip\">n=" + std::to_string(p.n) +
                 " exceeds the thumbnail cap</div>";
        } else {
            const graph g = make_family(p.family, p.n, p.topology_seed);
            layout_options lo;
            lo.seed = p.topology_seed;
            lo.pool = &pool;
            const std::vector<layout_point> pts = force_layout(g, lo);
            s += layout_svg(g, pts, svg_opt);
        }
        s += "<figcaption>" + html_escape(to_string(p.family)) + " · n=" +
             std::to_string(p.n) + "</figcaption></figure>";
    }
    s += "</div>";
    return s;
}

// Every color below is a CSS custom property with a dark-mode override;
// SVG marks reference them by class so one stylesheet themes charts,
// legend and thumbnails together.
const char* kCss = R"css(
:root { color-scheme: light dark; }
body {
  --page:#f9f9f7; --surface-1:#fcfcfb; --ink:#0b0b0b; --ink-2:#52514e;
  --muted:#898781; --grid:#e1e0d9; --axis:#c3c2b7;
  --s1:#2a78d6; --s2:#eb6834; --s3:#1baf7a; --s4:#eda100; --s5:#e87ba4;
  --good:#006300; --crit:#d03b3b; --ring:rgba(11,11,11,0.10);
  background:var(--page); color:var(--ink); margin:0 auto; padding:24px;
  max-width:1160px;
  font:14px/1.5 system-ui,-apple-system,"Segoe UI",sans-serif;
}
@media (prefers-color-scheme: dark) { body {
  --page:#0d0d0d; --surface-1:#1a1a19; --ink:#ffffff; --ink-2:#c3c2b7;
  --muted:#898781; --grid:#2c2c2a; --axis:#383835;
  --s1:#3987e5; --s2:#d95926; --s3:#199e70; --s4:#c98500; --s5:#d55181;
  --good:#0ca30c; --crit:#d03b3b; --ring:rgba(255,255,255,0.10);
} }
h1 { font-size:20px; margin:0 0 4px; }
h2 { font-size:16px; margin:28px 0 10px; }
.sub { color:var(--ink-2); margin:0 0 20px; }
.tiles { display:flex; gap:12px; flex-wrap:wrap; }
.tile { background:var(--surface-1); border:1px solid var(--ring);
        border-radius:8px; padding:12px 18px; min-width:120px; }
.tile-v { font-size:24px; }
.tile-l { color:var(--ink-2); font-size:12px; }
.legend { display:flex; gap:14px; flex-wrap:wrap; margin:6px 0 10px;
          color:var(--ink-2); font-size:12px; }
.lg { display:inline-flex; align-items:center; gap:5px; }
.lg line { stroke-width:2; fill:none; }
.charts, .gallery { display:flex; gap:14px; flex-wrap:wrap; }
.charts svg, .thumb svg { background:var(--surface-1);
  border:1px solid var(--ring); border-radius:8px; }
svg polyline { fill:none; stroke-width:2; }
.sv1 { stroke:var(--s1); } .sf1 { fill:var(--s1); }
.sv2 { stroke:var(--s2); } .sf2 { fill:var(--s2); }
.sv3 { stroke:var(--s3); } .sf3 { fill:var(--s3); }
.sv4 { stroke:var(--s4); } .sf4 { fill:var(--s4); }
.sv5 { stroke:var(--s5); } .sf5 { fill:var(--s5); }
.grid { stroke:var(--grid); stroke-width:1; }
.axis { stroke:var(--axis); stroke-width:1; }
.tick { fill:var(--muted); font-size:9px;
        font-variant-numeric:tabular-nums; }
.chart-title { fill:var(--ink-2); font-size:11px; }
.thumb { margin:0; }
.thumb .ge { stroke:var(--axis); }
.thumb .gn { fill:var(--s1); }
.thumb figcaption { color:var(--ink-2); font-size:12px; text-align:center;
                    margin-top:4px; }
.thumb-skip { width:320px; height:240px; display:flex; align-items:center;
  justify-content:center; color:var(--muted); background:var(--surface-1);
  border:1px solid var(--ring); border-radius:8px; }
table { border-collapse:collapse; background:var(--surface-1);
        border:1px solid var(--ring); border-radius:8px; }
th, td { padding:5px 12px; text-align:right;
         font-variant-numeric:tabular-nums; }
th { color:var(--ink-2); font-weight:600; border-bottom:1px solid var(--axis); }
td:first-child, th:first-child, td:nth-child(3), th:nth-child(3)
  { text-align:left; }
tbody tr + tr td { border-top:1px solid var(--grid); }
.status-good { color:var(--good); }
.status-crit { color:var(--crit); }
code { font-size:12px; }
)css";

}  // namespace

// --- entry points -----------------------------------------------------------

std::string render_campaign_report(const std::vector<campaign_record>& records,
                                   const report_options& opt) {
    const std::vector<family_chart> charts = extract_charts(records);

    // Shared x ticks: every recorded size, so the multiples line up.
    std::set<std::size_t> sizes;
    for (const campaign_record& r : records) sizes.insert(r.unit.n);
    const std::vector<std::size_t> xticks(sizes.begin(), sizes.end());

    std::string html;
    html.reserve(1 << 18);
    html += "<!DOCTYPE html><html lang=\"en\"><head><meta charset=\"utf-8\">";
    html += "<meta name=\"viewport\" content=\"width=device-width,initial-scale=1\">";
    html += "<title>" + html_escape(opt.title) + "</title>";
    html += "<style>";
    html += kCss;
    html += "</style></head><body>";
    html += "<h1>" + html_escape(opt.title) + "</h1>";
    html += "<p class=\"sub\">" + std::to_string(records.size()) +
            " records · ledger schema v" + std::to_string(campaign_schema_version) +
            " · self-contained (no external resources)</p>";

    html += tiles_html(records, opt);

    if (!charts.empty() && !xticks.empty()) {
        const std::string legend = legend_html(charts);
        for (const bool messages : {true, false}) {
            double ylo = 0, yhi = 1;
            metric_range(charts, messages, &ylo, &yhi);
            html += std::string("<h2>mean ") +
                    (messages ? "messages" : "rounds") + " vs n (log–log)</h2>";
            html += legend;
            html += "<div class=\"charts\">";
            for (const family_chart& fc : charts) {
                html += chart_svg(fc, messages, ylo, yhi, xticks);
            }
            html += "</div>";
        }
    }

    html += "<h2>aggregate table</h2>";
    html += table_html(records);

    html += "<h2>safety</h2>";
    html += safety_html(records);

    if (opt.thumbnails) {
        const std::string gallery = gallery_html(records, opt);
        if (!gallery.empty()) {
            html += "<h2>topology gallery</h2>";
            html += "<p class=\"sub\">force-directed thumbnails (Barnes–Hut "
                    "layout, deterministic from the campaign topology seed); "
                    "dense instances are stride-sampled.</p>";
            html += gallery;
        }
    }

    html += "</body></html>\n";
    return html;
}

void write_campaign_report(const std::string& path,
                           const std::vector<campaign_record>& records,
                           const report_options& opt) {
    const std::string html = render_campaign_report(records, opt);
    std::ofstream out(path, std::ios::trunc);
    require(static_cast<bool>(out), "report: cannot open " + path);
    out << html;
    out.flush();
    require(static_cast<bool>(out), "report: write failed for " + path);
}

}  // namespace anole
