#include "sim/dynamics.h"

#include <algorithm>
#include <iomanip>
#include <queue>
#include <sstream>

#include "util/json.h"

namespace anole {

// --- adaptive strategies -----------------------------------------------------

const char* to_string(adaptive_kind k) noexcept {
    switch (k) {
        case adaptive_kind::none: return "none";
        case adaptive_kind::target_frontier_loss: return "target_frontier_loss";
        case adaptive_kind::leader_assassin: return "leader_assassin";
        case adaptive_kind::cut_churn: return "cut_churn";
    }
    return "?";
}

std::optional<adaptive_kind> adaptive_from_string(std::string_view s) {
    for (const adaptive_kind k :
         {adaptive_kind::none, adaptive_kind::target_frontier_loss,
          adaptive_kind::leader_assassin, adaptive_kind::cut_churn}) {
        if (s == to_string(k)) return k;
    }
    return std::nullopt;
}

// --- declaration ------------------------------------------------------------

void dynamics_spec::validate() const {
    const auto prob = [](double p, const char* what) {
        require(p >= 0 && p <= 1, std::string("dynamics: ") + what + " must be in [0, 1]");
    };
    prob(rewire_prob, "rewire_prob");
    prob(edge_down_prob, "edge_down_prob");
    prob(loss_prob, "loss_prob");
    prob(crash_prob, "crash_prob");
    prob(sleep_prob, "sleep_prob");
    prob(strategy_intensity, "strategy_intensity");
    prob(leave_prob, "leave_prob");
    prob(join_prob, "join_prob");
    require(churn_interval >= 1, "dynamics: churn_interval >= 1");
    require(sleep_rounds >= 1, "dynamics: sleep_rounds >= 1");
    require(strategy_grace >= 1, "dynamics: strategy_grace >= 1");
}

std::string dynamics_spec::summary() const {
    std::ostringstream os;
    const char* sep = "";
    if (rewire_prob > 0 || rewire_period > 0) {
        os << sep << "rewire(";
        if (rewire_prob > 0) os << "p=" << rewire_prob;
        if (rewire_period > 0) os << (rewire_prob > 0 ? "," : "") << "every=" << rewire_period;
        os << ")";
        sep = "+";
    }
    if (edge_down_prob > 0) {
        os << sep << "churn(" << edge_down_prob << "/T=" << churn_interval
           << (protect_backbone ? "" : ",unprotected") << ")";
        sep = "+";
    }
    if (loss_prob > 0) {
        os << sep << "loss(" << loss_prob << ")";
        sep = "+";
    }
    if (crash_prob > 0) {
        os << sep << "crash(" << crash_prob << ")";
        sep = "+";
    }
    if (sleep_prob > 0) {
        os << sep << "sleep(" << sleep_prob << "x" << sleep_rounds << ")";
        sep = "+";
    }
    if (strategy == adaptive_kind::target_frontier_loss) {
        os << sep << "frontier(" << strategy_intensity << ")";
        sep = "+";
    } else if (strategy == adaptive_kind::leader_assassin) {
        os << sep << "assassin(grace=" << strategy_grace << ",kills="
           << strategy_max_kills << ")";
        sep = "+";
    } else if (strategy == adaptive_kind::cut_churn) {
        os << sep << "cutchurn(" << strategy_intensity << ")";
        sep = "+";
    }
    if (leave_prob > 0 || join_prob > 0) {
        os << sep << "member(leave=" << leave_prob << ",join=" << join_prob << ")";
        sep = "+";
    }
    if (!trace_replay.empty()) {
        os << sep << "replay";
        sep = "+";
    }
    if (*sep == '\0') return "static";
    return os.str();
}

std::string dynamics_spec::to_json() const {
    std::ostringstream os;
    // Max-precision doubles: the value must survive a JSON round trip
    // bit-exactly (resume keys and trace headers replay from it).
    os << std::setprecision(17);
    os << "{\"rewire_prob\":" << rewire_prob << ",\"rewire_period\":" << rewire_period
       << ",\"edge_down_prob\":" << edge_down_prob
       << ",\"churn_interval\":" << churn_interval
       << ",\"protect_backbone\":" << (protect_backbone ? "true" : "false")
       << ",\"loss_prob\":" << loss_prob << ",\"crash_prob\":" << crash_prob
       << ",\"sleep_prob\":" << sleep_prob << ",\"sleep_rounds\":" << sleep_rounds
       << ",\"strategy\":\"" << to_string(strategy) << "\""
       << ",\"strategy_intensity\":" << strategy_intensity
       << ",\"strategy_grace\":" << strategy_grace
       << ",\"strategy_max_kills\":" << strategy_max_kills
       << ",\"leave_prob\":" << leave_prob << ",\"join_prob\":" << join_prob;
    if (!trace_record.empty()) {
        os << ",\"trace_record\":\"" << json_escape(trace_record) << "\"";
    }
    if (!trace_replay.empty()) {
        os << ",\"trace_replay\":\"" << json_escape(trace_replay) << "\"";
    }
    os << ",\"seed\":" << seed << "}";
    return os.str();
}

std::optional<dynamics_spec> dynamics_preset(std::string_view name) {
    dynamics_spec d;
    if (name == "static") return d;
    if (name == "rewire") {  // the full anonymity adversary, every round
        d.rewire_period = 1;
        return d;
    }
    if (name == "churn") {  // T-interval-connected churn, T = 8
        d.edge_down_prob = 0.25;
        d.churn_interval = 8;
        return d;
    }
    if (name == "loss") {
        d.loss_prob = 0.05;
        return d;
    }
    if (name == "crash") {
        d.crash_prob = 0.001;
        return d;
    }
    if (name == "sleep") {
        d.sleep_prob = 0.01;
        d.sleep_rounds = 8;
        return d;
    }
    if (name == "storm") {  // everything at once, mildly
        d.rewire_prob = 0.1;
        d.edge_down_prob = 0.15;
        d.churn_interval = 4;
        d.loss_prob = 0.02;
        d.sleep_prob = 0.005;
        d.sleep_rounds = 4;
        return d;
    }
    if (name == "frontier") {  // adaptive: kill undecided senders' traffic
        d.strategy = adaptive_kind::target_frontier_loss;
        d.strategy_intensity = 0.5;
        return d;
    }
    if (name == "assassin") {  // adaptive: crash the leader right after it decides
        d.strategy = adaptive_kind::leader_assassin;
        d.strategy_grace = 1;
        d.strategy_max_kills = 1;
        return d;
    }
    if (name == "cutchurn") {  // adaptive: churn the decision boundary
        d.strategy = adaptive_kind::cut_churn;
        d.strategy_intensity = 0.6;
        return d;
    }
    if (name == "member") {  // membership churn: nodes leave and rejoin
        d.leave_prob = 0.01;
        d.join_prob = 0.05;
        return d;
    }
    return std::nullopt;
}

std::vector<std::pair<std::string, dynamics_spec>> all_dynamics_presets() {
    std::vector<std::pair<std::string, dynamics_spec>> out;
    for (const char* name : {"static", "rewire", "churn", "loss", "crash", "sleep",
                             "storm", "frontier", "assassin", "cutchurn", "member"}) {
        out.emplace_back(name, *dynamics_preset(name));
    }
    return out;
}

// --- slot layout -------------------------------------------------------------

slot_layout::slot_layout(const graph& g) {
    const std::size_t n = g.num_nodes();
    base.assign(n + 1, 0);
    for (node_id u = 0; u < n; ++u) base[u + 1] = base[u] + g.degree(u);
    const std::size_t slots = base[n];
    owner.resize(slots);
    peer.resize(slots);
    for (node_id u = 0; u < n; ++u) {
        const auto deg = static_cast<port_id>(g.degree(u));
        for (port_id p = 0; p < deg; ++p) {
            owner[base[u] + p] = u;
            peer[base[u] + p] = static_cast<std::uint32_t>(
                base[g.neighbor(u, p)] + g.reverse_port(u, p));
        }
    }
}

// --- in-place rewire ---------------------------------------------------------

void apply_port_rewire(const std::vector<std::size_t>& slot_base,
                       const std::vector<node_id>& slot_owner,
                       std::vector<std::uint32_t>& peer_slot,
                       const std::vector<node_id>& nodes, std::uint64_t seed,
                       std::vector<std::pair<std::uint32_t, std::uint32_t>>& moves) {
    if (nodes.empty()) return;
    // Index into `nodes` if v is rewired this round, else -1.
    const auto rewired_index = [&](node_id v) -> std::ptrdiff_t {
        const auto it = std::lower_bound(nodes.begin(), nodes.end(), v);
        return (it != nodes.end() && *it == v) ? it - nodes.begin() : -1;
    };

    // Draw every permutation and snapshot every rewired peer range first:
    // the in-place writes below overlap the rewired ranges. Scratch is
    // reused across calls — the every-round rewire adversary calls this
    // once per round, and the buffers dominate its cost otherwise.
    static thread_local std::vector<std::size_t> off;
    static thread_local std::vector<port_id> perm;
    static thread_local std::vector<std::uint32_t> old_peer;
    off.assign(nodes.size() + 1, 0);
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        const node_id u = nodes[i];
        off[i + 1] = off[i] + (slot_base[u + 1] - slot_base[u]);
    }
    perm.resize(off.back());
    old_peer.resize(off.back());
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        const node_id u = nodes[i];
        const std::size_t d = off[i + 1] - off[i];
        fill_port_permutation(seed, u, std::span<port_id>(perm.data() + off[i], d));
        std::copy_n(peer_slot.data() + slot_base[u], d, old_peer.data() + off[i]);
    }

    // σ relabels slots within rewired nodes' ranges and fixes the rest.
    const auto sigma = [&](std::uint32_t t) -> std::uint32_t {
        const node_id v = slot_owner[t];
        const std::ptrdiff_t j = rewired_index(v);
        if (j < 0) return t;
        const auto p = static_cast<std::size_t>(t - slot_base[v]);
        return static_cast<std::uint32_t>(slot_base[v] +
                                          perm[off[static_cast<std::size_t>(j)] + p]);
    };

    // New peer table: peer'[σ(s)] = σ(peer[s]) for every directed edge
    // with a rewired endpoint. Each such edge is visited from each of its
    // rewired endpoints; the non-rewired side (σ = identity) is patched
    // from here. The composition of per-node range permutations keeps
    // peer' an involution and the induced multigraph untouched.
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        const node_id u = nodes[i];
        const std::size_t base = slot_base[u];
        const std::size_t d = off[i + 1] - off[i];
        for (std::size_t p = 0; p < d; ++p) {
            const auto s = static_cast<std::uint32_t>(base + p);
            const auto s2 = static_cast<std::uint32_t>(base + perm[off[i] + p]);
            const std::uint32_t t = old_peer[off[i] + p];
            peer_slot[s2] = sigma(t);
            if (rewired_index(slot_owner[t]) < 0) peer_slot[t] = s2;
            if (s2 != s) moves.emplace_back(s, s2);
        }
    }
}

// --- runtime state -----------------------------------------------------------

dynamics_state::dynamics_state(const graph& g, const dynamics_spec& spec,
                               std::uint64_t run_seed)
    : g_(g), spec_(spec),
      seed_(spec.seed != 0 ? spec.seed : derive_seed(run_seed, 0xD74A, 0x1C5)),
      layout_(g) {
    spec_.validate();
    const std::size_t n = g.num_nodes();
    if (!spec_.trace_replay.empty()) {
        // The recorded schedule owns this run: the trace header's spec
        // and resolved seed replace every sampling knob (so window
        // redraw gates, stat counting and rewire permutations all match
        // the original run exactly); only the trace paths themselves
        // survive from the caller's spec.
        replay_ = std::make_unique<trace_log>(trace_log::load(spec_.trace_replay));
        replay_->check_against(n, layout_.peer.size(), g.num_edges());
        auto [name, recorded] = dynamics_from_json(json_parse(replay_->spec_json));
        (void)name;
        recorded.trace_record = spec_.trace_record;
        recorded.trace_replay = spec_.trace_replay;
        spec_ = std::move(recorded);
        seed_ = replay_->seed;
    }
    if (!spec_.trace_record.empty()) {
        dynamics_spec header = spec_;
        header.trace_record.clear();
        header.trace_replay.clear();
        writer_ = std::make_unique<trace_writer>(spec_.trace_record, n,
                                                 layout_.peer.size(), g.num_edges(),
                                                 seed_, header.to_json());
    }
    if (spec_.strategy == adaptive_kind::leader_assassin && !replaying()) {
        leader_seen_.assign(n, 0);
    }
    if (spec_.edge_down_prob > 0) {
        // Undirected edge ids per slot, and the protected BFS backbone.
        const std::size_t m = g.num_edges();
        slot_edge_.assign(layout_.peer.size(), 0);
        std::uint32_t next_edge = 0;
        for (std::uint32_t s = 0; s < layout_.peer.size(); ++s) {
            if (s < layout_.peer[s]) {
                slot_edge_[s] = next_edge;
                slot_edge_[layout_.peer[s]] = next_edge;
                ++next_edge;
            }
        }
        backbone_.assign(m, 0);
        edge_down_.assign(m, 0);
        if (spec_.protect_backbone && n > 1) {
            std::vector<char> vis(n, 0);
            std::queue<node_id> q;
            q.push(0);
            vis[0] = 1;
            while (!q.empty()) {
                const node_id u = q.front();
                q.pop();
                const auto deg = static_cast<port_id>(g.degree(u));
                for (port_id p = 0; p < deg; ++p) {
                    const node_id v = g.neighbor(u, p);
                    if (vis[v]) continue;
                    vis[v] = 1;
                    backbone_[slot_edge_[layout_.base[u] + p]] = 1;
                    q.push(v);
                }
            }
        }
    }
    if (spec_.sleep_prob > 0) sleep_until_.assign(n, 0);
}

// Digest offsets per event kind: kept distinct so the schedule digest
// separates event types, and identical between the sampling and replay
// paths (both funnel through emit()).
namespace {

std::uint64_t note_base(trace_kind k) noexcept {
    switch (k) {
        case trace_kind::rewire: return 0x11;
        case trace_kind::edge_down: return 0x22;
        case trace_kind::churn_kill: return 0x33;
        case trace_kind::loss_kill: return 0x44;
        case trace_kind::crash: return 0x55;
        case trace_kind::sleep: return 0x66;
        case trace_kind::leave: return 0x77;
        case trace_kind::join: return 0x88;
        case trace_kind::adaptive_kill: return 0x99;
        case trace_kind::cut_kill: return 0xAA;
        case trace_kind::adaptive_crash: return 0xBB;
        case trace_kind::window_reset: return 0;  // boundary marker, not an event
    }
    return 0;
}

}  // namespace

void dynamics_state::emit(std::uint64_t round, trace_kind kind, std::uint64_t a,
                          std::uint64_t b) {
    if (kind != trace_kind::window_reset) note(note_base(kind) + a);
    if (writer_) writer_->record(round, kind, a, b);
}

bool dynamics_state::replay_take(std::uint64_t round, trace_kind kind,
                                 trace_event& out) {
    const trace_event* ev = replay_peek();
    if (ev == nullptr || ev->round != round || ev->kind != kind) return false;
    out = *ev;
    ++cursor_;
    emit(round, kind, out.a, out.b);
    return true;
}

const std::vector<std::pair<std::uint32_t, std::uint32_t>>& dynamics_state::plan_rewire(
    std::uint64_t round, std::vector<std::uint32_t>& peer_slot,
    const std::vector<char>& halted, const std::vector<char>& present) {
    moves_.clear();
    rewired_.clear();
    if (replay_) {
        // Any event left over from an earlier round was never applicable
        // in its phase: the trace does not describe this run.
        if (const trace_event* stale = replay_peek();
            stale != nullptr && stale->round < round) {
            throw error(std::string("trace: recorded event '") + to_string(stale->kind) +
                        " " + std::to_string(stale->a) + "' at round " +
                        std::to_string(stale->round) +
                        " was never applied — the trace does not match this run "
                        "(hand-edited, reordered, or recorded on a different setup?)");
        }
        trace_event ev;
        while (replay_take(round, trace_kind::rewire, ev)) {
            const auto u = static_cast<node_id>(ev.a);
            require(rewired_.empty() || rewired_.back() < u,
                    "trace: rewire events must be in ascending node order");
            rewired_.push_back(u);
        }
    } else {
        if (spec_.rewire_prob <= 0 && spec_.rewire_period == 0) return moves_;
        const bool periodic =
            spec_.rewire_period > 0 && round % spec_.rewire_period == 0;
        const std::size_t n = g_.num_nodes();
        for (node_id u = 0; u < n; ++u) {
            if (halted[u] || !present[u]) continue;
            if (periodic ||
                detail::hash_bernoulli(seed_, round, u, 0x5E11, spec_.rewire_prob)) {
                rewired_.push_back(u);
                emit(round, trace_kind::rewire, u);
            }
        }
    }
    if (rewired_.empty()) return moves_;
    apply_port_rewire(layout_.base, layout_.owner, peer_slot, rewired_,
                      rewire_seed(round), moves_);
    // Auxiliary per-slot tables relocate along with the payload.
    if (!slot_edge_.empty()) {
        static thread_local std::vector<std::uint32_t> scratch;
        scratch.clear();
        for (const auto& [src, dst] : moves_) scratch.push_back(slot_edge_[src]);
        for (std::size_t i = 0; i < moves_.size(); ++i) {
            slot_edge_[moves_[i].second] = scratch[i];
        }
    }
    stats_.rewired_nodes += rewired_.size();
    return moves_;
}

void dynamics_state::release_slot_range(node_id u, std::uint32_t mark,
                                        std::vector<std::uint32_t>& cur_stamp) {
    const std::size_t lo = layout_.base[u];
    const std::size_t hi = layout_.base[u + 1];
    for (std::size_t s = lo; s < hi; ++s) {
        if (cur_stamp[s] == mark) ++stats_.released_messages;
        cur_stamp[s] = 0;  // 0 never matches a delivery mark
    }
}

const std::vector<membership_event>& dynamics_state::plan_membership(
    std::uint64_t round, std::uint32_t mark, const std::vector<char>& halted,
    const std::vector<char>& present, std::vector<std::uint32_t>& cur_stamp) {
    membership_.clear();
    if (replay_) {
        while (const trace_event* ev = replay_peek()) {
            if (ev->round != round ||
                (ev->kind != trace_kind::leave && ev->kind != trace_kind::join)) {
                break;
            }
            const trace_event e = *ev;
            ++cursor_;
            emit(e.round, e.kind, e.a, e.b);
            const auto u = static_cast<node_id>(e.a);
            if (e.kind == trace_kind::leave) {
                release_slot_range(u, mark, cur_stamp);
                ++stats_.leaves;
                membership_.push_back({u, false});
            } else {
                ++stats_.joins;
                membership_.push_back({u, true});
            }
        }
        return membership_;
    }
    if (spec_.leave_prob <= 0 && spec_.join_prob <= 0) return membership_;
    const std::size_t n = g_.num_nodes();
    for (node_id u = 0; u < n; ++u) {
        if (present[u] && !halted[u]) {
            if (detail::hash_bernoulli(seed_, round, u, 0x1EAF, spec_.leave_prob)) {
                emit(round, trace_kind::leave, u);
                release_slot_range(u, mark, cur_stamp);
                ++stats_.leaves;
                membership_.push_back({u, false});
            }
        } else if (!present[u]) {
            if (detail::hash_bernoulli(seed_, round, u, 0x701, spec_.join_prob)) {
                emit(round, trace_kind::join, u);
                ++stats_.joins;
                membership_.push_back({u, true});
            }
        }
    }
    return membership_;
}

const std::vector<node_id>& dynamics_state::plan_adaptive(
    std::uint64_t round, std::uint32_t mark, std::vector<std::uint32_t>& cur_stamp,
    const std::vector<char>& halted, const std::vector<char>& present,
    const std::vector<char>& decided, const std::vector<char>& leader) {
    adaptive_crashed_.clear();
    if (replay_) {
        while (const trace_event* ev = replay_peek()) {
            if (ev->round != round || (ev->kind != trace_kind::adaptive_crash &&
                                       ev->kind != trace_kind::adaptive_kill &&
                                       ev->kind != trace_kind::cut_kill)) {
                break;
            }
            const trace_event e = *ev;
            ++cursor_;
            emit(e.round, e.kind, e.a, e.b);
            if (e.kind == trace_kind::adaptive_crash) {
                adaptive_crashed_.push_back(static_cast<node_id>(e.a));
                ++stats_.assassinations;
            } else {
                cur_stamp[static_cast<std::size_t>(e.a)] = 0;
                if (e.kind == trace_kind::adaptive_kill) {
                    ++stats_.targeted_losses;
                } else {
                    ++stats_.cut_losses;
                }
            }
        }
        return adaptive_crashed_;
    }
    const auto flag = [](const std::vector<char>& v, node_id u) noexcept {
        return u < v.size() && v[u] != 0;
    };
    switch (spec_.strategy) {
        case adaptive_kind::none:
            break;
        case adaptive_kind::target_frontier_loss:
            // Kill traffic out of the active frontier: live senders that
            // have not decided yet are the ones still moving the
            // computation (max-id waves, walk tokens, recruitment).
            for (std::uint32_t s = 0; s < cur_stamp.size(); ++s) {
                if (cur_stamp[s] != mark) continue;
                const node_id u = layout_.owner[s];
                if (halted[u] || !present[u] || flag(decided, u)) continue;
                if (detail::hash_bernoulli(seed_, round, s, 0xF057,
                                           spec_.strategy_intensity)) {
                    cur_stamp[s] = 0;
                    ++stats_.targeted_losses;
                    emit(round, trace_kind::adaptive_kill, s);
                }
            }
            break;
        case adaptive_kind::cut_churn:
            // Kill messages crossing the decision boundary — the cut
            // between settled territory and nodes still undecided.
            for (std::uint32_t s = 0; s < cur_stamp.size(); ++s) {
                if (cur_stamp[s] != mark) continue;
                const node_id u = layout_.owner[s];
                const node_id v = layout_.owner[layout_.peer[s]];
                if (flag(decided, u) == flag(decided, v)) continue;
                if (detail::hash_bernoulli(seed_, round, s, 0xC07,
                                           spec_.strategy_intensity)) {
                    cur_stamp[s] = 0;
                    ++stats_.cut_losses;
                    emit(round, trace_kind::cut_kill, s);
                }
            }
            break;
        case adaptive_kind::leader_assassin: {
            const std::size_t n = g_.num_nodes();
            for (node_id u = 0; u < n; ++u) {
                if (halted[u] || !present[u] || !flag(leader, u)) {
                    leader_seen_[u] = 0;
                    continue;
                }
                if (leader_seen_[u] == 0) {
                    leader_seen_[u] = round + 1;  // first observation
                    continue;
                }
                // Observed age in rounds; grace = 1 crashes the leader
                // the round after it was first seen holding the flag.
                if (kills_ < spec_.strategy_max_kills &&
                    round + 1 - leader_seen_[u] >= spec_.strategy_grace) {
                    adaptive_crashed_.push_back(u);
                    leader_seen_[u] = 0;
                    ++kills_;
                    ++stats_.assassinations;
                    emit(round, trace_kind::adaptive_crash, u);
                }
            }
            break;
        }
    }
    return adaptive_crashed_;
}

void dynamics_state::apply_message_faults(std::uint64_t round, std::uint32_t mark,
                                          std::vector<std::uint32_t>& cur_stamp) {
    // Gated by the *recorded* spec under replay (the ctor swapped it in),
    // so the delivery count and down-window bookkeeping match the
    // original run exactly.
    const bool churn = spec_.edge_down_prob > 0;
    const bool loss = spec_.loss_prob > 0;
    if (!churn && !loss) return;
    if (churn) {
        const std::uint64_t window = round / spec_.churn_interval;
        if (window != window_) {
            window_ = window;
            down_count_ = 0;
            std::fill(edge_down_.begin(), edge_down_.end(), 0);
            if (replay_) {
                trace_event ev;
                require(replay_take(round, trace_kind::window_reset, ev),
                        "trace: missing window_reset at a churn window boundary — "
                        "the trace does not match this run");
                while (replay_take(round, trace_kind::edge_down, ev)) {
                    edge_down_[static_cast<std::size_t>(ev.a)] = 1;
                    ++down_count_;
                }
            } else {
                emit(round, trace_kind::window_reset, 0);
                for (std::size_t e = 0; e < edge_down_.size(); ++e) {
                    if (!backbone_[e] &&
                        detail::hash_bernoulli(seed_, window, e, 0xC5A2,
                                               spec_.edge_down_prob)) {
                        edge_down_[e] = 1;
                        ++down_count_;
                        emit(round, trace_kind::edge_down, e);
                    }
                }
            }
        }
        stats_.edge_down_rounds += down_count_;
    }
    for (std::uint32_t s = 0; s < cur_stamp.size(); ++s) {
        if (cur_stamp[s] != mark) continue;
        ++stats_.deliveries;
        if (replay_) {
            // Kills were recorded in this same ascending-slot scan, so a
            // sequential cursor suffices; a kill naming a slot that is
            // not live here stays unconsumed and trips the stale-event
            // check at the next round boundary.
            const trace_event* ev = replay_peek();
            if (ev != nullptr && ev->round == round && ev->a == s &&
                (ev->kind == trace_kind::churn_kill ||
                 ev->kind == trace_kind::loss_kill)) {
                const trace_event e = *ev;
                ++cursor_;
                emit(e.round, e.kind, e.a, e.b);
                cur_stamp[s] = 0;  // 0 never matches a delivery mark
                if (e.kind == trace_kind::churn_kill) {
                    ++stats_.churned_messages;
                } else {
                    ++stats_.lost_messages;
                }
            }
        } else if (churn && edge_down_[slot_edge_[s]]) {
            cur_stamp[s] = 0;  // 0 never matches a delivery mark
            ++stats_.churned_messages;
            emit(round, trace_kind::churn_kill, s);
        } else if (loss &&
                   detail::hash_bernoulli(seed_, round, s, 0x1055, spec_.loss_prob)) {
            cur_stamp[s] = 0;
            ++stats_.lost_messages;
            emit(round, trace_kind::loss_kill, s);
        }
    }
}

const std::vector<node_id>& dynamics_state::plan_node_faults(
    std::uint64_t round, const std::vector<char>& halted,
    const std::vector<char>& present) {
    crashed_.clear();
    const std::size_t n = g_.num_nodes();
    if (replay_) {
        // Crash trials are a rate denominator, not events — recompute
        // them from the live set (identical to the recording run's scan)
        // before applying this round's recorded faults.
        if (spec_.crash_prob > 0) {
            for (node_id u = 0; u < n; ++u) {
                if (halted[u] || !present[u] || asleep(u, round)) continue;
                ++stats_.crash_trials;
            }
        }
        trace_event ev;
        while (true) {
            if (replay_take(round, trace_kind::crash, ev)) {
                crashed_.push_back(static_cast<node_id>(ev.a));
                ++stats_.crashes;
            } else if (replay_take(round, trace_kind::sleep, ev)) {
                require(!sleep_until_.empty(),
                        "trace: sleep event but the recorded spec has no sleep model");
                sleep_until_[static_cast<node_id>(ev.a)] = ev.b;
                ++stats_.sleep_events;
            } else {
                break;
            }
        }
        return crashed_;
    }
    if (spec_.crash_prob <= 0 && spec_.sleep_prob <= 0) return crashed_;
    for (node_id u = 0; u < n; ++u) {
        if (halted[u] || !present[u]) continue;
        if (asleep(u, round)) continue;
        if (spec_.crash_prob > 0) {
            ++stats_.crash_trials;
            if (detail::hash_bernoulli(seed_, round, u, 0xC8A5, spec_.crash_prob)) {
                crashed_.push_back(u);
                ++stats_.crashes;
                emit(round, trace_kind::crash, u);
                continue;
            }
        }
        if (spec_.sleep_prob > 0 &&
            detail::hash_bernoulli(seed_, round, u, 0x51EE, spec_.sleep_prob)) {
            sleep_until_[u] = round + spec_.sleep_rounds;
            ++stats_.sleep_events;
            emit(round, trace_kind::sleep, u, sleep_until_[u]);
        }
    }
    return crashed_;
}

// --- parsing -----------------------------------------------------------------

std::pair<std::string, dynamics_spec> dynamics_from_json(const json_value& v) {
    std::string name;
    dynamics_spec d;
    bool any_knob = false;
    for (const auto& [key, val] : v.as_object()) {
        if (key == "name") {
            name = val.as_string();
            continue;
        }
        any_knob = true;
        if (key == "rewire_prob") {
            d.rewire_prob = val.as_number();
        } else if (key == "rewire_period") {
            d.rewire_period = val.as_uint();
        } else if (key == "edge_down_prob") {
            d.edge_down_prob = val.as_number();
        } else if (key == "churn_interval") {
            d.churn_interval = val.as_uint();
        } else if (key == "protect_backbone") {
            d.protect_backbone = val.as_bool();
        } else if (key == "loss_prob") {
            d.loss_prob = val.as_number();
        } else if (key == "crash_prob") {
            d.crash_prob = val.as_number();
        } else if (key == "sleep_prob") {
            d.sleep_prob = val.as_number();
        } else if (key == "sleep_rounds") {
            d.sleep_rounds = val.as_uint();
        } else if (key == "strategy") {
            const auto k = adaptive_from_string(val.as_string());
            require(k.has_value(),
                    "dynamics spec: unknown strategy '" + val.as_string() + "'");
            d.strategy = *k;
        } else if (key == "strategy_intensity") {
            d.strategy_intensity = val.as_number();
        } else if (key == "strategy_grace") {
            d.strategy_grace = val.as_uint();
        } else if (key == "strategy_max_kills") {
            d.strategy_max_kills = val.as_uint();
        } else if (key == "leave_prob") {
            d.leave_prob = val.as_number();
        } else if (key == "join_prob") {
            d.join_prob = val.as_number();
        } else if (key == "trace_record") {
            d.trace_record = val.as_string();
        } else if (key == "trace_replay") {
            d.trace_replay = val.as_string();
        } else if (key == "seed") {
            d.seed = val.as_uint();
        } else {
            throw error("dynamics spec: unknown key '" + key + "'");
        }
    }
    require(!name.empty() || any_knob, "dynamics spec: entry needs a name or knobs");
    if (!any_knob) {
        const auto preset = dynamics_preset(name);
        require(preset.has_value(), "dynamics spec: unknown preset '" + name + "'");
        d = *preset;
    }
    if (name.empty()) name = d.summary();
    d.validate();
    return {std::move(name), d};
}

}  // namespace anole
