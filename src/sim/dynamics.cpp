#include "sim/dynamics.h"

#include <algorithm>
#include <queue>
#include <sstream>

#include "util/json.h"

namespace anole {

// --- declaration ------------------------------------------------------------

void dynamics_spec::validate() const {
    const auto prob = [](double p, const char* what) {
        require(p >= 0 && p <= 1, std::string("dynamics: ") + what + " must be in [0, 1]");
    };
    prob(rewire_prob, "rewire_prob");
    prob(edge_down_prob, "edge_down_prob");
    prob(loss_prob, "loss_prob");
    prob(crash_prob, "crash_prob");
    prob(sleep_prob, "sleep_prob");
    require(churn_interval >= 1, "dynamics: churn_interval >= 1");
    require(sleep_rounds >= 1, "dynamics: sleep_rounds >= 1");
}

std::string dynamics_spec::summary() const {
    std::ostringstream os;
    const char* sep = "";
    if (rewire_prob > 0 || rewire_period > 0) {
        os << sep << "rewire(";
        if (rewire_prob > 0) os << "p=" << rewire_prob;
        if (rewire_period > 0) os << (rewire_prob > 0 ? "," : "") << "every=" << rewire_period;
        os << ")";
        sep = "+";
    }
    if (edge_down_prob > 0) {
        os << sep << "churn(" << edge_down_prob << "/T=" << churn_interval
           << (protect_backbone ? "" : ",unprotected") << ")";
        sep = "+";
    }
    if (loss_prob > 0) {
        os << sep << "loss(" << loss_prob << ")";
        sep = "+";
    }
    if (crash_prob > 0) {
        os << sep << "crash(" << crash_prob << ")";
        sep = "+";
    }
    if (sleep_prob > 0) {
        os << sep << "sleep(" << sleep_prob << "x" << sleep_rounds << ")";
        sep = "+";
    }
    if (*sep == '\0') return "static";
    return os.str();
}

std::optional<dynamics_spec> dynamics_preset(std::string_view name) {
    dynamics_spec d;
    if (name == "static") return d;
    if (name == "rewire") {  // the full anonymity adversary, every round
        d.rewire_period = 1;
        return d;
    }
    if (name == "churn") {  // T-interval-connected churn, T = 8
        d.edge_down_prob = 0.25;
        d.churn_interval = 8;
        return d;
    }
    if (name == "loss") {
        d.loss_prob = 0.05;
        return d;
    }
    if (name == "crash") {
        d.crash_prob = 0.001;
        return d;
    }
    if (name == "sleep") {
        d.sleep_prob = 0.01;
        d.sleep_rounds = 8;
        return d;
    }
    if (name == "storm") {  // everything at once, mildly
        d.rewire_prob = 0.1;
        d.edge_down_prob = 0.15;
        d.churn_interval = 4;
        d.loss_prob = 0.02;
        d.sleep_prob = 0.005;
        d.sleep_rounds = 4;
        return d;
    }
    return std::nullopt;
}

std::vector<std::pair<std::string, dynamics_spec>> all_dynamics_presets() {
    std::vector<std::pair<std::string, dynamics_spec>> out;
    for (const char* name : {"static", "rewire", "churn", "loss", "crash", "sleep",
                             "storm"}) {
        out.emplace_back(name, *dynamics_preset(name));
    }
    return out;
}

// --- slot layout -------------------------------------------------------------

slot_layout::slot_layout(const graph& g) {
    const std::size_t n = g.num_nodes();
    base.assign(n + 1, 0);
    for (node_id u = 0; u < n; ++u) base[u + 1] = base[u] + g.degree(u);
    const std::size_t slots = base[n];
    owner.resize(slots);
    peer.resize(slots);
    for (node_id u = 0; u < n; ++u) {
        const auto deg = static_cast<port_id>(g.degree(u));
        for (port_id p = 0; p < deg; ++p) {
            owner[base[u] + p] = u;
            peer[base[u] + p] = static_cast<std::uint32_t>(
                base[g.neighbor(u, p)] + g.reverse_port(u, p));
        }
    }
}

// --- in-place rewire ---------------------------------------------------------

void apply_port_rewire(const std::vector<std::size_t>& slot_base,
                       const std::vector<node_id>& slot_owner,
                       std::vector<std::uint32_t>& peer_slot,
                       const std::vector<node_id>& nodes, std::uint64_t seed,
                       std::vector<std::pair<std::uint32_t, std::uint32_t>>& moves) {
    if (nodes.empty()) return;
    // Index into `nodes` if v is rewired this round, else -1.
    const auto rewired_index = [&](node_id v) -> std::ptrdiff_t {
        const auto it = std::lower_bound(nodes.begin(), nodes.end(), v);
        return (it != nodes.end() && *it == v) ? it - nodes.begin() : -1;
    };

    // Draw every permutation and snapshot every rewired peer range first:
    // the in-place writes below overlap the rewired ranges. Scratch is
    // reused across calls — the every-round rewire adversary calls this
    // once per round, and the buffers dominate its cost otherwise.
    static thread_local std::vector<std::size_t> off;
    static thread_local std::vector<port_id> perm;
    static thread_local std::vector<std::uint32_t> old_peer;
    off.assign(nodes.size() + 1, 0);
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        const node_id u = nodes[i];
        off[i + 1] = off[i] + (slot_base[u + 1] - slot_base[u]);
    }
    perm.resize(off.back());
    old_peer.resize(off.back());
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        const node_id u = nodes[i];
        const std::size_t d = off[i + 1] - off[i];
        fill_port_permutation(seed, u, std::span<port_id>(perm.data() + off[i], d));
        std::copy_n(peer_slot.data() + slot_base[u], d, old_peer.data() + off[i]);
    }

    // σ relabels slots within rewired nodes' ranges and fixes the rest.
    const auto sigma = [&](std::uint32_t t) -> std::uint32_t {
        const node_id v = slot_owner[t];
        const std::ptrdiff_t j = rewired_index(v);
        if (j < 0) return t;
        const auto p = static_cast<std::size_t>(t - slot_base[v]);
        return static_cast<std::uint32_t>(slot_base[v] +
                                          perm[off[static_cast<std::size_t>(j)] + p]);
    };

    // New peer table: peer'[σ(s)] = σ(peer[s]) for every directed edge
    // with a rewired endpoint. Each such edge is visited from each of its
    // rewired endpoints; the non-rewired side (σ = identity) is patched
    // from here. The composition of per-node range permutations keeps
    // peer' an involution and the induced multigraph untouched.
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        const node_id u = nodes[i];
        const std::size_t base = slot_base[u];
        const std::size_t d = off[i + 1] - off[i];
        for (std::size_t p = 0; p < d; ++p) {
            const auto s = static_cast<std::uint32_t>(base + p);
            const auto s2 = static_cast<std::uint32_t>(base + perm[off[i] + p]);
            const std::uint32_t t = old_peer[off[i] + p];
            peer_slot[s2] = sigma(t);
            if (rewired_index(slot_owner[t]) < 0) peer_slot[t] = s2;
            if (s2 != s) moves.emplace_back(s, s2);
        }
    }
}

// --- runtime state -----------------------------------------------------------

dynamics_state::dynamics_state(const graph& g, const dynamics_spec& spec,
                               std::uint64_t run_seed)
    : g_(g), spec_(spec),
      seed_(spec.seed != 0 ? spec.seed : derive_seed(run_seed, 0xD74A, 0x1C5)),
      layout_(g) {
    spec_.validate();
    const std::size_t n = g.num_nodes();
    if (spec_.edge_down_prob > 0) {
        // Undirected edge ids per slot, and the protected BFS backbone.
        const std::size_t m = g.num_edges();
        slot_edge_.assign(layout_.peer.size(), 0);
        std::uint32_t next_edge = 0;
        for (std::uint32_t s = 0; s < layout_.peer.size(); ++s) {
            if (s < layout_.peer[s]) {
                slot_edge_[s] = next_edge;
                slot_edge_[layout_.peer[s]] = next_edge;
                ++next_edge;
            }
        }
        backbone_.assign(m, 0);
        edge_down_.assign(m, 0);
        if (spec_.protect_backbone && n > 1) {
            std::vector<char> vis(n, 0);
            std::queue<node_id> q;
            q.push(0);
            vis[0] = 1;
            while (!q.empty()) {
                const node_id u = q.front();
                q.pop();
                const auto deg = static_cast<port_id>(g.degree(u));
                for (port_id p = 0; p < deg; ++p) {
                    const node_id v = g.neighbor(u, p);
                    if (vis[v]) continue;
                    vis[v] = 1;
                    backbone_[slot_edge_[layout_.base[u] + p]] = 1;
                    q.push(v);
                }
            }
        }
    }
    if (spec_.sleep_prob > 0) sleep_until_.assign(n, 0);
}

const std::vector<std::pair<std::uint32_t, std::uint32_t>>& dynamics_state::plan_rewire(
    std::uint64_t round, std::vector<std::uint32_t>& peer_slot,
    const std::vector<char>& halted) {
    moves_.clear();
    if (spec_.rewire_prob <= 0 && spec_.rewire_period == 0) return moves_;
    rewired_.clear();
    const bool periodic =
        spec_.rewire_period > 0 && round % spec_.rewire_period == 0;
    const std::size_t n = g_.num_nodes();
    for (node_id u = 0; u < n; ++u) {
        if (halted[u]) continue;
        if (periodic ||
            detail::hash_bernoulli(seed_, round, u, 0x5E11, spec_.rewire_prob)) {
            rewired_.push_back(u);
        }
    }
    if (rewired_.empty()) return moves_;
    apply_port_rewire(layout_.base, layout_.owner, peer_slot, rewired_,
                      rewire_seed(round), moves_);
    // Auxiliary per-slot tables relocate along with the payload.
    if (!slot_edge_.empty()) {
        static thread_local std::vector<std::uint32_t> scratch;
        scratch.clear();
        for (const auto& [src, dst] : moves_) scratch.push_back(slot_edge_[src]);
        for (std::size_t i = 0; i < moves_.size(); ++i) {
            slot_edge_[moves_[i].second] = scratch[i];
        }
    }
    stats_.rewired_nodes += rewired_.size();
    for (const node_id u : rewired_) note(0x11 + u);
    return moves_;
}

void dynamics_state::apply_message_faults(std::uint64_t round, std::uint32_t mark,
                                          std::vector<std::uint32_t>& cur_stamp) {
    const bool churn = spec_.edge_down_prob > 0;
    const bool loss = spec_.loss_prob > 0;
    if (!churn && !loss) return;
    if (churn) {
        const std::uint64_t window = round / spec_.churn_interval;
        if (window != window_) {
            window_ = window;
            down_count_ = 0;
            for (std::size_t e = 0; e < edge_down_.size(); ++e) {
                const bool down =
                    !backbone_[e] && detail::hash_bernoulli(seed_, window, e, 0xC5A2,
                                                            spec_.edge_down_prob);
                edge_down_[e] = down ? 1 : 0;
                if (down) {
                    ++down_count_;
                    note(0x22 + e);
                }
            }
        }
        stats_.edge_down_rounds += down_count_;
    }
    for (std::uint32_t s = 0; s < cur_stamp.size(); ++s) {
        if (cur_stamp[s] != mark) continue;
        ++stats_.deliveries;
        if (churn && edge_down_[slot_edge_[s]]) {
            cur_stamp[s] = 0;  // 0 never matches a delivery mark
            ++stats_.churned_messages;
            note(0x33 + s);
        } else if (loss &&
                   detail::hash_bernoulli(seed_, round, s, 0x1055, spec_.loss_prob)) {
            cur_stamp[s] = 0;
            ++stats_.lost_messages;
            note(0x44 + s);
        }
    }
}

const std::vector<node_id>& dynamics_state::plan_node_faults(
    std::uint64_t round, const std::vector<char>& halted) {
    crashed_.clear();
    if (spec_.crash_prob <= 0 && spec_.sleep_prob <= 0) return crashed_;
    const std::size_t n = g_.num_nodes();
    for (node_id u = 0; u < n; ++u) {
        if (halted[u]) continue;
        if (asleep(u, round)) continue;
        if (spec_.crash_prob > 0) {
            ++stats_.crash_trials;
            if (detail::hash_bernoulli(seed_, round, u, 0xC8A5, spec_.crash_prob)) {
                crashed_.push_back(u);
                ++stats_.crashes;
                note(0x55 + u);
                continue;
            }
        }
        if (spec_.sleep_prob > 0 &&
            detail::hash_bernoulli(seed_, round, u, 0x51EE, spec_.sleep_prob)) {
            sleep_until_[u] = round + spec_.sleep_rounds;
            ++stats_.sleep_events;
            note(0x66 + u);
        }
    }
    return crashed_;
}

// --- parsing -----------------------------------------------------------------

std::pair<std::string, dynamics_spec> dynamics_from_json(const json_value& v) {
    std::string name;
    dynamics_spec d;
    bool any_knob = false;
    for (const auto& [key, val] : v.as_object()) {
        if (key == "name") {
            name = val.as_string();
            continue;
        }
        any_knob = true;
        if (key == "rewire_prob") {
            d.rewire_prob = val.as_number();
        } else if (key == "rewire_period") {
            d.rewire_period = val.as_uint();
        } else if (key == "edge_down_prob") {
            d.edge_down_prob = val.as_number();
        } else if (key == "churn_interval") {
            d.churn_interval = val.as_uint();
        } else if (key == "protect_backbone") {
            d.protect_backbone = val.as_bool();
        } else if (key == "loss_prob") {
            d.loss_prob = val.as_number();
        } else if (key == "crash_prob") {
            d.crash_prob = val.as_number();
        } else if (key == "sleep_prob") {
            d.sleep_prob = val.as_number();
        } else if (key == "sleep_rounds") {
            d.sleep_rounds = val.as_uint();
        } else if (key == "seed") {
            d.seed = val.as_uint();
        } else {
            throw error("dynamics spec: unknown key '" + key + "'");
        }
    }
    require(!name.empty() || any_knob, "dynamics spec: entry needs a name or knobs");
    if (!any_knob) {
        const auto preset = dynamics_preset(name);
        require(preset.has_value(), "dynamics spec: unknown preset '" + name + "'");
        d = *preset;
    }
    if (name.empty()) name = d.summary();
    d.validate();
    return {std::move(name), d};
}

}  // namespace anole
