#include "sim/trace.h"

#include <utility>

#include "util/error.h"
#include "util/json.h"

namespace anole {

namespace {

constexpr std::pair<trace_kind, const char*> kind_names[] = {
    {trace_kind::rewire, "rewire"},
    {trace_kind::leave, "leave"},
    {trace_kind::join, "join"},
    {trace_kind::adaptive_crash, "acrash"},
    {trace_kind::adaptive_kill, "akill"},
    {trace_kind::cut_kill, "ckill"},
    {trace_kind::window_reset, "wreset"},
    {trace_kind::edge_down, "edown"},
    {trace_kind::churn_kill, "churn"},
    {trace_kind::loss_kill, "loss"},
    {trace_kind::crash, "crash"},
    {trace_kind::sleep, "sleep"},
};

}  // namespace

const char* to_string(trace_kind k) noexcept {
    for (const auto& [kind, name] : kind_names) {
        if (kind == k) return name;
    }
    return "?";
}

std::optional<trace_kind> trace_kind_from_string(std::string_view s) {
    for (const auto& [kind, name] : kind_names) {
        if (s == name) return kind;
    }
    return std::nullopt;
}

trace_log trace_log::load(const std::string& path) {
    std::ifstream in(path);
    require(in.good(), "trace: cannot open '" + path + "'");
    trace_log log;
    std::string line;
    std::size_t lineno = 0;
    bool have_header = false;
    const auto fail = [&](const std::string& what) -> void {
        throw error("trace: " + path + ":" + std::to_string(lineno) + ": " + what);
    };
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty()) continue;
        json_value v;
        try {
            v = json_parse(line);
        } catch (const error& e) {
            fail(std::string("malformed JSON (") + e.what() + ")");
        }
        if (!v.is_object()) fail("expected a JSON object");
        if (!have_header) {
            if (!v.contains("anole_trace")) fail("missing trace header");
            require(v.at("anole_trace").as_uint() == 1,
                    "trace: unsupported trace version");
            for (const char* key : {"n", "slots", "edges", "seed", "spec"}) {
                if (!v.contains(key)) {
                    fail(std::string("header missing required field '") + key + "'");
                }
            }
            log.n = static_cast<std::size_t>(v.at("n").as_uint());
            log.slots = static_cast<std::size_t>(v.at("slots").as_uint());
            log.edges = static_cast<std::size_t>(v.at("edges").as_uint());
            // The resolved schedule seed is a full 64-bit hash; JSON
            // numbers are doubles (53-bit mantissa), so it travels as a
            // decimal string.
            const json_value& sv = v.at("seed");
            if (sv.is_string()) {
                try {
                    log.seed = std::stoull(sv.as_string());
                } catch (const std::exception&) {
                    fail("header seed is not a decimal integer");
                }
            } else {
                log.seed = sv.as_uint();
            }
            require(v.at("spec").is_object(), "trace: header spec must be an object");
            // Re-serialization would need a writer; keep the verbatim
            // substring instead (the header is written on one line).
            const auto spec_pos = line.find("\"spec\":");
            if (spec_pos == std::string::npos) fail("header spec not inline");
            const auto open = line.find('{', spec_pos);
            std::size_t depth = 0, close = open;
            for (std::size_t i = open; i < line.size(); ++i) {
                if (line[i] == '{') ++depth;
                if (line[i] == '}' && --depth == 0) {
                    close = i;
                    break;
                }
            }
            log.spec_json = line.substr(open, close - open + 1);
            have_header = true;
            continue;
        }
        trace_event ev;
        if (!v.contains("r") || !v.contains("e")) {
            fail("event needs 'r' (round) and 'e' (kind)");
        }
        ev.round = v.at("r").as_uint();
        const auto kind = trace_kind_from_string(v.at("e").as_string());
        if (!kind) fail("unknown event kind '" + v.at("e").as_string() + "'");
        ev.kind = *kind;
        if (v.contains("a")) ev.a = v.at("a").as_uint();
        if (v.contains("b")) ev.b = v.at("b").as_uint();
        if (!log.events.empty() && ev.round < log.events.back().round) {
            fail("events out of round order");
        }
        log.events.push_back(ev);
    }
    require(have_header, "trace: '" + path + "' has no header line");
    return log;
}

void trace_log::check_against(std::size_t graph_n, std::size_t graph_slots,
                              std::size_t graph_edges) const {
    require(n == graph_n, "trace: footprint mismatch — trace has " +
                              std::to_string(n) + " nodes, graph has " +
                              std::to_string(graph_n));
    require(slots == graph_slots, "trace: footprint mismatch — trace has " +
                                      std::to_string(slots) + " slots, graph has " +
                                      std::to_string(graph_slots));
    require(edges == graph_edges, "trace: footprint mismatch — trace has " +
                                      std::to_string(edges) + " edges, graph has " +
                                      std::to_string(graph_edges));
    for (std::size_t i = 0; i < events.size(); ++i) {
        const trace_event& ev = events[i];
        const auto id_fail = [&](const char* what, std::uint64_t limit) -> void {
            throw error("trace: event " + std::to_string(i + 1) + " (" +
                        to_string(ev.kind) + " " + std::to_string(ev.a) + " at round " +
                        std::to_string(ev.round) + "): " + what + " out of range [0, " +
                        std::to_string(limit) + ")");
        };
        switch (ev.kind) {
            case trace_kind::rewire:
            case trace_kind::leave:
            case trace_kind::join:
            case trace_kind::adaptive_crash:
            case trace_kind::crash:
            case trace_kind::sleep:
                if (ev.a >= n) id_fail("node id", n);
                break;
            case trace_kind::adaptive_kill:
            case trace_kind::cut_kill:
            case trace_kind::churn_kill:
            case trace_kind::loss_kill:
                if (ev.a >= slots) id_fail("slot id", slots);
                break;
            case trace_kind::edge_down:
                if (ev.a >= edges) id_fail("edge id", edges);
                break;
            case trace_kind::window_reset:
                break;
        }
    }
}

trace_writer::trace_writer(const std::string& path, std::size_t n, std::size_t slots,
                           std::size_t edges, std::uint64_t seed,
                           const std::string& spec_json) {
    out_.open(path, std::ios::trunc);
    require(out_.good(), "trace: cannot open '" + path + "' for writing");
    out_ << "{\"anole_trace\":1,\"n\":" << n << ",\"slots\":" << slots
         << ",\"edges\":" << edges << ",\"seed\":\"" << seed
         << "\",\"spec\":" << spec_json << "}\n";
}

void trace_writer::record(std::uint64_t round, trace_kind kind, std::uint64_t a,
                          std::uint64_t b) {
    out_ << "{\"r\":" << round << ",\"e\":\"" << to_string(kind) << "\"";
    if (a != 0 || kind != trace_kind::window_reset) out_ << ",\"a\":" << a;
    if (b != 0) out_ << ",\"b\":" << b;
    out_ << "}\n";
}

}  // namespace anole
