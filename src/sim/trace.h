// anole — dynamics trace record / replay.
//
// Every dynamics schedule — hash-sampled, membership churn, or adaptive
// (protocol-state-dependent) — can be recorded as a JSONL event trace
// and replayed byte-for-byte later. Recording turns any adversarial
// failure found in a campaign into a committed regression case: the
// replayed run applies exactly the recorded events (no resampling, no
// strategy probe needed) and is bitwise identical to the original for
// every `--node-jobs` value.
//
// File format (docs/DYNAMICS.md): one JSON object per line.
//
//   header   {"anole_trace":1,"n":16,"slots":32,"edges":16,
//             "seed":123,"spec":{...dynamics_spec knobs...}}
//   events   {"r":4,"e":"rewire","a":3}
//            {"r":5,"e":"crash","a":7}
//            {"r":6,"e":"sleep","a":2,"b":10}
//
// `r` is the round, `e` the event kind, `a` the entity (node, slot or
// edge id — kind-dependent), `b` an auxiliary value (sleep wake round).
// Events are round-major and, within a round, in the engine's fixed
// phase order (rewire -> membership -> adaptive -> message faults ->
// node faults). The header pins the footprint shape and the resolved
// schedule seed: port-rewire permutations are a pure function of
// (seed, round), so they are *not* recorded per port — replay rederives
// them, which keeps traces O(events), not O(events x degree).
//
// Loading validates structure eagerly (version, required header fields,
// known kinds, non-decreasing rounds, ids in range once checked against
// a footprint), so a hand-edited or mismatched trace is rejected with a
// clear anole::error instead of silently corrupting a replay. This
// layer knows nothing about dynamics_spec — the header spec travels as
// raw JSON and sim/dynamics.cpp parses it — so trace.{h,cpp} stays a
// leaf below the dynamics layer.
#pragma once

#include <cstdint>
#include <fstream>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace anole {

enum class trace_kind : std::uint8_t {
    rewire,          // a: node whose ports were relabeled
    leave,           // a: node departing (its out-slot range is released)
    join,            // a: node (re)attaching with its footprint edges
    adaptive_crash,  // a: node crashed by leader_assassin
    adaptive_kill,   // a: slot killed by target_frontier_loss
    cut_kill,        // a: slot killed by cut_churn
    window_reset,    // churn window redraw boundary (no entity)
    edge_down,       // a: undirected edge down for the new window
    churn_kill,      // a: slot killed on a down edge
    loss_kill,       // a: slot killed by i.i.d. loss
    crash,           // a: node crashed by the i.i.d. model
    sleep,           // a: node, b: first round it is awake again
};

[[nodiscard]] const char* to_string(trace_kind k) noexcept;
[[nodiscard]] std::optional<trace_kind> trace_kind_from_string(std::string_view s);

struct trace_event {
    std::uint64_t round = 0;
    trace_kind kind = trace_kind::rewire;
    std::uint64_t a = 0;
    std::uint64_t b = 0;

    friend bool operator==(const trace_event&, const trace_event&) = default;
};

// A parsed trace file: the recorded footprint shape, the resolved
// schedule seed, the recorded spec knobs (raw JSON — parsed by the
// dynamics layer), and the flat event list.
struct trace_log {
    std::size_t n = 0;       // nodes in the footprint
    std::size_t slots = 0;   // 2m directed-edge slots
    std::size_t edges = 0;   // undirected footprint edges
    std::uint64_t seed = 0;  // resolved dynamics schedule seed
    std::string spec_json;   // recorded dynamics_spec knobs, verbatim
    std::vector<trace_event> events;

    // Parses and structurally validates `path`. Throws anole::error with
    // the offending line number on any malformed or out-of-order input.
    [[nodiscard]] static trace_log load(const std::string& path);

    // Validates entity ids and footprint shape against the graph the
    // replay will run on. Throws anole::error on any mismatch.
    void check_against(std::size_t graph_n, std::size_t graph_slots,
                       std::size_t graph_edges) const;
};

// Streams events to a JSONL trace file as the schedule is realized. The
// file is flushed and closed on destruction (engine teardown), so the
// trace is complete as soon as the driver returns.
class trace_writer {
public:
    trace_writer(const std::string& path, std::size_t n, std::size_t slots,
                 std::size_t edges, std::uint64_t seed, const std::string& spec_json);

    void record(std::uint64_t round, trace_kind kind, std::uint64_t a = 0,
                std::uint64_t b = 0);

private:
    std::ofstream out_;
};

}  // namespace anole
