// anole — multi-process campaign fleet: worker leasing + ledger merge.
//
// One campaign, many worker processes, one shared filesystem. Workers
// coordinate through files alone (no sockets, no daemon), so a fleet is
// just N invocations of `bench_campaign --worker <id>` against the same
// spec, followed by one `bench_campaign --merge`:
//
//   * Work is leased per TOPOLOGY GROUP (the consecutive expansion-order
//     block of units sharing one (family, n, topology_seed) — the same
//     granularity run_campaign batches and flushes at). A lease is a
//     JSON file under <ledger>.fleet/ created with create-exclusive
//     semantics: exactly one claimant wins a fresh lease. Leases carry
//     an owner id, a heartbeat timestamp and a TTL; a lease whose
//     heartbeat is older than its TTL belonged to a crashed worker and
//     is reclaimed (atomic rename + read-back confirmation).
//   * Each worker appends records to its OWN JSONL shard,
//     <ledger>.fleet/shard-<id>.jsonl — no two processes ever append to
//     one file, so shards are never torn by interleaving.
//   * merge_fleet folds the main ledger plus every shard into one
//     canonical ledger: lines keep their raw bytes (records are never
//     re-serialized — float round-trips would perturb them), keyed by
//     the record's "key" field, later sources winning duplicates, output
//     in campaign expansion order. The result is byte-identical to what
//     a single-worker run_campaign would have written (test-enforced)
//     and resumes like any ordinary ledger.
//
// Residual races (two workers executing one unit around a lease
// expiry) cost duplicate work, never correctness: records are
// deterministic functions of their unit, and the merge dedups them.
// docs/FLEET.md documents the protocol end to end.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/campaign.h"

namespace anole {

// --- paths ------------------------------------------------------------------

// The on-disk layout of one fleet, rooted next to the campaign ledger.
struct fleet_paths {
    std::string ledger;  // the campaign's spec.output

    // <ledger>.fleet — shards and leases live here.
    [[nodiscard]] std::string dir() const { return ledger + ".fleet"; }
    [[nodiscard]] std::string shard(const std::string& worker_id) const {
        return dir() + "/shard-" + worker_id + ".jsonl";
    }
    [[nodiscard]] std::string lease(std::size_t group_index) const {
        return dir() + "/lease-" + std::to_string(group_index) + ".json";
    }
    // Every shard-*.jsonl currently in dir(), sorted by filename so merge
    // order (and therefore duplicate resolution) is deterministic.
    [[nodiscard]] std::vector<std::string> shard_files() const;
};

// Sanitizes an operator-supplied worker id to [A-Za-z0-9._-] (it names
// files); empty input falls back to fleet_worker_id().
[[nodiscard]] std::string sanitize_worker_id(const std::string& id);

// Default worker id: "w<pid>" — unique per process on one host.
[[nodiscard]] std::string fleet_worker_id();

// --- leases -----------------------------------------------------------------

// Wall-clock seconds since the Unix epoch (leases must compare across
// machines, so steady_clock is no use here).
[[nodiscard]] std::uint64_t fleet_now();

struct lease_info {
    std::string owner;
    std::uint64_t heartbeat = 0;  // unix seconds of the last touch
    std::uint64_t ttl = 60;       // seconds of silence before reclaimable
    std::size_t group = 0;        // topology-group index (diagnostics)

    [[nodiscard]] bool expired(std::uint64_t now) const {
        return now > heartbeat + ttl;
    }
    [[nodiscard]] std::string to_json() const;
};

// The lease at `path`; nullopt when missing or torn (a torn lease reads
// as expired-equivalent: reclaimable).
[[nodiscard]] std::optional<lease_info> read_lease(const std::string& path);

// One attempt to own the lease at `path`:
//   * no file        → create-exclusive write wins it;
//   * ours already   → heartbeat refreshed, still ours;
//   * live, foreign  → false;
//   * expired / torn → takeover: write-temp + atomic rename, then read
//     back — only the claimant whose bytes landed owns it (*reclaimed
//     set true for the winner).
[[nodiscard]] bool try_acquire_lease(const std::string& path, const lease_info& mine,
                                     bool* reclaimed = nullptr);

// Refreshes the heartbeat of a lease we own (temp + atomic rename).
void renew_lease(const std::string& path, const lease_info& mine);

// Deletes the lease iff it is still owned by `owner`.
void release_lease(const std::string& path, const std::string& owner);

// --- worker -----------------------------------------------------------------

struct fleet_options {
    std::string worker_id;    // empty = fleet_worker_id()
    std::uint64_t lease_ttl = 60;  // seconds
};

struct fleet_report {
    std::string worker_id;
    std::string shard;             // this worker's shard path
    std::size_t groups_claimed = 0;
    std::size_t leases_reclaimed = 0;  // expired leases taken over
    std::size_t executed = 0;      // units this worker ran
    std::size_t failed = 0;        // executed units with ok == false
    std::size_t skipped = 0;       // units found recorded by someone else
    std::size_t left_leased = 0;   // pending groups held live by others at exit
};

// Runs one fleet worker to completion: repeatedly scans the ledger and
// every shard for finished unit keys, claims an unfinished topology
// group, runs it through run_campaign_units, appends the records to this
// worker's shard (flushed per group) and releases the lease. Exits when
// a full pass claims nothing — every remaining pending group is then
// held by a live peer, which will finish it. spec.output must be set.
fleet_report run_fleet_worker(const campaign_spec& spec, scenario_runner& runner,
                              const fleet_options& opt = {});

// --- merge ------------------------------------------------------------------

struct merge_report {
    std::size_t shards = 0;      // shard files folded in
    std::size_t records = 0;     // distinct record lines kept
    std::size_t duplicates = 0;  // extra lines dropped by later-wins
    std::size_t foreign = 0;     // records outside this spec's expansion
    std::size_t covered = 0;     // expansion units with a record
    std::size_t total_units = 0; // expansion size
};

// Folds <ledger> + every shard into the canonical ledger (temp + atomic
// rename over spec.output): schema header, then covered units' raw lines
// in expansion order, then foreign lines sorted by key. Sources are read
// ledger-first then shards sorted by filename; the last occurrence of a
// key wins. Throws anole::error on a source with an incompatible schema
// header. Idempotent: merging a merged fleet changes nothing.
merge_report merge_fleet(const campaign_spec& spec);

}  // namespace anole
