#include "sim/fleet.h"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>

#include "util/json.h"

namespace anole {

// --- paths ------------------------------------------------------------------

std::vector<std::string> fleet_paths::shard_files() const {
    std::vector<std::string> files;
    std::error_code ec;
    for (const auto& entry : std::filesystem::directory_iterator(dir(), ec)) {
        if (!entry.is_regular_file()) continue;
        const std::string name = entry.path().filename().string();
        if (name.rfind("shard-", 0) == 0 && name.size() > 6 &&
            name.compare(name.size() - 6, 6, ".jsonl") == 0) {
            files.push_back(entry.path().string());
        }
    }
    std::sort(files.begin(), files.end());
    return files;
}

std::string sanitize_worker_id(const std::string& id) {
    if (id.empty()) return fleet_worker_id();
    std::string out = id;
    for (char& c : out) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
        if (!ok) c = '_';
    }
    return out;
}

std::string fleet_worker_id() {
    // Built with += rather than operator+ to sidestep GCC 12's spurious
    // -Wrestrict on (const char* + string&&).
    std::string id = "w";
    id += std::to_string(static_cast<long>(::getpid()));
    return id;
}

// --- leases -----------------------------------------------------------------

std::uint64_t fleet_now() {
    return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::seconds>(
                                          std::chrono::system_clock::now()
                                              .time_since_epoch())
                                          .count());
}

std::string lease_info::to_json() const {
    return "{\"owner\":\"" + json_escape(owner) +
           "\",\"heartbeat\":" + std::to_string(heartbeat) +
           ",\"ttl\":" + std::to_string(ttl) +
           ",\"group\":" + std::to_string(group) + "}";
}

std::optional<lease_info> read_lease(const std::string& path) {
    std::ifstream in(path);
    if (!in) return std::nullopt;
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    try {
        const json_value v = json_parse(text);
        lease_info l;
        l.owner = v.at("owner").as_string();
        l.heartbeat = v.at("heartbeat").as_uint();
        l.ttl = v.at("ttl").as_uint();
        l.group = static_cast<std::size_t>(v.at("group").as_uint());
        return l;
    } catch (const error&) {
        return std::nullopt;  // torn lease: treated as reclaimable
    }
}

namespace {

// Atomic whole-file replace; the temp name carries the writer's id so
// racing claimants never clobber each other's staging file.
void write_lease_atomic(const std::string& path, const lease_info& l) {
    const std::string tmp = path + ".tmp-" + sanitize_worker_id(l.owner);
    {
        std::ofstream out(tmp, std::ios::trunc);
        require(static_cast<bool>(out), "fleet: cannot open " + tmp);
        out << l.to_json() << "\n";
        out.flush();
        require(static_cast<bool>(out), "fleet: write failed for " + tmp);
    }
    require(std::rename(tmp.c_str(), path.c_str()) == 0,
            "fleet: cannot replace lease " + path);
}

}  // namespace

bool try_acquire_lease(const std::string& path, const lease_info& mine,
                       bool* reclaimed) {
    if (reclaimed != nullptr) *reclaimed = false;
    // Fresh claim: stage the full lease body in a private file, then
    // link() it to the lease path — atomic create-exclusive WITH
    // complete content, so a racing loser can never observe the
    // winner's lease half-written (and mistake it for a torn one).
    const std::string stage = path + ".claim-" + sanitize_worker_id(mine.owner);
    {
        std::ofstream out(stage, std::ios::trunc);
        require(static_cast<bool>(out), "fleet: cannot open " + stage);
        out << mine.to_json() << "\n";
        out.flush();
        require(static_cast<bool>(out), "fleet: write failed for " + stage);
    }
    if (::link(stage.c_str(), path.c_str()) == 0) {
        std::remove(stage.c_str());
        return true;
    }
    std::remove(stage.c_str());
    require(errno == EEXIST, "fleet: cannot create lease " + path);

    const std::optional<lease_info> cur = read_lease(path);
    if (cur.has_value() && cur->owner == mine.owner) {
        write_lease_atomic(path, mine);  // refresh our own heartbeat
        return true;
    }
    if (cur.has_value() && !cur->expired(mine.heartbeat)) return false;

    // Expired or torn: take over by atomic rename, then confirm by
    // reading back — if several claimants raced, exactly one set of
    // bytes landed last and only that claimant proceeds.
    write_lease_atomic(path, mine);
    const std::optional<lease_info> after = read_lease(path);
    if (after.has_value() && after->owner == mine.owner) {
        if (reclaimed != nullptr) *reclaimed = true;
        return true;
    }
    return false;
}

void renew_lease(const std::string& path, const lease_info& mine) {
    write_lease_atomic(path, mine);
}

void release_lease(const std::string& path, const std::string& owner) {
    const std::optional<lease_info> cur = read_lease(path);
    if (cur.has_value() && cur->owner == owner) std::remove(path.c_str());
}

// --- worker -----------------------------------------------------------------

namespace {

// Keys of every record in `path` (ledger or shard); empty for missing
// files. Incompatible schema headers throw — a fleet must not silently
// re-run (or silently trust) work recorded by an incompatible build.
void collect_done_keys(const std::string& path, std::set<std::string>& done) {
    for (const campaign_record& rec : load_campaign_ledger(path)) {
        done.insert(rec.unit.key());
    }
}

std::set<std::string> scan_done(const std::string& ledger, const fleet_paths& paths) {
    std::set<std::string> done;
    collect_done_keys(ledger, done);
    for (const std::string& shard : paths.shard_files()) {
        collect_done_keys(shard, done);
    }
    return done;
}

}  // namespace

fleet_report run_fleet_worker(const campaign_spec& spec, scenario_runner& runner,
                              const fleet_options& opt) {
    spec.validate();
    require(!spec.output.empty(), "fleet: spec.output must name the ledger");
    check_campaign_ledger_schema(spec.output);

    const std::vector<campaign_unit> units = expand(spec);
    const std::size_t group = spec.variants.size() *
                              std::max<std::size_t>(spec.dynamics.size(), 1) *
                              spec.seeds;
    const std::size_t groups = (units.size() + group - 1) / group;

    const fleet_paths paths{spec.output};
    std::filesystem::create_directories(paths.dir());

    fleet_report report;
    report.worker_id = sanitize_worker_id(opt.worker_id);
    report.shard = paths.shard(report.worker_id);

    // Open (or resume) this worker's shard. Same torn-tail discipline as
    // run_campaign: a killed predecessor with our id may have left a
    // partial line.
    bool needs_newline = false;
    bool shard_empty = true;
    {
        std::ifstream probe(report.shard, std::ios::binary | std::ios::ate);
        if (probe && probe.tellg() > 0) {
            shard_empty = false;
            probe.seekg(-1, std::ios::end);
            char last = '\n';
            probe.get(last);
            needs_newline = last != '\n';
        }
    }
    if (!shard_empty) check_campaign_ledger_schema(report.shard);
    std::ofstream shard(report.shard, std::ios::app);
    require(shard.good(), "fleet: cannot open shard " + report.shard);
    if (needs_newline) shard << "\n";
    if (shard_empty) shard << campaign_schema_header_line() << "\n";
    shard.flush();

    // Multi-pass: claim whatever is free, re-scan, repeat. A pass that
    // claims nothing means every pending group is held by a live peer —
    // that peer finishes it, so this worker is done.
    for (;;) {
        std::size_t claimed_this_pass = 0;
        std::size_t blocked_this_pass = 0;
        std::set<std::string> done = scan_done(spec.output, paths);

        for (std::size_t g = 0; g < groups; ++g) {
            const std::size_t lo = g * group;
            const std::size_t hi = std::min(lo + group, units.size());
            std::vector<campaign_unit> pending;
            for (std::size_t i = lo; i < hi; ++i) {
                if (!done.count(units[i].key())) pending.push_back(units[i]);
            }
            if (pending.empty()) continue;

            const std::string lease_path = paths.lease(g);
            lease_info mine{report.worker_id, fleet_now(), opt.lease_ttl, g};
            bool reclaimed = false;
            if (!try_acquire_lease(lease_path, mine, &reclaimed)) {
                ++blocked_this_pass;
                continue;
            }
            if (reclaimed) ++report.leases_reclaimed;
            ++report.groups_claimed;
            ++claimed_this_pass;

            // The claim may have raced a peer that just finished these
            // units (lease released, records landed between our scan and
            // our claim): re-filter against a fresh scan before running.
            std::set<std::string> fresh = scan_done(spec.output, paths);
            std::vector<campaign_unit> todo;
            for (const campaign_unit& u : pending) {
                if (!fresh.count(u.key())) todo.push_back(u);
            }
            if (!todo.empty()) {
                const std::vector<campaign_record> recs =
                    run_campaign_units(todo, runner);
                for (const campaign_record& rec : recs) {
                    ++report.executed;
                    if (!rec.ok) ++report.failed;
                    shard << rec.to_json() << "\n";
                }
                shard.flush();
                require(shard.good(), "fleet: write failed for " + report.shard);
            }
            release_lease(lease_path, report.worker_id);
        }

        if (claimed_this_pass == 0) {
            report.left_leased = blocked_this_pass;
            break;
        }
    }

    // Units someone (possibly a previous run) finished that we never ran.
    const std::set<std::string> done = scan_done(spec.output, paths);
    std::size_t recorded = 0;
    for (const campaign_unit& u : units) {
        if (done.count(u.key())) ++recorded;
    }
    report.skipped = recorded > report.executed ? recorded - report.executed : 0;
    return report;
}

// --- merge ------------------------------------------------------------------

namespace {

// The "key" field of one raw record line; nullopt for headers, torn
// lines and non-record JSON.
std::optional<std::string> line_key(const std::string& line) {
    try {
        const json_value v = json_parse(line);
        if (!v.is_object() || !v.contains("key")) return std::nullopt;
        return v.at("key").as_string();
    } catch (const error&) {
        return std::nullopt;
    }
}

}  // namespace

merge_report merge_fleet(const campaign_spec& spec) {
    spec.validate();
    require(!spec.output.empty(), "fleet merge: spec.output must name the ledger");

    const std::vector<campaign_unit> units = expand(spec);
    std::map<std::string, std::size_t> unit_index;
    for (std::size_t i = 0; i < units.size(); ++i) {
        unit_index.emplace(units[i].key(), i);
    }

    const fleet_paths paths{spec.output};
    std::vector<std::string> sources;
    {
        std::ifstream probe(spec.output);
        if (probe) sources.push_back(spec.output);
    }
    std::vector<std::string> shards = paths.shard_files();
    sources.insert(sources.end(), shards.begin(), shards.end());

    merge_report report;
    report.shards = shards.size();
    report.total_units = units.size();

    // Raw line bytes per key — records are NEVER re-serialized (default
    // double formatting would perturb them); later sources win.
    std::map<std::string, std::string> covered;   // expansion keys
    std::map<std::string, std::string> foreign;   // everything else
    for (const std::string& src : sources) {
        check_campaign_ledger_schema(src);
        std::ifstream in(src);
        require(static_cast<bool>(in), "fleet merge: cannot read " + src);
        std::string line;
        while (std::getline(in, line)) {
            if (line.empty()) continue;
            if (parse_campaign_schema_header(line).has_value()) continue;
            const std::optional<std::string> key = line_key(line);
            if (!key.has_value()) continue;  // torn tail: that unit re-runs
            auto& bucket = unit_index.count(*key) ? covered : foreign;
            auto [it, inserted] = bucket.insert_or_assign(*key, line);
            (void)it;
            if (!inserted) ++report.duplicates;
        }
    }
    report.covered = covered.size();
    report.foreign = foreign.size();
    report.records = covered.size() + foreign.size();

    // Canonical rewrite: header, covered lines in expansion order,
    // foreign lines sorted by key (std::map iteration), atomic rename.
    const std::string tmp = spec.output + ".merge-tmp";
    {
        std::ofstream out(tmp, std::ios::trunc);
        require(static_cast<bool>(out), "fleet merge: cannot open " + tmp);
        out << campaign_schema_header_line() << "\n";
        for (const campaign_unit& u : units) {
            auto it = covered.find(u.key());
            if (it != covered.end()) out << it->second << "\n";
        }
        for (const auto& [key, line] : foreign) out << line << "\n";
        out.flush();
        require(static_cast<bool>(out), "fleet merge: write failed for " + tmp);
    }
    require(std::rename(tmp.c_str(), spec.output.c_str()) == 0,
            "fleet merge: cannot replace " + spec.output);
    return report;
}

}  // namespace anole
