// anole — CONGEST per-link bit budgets.
//
// The CONGEST model allows O(log n) bits per link per direction per round
// (paper §2). The engine enforces/accounts this according to a policy:
//
//   * count_only — no enforcement; bits are tallied, congest_rounds equals
//     rounds. Use for protocols proven to fit the budget, when the tally
//     itself is the check (tests assert max message size <= budget).
//   * strict — throw anole::error if any message exceeds the budget. Used
//     by tests to certify a protocol is CONGEST-conformant.
//   * fragment — oversized messages are charged ⌈bits/B⌉ "virtual" rounds;
//     the network, being synchronous, advances at the slowest link's pace,
//     so the round's congest cost is the max fragmentation over its
//     messages. This mirrors the paper's own accounting of the bit-by-bit
//     potential transmissions in Algorithm 7 ("Each iteration i takes
//     i·log(2k^{1+ε}) rounds of communication because ... potentials are
//     transmitted bit by bit").
#pragma once

#include <cstdint>

#include "util/bit_codec.h"
#include "util/error.h"

namespace anole {

enum class budget_mode { count_only, strict, fragment };

struct congest_budget {
    budget_mode mode = budget_mode::count_only;
    // Bits per link per direction per round; 0 means "auto" =
    // bits_factor * ceil(log2 n) chosen by the engine at construction.
    std::uint64_t bits_per_round = 0;
    std::uint64_t bits_factor = 4;  // the O() constant for auto budgets

    [[nodiscard]] static congest_budget unlimited() noexcept { return {}; }
    [[nodiscard]] static congest_budget strict_log(std::uint64_t factor = 4) noexcept {
        congest_budget b;
        b.mode = budget_mode::strict;
        b.bits_factor = factor;
        return b;
    }
    [[nodiscard]] static congest_budget fragmenting(std::uint64_t factor = 4) noexcept {
        congest_budget b;
        b.mode = budget_mode::fragment;
        b.bits_factor = factor;
        return b;
    }

    // Resolved per-round bit budget for an n-node network.
    [[nodiscard]] std::uint64_t resolve(std::size_t n) const noexcept {
        if (bits_per_round != 0) return bits_per_round;
        return bits_factor * bits_for(n > 1 ? n - 1 : 1);
    }
};

}  // namespace anole
