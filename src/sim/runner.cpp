#include "sim/runner.h"

#include <cmath>
#include <set>
#include <utility>

#include "sim/engine.h"
#include "sim/oracle.h"

namespace anole {

// --- parameter auto-fill -----------------------------------------------------

irrevocable_params scenario_runner::fill(irrevocable_params p,
                                         const graph_profile& prof) {
    if (p.n == 0) p.n = prof.n;
    if (p.tmix == 0) p.tmix = std::max<std::uint64_t>(prof.mixing_time, 1);
    if (p.phi == 0) p.phi = prof.conductance;
    return p;
}

gilbert_params scenario_runner::fill(gilbert_params p, const graph_profile& prof) {
    if (p.n == 0) p.n = prof.n;
    if (p.tmix == 0) p.tmix = std::max<std::uint64_t>(prof.mixing_time, 1);
    return p;
}

revocable_params scenario_runner::fill(const revocable_cfg& c,
                                       const graph_profile& prof) {
    revocable_params p = c.params;
    if (c.auto_isoperimetric && !p.isoperimetric) p.isoperimetric = prof.isoperimetric;
    return p;
}

// --- cautious-broadcast driver ----------------------------------------------

namespace {

cb_result run_cautious(const graph& g, const graph_profile& prof,
                       const cautious_cfg& c, std::uint64_t seed,
                       const dynamics_spec& dynamics) {
    cb_config cfg = c.config;
    if (c.cap_x > 0) {
        const double cap = c.cap_x * static_cast<double>(prof.mixing_time) *
                           prof.conductance;
        cfg.cap = std::max<std::uint64_t>(2, static_cast<std::uint64_t>(std::ceil(cap)));
    }
    std::uint64_t rounds = c.rounds;
    if (rounds == 0) {
        rounds = std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(
                   static_cast<double>(prof.mixing_time) *
                   std::log2(static_cast<double>(std::max<std::size_t>(prof.n, 2)))));
    }
    engine<cautious_broadcast_node> eng(
        g, seed, c.budget.value_or(congest_budget::strict_log(16)));
    if (dynamics.enabled()) eng.set_dynamics(dynamics, seed);
    eng.spawn([&](std::size_t u) {
        return cautious_broadcast_node(g.degree(static_cast<node_id>(u)), u == 0,
                                       c.source_id, cfg, rounds);
    });
    const auto probe = [&eng](std::size_t u) {
        node_status st;
        st.decided = eng.node(u).exec().in_tree();
        return st;  // broadcast elects nobody: leader stays false
    };
    eng.set_status_probe(probe);
    eng.run_until_halted(rounds + 2);

    cb_result out;
    out.rounds = eng.round();
    out.totals = eng.metrics().total();
    for (std::size_t u = 0; u < g.num_nodes(); ++u) {
        if (!eng.node_present(u) || eng.node_crashed(u)) continue;
        if (eng.node(u).exec().in_tree()) ++out.territory;
    }
    // The source is always in its own tree; success means it recruited
    // someone (trivially true on a 1-node graph).
    out.success = out.territory >= 2 || g.num_nodes() == 1;
    out.oracle = run_oracle(eng, probe, {.round_cap = rounds + 2});
    return out;
}

}  // namespace

// --- one repetition ----------------------------------------------------------

run_record scenario_runner::run_once(const graph& g, const graph_profile& prof,
                                     const algo_config& cfg, std::uint64_t seed,
                                     const dynamics_spec& dynamics) {
    run_record rec;
    rec.seed = seed;
    try {
        if (const auto* f = std::get_if<flood_cfg>(&cfg)) {
            const std::uint64_t d = f->diameter != 0 ? f->diameter : prof.diameter;
            rec.detail = run_flood_max(
                g, d, seed, f->budget.value_or(congest_budget::strict_log(16)),
                dynamics);
        } else if (const auto* gb = std::get_if<gilbert_cfg>(&cfg)) {
            rec.detail = run_gilbert(
                g, fill(gb->params, prof), seed,
                gb->budget.value_or(congest_budget::fragmenting(16)), dynamics);
        } else if (const auto* ir = std::get_if<irrevocable_cfg>(&cfg)) {
            rec.detail = run_irrevocable(
                g, fill(ir->params, prof), seed,
                ir->budget.value_or(congest_budget::strict_log(16)), dynamics);
        } else if (const auto* rv = std::get_if<revocable_cfg>(&cfg)) {
            rec.detail = run_revocable(
                g, fill(*rv, prof), seed, rv->max_rounds,
                rv->budget.value_or(congest_budget::fragmenting(16)), dynamics);
        } else {
            rec.detail = run_cautious(g, prof, std::get<cautious_cfg>(cfg), seed,
                                      dynamics);
        }
        rec.ok = true;
    } catch (const std::exception& e) {
        rec.ok = false;
        rec.error = e.what();
    }
    return rec;
}

// --- topology + profile caches ----------------------------------------------

const graph& scenario_runner::materialize(const topology_spec& spec) {
    if (const auto* borrowed = std::get_if<const graph*>(&spec)) {
        require(*borrowed != nullptr, "scenario: null topology");
        return **borrowed;
    }
    const auto& fs = std::get<family_spec>(spec);
    const auto key = std::make_tuple(fs.family, fs.n, fs.seed);
    {
        std::unique_lock<std::mutex> lk(mu_);
        auto it = graphs_.find(key);
        if (it != graphs_.end()) return *it->second;
    }
    // Generate outside the lock (deterministic, so a racing duplicate is
    // identical and the loser is simply discarded).
    auto fresh = std::make_unique<graph>(make_family(fs.family, fs.n, fs.seed));
    std::unique_lock<std::mutex> lk(mu_);
    auto [it, inserted] = graphs_.emplace(key, std::move(fresh));
    if (inserted) {
        profile_keys_.emplace(it->second.get(),
                              std::string(to_string(fs.family)) + "/" +
                                  std::to_string(fs.n) + "/s" +
                                  std::to_string(fs.seed) + "/v" +
                                  std::to_string(profile_cache_version));
    }
    return *it->second;
}

const graph_profile& scenario_runner::profile_for(const graph& g) {
    std::string key;
    profile_cache* disk = nullptr;
    {
        std::unique_lock<std::mutex> lk(mu_);
        auto it = profiles_.find(&g);
        if (it != profiles_.end()) return *it->second;
        auto kit = profile_keys_.find(&g);
        if (kit != profile_keys_.end()) key = kit->second;
        disk = disk_cache_.get();
    }
    if (disk != nullptr && !key.empty()) {
        if (auto hit = disk->lookup(key)) {
            std::unique_lock<std::mutex> lk(mu_);
            auto it =
                profiles_.emplace(&g, std::make_unique<graph_profile>(*hit)).first;
            return *it->second;
        }
    }
    profile_options po;
    po.seed = 1;
    po.pool = &pool_;
    auto fresh = std::make_unique<graph_profile>(profile(g, po));
    bool inserted = false;
    const graph_profile* out = nullptr;
    {
        std::unique_lock<std::mutex> lk(mu_);
        auto [it, ins] = profiles_.emplace(&g, std::move(fresh));
        inserted = ins;
        if (ins) ++fresh_profiles_;
        out = it->second.get();
    }
    // Persist outside mu_ (the cache has its own lock; keep file IO out of
    // the hot map lock). Racing losers were discarded above — not stored.
    if (inserted && disk != nullptr && !key.empty()) {
        disk->store(key, *out);
    }
    return *out;
}

void scenario_runner::set_profile_cache(const std::string& path) {
    std::unique_lock<std::mutex> lk(mu_);
    disk_cache_ = std::make_unique<profile_cache>(path);
}

std::size_t scenario_runner::fresh_profiles() const {
    std::unique_lock<std::mutex> lk(mu_);
    return fresh_profiles_;
}

std::size_t scenario_runner::cached_graphs() const {
    std::unique_lock<std::mutex> lk(mu_);
    return graphs_.size();
}

std::size_t scenario_runner::cached_profiles() const {
    std::unique_lock<std::mutex> lk(mu_);
    return profiles_.size();
}

// --- scenario execution ------------------------------------------------------

scenario_result scenario_runner::prepare(const scenario& s) {
    scenario_result out;
    out.kind = kind_of(s.algo);
    out.topology = &materialize(s.topology);
    out.profile = profile_for(*out.topology);
    out.label = s.label.empty()
                    ? out.topology->name() + "/" + to_string(out.kind)
                    : s.label;
    out.runs.resize(std::max<std::size_t>(s.repetitions, 1));
    return out;
}

scenario_result scenario_runner::run(const scenario& s) {
    scenario_result out = prepare(s);
    const graph& g = *out.topology;
    const std::size_t node_jobs = node_jobs_for(s);
    pool_.parallel_for(out.runs.size(), [&](std::size_t r) {
        // Engines built inside the drivers inherit the ambient
        // parallelism; rounds shard over this same pool (helping waits
        // make the nesting deadlock-free).
        scoped_engine_parallelism par(engine_parallelism{&pool_, node_jobs});
        out.runs[r] = run_once(g, out.profile, s.algo, s.seed + r, s.dynamics);
    });
    return out;
}

std::vector<scenario_result> scenario_runner::run_batch(
    const std::vector<scenario>& batch) {
    std::vector<scenario_result> results(batch.size());

    // Stage 1: materialize every topology (cheap, sequential, dedups via
    // the cache), then profile the distinct ones in parallel — spectral +
    // mixing estimation dominates sweep start-up cost.
    std::vector<const graph*> order;
    std::set<const graph*> distinct;
    for (const auto& s : batch) {
        const graph* g = &materialize(s.topology);
        if (distinct.insert(g).second) order.push_back(g);
    }
    pool_.parallel_for(order.size(),
                       [&](std::size_t i) { (void)profile_for(*order[i]); });

    // Stage 2: every (scenario, repetition) pair is one pool job.
    for (std::size_t i = 0; i < batch.size(); ++i) results[i] = prepare(batch[i]);
    for (std::size_t i = 0; i < batch.size(); ++i) {
        const std::size_t node_jobs = node_jobs_for(batch[i]);
        for (std::size_t r = 0; r < results[i].runs.size(); ++r) {
            pool_.submit([this, &batch, &results, node_jobs, i, r] {
                scoped_engine_parallelism par(
                    engine_parallelism{&pool_, node_jobs});
                results[i].runs[r] = run_once(*results[i].topology, results[i].profile,
                                              batch[i].algo, batch[i].seed + r,
                                              batch[i].dynamics);
            });
        }
    }
    pool_.wait();
    return results;
}

}  // namespace anole
