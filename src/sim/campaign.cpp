#include "sim/campaign.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "util/json.h"
#include "util/stats.h"

namespace anole {

// --- ledger schema ----------------------------------------------------------

std::string campaign_schema_header_line() {
    return "{\"schema\":\"anole-campaign\",\"version\":" +
           std::to_string(campaign_schema_version) + "}";
}

std::optional<int> parse_campaign_schema_header(const std::string& line) {
    try {
        const json_value v = json_parse(line);
        if (!v.is_object() || !v.contains("schema")) return std::nullopt;
        if (v.at("schema").as_string() != "anole-campaign") return std::nullopt;
        return static_cast<int>(v.at("version").as_uint());
    } catch (const error&) {
        return std::nullopt;
    }
}

void check_campaign_ledger_schema(const std::string& path) {
    std::ifstream in(path);
    if (!in) return;  // missing file: nothing to reject
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty()) continue;
        const auto version = parse_campaign_schema_header(line);
        if (version.has_value() && *version != campaign_schema_version) {
            throw error("campaign ledger '" + path + "': schema version " +
                        std::to_string(*version) + " is incompatible (this build "
                        "reads version " + std::to_string(campaign_schema_version) +
                        ")");
        }
        return;  // only the first non-empty line can be a header
    }
}

// --- declaration ------------------------------------------------------------

void campaign_spec::validate() const {
    require(!families.empty(), "campaign: need at least one family");
    require(!sizes.empty(), "campaign: need at least one size");
    require(!variants.empty(), "campaign: need at least one variant");
    require(seeds >= 1, "campaign: seeds >= 1");
    std::set<std::string> names;
    for (const auto& [name, d] : dynamics) {
        require(!name.empty(), "campaign: dynamics axis entries need names");
        require(name.find('/') == std::string::npos,
                "campaign: dynamics name must not contain '/' (it keys records)");
        require(names.insert(name).second,
                "campaign: duplicate dynamics name '" + name + "'");
        d.validate();
    }
}

std::optional<algo_kind> variant_from_string(std::string_view name) {
    for (const algo_kind k :
         {algo_kind::flood_max, algo_kind::gilbert, algo_kind::irrevocable,
          algo_kind::revocable, algo_kind::cautious_broadcast}) {
        if (name == to_string(k)) return k;
    }
    if (name == "flood") return algo_kind::flood_max;
    if (name == "cautious") return algo_kind::cautious_broadcast;
    return std::nullopt;
}

algo_config campaign_default_config(algo_kind k, std::size_t n, std::size_t edges) {
    switch (k) {
        case algo_kind::flood_max: return flood_cfg{};
        case algo_kind::gilbert: return gilbert_cfg{};
        case algo_kind::irrevocable: return irrevocable_cfg{};
        case algo_kind::revocable: {
            revocable_cfg rc;
            // Campaigns sweep cells the dedicated revocable bench never
            // attempts (n >= 64, low-Φ zoo families), so the policy is
            // scaled harder than bench_revocable's (0.02, 0.12) and blind
            // on purpose: informed mode's r(k) carries a 1/i(G)² factor
            // that is astronomical on barbell/dumbbell/caveman, while
            // blind r(k) depends on k alone.
            rc.params = revocable_params::scaled(std::nullopt, 0.008, 0.05);
            rc.auto_isoperimetric = false;
            // Certification needs k ≳ √n; past k = 16 each estimate level
            // costs ~64x the previous one, so the ladder is capped there
            // and cells with n ≫ 256 report failure instead of stalling.
            rc.params.k_cap = 16;
            // Hard per-unit budget. Diffusion exchanges ~2m messages per
            // round, so bounding rounds·m bounds a hopeless cell's actual
            // work; the estimate is dense (n²/8) when the true edge count
            // is unknown.
            const std::size_t m = edges > 0 ? edges : std::max<std::size_t>(
                                                          n * n / 8, std::size_t{1});
            rc.max_rounds = std::clamp<std::uint64_t>(400'000'000 / m, 20'000,
                                                      2'000'000);
            return rc;
        }
        case algo_kind::cautious_broadcast: {
            cautious_cfg cc;
            cc.cap_x = 1.0;
            return cc;
        }
    }
    throw error("campaign_default_config: unknown variant");
}

campaign_spec campaign_spec_from_json(const std::string& text) {
    const json_value v = json_parse(text);
    campaign_spec spec;
    for (const auto& [key, val] : v.as_object()) {
        if (key == "families") {
            for (const auto& f : val.as_array()) {
                const auto fam = family_from_string(f.as_string());
                require(fam.has_value(),
                        "campaign spec: unknown family '" + f.as_string() + "'");
                spec.families.push_back(*fam);
            }
        } else if (key == "sizes") {
            for (const auto& s : val.as_array()) {
                spec.sizes.push_back(static_cast<std::size_t>(s.as_uint()));
            }
        } else if (key == "variants") {
            for (const auto& a : val.as_array()) {
                const auto kind = variant_from_string(a.as_string());
                require(kind.has_value(),
                        "campaign spec: unknown variant '" + a.as_string() + "'");
                spec.variants.push_back(*kind);
            }
        } else if (key == "seeds") {
            spec.seeds = static_cast<std::size_t>(val.as_uint());
        } else if (key == "base_seed") {
            spec.base_seed = val.as_uint();
        } else if (key == "topology_seed") {
            spec.topology_seed = val.as_uint();
        } else if (key == "dynamics") {
            for (const auto& d : val.as_array()) {
                if (d.is_string()) {
                    const auto preset = dynamics_preset(d.as_string());
                    require(preset.has_value(), "campaign spec: unknown dynamics "
                                                "preset '" + d.as_string() + "'");
                    spec.dynamics.emplace_back(d.as_string(), *preset);
                } else {
                    spec.dynamics.push_back(dynamics_from_json(d));
                }
            }
        } else if (key == "output") {
            spec.output = val.as_string();
        } else {
            throw error("campaign spec: unknown key '" + key + "'");
        }
    }
    spec.validate();
    return spec;
}

// --- expansion --------------------------------------------------------------

std::string campaign_unit::key() const {
    std::string k = std::string(to_string(family)) + "/" + std::to_string(n) + "/t" +
                    std::to_string(topology_seed) + "/" + to_string(variant) + "/" +
                    std::to_string(seed);
    if (!dynamics_name.empty()) k += "/" + dynamics_name;
    return k;
}

std::vector<campaign_unit> expand(const campaign_spec& spec) {
    spec.validate();
    // No dynamics axis = one static pass with the historical (suffix-free)
    // unit keys.
    std::vector<std::pair<std::string, dynamics_spec>> dyn = spec.dynamics;
    if (dyn.empty()) dyn.emplace_back("", dynamics_spec{});
    std::vector<campaign_unit> units;
    units.reserve(spec.families.size() * spec.sizes.size() * spec.variants.size() *
                  dyn.size() * spec.seeds);
    for (const graph_family f : spec.families) {
        for (const std::size_t n : spec.sizes) {
            for (const algo_kind v : spec.variants) {
                for (const auto& [dname, dspec] : dyn) {
                    for (std::size_t r = 0; r < spec.seeds; ++r) {
                        units.push_back({f, n, spec.topology_seed, v,
                                         spec.base_seed + r, dname, dspec});
                    }
                }
            }
        }
    }
    return units;
}

// --- records ----------------------------------------------------------------

std::string campaign_record::to_json() const {
    std::ostringstream os;
    os << "{\"key\":\"" << json_escape(unit.key()) << "\""
       << ",\"family\":\"" << to_string(unit.family) << "\""
       << ",\"n\":" << unit.n << ",\"topology_seed\":" << unit.topology_seed
       << ",\"variant\":\"" << to_string(unit.variant) << "\"";
    // Written only on dynamics-axis campaigns; static-only records keep
    // the historical schema byte-for-byte.
    if (!unit.dynamics_name.empty()) {
        os << ",\"dynamics\":\"" << json_escape(unit.dynamics_name) << "\"";
    }
    os << ",\"seed\":" << unit.seed << ",\"nodes\":" << nodes
       << ",\"edges\":" << edges << ",\"phi\":" << phi << ",\"tmix\":" << tmix
       << ",\"ok\":" << (ok ? "true" : "false")
       << ",\"success\":" << (success ? "true" : "false")
       << ",\"leaders\":" << leaders << ",\"rounds\":" << rounds
       << ",\"messages\":" << messages << ",\"bits\":" << bits
       << ",\"congest_rounds\":" << congest_rounds
       << ",\"oracle_ok\":" << (oracle_ok ? "true" : "false");
    if (!oracle_ok) os << ",\"oracle\":\"" << json_escape(oracle_summary) << "\"";
    os << ",\"error\":\"" << json_escape(error) << "\"}";
    return os.str();
}

campaign_record campaign_record::from_json(const std::string& line) {
    const json_value v = json_parse(line);
    campaign_record rec;
    const auto fam = family_from_string(v.at("family").as_string());
    require(fam.has_value(), "campaign record: unknown family");
    const auto var = variant_from_string(v.at("variant").as_string());
    require(var.has_value(), "campaign record: unknown variant");
    rec.unit.family = *fam;
    rec.unit.n = static_cast<std::size_t>(v.at("n").as_uint());
    rec.unit.topology_seed = v.at("topology_seed").as_uint();
    rec.unit.variant = *var;
    // Tolerated missing: pre-dynamics records and static-only campaigns.
    if (v.contains("dynamics")) rec.unit.dynamics_name = v.at("dynamics").as_string();
    rec.unit.seed = v.at("seed").as_uint();
    rec.nodes = static_cast<std::size_t>(v.at("nodes").as_uint());
    rec.edges = static_cast<std::size_t>(v.at("edges").as_uint());
    rec.phi = v.at("phi").as_number();
    rec.tmix = v.at("tmix").as_uint();
    rec.ok = v.at("ok").as_bool();
    rec.success = v.at("success").as_bool();
    rec.leaders = static_cast<std::size_t>(v.at("leaders").as_uint());
    rec.rounds = v.at("rounds").as_uint();
    rec.messages = v.at("messages").as_uint();
    rec.bits = v.at("bits").as_uint();
    rec.congest_rounds = v.at("congest_rounds").as_uint();
    // Tolerated missing: ledgers written before the oracle layer existed.
    if (v.contains("oracle_ok")) rec.oracle_ok = v.at("oracle_ok").as_bool();
    if (v.contains("oracle")) rec.oracle_summary = v.at("oracle").as_string();
    rec.error = v.at("error").as_string();
    return rec;
}

// --- aggregation ------------------------------------------------------------

text_table campaign_table(const std::vector<campaign_record>& records) {
    text_table t({"family", "n", "variant", "runs", "ok", "elected", "safe", "phi",
                  "tmix", "messages", "rounds"});
    // Group by (family, n, variant) preserving first-appearance order.
    std::vector<std::string> order;
    std::map<std::string, std::vector<const campaign_record*>> groups;
    for (const auto& r : records) {
        std::string k = std::string(to_string(r.unit.family)) + "/" +
                        std::to_string(r.unit.n) + "/" +
                        to_string(r.unit.variant);
        if (!r.unit.dynamics_name.empty()) k += "@" + r.unit.dynamics_name;
        auto [it, inserted] = groups.try_emplace(k);
        if (inserted) order.push_back(k);
        it->second.push_back(&r);
    }
    for (const std::string& k : order) {
        const auto& g = groups[k];
        std::size_t ok = 0, elected = 0, safe = 0;
        sample_stats msgs, rounds;
        for (const campaign_record* r : g) {
            if (!r->ok) continue;
            ++ok;
            if (r->leaders == 1) ++elected;
            if (r->oracle_ok) ++safe;
            msgs.add(static_cast<double>(r->messages));
            rounds.add(static_cast<double>(r->rounds));
        }
        const campaign_record& head = *g.front();
        // Dynamics-axis cells render as "variant@model" in the existing
        // column so the table schema never changes shape.
        std::string variant_cell = to_string(head.unit.variant);
        if (!head.unit.dynamics_name.empty()) {
            variant_cell += "@" + head.unit.dynamics_name;
        }
        t.add_row({to_string(head.unit.family), std::to_string(head.unit.n),
                   variant_cell,
                   std::to_string(g.size()),
                   std::to_string(ok) + "/" + std::to_string(g.size()),
                   std::to_string(elected) + "/" + std::to_string(ok),
                   std::to_string(safe) + "/" + std::to_string(ok),
                   fmt_fixed(head.phi, 5), std::to_string(head.tmix),
                   msgs.empty()
                       ? "-"
                       : fmt_count(static_cast<std::uint64_t>(msgs.mean())),
                   rounds.empty()
                       ? "-"
                       : fmt_count(static_cast<std::uint64_t>(rounds.mean()))});
    }
    return t;
}

// --- execution --------------------------------------------------------------

std::vector<campaign_record> load_campaign_ledger(const std::string& path) {
    std::vector<campaign_record> records;
    if (path.empty()) return records;
    check_campaign_ledger_schema(path);
    std::ifstream in(path);
    if (!in) return records;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty()) continue;
        if (parse_campaign_schema_header(line).has_value()) continue;
        try {
            records.push_back(campaign_record::from_json(line));
        } catch (const error&) {
            continue;
        }
    }
    return records;
}

campaign_record make_campaign_record(const campaign_unit& unit,
                                     const scenario_result& res) {
    campaign_record rec;
    rec.unit = unit;
    rec.nodes = res.profile.n;
    rec.edges = res.profile.m;
    rec.phi = res.profile.conductance;
    rec.tmix = res.profile.mixing_time;
    require(res.runs.size() == 1, "campaign: unit scenarios run one repetition");
    const run_record& run = res.runs.front();
    rec.ok = run.ok;
    rec.success = run.success();
    rec.leaders = run.num_leaders();
    rec.rounds = run.rounds();
    rec.messages = run.totals().messages;
    rec.bits = run.totals().bits;
    rec.congest_rounds = run.totals().congest_rounds;
    if (run.ok) {
        const oracle_report orc = run.oracle();
        rec.oracle_ok = orc.pass();
        if (!orc.pass()) rec.oracle_summary = orc.summary();
    }
    rec.error = run.error;
    return rec;
}

std::vector<campaign_record> run_campaign_units(
    const std::vector<campaign_unit>& units, scenario_runner& runner) {
    std::vector<campaign_record> records;
    if (units.empty()) return records;
    for (const campaign_unit& u : units) {
        require(u.family == units.front().family && u.n == units.front().n &&
                    u.topology_seed == units.front().topology_seed,
                "run_campaign_units: units must share one topology group");
    }
    // Materialize the group's topology up front (cached — run_batch reuses
    // the same instance) so per-variant budgets can read the actual edge
    // count.
    const family_spec fs{units.front().family, units.front().n,
                         units.front().topology_seed};
    const graph& topo = runner.materialize(fs);

    std::vector<scenario> batch;
    batch.reserve(units.size());
    for (const campaign_unit& u : units) {
        scenario s;
        s.label = u.key();
        s.topology = family_spec{u.family, u.n, u.topology_seed};
        s.algo = campaign_default_config(u.variant, u.n, topo.num_edges());
        s.seed = u.seed;
        s.repetitions = 1;
        s.dynamics = u.dynamics;
        batch.push_back(std::move(s));
    }
    const std::vector<scenario_result> results = runner.run_batch(batch);
    records.reserve(units.size());
    for (std::size_t i = 0; i < units.size(); ++i) {
        records.push_back(make_campaign_record(units[i], results[i]));
    }
    return records;
}

namespace {

// Records already present in the output file, keyed for resume. Torn or
// foreign lines are skipped — those units simply re-run.
std::map<std::string, campaign_record> load_completed(const std::string& path) {
    std::map<std::string, campaign_record> done;
    for (campaign_record& rec : load_campaign_ledger(path)) {
        std::string k = rec.unit.key();
        done.insert_or_assign(std::move(k), std::move(rec));
    }
    return done;
}

}  // namespace

campaign_report run_campaign(const campaign_spec& spec, scenario_runner& runner) {
    spec.validate();
    const std::vector<campaign_unit> units = expand(spec);
    const std::map<std::string, campaign_record> done = load_completed(spec.output);

    std::ofstream out;
    if (!spec.output.empty()) {
        // A SIGKILL mid-write can leave the file ending in a torn line
        // with no newline; appending straight after it would glue the
        // next record into one unparseable line. Start a fresh line
        // first (blank lines are skipped on load).
        bool needs_newline = false;
        bool is_empty = true;
        {
            std::ifstream probe(spec.output, std::ios::binary | std::ios::ate);
            if (probe && probe.tellg() > 0) {
                is_empty = false;
                probe.seekg(-1, std::ios::end);
                char last = '\n';
                probe.get(last);
                needs_newline = last != '\n';
            }
        }
        out.open(spec.output, std::ios::app);
        require(out.good(), "campaign: cannot open output '" + spec.output + "'");
        if (needs_newline) out << "\n";
        // Fresh ledgers start with the schema header; resumed ones keep
        // whatever they have (legacy headerless files stay headerless so
        // they remain byte-appendable by older builds too).
        if (is_empty) out << campaign_schema_header_line() << "\n";
    }

    campaign_report report;
    std::map<std::string, campaign_record> fresh;

    // One batch per topology group: all variants and seeds of a
    // (family, size) share the generated graph and its profile through
    // the runner caches, and the file is flushed between groups.
    const std::size_t group = spec.variants.size() *
                              std::max<std::size_t>(spec.dynamics.size(), 1) *
                              spec.seeds;
    for (std::size_t base = 0; base < units.size(); base += group) {
        std::vector<campaign_unit> pending;
        for (std::size_t i = base; i < base + group; ++i) {
            if (done.count(units[i].key())) {
                ++report.skipped;
            } else {
                pending.push_back(units[i]);
            }
        }
        if (pending.empty()) continue;

        for (campaign_record& rec : run_campaign_units(pending, runner)) {
            ++report.executed;
            if (!rec.ok) ++report.failed;
            if (out.is_open()) out << rec.to_json() << "\n";
            std::string k = rec.unit.key();
            fresh.emplace(std::move(k), std::move(rec));
        }
        if (out.is_open()) out.flush();
    }

    // Assemble every record — resumed + fresh — in expansion order.
    report.records.reserve(units.size());
    for (const campaign_unit& u : units) {
        const std::string k = u.key();
        if (auto it = fresh.find(k); it != fresh.end()) {
            report.records.push_back(it->second);
        } else if (auto it2 = done.find(k); it2 != done.end()) {
            report.records.push_back(it2->second);
        }
    }
    return report;
}

}  // namespace anole
