// anole — self-contained HTML campaign report.
//
// `bench_campaign --report out.html` renders one ledger into a single
// HTML file with ZERO external references — no scripts, no fonts, no
// fetches; inline SVG and CSS only — so it can be archived as a CI
// artifact, attached to a mail, or opened from a USB stick years later
// and still render. Sections:
//
//   * stat tiles: units recorded / ok / single-leader / oracle-clean;
//   * per-family small multiples: mean message and round complexity vs n
//     (log-log), one colored series per algorithm variant (fixed slot
//     order — identity, never rank), dashed per dynamics model, with
//     native <title> tooltips on every marker;
//   * the full aggregate table (the same grouping campaign_table
//     prints) — the accessible fallback for every chart above it;
//   * a safety section listing oracle violations and failed units;
//   * a topology gallery: one force-directed thumbnail per family at the
//     largest recorded size, laid out by graph/layout.h (Barnes–Hut, so
//     n = 10⁵ thumbnails are fine) on the campaign's own topology seed.
//
// Light and dark mode are both first-class: colors are CSS custom
// properties with a prefers-color-scheme override, and the SVG marks
// reference them by class.
#pragma once

#include <string>
#include <vector>

#include "sim/campaign.h"

namespace anole {

struct report_options {
    std::string title = "anole campaign report";
    // When nonzero, the coverage tile shows recorded/expected (the merge
    // path knows the expansion size; a bare ledger does not).
    std::size_t expected_units = 0;
    // Topology gallery knobs. Thumbnails cost one graph build + layout
    // per family; families whose largest instance exceeds the node cap
    // are skipped (with a note) rather than stalling report generation.
    bool thumbnails = true;
    std::size_t max_thumb_nodes = 150000;
    std::size_t thumb_edge_cap = 4000;
    // Worker threads for thumbnail layout; 0 = hardware concurrency.
    std::size_t jobs = 0;
};

// The full HTML document.
[[nodiscard]] std::string render_campaign_report(
    const std::vector<campaign_record>& records, const report_options& opt = {});

// Renders and writes to `path` (throws anole::error on I/O failure).
void write_campaign_report(const std::string& path,
                           const std::vector<campaign_record>& records,
                           const report_options& opt = {});

}  // namespace anole
