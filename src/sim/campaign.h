// anole — declarative campaign engine on top of the ScenarioRunner.
//
// A campaign is a cartesian sweep {families × sizes × algorithm variants
// × seeds} declared once (flags or a JSON spec file) and expanded into
// one atomic unit of work per coordinate — a single repetition of one
// algorithm on one topology instance. The engine:
//
//   * groups units by topology, so every variant and seed of a given
//     (family, n) shares one generated graph AND one measured profile
//     through the runner's caches (profiles are the expensive step:
//     spectral estimation + mixing simulation — computed once per
//     topology per campaign instead of once per bench as before);
//   * streams one JSON record per completed unit to a JSONL file,
//     flushed after every topology group, so a killed campaign loses at
//     most the group in flight;
//   * resumes by reading that file back: units whose key is already
//     recorded are skipped, never re-run (campaign_report::skipped says
//     how many);
//   * aggregates everything — fresh and previously recorded runs — into
//     a per-(family, n, variant) table emitted through the existing
//     --json/--csv table path.
//
// Record order in the file is deterministic: topology groups in spec
// order, units in (variant, seed) order within a group — independent of
// --jobs (the runner's batch API returns results in input order).
// docs/CAMPAIGNS.md documents the spec schema and resume semantics.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/runner.h"
#include "util/table.h"

namespace anole {

// --- ledger schema ----------------------------------------------------------
//
// Every ledger (and fleet shard — sim/fleet.h) starts with one schema
// header line so merge/report tooling can reject files written by an
// incompatible build with a clear error instead of silently mis-reading
// them. Ledgers from before the header existed ("legacy", version 0) are
// still accepted on resume — their record lines parse unchanged.

inline constexpr int campaign_schema_version = 1;

// The header line (no trailing newline):
//   {"schema":"anole-campaign","version":1}
[[nodiscard]] std::string campaign_schema_header_line();

// Classifies one line: the version if it is a schema header, nullopt
// otherwise (record line, torn line, legacy garbage — caller decides).
[[nodiscard]] std::optional<int> parse_campaign_schema_header(const std::string& line);

// Throws anole::error naming `path` if its first non-empty line is a
// schema header of a different version. Missing/empty/headerless files
// pass (legacy ledgers keep resuming).
void check_campaign_ledger_schema(const std::string& path);

// --- declaration ------------------------------------------------------------

struct campaign_spec {
    std::vector<graph_family> families;
    std::vector<std::size_t> sizes;
    std::vector<algo_kind> variants;
    // Repetitions per (family, size, variant) cell; unit r runs with
    // seed base_seed + r.
    std::size_t seeds = 3;
    std::uint64_t base_seed = 1;
    // Seed of the generated topology instances (one instance per
    // (family, size), shared by every variant and run seed).
    std::uint64_t topology_seed = 1;
    // Dynamics axis (sim/dynamics.h): named adversary models every
    // (family, size, variant, seed) cell is additionally swept over.
    // Empty = static network only, with unit keys identical to campaigns
    // from before this axis existed (resume files stay compatible).
    std::vector<std::pair<std::string, dynamics_spec>> dynamics;
    // JSONL path records stream to; empty = in-memory only (no resume).
    std::string output;

    void validate() const;
};

// Parses the JSON spec schema of docs/CAMPAIGNS.md:
//   {"families": ["barbell", "ws"], "sizes": [64, 256],
//    "variants": ["revocable", "cautious"], "seeds": 8,
//    "base_seed": 1, "topology_seed": 1, "output": "campaign.jsonl",
//    "dynamics": ["static", "churn", {"name": "lossy", "loss_prob": 0.1}]}
// "dynamics" entries are preset names (strings) or knob objects
// (dynamics_from_json). Unknown families/variants/keys throw anole::error.
[[nodiscard]] campaign_spec campaign_spec_from_json(const std::string& text);

// Variant-name parser for flags and spec files: accepts the algo_kind
// to_string names plus "flood" and "cautious". nullopt for unknown.
[[nodiscard]] std::optional<algo_kind> variant_from_string(std::string_view name);

// The per-variant default configuration campaigns run at requested size
// n with `edges` edges (0 = unknown, assume dense). flood/gilbert/
// irrevocable use profile-auto-filled defaults; revocable uses a blind,
// hard-budgeted scaled policy (the paper's faithful phase lengths are
// poly(n⁸) — not sweepable; hopeless cells must report failure in
// bounded time, not stall the campaign); cautious uses the x = 1
// territory cap.
[[nodiscard]] algo_config campaign_default_config(algo_kind k, std::size_t n,
                                                  std::size_t edges = 0);

// --- expansion --------------------------------------------------------------

// One atomic unit: a single repetition at one sweep coordinate.
struct campaign_unit {
    graph_family family;
    std::size_t n = 0;  // requested size (the instance may differ slightly)
    std::uint64_t topology_seed = 1;  // instance seed (spec-wide)
    algo_kind variant;
    std::uint64_t seed = 0;
    // Dynamics-axis coordinate; empty name = static network (no axis).
    std::string dynamics_name = {};
    dynamics_spec dynamics = {};

    // Resume key: "family/n/t<topology_seed>/variant/seed", plus a
    // "/<dynamics_name>" suffix only when a dynamics axis is configured —
    // static-only campaigns keep the historical key format, so old resume
    // files load unchanged. The topology seed is part of the key so
    // re-running against the same file with resampled instances
    // (--topology-seed) re-runs rather than silently skipping records
    // measured on different graphs.
    [[nodiscard]] std::string key() const;
};

// Full cartesian expansion in deterministic order: (family, size) outer
// (topology groups), (variant, seed) inner.
[[nodiscard]] std::vector<campaign_unit> expand(const campaign_spec& spec);

// --- results ----------------------------------------------------------------

// One JSONL line; holds everything the aggregate tables need so resumed
// campaigns never re-run completed units.
struct campaign_record {
    campaign_unit unit;
    std::size_t nodes = 0;  // actual instance size
    std::size_t edges = 0;
    double phi = 0;
    std::uint64_t tmix = 0;
    bool ok = false;
    bool success = false;
    std::size_t leaders = 0;
    std::uint64_t rounds = 0;
    std::uint64_t messages = 0;
    std::uint64_t bits = 0;
    std::uint64_t congest_rounds = 0;
    // Safety-oracle verdict (sim/oracle.h). Records from before the oracle
    // existed load as oracle_ok = true with an empty summary; the summary
    // is only written (and only meaningful) when a check failed.
    bool oracle_ok = true;
    std::string oracle_summary;
    std::string error;

    [[nodiscard]] std::string to_json() const;  // one line, no trailing \n
    [[nodiscard]] static campaign_record from_json(const std::string& line);
};

struct campaign_report {
    std::size_t executed = 0;  // units run in this invocation
    std::size_t skipped = 0;   // units found already recorded
    std::size_t failed = 0;    // executed units with ok == false
    // All units in expansion order, recorded + fresh.
    std::vector<campaign_record> records;
};

// Aggregate per-(family, n, variant) table over the records: run/ok
// counts, election rate, message/round statistics, profile columns.
[[nodiscard]] text_table campaign_table(const std::vector<campaign_record>& records);

// All parseable records of a ledger/shard file, in file order (schema
// header checked and skipped; torn/foreign lines dropped). Missing file
// = empty vector.
[[nodiscard]] std::vector<campaign_record> load_campaign_ledger(
    const std::string& path);

// --- execution --------------------------------------------------------------

// One record from one completed unit (the JSONL line run_campaign and the
// fleet workers stream). Exposed so sim/fleet.h produces byte-identical
// records to the single-process path.
[[nodiscard]] campaign_record make_campaign_record(const campaign_unit& unit,
                                                   const scenario_result& res);

// Runs `units` — which must all belong to one topology group (same
// family, n, topology_seed) — through the runner, sharing one generated
// graph and one profile, and returns their records in input order. The
// group-batch primitive both run_campaign and the fleet workers fan out.
[[nodiscard]] std::vector<campaign_record> run_campaign_units(
    const std::vector<campaign_unit>& units, scenario_runner& runner);

// Runs the campaign on `runner` (which supplies the thread pool and the
// shared topology/profile caches). If spec.output names an existing
// JSONL file, its records are loaded first and those units are skipped;
// fresh records are appended to the same file, flushed per topology
// group. Lines that fail to parse are ignored (a torn final line from a
// killed run is expected, and the unit simply re-runs).
campaign_report run_campaign(const campaign_spec& spec, scenario_runner& runner);

}  // namespace anole
