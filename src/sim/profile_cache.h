// anole — persistent on-disk profile cache.
//
// Profiling a topology (graph/spectral.h profile()) is the expensive
// prologue of every campaign; the measured values depend only on
// (family, n, generator seed, profiler version), so they are perfectly
// cacheable across processes. This is a JSONL file: one object per line,
//
//   {"key":"dumbbell/4096/s7/v1","version":1,"profile":{...}}
//
// where the profile payload is graph_profile::to_json() (doubles printed
// %.17g, parsed back via std::from_chars — cache hits are bitwise
// identical to cold computes, test-enforced). Corrupt lines, unknown
// fields' types and entries from a different profiler version are
// silently skipped at load: the entry is simply recomputed and the file
// re-written, so a stale cache can never poison results. Later lines win
// over earlier ones on load (the rule campaign resume uses too), which
// keeps append-only files from older builds readable.
//
// scenario_runner layers this *under* its in-memory map (see
// set_profile_cache): lookup order is memory → disk → compute-and-store.
// docs/PROFILES.md covers the key scheme and invalidation story.
#pragma once

#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "graph/spectral.h"

namespace anole {

// Participates in every cache key; bump whenever profile() semantics
// change (new method policy, changed estimator) to invalidate old files.
inline constexpr int profile_cache_version = 1;

class profile_cache {
public:
    // Loads every valid entry from `path` (missing file = empty cache).
    explicit profile_cache(std::string path);

    [[nodiscard]] std::optional<graph_profile> lookup(const std::string& key) const;

    // Upserts in memory and on disk. Thread-safe AND cross-process safe
    // (fleet workers share one cache file): the writer takes a sibling
    // ".lock" file (create-exclusive; stale locks from crashed writers
    // are broken after ~30 s), re-reads the file under the lock to merge
    // entries other processes added, rewrites everything to a ".tmp"
    // sibling and atomically renames it over the cache — readers never
    // observe a torn line. Write failures throw anole::error (a cache
    // that silently drops writes would defeat the second-run-is-free
    // contract).
    void store(const std::string& key, const graph_profile& p);

    [[nodiscard]] std::size_t size() const;
    [[nodiscard]] const std::string& path() const noexcept { return path_; }

private:
    std::string path_;
    mutable std::mutex mu_;
    std::map<std::string, graph_profile> entries_;
};

}  // namespace anole
