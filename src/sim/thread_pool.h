// anole — minimal fixed-size worker pool for the scenario harness.
//
// The experiment sweeps are embarrassingly parallel at the repetition
// level: every (scenario, seed) pair builds its own engine over a shared
// read-only graph. This pool is the batch substrate behind
// scenario_runner and the benches' `--jobs N` flag, and — since the
// flat-slot engine learned to shard a single round across workers
// (engine<P>::set_parallelism, `--node-jobs`) — also the substrate for
// intra-instance parallelism nested *inside* a pool job.
//
// Jobs are opaque void() callables and must not throw — the runner
// captures per-run exceptions into the run record before submitting.
// wait() blocks until the queue drains AND every in-flight job returned,
// so results written by jobs are visible to the waiter afterwards
// (release/acquire via the mutex).
//
// parallel_for() is group-scoped and *helping*: the calling thread
// executes its own group's queued jobs while it waits, so it is safe to
// call from inside a pool job (a repetition job sharding engine rounds
// over the same pool) — the caller can always drain its own group by
// itself, so nested waits cannot deadlock, and a group whose jobs are
// in flight on other workers simply blocks until they return.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace anole {

class thread_pool {
public:
    // workers = 0 selects hardware_concurrency (at least 1).
    explicit thread_pool(std::size_t workers = 0) {
        if (workers == 0) {
            workers = std::thread::hardware_concurrency();
            if (workers == 0) workers = 1;
        }
        threads_.reserve(workers);
        for (std::size_t i = 0; i < workers; ++i) {
            threads_.emplace_back([this] { worker_loop(); });
        }
    }

    thread_pool(const thread_pool&) = delete;
    thread_pool& operator=(const thread_pool&) = delete;

    ~thread_pool() {
        {
            std::unique_lock<std::mutex> lk(mu_);
            stopping_ = true;
        }
        cv_work_.notify_all();
        for (auto& t : threads_) t.join();
    }

    [[nodiscard]] std::size_t size() const noexcept { return threads_.size(); }

    void submit(std::function<void()> job) {
        {
            std::unique_lock<std::mutex> lk(mu_);
            queue_.push_back(task{std::move(job), nullptr});
            ++outstanding_;
        }
        cv_work_.notify_one();
    }

    // Blocks until every submitted job has finished (all groups included).
    void wait() {
        std::unique_lock<std::mutex> lk(mu_);
        cv_idle_.wait(lk, [this] { return outstanding_ == 0; });
    }

    // fn(i) for every i in [0, count); returns when all have finished.
    // The calling thread participates (helping wait), so this may be
    // invoked from within a pool job without risking deadlock.
    template <class Fn>
    void parallel_for(std::size_t count, Fn&& fn) {
        if (count == 0) return;
        task_group grp;
        {
            std::unique_lock<std::mutex> lk(mu_);
            grp.remaining = count;
            for (std::size_t i = 0; i < count; ++i) {
                queue_.push_back(task{[&fn, i] { fn(i); }, &grp});
            }
            outstanding_ += count;
        }
        cv_work_.notify_all();

        std::unique_lock<std::mutex> lk(mu_);
        while (grp.remaining != 0) {
            // Prefer our own group's jobs; they were pushed at the back.
            auto it = std::find_if(queue_.rbegin(), queue_.rend(),
                                   [&](const task& t) { return t.group == &grp; });
            if (it == queue_.rend()) {
                // All of the group's jobs are in flight on workers.
                grp.cv.wait(lk);
                continue;
            }
            task t = std::move(*it);
            queue_.erase(std::next(it).base());
            lk.unlock();
            t.fn();
            lk.lock();
            finish_locked(t);
        }
        // grp (and its condition_variable) dies here; workers only touch a
        // group under mu_ before its remaining-count hits zero, and the
        // final decrement happens with mu_ held, so no worker can still be
        // inside notify once we observed remaining == 0.
    }

private:
    struct task_group {
        std::size_t remaining = 0;
        std::condition_variable cv;
    };
    struct task {
        std::function<void()> fn;
        task_group* group = nullptr;
    };

    // Completion bookkeeping; caller holds mu_.
    void finish_locked(const task& t) {
        if (t.group != nullptr && --t.group->remaining == 0) t.group->cv.notify_all();
        if (--outstanding_ == 0) cv_idle_.notify_all();
    }

    void worker_loop() {
        for (;;) {
            task t;
            {
                std::unique_lock<std::mutex> lk(mu_);
                cv_work_.wait(lk, [this] { return stopping_ || !queue_.empty(); });
                if (queue_.empty()) return;  // stopping_ with a drained queue
                t = std::move(queue_.front());
                queue_.pop_front();
            }
            t.fn();
            {
                std::unique_lock<std::mutex> lk(mu_);
                finish_locked(t);
            }
        }
    }

    std::mutex mu_;
    std::condition_variable cv_work_, cv_idle_;
    std::deque<task> queue_;
    std::size_t outstanding_ = 0;
    bool stopping_ = false;
    std::vector<std::thread> threads_;
};

}  // namespace anole
