// anole — minimal fixed-size worker pool for the scenario harness.
//
// The experiment sweeps are embarrassingly parallel at the repetition
// level: every (scenario, seed) pair builds its own engine over a shared
// read-only graph. This pool is the batch substrate behind
// scenario_runner and the benches' `--jobs N` flag.
//
// Jobs are opaque void() callables and must not throw — the runner
// captures per-run exceptions into the run record before submitting.
// wait() blocks until the queue drains AND every in-flight job returned,
// so results written by jobs are visible to the waiter afterwards
// (release/acquire via the mutex).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace anole {

class thread_pool {
public:
    // workers = 0 selects hardware_concurrency (at least 1).
    explicit thread_pool(std::size_t workers = 0) {
        if (workers == 0) {
            workers = std::thread::hardware_concurrency();
            if (workers == 0) workers = 1;
        }
        threads_.reserve(workers);
        for (std::size_t i = 0; i < workers; ++i) {
            threads_.emplace_back([this] { worker_loop(); });
        }
    }

    thread_pool(const thread_pool&) = delete;
    thread_pool& operator=(const thread_pool&) = delete;

    ~thread_pool() {
        {
            std::unique_lock<std::mutex> lk(mu_);
            stopping_ = true;
        }
        cv_work_.notify_all();
        for (auto& t : threads_) t.join();
    }

    [[nodiscard]] std::size_t size() const noexcept { return threads_.size(); }

    void submit(std::function<void()> job) {
        {
            std::unique_lock<std::mutex> lk(mu_);
            queue_.push_back(std::move(job));
            ++outstanding_;
        }
        cv_work_.notify_one();
    }

    // Blocks until every submitted job has finished.
    void wait() {
        std::unique_lock<std::mutex> lk(mu_);
        cv_idle_.wait(lk, [this] { return outstanding_ == 0; });
    }

    // Convenience: fn(i) for every i in [0, count), then wait.
    template <class Fn>
    void parallel_for(std::size_t count, Fn&& fn) {
        for (std::size_t i = 0; i < count; ++i) {
            submit([&fn, i] { fn(i); });
        }
        wait();
    }

private:
    void worker_loop() {
        for (;;) {
            std::function<void()> job;
            {
                std::unique_lock<std::mutex> lk(mu_);
                cv_work_.wait(lk, [this] { return stopping_ || !queue_.empty(); });
                if (queue_.empty()) return;  // stopping_ with a drained queue
                job = std::move(queue_.front());
                queue_.pop_front();
            }
            job();
            {
                std::unique_lock<std::mutex> lk(mu_);
                if (--outstanding_ == 0) cv_idle_.notify_all();
            }
        }
    }

    std::mutex mu_;
    std::condition_variable cv_work_, cv_idle_;
    std::deque<std::function<void()>> queue_;
    std::size_t outstanding_ = 0;
    bool stopping_ = false;
    std::vector<std::thread> threads_;
};

}  // namespace anole
