// anole — ScenarioRunner: the one experiment driver benches and examples
// share (see sim/scenario.h for the scenario description).
//
// Responsibilities:
//   * materialize topologies (family_spec instances are generated once
//     and cached; caller-owned graphs are borrowed);
//   * profile every distinct topology once (graph/spectral.h profile();
//     the expensive step — spectral estimation plus mixing simulation —
//     is itself parallelized across distinct graphs in run_batch);
//   * auto-fill zero-valued model inputs (n, tmix, Φ, D, i(G)) from the
//     profile, exactly as the paper's algorithms are parameterized;
//   * fan repetitions and scenarios out over a thread pool (`--jobs N`
//     in the benches; default = hardware concurrency). Results are
//     bit-identical for every jobs value: each repetition derives its
//     randomness from scenario.seed + r only.
//
// Exceptions inside a run (engine round-limit overruns, CONGEST
// violations) are captured per repetition into run_record::error rather
// than aborting the sweep.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "sim/profile_cache.h"
#include "sim/scenario.h"
#include "sim/thread_pool.h"

namespace anole {

class scenario_runner {
public:
    // jobs = 0 selects hardware concurrency; node_jobs is the default
    // engine-round sharding (see set_default_node_jobs).
    explicit scenario_runner(std::size_t jobs = 0, std::size_t node_jobs = 1)
        : pool_(jobs), default_node_jobs_(node_jobs == 0 ? 1 : node_jobs) {}

    [[nodiscard]] std::size_t jobs() const noexcept { return pool_.size(); }

    // Default engine-level round sharding applied to scenarios that leave
    // scenario::node_jobs at 0 (`--node-jobs` in the benches). Engines
    // shard over this runner's pool — safe to nest inside repetition
    // jobs, see thread_pool::parallel_for. <= 1 means serial rounds.
    void set_default_node_jobs(std::size_t k) noexcept { default_node_jobs_ = k; }
    [[nodiscard]] std::size_t default_node_jobs() const noexcept {
        return default_node_jobs_;
    }

    // Runs one scenario, repetitions in parallel.
    scenario_result run(const scenario& s);

    // Runs a whole sweep: profiles distinct topologies in parallel, then
    // fans every (scenario, repetition) pair out over the pool. Results
    // are returned in input order.
    std::vector<scenario_result> run_batch(const std::vector<scenario>& batch);

    // Topology materialization + profile cache (shared across scenarios;
    // thread-safe). The returned references live as long as the runner.
    const graph& materialize(const topology_spec& spec);
    const graph_profile& profile_for(const graph& g);

    // Cache sizes — lets callers (campaign tests, perf assertions) verify
    // that sweeps sharing a topology really shared its graph and profile.
    [[nodiscard]] std::size_t cached_graphs() const;
    [[nodiscard]] std::size_t cached_profiles() const;

    // Layers a persistent JSONL cache (sim/profile_cache.h) *under* the
    // in-memory profile map: profile_for resolves memory → disk →
    // compute-and-store. Only generated topologies participate (borrowed
    // graphs have no (family, n, seed) identity to key on).
    void set_profile_cache(const std::string& path);
    // Profiles actually computed (neither cache hit) since construction —
    // a warm disk cache makes a repeat campaign report 0 here.
    [[nodiscard]] std::size_t fresh_profiles() const;

    // One repetition, no pooling — the primitive run()/run_batch() fan
    // out. Exposed for tests and custom harnesses. `dynamics` attaches
    // the per-round adversary (sim/dynamics.h); default = static network.
    [[nodiscard]] static run_record run_once(const graph& g, const graph_profile& prof,
                                             const algo_config& cfg, std::uint64_t seed,
                                             const dynamics_spec& dynamics = {});

    // The parameter auto-fill run_once applies, exposed for reuse:
    // zero-valued model inputs are replaced from the profile.
    [[nodiscard]] static irrevocable_params fill(irrevocable_params p,
                                                 const graph_profile& prof);
    [[nodiscard]] static gilbert_params fill(gilbert_params p, const graph_profile& prof);
    [[nodiscard]] static revocable_params fill(const revocable_cfg& c,
                                               const graph_profile& prof);

private:
    scenario_result prepare(const scenario& s);
    [[nodiscard]] std::size_t node_jobs_for(const scenario& s) const noexcept {
        return s.node_jobs != 0 ? s.node_jobs : default_node_jobs_;
    }

    thread_pool pool_;
    std::size_t default_node_jobs_ = 1;
    mutable std::mutex mu_;
    // Generated graphs keyed by (family, n, seed); profiles keyed by
    // graph identity (works for both generated and borrowed graphs).
    std::map<std::tuple<graph_family, std::size_t, std::uint64_t>,
             std::unique_ptr<graph>> graphs_;
    std::map<const graph*, std::unique_ptr<graph_profile>> profiles_;
    // Disk-cache keys for generated graphs + the cache itself (optional).
    std::map<const graph*, std::string> profile_keys_;
    std::unique_ptr<profile_cache> disk_cache_;
    std::size_t fresh_profiles_ = 0;
};

}  // namespace anole
