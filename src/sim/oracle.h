// anole — fault-recovery oracles.
//
// A machine-checked safety layer over any finished (or abandoned) run:
// instead of eyeballing bench tables to convince ourselves the
// algorithms degrade gracefully under the adversary, every driver hands
// its engine plus a per-node status probe to run_oracle() and gets a
// structured verdict back. The checks encode exactly what must hold at
// termination under *every* fault mix the dynamics layer can produce:
//
//   leader_undecided   — no live node may fly the leader flag without
//                        having reached a final local verdict.
//   multi_leader       — no two live leaders claiming *conflicting*
//                        identities — distinct (id, certificate) pairs —
//                        whenever the adversary destroyed or delayed
//                        nothing (no loss, churn, targeted kills,
//                        crashes, sleeps or membership churn). Two checks
//                        scope this to where it is an invariant rather
//                        than a coin flip: under destructive faults a
//                        transient second leader is legitimate protocol
//                        state (revocable re-election in progress), and
//                        an anonymous algorithm can legitimately crown
//                        two nodes that drew the *same* random ID — they
//                        agree on the elected identity, which is the
//                        anonymous-model notion of non-conflict.
//   leader_view        — on a clean schedule, when exactly one live
//                        leader exists and the driver exposes views
//                        (revocable variants), every live node holding a
//                        view must agree with that leader's own
//                        (id, certificate).
//   fault_accounting   — destroyed messages never exceed inspected
//                        deliveries, and deliveries never exceed the
//                        metrics' charged message count: senders paid for
//                        every message the adversary killed (the budget
//                        lines stay honest under fire).
//   round_cap          — the run terminated within the caller's measured
//                        bound (e.g. re-election within the window the
//                        revocable driver allots after an assassination).
//
// The oracle only reads engine observation APIs and the probe — it never
// mutates the run — so it is safe to evaluate on an engine in any state,
// including one abandoned mid-run by a thrown verdict.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/dynamics.h"

namespace anole {

struct oracle_options {
    // Enable the leader_view check (drivers whose node_status carries
    // meaningful view fields — the revocable family).
    bool check_views = false;
    // 0 = no bound; otherwise the run must have terminated by this round.
    std::uint64_t round_cap = 0;
};

struct oracle_violation {
    std::string check;   // which oracle fired ("multi_leader", ...)
    std::string detail;  // human-readable evidence
};

struct oracle_report {
    bool evaluated = false;  // false = oracle never ran (default object)
    std::size_t present_nodes = 0;
    std::size_t live_nodes = 0;       // present and not halted/crashed
    std::size_t live_leaders = 0;     // leader flag among live nodes
    std::size_t crashed_nodes = 0;    // silenced by crash faults
    std::size_t crashed_leaders = 0;  // leaders among the crashed
    std::vector<oracle_violation> violations;

    [[nodiscard]] bool pass() const noexcept { return violations.empty(); }

    // "ok (live=14, leaders=1)" or "VIOLATION multi_leader: ..." — the
    // campaign ledger and the runner's failure paths both print this.
    [[nodiscard]] std::string summary() const {
        if (!evaluated) return "not evaluated";
        if (pass()) {
            return "ok (live=" + std::to_string(live_nodes) +
                   ", leaders=" + std::to_string(live_leaders) + ")";
        }
        std::string out;
        for (const oracle_violation& v : violations) {
            if (!out.empty()) out += "; ";
            out += "VIOLATION " + v.check + ": " + v.detail;
        }
        return out;
    }
};

// Evaluates every applicable invariant against the engine's final state.
// `probe(u)` must return the node_status of node u (same contract as
// engine::set_status_probe); it is only called for present nodes.
template <class Eng, class Probe>
[[nodiscard]] oracle_report run_oracle(const Eng& eng, Probe&& probe,
                                       const oracle_options& opt = {}) {
    oracle_report rep;
    rep.evaluated = true;
    const std::size_t n = eng.num_nodes();
    rep.present_nodes = eng.present_count();
    rep.live_nodes = eng.live_count();

    // One pass gathers the census and the per-check evidence.
    std::size_t undecided_leaders = 0;
    node_id first_undecided_leader = 0;
    node_id leader_node = 0;  // a live leader, if any
    std::uint64_t leader_id = 0, leader_cert = 0;
    bool conflicting_leaders = false;
    std::size_t view_mismatches = 0;
    node_id first_mismatch = 0;
    static thread_local std::vector<node_status> live_status;
    live_status.clear();
    static thread_local std::vector<node_id> live_ids;
    live_ids.clear();
    for (node_id u = 0; u < n; ++u) {
        if (!eng.node_present(u)) continue;
        const node_status st = probe(static_cast<std::size_t>(u));
        if (eng.node_crashed(u)) {
            ++rep.crashed_nodes;
            if (st.leader) ++rep.crashed_leaders;
            continue;
        }
        live_status.push_back(st);
        live_ids.push_back(u);
        if (st.leader) {
            if (rep.live_leaders == 0) {
                leader_node = u;
                leader_id = st.own_id;
                leader_cert = st.own_cert;
            } else if (st.own_id != leader_id || st.own_cert != leader_cert) {
                conflicting_leaders = true;
            }
            ++rep.live_leaders;
            if (!st.decided) {
                if (undecided_leaders == 0) first_undecided_leader = u;
                ++undecided_leaders;
            }
        }
    }

    if (undecided_leaders > 0) {
        rep.violations.push_back(
            {"leader_undecided",
             "node " + std::to_string(first_undecided_leader) +
                 " flies the leader flag without a final verdict (" +
                 std::to_string(undecided_leaders) + " such nodes)"});
    }

    // Conflicting leaders are a safety bug only when the adversary
    // neither destroyed nor delayed anything; under fire a transient
    // duplicate is re-election in progress.
    bool clean = true;
    if (const dynamics_state* dyn = eng.dynamics()) {
        const dynamics_stats& st = dyn->stats();
        clean = st.lost_messages == 0 && st.churned_messages == 0 &&
                st.targeted_losses == 0 && st.cut_losses == 0 &&
                st.released_messages == 0 && st.leaves == 0 && st.crashes == 0 &&
                st.assassinations == 0 && st.sleep_events == 0;
    }
    if (clean && conflicting_leaders) {
        rep.violations.push_back(
            {"multi_leader", std::to_string(rep.live_leaders) +
                                 " live leaders claim conflicting identities with "
                                 "no destructive or delaying fault in the schedule"});
    }

    if (clean && opt.check_views && rep.live_leaders == 1) {
        std::uint64_t mismatch_view = 0;
        for (std::size_t i = 0; i < live_status.size(); ++i) {
            const node_status& st = live_status[i];
            if (st.view_id == 0) continue;  // no view held
            if (st.view_id != leader_id || st.view_cert != leader_cert) {
                if (view_mismatches == 0) {
                    first_mismatch = live_ids[i];
                    mismatch_view = st.view_id;
                }
                ++view_mismatches;
            }
        }
        if (view_mismatches > 0) {
            rep.violations.push_back(
                {"leader_view",
                 "node " + std::to_string(first_mismatch) + " holds a view of id " +
                     std::to_string(mismatch_view) +
                     " disagreeing with live leader " + std::to_string(leader_node) +
                     " (" + std::to_string(view_mismatches) + " mismatching nodes)"});
        }
    }

    if (const dynamics_state* dyn = eng.dynamics()) {
        const dynamics_stats& st = dyn->stats();
        const std::uint64_t destroyed = st.lost_messages + st.churned_messages +
                                        st.targeted_losses + st.cut_losses;
        const std::uint64_t charged = eng.metrics().total().messages;
        if (destroyed > st.deliveries + st.targeted_losses + st.cut_losses) {
            rep.violations.push_back(
                {"fault_accounting",
                 std::to_string(destroyed) + " destroyed messages exceed " +
                     std::to_string(st.deliveries) + " inspected deliveries"});
        }
        if (st.deliveries > charged) {
            rep.violations.push_back(
                {"fault_accounting",
                 std::to_string(st.deliveries) + " deliveries exceed the " +
                     std::to_string(charged) +
                     " messages charged to the budget lines — a destroyed message "
                     "was not paid for"});
        }
    }

    if (opt.round_cap > 0 && eng.round() > opt.round_cap) {
        rep.violations.push_back(
            {"round_cap", "terminated at round " + std::to_string(eng.round()) +
                              " past the measured bound of " +
                              std::to_string(opt.round_cap)});
    }
    return rep;
}

}  // namespace anole
