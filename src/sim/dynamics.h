// anole — dynamic / adversarial network layer.
//
// The paper's title says *dynamic* distributed computing, but until this
// layer every scenario ran on a static graph. A `dynamics_spec` attached
// to a scenario composes per-round adversary events that the engine
// applies at each round boundary, before delivery:
//
//   * port re-wiring — the anonymity adversary. graph::with_permuted_ports
//     permutes every node's port labels exactly once, at construction;
//     here the adversary may relabel any subset of nodes *every round*,
//     in place, in O(changed degree): the engine's flat 2m-slot CSR
//     layout survives because a per-node relabeling is a permutation of
//     that node's own slot range — peer-table entries and in-flight
//     messages move together, so the `peer_slot_` involution stays exact
//     and delivery stays one table load. Physically nothing changes:
//     the same nodes exchange the same messages, only the port numbers
//     they observe are shuffled. A single firing before round 0 is
//     bitwise-equivalent to running on with_permuted_ports (both draw
//     per-node permutations via fill_port_permutation).
//
//   * edge churn — a T-interval-connectivity generator over any footprint
//     from the topology zoo. Time is cut into windows of `interval`
//     rounds; at each window start every non-backbone edge goes down
//     independently with probability `down_prob` and stays down for the
//     window. The backbone (a BFS spanning tree of the footprint) is
//     never churned when `protect_backbone` is set, so the intersection
//     of every window's live graph — indeed every single round's live
//     graph — contains a connected spanning subgraph: the classic
//     T-interval-connected adversary with T = interval. Messages on a
//     down edge are destroyed at delivery time.
//
//   * message loss — i.i.d. faults: every delivered message is destroyed
//     independently with probability `loss_prob`. Decisions are hashed
//     from (seed, round, slot), so they are identical for every
//     `--node-jobs` value and never touch the nodes' private RNG streams.
//
//   * node crash / sleep — per live node per round: a crashed node is
//     permanently silent (the engine treats it as halted, so runs always
//     terminate with a verdict); a sleeping node skips `sleep_rounds`
//     rounds and resumes — the stamp-based slot liveness already
//     tolerates absence, messages that arrive while asleep simply expire
//     unread (quiescent slots).
//
// Cost accounting: senders are charged at send time, so messages killed
// by loss or churn still count against the message/bit budget lines and
// against fragmenting congest_rounds — the network was paid, delivery
// failed. docs/DYNAMICS.md specifies the schedule schema and semantics.
//
// Everything here is deterministic in (spec.seed | run seed): the whole
// event schedule is a pure function of the seed, hashed per
// (round, entity) — never of thread interleaving. The engine applies all
// dynamics in a serial pre-round pass, so sharded rounds stay bitwise
// identical to serial ones.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace anole {

// --- declaration ------------------------------------------------------------

struct dynamics_spec {
    // Port re-wiring adversary: each live node's ports are relabeled this
    // round with probability `rewire_prob`; additionally, if
    // `rewire_period` > 0, *every* node is relabeled in rounds that are
    // multiples of the period (period 1 = the full every-round adversary;
    // a period beyond the run length fires at round 0 only, which is the
    // with_permuted_ports reduction).
    double rewire_prob = 0;
    std::uint64_t rewire_period = 0;

    // Edge churn: per window of `churn_interval` rounds, each non-backbone
    // edge is down with probability `edge_down_prob`. With
    // `protect_backbone`, a BFS spanning tree never churns (T-interval
    // connectivity, T = churn_interval); without it the live graph may
    // disconnect — algorithms must still reach a bounded verdict.
    double edge_down_prob = 0;
    std::uint64_t churn_interval = 1;
    bool protect_backbone = true;

    // Fault models.
    double loss_prob = 0;   // i.i.d. per delivered message
    double crash_prob = 0;  // per live node per round, permanent
    double sleep_prob = 0;  // per live node per round
    std::uint64_t sleep_rounds = 4;

    // Schedule seed; 0 = derived from the run seed, so repetitions see
    // independent schedules while staying reproducible.
    std::uint64_t seed = 0;

    [[nodiscard]] bool enabled() const noexcept {
        return rewire_prob > 0 || rewire_period > 0 || edge_down_prob > 0 ||
               loss_prob > 0 || crash_prob > 0 || sleep_prob > 0;
    }
    // "rewire(p=0.1)+churn(0.2/T=8)+loss(0.05)" — table/JSON label.
    [[nodiscard]] std::string summary() const;

    void validate() const;
};

// Named presets for CLI axes (bench_dynamics, bench_campaign --dynamics):
// static, rewire, churn, loss, crash, sleep, storm. nullopt for unknown.
[[nodiscard]] std::optional<dynamics_spec> dynamics_preset(std::string_view name);
[[nodiscard]] std::vector<std::pair<std::string, dynamics_spec>> all_dynamics_presets();

// --- realized-schedule statistics -------------------------------------------

// Tallied by the engine's pre-round pass; the chi-squared fault-model
// tests compare realized rates against the configured probabilities.
struct dynamics_stats {
    std::uint64_t rewired_nodes = 0;    // node relabelings applied
    std::uint64_t deliveries = 0;       // live messages inspected at delivery
    std::uint64_t lost_messages = 0;    // killed by i.i.d. loss
    std::uint64_t churned_messages = 0; // killed on a down edge
    std::uint64_t edge_down_rounds = 0; // Σ over rounds of down edges
    std::uint64_t crashes = 0;
    std::uint64_t crash_trials = 0;     // live-node crash draws
    std::uint64_t sleep_events = 0;
    // Order-fixed hash over every event the adversary emitted (rewired
    // node ids, down edge ids, killed slots, crashes, sleeps): two runs
    // with equal digests realized byte-identical schedules.
    std::uint64_t schedule_digest = 0;

    friend bool operator==(const dynamics_stats&, const dynamics_stats&) = default;
};

// --- slot-layout primitives --------------------------------------------------

// The engine's sender-major CSR slot tables, reproduced here so the
// rewire algorithm is unit-testable without an engine: slot(u, p) =
// base[u] + p, peer[slot(u, p)] = the reverse directed edge's slot (an
// involution), owner[s] = the node whose out-slot s is.
struct slot_layout {
    std::vector<std::size_t> base;       // n+1 CSR offsets
    std::vector<node_id> owner;          // 2m entries
    std::vector<std::uint32_t> peer;     // 2m entries, involution

    explicit slot_layout(const graph& g);
};

// Applies the port relabelings of `nodes` (sorted, unique) to the peer
// table in place — peer stays an involution and the induced multigraph
// {owner[s], owner[peer[s]]} is untouched — and appends to `moves` one
// (old slot, new slot) pair per slot whose position changed, so callers
// can relocate parallel payload arrays (in-flight messages, stamps, edge
// ids) with a gather/scatter. Per-node permutations are drawn via
// fill_port_permutation(seed, u), identical to with_permuted_ports(seed).
// O(Σ degree(u) · log |nodes|).
void apply_port_rewire(const std::vector<std::size_t>& slot_base,
                       const std::vector<node_id>& slot_owner,
                       std::vector<std::uint32_t>& peer_slot,
                       const std::vector<node_id>& nodes, std::uint64_t seed,
                       std::vector<std::pair<std::uint32_t, std::uint32_t>>& moves);

// --- runtime state -----------------------------------------------------------

namespace detail {

// Hash-based Bernoulli: one draw per (seed, round, entity, tag) — stable
// under resharding and cheap enough for per-message use.
[[nodiscard]] inline bool hash_bernoulli(std::uint64_t seed, std::uint64_t round,
                                         std::uint64_t entity, std::uint64_t tag,
                                         double p) noexcept {
    if (p <= 0) return false;
    if (p >= 1) return true;
    const std::uint64_t h = derive_seed(seed ^ tag, round, entity);
    return static_cast<double>(h >> 11) * 0x1.0p-53 < p;
}

}  // namespace detail

// Per-engine adversary state: owns the schedule (windowed churn draws,
// sleep clocks), the auxiliary slot tables (owner, edge ids) and the
// realized-event statistics. The engine calls the three plan_* /
// apply_* hooks serially at the top of every step(); the only per-node
// query from inside sharded rounds is asleep(), which is read-only.
class dynamics_state {
public:
    dynamics_state(const graph& g, const dynamics_spec& spec, std::uint64_t run_seed);

    [[nodiscard]] const dynamics_spec& spec() const noexcept { return spec_; }
    [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

    // Master seed of round r's relabeling draws; with_permuted_ports of
    // this seed equals a full rewire firing in round r (the reduction the
    // port_rewire tests pin).
    [[nodiscard]] std::uint64_t rewire_seed(std::uint64_t round) const noexcept {
        return derive_seed(seed_, round, 0x5EBA11);
    }

    // (1) Port re-wiring: updates `peer_slot` in place for the nodes the
    // adversary relabels in `round` (skipping halted nodes) and returns
    // the payload moves the engine must mirror onto its in-flight
    // message/stamp arrays. The returned reference is valid until the
    // next call.
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& plan_rewire(
        std::uint64_t round, std::vector<std::uint32_t>& peer_slot,
        const std::vector<char>& halted);

    // (2)+(3) Edge churn and message loss: redraws the churn window if it
    // expired, then kills (stamp := 0) every live slot whose edge is down
    // or that loses its i.i.d. draw. `mark` is the round's delivery stamp.
    void apply_message_faults(std::uint64_t round, std::uint32_t mark,
                              std::vector<std::uint32_t>& cur_stamp);

    // (4) Node faults: draws crash/sleep for every live node. Newly
    // crashed nodes are returned for the engine to fold into its halted
    // set; sleep clocks are updated internally.
    const std::vector<node_id>& plan_node_faults(std::uint64_t round,
                                                 const std::vector<char>& halted);

    // Read-only, called from sharded rounds: is u asleep in `round`?
    [[nodiscard]] bool asleep(node_id u, std::uint64_t round) const noexcept {
        return !sleep_until_.empty() && sleep_until_[u] > round;
    }

    [[nodiscard]] const dynamics_stats& stats() const noexcept { return stats_; }

private:
    void note(std::uint64_t event) noexcept {
        stats_.schedule_digest =
            splitmix64_next(stats_.schedule_digest += event * 0x9e3779b97f4a7c15ULL);
    }

    const graph& g_;
    dynamics_spec spec_;
    std::uint64_t seed_;

    slot_layout layout_;
    // Churn: undirected edge id per slot (maintained under rewires), the
    // backbone mask, and the current window's down set.
    std::vector<std::uint32_t> slot_edge_;
    std::vector<char> backbone_;
    std::vector<char> edge_down_;
    std::uint64_t window_ = ~std::uint64_t{0};  // last redrawn churn window
    std::size_t down_count_ = 0;

    std::vector<std::uint64_t> sleep_until_;

    // Reused per-round scratch.
    std::vector<node_id> rewired_;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> moves_;
    std::vector<node_id> crashed_;

    dynamics_stats stats_;
};

// --- parsing -----------------------------------------------------------------

// Spec-file form (campaign "dynamics" axis entries; docs/DYNAMICS.md):
//   {"name": "storm", "rewire_prob": 0.1, "rewire_period": 0,
//    "edge_down_prob": 0.2, "churn_interval": 8, "protect_backbone": true,
//    "loss_prob": 0.05, "crash_prob": 0.001, "sleep_prob": 0.01,
//    "sleep_rounds": 4, "seed": 0}
// All keys optional except that the entry must either name a preset or
// set at least one knob. A bare {"name": "loss"} resolves the preset.
class json_value;
[[nodiscard]] std::pair<std::string, dynamics_spec> dynamics_from_json(
    const json_value& v);

}  // namespace anole
