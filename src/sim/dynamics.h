// anole — dynamic / adversarial network layer.
//
// The paper's title says *dynamic* distributed computing, but until this
// layer every scenario ran on a static graph. A `dynamics_spec` attached
// to a scenario composes per-round adversary events that the engine
// applies at each round boundary, before delivery:
//
//   * port re-wiring — the anonymity adversary. graph::with_permuted_ports
//     permutes every node's port labels exactly once, at construction;
//     here the adversary may relabel any subset of nodes *every round*,
//     in place, in O(changed degree): the engine's flat 2m-slot CSR
//     layout survives because a per-node relabeling is a permutation of
//     that node's own slot range — peer-table entries and in-flight
//     messages move together, so the `peer_slot_` involution stays exact
//     and delivery stays one table load. Physically nothing changes:
//     the same nodes exchange the same messages, only the port numbers
//     they observe are shuffled. A single firing before round 0 is
//     bitwise-equivalent to running on with_permuted_ports (both draw
//     per-node permutations via fill_port_permutation).
//
//   * edge churn — a T-interval-connectivity generator over any footprint
//     from the topology zoo. Time is cut into windows of `interval`
//     rounds; at each window start every non-backbone edge goes down
//     independently with probability `down_prob` and stays down for the
//     window. The backbone (a BFS spanning tree of the footprint) is
//     never churned when `protect_backbone` is set, so the intersection
//     of every window's live graph — indeed every single round's live
//     graph — contains a connected spanning subgraph: the classic
//     T-interval-connected adversary with T = interval. Messages on a
//     down edge are destroyed at delivery time.
//
//   * message loss — i.i.d. faults: every delivered message is destroyed
//     independently with probability `loss_prob`. Decisions are hashed
//     from (seed, round, slot), so they are identical for every
//     `--node-jobs` value and never touch the nodes' private RNG streams.
//
//   * node crash / sleep — per live node per round: a crashed node is
//     permanently silent (the engine treats it as halted, so runs always
//     terminate with a verdict); a sleeping node skips `sleep_rounds`
//     rounds and resumes — the stamp-based slot liveness already
//     tolerates absence, messages that arrive while asleep simply expire
//     unread (quiescent slots).
//
// Cost accounting: senders are charged at send time, so messages killed
// by loss or churn still count against the message/bit budget lines and
// against fragmenting congest_rounds — the network was paid, delivery
// failed. docs/DYNAMICS.md specifies the schedule schema and semantics.
//
// Everything here is deterministic in (spec.seed | run seed): the whole
// event schedule is a pure function of the seed, hashed per
// (round, entity) — never of thread interleaving. The engine applies all
// dynamics in a serial pre-round pass, so sharded rounds stay bitwise
// identical to serial ones.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "sim/trace.h"
#include "util/rng.h"

namespace anole {

// --- adaptive strategies -----------------------------------------------------

// The oblivious models above draw events independently of protocol
// state. An adaptive strategy instead observes a read-only per-round
// snapshot of the engine (halted/present flags plus per-node
// decided/leader status reported through the engine's status probe) and
// emits *targeted* events — the paper's adversary is adaptive, and these
// are the canonical attacks against each algorithm family:
//
//   * target_frontier_loss — kills messages whose sender is live but
//     undecided: the active frontier of the computation (max-id waves,
//     walk tokens, territory recruitment) is hit while settled traffic
//     passes. `strategy_intensity` is the per-message kill probability.
//   * leader_assassin — waits until a node raises its leader flag, gives
//     it `strategy_grace` observed rounds, then crashes it; at most
//     `strategy_max_kills` assassinations per run. The re-election bound
//     of revocable variants is measured under exactly this adversary.
//   * cut_churn — kills messages crossing a decision boundary: slots
//     whose two endpoints disagree on `decided` (territory frontiers,
//     tree cuts). `strategy_intensity` is the per-message kill
//     probability.
//
// Strategies run in the same serial pre-round pass as everything else
// and draw from the schedule seed, never from node RNG streams, so
// `--node-jobs` bitwise identity survives adaptivity.
enum class adaptive_kind : std::uint8_t {
    none,
    target_frontier_loss,
    leader_assassin,
    cut_churn,
};

[[nodiscard]] const char* to_string(adaptive_kind k) noexcept;
[[nodiscard]] std::optional<adaptive_kind> adaptive_from_string(std::string_view s);

// Per-node protocol status reported to the adaptive snapshot (and to the
// recovery oracles of sim/oracle.h) through the engine's status probe.
// Drivers install a probe translating their protocol's observers; the
// view fields are only meaningful for revocable-style algorithms.
struct node_status {
    bool decided = false;  // reached a final local verdict
    bool leader = false;   // currently holds the leader flag
    std::uint64_t own_id = 0;         // chosen ID (0 = none)
    std::uint64_t own_cert = 0;       // own certificate
    std::uint64_t view_id = 0;        // leader view: ID
    std::uint64_t view_cert = 0;      // leader view: certificate
};

// A membership change the engine must apply: respawn + mark present on
// join, mark absent on leave (the dynamics layer already released the
// slot range).
struct membership_event {
    node_id u = 0;
    bool join = false;
};

// --- declaration ------------------------------------------------------------

struct dynamics_spec {
    // Port re-wiring adversary: each live node's ports are relabeled this
    // round with probability `rewire_prob`; additionally, if
    // `rewire_period` > 0, *every* node is relabeled in rounds that are
    // multiples of the period (period 1 = the full every-round adversary;
    // a period beyond the run length fires at round 0 only, which is the
    // with_permuted_ports reduction).
    double rewire_prob = 0;
    std::uint64_t rewire_period = 0;

    // Edge churn: per window of `churn_interval` rounds, each non-backbone
    // edge is down with probability `edge_down_prob`. With
    // `protect_backbone`, a BFS spanning tree never churns (T-interval
    // connectivity, T = churn_interval); without it the live graph may
    // disconnect — algorithms must still reach a bounded verdict.
    double edge_down_prob = 0;
    std::uint64_t churn_interval = 1;
    bool protect_backbone = true;

    // Fault models.
    double loss_prob = 0;   // i.i.d. per delivered message
    double crash_prob = 0;  // per live node per round, permanent
    double sleep_prob = 0;  // per live node per round
    std::uint64_t sleep_rounds = 4;

    // Adaptive adversary (see adaptive_kind above). Intensity is the
    // per-target kill probability for the message-killing strategies;
    // grace / max_kills shape leader_assassin.
    adaptive_kind strategy = adaptive_kind::none;
    double strategy_intensity = 1.0;
    std::uint64_t strategy_grace = 1;
    std::uint64_t strategy_max_kills = 1;

    // Membership churn: per round, each live present node leaves with
    // `leave_prob` (its out-slot range is released — in-flight messages
    // from it die with it) and each absent node rejoins with `join_prob`
    // (re-attaching on its generator-sampled footprint edges with a
    // fresh protocol instance).
    double leave_prob = 0;
    double join_prob = 0;

    // Trace record / replay (sim/trace.h, docs/DYNAMICS.md). When
    // `trace_replay` names a trace file, the schedule is read from it —
    // the file's recorded spec and seed override every sampling knob
    // above — and applied byte-for-byte. When `trace_record` names a
    // path, the realized schedule (sampled or replayed) is streamed
    // there as it happens.
    std::string trace_record;
    std::string trace_replay;

    // Schedule seed; 0 = derived from the run seed, so repetitions see
    // independent schedules while staying reproducible.
    std::uint64_t seed = 0;

    [[nodiscard]] bool enabled() const noexcept {
        return rewire_prob > 0 || rewire_period > 0 || edge_down_prob > 0 ||
               loss_prob > 0 || crash_prob > 0 || sleep_prob > 0 ||
               strategy != adaptive_kind::none || leave_prob > 0 || join_prob > 0 ||
               !trace_record.empty() || !trace_replay.empty();
    }
    // "rewire(p=0.1)+churn(0.2/T=8)+loss(0.05)" — table/JSON label.
    [[nodiscard]] std::string summary() const;

    void validate() const;

    // Flat knob object, the exact inverse of dynamics_from_json — the
    // campaign spec/ledger round-trip and the trace header both use it.
    [[nodiscard]] std::string to_json() const;

    friend bool operator==(const dynamics_spec&, const dynamics_spec&) = default;
};

// Named presets for CLI axes (bench_dynamics, bench_campaign --dynamics):
// static, rewire, churn, loss, crash, sleep, storm. nullopt for unknown.
[[nodiscard]] std::optional<dynamics_spec> dynamics_preset(std::string_view name);
[[nodiscard]] std::vector<std::pair<std::string, dynamics_spec>> all_dynamics_presets();

// --- realized-schedule statistics -------------------------------------------

// Tallied by the engine's pre-round pass; the chi-squared fault-model
// tests compare realized rates against the configured probabilities.
struct dynamics_stats {
    std::uint64_t rewired_nodes = 0;    // node relabelings applied
    std::uint64_t deliveries = 0;       // live messages inspected at delivery
    std::uint64_t lost_messages = 0;    // killed by i.i.d. loss
    std::uint64_t churned_messages = 0; // killed on a down edge
    std::uint64_t edge_down_rounds = 0; // Σ over rounds of down edges
    std::uint64_t crashes = 0;
    std::uint64_t crash_trials = 0;     // live-node crash draws
    std::uint64_t sleep_events = 0;
    std::uint64_t leaves = 0;           // membership departures
    std::uint64_t joins = 0;            // membership (re)attachments
    std::uint64_t released_messages = 0;  // in-flight messages a leaver took down
    std::uint64_t targeted_losses = 0;  // killed by target_frontier_loss
    std::uint64_t cut_losses = 0;       // killed by cut_churn
    std::uint64_t assassinations = 0;   // leaders crashed by leader_assassin
    // Order-fixed hash over every event the adversary emitted (rewired
    // node ids, down edge ids, killed slots, crashes, sleeps): two runs
    // with equal digests realized byte-identical schedules.
    std::uint64_t schedule_digest = 0;

    friend bool operator==(const dynamics_stats&, const dynamics_stats&) = default;
};

// --- slot-layout primitives --------------------------------------------------

// The engine's sender-major CSR slot tables, reproduced here so the
// rewire algorithm is unit-testable without an engine: slot(u, p) =
// base[u] + p, peer[slot(u, p)] = the reverse directed edge's slot (an
// involution), owner[s] = the node whose out-slot s is.
struct slot_layout {
    std::vector<std::size_t> base;       // n+1 CSR offsets
    std::vector<node_id> owner;          // 2m entries
    std::vector<std::uint32_t> peer;     // 2m entries, involution

    explicit slot_layout(const graph& g);
};

// Applies the port relabelings of `nodes` (sorted, unique) to the peer
// table in place — peer stays an involution and the induced multigraph
// {owner[s], owner[peer[s]]} is untouched — and appends to `moves` one
// (old slot, new slot) pair per slot whose position changed, so callers
// can relocate parallel payload arrays (in-flight messages, stamps, edge
// ids) with a gather/scatter. Per-node permutations are drawn via
// fill_port_permutation(seed, u), identical to with_permuted_ports(seed).
// O(Σ degree(u) · log |nodes|).
void apply_port_rewire(const std::vector<std::size_t>& slot_base,
                       const std::vector<node_id>& slot_owner,
                       std::vector<std::uint32_t>& peer_slot,
                       const std::vector<node_id>& nodes, std::uint64_t seed,
                       std::vector<std::pair<std::uint32_t, std::uint32_t>>& moves);

// --- runtime state -----------------------------------------------------------

namespace detail {

// Hash-based Bernoulli: one draw per (seed, round, entity, tag) — stable
// under resharding and cheap enough for per-message use.
[[nodiscard]] inline bool hash_bernoulli(std::uint64_t seed, std::uint64_t round,
                                         std::uint64_t entity, std::uint64_t tag,
                                         double p) noexcept {
    if (p <= 0) return false;
    if (p >= 1) return true;
    const std::uint64_t h = derive_seed(seed ^ tag, round, entity);
    return static_cast<double>(h >> 11) * 0x1.0p-53 < p;
}

}  // namespace detail

// Per-engine adversary state: owns the schedule (windowed churn draws,
// sleep clocks), the auxiliary slot tables (owner, edge ids) and the
// realized-event statistics. The engine calls the three plan_* /
// apply_* hooks serially at the top of every step(); the only per-node
// query from inside sharded rounds is asleep(), which is read-only.
class dynamics_state {
public:
    dynamics_state(const graph& g, const dynamics_spec& spec, std::uint64_t run_seed);

    [[nodiscard]] const dynamics_spec& spec() const noexcept { return spec_; }
    [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

    // Master seed of round r's relabeling draws; with_permuted_ports of
    // this seed equals a full rewire firing in round r (the reduction the
    // port_rewire tests pin).
    [[nodiscard]] std::uint64_t rewire_seed(std::uint64_t round) const noexcept {
        return derive_seed(seed_, round, 0x5EBA11);
    }

    // True when an adaptive strategy needs per-node decided/leader status
    // this run (replayed schedules never re-observe — the recorded
    // events already encode what the adversary saw).
    [[nodiscard]] bool wants_status() const noexcept {
        return !replaying() && spec_.strategy != adaptive_kind::none;
    }
    [[nodiscard]] bool replaying() const noexcept { return replay_ != nullptr; }
    [[nodiscard]] bool membership_enabled() const noexcept {
        return spec_.leave_prob > 0 || spec_.join_prob > 0 || replaying();
    }

    // (1) Port re-wiring: updates `peer_slot` in place for the nodes the
    // adversary relabels in `round` (skipping halted and absent nodes)
    // and returns the payload moves the engine must mirror onto its
    // in-flight message/stamp arrays. The returned reference is valid
    // until the next call.
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& plan_rewire(
        std::uint64_t round, std::vector<std::uint32_t>& peer_slot,
        const std::vector<char>& halted, const std::vector<char>& present);

    // (2) Membership churn: draws leave/join for this round, releases the
    // out-slot range of every leaver (in-flight messages from it die),
    // and returns the events the engine must apply to its live-node set
    // and protocol instances. The returned reference is valid until the
    // next call.
    const std::vector<membership_event>& plan_membership(
        std::uint64_t round, std::uint32_t mark, const std::vector<char>& halted,
        const std::vector<char>& present, std::vector<std::uint32_t>& cur_stamp);

    // (3) Adaptive strategy: observes the per-node flags (decided/leader
    // refreshed from the engine's status probe; empty vectors = no probe
    // installed, flags read as false), kills targeted messages in place,
    // and returns the nodes the strategy crashes this round.
    const std::vector<node_id>& plan_adaptive(
        std::uint64_t round, std::uint32_t mark, std::vector<std::uint32_t>& cur_stamp,
        const std::vector<char>& halted, const std::vector<char>& present,
        const std::vector<char>& decided, const std::vector<char>& leader);

    // (4)+(5) Edge churn and message loss: redraws the churn window if it
    // expired, then kills (stamp := 0) every live slot whose edge is down
    // or that loses its i.i.d. draw. `mark` is the round's delivery stamp.
    void apply_message_faults(std::uint64_t round, std::uint32_t mark,
                              std::vector<std::uint32_t>& cur_stamp);

    // (6) Node faults: draws crash/sleep for every live node. Newly
    // crashed nodes are returned for the engine to fold into its halted
    // set; sleep clocks are updated internally.
    const std::vector<node_id>& plan_node_faults(std::uint64_t round,
                                                 const std::vector<char>& halted,
                                                 const std::vector<char>& present);

    // Read-only, called from sharded rounds: is u asleep in `round`?
    [[nodiscard]] bool asleep(node_id u, std::uint64_t round) const noexcept {
        return !sleep_until_.empty() && sleep_until_[u] > round;
    }

    [[nodiscard]] const dynamics_stats& stats() const noexcept { return stats_; }

private:
    void note(std::uint64_t event) noexcept {
        stats_.schedule_digest =
            splitmix64_next(stats_.schedule_digest += event * 0x9e3779b97f4a7c15ULL);
    }
    // Every realized event funnels through here: digest note (one fixed
    // offset per kind, so record and replay hash identically) plus the
    // optional trace stream.
    void emit(std::uint64_t round, trace_kind kind, std::uint64_t a,
              std::uint64_t b = 0);
    // Replay cursor: true (and consumes) iff the next recorded event is
    // (round, kind); throws on stale events from earlier rounds.
    [[nodiscard]] bool replay_take(std::uint64_t round, trace_kind kind,
                                   trace_event& out);
    [[nodiscard]] const trace_event* replay_peek() const noexcept {
        return replay_ && cursor_ < replay_->events.size() ? &replay_->events[cursor_]
                                                          : nullptr;
    }
    void release_slot_range(node_id u, std::uint32_t mark,
                            std::vector<std::uint32_t>& cur_stamp);

    const graph& g_;
    dynamics_spec spec_;
    std::uint64_t seed_;

    slot_layout layout_;
    // Churn: undirected edge id per slot (maintained under rewires), the
    // backbone mask, and the current window's down set.
    std::vector<std::uint32_t> slot_edge_;
    std::vector<char> backbone_;
    std::vector<char> edge_down_;
    std::uint64_t window_ = ~std::uint64_t{0};  // last redrawn churn window
    std::size_t down_count_ = 0;

    std::vector<std::uint64_t> sleep_until_;

    // Adaptive-strategy state: round+1 when u was first observed holding
    // the leader flag (0 = not currently observed), and the assassin's
    // spent kill budget.
    std::vector<std::uint64_t> leader_seen_;
    std::uint64_t kills_ = 0;

    // Trace record / replay.
    std::unique_ptr<trace_writer> writer_;
    std::unique_ptr<trace_log> replay_;
    std::size_t cursor_ = 0;

    // Reused per-round scratch.
    std::vector<node_id> rewired_;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> moves_;
    std::vector<node_id> crashed_;
    std::vector<membership_event> membership_;
    std::vector<node_id> adaptive_crashed_;

    dynamics_stats stats_;
};

// --- parsing -----------------------------------------------------------------

// Spec-file form (campaign "dynamics" axis entries; docs/DYNAMICS.md):
//   {"name": "storm", "rewire_prob": 0.1, "rewire_period": 0,
//    "edge_down_prob": 0.2, "churn_interval": 8, "protect_backbone": true,
//    "loss_prob": 0.05, "crash_prob": 0.001, "sleep_prob": 0.01,
//    "sleep_rounds": 4, "seed": 0}
// All keys optional except that the entry must either name a preset or
// set at least one knob. A bare {"name": "loss"} resolves the preset.
class json_value;
[[nodiscard]] std::pair<std::string, dynamics_spec> dynamics_from_json(
    const json_value& v);

}  // namespace anole
