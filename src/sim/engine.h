// anole — synchronous CONGEST round engine.
//
// Executes one protocol instance per node of a graph under the model of
// the paper (§2): globally synchronous rounds; per round each node may
// send at most one message per incident link direction; delivery happens
// at the start of the next round; local computation is free.
//
// Anonymity is enforced by construction: protocol code receives a
// `node_ctx` exposing *only* the local degree, port-indexed send, a
// private RNG stream, the round number and a halt switch. Node indices
// exist solely on the engine side for bookkeeping. Tests additionally run
// protocols under randomly permuted port labelings (graph::
// with_permuted_ports) to catch accidental label dependence.
//
// The engine is a class template over the protocol type P, which must
// provide:
//     using message_type = ...;   // copyable, with bit_size() -> size_t
//     void on_round(node_ctx<message_type>& ctx,
//                   inbox_view<message_type> inbox);
//
// The inbox is the list of (arrival port, message) pairs delivered this
// round, in a deterministic but protocol-unobservable order. on_round is
// called every round for every non-halted node. A node that calls
// ctx.halt() is never stepped again and sends nothing.
//
// Cost accounting (sim/metrics.h): every send tallies one message and its
// exact bit size; budget policies (sim/budget.h) reject or fragment
// messages exceeding the per-link CONGEST budget. In fragment mode a
// round's time cost is the worst ⌈bits/budget⌉ over its messages — the
// synchronous network advances at the slowest link's pace, matching the
// paper's own accounting of bit-by-bit potential transmission.
#pragma once

#include <concepts>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "sim/budget.h"
#include "sim/metrics.h"
#include "util/error.h"
#include "util/rng.h"

namespace anole {

template <class M>
concept congest_message = std::copyable<M> && requires(const M& m) {
    { m.bit_size() } -> std::convertible_to<std::size_t>;
};

// Messages delivered to a node this round: (arrival port, payload).
template <congest_message Msg>
using inbox_view = std::span<const std::pair<port_id, Msg>>;

namespace detail {
template <class P>
class engine_access;
}

template <congest_message Msg>
class node_ctx {
public:
    [[nodiscard]] std::size_t degree() const noexcept { return degree_; }
    [[nodiscard]] std::uint64_t round() const noexcept { return round_; }
    [[nodiscard]] xoshiro256ss& rng() noexcept { return *rng_; }

    // Sends `m` through local port `p` (0-based). At most one send per
    // port per round (CONGEST); violations throw anole::error.
    void send(port_id p, Msg m) {
        require(p < degree_, "node_ctx::send: port out of range");
        send_fn_(send_env_, p, std::move(m));
    }

    // Marks this node permanently finished; it is never stepped again.
    void halt() noexcept { halted_flag_ = true; }
    [[nodiscard]] bool halted() const noexcept { return halted_flag_; }

private:
    template <class P>
    friend class engine;

    using send_hook = void (*)(void*, port_id, Msg&&);

    std::size_t degree_ = 0;
    std::uint64_t round_ = 0;
    xoshiro256ss* rng_ = nullptr;
    send_hook send_fn_ = nullptr;
    void* send_env_ = nullptr;
    bool halted_flag_ = false;
};

template <class P>
class engine {
public:
    using message_type = typename P::message_type;
    static_assert(congest_message<message_type>);

    // The engine references (not copies) the graph; keep it alive.
    engine(const graph& g, std::uint64_t seed, congest_budget budget = {})
        : g_(g), budget_(budget), budget_bits_(budget.resolve(g.num_nodes())) {
        const std::size_t n = g_.num_nodes();
        slot_base_.resize(n + 1, 0);
        for (node_id u = 0; u < n; ++u) slot_base_[u + 1] = slot_base_[u] + g_.degree(u);
        sent_stamp_.assign(slot_base_[n], 0);
        cur_in_.resize(n);
        nxt_in_.resize(n);
        rngs_.reserve(n);
        for (node_id u = 0; u < n; ++u) rngs_.emplace_back(derive_seed(seed, u, 0xA0CE));
        halted_.assign(n, 0);
    }

    engine(const engine&) = delete;
    engine& operator=(const engine&) = delete;

    // Constructs the per-node protocol instances: factory(node_index) -> P.
    // The index is for construction-time parameters only; conforming
    // protocols never branch on identity (see the permuted-port tests).
    template <class Factory>
    void spawn(Factory&& factory) {
        require(procs_.empty(), "engine::spawn: already spawned");
        procs_.reserve(g_.num_nodes());
        for (node_id u = 0; u < g_.num_nodes(); ++u) {
            procs_.push_back(factory(static_cast<std::size_t>(u)));
        }
    }

    // --- running ---

    void run_rounds(std::uint64_t k) {
        for (std::uint64_t i = 0; i < k; ++i) step();
    }

    // Runs until every node halted; returns rounds executed. Throws if
    // max_rounds is exceeded.
    std::uint64_t run_until_halted(std::uint64_t max_rounds) {
        return run_until([this] { return halted_count_ == g_.num_nodes(); }, max_rounds);
    }

    // Runs until pred() (checked before each round); returns rounds run.
    template <class Pred>
    std::uint64_t run_until(Pred&& pred, std::uint64_t max_rounds) {
        std::uint64_t done = 0;
        while (!pred()) {
            require(done < max_rounds, "engine::run_until: exceeded max_rounds");
            step();
            ++done;
        }
        return done;
    }

    // One synchronous round.
    void step() {
        require(!procs_.empty(), "engine::step: spawn first");
        const std::size_t n = g_.num_nodes();
        round_max_frag_ = 1;

        for (node_id u = 0; u < n; ++u) {
            if (halted_[u]) continue;
            send_env env{this, u};
            node_ctx<message_type> ctx;
            ctx.degree_ = g_.degree(u);
            ctx.round_ = round_;
            ctx.rng_ = &rngs_[u];
            ctx.send_fn_ = &engine::send_trampoline;
            ctx.send_env_ = &env;
            const auto& in = cur_in_[u];
            procs_[u].on_round(ctx, inbox_view<message_type>{in.data(), in.size()});
            if (ctx.halted_flag_) {
                halted_[u] = 1;
                ++halted_count_;
            }
        }

        // Swap staged messages in; clear previous inboxes.
        for (node_id u = 0; u < n; ++u) cur_in_[u].clear();
        std::swap(cur_in_, nxt_in_);
        metrics_.count_round(round_max_frag_);
        ++round_;
    }

    // --- observation ---

    [[nodiscard]] P& node(std::size_t i) {
        require(i < procs_.size(), "engine::node: out of range");
        return procs_[i];
    }
    [[nodiscard]] const P& node(std::size_t i) const {
        require(i < procs_.size(), "engine::node: out of range");
        return procs_[i];
    }
    [[nodiscard]] std::size_t num_nodes() const noexcept { return g_.num_nodes(); }
    [[nodiscard]] const graph& topology() const noexcept { return g_; }
    [[nodiscard]] sim_metrics& metrics() noexcept { return metrics_; }
    [[nodiscard]] const sim_metrics& metrics() const noexcept { return metrics_; }
    [[nodiscard]] std::uint64_t round() const noexcept { return round_; }
    [[nodiscard]] std::size_t halted_count() const noexcept { return halted_count_; }
    [[nodiscard]] std::uint64_t budget_bits() const noexcept { return budget_bits_; }

    void set_phase(const std::string& name) { metrics_.begin_phase(name); }

private:
    struct send_env {
        engine* self;
        node_id sender;
    };

    static void send_trampoline(void* env_ptr, port_id p, message_type&& m) {
        auto* env = static_cast<send_env*>(env_ptr);
        env->self->do_send(env->sender, p, std::move(m));
    }

    void do_send(node_id u, port_id p, message_type&& m) {
        // One message per port per round.
        auto& stamp = sent_stamp_[slot_base_[u] + p];
        require(stamp != round_ + 1, "CONGEST violation: double send on port");
        stamp = round_ + 1;

        const std::size_t bits = m.bit_size();
        const std::uint64_t frag =
            bits == 0 ? 1 : (bits + budget_bits_ - 1) / budget_bits_;
        if (budget_.mode == budget_mode::strict) {
            require(frag <= 1, "CONGEST violation: message of " + std::to_string(bits) +
                                   " bits exceeds per-round budget of " +
                                   std::to_string(budget_bits_));
        }
        if (budget_.mode == budget_mode::fragment && frag > round_max_frag_) {
            round_max_frag_ = frag;
        }
        metrics_.count_message(bits);
        const node_id v = g_.neighbor(u, p);
        const port_id q = g_.reverse_port(u, p);
        nxt_in_[v].emplace_back(q, std::move(m));
    }

    const graph& g_;
    congest_budget budget_;
    std::uint64_t budget_bits_;
    std::vector<std::size_t> slot_base_;
    std::vector<std::uint64_t> sent_stamp_;  // round_+1 marks "sent this round"
    std::vector<std::vector<std::pair<port_id, message_type>>> cur_in_, nxt_in_;
    std::vector<xoshiro256ss> rngs_;
    std::vector<P> procs_;
    std::vector<char> halted_;
    std::size_t halted_count_ = 0;
    std::uint64_t round_ = 0;
    std::uint64_t round_max_frag_ = 1;
    sim_metrics metrics_;
};

}  // namespace anole
