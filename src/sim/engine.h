// anole — synchronous CONGEST round engine.
//
// Executes one protocol instance per node of a graph under the model of
// the paper (§2): globally synchronous rounds; per round each node may
// send at most one message per incident link direction; delivery happens
// at the start of the next round; local computation is free.
//
// Anonymity is enforced by construction: protocol code receives a
// `node_ctx` exposing *only* the local degree, port-indexed send, a
// private RNG stream, the round number and a halt switch. Node indices
// exist solely on the engine side for bookkeeping. Tests additionally run
// protocols under randomly permuted port labelings (graph::
// with_permuted_ports) to catch accidental label dependence.
//
// The engine is a class template over the protocol type P, which must
// provide:
//     using message_type = ...;   // copyable, default-constructible,
//                                 // with bit_size() -> size_t
//     void on_round(node_ctx<message_type>& ctx,
//                   inbox_view<message_type> inbox);
//
// The inbox is the list of (arrival port, message) pairs delivered this
// round, in a deterministic but protocol-unobservable order. on_round is
// called every round for every non-halted node. A node that calls
// ctx.halt() is never stepped again and sends nothing.
//
// --- message transport: flat single-writer slots ---
//
// The CONGEST invariant — at most one message per (node, port) per round
// — means the whole network's in-flight traffic fits in exactly 2m
// slots, one per directed edge, laid out CSR-style and indexed by the
// *sender*:
//
//     slot(u, p) = slot_base_[u] + p          (p = out-port at u)
//
//     cur_msg_   [ u0.p0 | u0.p1 | u1.p0 | u1.p1 | u1.p2 | ... ]  2m slots
//     cur_stamp_ [   7   |   -   |   -   |   7   |   7   | ... ]  parallel
//
// A slot holds a live message iff its stamp equals the current round's
// delivery mark (round + 1; stamps only ever grow, so nothing is ever
// cleared). Sender-major order makes the expensive half of transport —
// the writes — perfectly dense: staging a send is two stores into the
// node's own contiguous slot ranges (a double send is caught as a
// repeated stamp right there), and a whole round's staging is a single
// sequential pass over the buffers. Delivery is the cheap half: node v's
// inbox gathers through the precomputed peer-slot table
// (peer[slot(v, q)] = slot(u, p), an involution) — scattered *reads*,
// which dirty no cache lines and land in the compact stamp/message
// arrays rather than padded structs. End of round, the cur/nxt buffers
// swap in O(1). Compared to per-node inbox vectors this removes all
// per-message heap traffic, the per-send engine round-trip and metrics
// work, the scattered delivery stores, and the O(n) per-round clear.
//
// Because every slot has a unique writer and every node draws from a
// private RNG stream, rounds can also be sharded across a thread pool
// with results bitwise-identical to serial execution — see
// set_parallelism() / engine_parallelism below ("--node-jobs" in the
// benches). Per-shard cost counters are reduced deterministically after
// the barrier.
//
// Cost accounting (sim/metrics.h): every send tallies one message and its
// exact bit size; budget policies (sim/budget.h) reject or fragment
// messages exceeding the per-link CONGEST budget. In fragment mode a
// round's time cost is the worst ⌈bits/budget⌉ over its messages — the
// synchronous network advances at the slowest link's pace, matching the
// paper's own accounting of bit-by-bit potential transmission.
//
// CONGEST-guard checks (port range, double send) are hard errors in
// Debug builds and compiled out in Release — the tier-1 test suite runs
// Debug, so protocol violations are still caught where it matters, while
// the measured hot path carries no per-send branch for them. Budget
// violations are *model semantics*, not guards, and throw in every
// configuration.
#pragma once

#include <algorithm>
#include <concepts>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "sim/budget.h"
#include "sim/dynamics.h"
#include "sim/metrics.h"
#include "sim/thread_pool.h"
#include "util/error.h"
#include "util/rng.h"

namespace anole {

template <class M>
concept congest_message = std::copyable<M> && std::default_initializable<M> &&
                          requires(const M& m) {
    { m.bit_size() } -> std::convertible_to<std::size_t>;
};

// True when the engine validates protocol behaviour (port range, one send
// per port per round) with throwing checks. Debug only; Release trusts
// protocol code and compiles the guards out (tests that provoke
// violations must skip themselves when this is false).
#ifndef NDEBUG
inline constexpr bool congest_guard_checks = true;
#else
inline constexpr bool congest_guard_checks = false;
#endif

// Messages delivered to a node this round, as (arrival port, payload)
// pairs. A lightweight view over the node's arrival ports: port q's
// message, if any, sits in the *sender's* staging slot (located via the
// precomputed peer-slot table) and is live iff its stamp matches this
// round's delivery mark. Stamps and payloads live in separate dense
// arrays so the stamp gathers touch a small array that stays cached.
// Iteration order is ascending port — deterministic, but protocols must
// not (and cannot) attribute meaning to it beyond the port labels.
template <congest_message Msg>
class inbox_view {
public:
    class iterator {
    public:
        using value_type = std::pair<port_id, const Msg&>;

        value_type operator*() const noexcept {
            return {pos_, view_->msgs_[view_->peer_[pos_]]};
        }
        iterator& operator++() noexcept {
            ++pos_;
            skip();
            return *this;
        }
        [[nodiscard]] bool operator==(const iterator& o) const noexcept {
            return pos_ == o.pos_;
        }
        [[nodiscard]] bool operator!=(const iterator& o) const noexcept {
            return pos_ != o.pos_;
        }

    private:
        friend class inbox_view;
        iterator(const inbox_view* view, port_id pos) noexcept : view_(view), pos_(pos) {
            skip();
        }
        void skip() noexcept {
            while (pos_ < view_->degree_ &&
                   view_->stamps_[view_->peer_[pos_]] != view_->mark_) {
                ++pos_;
            }
        }
        const inbox_view* view_;
        port_id pos_;
    };

    inbox_view() noexcept = default;  // empty
    inbox_view(const Msg* msgs, const std::uint32_t* stamps, const std::uint32_t* peer,
               std::uint32_t mark, port_id degree) noexcept
        : msgs_(msgs), stamps_(stamps), peer_(peer), mark_(mark), degree_(degree) {}

    [[nodiscard]] iterator begin() const noexcept { return iterator(this, 0); }
    [[nodiscard]] iterator end() const noexcept { return iterator(this, degree_); }

    // Number of delivered messages. O(degree) stamp gather on first call,
    // cached afterwards (iteration is O(degree) anyway).
    [[nodiscard]] std::size_t size() const noexcept {
        if (count_ == unknown) {
            std::uint32_t c = 0;
            for (port_id p = 0; p < degree_; ++p) {
                c += stamps_[peer_[p]] == mark_ ? 1 : 0;
            }
            count_ = c;
        }
        return count_;
    }
    [[nodiscard]] bool empty() const noexcept {
        if (count_ != unknown) return count_ == 0;
        for (port_id p = 0; p < degree_; ++p) {
            if (stamps_[peer_[p]] == mark_) return false;
        }
        count_ = 0;
        return true;
    }

private:
    static constexpr std::uint32_t unknown = 0xffffffffu;

    const Msg* msgs_ = nullptr;
    const std::uint32_t* stamps_ = nullptr;
    const std::uint32_t* peer_ = nullptr;
    std::uint32_t mark_ = 0;
    port_id degree_ = 0;
    mutable std::uint32_t count_ = unknown;
};

// --- intra-instance parallelism ---------------------------------------------
//
// engine<P>::step() can shard its node loop over a thread pool. The
// single-writer slot layout plus per-node RNG streams make the sharded
// round bitwise-identical to the serial one, so this is purely a
// wall-clock knob for large instances — orthogonal to the runner's
// repetition-level `--jobs`. The ambient (thread-local) default lets the
// ScenarioRunner plumb `--node-jobs` to engines constructed deep inside
// the algorithm drivers without threading a parameter through every one.

struct engine_parallelism {
    thread_pool* pool = nullptr;  // borrowed; nullptr => engine owns workers
    std::size_t node_jobs = 1;    // shard count; <= 1 means serial
};

[[nodiscard]] inline engine_parallelism& ambient_engine_parallelism() noexcept {
    thread_local engine_parallelism cfg;
    return cfg;
}

// RAII: sets the ambient default for engines constructed in this scope
// (on this thread), restoring the previous value on exit.
class scoped_engine_parallelism {
public:
    explicit scoped_engine_parallelism(engine_parallelism next) noexcept
        : prev_(ambient_engine_parallelism()) {
        ambient_engine_parallelism() = next;
    }
    ~scoped_engine_parallelism() { ambient_engine_parallelism() = prev_; }
    scoped_engine_parallelism(const scoped_engine_parallelism&) = delete;
    scoped_engine_parallelism& operator=(const scoped_engine_parallelism&) = delete;

private:
    engine_parallelism prev_;
};

namespace detail {
// Per-round (per-shard when rounds are sharded) cost accumulator; the
// engine flushes it into sim_metrics once per round so the send hot path
// never touches the phase map.
struct engine_round_acc {
    std::uint64_t messages = 0;
    std::uint64_t bits = 0;
    std::uint64_t max_frag = 1;
    std::size_t newly_halted = 0;
    std::exception_ptr error;
};
}  // namespace detail

template <congest_message Msg>
class node_ctx {
public:
    [[nodiscard]] std::size_t degree() const noexcept { return degree_; }
    [[nodiscard]] std::uint64_t round() const noexcept { return round_; }
    [[nodiscard]] xoshiro256ss& rng() noexcept { return *rng_; }

    // Sends `m` through local port `p` (0-based). At most one send per
    // port per round (CONGEST); violations throw anole::error in Debug
    // builds and are undefined in Release (see congest_guard_checks).
    //
    // Fully inline: a send is a stamp store plus a message store into the
    // node's own contiguous out-slots — no engine round-trip, no table
    // lookup, no scattered write — with cost counters kept right here in
    // the (stack-hot) context and folded into the round totals after
    // on_round returns.
    void send(port_id p, Msg m) {
        if constexpr (congest_guard_checks) {
            require(p < degree_, "node_ctx::send: port out of range");
        }
        if constexpr (congest_guard_checks) {
            require(out_stamp_[p] != stamp_, "CONGEST violation: double send on port");
        }
        const std::size_t bits = m.bit_size();
        if (bits > budget_bits_) [[unlikely]] {
            // Oversize: reject (strict) or charge fragmentation rounds.
            // Fitting messages — the designed-for case — skip the division.
            if (budget_mode_ == budget_mode::strict) {
                require(false, "CONGEST violation: message of " +
                                   std::to_string(bits) +
                                   " bits exceeds per-round budget of " +
                                   std::to_string(budget_bits_));
            }
            if (budget_mode_ == budget_mode::fragment) {
                const std::uint64_t frag = (bits + budget_bits_ - 1) / budget_bits_;
                if (frag > max_frag_) max_frag_ = frag;
            }
        }
        ++messages_;
        bits_ += bits;
        out_stamp_[p] = stamp_;
        out_msg_[p] = std::move(m);
    }

    // Marks this node permanently finished; it is never stepped again.
    void halt() noexcept { halted_flag_ = true; }
    [[nodiscard]] bool halted() const noexcept { return halted_flag_; }

private:
    template <class P>
    friend class engine;

    std::size_t degree_ = 0;
    std::uint64_t round_ = 0;
    xoshiro256ss* rng_ = nullptr;
    // Staging: this node's contiguous out-slot ranges in the next round's
    // flat buffers (see the engine's transport comment).
    std::uint32_t* out_stamp_ = nullptr;
    Msg* out_msg_ = nullptr;
    std::uint32_t stamp_ = 0;
    std::uint64_t budget_bits_ = 0;
    budget_mode budget_mode_ = budget_mode::count_only;
    // Per-node cost counters, folded into the round accumulator by the
    // engine after on_round.
    std::uint64_t messages_ = 0;
    std::uint64_t bits_ = 0;
    std::uint64_t max_frag_ = 1;
    bool halted_flag_ = false;
};

template <class P>
class engine {
    using round_acc = detail::engine_round_acc;

public:
    using message_type = typename P::message_type;
    static_assert(congest_message<message_type>);

    // The engine references (not copies) the graph; keep it alive.
    engine(const graph& g, std::uint64_t seed, congest_budget budget = {})
        : g_(g), budget_(budget), budget_bits_(budget.resolve(g.num_nodes())),
          par_(ambient_engine_parallelism()) {
        const std::size_t n = g_.num_nodes();
        slot_base_.resize(n + 1, 0);
        for (node_id u = 0; u < n; ++u) slot_base_[u + 1] = slot_base_[u] + g_.degree(u);
        const std::size_t slots = slot_base_[n];
        require(slots < 0xffffffffull, "engine: > 2^32 directed edges unsupported");
        cur_msg_.resize(slots);
        nxt_msg_.resize(slots);
        cur_stamp_.assign(slots, 0);
        nxt_stamp_.assign(slots, 0);
        // Peer slot per directed edge: where the other end of (u, p)
        // stages its messages. Precomputed so inbox gathers are one table
        // load instead of neighbor + reverse-port + offset arithmetic.
        // (The map is an involution: peer[peer[s]] == s.)
        peer_slot_.resize(slots);
        for (node_id u = 0; u < n; ++u) {
            const auto deg = static_cast<port_id>(g_.degree(u));
            for (port_id p = 0; p < deg; ++p) {
                peer_slot_[slot_base_[u] + p] = static_cast<std::uint32_t>(
                    slot_base_[g_.neighbor(u, p)] + g_.reverse_port(u, p));
            }
        }
        rngs_.reserve(n);
        for (node_id u = 0; u < n; ++u) rngs_.emplace_back(derive_seed(seed, u, 0xA0CE));
        halted_.assign(n, 0);
        present_.assign(n, 1);
        crashed_.assign(n, 0);
        present_count_ = n;
    }

    engine(const engine&) = delete;
    engine& operator=(const engine&) = delete;

    // Overrides the ambient parallelism for this engine: shard rounds
    // `node_jobs` ways over `pool` (nullptr = engine-owned workers).
    void set_parallelism(thread_pool* pool, std::size_t node_jobs) {
        par_.pool = pool;
        par_.node_jobs = node_jobs;
        owned_pool_.reset();
    }
    [[nodiscard]] std::size_t node_jobs() const noexcept { return par_.node_jobs; }

    // Attaches the dynamic-network adversary (sim/dynamics.h). Must be
    // called before the first step(); the whole event schedule is a pure
    // function of (spec, run_seed), applied in a serial pre-round pass so
    // sharded rounds stay bitwise-identical to serial ones.
    void set_dynamics(const dynamics_spec& spec, std::uint64_t run_seed) {
        require(round_ == 0, "engine::set_dynamics: call before the first round");
        if (spec.enabled()) {
            dyn_ = std::make_unique<dynamics_state>(g_, spec, run_seed);
        } else {
            dyn_.reset();
        }
    }
    [[nodiscard]] const dynamics_state* dynamics() const noexcept { return dyn_.get(); }

    // Constructs the per-node protocol instances: factory(node_index) -> P.
    // The index is for construction-time parameters only; conforming
    // protocols never branch on identity (see the permuted-port tests).
    // The factory is retained: membership churn respawns a fresh instance
    // when a departed node rejoins.
    template <class Factory>
    void spawn(Factory&& factory) {
        require(procs_.empty(), "engine::spawn: already spawned");
        factory_ = std::function<P(std::size_t)>(std::forward<Factory>(factory));
        procs_.reserve(g_.num_nodes());
        for (node_id u = 0; u < g_.num_nodes(); ++u) {
            procs_.push_back(factory_(static_cast<std::size_t>(u)));
        }
    }

    // Installs the per-node protocol-status probe the adaptive adversary
    // (and the recovery oracles) observe. Drivers translate their own
    // observers into node_status; the probe is only consulted in the
    // serial pre-round pass, never from sharded rounds.
    void set_status_probe(std::function<node_status(std::size_t)> probe) {
        probe_ = std::move(probe);
    }

    // --- running ---

    void run_rounds(std::uint64_t k) {
        for (std::uint64_t i = 0; i < k; ++i) step();
    }

    // Runs until every present node halted; returns rounds executed.
    // Throws if max_rounds is exceeded, or with a `no_live_nodes` verdict
    // if the whole membership departed.
    std::uint64_t run_until_halted(std::uint64_t max_rounds) {
        return run_until(
            [this] { return present_count_ > 0 && halted_count_ == present_count_; },
            max_rounds);
    }

    // Runs until pred() (checked before each round); returns rounds run.
    template <class Pred>
    std::uint64_t run_until(Pred&& pred, std::uint64_t max_rounds) {
        std::uint64_t done = 0;
        while (!pred()) {
            require(done < max_rounds, "engine::run_until: exceeded max_rounds");
            // Once no live node remains (every present node halted —
            // protocol halts plus crashes — or everyone left), protocol
            // state is frozen: further rounds can never satisfy the
            // predicate. Fail now instead of spinning to max_rounds —
            // under crash/leave faults this is what turns a dead network
            // into a bounded verdict instead of a multi-million-round
            // spin.
            require(live_count() > 0,
                    "engine::run_until: no_live_nodes — every node halted, crashed "
                    "or left without satisfying the predicate");
            step();
            ++done;
        }
        return done;
    }

    // One synchronous round.
    void step() {
        require(!procs_.empty(), "engine::step: spawn first");
        // 32-bit stamps bound the round count; generous next to the
        // largest budget in the tree (revocable's 3e7) but cheap to keep
        // honest.
        require(round_ < 0xfffffffdull, "engine::step: stamp space exhausted");
        if (dyn_) apply_dynamics();
        const std::size_t n = g_.num_nodes();
        const std::size_t shards =
            par_.node_jobs <= 1 ? 1 : std::min(par_.node_jobs, n);

        round_acc total;
        try {
            run_shards(n, shards, total);
        } catch (...) {
            // Mid-round failure (e.g. a strict-budget violation): nodes
            // that halted earlier this round already have their flag set
            // but their deferred count update never ran. Recount (among
            // present nodes — halted_count_'s domain) so it stays
            // consistent for callers that inspect the engine after
            // catching the error.
            std::size_t halted = 0;
            for (node_id u = 0; u < g_.num_nodes(); ++u) {
                if (present_[u] && halted_[u]) ++halted;
            }
            halted_count_ = halted;
            throw;
        }

        halted_count_ += total.newly_halted;
        std::swap(cur_msg_, nxt_msg_);
        std::swap(cur_stamp_, nxt_stamp_);
        metrics_.count_messages(total.messages, total.bits);
        metrics_.count_round(total.max_frag);
        ++round_;
    }

private:
    // The serial pre-round adversary pass (see sim/dynamics.h), in the
    // fixed phase order trace record/replay relies on: re-wires ports
    // (relocating in-flight payloads alongside their slots, so the
    // peer_slot_ involution and physical delivery stay exact), applies
    // membership churn, runs the adaptive strategy against a fresh status
    // snapshot, kills messages on down/lossy edges, and folds crashes
    // into the halted set. Runs before shards fork; nothing here touches
    // node RNG streams.
    void apply_dynamics() {
        const auto mark = static_cast<std::uint32_t>(round_ + 1);
        const auto& moves = dyn_->plan_rewire(round_, peer_slot_, halted_, present_);
        if (!moves.empty()) {
            // Gather payloads at old slots, then scatter to new ones —
            // cycles in the slot permutation make in-place moves unsafe.
            move_msg_.clear();
            move_stamp_.clear();
            for (const auto& [src, dst] : moves) {
                move_msg_.push_back(std::move(cur_msg_[src]));
                move_stamp_.push_back(cur_stamp_[src]);
            }
            for (std::size_t i = 0; i < moves.size(); ++i) {
                cur_msg_[moves[i].second] = std::move(move_msg_[i]);
                cur_stamp_[moves[i].second] = move_stamp_[i];
            }
        }
        for (const membership_event& ev :
             dyn_->plan_membership(round_, mark, halted_, present_, cur_stamp_)) {
            if (ev.join) {
                // The node reattaches on its footprint edges with a fresh
                // protocol instance; its halted contribution was already
                // removed at departure, so only the flags reset here.
                present_[ev.u] = 1;
                ++present_count_;
                halted_[ev.u] = 0;
                crashed_[ev.u] = 0;
                respawn(ev.u);
            } else {
                present_[ev.u] = 0;
                --present_count_;
                if (halted_[ev.u]) --halted_count_;
            }
        }
        if (dyn_->wants_status()) {
            const std::size_t n = g_.num_nodes();
            decided_flags_.assign(n, 0);
            leader_flags_.assign(n, 0);
            if (probe_) {
                for (node_id u = 0; u < n; ++u) {
                    if (!present_[u]) continue;
                    const node_status st = probe_(static_cast<std::size_t>(u));
                    decided_flags_[u] = st.decided ? 1 : 0;
                    leader_flags_[u] = st.leader ? 1 : 0;
                }
            }
        }
        for (const node_id u : dyn_->plan_adaptive(round_, mark, cur_stamp_, halted_,
                                                   present_, decided_flags_,
                                                   leader_flags_)) {
            halted_[u] = 1;  // assassination: a crash, permanently silent
            crashed_[u] = 1;
            ++halted_count_;
        }
        dyn_->apply_message_faults(round_, mark, cur_stamp_);
        for (const node_id u : dyn_->plan_node_faults(round_, halted_, present_)) {
            halted_[u] = 1;  // crash: permanently silent, counts as halted
            crashed_[u] = 1;
            ++halted_count_;
        }
    }

    // Replaces u's protocol instance with a freshly constructed one (its
    // RNG stream continues — streams are per node index, not per
    // incarnation, so determinism is unaffected).
    void respawn(node_id u) {
        if constexpr (std::is_move_assignable_v<P>) {
            procs_[u] = factory_(static_cast<std::size_t>(u));
        } else {
            std::destroy_at(&procs_[u]);
            std::construct_at(&procs_[u], factory_(static_cast<std::size_t>(u)));
        }
    }

    // The body of one round: process every shard and reduce its costs
    // into `total`; throws propagate (first shard wins in sharded mode).
    void run_shards(std::size_t n, std::size_t shards, round_acc& total) {
        if (shards <= 1) {
            process_range(0, static_cast<node_id>(n), total);
        } else {
            accs_.clear();
            accs_.resize(shards);
            thread_pool& pool = shard_pool();
            pool.parallel_for(shards, [&](std::size_t s) {
                const node_id lo = static_cast<node_id>(n * s / shards);
                const node_id hi = static_cast<node_id>(n * (s + 1) / shards);
                // Accumulate on the worker's own stack; adjacent accs_
                // elements share cache lines, so writing them per node
                // would false-share across shards.
                round_acc local;
                try {
                    process_range(lo, hi, local);
                } catch (...) {
                    local.error = std::current_exception();
                }
                accs_[s] = std::move(local);
            });
            // Deterministic reduction in shard order; sums and max are
            // order-free, so this matches the serial totals exactly.
            for (const auto& a : accs_) {
                if (a.error) std::rethrow_exception(a.error);
                total.messages += a.messages;
                total.bits += a.bits;
                total.newly_halted += a.newly_halted;
                if (a.max_frag > total.max_frag) total.max_frag = a.max_frag;
            }
        }
    }

public:
    // --- observation ---

    [[nodiscard]] P& node(std::size_t i) {
        require(i < procs_.size(), "engine::node: out of range");
        return procs_[i];
    }
    [[nodiscard]] const P& node(std::size_t i) const {
        require(i < procs_.size(), "engine::node: out of range");
        return procs_[i];
    }
    [[nodiscard]] std::size_t num_nodes() const noexcept { return g_.num_nodes(); }
    [[nodiscard]] const graph& topology() const noexcept { return g_; }
    [[nodiscard]] sim_metrics& metrics() noexcept { return metrics_; }
    [[nodiscard]] const sim_metrics& metrics() const noexcept { return metrics_; }
    [[nodiscard]] std::uint64_t round() const noexcept { return round_; }
    // Halted among *present* nodes (protocol halts plus crashes).
    [[nodiscard]] std::size_t halted_count() const noexcept { return halted_count_; }
    // Membership view: present = currently part of the network; live =
    // present and not halted; crashed = silenced by a fault (still
    // present — a crashed node occupies its place, a departed one does
    // not).
    [[nodiscard]] std::size_t present_count() const noexcept { return present_count_; }
    [[nodiscard]] std::size_t live_count() const noexcept {
        return present_count_ - halted_count_;
    }
    [[nodiscard]] bool node_present(std::size_t u) const noexcept {
        return present_[u] != 0;
    }
    [[nodiscard]] bool node_crashed(std::size_t u) const noexcept {
        return crashed_[u] != 0;
    }
    [[nodiscard]] bool node_halted(std::size_t u) const noexcept {
        return halted_[u] != 0;
    }
    [[nodiscard]] std::uint64_t budget_bits() const noexcept { return budget_bits_; }

    void set_phase(const std::string& name) { metrics_.begin_phase(name); }

private:
    // Runs on_round for every live node in [lo, hi), staging sends and
    // accumulating costs into `acc`. In sharded rounds each shard owns a
    // disjoint range; all cross-shard writes land in slots owned by
    // exactly one (sender, port) pair, so ranges never contend.
    void process_range(node_id lo, node_id hi, round_acc& acc) {
        const auto mark = static_cast<std::uint32_t>(round_ + 1);
        const auto stamp = static_cast<std::uint32_t>(round_ + 2);
        for (node_id u = lo; u < hi; ++u) {
            if (halted_[u] || !present_[u]) continue;
            // Sleeping nodes skip the round entirely; messages delivered
            // to them this round expire unread (stamps only grow).
            // asleep() is read-only, so the shard stays race-free.
            if (dyn_ && dyn_->asleep(u, round_)) continue;
            const std::size_t base = slot_base_[u];
            node_ctx<message_type> ctx;
            ctx.degree_ = g_.degree(u);
            ctx.round_ = round_;
            ctx.rng_ = &rngs_[u];
            ctx.out_stamp_ = nxt_stamp_.data() + base;
            ctx.out_msg_ = nxt_msg_.data() + base;
            ctx.stamp_ = stamp;
            ctx.budget_bits_ = budget_bits_;
            ctx.budget_mode_ = budget_.mode;
            procs_[u].on_round(
                ctx, inbox_view<message_type>{cur_msg_.data(), cur_stamp_.data(),
                                              peer_slot_.data() + base, mark,
                                              static_cast<port_id>(ctx.degree_)});
            acc.messages += ctx.messages_;
            acc.bits += ctx.bits_;
            if (ctx.max_frag_ > acc.max_frag) acc.max_frag = ctx.max_frag_;
            if (ctx.halted_flag_) {
                halted_[u] = 1;
                ++acc.newly_halted;
            }
        }
    }

    // The pool rounds are sharded over: the configured one, else an
    // engine-owned pool created on first parallel step.
    [[nodiscard]] thread_pool& shard_pool() {
        if (par_.pool != nullptr) return *par_.pool;
        if (!owned_pool_) owned_pool_ = std::make_unique<thread_pool>(par_.node_jobs);
        return *owned_pool_;
    }

    const graph& g_;
    congest_budget budget_;
    std::uint64_t budget_bits_;
    engine_parallelism par_;
    std::unique_ptr<thread_pool> owned_pool_;
    std::vector<std::size_t> slot_base_;  // n+1 CSR offsets into the 2m slots
    std::vector<std::uint32_t> peer_slot_;  // the reverse directed edge's slot
    // Flat slot transport: one message + one stamp per directed edge,
    // double-buffered and swapped each round. A slot is live iff its
    // stamp == round + 1.
    std::vector<message_type> cur_msg_, nxt_msg_;
    std::vector<std::uint32_t> cur_stamp_, nxt_stamp_;
    std::vector<xoshiro256ss> rngs_;
    std::vector<P> procs_;
    std::function<P(std::size_t)> factory_;  // retained for membership respawns
    std::vector<char> halted_;
    std::vector<char> present_;  // 0 = departed (left the network)
    std::vector<char> crashed_;  // 1 = silenced by a crash fault
    // Status snapshot for the adaptive adversary, refreshed serially
    // pre-round when a strategy wants it (empty otherwise).
    std::function<node_status(std::size_t)> probe_;
    std::vector<char> decided_flags_, leader_flags_;
    std::vector<round_acc> accs_;  // reused shard accumulators
    std::unique_ptr<dynamics_state> dyn_;  // nullptr = static network
    // Reused gather buffers for relocating in-flight payloads on rewire.
    std::vector<message_type> move_msg_;
    std::vector<std::uint32_t> move_stamp_;
    std::size_t halted_count_ = 0;
    std::size_t present_count_ = 0;
    std::uint64_t round_ = 0;
    sim_metrics metrics_;
};

}  // namespace anole
