// E11 — ablation of the cautious-broadcast design choices the paper's §4
// highlights: doubling-threshold throttling, the x·tmix·Φ cap, and the
// printed-pseudocode variant (size reports every round).
//
// Arms:
//   prose     — threshold-triggered reports (our default; Lemma 1 shape)
//   literal   — Algorithm 4 line 24 as printed: report every round
//   no-cap    — prose machinery, unbounded territory
//   naive     — uncautious flood (extend on all ports, no throttle)
#include "bench/common.h"

using namespace anole;
using namespace anole::bench;

int main(int argc, char** argv) {
    const options opt = options::parse(argc, argv);
    const std::size_t seeds = opt.seeds_or(3);
    scenario_runner runner = opt.make_runner();

    std::vector<graph> graphs;
    graphs.push_back(opt.quick ? make_torus(10, 10) : make_torus(20, 20));
    if (!opt.quick) graphs.push_back(make_random_regular(400, 4, 1));

    struct arm {
        const char* name;
        cautious_cfg cfg;
    };
    std::vector<arm> arms;
    {
        cautious_cfg prose;
        prose.cap_x = 8.0;  // cap = max(2, ⌈8·tmix·Φ⌉)
        arms.push_back({"prose (default)", prose});
        cautious_cfg literal = prose;
        literal.config.report_every_round = true;
        arms.push_back({"literal pseudocode", literal});
        cautious_cfg nocap;  // cap stays UINT64_MAX
        arms.push_back({"no cap", nocap});
        cautious_cfg naive;
        naive.config.throttle = false;
        naive.config.extend_all = true;
        arms.push_back({"naive flood", naive});
    }

    std::vector<scenario> batch;
    for (const graph& g : graphs) {
        for (const auto& a : arms) {
            batch.push_back(scenario{"", &g, a.cfg, 1800, seeds});
        }
    }
    const auto results = runner.run_batch(batch);

    text_table t({"graph", "arm", "territory", "messages", "bits",
                  "msgs/territory"});
    std::size_t idx = 0;
    for (const graph& g : graphs) {
        for (const auto& a : arms) {
            const auto& res = results[idx++];
            sample_stats terr;
            for (const auto& run : res.runs) {
                if (run.ok) {
                    terr.add(static_cast<double>(
                        std::get<cb_result>(run.detail).territory));
                }
            }
            const sample_stats msgs = res.messages();
            t.add_row({g.name(), a.name, fmt_fixed(terr.mean(), 0),
                       fmt_mean_sd(msgs),
                       fmt_count(static_cast<std::uint64_t>(res.bits().mean())),
                       fmt_fixed(msgs.mean() / std::max(terr.mean(), 1.0), 1)});
        }
    }

    emit(t, opt, "E11: cautious-broadcast ablation (cap = 8*tmix*phi)");
    std::printf("\nShape checks: 'literal' pays a large msgs/territory factor"
                "\n(every-round size reports — the deviation DESIGN.md documents);"
                "\n'no cap' grows the territory unboundedly; 'naive' reaches"
                "\neveryone but costs >= m messages. 'prose' keeps messages"
                "\nnear-linear in territory (Lemma 1).\n");
    return 0;
}
