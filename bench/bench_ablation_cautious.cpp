// E11 — ablation of the cautious-broadcast design choices the paper's §4
// highlights: doubling-threshold throttling, the x·tmix·Φ cap, and the
// printed-pseudocode variant (size reports every round).
//
// Arms:
//   prose     — threshold-triggered reports (our default; Lemma 1 shape)
//   literal   — Algorithm 4 line 24 as printed: report every round
//   no-cap    — prose machinery, unbounded territory
//   naive     — uncautious flood (extend on all ports, no throttle)
#include "bench/common.h"

#include <cmath>

#include "core/cautious_broadcast.h"

using namespace anole;
using namespace anole::bench;

namespace {

struct arm_result {
    std::size_t territory = 0;
    std::uint64_t messages = 0;
    std::uint64_t bits = 0;
};

arm_result run_arm(const graph& g, cb_config cfg, std::uint64_t rounds,
                   std::uint64_t seed) {
    engine<cautious_broadcast_node> eng(g, seed, congest_budget::strict_log(16));
    eng.spawn([&](std::size_t u) {
        return cautious_broadcast_node(g.degree(static_cast<node_id>(u)), u == 0,
                                       777, cfg, rounds);
    });
    eng.run_until_halted(rounds + 2);
    arm_result out;
    out.messages = eng.metrics().total().messages;
    out.bits = eng.metrics().total().bits;
    for (std::size_t u = 0; u < g.num_nodes(); ++u) {
        if (eng.node(u).exec().in_tree()) ++out.territory;
    }
    return out;
}

}  // namespace

int main(int argc, char** argv) {
    const options opt = options::parse(argc, argv);
    const std::size_t seeds = opt.seeds_or(3);
    profile_cache profiles;

    std::vector<graph> graphs;
    graphs.push_back(opt.quick ? make_torus(10, 10) : make_torus(20, 20));
    if (!opt.quick) graphs.push_back(make_random_regular(400, 4, 1));

    text_table t({"graph", "arm", "territory", "messages", "bits",
                  "msgs/territory"});

    for (const graph& g : graphs) {
        const auto& prof = profiles.get(g);
        const std::uint64_t cap = std::max<std::uint64_t>(
            2, static_cast<std::uint64_t>(8.0 *
                                          static_cast<double>(prof.mixing_time) *
                                          prof.conductance));
        const auto rounds = static_cast<std::uint64_t>(
            static_cast<double>(prof.mixing_time) *
            std::log2(static_cast<double>(prof.n)));

        struct arm {
            const char* name;
            cb_config cfg;
        };
        std::vector<arm> arms;
        {
            cb_config prose;
            prose.cap = cap;
            arms.push_back({"prose (default)", prose});
            cb_config literal = prose;
            literal.report_every_round = true;
            arms.push_back({"literal pseudocode", literal});
            cb_config nocap;
            nocap.cap = UINT64_MAX;
            arms.push_back({"no cap", nocap});
            cb_config naive;
            naive.cap = UINT64_MAX;
            naive.throttle = false;
            naive.extend_all = true;
            arms.push_back({"naive flood", naive});
        }

        for (const auto& [name, cfg] : arms) {
            sample_stats terr, msgs, bits;
            for (std::size_t s = 0; s < seeds; ++s) {
                const auto r = run_arm(g, cfg, rounds, 1800 + s);
                terr.add(static_cast<double>(r.territory));
                msgs.add(static_cast<double>(r.messages));
                bits.add(static_cast<double>(r.bits));
            }
            t.add_row({g.name(), name, fmt_fixed(terr.mean(), 0), fmt_mean_sd(msgs),
                       fmt_count(static_cast<std::uint64_t>(bits.mean())),
                       fmt_fixed(msgs.mean() / std::max(terr.mean(), 1.0), 1)});
        }
    }

    emit(t, opt, "E11: cautious-broadcast ablation (cap = 8*tmix*phi)");
    std::printf("\nShape checks: 'literal' pays a large msgs/territory factor"
                "\n(every-round size reports — the deviation DESIGN.md documents);"
                "\n'no cap' grows the territory unboundedly; 'naive' reaches"
                "\neveryone but costs >= m messages. 'prose' keeps messages"
                "\nnear-linear in territory (Lemma 1).\n");
    return 0;
}
