// Profile-pipeline benchmark + perf-regression gate.
//
// Measures the topology-measurement prologue every campaign pays —
// profile() in graph/spectral.h — against its pre-Lanczos predecessor,
// replicated here so the before/after is measured, not recalled:
//
//   1. profile pipeline — end-to-end profile() (Lanczos eigenpair, shared
//      Fiedler sweep, cost-model tmix, n·m-budgeted diameter) vs the
//      legacy path: power iteration with the fixed 40·n·ln n budget run
//      three times (λ₂ + two Fiedler computations), a serial dense §2
//      simulation from every extremal start, and all-pairs BFS for every
//      n <= 4096. The legacy side is *measured capped and extrapolated*
//      (its full run is minutes to hours — the point of this PR); the
//      extrapolation factors are deterministic iteration/step counts, so
//      the printed "legacy s (est)" is an honest lower bound (the old
//      early-exit check's extra matvec every 32 iters is included, its
//      possible early stop is not — it never fired on low-gap families).
//   2. profile at scale — wall-clock for full profiles at n = 10^5.
//   3. estimator agreement — Lanczos vs power-iteration λ₂, and the
//      sampled-walk tmix vs the exact §2 evaluation, as identity gates.
//
// The committed baseline lives at BENCH_PROFILE.json in the repo root;
// CI regenerates and gates against it like BENCH_ENGINE.json: speedup
// ratios may not fall below baseline/3 (same-host ratios, so runner
// speed cancels), agreement columns must stay "yes".
//
// Flags: --quick | --csv | --json | --json-out FILE | --check FILE | --jobs N
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "graph/generators.h"
#include "graph/lanczos.h"
#include "graph/properties.h"
#include "graph/spectral.h"
#include "sim/thread_pool.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/table.h"

namespace anole {
namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

// --- legacy replica ----------------------------------------------------------
//
// The pre-Lanczos spectral path, replicated faithfully: scatter-form
// symmetrized matvec, deflation against √d, fixed iteration budget
// min(40·n·ln(n+2), 4e6)+100 with no residual exit.

std::vector<double> legacy_sym_step(const graph& g, const std::vector<double>& x,
                                    const std::vector<double>& inv_sqrt_d) {
    std::vector<double> y(x.size(), 0.0);
    for (node_id u = 0; u < g.num_nodes(); ++u) {
        y[u] += 0.5 * x[u];
        const double xu = 0.5 * x[u] * inv_sqrt_d[u];
        for (node_id v : g.neighbors(u)) y[v] += xu * inv_sqrt_d[v];
    }
    return y;
}

double legacy_norm2(const std::vector<double>& v) {
    double s = 0;
    for (double x : v) s += x * x;
    return std::sqrt(s);
}

void legacy_deflate(std::vector<double>& v, const std::vector<double>& top) {
    double dot = 0;
    for (std::size_t i = 0; i < v.size(); ++i) dot += v[i] * top[i];
    for (std::size_t i = 0; i < v.size(); ++i) v[i] -= dot * top[i];
}

std::uint64_t legacy_auto_iters(std::size_t n) {
    const double nn = static_cast<double>(n);
    return static_cast<std::uint64_t>(std::min(40.0 * nn * std::log(nn + 2.0), 4.0e6)) +
           100;
}

// Times `cap` legacy power iterations; the caller extrapolates.
double legacy_power_seconds(const graph& g, std::uint64_t cap) {
    const std::size_t n = g.num_nodes();
    std::vector<double> inv_sqrt_d(n), top(n);
    for (node_id u = 0; u < n; ++u) {
        inv_sqrt_d[u] = 1.0 / std::sqrt(static_cast<double>(g.degree(u)));
        top[u] = std::sqrt(static_cast<double>(g.degree(u)));
    }
    const double tn = legacy_norm2(top);
    for (double& x : top) x /= tn;
    xoshiro256ss rng(derive_seed(0xFEED, n, g.num_edges()));
    std::vector<double> v(n);
    for (double& x : v) x = rng.uniform01() - 0.5;
    legacy_deflate(v, top);
    const double nv = legacy_norm2(v);
    for (double& x : v) x /= nv;

    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t t = 0; t < cap; ++t) {
        std::vector<double> w = legacy_sym_step(g, v, inv_sqrt_d);
        legacy_deflate(w, top);
        const double nw = legacy_norm2(w);
        if (nw < 1e-300) break;
        for (std::size_t i = 0; i < n; ++i) v[i] = w[i] / nw;
    }
    return seconds_since(t0);
}

// The legacy tmix start heuristic, replicated to get its exact start
// count (the dense simulation cost is per start).
std::size_t legacy_start_count(const graph& g) {
    const auto d0 = bfs_distances(g, 0);
    const node_id a =
        static_cast<node_id>(std::max_element(d0.begin(), d0.end()) - d0.begin());
    const auto da = bfs_distances(g, a);
    const node_id b =
        static_cast<node_id>(std::max_element(da.begin(), da.end()) - da.begin());
    node_id dmin = 0, dmax = 0;
    for (node_id u = 0; u < g.num_nodes(); ++u) {
        if (g.degree(u) < g.degree(dmin)) dmin = u;
        if (g.degree(u) > g.degree(dmax)) dmax = u;
    }
    std::vector<node_id> starts = {0, a, b, dmin, dmax};
    xoshiro256ss rng(derive_seed(1, g.num_nodes(), 0x317));
    for (std::size_t i = 0; i < 4; ++i) {
        starts.push_back(static_cast<node_id>(rng.below(g.num_nodes())));
    }
    std::sort(starts.begin(), starts.end());
    starts.erase(std::unique(starts.begin(), starts.end()), starts.end());
    return starts.size();
}

// Times `cap` dense §2 simulation steps (distribution step + ∞-gap scan).
double legacy_tmix_step_seconds(const graph& g, std::uint64_t cap) {
    const auto target = walk_stationary(g);
    std::vector<double> pi(g.num_nodes(), 0.0);
    pi[0] = 1.0;
    double sink = 0.0;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t t = 0; t < cap; ++t) {
        double gap = 0.0;
        for (std::size_t i = 0; i < pi.size(); ++i) {
            gap = std::max(gap, std::abs(pi[i] - target[i]));
        }
        sink += gap;
        pi = walk_distribution_step(g, pi);
    }
    if (sink < 0) std::printf("impossible\n");  // keep the gap scan alive
    return seconds_since(t0) / static_cast<double>(cap);
}

// Estimated full legacy profile() cost: 3 fixed-budget power runs (λ₂ +
// Fiedler twice — the old path recomputed the vector per sweep cut), the
// serial dense tmix simulation, and all-pairs BFS when n <= 4096.
double legacy_profile_seconds_est(const graph& g, std::uint64_t tmix_steps_est) {
    const std::size_t n = g.num_nodes();
    const std::uint64_t budget = legacy_auto_iters(n);
    const std::uint64_t cap = std::min<std::uint64_t>(budget, 150);
    const double per_iter = legacy_power_seconds(g, cap) / static_cast<double>(cap);
    // +1/32: the old stabilization check ran one extra matvec every 32
    // iterations past t=64.
    double total = per_iter * static_cast<double>(budget) * (1.0 + 1.0 / 32.0) * 3.0;

    const std::size_t starts = legacy_start_count(g);
    const double per_step = legacy_tmix_step_seconds(g, 30);
    total += per_step * static_cast<double>(tmix_steps_est) *
             static_cast<double>(starts);

    if (n <= 4096) {
        const auto t0 = std::chrono::steady_clock::now();
        for (node_id s = 0; s < 4; ++s) (void)bfs_distances(g, s);
        total += seconds_since(t0) / 4.0 * static_cast<double>(n);
    }
    return total;
}

// How many dense steps the legacy simulation would have run per start.
// When the new pipeline measured tmix, that value is the answer; when it
// reported the spectral bound, discount by 4x (the bound's log-factor
// slack) so the legacy estimate stays conservative.
std::uint64_t legacy_tmix_steps(const graph_profile& p) {
    if (p.mixing_method == profile_method::spectral) {
        return std::max<std::uint64_t>(1, p.mixing_time / 4);
    }
    return std::max<std::uint64_t>(1, p.mixing_time);
}

// --- output / baseline gate (same shape as bench_engine_micro) ---------------

struct options {
    bool quick = false;
    bool csv = false;
    bool json = false;
    std::size_t jobs = 0;
    std::string json_out;
    std::string check;
};

struct emitted {
    std::string title;
    text_table table;
};

void emit(std::vector<emitted>& sink, const options& opt, const std::string& title,
          const text_table& t) {
    std::cout << "\n== " << title << " ==\n";
    t.print(std::cout);
    if (opt.csv) {
        std::cout << "-- csv --\n";
        t.print_csv(std::cout);
    }
    if (opt.json) {
        std::cout << "-- json --\n";
        t.print_json(std::cout, title);
    }
    std::cout.flush();
    sink.push_back(emitted{title, t});
}

double cell_number(const std::string& s) {
    std::string clean;
    for (char c : s) {
        if (c != ',' && c != 'x') clean.push_back(c);
    }
    return std::strtod(clean.c_str(), nullptr);
}

struct gate_column {
    std::string title;
    std::string key;
    std::string column;
    bool identity = false;
};

int run_check(const std::string& path, const std::vector<emitted>& tables,
              const std::vector<gate_column>& checks) {
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "check: cannot open baseline '%s'\n", path.c_str());
        return 1;
    }
    std::map<std::string, json_value> baseline;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty()) continue;
        json_value v = json_parse(line);
        std::string title = v.at("title").as_string();
        baseline.emplace(std::move(title), std::move(v));
    }
    std::map<std::string, json_value> current;
    for (const auto& e : tables) {
        std::ostringstream os;
        e.table.print_json(os, e.title);
        current.emplace(e.title, json_parse(os.str()));
    }
    int failures = 0;
    for (const auto& c : checks) {
        auto bit = baseline.find(c.title);
        auto cit = current.find(c.title);
        if (bit == baseline.end() || cit == current.end()) {
            std::fprintf(stderr,
                         "check: table '%s' missing (baseline: %s, current: %s)\n",
                         c.title.c_str(), bit == baseline.end() ? "no" : "yes",
                         cit == current.end() ? "no" : "yes");
            ++failures;
            continue;
        }
        std::map<std::string, const json_value*> base_rows;
        for (const auto& row : bit->second.at("rows").as_array()) {
            base_rows.emplace(row.at(c.key).as_string(), &row);
        }
        for (const auto& row : cit->second.at("rows").as_array()) {
            const std::string& key = row.at(c.key).as_string();
            auto b = base_rows.find(key);
            if (b == base_rows.end()) continue;  // new workload: not gated yet
            const std::string& cur_cell = row.at(c.column).as_string();
            const std::string& base_cell = b->second->at(c.column).as_string();
            if (c.identity) {
                if (cur_cell != "yes") {
                    std::fprintf(stderr, "check: %s / %s / %s = '%s' (must be 'yes')\n",
                                 c.title.c_str(), key.c_str(), c.column.c_str(),
                                 cur_cell.c_str());
                    ++failures;
                }
                continue;
            }
            const double cur = cell_number(cur_cell);
            const double base = cell_number(base_cell);
            if (base > 0 && cur < base / 3.0) {
                std::fprintf(stderr,
                             "check: hard regression: %s / %s / %s = %.3g, "
                             "baseline %.3g (floor %.3g)\n",
                             c.title.c_str(), key.c_str(), c.column.c_str(), cur, base,
                             base / 3.0);
                ++failures;
            }
        }
    }
    if (failures == 0) {
        std::printf("check: OK — all gated columns within 3x of '%s'\n", path.c_str());
    }
    return failures == 0 ? 0 : 1;
}

// --- the bench ---------------------------------------------------------------

int run(const options& opt) {
    std::vector<emitted> tables;
    thread_pool pool(opt.jobs);

    // --- 1. end-to-end profile(): new pipeline vs extrapolated legacy ---
    struct workload {
        const char* name;
        graph g;
    };
    std::vector<workload> workloads;
    if (opt.quick) {
        workloads.push_back({"dumbbell(512)",
                             make_family(graph_family::dumbbell, 512, 1)});
        workloads.push_back({"caveman(300)",
                             make_family(graph_family::connected_caveman, 300, 1)});
        workloads.push_back({"ba(512)",
                             make_family(graph_family::barabasi_albert, 512, 1)});
    } else {
        workloads.push_back({"dumbbell(4096)",
                             make_family(graph_family::dumbbell, 4096, 1)});
        workloads.push_back({"caveman(1200)",
                             make_family(graph_family::connected_caveman, 1200, 1)});
        workloads.push_back({"ba(4096)",
                             make_family(graph_family::barabasi_albert, 4096, 1)});
        workloads.push_back({"torus(64x64)", make_torus(64, 64)});
    }

    text_table t1({"workload", "n", "m", "new s", "legacy s (est)", "speedup",
                   "tmix method"});
    for (auto& w : workloads) {
        profile_options po;
        po.pool = &pool;
        graph_profile p;
        double new_s = 1e300;
        for (int rep = 0; rep < 2; ++rep) {
            const auto t0 = std::chrono::steady_clock::now();
            p = profile(w.g, po);
            new_s = std::min(new_s, seconds_since(t0));
        }
        const double legacy_s = legacy_profile_seconds_est(w.g, legacy_tmix_steps(p));
        t1.add_row({w.name, fmt_count(w.g.num_nodes()), fmt_count(w.g.num_edges()),
                    fmt_fixed(new_s, 3), fmt_fixed(legacy_s, 1),
                    fmt_ratio(legacy_s / new_s), to_string(p.mixing_method)});
    }
    emit(tables, opt, "profile pipeline", t1);

    // --- 2. full profiles at scale (n = 1e5; informational, not gated) ---
    struct scale_case {
        const char* name;
        graph_family family;
        std::size_t n;
    };
    const std::size_t big = opt.quick ? 10'000 : 100'000;
    std::vector<scale_case> scale = {
        {"watts_strogatz", graph_family::watts_strogatz, big},
        {"barabasi_albert", graph_family::barabasi_albert, big},
        {"caveman", graph_family::connected_caveman, big},
    };
    text_table t2({"family", "n", "m", "profile s", "lambda2", "tmix", "tmix method",
                   "diam method"});
    for (const auto& c : scale) {
        const graph g = make_family(c.family, c.n, 1);
        profile_options po;
        po.pool = &pool;
        const auto t0 = std::chrono::steady_clock::now();
        const graph_profile p = profile(g, po);
        const double s = seconds_since(t0);
        t2.add_row({c.name, fmt_count(g.num_nodes()), fmt_count(g.num_edges()),
                    fmt_fixed(s, 2), fmt_fixed(p.lambda2, 6), fmt_count(p.mixing_time),
                    to_string(p.mixing_method), to_string(p.diameter_method)});
    }
    emit(tables, opt, "profile at scale", t2);

    // --- 3. estimator agreement (identity-gated) ---
    text_table t3({"family", "n", "lambda2 agree", "tmix agree"});
    const std::vector<graph_family> agree_fams = {
        graph_family::cycle,          graph_family::complete,
        graph_family::dumbbell,       graph_family::connected_caveman,
        graph_family::watts_strogatz, graph_family::barabasi_albert,
    };
    bool all_agree = true;
    for (graph_family f : agree_fams) {
        const std::size_t n = 64;
        const graph g = make_family(f, n, 1);
        const double l_lan = lambda2_lazy(g, 0, &pool);
        const double l_pow = lambda2_power(g);
        const bool l_ok = std::abs(l_lan - l_pow) <= 1e-6;

        mixing_time_options mo;
        mo.exhaustive_starts = true;
        mo.pool = &pool;
        const std::uint64_t exact = mixing_time_simulated(g, mo);
        sampled_mixing_options so;
        so.pool = &pool;
        const std::uint64_t sampled = mixing_time_sampled(g, so);
        const std::uint64_t diff = sampled > exact ? sampled - exact : exact - sampled;
        const bool t_ok =
            diff <= std::max<std::uint64_t>(2, exact / 4);  // ±25% or ±2 steps
        all_agree = all_agree && l_ok && t_ok;
        t3.add_row({to_string(f), fmt_count(n), l_ok ? "yes" : "NO",
                    t_ok ? "yes" : "NO"});
    }
    emit(tables, opt, "estimator agreement", t3);
    if (!all_agree) {
        std::fprintf(stderr, "estimator disagreement — spectral pipeline bug\n");
        return 2;
    }

    if (!opt.json_out.empty()) {
        std::ofstream out(opt.json_out);
        if (!out) {
            std::fprintf(stderr, "cannot write '%s'\n", opt.json_out.c_str());
            return 2;
        }
        for (const auto& e : tables) e.table.print_json(out, e.title);
    }

    if (!opt.check.empty()) {
        // Gate the speedup ratios (same-host, machine-independent) and
        // the agreement identities; absolute seconds stay informational.
        const std::vector<gate_column> checks = {
            {"profile pipeline", "workload", "speedup", false},
            {"estimator agreement", "family", "lambda2 agree", true},
            {"estimator agreement", "family", "tmix agree", true},
        };
        return run_check(opt.check, tables, checks);
    }
    return 0;
}

}  // namespace
}  // namespace anole

int main(int argc, char** argv) {
    anole::options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        const auto value = [&](const char* flag) -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "error: %s requires a value\n", flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (a == "--quick") {
            opt.quick = true;
        } else if (a == "--csv") {
            opt.csv = true;
        } else if (a == "--json") {
            opt.json = true;
        } else if (a == "--jobs") {
            opt.jobs = static_cast<std::size_t>(std::strtoul(value("--jobs").c_str(),
                                                             nullptr, 10));
        } else if (a == "--json-out") {
            opt.json_out = value("--json-out");
        } else if (a == "--check") {
            opt.check = value("--check");
        } else if (a == "--help" || a == "-h") {
            std::printf("flags: --quick | --csv | --json | --jobs N |"
                        " --json-out FILE | --check FILE\n");
            return 0;
        } else {
            std::fprintf(stderr, "error: unknown flag '%s' (try --help)\n", a.c_str());
            return 2;
        }
    }
    return anole::run(opt);
}
