// Micro-benchmarks (google-benchmark): throughput of the hot substrate
// paths — engine round dispatch, diffusion updates (double vs exact
// dyadic), lazy-walk distribution steps, bigint arithmetic, graph
// generation, and spectral estimation. These calibrate how large the
// experiment sweeps can afford to be; they make no paper claims.
#include <benchmark/benchmark.h>

#include "core/diffusion.h"
#include "graph/generators.h"
#include "graph/spectral.h"
#include "sim/engine.h"
#include "util/bigint.h"
#include "util/dyadic.h"
#include "util/rng.h"

namespace anole {
namespace {

void bm_rng_below(benchmark::State& state) {
    xoshiro256ss rng(1);
    std::uint64_t acc = 0;
    for (auto _ : state) {
        acc += rng.below(1000);
    }
    benchmark::DoNotOptimize(acc);
}
BENCHMARK(bm_rng_below);

void bm_bigint_add(benchmark::State& state) {
    const auto limbs = static_cast<std::size_t>(state.range(0));
    xoshiro256ss rng(2);
    bigint a, b;
    for (std::size_t i = 0; i < limbs; ++i) {
        a <<= 64;
        a += bigint(rng());
        b <<= 64;
        b += bigint(rng());
    }
    for (auto _ : state) {
        bigint c = a;
        c += b;
        benchmark::DoNotOptimize(c);
    }
}
BENCHMARK(bm_bigint_add)->Arg(2)->Arg(16)->Arg(128);

void bm_dyadic_diffuse_exact(benchmark::State& state) {
    const auto rounds_grown = static_cast<std::size_t>(state.range(0));
    // Pre-grow a mantissa to simulate a potential after `rounds_grown`
    // diffusion rounds at D = 2^6.
    dyadic pot = dyadic::one();
    std::vector<dyadic> in(4, dyadic(bigint(1), 1));
    for (std::size_t i = 0; i < rounds_grown; ++i) {
        pot = diffuse_exact(pot, in, 64, 6);
        for (auto& v : in) v = pot;
    }
    for (auto _ : state) {
        dyadic next = diffuse_exact(pot, in, 64, 6);
        benchmark::DoNotOptimize(next);
    }
}
BENCHMARK(bm_dyadic_diffuse_exact)->Arg(4)->Arg(32)->Arg(128);

void bm_diffuse_approx(benchmark::State& state) {
    std::vector<double> in{0.25, 0.5, 0.125, 0.0625};
    double pot = 1.0;
    for (auto _ : state) {
        pot = diffuse_approx(pot, in, 64);
        benchmark::DoNotOptimize(pot);
    }
}
BENCHMARK(bm_diffuse_approx);

void bm_walk_distribution_step(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    graph g = make_random_regular(n, 4, 1);
    std::vector<double> pi(n, 0.0);
    pi[0] = 1.0;
    for (auto _ : state) {
        pi = walk_distribution_step(g, pi);
        benchmark::DoNotOptimize(pi.data());
    }
}
BENCHMARK(bm_walk_distribution_step)->Arg(256)->Arg(1024)->Arg(4096);

struct noop_msg {
    std::uint8_t x = 0;
    [[nodiscard]] std::size_t bit_size() const noexcept { return 1; }
};
class noop_proc {
public:
    using message_type = noop_msg;
    explicit noop_proc(std::size_t degree) : degree_(degree) {}
    void on_round(node_ctx<noop_msg>& ctx, inbox_view<noop_msg>) {
        // one message per port: the engine's delivery-dominated regime
        for (port_id p = 0; p < degree_; ++p) ctx.send(p, noop_msg{});
    }

private:
    std::size_t degree_;
};

void bm_engine_round(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    graph g = make_random_regular(n, 4, 1);
    engine<noop_proc> eng(g, 1);
    eng.spawn([&](std::size_t u) { return noop_proc(g.degree(u)); });
    for (auto _ : state) {
        eng.step();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(2 * g.num_edges()));
}
BENCHMARK(bm_engine_round)->Arg(256)->Arg(1024)->Arg(4096);

void bm_graph_gen_random_regular(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    std::uint64_t seed = 0;
    for (auto _ : state) {
        graph g = make_random_regular(n, 4, ++seed);
        benchmark::DoNotOptimize(g.num_edges());
    }
}
BENCHMARK(bm_graph_gen_random_regular)->Arg(256)->Arg(1024);

void bm_lambda2(benchmark::State& state) {
    graph g = make_random_regular(static_cast<std::size_t>(state.range(0)), 4, 1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(lambda2_lazy(g, 256));
    }
}
BENCHMARK(bm_lambda2)->Arg(256)->Arg(1024);

}  // namespace
}  // namespace anole

BENCHMARK_MAIN();
