// E12 — sensitivity of Theorem 1's protocol to its two provisioning
// knobs: the walk count x and the walk length c·tmix·log n.
//
// A (x_mult, walk_len_mult) grid on a torus: election outcome rate and
// message cost. The paper's corner (1.0, 1.0) must sit in the reliable
// region; shrinking either knob must eventually break correctness — that
// is Lemma 2's content (hitting needs both enough walks and mixed walks).
#include "bench/common.h"

#include "core/irrevocable.h"

using namespace anole;
using namespace anole::bench;

int main(int argc, char** argv) {
    const options opt = options::parse(argc, argv);
    const std::size_t seeds = opt.seeds_or(opt.quick ? 4 : 6);
    profile_cache profiles;

    graph g = opt.quick ? make_torus(10, 10) : make_torus(14, 14);
    const auto& prof = profiles.get(g);

    text_table t({"x_mult", "len_mult", "x", "walk len", "unique", "multi",
                  "none", "messages"});

    const std::vector<double> xms = {0.1, 0.5, 1.0};
    const std::vector<double> lms = {0.05, 0.5, 1.0};
    for (double xm : xms) {
        for (double lm : lms) {
            irrevocable_params p;
            p.n = prof.n;
            p.tmix = std::max<std::uint64_t>(prof.mixing_time, 1);
            p.phi = prof.conductance;
            p.x_mult = xm;
            p.walk_len_mult = lm;
            std::size_t unique = 0, multi = 0, none = 0;
            sample_stats msgs;
            for (std::size_t s = 0; s < seeds; ++s) {
                const auto r = run_irrevocable(g, p, 1900 + s);
                msgs.add(static_cast<double>(r.totals.messages));
                if (r.num_leaders == 1) {
                    ++unique;
                } else if (r.num_leaders > 1) {
                    ++multi;
                } else {
                    ++none;
                }
            }
            t.add_row({fmt_fixed(xm, 2), fmt_fixed(lm, 2), std::to_string(p.x()),
                       std::to_string(p.walk_len()),
                       std::to_string(unique) + "/" + std::to_string(seeds),
                       std::to_string(multi) + "/" + std::to_string(seeds),
                       std::to_string(none) + "/" + std::to_string(seeds),
                       fmt_mean_sd(msgs)});
        }
    }

    emit(t, opt, "E12: (x, walk length) sensitivity grid on " + g.name());
    std::printf("\nShape checks: the (1.0, 1.0) paper corner is reliably"
                "\nunique; multi-leader rates rise toward the (0.1, 0.05)"
                "\ncorner; messages scale ~ x_mult * len_mult in the walk"
                "\nphase.\n");
    return 0;
}
