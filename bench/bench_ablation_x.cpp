// E12 — sensitivity of Theorem 1's protocol to its two provisioning
// knobs: the walk count x and the walk length c·tmix·log n.
//
// A (x_mult, walk_len_mult) grid on a torus: election outcome rate and
// message cost. The paper's corner (1.0, 1.0) must sit in the reliable
// region; shrinking either knob must eventually break correctness — that
// is Lemma 2's content (hitting needs both enough walks and mixed walks).
#include "bench/common.h"

using namespace anole;
using namespace anole::bench;

int main(int argc, char** argv) {
    const options opt = options::parse(argc, argv);
    const std::size_t seeds = opt.seeds_or(opt.quick ? 4 : 6);
    scenario_runner runner = opt.make_runner();

    graph g = opt.quick ? make_torus(10, 10) : make_torus(14, 14);

    const std::vector<double> xms = {0.1, 0.5, 1.0};
    const std::vector<double> lms = {0.05, 0.5, 1.0};

    std::vector<scenario> batch;
    for (double xm : xms) {
        for (double lm : lms) {
            irrevocable_cfg cfg;
            cfg.params.x_mult = xm;
            cfg.params.walk_len_mult = lm;
            batch.push_back(scenario{"", &g, cfg, 1900, seeds});
        }
    }
    const auto results = runner.run_batch(batch);

    text_table t({"x_mult", "len_mult", "x", "walk len", "unique", "multi",
                  "none", "messages"});
    std::size_t idx = 0;
    for (double xm : xms) {
        for (double lm : lms) {
            const auto& res = results[idx++];
            const auto oc = count_outcomes(res);
            irrevocable_cfg cfg;
            cfg.params.x_mult = xm;
            cfg.params.walk_len_mult = lm;
            const auto p = scenario_runner::fill(cfg.params, res.profile);
            t.add_row({fmt_fixed(xm, 2), fmt_fixed(lm, 2), std::to_string(p.x()),
                       std::to_string(p.walk_len()),
                       std::to_string(oc.unique) + "/" + std::to_string(seeds),
                       std::to_string(oc.multi) + "/" + std::to_string(seeds),
                       std::to_string(oc.none) + "/" + std::to_string(seeds),
                       fmt_mean_sd(res.messages())});
        }
    }

    emit(t, opt, "E12: (x, walk length) sensitivity grid on " + g.name());
    warn_errors(results);
    std::printf("\nShape checks: the (1.0, 1.0) paper corner is reliably"
                "\nunique; multi-leader rates rise toward the (0.1, 0.05)"
                "\ncorner; messages scale ~ x_mult * len_mult in the walk"
                "\nphase.\n");
    return 0;
}
