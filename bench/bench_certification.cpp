// E10 — Lemmas 6-8: the certification-phase detection machinery.
//
// Runs the full Revocable LE protocol (faithful parameters, tiny n) over
// many seeds and inspects the per-estimate traces:
//   Lemma 6: once k^{1+ε} >= 2n+1, a strict majority of iterations have
//            no white node;
//   Lemma 7: no estimate with k^{1+ε}·log(4k) < n mints an ID (some node
//            holds out while k is low — here we check the aggregate);
//   Lemma 8: for 2n+1 <= k^{1+ε} <= 4n some iteration detects a white.
#include "bench/common.h"

#include <cmath>
#include <map>

using namespace anole;
using namespace anole::bench;

int main(int argc, char** argv) {
    const options opt = options::parse(argc, argv);
    const std::size_t seeds = opt.seeds_or(opt.quick ? 3 : 6);
    scenario_runner runner = opt.make_runner();

    std::vector<std::size_t> ns = opt.quick ? std::vector<std::size_t>{4}
                                            : std::vector<std::size_t>{3, 4, 5};

    std::vector<graph> graphs;
    std::vector<scenario> batch;
    for (std::size_t n : ns) {
        graphs.push_back(n == 3 ? make_path(3) : make_cycle(n));
    }
    for (const graph& g : graphs) {
        revocable_cfg rc;
        rc.params = revocable_params::paper_faithful();
        rc.params.exact_potentials = false;
        rc.max_rounds = 120'000'000;
        batch.push_back(scenario{"", &g, rc, 1700, seeds});
    }
    const auto results = runner.run_batch(batch);

    text_table t({"n", "k", "K=k^2", "regime", "empty/iters", "probing/iters",
                  "chose here", "expected"});

    for (std::size_t i = 0; i < graphs.size(); ++i) {
        const graph& g = graphs[i];

        // Aggregate the per-estimate traces over all repetitions.
        std::map<std::uint64_t, revocable_node::estimate_trace> agg;
        for (const auto& run : results[i].runs) {
            if (!run.ok) continue;
            const auto& r = std::get<revocable_result>(run.detail);
            for (const auto& [k, tr] : r.traces) {
                auto& a = agg[k];
                a.empty_iterations += tr.empty_iterations;
                a.probing_iterations += tr.probing_iterations;
                a.iterations += tr.iterations;
                a.chose_here = a.chose_here || tr.chose_here;
            }
        }
        const double nn = static_cast<double>(g.num_nodes());
        for (const auto& [k, tr] : agg) {
            const double kk = static_cast<double>(k) * static_cast<double>(k);
            const char* regime = kk < 2 * nn + 1
                                     ? "low (k^2 < 2n+1)"
                                     : (kk <= 4 * nn ? "critical (Lemma 8)"
                                                     : "high (Lemma 6)");
            const bool low_k = kk * std::log2(4.0 * static_cast<double>(k)) < nn;
            const char* expected =
                low_k ? "no IDs (Lemma 7)"
                      : (kk >= 2 * nn + 1 ? "majority empty + whites seen"
                                          : "transition");
            t.add_row({std::to_string(g.num_nodes()), std::to_string(k),
                       fmt_fixed(kk, 0), regime,
                       std::to_string(tr.empty_iterations) + "/" +
                           std::to_string(tr.iterations),
                       std::to_string(tr.probing_iterations) + "/" +
                           std::to_string(tr.iterations),
                       tr.chose_here ? "yes" : "no", expected});
        }
    }

    emit(t, opt, "E10: certification-phase detection (Lemmas 6-8, faithful params)");
    std::printf("\nShape checks: 'high' rows have empty > iters/2 (Lemma 6);"
                "\nrows with k^2 log(4k) < n never mint IDs (Lemma 7);"
                "\n'critical' rows keep probing > 0, i.e. whites were seen and"
                "\npotentials passed tau (Lemmas 5+8), enabling the choice.\n");
    return 0;
}
