// E1 — Table 1, regenerated empirically.
//
// The paper's Table 1 is a complexity landscape: messages and time of
// randomized implicit LE under different knowledge assumptions. This
// harness measures every implementable row on a spread of topologies and
// prints measured counts next to the claimed asymptotic forms, plus the
// measured/predicted ratio (the "constant"); the *shape* claims to check:
//
//   row A (knows n, D)      flood-max:            Θ(m)-class msgs, O(D) time
//   row B (knows n, Φ, tmix) ours [this paper]:   Õ(√(n·tmix/Φ)) msgs,
//                                                 O(tmix·log² n) time
//   row C (knows n)         Gilbert et al. style: O(tmix·√n·log^{7/2}n) msgs
//   row D (knows nothing)   revocable [this paper]: poly(n)·m msgs (scaled)
//   row E (knows i(G))      revocable w/ i(G):    smaller poly (scaled)
#include "bench/common.h"

#include <cmath>

using namespace anole;
using namespace anole::bench;

int main(int argc, char** argv) {
    const options opt = options::parse(argc, argv);
    const std::size_t seeds = opt.seeds_or(3);
    scenario_runner runner = opt.make_runner();

    std::vector<graph> graphs;
    if (opt.quick) {
        graphs.push_back(make_random_regular(128, 4, 1));
        graphs.push_back(make_torus(8, 8));
    } else {
        graphs.push_back(make_random_regular(512, 4, 1));
        graphs.push_back(make_hypercube(9));
        graphs.push_back(make_torus(16, 16));
        graphs.push_back(make_torus(8, 8));
        graphs.push_back(make_complete(128));
        graphs.push_back(make_ring_of_cliques(16, 8));
        graphs.push_back(make_cycle(64));
    }

    // Row metadata carried alongside each scenario, in batch order.
    struct row_info {
        const char* row;
        const char* knows;
        const char* claimed;
        // Predicted message count for the measured/predicted column; the
        // profile is only known after the batch ran, so this is a
        // function of it. 0 = no prediction.
        double (*predicted)(const graph_profile&);
    };
    std::vector<scenario> batch;
    std::vector<row_info> info;

    const auto add = [&](const graph& g, algo_config cfg, row_info ri) {
        scenario s;
        s.topology = &g;
        s.algo = std::move(cfg);
        s.repetitions = seeds;
        batch.push_back(std::move(s));
        info.push_back(ri);
    };

    for (const graph& g : graphs) {
        // Row A: flood-max. Row B: this paper, irrevocable. Row C:
        // Gilbert-style walks. Model inputs (n, D, tmix, Φ) are filled in
        // by the runner from the measured profile.
        add(g, flood_cfg{}, {"A", "n,D", "O(m)", [](const graph_profile& p) {
                                return static_cast<double>(p.m);
                            }});
        add(g, irrevocable_cfg{},
            {"B", "n,phi,tmix", "O~(sqrt(n tmix/phi))", [](const graph_profile& p) {
                 return std::sqrt(static_cast<double>(p.n) *
                                  static_cast<double>(
                                      std::max<std::uint64_t>(p.mixing_time, 1)) /
                                  p.conductance);
             }});
        add(g, gilbert_cfg{},
            {"C", "n", "O(tmix sqrt(n) log^3.5 n)", [](const graph_profile& p) {
                 return static_cast<double>(std::max<std::uint64_t>(p.mixing_time, 1)) *
                        std::sqrt(static_cast<double>(p.n)) *
                        std::pow(std::log2(static_cast<double>(p.n)), 3.5);
             }});
    }
    // Seed bases match the historical per-row values (A: 100+s, ...).
    for (std::size_t i = 0; i < batch.size(); ++i) {
        batch[i].seed = 100 * (1 + i % 3);
    }

    // The A-C batch profiles every distinct graph in parallel (the
    // expensive spectral + mixing step) before fanning the runs out.
    auto results = runner.run_batch(batch);

    // Rows D/E: revocable (scaled policy; see DESIGN.md substitutions)
    // only on small well-connected graphs — poly(n)·m message volume is
    // intrinsic (Theorem 3's content), and blind-mode diffusion
    // additionally grows with 1/i_eff² (Corollary 1). The dedicated sweep
    // is bench_revocable. Eligibility reads the profiles the first batch
    // already computed (3 rows per graph, so graph i sits at results[3i]).
    std::vector<scenario> de_batch;
    std::vector<row_info> de_info;
    if (!opt.quick) {
        for (std::size_t gi = 0; gi < graphs.size(); ++gi) {
            const auto& prof = results[3 * gi].profile;
            if (prof.n > 64 || prof.conductance <= 0.05) continue;
            for (int informed = 0; informed < 2; ++informed) {
                revocable_cfg rc;
                rc.params = revocable_params::scaled(std::nullopt, 0.02, 0.12);
                rc.params.k_cap = 32;
                rc.auto_isoperimetric = informed != 0;
                scenario s;
                s.topology = &graphs[gi];
                s.algo = rc;
                s.seed = 400;
                s.repetitions = seeds;
                de_batch.push_back(std::move(s));
                de_info.push_back({informed ? "E" : "D", informed ? "i(G)" : "-",
                                   informed ? "O~(n^4(1+e)/i^2 m) scaled"
                                            : "O~(n^4(2+e) m) scaled",
                                   nullptr});
            }
        }
    }
    auto de_results = runner.run_batch(de_batch);
    results.insert(results.end(), std::make_move_iterator(de_results.begin()),
                   std::make_move_iterator(de_results.end()));
    info.insert(info.end(), de_info.begin(), de_info.end());

    text_table t({"graph", "n", "m", "tmix", "phi", "row", "knows", "claimed",
                  "messages", "rounds", "ok", "msg/claim"});
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto& res = results[i];
        const auto& ri = info[i];
        const double predicted = ri.predicted ? ri.predicted(res.profile) : 0.0;
        const auto msgs = res.messages();
        t.add_row({res.topology->name(), std::to_string(res.profile.n),
                   std::to_string(res.profile.m),
                   std::to_string(res.profile.mixing_time),
                   fmt_fixed(res.profile.conductance, 4), ri.row, ri.knows,
                   ri.claimed, fmt_mean_sd(msgs),
                   fmt_count(static_cast<std::uint64_t>(res.rounds().mean())),
                   res.success_ratio(),
                   predicted > 0 ? fmt_fixed(msgs.mean() / predicted, 2) : "-"});
    }

    emit(t, opt, "Table 1 (measured): randomized implicit LE, CONGEST");
    std::printf(
        "\nShape checks: (B) beats (C) in messages on every well-connected row;"
        "\n(A) is cheapest on sparse graphs and loses to (B) on dense ones"
        "\n(see bench_conductance_sweep for the crossover); (E) <= (D).\n");
    return 0;
}
