// E1 — Table 1, regenerated empirically.
//
// The paper's Table 1 is a complexity landscape: messages and time of
// randomized implicit LE under different knowledge assumptions. This
// harness measures every implementable row on a spread of topologies and
// prints measured counts next to the claimed asymptotic forms, plus the
// measured/predicted ratio (the "constant"); the *shape* claims to check:
//
//   row A (knows n, D)      flood-max:            Θ(m)-class msgs, O(D) time
//   row B (knows n, Φ, tmix) ours [this paper]:   Õ(√(n·tmix/Φ)) msgs,
//                                                 O(tmix·log² n) time
//   row C (knows n)         Gilbert et al. style: O(tmix·√n·log^{7/2}n) msgs
//   row D (knows nothing)   revocable [this paper]: poly(n)·m msgs (scaled)
//   row E (knows i(G))      revocable w/ i(G):    smaller poly (scaled)
#include "bench/common.h"

#include <cmath>

#include "baseline/flood_max.h"
#include "baseline/gilbert_le.h"
#include "core/irrevocable.h"
#include "core/revocable.h"
#include "graph/properties.h"

using namespace anole;
using namespace anole::bench;

int main(int argc, char** argv) {
    const options opt = options::parse(argc, argv);
    const std::size_t seeds = opt.seeds_or(3);
    profile_cache profiles;

    std::vector<graph> graphs;
    if (opt.quick) {
        graphs.push_back(make_random_regular(128, 4, 1));
        graphs.push_back(make_torus(8, 8));
    } else {
        graphs.push_back(make_random_regular(512, 4, 1));
        graphs.push_back(make_hypercube(9));
        graphs.push_back(make_torus(16, 16));
        graphs.push_back(make_torus(8, 8));
        graphs.push_back(make_complete(128));
        graphs.push_back(make_ring_of_cliques(16, 8));
        graphs.push_back(make_cycle(64));
    }

    text_table t({"graph", "n", "m", "tmix", "phi", "row", "knows", "claimed",
                  "messages", "rounds", "ok", "msg/claim"});

    for (const graph& g : graphs) {
        const auto& prof = profiles.get(g);
        const auto n = static_cast<double>(prof.n);
        const double logn = std::log2(n);
        const auto add_row = [&](const char* row, const char* knows,
                                 const char* claimed, const sample_stats& msgs,
                                 const sample_stats& rounds, int ok, double predicted) {
            t.add_row({g.name(), std::to_string(prof.n), std::to_string(prof.m),
                       std::to_string(prof.mixing_time), fmt_fixed(prof.conductance, 4),
                       row, knows, claimed, fmt_mean_sd(msgs),
                       fmt_count(static_cast<std::uint64_t>(rounds.mean())),
                       std::to_string(ok) + "/" + std::to_string(seeds),
                       predicted > 0 ? fmt_fixed(msgs.mean() / predicted, 2) : "-"});
        };

        // Row A: flood-max.
        {
            sample_stats msgs, rounds;
            int ok = 0;
            for (std::size_t s = 0; s < seeds; ++s) {
                const auto r = run_flood_max(g, prof.diameter, 100 + s);
                msgs.add(static_cast<double>(r.totals.messages));
                rounds.add(static_cast<double>(r.rounds));
                ok += r.success;
            }
            add_row("A", "n,D", "O(m)", msgs, rounds, ok,
                    static_cast<double>(prof.m));
        }
        // Row B: this paper, irrevocable.
        {
            irrevocable_params p;
            p.n = prof.n;
            p.tmix = std::max<std::uint64_t>(prof.mixing_time, 1);
            p.phi = prof.conductance;
            sample_stats msgs, rounds;
            int ok = 0;
            for (std::size_t s = 0; s < seeds; ++s) {
                const auto r = run_irrevocable(g, p, 200 + s);
                msgs.add(static_cast<double>(r.totals.messages));
                rounds.add(static_cast<double>(r.rounds));
                ok += r.success;
            }
            const double predicted =
                std::sqrt(n * static_cast<double>(p.tmix) / p.phi);
            add_row("B", "n,phi,tmix", "O~(sqrt(n tmix/phi))", msgs, rounds, ok,
                    predicted);
        }
        // Row C: Gilbert et al. style.
        {
            gilbert_params p;
            p.n = prof.n;
            p.tmix = std::max<std::uint64_t>(prof.mixing_time, 1);
            sample_stats msgs, rounds;
            int ok = 0;
            for (std::size_t s = 0; s < seeds; ++s) {
                const auto r = run_gilbert(g, p, 300 + s);
                msgs.add(static_cast<double>(r.totals.messages));
                rounds.add(static_cast<double>(r.rounds));
                ok += r.success;
            }
            const double predicted = static_cast<double>(p.tmix) * std::sqrt(n) *
                                     std::pow(logn, 3.5);
            add_row("C", "n", "O(tmix sqrt(n) log^3.5 n)", msgs, rounds, ok,
                    predicted);
        }
        // Rows D/E: revocable (scaled policy; see DESIGN.md substitutions)
        // only on one small well-connected graph — poly(n)·m message
        // volume is intrinsic (Theorem 3's content), and blind-mode
        // diffusion additionally grows with 1/i_eff² (Corollary 1). The
        // dedicated sweep is bench_revocable.
        if (!opt.quick && prof.n <= 64 && prof.conductance > 0.05) {
            // (rows D/E are skipped in --quick: bench_revocable is their
            // dedicated, budget-controlled harness)
            for (int informed = 0; informed < 2; ++informed) {
                std::optional<double> iso;
                if (informed) iso = prof.isoperimetric;
                auto p = revocable_params::scaled(iso, 0.02, 0.12);
                p.k_cap = 32;
                sample_stats msgs, rounds;
                int ok = 0;
                for (std::size_t s = 0; s < seeds; ++s) {
                    const auto r = run_revocable(g, p, 400 + s, 30'000'000);
                    msgs.add(static_cast<double>(r.totals.messages));
                    rounds.add(static_cast<double>(r.rounds));
                    ok += r.success;
                }
                add_row(informed ? "E" : "D", informed ? "i(G)" : "-",
                        informed ? "O~(n^4(1+e)/i^2 m) scaled"
                                 : "O~(n^4(2+e) m) scaled",
                        msgs, rounds, ok, 0.0);
            }
        }
    }

    emit(t, opt, "Table 1 (measured): randomized implicit LE, CONGEST");
    std::printf(
        "\nShape checks: (B) beats (C) in messages on every well-connected row;"
        "\n(A) is cheapest on sparse graphs and loses to (B) on dense ones"
        "\n(see bench_conductance_sweep for the crossover); (E) <= (D).\n");
    return 0;
}
