// E4 — the crossover structure of Table 1: at fixed n, sweep the
// conductance dial (ring-of-cliques: many small cliques -> few big ones)
// and watch who wins on messages.
//
// Claimed shape: flooding's Θ(m) grows with density; ours grows like
// √(n·tmix/Φ) — so flooding wins on the sparse/low-Φ end (where Ω(m) is
// small but tmix is huge) and loses on the well-connected end. The
// Gilbert-style baseline pays tmix·√n — worst in the middle.
#include "bench/common.h"

#include "baseline/flood_max.h"
#include "baseline/gilbert_le.h"
#include "core/irrevocable.h"

using namespace anole;
using namespace anole::bench;

int main(int argc, char** argv) {
    const options opt = options::parse(argc, argv);
    const std::size_t seeds = opt.seeds_or(3);
    profile_cache profiles;

    // n nodes arranged as c cliques of s = n/c nodes. Long rings have
    // cycle-like tmix = Θ(c²·s²), which multiplies every protocol's round
    // budget — quick mode stays at n = 64 where the whole dial is cheap.
    std::vector<std::pair<std::size_t, std::size_t>> shapes;
    if (opt.quick) {
        shapes = {{16, 4}, {8, 8}, {4, 16}};
    } else {
        shapes = {{64, 4}, {32, 8}, {16, 16}, {8, 32}, {4, 64}};
    }

    text_table t({"cliques x size", "m", "tmix", "phi", "flood(msgs)",
                  "ours(msgs)", "gilbert(msgs)", "winner"});

    for (const auto& [c, s] : shapes) {
        graph g = make_ring_of_cliques(c, s);
        const auto& prof = profiles.get(g);

        irrevocable_params ip;
        ip.n = prof.n;
        ip.tmix = std::max<std::uint64_t>(prof.mixing_time, 1);
        ip.phi = prof.conductance;
        gilbert_params gp;
        gp.n = prof.n;
        gp.tmix = ip.tmix;

        sample_stats fm, om, gm;
        for (std::size_t seed = 0; seed < seeds; ++seed) {
            fm.add(static_cast<double>(
                run_flood_max(g, prof.diameter, 800 + seed).totals.messages));
            om.add(static_cast<double>(
                run_irrevocable(g, ip, 900 + seed).totals.messages));
            gm.add(static_cast<double>(
                run_gilbert(g, gp, 1000 + seed).totals.messages));
        }
        const char* winner = "flood";
        double best = fm.mean();
        if (om.mean() < best) {
            winner = "ours";
            best = om.mean();
        }
        if (gm.mean() < best) winner = "gilbert";
        t.add_row({std::to_string(c) + "x" + std::to_string(s),
                   std::to_string(prof.m), std::to_string(prof.mixing_time),
                   fmt_fixed(prof.conductance, 5), fmt_mean_sd(fm), fmt_mean_sd(om),
                   fmt_mean_sd(gm), winner});
    }

    emit(t, opt,
         "E4a: conductance dial (ring of cliques) — low-Φ regime");
    std::printf("\nFinding: the ring-of-cliques dial never leaves the low-Φ"
                "\nregime (the bottleneck stays 2 bridge edges while volume"
                "\ngrows), so change-triggered flooding stays cheapest across"
                "\nit — consistent with Table 1's sparse column.\n");

    // E4b: the actual Ω(m)-crossover lives on *dense well-connected*
    // graphs, where m = Θ(n²) while ours pays Õ(√(n·tmix/Φ)) = Õ(n^1/2+).
    text_table d({"graph", "m", "flood(msgs)", "ours(msgs)", "winner"});
    std::vector<std::size_t> dense_sizes =
        opt.quick ? std::vector<std::size_t>{64, 128, 256}
                  : std::vector<std::size_t>{64, 128, 256, 512};
    for (std::size_t n : dense_sizes) {
        graph g = make_complete(n);
        const auto& prof = profiles.get(g);
        irrevocable_params ip;
        ip.n = prof.n;
        ip.tmix = std::max<std::uint64_t>(prof.mixing_time, 1);
        ip.phi = prof.conductance;
        sample_stats fm, om;
        for (std::size_t seed = 0; seed < seeds; ++seed) {
            fm.add(static_cast<double>(
                run_flood_max(g, prof.diameter, 1100 + seed).totals.messages));
            om.add(static_cast<double>(
                run_irrevocable(g, ip, 1150 + seed).totals.messages));
        }
        d.add_row({g.name(), std::to_string(prof.m), fmt_mean_sd(fm),
                   fmt_mean_sd(om), om.mean() < fm.mean() ? "OURS" : "flood"});
    }
    emit(d, opt, "E4b: dense crossover — Theorem 1 vs the Omega(m) class");
    std::printf("\nShape check: flooding wins while m is small; ours takes"
                "\nover between complete(128) and complete(256) and the gap"
                "\nwidens with n — Theorem 1 beats the Omega(m) bound exactly"
                "\non well-connected dense graphs.\n");
    return 0;
}
